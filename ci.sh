#!/usr/bin/env bash
# Correctness CI (DESIGN.md "Correctness tooling"): repo lint plus the
# three-preset sanitizer build matrix.
#
#   ./ci.sh                 # lint + release + tsan + asan-ubsan
#   ./ci.sh lint tsan       # any subset of: lint release tsan asan-ubsan
#
# Presets come from CMakePresets.json; the sanitizer test presets exclude
# the `sanitizer-slow` ctest label (long convergence runs) and load
# tsan.supp, so a full matrix pass means the real multi-worker collectives,
# the GradReducer WFBP pipeline, and the obs tracer are race- and UB-clean.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
  LEGS=(lint release tsan asan-ubsan)
fi

run_preset() {
  local preset="$1"
  echo
  echo "==================== preset: $preset ===================="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS"
}

for leg in "${LEGS[@]}"; do
  case "$leg" in
    lint)
      echo "==================== lint ===================="
      tools/lint.sh
      ;;
    release|tsan|asan-ubsan)
      run_preset "$leg"
      ;;
    *)
      echo "ci.sh: unknown leg '$leg' (expected: lint release tsan asan-ubsan)" >&2
      exit 2
      ;;
  esac
done

echo
echo "ci.sh: all legs passed (${LEGS[*]})"
