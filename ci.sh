#!/usr/bin/env bash
# Correctness CI (DESIGN.md "Correctness tooling" + §6d "Model checker"):
# repo lint, the three-preset sanitizer build matrix, the schedule-
# exploration model checker, and the coverage gate.
#
#   ./ci.sh                 # analyze + release + tsan + asan-ubsan
#                           #   + modelcheck + chaos + churn + tenant
#                           #   + perf-smoke
#   ./ci.sh analyze tsan    # any subset of:
#                           #   analyze release tsan asan-ubsan modelcheck
#                           #   chaos churn tenant perf-smoke coverage
#                           #   (`lint` is an alias for `analyze`)
#
# The `analyze` leg runs first, before any build preset: tools/lint.sh
# dispatches to acps-analyze (tools/analyzer/ — layering, determinism,
# lock-order, sched-point coverage, tsan.supp policy; self-proving via its
# fixture mutation gate) and then clang-tidy when available. Static findings
# surface in seconds, before the first compile.
#
# Presets come from CMakePresets.json; the sanitizer test presets exclude
# the `sanitizer-slow` ctest label (long convergence runs) and load
# tsan.supp, so a full matrix pass means the real multi-worker collectives,
# the GradReducer WFBP pipeline, and the obs tracer are race- and UB-clean.
#
# The `coverage` leg (opt-in: slow, -O0 rebuild) runs the suite gcov-
# instrumented and fails if combined src/comm + src/compress line coverage
# drops below the merge-time value recorded here.
set -euo pipefail
cd "$(dirname "$0")"

# Merge-time combined line coverage of src/comm + src/compress (see
# tools/coverage_report.sh). Measured 95.7% at the introduction of the
# coverage gate; raise when coverage improves, never lower to paper over
# a drop.
ACPS_COV_MIN_COMM_COMPRESS=95.0
# Line-coverage floor for the deterministic parallel layer (src/par): the
# pool is the substrate every kernel trusts, so its machinery stays >= 90%.
ACPS_COV_MIN_PAR=90.0
# Floors for the training core (WFBP reducer + distributed optimizer) and
# the fault-injection/recovery layer. src/fault especially must stay hot:
# recovery code the chaos matrix never executes certifies nothing.
ACPS_COV_MIN_CORE=80.0
ACPS_COV_MIN_FAULT=80.0

JOBS="${JOBS:-$(nproc)}"
LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
  LEGS=(analyze release tsan asan-ubsan modelcheck chaos churn tenant perf-smoke)
fi

run_preset() {
  local preset="$1"
  echo
  echo "==================== preset: $preset ===================="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS"
}

for leg in "${LEGS[@]}"; do
  case "$leg" in
    analyze|lint)
      # Static findings surface in seconds, before the first compile. The
      # leg leaves a machine-readable artifact (SARIF 2.1.0) for code-
      # scanning upload and prints per-pass timings so a rule that turns
      # quadratic is caught by eye; lint.sh gates the scan on the committed
      # baseline and fails on baseline rot.
      echo "==================== analyze ===================="
      mkdir -p build-artifacts
      ACPS_LINT_SARIF="build-artifacts/analyze.sarif" ACPS_LINT_TIMING=1 \
          tools/lint.sh
      echo "analyze: SARIF artifact at build-artifacts/analyze.sarif"
      ;;
    release|tsan|asan-ubsan)
      run_preset "$leg"
      ;;
    modelcheck)
      echo
      echo "==================== modelcheck ===================="
      cmake --preset release
      cmake --build --preset release -j "$JOBS"
      ctest --preset modelcheck -j "$JOBS"
      ;;
    chaos)
      # Fault-injection matrix (DESIGN.md §6f): every fault kind x
      # collective x compressor must end recovered-or-detected; silent
      # corruption fails the leg.
      echo
      echo "==================== chaos ===================="
      cmake --preset release
      cmake --build --preset release -j "$JOBS"
      ctest --preset chaos -j "$JOBS"
      ;;
    churn)
      # Elastic-membership gates (DESIGN.md "Elastic membership"): the churn
      # chaos matrix (crash→rejoin, fresh join, graceful leave, leader crash,
      # soak) plus the exhaustive rejoin-handshake exploration, run twice —
      # optimized (release) and race-checked (tsan), since the rejoin
      # protocol is pure synchronization code.
      echo
      echo "==================== churn ===================="
      cmake --preset release
      cmake --build --preset release -j "$JOBS"
      ctest --preset churn -j "$JOBS"
      cmake --preset tsan
      cmake --build --preset tsan -j "$JOBS"
      ctest --preset churn-tsan -j "$JOBS"
      ;;
    tenant)
      # Multi-tenant service gates (DESIGN.md §7): the >=64-job bitwise
      # solo-parity stress and the cross-tenant fault-isolation matrix, run
      # twice — optimized (release) and race-checked (tsan).
      echo
      echo "==================== tenant ===================="
      cmake --preset release
      cmake --build --preset release -j "$JOBS"
      ctest --preset tenant -j "$JOBS"
      cmake --preset tsan
      cmake --build --preset tsan -j "$JOBS"
      ctest --preset tenant-tsan -j "$JOBS"
      ;;
    perf-smoke)
      # Quick kernel-bench pass gated against the committed baseline
      # (BENCH_kernels.json): fails on a >25% speedup-over-naive regression
      # or when an acceptance kernel drops under 3x. See DESIGN.md §6e.
      echo
      echo "==================== perf-smoke ===================="
      cmake --preset release
      cmake --build --preset release -j "$JOBS" --target bench_kernels
      BUILD_DIR=build-release tools/bench_baseline.sh --check
      ;;
    coverage)
      echo
      echo "==================== coverage ===================="
      cmake --preset coverage
      cmake --build --preset coverage -j "$JOBS"
      ctest --preset coverage -j "$JOBS"
      tools/coverage_report.sh build-coverage "$ACPS_COV_MIN_COMM_COMPRESS" \
          "$ACPS_COV_MIN_PAR" "$ACPS_COV_MIN_CORE" "$ACPS_COV_MIN_FAULT"
      ;;
    *)
      echo "ci.sh: unknown leg '$leg' (expected: analyze release tsan" \
           "asan-ubsan modelcheck chaos churn tenant perf-smoke coverage)" >&2
      exit 2
      ;;
  esac
done

echo
echo "ci.sh: all legs passed (${LEGS[*]})"
