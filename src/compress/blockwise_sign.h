// Block-wise 1-bit compression (extension; the 1-bit SGD [14] / 1-bit Adam
// [5] lineage): like Sign-SGD but with one fp32 scale per fixed-size block
// instead of one global scale, capturing per-layer magnitude structure at
// a tiny wire cost. Encoded size: 1 bit/element + 4 bytes per block.
#pragma once

#include "compress/compressor.h"

namespace acps::compress {

class BlockwiseSignCompressor final : public Compressor {
 public:
  explicit BlockwiseSignCompressor(size_t block_size = 1024);

  [[nodiscard]] std::string name() const override { return "blockwise-sign"; }

  void EncodeInto(std::span<const float> grad,
                  std::span<std::byte> out) override;

  void Decode(std::span<const std::byte> blob,
              std::span<float> out) const override;

  [[nodiscard]] size_t EncodedBytes(size_t numel) const override;

  [[nodiscard]] size_t block_size() const noexcept { return block_size_; }

 private:
  [[nodiscard]] size_t NumBlocks(size_t numel) const {
    return (numel + block_size_ - 1) / block_size_;
  }

  size_t block_size_;
};

}  // namespace acps::compress
