// Sign-SGD compression (Bernstein et al., ICML'18) with bit packing and
// majority voting.
//
// Encode: 1 bit per element (sign) plus one fp32 scale (the mean magnitude,
// as in 1-bit SGD) — a 32× reduction in the limit, matching Table I.
// Decode: ±scale per element.
//
// Majority vote: signs are not additive (the paper's §III-C), so workers
// all-gather the packed blobs and each reconstructs sign(Σ_w sign_w(g)) with
// the mean of worker scales; MajorityVote implements the local tally.
#pragma once

#include "compress/compressor.h"

namespace acps::compress {

class SignCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "signsgd"; }

  void EncodeInto(std::span<const float> grad,
                  std::span<std::byte> out) override;

  void Decode(std::span<const std::byte> blob,
              std::span<float> out) const override;

  [[nodiscard]] size_t EncodedBytes(size_t numel) const override {
    // scale (4B) + element count (8B) + packed bits.
    return sizeof(float) + sizeof(uint64_t) + (numel + 7) / 8;
  }

  // Combines one blob per worker (equal original numel) into the
  // majority-vote result: out[i] = sign(Σ_w sign_w[i]) * mean_w(scale_w).
  // Ties (possible for even worker counts) resolve to +1, matching the
  // sign(0)=+1 convention the paper uses for quantization.
  static void MajorityVote(std::span<const std::vector<std::byte>> blobs,
                           std::span<float> out);

  // Reads the sign bit of element i from a blob (true => negative).
  [[nodiscard]] static bool SignBit(std::span<const std::byte> blob,
                                    size_t i);
};

}  // namespace acps::compress
