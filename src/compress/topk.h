// Top-k sparsification (Lin et al. DGC; Shi et al. MLSys'21 variant).
//
// Two selection schemes:
//  * kExact — true top-k by magnitude (nth_element); the paper notes this is
//    what you want semantically but is slow on GPUs.
//  * kSampledThreshold — the paper's "multiple sampling" scheme: binary-search
//    a magnitude threshold using repeated counting passes until the number of
//    surviving elements is close to k, then take elements above it (trimming
//    or padding to exactly k so encoded size stays fixed).
//
// Encode: [k][numel][(index, value) × k]. Selected values are the raw
// gradient entries; aggregation is all-gather + scatter-add-average (Top-k
// results from different workers have different coordinates, so they are not
// additive — the paper's §III-C incompatibility).
#pragma once

#include "compress/compressor.h"

namespace acps::compress {

enum class TopkSelection {
  kExact,
  kSampledThreshold,
};

class TopkCompressor final : public Compressor {
 public:
  // `ratio` is the kept fraction (the paper uses 0.001); at least one
  // element is always kept for non-empty inputs.
  explicit TopkCompressor(double ratio,
                          TopkSelection selection = TopkSelection::kExact);

  [[nodiscard]] std::string name() const override;

  void EncodeInto(std::span<const float> grad,
                  std::span<std::byte> out) override;

  void Decode(std::span<const std::byte> blob,
              std::span<float> out) const override;

  [[nodiscard]] size_t EncodedBytes(size_t numel) const override;

  [[nodiscard]] size_t KeptCount(size_t numel) const;

  // Scatter-adds `blob / num_workers` into `out` (without zeroing `out`):
  // the aggregation step run after all-gather.
  static void AccumulateInto(std::span<const std::byte> blob,
                             std::span<float> out, int num_workers);

  // Statistics of the last Encode for tests / benches.
  [[nodiscard]] int last_threshold_passes() const noexcept {
    return last_threshold_passes_;
  }

 private:
  [[nodiscard]] std::vector<uint32_t> SelectExact(std::span<const float> grad,
                                                  size_t k) const;
  [[nodiscard]] std::vector<uint32_t> SelectSampled(std::span<const float> grad,
                                                    size_t k);

  double ratio_;
  TopkSelection selection_;
  int last_threshold_passes_ = 0;
};

}  // namespace acps::compress
