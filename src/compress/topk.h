// Top-k sparsification (Lin et al. DGC; Shi et al. MLSys'21 variant).
//
// Two selection schemes:
//  * kExact — true top-k by magnitude (nth_element); the paper notes this is
//    what you want semantically but is slow on GPUs.
//  * kSampledThreshold — the paper's "multiple sampling" scheme: pick a
//    magnitude threshold that keeps ≈ k elements, then take elements above it
//    (trimming or padding to exactly k so encoded size stays fixed). The
//    production path finds the threshold with one 4096-bucket histogram that
//    buckets |g| directly by IEEE bit pattern — no max/range pass needed, so
//    selection is 2 data passes total (histogram + gather); the original
//    ~25-pass binary search is kept as SelectSampledBinarySearch for A/B runs.
//
// Encode: [k][numel][(index, value) × k]. Selected values are the raw
// gradient entries; aggregation is all-gather + scatter-add-average (Top-k
// results from different workers have different coordinates, so they are not
// additive — the paper's §III-C incompatibility).
#pragma once

#include "compress/compressor.h"

namespace acps::compress {

enum class TopkSelection {
  kExact,
  kSampledThreshold,
};

class TopkCompressor final : public Compressor {
 public:
  // `ratio` is the kept fraction (the paper uses 0.001); at least one
  // element is always kept for non-empty inputs.
  explicit TopkCompressor(double ratio,
                          TopkSelection selection = TopkSelection::kExact);

  [[nodiscard]] std::string name() const override;

  void EncodeInto(std::span<const float> grad,
                  std::span<std::byte> out) override;

  void Decode(std::span<const std::byte> blob,
              std::span<float> out) const override;

  [[nodiscard]] size_t EncodedBytes(size_t numel) const override;

  [[nodiscard]] size_t KeptCount(size_t numel) const;

  // Scatter-adds `blob / num_workers` into `out` (without zeroing `out`):
  // the aggregation step run after all-gather.
  static void AccumulateInto(std::span<const std::byte> blob,
                             std::span<float> out, int num_workers);

  // Data passes over the gradient made by the last EncodeInto's threshold
  // selection (reset to 0 each call; stays 0 for the exact scheme).
  [[nodiscard]] int last_threshold_passes() const noexcept {
    return last_threshold_passes_;
  }

  // The pre-histogram multi-pass scheme (one counting pass per binary-search
  // probe). Public so bench_kernels can measure histogram vs binary search.
  [[nodiscard]] std::vector<uint32_t> SelectSampledBinarySearch(
      std::span<const float> grad, size_t k);

  // The definitional reference: true top-k by magnitude via nth_element over
  // all n candidates. Public as the naive baseline of bench_kernels' topk
  // case (the paper's premise is that exact selection is too slow at scale).
  [[nodiscard]] std::vector<uint32_t> SelectExact(std::span<const float> grad,
                                                  size_t k) const;

 private:
  [[nodiscard]] std::vector<uint32_t> SelectSampled(std::span<const float> grad,
                                                    size_t k);

  double ratio_;
  TopkSelection selection_;
  int last_threshold_passes_ = 0;
};

}  // namespace acps::compress
