#include "compress/sign.h"

#include <algorithm>
#include <cmath>

#include "par/accum_policy.h"
#include "par/kernel_stats.h"
#include "par/parallel.h"

namespace acps::compress {

namespace {
constexpr size_t kHeaderBytes = sizeof(float) + sizeof(uint64_t);
}

void SignCompressor::EncodeInto(std::span<const float> grad,
                                std::span<std::byte> out) {
  const size_t n = grad.size();
  ACPS_CHECK_MSG(out.size() == EncodedBytes(n), "Sign encode size mismatch");
  par::KernelTimer timer("sign_encode", static_cast<uint64_t>(n));

  // Deterministic fixed-chunk tree (par/parallel.h): same scale for every
  // thread count.
  const double abs_sum = par::ParallelReduce(
      int64_t{1} << 15, static_cast<int64_t>(n), 0.0,
      [&](int64_t begin, int64_t end) {
        double acc = 0.0;
        for (int64_t i = begin; i < end; ++i)
          acc += std::abs(grad[static_cast<size_t>(i)]);
        return acc;
      },
      [](double x, double y) { return x + y; });
  const float scale = n > 0 ? static_cast<float>(abs_sum / double(n)) : 0.0f;

  wire::Write(out, 0, scale);
  wire::Write(out, sizeof(float), static_cast<uint64_t>(n));

  std::byte* bits = out.data() + kHeaderBytes;
  // Block boundaries aligned to 8 elements: each block owns whole bytes, so
  // blocks zero and set their bytes without sharing.
  par::ParallelForBlocks(
      par::kDefaultGrain, static_cast<int64_t>(n), /*align=*/8,
      [&](int64_t, int64_t begin, int64_t end) {
        std::byte* first = bits + begin / 8;
        std::byte* last = bits + (end + 7) / 8;
        std::fill(first, last, std::byte{0});
        for (int64_t i = begin; i < end; ++i) {
          if (grad[static_cast<size_t>(i)] < 0.0f)  // sign(0) = +1 convention
            bits[i / 8] |= static_cast<std::byte>(1u << (i % 8));
        }
      });
}

void SignCompressor::Decode(std::span<const std::byte> blob,
                            std::span<float> out) const {
  const auto scale = wire::Read<float>(blob, 0);
  const auto n = wire::Read<uint64_t>(blob, sizeof(float));
  ACPS_CHECK_MSG(out.size() == n, "Sign decode size mismatch");
  ACPS_CHECK(blob.size() == kHeaderBytes + (n + 7) / 8);
  par::KernelTimer timer("sign_decode", n);
  const std::byte* bits = blob.data() + kHeaderBytes;
  par::ParallelFor(par::kDefaultGrain, static_cast<int64_t>(n),
                   [&](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       const bool neg =
                           (bits[i / 8] &
                            static_cast<std::byte>(1u << (i % 8))) !=
                           std::byte{0};
                       out[static_cast<size_t>(i)] = neg ? -scale : scale;
                     }
                   });
}

bool SignCompressor::SignBit(std::span<const std::byte> blob, size_t i) {
  const auto n = wire::Read<uint64_t>(blob, sizeof(float));
  ACPS_CHECK_MSG(i < n, "SignBit index out of range");
  const std::byte* bits = blob.data() + kHeaderBytes;
  return (bits[i / 8] & static_cast<std::byte>(1u << (i % 8))) !=
         std::byte{0};
}

void SignCompressor::MajorityVote(
    std::span<const std::vector<std::byte>> blobs, std::span<float> out) {
  ACPS_CHECK_MSG(!blobs.empty(), "MajorityVote needs at least one blob");
  const auto n = wire::Read<uint64_t>(blobs[0], sizeof(float));
  ACPS_CHECK_MSG(out.size() == n, "MajorityVote size mismatch");
  par::KernelTimer timer("sign_vote", n * blobs.size());

  // Scales fold in ascending rank order (blobs arrive rank-indexed), the
  // same order on every voter.
  ACPS_ACCUM_POLICY(rank_order);
  double scale_sum = 0.0;
  for (const auto& b : blobs) {
    ACPS_CHECK_MSG(wire::Read<uint64_t>(b, sizeof(float)) == n,
                   "MajorityVote blobs disagree on element count");
    scale_sum += wire::Read<float>(b, 0);
  }
  const float scale = static_cast<float>(scale_sum / double(blobs.size()));

  par::ParallelFor(
      par::kDefaultGrain, static_cast<int64_t>(n),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          int vote = 0;
          for (const auto& b : blobs) {
            const std::byte* bits = b.data() + kHeaderBytes;
            const bool neg =
                (bits[i / 8] & static_cast<std::byte>(1u << (i % 8))) !=
                std::byte{0};
            vote += neg ? -1 : 1;
          }
          out[static_cast<size_t>(i)] = (vote >= 0) ? scale : -scale;  // tie => +1
        }
      });
}

}  // namespace acps::compress
