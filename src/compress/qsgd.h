// QSGD quantization (Alistarh et al., NeurIPS'17) — extension beyond the
// paper's three representatives (the paper cites QSGD in §II-B).
//
// Each element is quantized to one of `levels` magnitude buckets of ‖g‖₂
// with stochastic rounding, making the quantizer *unbiased*:
// E[Decode(Encode(g))] = g. Encoded as one int8 per element (sign + level)
// plus the fp32 norm — 4× reduction at any level count ≤ 127.
#pragma once

#include "compress/compressor.h"
#include "tensor/rng.h"

namespace acps::compress {

class QsgdCompressor final : public Compressor {
 public:
  explicit QsgdCompressor(int levels, uint64_t seed = 0x05617Dull);

  [[nodiscard]] std::string name() const override { return "qsgd"; }

  void EncodeInto(std::span<const float> grad,
                  std::span<std::byte> out) override;

  void Decode(std::span<const std::byte> blob,
              std::span<float> out) const override;

  [[nodiscard]] size_t EncodedBytes(size_t numel) const override {
    return sizeof(float) + sizeof(uint64_t) + numel;  // 1 byte per element
  }

  [[nodiscard]] int levels() const noexcept { return levels_; }

 private:
  int levels_;
  Rng rng_;
};

}  // namespace acps::compress
