// Error-feedback residual store (1-bit SGD / EF-SignSGD / Power-SGD style).
//
// Biased compressors drop part of the gradient every step; error feedback
// keeps the dropped part (the residual) per tensor and adds it back before
// the next compression, which restores convergence (paper §IV-A,
// Algorithm 2). The store is keyed by tensor id and lazily materializes
// zero residuals of the right shape.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "tensor/tensor.h"

namespace acps::compress {

class ErrorFeedback {
 public:
  // Residual for `tensor_id`, created as zeros of `shape` on first use.
  // The shape must stay stable across steps for a given id.
  [[nodiscard]] Tensor& residual(int64_t tensor_id, const Shape& shape);

  // grad += residual (the "feedback" half). No-op allocation-wise when the
  // residual is still zero-initialized.
  void AddInto(int64_t tensor_id, Tensor& grad);

  // residual = compressed_input − reconstruction (the "error" half), where
  // `compressed_input` is the tensor that was fed to the compressor (i.e.
  // gradient + previous residual).
  void Update(int64_t tensor_id, const Tensor& compressed_input,
              const Tensor& reconstruction);

  // Total elements held — the O(N) memory cost the paper notes.
  [[nodiscard]] int64_t total_elements() const noexcept;

  [[nodiscard]] size_t num_tensors() const noexcept { return residuals_.size(); }

  void clear() { residuals_.clear(); }

 private:
  std::unordered_map<int64_t, Tensor> residuals_;
};

}  // namespace acps::compress
