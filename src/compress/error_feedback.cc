#include "compress/error_feedback.h"

#include "par/parallel.h"

namespace acps::compress {

Tensor& ErrorFeedback::residual(int64_t tensor_id, const Shape& shape) {
  auto it = residuals_.find(tensor_id);
  if (it == residuals_.end()) {
    it = residuals_.emplace(tensor_id, Tensor::Zeros(shape)).first;
  }
  ACPS_CHECK_MSG(it->second.shape() == shape,
                 "residual shape changed for tensor " << tensor_id << ": "
                     << ShapeToString(it->second.shape()) << " vs "
                     << ShapeToString(shape));
  return it->second;
}

void ErrorFeedback::AddInto(int64_t tensor_id, Tensor& grad) {
  grad.add_(residual(tensor_id, grad.shape()));
}

void ErrorFeedback::Update(int64_t tensor_id, const Tensor& compressed_input,
                           const Tensor& reconstruction) {
  Tensor& e = residual(tensor_id, compressed_input.shape());
  ACPS_CHECK_MSG(compressed_input.numel() == reconstruction.numel(),
                 "ErrorFeedback::Update size mismatch");
  // Fused e = input − reconstruction: one pass over the three buffers
  // instead of a copy pass followed by a subtract pass.
  float* ed = e.data().data();
  const float* in = compressed_input.data().data();
  const float* rec = reconstruction.data().data();
  par::ParallelFor(par::kDefaultGrain, e.numel(),
                   [&](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i)
                       ed[i] = in[i] - rec[i];
                   });
}

int64_t ErrorFeedback::total_elements() const noexcept {
  int64_t total = 0;
  // Order-independent sum over the residual table (integer adds commute).
  for (const auto& [id, t] : residuals_) total += t.numel();
  return total;
}

}  // namespace acps::compress
