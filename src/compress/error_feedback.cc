#include "compress/error_feedback.h"

namespace acps::compress {

Tensor& ErrorFeedback::residual(int64_t tensor_id, const Shape& shape) {
  auto it = residuals_.find(tensor_id);
  if (it == residuals_.end()) {
    it = residuals_.emplace(tensor_id, Tensor::Zeros(shape)).first;
  }
  ACPS_CHECK_MSG(it->second.shape() == shape,
                 "residual shape changed for tensor " << tensor_id << ": "
                     << ShapeToString(it->second.shape()) << " vs "
                     << ShapeToString(shape));
  return it->second;
}

void ErrorFeedback::AddInto(int64_t tensor_id, Tensor& grad) {
  grad.add_(residual(tensor_id, grad.shape()));
}

void ErrorFeedback::Update(int64_t tensor_id, const Tensor& compressed_input,
                           const Tensor& reconstruction) {
  Tensor& e = residual(tensor_id, compressed_input.shape());
  e.copy_from(compressed_input);
  e.sub_(reconstruction);
}

int64_t ErrorFeedback::total_elements() const noexcept {
  int64_t total = 0;
  for (const auto& [id, t] : residuals_) total += t.numel();
  return total;
}

}  // namespace acps::compress
