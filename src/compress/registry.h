// Name-based compressor factory: builds any one-shot compressor from a
// spec string, e.g. "sign", "blockwise-sign:2048", "topk:0.001",
// "topk-sampled:0.01", "randomk:0.01", "qsgd:8", "terngrad", "fp16".
//
// Used by the examples/CLI surface so users can switch compressors without
// recompiling, and by tests to sweep the whole family uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"

namespace acps::compress {

// Parses `spec` ("name" or "name:param") and constructs the compressor.
// Throws acps::Error for unknown names or invalid parameters.
[[nodiscard]] std::unique_ptr<Compressor> MakeCompressor(
    const std::string& spec);

// All spec names accepted by MakeCompressor (with their default params).
[[nodiscard]] std::vector<std::string> KnownCompressors();

}  // namespace acps::compress
