// ACP-SGD — Alternate Compressed Power-SGD, the paper's contribution
// (Algorithms 1 and 2).
//
// Instead of computing and aggregating *both* low-rank factors every step
// (Power-SGD), ACP-SGD alternates:
//
//   odd step t:   Q_t ← Orthogonalize(Q_{t-1})
//                 P_t ← (M_t + E_{t-1}) · Q_t          (compute P)
//                 E_t ← (M_t + E_{t-1}) − P_t · Q_tᵀ   (update E, local P)
//                 P_t ← AllReduce-mean(P_t)            (aggregate P)
//                 M̂_t = P_t · Q_tᵀ
//
//   even step t:  P_t ← Orthogonalize(P_{t-1})
//                 Q_t ← (M_t + E_{t-1})ᵀ · P_t         (compute Q)
//                 E_t ← (M_t + E_{t-1}) − P_t · Q_tᵀ   (update E, local Q)
//                 Q_t ← AllReduce-mean(Q_t)            (aggregate Q)
//                 M̂_t = P_t · Q_tᵀ
//
// Two consequences (paper §IV-A):
//  * the single all-reduce per step is issued after all local compute for
//    the tensor has finished — communication is NON-BLOCKING, so WFBP and
//    tensor fusion apply exactly as in S-SGD;
//  * compression and communication costs are roughly halved versus
//    Power-SGD (one matmul + one orthogonalization + one all-reduce).
//
// Query reuse (orthogonalizing the previous step's factor rather than a
// fresh random one) and error feedback are both needed for accuracy —
// the Fig. 7 ablations; both are toggleable here for exactly that study.
//
// To expose the non-blocking structure to the runtime, the step is split
// into LocalStep (all compute; returns a view of the factor to communicate)
// and Finish (called after the factor was aggregated; produces M̂). The
// convenience Step() runs both around a callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "compress/powersgd.h"  // AllReduceMeanFn, EffectiveRank, ...
#include "linalg/orthogonalize.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace acps::compress {

struct AcpSgdConfig {
  int64_t rank = 4;
  OrthoScheme ortho = OrthoScheme::kQr;
  bool error_feedback = true;  // Fig. 7 ablation: "w/o EF"
  bool reuse = true;           // Fig. 7 ablation: "w/o reuse"
  uint64_t seed = 0xAC9ull;    // must be identical on all workers

  // Returns "" when the config is usable, otherwise one descriptive message
  // naming every violated constraint. Checked at AcpSgd construction and at
  // GradReducer entry so all runtimes fail with the same diagnostics.
  [[nodiscard]] std::string Validate() const;
};

class AcpSgd {
 public:
  explicit AcpSgd(AcpSgdConfig config);

  // --- Non-blocking API ------------------------------------------------
  // Runs all local compute for this step of `tensor_id` on gradient matrix
  // `m` and returns the factor (P on odd steps, Q on even steps) that must
  // now be mean-all-reduced. The returned span aliases internal state and
  // stays valid until Finish().
  [[nodiscard]] std::span<float> LocalStep(int64_t tensor_id, const Tensor& m);

  // After the factor returned by LocalStep was aggregated in place,
  // reconstructs the aggregated gradient M̂ = P·Qᵀ into `out` (shape of m).
  void Finish(int64_t tensor_id, Tensor& out);

  // --- Blocking convenience --------------------------------------------
  // LocalStep + allreduce + Finish; replaces `m` with M̂.
  void Step(int64_t tensor_id, Tensor& m, const AllReduceMeanFn& allreduce);

  [[nodiscard]] const AcpSgdConfig& config() const noexcept { return config_; }

  // Elements communicated per step for an n×m matrix — r·n or r·m
  // depending on parity; the average is r(n+m)/2, half of Power-SGD.
  [[nodiscard]] int64_t CommElements(int64_t n, int64_t m,
                                     uint64_t step) const;

  // Step counter of a tensor (starts at 0; the first LocalStep runs step 1,
  // an odd/P step).
  [[nodiscard]] uint64_t step_of(int64_t tensor_id) const;

 private:
  struct State {
    Tensor p;       // [n×r]
    Tensor q;       // [m×r]
    Tensor e;       // [n×m] residual (if EF)
    uint64_t t = 0; // completed steps
    bool pending = false;  // LocalStep issued, Finish outstanding
  };

  State& state_for(int64_t tensor_id, int64_t n, int64_t m, int64_t r);

  AcpSgdConfig config_;
  std::unordered_map<int64_t, State> states_;
};

}  // namespace acps::compress
