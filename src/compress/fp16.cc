#include "compress/fp16.h"

#include <bit>
#include <cmath>

namespace acps::compress {

uint16_t FloatToHalf(float f) {
  const uint32_t bits = std::bit_cast<uint32_t>(f);
  const uint32_t sign = (bits >> 16) & 0x8000u;
  uint32_t exp = (bits >> 23) & 0xFFu;
  uint32_t mant = bits & 0x7FFFFFu;

  if (exp == 0xFFu) {  // inf / nan
    return static_cast<uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  // Re-bias exponent 127 -> 15.
  const int new_exp = static_cast<int>(exp) - 127 + 15;
  if (new_exp >= 0x1F) {  // overflow -> inf
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (new_exp <= 0) {  // subnormal or zero
    if (new_exp < -10) return static_cast<uint16_t>(sign);
    mant |= 0x800000u;  // implicit leading 1
    const int shift = 14 - new_exp;
    uint32_t half_mant = mant >> shift;
    // Round to nearest even.
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u)))
      ++half_mant;
    return static_cast<uint16_t>(sign | half_mant);
  }
  // Normal: round mantissa 23 -> 10 bits, nearest even.
  uint32_t half = sign | (static_cast<uint32_t>(new_exp) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;  // may carry
  return static_cast<uint16_t>(half);
}

float HalfToFloat(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;

  if (exp == 0x1Fu) {  // inf / nan
    return std::bit_cast<float>(sign | 0x7F800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return std::bit_cast<float>(sign);  // ±0
    // Subnormal: normalize.
    int e = -1;
    do {
      mant <<= 1;
      ++e;
    } while ((mant & 0x400u) == 0);
    mant &= 0x3FFu;
    return std::bit_cast<float>(sign | ((112u - e) << 23) | (mant << 13));
  }
  return std::bit_cast<float>(sign | ((exp + 112u) << 23) | (mant << 13));
}

void Fp16Compressor::EncodeInto(std::span<const float> grad,
                                std::span<std::byte> out) {
  ACPS_CHECK_MSG(out.size() == EncodedBytes(grad.size()),
                 "fp16 encode size mismatch");
  wire::Write(out, 0, static_cast<uint64_t>(grad.size()));
  for (size_t i = 0; i < grad.size(); ++i) {
    wire::Write(out, sizeof(uint64_t) + i * sizeof(uint16_t),
                FloatToHalf(grad[i]));
  }
}

void Fp16Compressor::Decode(std::span<const std::byte> blob,
                            std::span<float> out) const {
  const auto n = wire::Read<uint64_t>(blob, 0);
  ACPS_CHECK_MSG(out.size() == n, "fp16 decode size mismatch");
  for (size_t i = 0; i < n; ++i) {
    out[i] = HalfToFloat(
        wire::Read<uint16_t>(blob, sizeof(uint64_t) + i * sizeof(uint16_t)));
  }
}

}  // namespace acps::compress
