#include "compress/terngrad.h"

#include <algorithm>
#include <cmath>

namespace acps::compress {

namespace {
constexpr size_t kHeaderBytes = sizeof(float) + sizeof(uint64_t);
// 2-bit codes: 0 => 0, 1 => +1, 2 => -1.
constexpr uint8_t kZero = 0, kPos = 1, kNeg = 2;
}  // namespace

TernGradCompressor::TernGradCompressor(uint64_t seed) : rng_(seed) {}

void TernGradCompressor::EncodeInto(std::span<const float> grad,
                                    std::span<std::byte> out) {
  const size_t n = grad.size();
  ACPS_CHECK_MSG(out.size() == EncodedBytes(n),
                 "TernGrad encode size mismatch");
  float smax = 0.0f;
  for (float v : grad) smax = std::max(smax, std::abs(v));

  wire::Write(out, 0, smax);
  wire::Write(out, sizeof(float), static_cast<uint64_t>(n));

  std::byte* codes = out.data() + kHeaderBytes;
  std::fill(codes, codes + (n + 3) / 4, std::byte{0});
  for (size_t i = 0; i < n; ++i) {
    uint8_t code = kZero;
    if (smax > 0.0f) {
      // P(|q| = 1) = |g| / max|g|  => unbiased after scaling by max.
      const float prob = std::abs(grad[i]) / smax;
      if (static_cast<float>(rng_.next_double()) < prob)
        code = grad[i] < 0.0f ? kNeg : kPos;
    }
    codes[i / 4] |= static_cast<std::byte>(code << (2 * (i % 4)));
  }
}

void TernGradCompressor::Decode(std::span<const std::byte> blob,
                                std::span<float> out) const {
  const auto smax = wire::Read<float>(blob, 0);
  const auto n = wire::Read<uint64_t>(blob, sizeof(float));
  ACPS_CHECK_MSG(out.size() == n, "TernGrad decode size mismatch");
  ACPS_CHECK(blob.size() == kHeaderBytes + (n + 3) / 4);
  const std::byte* codes = blob.data() + kHeaderBytes;
  for (size_t i = 0; i < n; ++i) {
    const auto code =
        (static_cast<uint8_t>(codes[i / 4]) >> (2 * (i % 4))) & 0x3u;
    out[i] = code == kPos ? smax : (code == kNeg ? -smax : 0.0f);
  }
}

}  // namespace acps::compress
