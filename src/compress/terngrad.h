// TernGrad quantization (Wen et al., NeurIPS'17) — extension (cited in
// §II-B): each element becomes {-1, 0, +1} × max|g| with stochastic
// rounding, unbiased in expectation. Encoded as 2 bits per element.
#pragma once

#include "compress/compressor.h"
#include "tensor/rng.h"

namespace acps::compress {

class TernGradCompressor final : public Compressor {
 public:
  explicit TernGradCompressor(uint64_t seed = 0x7E56ull);

  [[nodiscard]] std::string name() const override { return "terngrad"; }

  void EncodeInto(std::span<const float> grad,
                  std::span<std::byte> out) override;

  void Decode(std::span<const std::byte> blob,
              std::span<float> out) const override;

  [[nodiscard]] size_t EncodedBytes(size_t numel) const override {
    return sizeof(float) + sizeof(uint64_t) + (numel + 3) / 4;  // 2 bits/elem
  }

 private:
  Rng rng_;
};

}  // namespace acps::compress
