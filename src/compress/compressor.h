// One-shot (stateless) gradient compressor interface.
//
// Covers the quantization / sparsification families from the paper's §II-B:
// Sign-SGD, Top-k, Random-k, plus the QSGD / TernGrad / FP16 extensions.
// Low-rank methods (Power-SGD, ACP-SGD) are stateful per-tensor algorithms
// and live in powersgd.h / acpsgd.h instead.
//
// Encode/Decode are lossy: Decode(Encode(g)) approximates g. Aggregation
// semantics (all-gather + majority vote / scatter-add) are implemented by
// the core runtime on top of these primitives.
//
// The primitive encode operation is zero-copy: EncodeInto writes the blob
// into caller-owned storage of exactly EncodedBytes(|grad|) bytes, so hot
// loops (aggregators encoding every step) reuse one scratch buffer instead
// of allocating a fresh vector per tensor. Encode() is the allocating
// convenience wrapper on top.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace acps::compress {

class Compressor {
 public:
  virtual ~Compressor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Encodes `grad` into `out`, which must be exactly
  // EncodedBytes(grad.size()) bytes (checked). Every byte of `out` is
  // written. Stateful encoders (step counters, RNG streams) advance exactly
  // as they would for Encode().
  virtual void EncodeInto(std::span<const float> grad,
                          std::span<std::byte> out) = 0;

  // Allocating convenience wrapper around EncodeInto.
  [[nodiscard]] std::vector<std::byte> Encode(std::span<const float> grad) {
    std::vector<std::byte> blob(EncodedBytes(grad.size()));
    EncodeInto(grad, blob);
    return blob;
  }

  // Decodes `blob` into `out` (must be the original element count),
  // overwriting all elements.
  virtual void Decode(std::span<const std::byte> blob,
                      std::span<float> out) const = 0;

  // Encoded size in bytes for a gradient of `numel` elements (exact for all
  // implementations in this library).
  [[nodiscard]] virtual size_t EncodedBytes(size_t numel) const = 0;

  // Compression ratio = uncompressed bytes / encoded bytes.
  [[nodiscard]] double CompressionRatio(size_t numel) const {
    const size_t enc = EncodedBytes(numel);
    ACPS_CHECK(enc > 0);
    return static_cast<double>(numel * sizeof(float)) /
           static_cast<double>(enc);
  }
};

// Little-endian scalar (de)serialization helpers shared by the encoders.
namespace wire {

template <typename T>
void Append(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

// Fixed-position write into a preallocated blob (the EncodeInto analogue of
// Append).
template <typename T>
void Write(std::span<std::byte> out, size_t offset, const T& value) {
  ACPS_CHECK_MSG(offset + sizeof(T) <= out.size(), "wire write out of range");
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
[[nodiscard]] T Read(std::span<const std::byte> blob, size_t offset) {
  ACPS_CHECK_MSG(offset + sizeof(T) <= blob.size(), "wire read out of range");
  T value;
  std::memcpy(&value, blob.data() + offset, sizeof(T));
  return value;
}

}  // namespace wire
}  // namespace acps::compress
