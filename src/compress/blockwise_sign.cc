#include "compress/blockwise_sign.h"

#include <algorithm>
#include <cmath>

#include "par/accum_policy.h"

namespace acps::compress {

namespace {
constexpr size_t kHeaderBytes = 2 * sizeof(uint64_t);  // numel, block size
}

BlockwiseSignCompressor::BlockwiseSignCompressor(size_t block_size)
    : block_size_(block_size) {
  ACPS_CHECK_MSG(block_size >= 1, "block size must be >= 1");
}

size_t BlockwiseSignCompressor::EncodedBytes(size_t numel) const {
  return kHeaderBytes + NumBlocks(numel) * sizeof(float) + (numel + 7) / 8;
}

void BlockwiseSignCompressor::EncodeInto(std::span<const float> grad,
                                         std::span<std::byte> out) {
  const size_t n = grad.size();
  const size_t blocks = NumBlocks(n);
  ACPS_CHECK_MSG(out.size() == EncodedBytes(n),
                 "blockwise-sign encode size mismatch");
  wire::Write(out, 0, static_cast<uint64_t>(n));
  wire::Write(out, sizeof(uint64_t), static_cast<uint64_t>(block_size_));

  // Per-block mean magnitude scales. The per-block sum runs over ascending
  // element index on every rank, so encodings are bitwise reproducible.
  ACPS_ACCUM_POLICY(serial_index_order);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * block_size_;
    const size_t end = std::min(n, begin + block_size_);
    double abs_sum = 0.0;
    for (size_t i = begin; i < end; ++i) abs_sum += std::abs(grad[i]);
    wire::Write(out, kHeaderBytes + b * sizeof(float),
                static_cast<float>(abs_sum / double(end - begin)));
  }

  std::byte* bits = out.data() + kHeaderBytes + blocks * sizeof(float);
  std::fill(bits, bits + (n + 7) / 8, std::byte{0});
  for (size_t i = 0; i < n; ++i) {
    if (grad[i] < 0.0f)
      bits[i / 8] |= static_cast<std::byte>(1u << (i % 8));
  }
}

void BlockwiseSignCompressor::Decode(std::span<const std::byte> blob,
                                     std::span<float> out) const {
  const auto n = wire::Read<uint64_t>(blob, 0);
  const auto bs = wire::Read<uint64_t>(blob, sizeof(uint64_t));
  ACPS_CHECK_MSG(out.size() == n, "blockwise-sign decode size mismatch");
  ACPS_CHECK_MSG(bs == block_size_, "blob encoded with different block size");
  const size_t blocks = NumBlocks(n);
  ACPS_CHECK(blob.size() == kHeaderBytes + blocks * sizeof(float) + (n + 7) / 8);
  const std::byte* bits = blob.data() + kHeaderBytes + blocks * sizeof(float);
  for (size_t i = 0; i < n; ++i) {
    const float scale =
        wire::Read<float>(blob, kHeaderBytes + (i / block_size_) * sizeof(float));
    const bool neg =
        (bits[i / 8] & static_cast<std::byte>(1u << (i % 8))) != std::byte{0};
    out[i] = neg ? -scale : scale;
  }
}

}  // namespace acps::compress
