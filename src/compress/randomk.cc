#include "compress/randomk.h"

#include <algorithm>
#include <cmath>

#include "tensor/rng.h"

namespace acps::compress {

namespace {
constexpr size_t kHeaderBytes = 3 * sizeof(uint64_t);  // seed, k, numel

// Samples k distinct indices in [0, n) via a partial Fisher–Yates walk,
// deterministic in `seed`.
std::vector<uint32_t> SampleIndices(uint64_t seed, size_t k, size_t n) {
  ACPS_CHECK(k <= n);
  Rng rng(seed);
  std::vector<uint32_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = static_cast<uint32_t>(i);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(rng.next_below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace

RandomkCompressor::RandomkCompressor(double ratio, uint64_t seed)
    : ratio_(ratio), seed_(seed) {
  ACPS_CHECK_MSG(ratio > 0.0 && ratio <= 1.0,
                 "random-k ratio must be in (0, 1], got " << ratio);
}

size_t RandomkCompressor::KeptCount(size_t numel) const {
  if (numel == 0) return 0;
  return std::max<size_t>(
      1, static_cast<size_t>(std::llround(ratio_ * double(numel))));
}

size_t RandomkCompressor::EncodedBytes(size_t numel) const {
  return kHeaderBytes + KeptCount(numel) * sizeof(float);
}

void RandomkCompressor::EncodeInto(std::span<const float> grad,
                                   std::span<std::byte> out) {
  const size_t n = grad.size();
  const size_t k = KeptCount(n);
  ACPS_CHECK_MSG(out.size() == EncodedBytes(n), "Randomk encode size mismatch");
  const uint64_t step_seed = seed_ ^ (0x9E3779B97F4A7C15ull * (step_ + 1));
  ++step_;

  wire::Write(out, 0, step_seed);
  wire::Write(out, sizeof(uint64_t), static_cast<uint64_t>(k));
  wire::Write(out, 2 * sizeof(uint64_t), static_cast<uint64_t>(n));
  if (n == 0) return;

  const auto idx = SampleIndices(step_seed, k, n);
  size_t off = kHeaderBytes;
  for (uint32_t i : idx) {
    wire::Write(out, off, grad[i]);
    off += sizeof(float);
  }
}

std::vector<uint32_t> RandomkCompressor::IndicesOf(
    std::span<const std::byte> blob) {
  const auto seed = wire::Read<uint64_t>(blob, 0);
  const auto k = wire::Read<uint64_t>(blob, sizeof(uint64_t));
  const auto n = wire::Read<uint64_t>(blob, 2 * sizeof(uint64_t));
  if (n == 0) return {};
  return SampleIndices(seed, k, n);
}

void RandomkCompressor::Decode(std::span<const std::byte> blob,
                               std::span<float> out) const {
  const auto k = wire::Read<uint64_t>(blob, sizeof(uint64_t));
  const auto n = wire::Read<uint64_t>(blob, 2 * sizeof(uint64_t));
  ACPS_CHECK_MSG(out.size() == n, "Randomk decode size mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  if (n == 0) return;
  const auto idx = IndicesOf(blob);
  for (size_t j = 0; j < k; ++j) {
    out[idx[j]] =
        wire::Read<float>(blob, kHeaderBytes + j * sizeof(float));
  }
}

std::vector<std::byte> RandomkCompressor::Add(std::span<const std::byte> a,
                                              std::span<const std::byte> b) {
  ACPS_CHECK_MSG(a.size() == b.size(), "Randomk::Add blob size mismatch");
  for (size_t off = 0; off < kHeaderBytes; off += sizeof(uint64_t)) {
    ACPS_CHECK_MSG(wire::Read<uint64_t>(a, off) == wire::Read<uint64_t>(b, off),
                   "Randomk::Add requires identical (seed, k, numel)");
  }
  std::vector<std::byte> out(a.begin(), a.end());
  const auto k = wire::Read<uint64_t>(a, sizeof(uint64_t));
  for (size_t j = 0; j < k; ++j) {
    const size_t off = kHeaderBytes + j * sizeof(float);
    const float sum = wire::Read<float>(a, off) + wire::Read<float>(b, off);
    std::memcpy(out.data() + off, &sum, sizeof(float));
  }
  return out;
}

}  // namespace acps::compress
