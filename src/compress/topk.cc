#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>

#include "par/kernel_stats.h"
#include "par/parallel.h"

namespace acps::compress {

namespace {
constexpr size_t kHeaderBytes = 2 * sizeof(uint64_t);
constexpr size_t kRecordBytes = sizeof(uint32_t) + sizeof(float);

// Histogram resolution for the sampled-threshold scheme. Magnitudes are
// bucketed directly by IEEE-754 bit pattern: for non-negative floats the bit
// pattern is monotone in the value, so `(bits & 0x7FFFFFFF) >> kBucketShift`
// — the exponent plus the top 4 mantissa bits — is a magnitude-ordered
// 4096-bucket histogram that needs no prior max/range pass and no float math
// in the counting loop. A bucket spans ~6% of relative magnitude, so the
// trim nth_element after the gather touches a small overflow set.
constexpr size_t kHistBuckets = 4096;
constexpr int kBucketShift = 19;
static_assert((0x7FFFFFFFu >> kBucketShift) == kHistBuckets - 1,
              "bucket shift must map the finite |float| range onto the "
              "histogram exactly");

// Ascending-index gather of elements with |g_i| >= threshold. Per-block
// gathers concatenated in block order reproduce the serial ascending order
// for any partition, so the selection is thread-count invariant.
std::vector<uint32_t> GatherAtLeast(std::span<const float> grad,
                                    float threshold) {
  const int64_t n = static_cast<int64_t>(grad.size());
  const int64_t nblocks = par::NumForBlocks(par::kDefaultGrain, n);
  std::vector<std::vector<uint32_t>> locals(
      static_cast<size_t>(std::max<int64_t>(nblocks, 1)));
  par::ParallelForBlocks(par::kDefaultGrain, n, /*align=*/1,
                         [&](int64_t b, int64_t begin, int64_t end) {
                           auto& local = locals[static_cast<size_t>(b)];
                           for (int64_t i = begin; i < end; ++i)
                             if (std::abs(grad[static_cast<size_t>(i)]) >=
                                 threshold)
                               local.push_back(static_cast<uint32_t>(i));
                         });
  std::vector<uint32_t> idx;
  for (const auto& local : locals) idx.insert(idx.end(), local.begin(), local.end());
  return idx;
}

}  // namespace

TopkCompressor::TopkCompressor(double ratio, TopkSelection selection)
    : ratio_(ratio), selection_(selection) {
  ACPS_CHECK_MSG(ratio > 0.0 && ratio <= 1.0,
                 "top-k ratio must be in (0, 1], got " << ratio);
}

std::string TopkCompressor::name() const {
  return selection_ == TopkSelection::kExact ? "topk-exact" : "topk-sampled";
}

size_t TopkCompressor::KeptCount(size_t numel) const {
  if (numel == 0) return 0;
  return std::max<size_t>(1, static_cast<size_t>(
                                 std::llround(ratio_ * double(numel))));
}

size_t TopkCompressor::EncodedBytes(size_t numel) const {
  return kHeaderBytes + KeptCount(numel) * kRecordBytes;
}

std::vector<uint32_t> TopkCompressor::SelectExact(std::span<const float> grad,
                                                  size_t k) const {
  std::vector<uint32_t> idx(grad.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::nth_element(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k),
                   idx.end(), [&](uint32_t a, uint32_t b) {
                     return std::abs(grad[a]) > std::abs(grad[b]);
                   });
  idx.resize(k);
  return idx;
}

std::vector<uint32_t> TopkCompressor::SelectSampled(
    std::span<const float> grad, size_t k) {
  // Histogram-assisted threshold selection, two passes total:
  //   1. histogram pass — every |g_i| bucketed by bit pattern (see
  //                       kBucketShift above): pure integer ops, no prior
  //                       max/range pass, and integer counts make the
  //                       cross-chunk merge exact and order-independent
  //   2. gather pass    — indices with |g| >= threshold
  // versus ~25 counting passes for the binary search it replaces
  // (SelectSampledBinarySearch below, kept for A/B runs) and 3 passes for
  // the max-then-linear-scale histogram this scheme supersedes.
  par::KernelTimer timer("topk_select", 0);
  const size_t n = grad.size();
  const int64_t n64 = static_cast<int64_t>(n);

  // Per-block integer histograms; summing them is exact in any order.
  const int64_t nblocks = par::NumForBlocks(par::kDefaultGrain, n64);
  std::vector<std::vector<uint32_t>> locals(
      static_cast<size_t>(std::max<int64_t>(nblocks, 1)));
  par::ParallelForBlocks(
      par::kDefaultGrain, n64, /*align=*/1,
      [&](int64_t b, int64_t begin, int64_t end) {
        auto& hist = locals[static_cast<size_t>(b)];
        hist.assign(kHistBuckets, 0);
        for (int64_t i = begin; i < end; ++i) {
          uint32_t bits;
          std::memcpy(&bits, &grad[static_cast<size_t>(i)], sizeof(bits));
          ++hist[(bits & 0x7FFFFFFFu) >> kBucketShift];
        }
      });
  std::vector<uint64_t> hist(kHistBuckets, 0);
  for (const auto& local : locals)
    for (size_t bkt = 0; bkt < local.size(); ++bkt) hist[bkt] += local[bkt];
  last_threshold_passes_ = 1;  // the histogram pass

  // Walk buckets from the top until at least k elements are covered; the
  // threshold is that bucket's lower edge (its bit pattern reconstructed by
  // undoing the shift), so the gather returns every covered element
  // (possibly a few more from edge ties — trimmed below). NaN/Inf magnitudes
  // land in the topmost buckets; the gather's `>=` comparison excludes NaN,
  // and the pad path below tops the selection back up to k.
  uint64_t covered = 0;
  uint32_t cut = 0;
  for (size_t bkt = kHistBuckets; bkt-- > 0;) {
    covered += hist[bkt];
    if (covered >= k) {
      cut = static_cast<uint32_t>(bkt);
      break;
    }
  }
  float threshold = 0.0f;
  const uint32_t cut_bits = cut << kBucketShift;
  std::memcpy(&threshold, &cut_bits, sizeof(threshold));

  std::vector<uint32_t> idx = GatherAtLeast(grad, threshold);
  ++last_threshold_passes_;  // the gather pass

  if (idx.size() > k) {
    std::nth_element(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k),
                     idx.end(), [&](uint32_t a, uint32_t b) {
                       return std::abs(grad[a]) > std::abs(grad[b]);
                     });
    idx.resize(k);
  } else if (idx.size() < k) {
    // Can only happen via NaN magnitudes (excluded by every comparison):
    // fill up from the complement so the encoded size stays fixed.
    std::vector<uint32_t> rest;
    rest.reserve(n - idx.size());
    for (uint32_t i = 0; i < n; ++i)
      if (!(std::abs(grad[i]) >= threshold)) rest.push_back(i);
    const size_t need = k - idx.size();
    std::nth_element(rest.begin(), rest.begin() + static_cast<ptrdiff_t>(need),
                     rest.end(), [&](uint32_t a, uint32_t b) {
                       return std::abs(grad[a]) > std::abs(grad[b]);
                     });
    idx.insert(idx.end(), rest.begin(),
               rest.begin() + static_cast<ptrdiff_t>(need));
  }
  return idx;
}

std::vector<uint32_t> TopkCompressor::SelectSampledBinarySearch(
    std::span<const float> grad, size_t k) {
  // The original multi-pass scheme: binary-search a magnitude threshold t so
  // that |{i : |g_i| > t}| ≈ k, one full counting pass per probe. Retained
  // as the bench_kernels baseline for the histogram selection above.
  const size_t n = grad.size();
  float lo = 0.0f, hi = 0.0f;
  for (float v : grad) hi = std::max(hi, std::abs(v));
  last_threshold_passes_ = 1;  // the max pass

  float threshold = 0.0f;
  size_t above = n;
  for (int pass = 0; pass < 24 && hi - lo > 1e-12f * hi + 1e-30f; ++pass) {
    const float mid = 0.5f * (lo + hi);
    size_t count = 0;
    for (float v : grad)
      if (std::abs(v) > mid) ++count;
    ++last_threshold_passes_;
    if (count >= k) {
      lo = mid;
      threshold = mid;
      above = count;
    } else {
      hi = mid;
    }
    // Accept once we are within 1% of k (the "close top-k threshold" the
    // paper's footnote describes).
    if (count >= k && count <= k + std::max<size_t>(1, k / 100)) {
      threshold = mid;
      above = count;
      break;
    }
  }

  // Gather indices above the threshold, trim to exactly k by magnitude
  // order of the overflow, pad from the remaining largest if short.
  std::vector<uint32_t> idx;
  idx.reserve(above);
  for (uint32_t i = 0; i < n; ++i)
    if (std::abs(grad[i]) > threshold) idx.push_back(i);

  if (idx.size() > k) {
    std::nth_element(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k),
                     idx.end(), [&](uint32_t a, uint32_t b) {
                       return std::abs(grad[a]) > std::abs(grad[b]);
                     });
    idx.resize(k);
  } else if (idx.size() < k) {
    // Threshold cut too deep (ties / tight distributions): fall back to an
    // exact pass over the remainder to fill up.
    std::vector<uint32_t> rest;
    rest.reserve(n - idx.size());
    for (uint32_t i = 0; i < n; ++i)
      if (std::abs(grad[i]) <= threshold) rest.push_back(i);
    const size_t need = k - idx.size();
    std::nth_element(rest.begin(), rest.begin() + static_cast<ptrdiff_t>(need),
                     rest.end(), [&](uint32_t a, uint32_t b) {
                       return std::abs(grad[a]) > std::abs(grad[b]);
                     });
    idx.insert(idx.end(), rest.begin(),
               rest.begin() + static_cast<ptrdiff_t>(need));
  }
  return idx;
}

void TopkCompressor::EncodeInto(std::span<const float> grad,
                                std::span<std::byte> out) {
  const size_t n = grad.size();
  const size_t k = KeptCount(n);
  ACPS_CHECK_MSG(out.size() == EncodedBytes(n), "Topk encode size mismatch");
  last_threshold_passes_ = 0;  // per-call stat: stays 0 for the exact scheme
  wire::Write(out, 0, static_cast<uint64_t>(k));
  wire::Write(out, sizeof(uint64_t), static_cast<uint64_t>(n));
  if (n == 0) return;

  const std::vector<uint32_t> idx = selection_ == TopkSelection::kExact
                                        ? SelectExact(grad, k)
                                        : SelectSampled(grad, k);
  ACPS_CHECK(idx.size() == k);
  size_t off = kHeaderBytes;
  for (uint32_t i : idx) {
    wire::Write(out, off, i);
    wire::Write(out, off + sizeof(uint32_t), grad[i]);
    off += kRecordBytes;
  }
}

void TopkCompressor::Decode(std::span<const std::byte> blob,
                            std::span<float> out) const {
  const auto n = wire::Read<uint64_t>(blob, sizeof(uint64_t));
  ACPS_CHECK_MSG(out.size() == n, "Topk decode size mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  AccumulateInto(blob, out, /*num_workers=*/1);
}

void TopkCompressor::AccumulateInto(std::span<const std::byte> blob,
                                    std::span<float> out, int num_workers) {
  ACPS_CHECK(num_workers >= 1);
  const auto k = wire::Read<uint64_t>(blob, 0);
  const auto n = wire::Read<uint64_t>(blob, sizeof(uint64_t));
  ACPS_CHECK_MSG(out.size() == n, "Topk accumulate size mismatch");
  ACPS_CHECK(blob.size() == kHeaderBytes + k * kRecordBytes);
  const float inv = 1.0f / static_cast<float>(num_workers);
  size_t off = kHeaderBytes;
  for (uint64_t j = 0; j < k; ++j) {
    const auto i = wire::Read<uint32_t>(blob, off);
    const auto v = wire::Read<float>(blob, off + sizeof(uint32_t));
    ACPS_CHECK_MSG(i < n, "Topk index out of range");
    out[i] += v * inv;
    off += kRecordBytes;
  }
}

}  // namespace acps::compress
