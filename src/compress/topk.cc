#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace acps::compress {

namespace {
constexpr size_t kHeaderBytes = 2 * sizeof(uint64_t);
constexpr size_t kRecordBytes = sizeof(uint32_t) + sizeof(float);
}  // namespace

TopkCompressor::TopkCompressor(double ratio, TopkSelection selection)
    : ratio_(ratio), selection_(selection) {
  ACPS_CHECK_MSG(ratio > 0.0 && ratio <= 1.0,
                 "top-k ratio must be in (0, 1], got " << ratio);
}

std::string TopkCompressor::name() const {
  return selection_ == TopkSelection::kExact ? "topk-exact" : "topk-sampled";
}

size_t TopkCompressor::KeptCount(size_t numel) const {
  if (numel == 0) return 0;
  return std::max<size_t>(1, static_cast<size_t>(
                                 std::llround(ratio_ * double(numel))));
}

size_t TopkCompressor::EncodedBytes(size_t numel) const {
  return kHeaderBytes + KeptCount(numel) * kRecordBytes;
}

std::vector<uint32_t> TopkCompressor::SelectExact(std::span<const float> grad,
                                                  size_t k) const {
  std::vector<uint32_t> idx(grad.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::nth_element(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k),
                   idx.end(), [&](uint32_t a, uint32_t b) {
                     return std::abs(grad[a]) > std::abs(grad[b]);
                   });
  idx.resize(k);
  return idx;
}

std::vector<uint32_t> TopkCompressor::SelectSampled(
    std::span<const float> grad, size_t k) {
  // Binary-search a magnitude threshold t so that |{i : |g_i| > t}| ≈ k.
  // Each probe is a full counting pass — this is what makes sampled Top-k a
  // multi-pass (compute-heavy) kernel, the behaviour the paper measures.
  const size_t n = grad.size();
  float lo = 0.0f, hi = 0.0f;
  for (float v : grad) hi = std::max(hi, std::abs(v));
  last_threshold_passes_ = 1;  // the max pass

  float threshold = 0.0f;
  size_t above = n;
  for (int pass = 0; pass < 24 && hi - lo > 1e-12f * hi + 1e-30f; ++pass) {
    const float mid = 0.5f * (lo + hi);
    size_t count = 0;
    for (float v : grad)
      if (std::abs(v) > mid) ++count;
    ++last_threshold_passes_;
    if (count >= k) {
      lo = mid;
      threshold = mid;
      above = count;
    } else {
      hi = mid;
    }
    // Accept once we are within 1% of k (the "close top-k threshold" the
    // paper's footnote describes).
    if (count >= k && count <= k + std::max<size_t>(1, k / 100)) {
      threshold = mid;
      above = count;
      break;
    }
  }

  // Gather indices above the threshold, trim to exactly k by magnitude
  // order of the overflow, pad from the remaining largest if short.
  std::vector<uint32_t> idx;
  idx.reserve(above);
  for (uint32_t i = 0; i < n; ++i)
    if (std::abs(grad[i]) > threshold) idx.push_back(i);

  if (idx.size() > k) {
    std::nth_element(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k),
                     idx.end(), [&](uint32_t a, uint32_t b) {
                       return std::abs(grad[a]) > std::abs(grad[b]);
                     });
    idx.resize(k);
  } else if (idx.size() < k) {
    // Threshold cut too deep (ties / tight distributions): fall back to an
    // exact pass over the remainder to fill up.
    std::vector<uint32_t> rest;
    rest.reserve(n - idx.size());
    for (uint32_t i = 0; i < n; ++i)
      if (std::abs(grad[i]) <= threshold) rest.push_back(i);
    const size_t need = k - idx.size();
    std::nth_element(rest.begin(), rest.begin() + static_cast<ptrdiff_t>(need),
                     rest.end(), [&](uint32_t a, uint32_t b) {
                       return std::abs(grad[a]) > std::abs(grad[b]);
                     });
    idx.insert(idx.end(), rest.begin(),
               rest.begin() + static_cast<ptrdiff_t>(need));
  }
  return idx;
}

void TopkCompressor::EncodeInto(std::span<const float> grad,
                                std::span<std::byte> out) {
  const size_t n = grad.size();
  const size_t k = KeptCount(n);
  ACPS_CHECK_MSG(out.size() == EncodedBytes(n), "Topk encode size mismatch");
  wire::Write(out, 0, static_cast<uint64_t>(k));
  wire::Write(out, sizeof(uint64_t), static_cast<uint64_t>(n));
  if (n == 0) return;

  const std::vector<uint32_t> idx = selection_ == TopkSelection::kExact
                                        ? SelectExact(grad, k)
                                        : SelectSampled(grad, k);
  ACPS_CHECK(idx.size() == k);
  size_t off = kHeaderBytes;
  for (uint32_t i : idx) {
    wire::Write(out, off, i);
    wire::Write(out, off + sizeof(uint32_t), grad[i]);
    off += kRecordBytes;
  }
}

void TopkCompressor::Decode(std::span<const std::byte> blob,
                            std::span<float> out) const {
  const auto n = wire::Read<uint64_t>(blob, sizeof(uint64_t));
  ACPS_CHECK_MSG(out.size() == n, "Topk decode size mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  AccumulateInto(blob, out, /*num_workers=*/1);
}

void TopkCompressor::AccumulateInto(std::span<const std::byte> blob,
                                    std::span<float> out, int num_workers) {
  ACPS_CHECK(num_workers >= 1);
  const auto k = wire::Read<uint64_t>(blob, 0);
  const auto n = wire::Read<uint64_t>(blob, sizeof(uint64_t));
  ACPS_CHECK_MSG(out.size() == n, "Topk accumulate size mismatch");
  ACPS_CHECK(blob.size() == kHeaderBytes + k * kRecordBytes);
  const float inv = 1.0f / static_cast<float>(num_workers);
  size_t off = kHeaderBytes;
  for (uint64_t j = 0; j < k; ++j) {
    const auto i = wire::Read<uint32_t>(blob, off);
    const auto v = wire::Read<float>(blob, off + sizeof(uint32_t));
    ACPS_CHECK_MSG(i < n, "Topk index out of range");
    out[i] += v * inv;
    off += kRecordBytes;
  }
}

}  // namespace acps::compress
