#include "compress/registry.h"

#include <cstdlib>
#include <sstream>

#include "compress/blockwise_sign.h"
#include "compress/fp16.h"
#include "compress/qsgd.h"
#include "compress/randomk.h"
#include "compress/sign.h"
#include "compress/terngrad.h"
#include "compress/topk.h"

namespace acps::compress {
namespace {

struct Spec {
  std::string name;
  std::string param;  // empty if absent
};

Spec Parse(const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

double ParamAsDouble(const Spec& s, double fallback) {
  if (s.param.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s.param.c_str(), &end);
  ACPS_CHECK_MSG(end != nullptr && *end == '\0',
                 "bad numeric parameter '" << s.param << "' for compressor "
                                           << s.name);
  return v;
}

}  // namespace

std::unique_ptr<Compressor> MakeCompressor(const std::string& spec) {
  const Spec s = Parse(spec);
  if (s.name == "sign") {
    ACPS_CHECK_MSG(s.param.empty(), "sign takes no parameter");
    return std::make_unique<SignCompressor>();
  }
  if (s.name == "blockwise-sign") {
    const auto block = static_cast<size_t>(ParamAsDouble(s, 1024));
    return std::make_unique<BlockwiseSignCompressor>(block);
  }
  if (s.name == "topk") {
    return std::make_unique<TopkCompressor>(ParamAsDouble(s, 0.001),
                                            TopkSelection::kExact);
  }
  if (s.name == "topk-sampled") {
    return std::make_unique<TopkCompressor>(ParamAsDouble(s, 0.001),
                                            TopkSelection::kSampledThreshold);
  }
  if (s.name == "randomk") {
    return std::make_unique<RandomkCompressor>(ParamAsDouble(s, 0.01));
  }
  if (s.name == "qsgd") {
    return std::make_unique<QsgdCompressor>(
        static_cast<int>(ParamAsDouble(s, 16)));
  }
  if (s.name == "terngrad") {
    ACPS_CHECK_MSG(s.param.empty(), "terngrad takes no parameter");
    return std::make_unique<TernGradCompressor>();
  }
  if (s.name == "fp16") {
    ACPS_CHECK_MSG(s.param.empty(), "fp16 takes no parameter");
    return std::make_unique<Fp16Compressor>();
  }
  // Thrown directly (not via ACPS_CHECK_MSG(false, ...)) so -Wreturn-type
  // can see the function never falls off the end, even at -O0.
  std::ostringstream oss;
  oss << "unknown compressor spec '" << spec << "'";
  throw Error(oss.str());
}

std::vector<std::string> KnownCompressors() {
  return {"sign",          "blockwise-sign:1024", "topk:0.001",
          "topk-sampled:0.001", "randomk:0.01",   "qsgd:16",
          "terngrad",      "fp16"};
}

}  // namespace acps::compress
