// Random-k sparsification (Stich et al., NeurIPS'18).
//
// Keeps k uniformly chosen coordinates. When all workers share the seed for
// a given (tensor, step), the selected coordinates coincide, which — unlike
// Top-k — makes the compressed vectors additive and therefore all-reduce
// compatible. Encode stores only [seed][k][numel][values...]: the index set
// is re-derived from the seed on decode.
#pragma once

#include "compress/compressor.h"

namespace acps::compress {

class RandomkCompressor final : public Compressor {
 public:
  explicit RandomkCompressor(double ratio, uint64_t seed = 0x5EEDull);

  [[nodiscard]] std::string name() const override { return "randomk"; }

  // Advances the internal step counter; workers that construct the
  // compressor with the same seed and encode in lockstep select identical
  // coordinates.
  void EncodeInto(std::span<const float> grad,
                  std::span<std::byte> out) override;

  void Decode(std::span<const std::byte> blob,
              std::span<float> out) const override;

  [[nodiscard]] size_t EncodedBytes(size_t numel) const override;

  [[nodiscard]] size_t KeptCount(size_t numel) const;

  // Recomputes the index set encoded by `blob` (seed-derived).
  [[nodiscard]] static std::vector<uint32_t> IndicesOf(
      std::span<const std::byte> blob);

  // Sums the value payloads of two blobs with identical (seed, k, numel);
  // the additive property that enables all-reduce.
  [[nodiscard]] static std::vector<std::byte> Add(
      std::span<const std::byte> a, std::span<const std::byte> b);

 private:
  double ratio_;
  uint64_t seed_;
  uint64_t step_ = 0;
};

}  // namespace acps::compress
