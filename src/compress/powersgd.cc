#include "compress/powersgd.h"

#include "tensor/matrix_ops.h"

namespace acps::compress {

bool LowRankWorthwhile(const Shape& shape, int64_t rank) {
  if (shape.size() != 2) return false;
  const int64_t n = shape[0], m = shape[1];
  if (n < 2 || m < 2) return false;
  const int64_t r = EffectiveRank(n, m, rank);
  return r * (n + m) < n * m;
}

int64_t EffectiveRank(int64_t n, int64_t m, int64_t rank) {
  return std::min({rank, n, m});
}

PowerSgd::PowerSgd(PowerSgdConfig config) : config_(config) {
  ACPS_CHECK_MSG(config_.rank >= 1, "rank must be >= 1");
}

int64_t PowerSgd::CommElements(int64_t n, int64_t m) const {
  const int64_t r = EffectiveRank(n, m, config_.rank);
  return r * (n + m);
}

PowerSgd::State& PowerSgd::state_for(int64_t tensor_id, int64_t n, int64_t m,
                                     int64_t r) {
  auto it = states_.find(tensor_id);
  if (it == states_.end()) {
    State st;
    st.q = Tensor({m, r});
    // Deterministic per-tensor seed shared by all workers so every worker
    // starts from the same query matrix (required for correctness).
    Rng rng = Rng(config_.seed).split(static_cast<uint64_t>(tensor_id));
    rng.fill_normal(st.q);
    if (config_.error_feedback) st.e = Tensor::Zeros({n, m});
    it = states_.emplace(tensor_id, std::move(st)).first;
  }
  ACPS_CHECK_MSG(it->second.q.rows() == m && it->second.q.cols() == r,
                 "tensor " << tensor_id << " shape changed across steps");
  return it->second;
}

std::span<float> PowerSgd::factor_q(int64_t tensor_id, int64_t n, int64_t m) {
  return state_for(tensor_id, n, m, EffectiveRank(n, m, config_.rank))
      .q.data();
}

std::span<float> PowerSgd::residual_e(int64_t tensor_id, int64_t n, int64_t m) {
  State& st = state_for(tensor_id, n, m, EffectiveRank(n, m, config_.rank));
  ACPS_CHECK_MSG(config_.error_feedback,
                 "residual_e requires error_feedback enabled");
  return st.e.data();
}

void PowerSgd::Step(int64_t tensor_id, Tensor& m,
                    const AllReduceMeanFn& allreduce) {
  ACPS_CHECK_MSG(m.ndim() == 2, "PowerSgd::Step needs a matrix, got "
                                    << ShapeToString(m.shape()));
  const int64_t n = m.rows(), mm = m.cols();
  const int64_t r = EffectiveRank(n, mm, config_.rank);
  State& st = state_for(tensor_id, n, mm, r);

  // Feedback: compress (M + E).
  Tensor input = m.clone();
  if (config_.error_feedback) input.add_(st.e);

  // Compute P = (M+E)·Q_prev, aggregate, orthogonalize. Note the all-reduce
  // here *blocks* the Q computation below — Algorithm 1's structure.
  Tensor p = MatMul(input, st.q);
  allreduce(p.data());
  Orthogonalize(p, config_.ortho);

  // Compute Q = (M+E)ᵀ·P, aggregate.
  st.q = MatMulTA(input, p);
  allreduce(st.q.data());

  // Decompress and update the residual.
  Tensor recon = MatMulTB(p, st.q);
  if (config_.error_feedback) {
    st.e.copy_from(input);
    st.e.sub_(recon);
  }
  m = std::move(recon);
}

}  // namespace acps::compress
