// Power-SGD (Vogels et al., NeurIPS'19) — the paper's Algorithm 1.
//
// One step of subspace power iteration per optimizer step, with query reuse
// (Q carries over between steps) and error feedback:
//
//   P ← (M + E) · Q_prev          (compute P)
//   P ← AllReduce-mean(P)         (aggregate P)   <-- BLOCKS the next line
//   P ← Orthogonalize(P)
//   Q ← (M + E)ᵀ · P              (compute Q)
//   Q ← AllReduce-mean(Q)         (aggregate Q)
//   M̂ = P · Qᵀ ;  E ← (M + E) − M̂
//
// The interleaved compute→aggregate→compute→aggregate chain is exactly the
// blocking structure §III-C identifies as WFBP-hostile; ACP-SGD (acpsgd.h)
// removes it. Communication is injected via a callback so the algorithm is
// agnostic to the transport (thread cluster, or single-process for tests).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "linalg/orthogonalize.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace acps::compress {

// Averages `data` element-wise across all workers (all-reduce sum / p).
using AllReduceMeanFn = std::function<void(std::span<float>)>;

struct PowerSgdConfig {
  int64_t rank = 4;
  OrthoScheme ortho = OrthoScheme::kQr;  // paper uses reduced QR
  bool error_feedback = true;
  uint64_t seed = 0xB0B5ull;  // must be identical on all workers
};

// Decides whether a tensor should go through low-rank compression at all:
// matrices whose low-rank factors are actually smaller than the matrix.
// Vector-shaped parameters (biases etc.) are aggregated uncompressed
// (paper §IV-C).
[[nodiscard]] bool LowRankWorthwhile(const Shape& shape, int64_t rank);

// Effective rank for an n×m matrix: min(rank, n, m).
[[nodiscard]] int64_t EffectiveRank(int64_t n, int64_t m, int64_t rank);

class PowerSgd {
 public:
  explicit PowerSgd(PowerSgdConfig config);

  // Runs one Power-SGD step on gradient matrix `m` (2-D), replacing it with
  // the aggregated, decompressed gradient P·Qᵀ. `tensor_id` keys the
  // persistent per-tensor state (Q and the EF residual); all workers must
  // use the same ids and construct PowerSgd with the same config/seed.
  void Step(int64_t tensor_id, Tensor& m, const AllReduceMeanFn& allreduce);

  [[nodiscard]] const PowerSgdConfig& config() const noexcept { return config_; }

  // Encoded elements communicated per step for an n×m matrix: r(n+m)
  // (both factors).
  [[nodiscard]] int64_t CommElements(int64_t n, int64_t m) const;

  // Elastic-membership state resync: mutable views of the persistent
  // per-tensor state for an n×m matrix, creating it (Q seeded, E zero) if
  // absent. `factor_q` is the reused query factor [m×r_eff] — identical
  // across ranks (it is all-reduced every step), so a rejoining rank adopts
  // a live donor's broadcast replica and query reuse stays bitwise aligned.
  // `residual_e` is this rank's own EF residual [n×m] — per-rank state that
  // a rejoiner restores from its escrowed snapshot, never from a donor.
  [[nodiscard]] std::span<float> factor_q(int64_t tensor_id, int64_t n,
                                          int64_t m);
  [[nodiscard]] std::span<float> residual_e(int64_t tensor_id, int64_t n,
                                            int64_t m);

 private:
  struct State {
    Tensor q;  // [m×r], carried across steps (query reuse)
    Tensor e;  // [n×m], error-feedback residual
  };

  State& state_for(int64_t tensor_id, int64_t n, int64_t m, int64_t r);

  PowerSgdConfig config_;
  std::unordered_map<int64_t, State> states_;
};

}  // namespace acps::compress
