#include "compress/qsgd.h"

#include <cmath>

#include "par/accum_policy.h"

namespace acps::compress {

namespace {
constexpr size_t kHeaderBytes = sizeof(float) + sizeof(uint64_t);
}

QsgdCompressor::QsgdCompressor(int levels, uint64_t seed)
    : levels_(levels), rng_(seed) {
  ACPS_CHECK_MSG(levels >= 1 && levels <= 127,
                 "QSGD levels must be in [1, 127], got " << levels);
}

void QsgdCompressor::EncodeInto(std::span<const float> grad,
                                std::span<std::byte> out) {
  const size_t n = grad.size();
  ACPS_CHECK_MSG(out.size() == EncodedBytes(n), "QSGD encode size mismatch");
  // Norm accumulates over ascending element index; quantization then visits
  // elements in the same order, so encodings are bitwise reproducible.
  ACPS_ACCUM_POLICY(serial_index_order);
  double norm_sq = 0.0;
  for (float v : grad) norm_sq += double(v) * v;
  const float norm = static_cast<float>(std::sqrt(norm_sq));

  wire::Write(out, 0, norm);
  wire::Write(out, sizeof(float), static_cast<uint64_t>(n));

  for (size_t i = 0; i < n; ++i) {
    int8_t q = 0;
    if (norm > 0.0f) {
      const float a = std::abs(grad[i]) / norm * static_cast<float>(levels_);
      const auto floor_a = std::floor(a);
      // Stochastic rounding: round up with probability (a - floor(a)).
      const float frac = a - floor_a;
      float level = floor_a;
      if (static_cast<float>(rng_.next_double()) < frac) level += 1.0f;
      level = std::min(level, static_cast<float>(levels_));
      q = static_cast<int8_t>(grad[i] < 0.0f ? -level : level);
    }
    wire::Write(out, kHeaderBytes + i, q);
  }
}

void QsgdCompressor::Decode(std::span<const std::byte> blob,
                            std::span<float> out) const {
  const auto norm = wire::Read<float>(blob, 0);
  const auto n = wire::Read<uint64_t>(blob, sizeof(float));
  ACPS_CHECK_MSG(out.size() == n, "QSGD decode size mismatch");
  ACPS_CHECK(blob.size() == kHeaderBytes + n);
  const float unit = norm / static_cast<float>(levels_);
  for (size_t i = 0; i < n; ++i) {
    const auto q = wire::Read<int8_t>(blob, kHeaderBytes + i);
    out[i] = unit * static_cast<float>(q);
  }
}

}  // namespace acps::compress
