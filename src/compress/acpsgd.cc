#include "compress/acpsgd.h"

#include "tensor/matrix_ops.h"

namespace acps::compress {

std::string AcpSgdConfig::Validate() const {
  std::string err;
  const auto add = [&err](const std::string& msg) {
    if (!err.empty()) err += "; ";
    err += msg;
  };
  if (rank < 1) add("rank must be >= 1, got " + std::to_string(rank));
  if (ortho != OrthoScheme::kQr && ortho != OrthoScheme::kGramSchmidt)
    add("unknown orthogonalization scheme");
  return err;
}

AcpSgd::AcpSgd(AcpSgdConfig config) : config_(config) {
  const std::string err = config_.Validate();
  ACPS_CHECK_MSG(err.empty(), "invalid AcpSgdConfig: " << err);
}

int64_t AcpSgd::CommElements(int64_t n, int64_t m, uint64_t step) const {
  const int64_t r = EffectiveRank(n, m, config_.rank);
  // Odd steps communicate P [n×r], even steps Q [m×r].
  return (step % 2 == 1) ? r * n : r * m;
}

uint64_t AcpSgd::step_of(int64_t tensor_id) const {
  const auto it = states_.find(tensor_id);
  return it == states_.end() ? 0 : it->second.t;
}

AcpSgd::State& AcpSgd::state_for(int64_t tensor_id, int64_t n, int64_t m,
                                 int64_t r) {
  auto it = states_.find(tensor_id);
  if (it == states_.end()) {
    State st;
    st.p = Tensor({n, r});
    st.q = Tensor({m, r});
    // P_0 and Q_0 drawn from a per-tensor stream shared by all workers
    // (paper: "initialized randomly from standard normal distribution").
    Rng rng = Rng(config_.seed).split(static_cast<uint64_t>(tensor_id));
    rng.fill_normal(st.p);
    rng.fill_normal(st.q);
    if (config_.error_feedback) st.e = Tensor::Zeros({n, m});
    it = states_.emplace(tensor_id, std::move(st)).first;
  }
  ACPS_CHECK_MSG(it->second.p.rows() == n && it->second.q.rows() == m &&
                     it->second.p.cols() == r,
                 "tensor " << tensor_id << " shape changed across steps");
  return it->second;
}

std::span<float> AcpSgd::LocalStep(int64_t tensor_id, const Tensor& m) {
  ACPS_CHECK_MSG(m.ndim() == 2, "AcpSgd::LocalStep needs a matrix, got "
                                    << ShapeToString(m.shape()));
  const int64_t n = m.rows(), mm = m.cols();
  const int64_t r = EffectiveRank(n, mm, config_.rank);
  State& st = state_for(tensor_id, n, mm, r);
  ACPS_CHECK_MSG(!st.pending, "LocalStep called twice without Finish for "
                                  << tensor_id);
  st.pending = true;
  const uint64_t t = st.t + 1;

  // Feedback: compress (M + E).
  Tensor input = m.clone();
  if (config_.error_feedback) input.add_(st.e);

  const bool p_step = (t % 2 == 1);
  Tensor& fixed = p_step ? st.q : st.p;  // the factor we orthogonalize
  if (config_.reuse) {
    Orthogonalize(fixed, config_.ortho);
  } else {
    // Ablation: discard the carried factor, draw a fresh random basis
    // (deterministic in (seed, tensor, step) so all workers agree).
    Rng rng = Rng(config_.seed ^ 0xFEEDull)
                  .split(static_cast<uint64_t>(tensor_id) * 1315423911ull + t);
    rng.fill_normal(fixed);
    Orthogonalize(fixed, config_.ortho);
  }

  if (p_step) {
    st.p = MatMul(input, st.q);  // P_t = (M+E)·Q_t
  } else {
    st.q = MatMulTA(input, st.p);  // Q_t = (M+E)ᵀ·P_t
  }

  // Residual from the *local* factor (Algorithm 2 lines 6/11: before
  // aggregation).
  if (config_.error_feedback) {
    Tensor recon = MatMulTB(st.p, st.q);
    st.e.copy_from(input);
    st.e.sub_(recon);
  }

  return p_step ? st.p.data() : st.q.data();
}

void AcpSgd::Finish(int64_t tensor_id, Tensor& out) {
  auto it = states_.find(tensor_id);
  ACPS_CHECK_MSG(it != states_.end() && it->second.pending,
                 "Finish without LocalStep for tensor " << tensor_id);
  State& st = it->second;
  st.pending = false;
  st.t += 1;

  // M̂ = P·Qᵀ with the aggregated factor now in place.
  Tensor recon = MatMulTB(st.p, st.q);
  ACPS_CHECK_MSG(out.numel() == recon.numel(),
                 "Finish output shape mismatch for tensor " << tensor_id);
  out.copy_from(recon);
}

void AcpSgd::Step(int64_t tensor_id, Tensor& m,
                  const AllReduceMeanFn& allreduce) {
  auto factor = LocalStep(tensor_id, m);
  allreduce(factor);
  Finish(tensor_id, m);
}

}  // namespace acps::compress
