// FP16 compression — the trivial 2× baseline (half-precision cast with
// round-to-nearest-even), included as an extension point and as a sanity
// reference in benches/tests. No external half type: conversion is done by
// bit manipulation so the library stays dependency-free.
#pragma once

#include "compress/compressor.h"

namespace acps::compress {

// Scalar conversions (exposed for tests).
[[nodiscard]] uint16_t FloatToHalf(float f);
[[nodiscard]] float HalfToFloat(uint16_t h);

class Fp16Compressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "fp16"; }

  void EncodeInto(std::span<const float> grad,
                  std::span<std::byte> out) override;

  void Decode(std::span<const std::byte> blob,
              std::span<float> out) const override;

  [[nodiscard]] size_t EncodedBytes(size_t numel) const override {
    return sizeof(uint64_t) + numel * sizeof(uint16_t);
  }
};

}  // namespace acps::compress
