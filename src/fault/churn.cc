#include "fault/churn.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "comm/communicator.h"
#include "comm/hierarchical.h"
#include "compress/error_feedback.h"
#include "compress/powersgd.h"
#include "compress/topk.h"
#include "tensor/check.h"

namespace acps::fault {
namespace {

// Deterministic gradients, same scheme as the chaos harness: multiples of
// 0.25 keep exact-arithmetic parts exactly representable.
float GradValue(int rank, int64_t i, uint64_t step) {
  return static_cast<float>(
             ((i * 7 + rank * 13 + static_cast<int64_t>(step) * 29) % 19) -
             9) *
         0.25f;
}

// Model geometry shared by every scenario.
constexpr int64_t kRowsW = 8;
constexpr int64_t kColsW = 12;
constexpr int64_t kNumelW = kRowsW * kColsW;
constexpr int64_t kNumelB = 10;
constexpr float kLr = 0.1f;
constexpr int64_t kWId = 0;
constexpr int64_t kBId = 1;

enum class ChurnMethod : uint8_t { kTopkEf, kPowerSgd, kDenseHier };

// One rank's commit-boundary snapshot on the harness-owned escrow board:
// the EF residual (the mass this rank still owes the group) and the
// conservation ledgers, rolled forward only at step boundaries so a
// mid-step crash rolls back to the last committed state.
struct EscrowSlot {
  bool valid = false;
  std::vector<float> res_w;
  std::vector<float> res_b;
  std::vector<double> grad_mass;
  std::vector<double> recon_mass;
};

struct ScenarioSpec {
  ChurnMethod method = ChurnMethod::kTopkEf;
  int world_size = 3;
  int capacity = 3;
  int steps = 6;
  int gpus_per_node = 2;  // kDenseHier only
  std::vector<MembershipEvent> events;
  // Expectations for classification.
  std::vector<int> expect_crashed;     // crash order, repeats allowed
  std::vector<int> expect_departed;    // commit order
  std::vector<int> expect_finished;    // slots alive at the end (sorted)
  std::vector<int> expect_generation;  // per finished slot, join count
  bool join_only = false;  // no crash/leave events (injected() stays 0)
  bool envelope = false;   // kSoak: compare vs fault-free baseline
};

void AppendFloats(std::vector<std::byte>& slot, std::span<const float> v) {
  const size_t old = slot.size();
  slot.resize(old + v.size() * sizeof(float));
  std::memcpy(slot.data() + old, v.data(), v.size() * sizeof(float));
}

// The elastic training body run by every rank (and every readmitted
// generation of a rank). One membership commit per training step; resync
// after every commit that admitted ranks (see churn.h file comment).
void ElasticBody(const ScenarioSpec& spec, std::vector<EscrowSlot>& board,
                 ChurnRun& run, comm::Communicator& comm) {
  const int r = comm.rank();
  const auto steps_total = static_cast<uint64_t>(spec.steps);
  EscrowSlot& escrow = board[static_cast<size_t>(r)];

  // Identical deterministic init on every rank (and every generation — a
  // joiner's replica is overwritten by the donor broadcast before use).
  Tensor w({kRowsW, kColsW});
  Tensor b({kNumelB});
  {
    int64_t i = 0;
    for (Tensor* t : {&w, &b})
      for (float& v : t->data())
        v = static_cast<float>(((i++ * 3 + 5) % 11) - 5) * 0.5f;
  }
  Tensor wg({kRowsW, kColsW});
  Tensor bg({kNumelB});

  compress::TopkCompressor topk(0.25, compress::TopkSelection::kExact);
  compress::ErrorFeedback ef;
  compress::PowerSgdConfig pcfg;
  pcfg.rank = 2;
  compress::PowerSgd psgd(pcfg);

  const bool harness_ef = spec.method == ChurnMethod::kTopkEf;
  std::vector<double> grad_mass;
  std::vector<double> recon_mass;
  if (harness_ef) {
    grad_mass.assign(static_cast<size_t>(kNumelW + kNumelB), 0.0);
    recon_mass.assign(grad_mass.size(), 0.0);
  }

  uint64_t step = 0;

  const auto mean = [&comm](std::span<float> v) {
    comm.all_reduce(v);
    const float inv = 1.0f / static_cast<float>(comm.alive_world_size());
    for (float& x : v) x *= inv;
  };

  // Post-commit resync. Runs on EVERY alive rank of the committed view
  // whenever the commit admitted ranks — donor, bystanders and joiners
  // issue the same collectives in lockstep, so the transfer is itself
  // contract-checked.
  const auto handle_transition = [&](const auto& t) {
    if (t.joined.empty()) return;
    // Donor: the lowest-ranked survivor (alive but not admitted at this
    // commit). At least one exists — a commit needs a surviving applier.
    int donor = -1;
    for (const int a : comm.alive_ranks()) {
      if (std::find(t.joined.begin(), t.joined.end(), a) == t.joined.end()) {
        donor = a;
        break;
      }
    }
    ACPS_CHECK_MSG(donor >= 0, "membership commit with no surviving donor");
    // Model + step counter, one flat broadcast.
    std::vector<float> wire(1 + static_cast<size_t>(kNumelW + kNumelB));
    wire[0] = static_cast<float>(step);
    std::memcpy(wire.data() + 1, w.data().data(),
                static_cast<size_t>(kNumelW) * sizeof(float));
    std::memcpy(wire.data() + 1 + kNumelW, b.data().data(),
                static_cast<size_t>(kNumelB) * sizeof(float));
    comm.broadcast(wire, donor);
    step = static_cast<uint64_t>(wire[0]);
    std::memcpy(w.data().data(), wire.data() + 1,
                static_cast<size_t>(kNumelW) * sizeof(float));
    std::memcpy(b.data().data(), wire.data() + 1 + kNumelW,
                static_cast<size_t>(kNumelB) * sizeof(float));
    if (spec.method == ChurnMethod::kPowerSgd) {
      // Factor re-broadcast: Q is all-reduced every step, so every
      // survivor holds the donor's bits already — the broadcast only
      // *syncs the joiner* while staying a uniform collective for all.
      const std::span<float> q = psgd.factor_q(kWId, kRowsW, kColsW);
      comm.broadcast(q, donor);
    }
    const bool me_joined =
        std::find(t.joined.begin(), t.joined.end(), r) != t.joined.end();
    if (!me_joined) return;
    // Joiner-local state: a REJOINER restores its escrowed residual and
    // ledgers (rolled back to its last committed step — the mass it still
    // owes the group); a FRESH joiner keeps zeros.
    if (!escrow.valid) return;
    if (harness_ef) {
      Tensor& rw = ef.residual(kWId, wg.shape());
      Tensor& rb = ef.residual(kBId, bg.shape());
      std::copy(escrow.res_w.begin(), escrow.res_w.end(),
                rw.data().begin());
      std::copy(escrow.res_b.begin(), escrow.res_b.end(),
                rb.data().begin());
      grad_mass = escrow.grad_mass;
      recon_mass = escrow.recon_mass;
    } else if (spec.method == ChurnMethod::kPowerSgd) {
      const std::span<float> e = psgd.residual_e(kWId, kRowsW, kColsW);
      std::copy(escrow.res_w.begin(), escrow.res_w.end(), e.begin());
    }
  };

  // A readmitted (or freshly admitted) generation starts mid-commit: it
  // was brought in at the admitting commit's closing barrier, and its
  // first collectives are the resync broadcasts the survivors are about
  // to issue.
  if (comm.join_generation() > 0) handle_transition(comm.last_transition());

  // One Top-k + EF aggregation (the chaos harness's gather_combine, over
  // the live view): EF add-in, encode, all-gather blobs, combine the ALIVE
  // blobs, EF update from the own-blob reconstruction.
  const auto gather_combine = [&](int64_t id, Tensor& grad,
                                  int64_t mass_base) {
    for (int64_t i = 0; i < grad.numel(); ++i)
      grad_mass[static_cast<size_t>(mass_base + i)] +=
          static_cast<double>(grad.data()[static_cast<size_t>(i)]);
    ef.AddInto(id, grad);
    const Tensor input = grad.clone();
    const auto nel = static_cast<size_t>(grad.numel());
    std::vector<std::byte> blob(topk.EncodedBytes(nel));
    topk.EncodeInto(grad.data(), blob);
    std::vector<std::byte> gathered(
        blob.size() * static_cast<size_t>(comm.world_size()));
    comm.all_gather_bytes(blob, gathered);
    Tensor recon(Shape{grad.numel()});
    topk.Decode(blob, recon.data());
    std::vector<float> merged(nel, 0.0f);
    for (const int src : comm.alive_ranks()) {
      const auto sb = std::span<const std::byte>(gathered).subspan(
          static_cast<size_t>(src) * blob.size(), blob.size());
      compress::TopkCompressor::AccumulateInto(sb, merged,
                                               comm.alive_world_size());
    }
    ef.Update(id, input, recon);
    for (size_t i = 0; i < nel; ++i)
      recon_mass[static_cast<size_t>(mass_base) + i] +=
          static_cast<double>(recon.data()[i]);
    std::copy(merged.begin(), merged.end(), grad.data().begin());
  };

  while (step < steps_total) {
    {
      int64_t i = 0;
      for (Tensor* t : {&wg, &bg})
        for (float& gv : t->data()) gv = GradValue(r, i++, step);
    }
    switch (spec.method) {
      case ChurnMethod::kTopkEf:
        gather_combine(kWId, wg, 0);
        gather_combine(kBId, bg, kNumelW);
        break;
      case ChurnMethod::kPowerSgd:
        psgd.Step(kWId, wg, mean);
        mean(bg.data());
        break;
      case ChurnMethod::kDenseHier:
        comm::HierarchicalAllReduce(comm, wg.data(), spec.gpus_per_node);
        comm::HierarchicalAllReduce(comm, bg.data(), spec.gpus_per_node);
        for (Tensor* t : {&wg, &bg}) {
          const float inv =
              1.0f / static_cast<float>(comm.alive_world_size());
          for (float& gv : t->data()) gv *= inv;
        }
        break;
    }
    for (int64_t j = 0; j < w.numel(); ++j)
      w.data()[static_cast<size_t>(j)] -=
          kLr * wg.data()[static_cast<size_t>(j)];
    for (int64_t j = 0; j < b.numel(); ++j)
      b.data()[static_cast<size_t>(j)] -=
          kLr * bg.data()[static_cast<size_t>(j)];
    ++step;

    // Escrow the committed state BEFORE the commit: a crash inside any of
    // the next step's collectives (or the commit entry itself) rolls this
    // rank back exactly here.
    if (harness_ef) {
      const Tensor& rw = ef.residual(kWId, wg.shape());
      const Tensor& rb = ef.residual(kBId, bg.shape());
      escrow.res_w.assign(rw.data().begin(), rw.data().end());
      escrow.res_b.assign(rb.data().begin(), rb.data().end());
      escrow.grad_mass = grad_mass;
      escrow.recon_mass = recon_mass;
      escrow.valid = true;
    } else if (spec.method == ChurnMethod::kPowerSgd) {
      const std::span<const float> e = psgd.residual_e(kWId, kRowsW, kColsW);
      escrow.res_w.assign(e.begin(), e.end());
      escrow.valid = true;
    }

    // Barrier-aligned membership commit: the only point where ranks join
    // or leave. Throws RankDeparted on a scheduled graceful departure.
    const auto t = comm.commit_view();
    handle_transition(t);
  }

  auto& out = run.outputs[static_cast<size_t>(r)];
  out.clear();
  AppendFloats(out, w.data());
  AppendFloats(out, b.data());
  run.finished[static_cast<size_t>(r)] = 1;
  run.generation[static_cast<size_t>(r)] = comm.join_generation();
  if (harness_ef) {
    // Telescoping invariant across the whole churn history:
    // sum(grad) == sum(reconstruction) + residual, per element.
    double gap = 0.0;
    const Tensor& rw = ef.residual(kWId, wg.shape());
    const Tensor& rb = ef.residual(kBId, bg.shape());
    for (int64_t j = 0; j < kNumelW; ++j)
      gap = std::max(
          gap, std::abs(grad_mass[static_cast<size_t>(j)] -
                        recon_mass[static_cast<size_t>(j)] -
                        static_cast<double>(
                            rw.data()[static_cast<size_t>(j)])));
    for (int64_t j = 0; j < kNumelB; ++j)
      gap = std::max(
          gap,
          std::abs(grad_mass[static_cast<size_t>(kNumelW + j)] -
                   recon_mass[static_cast<size_t>(kNumelW + j)] -
                   static_cast<double>(rb.data()[static_cast<size_t>(j)])));
    run.ef_gap[static_cast<size_t>(r)] = gap;
  }
}

ChurnRun RunElastic(const ScenarioSpec& spec) {
  const auto cap = static_cast<size_t>(spec.capacity);
  ChurnRun run;
  run.outputs.assign(cap, {});
  run.finished.assign(cap, 0);
  run.generation.assign(cap, 0);
  run.ef_gap.assign(cap, 0.0);
  // Escrow board: one slot per capacity rank, written only by the owning
  // rank's thread; the main thread reads it after Session::Run joins.
  std::vector<EscrowSlot> board(cap);

  comm::Transport transport;
  comm::SessionOptions sopt;
  sopt.max_world_size = spec.capacity;
  comm::Session session(transport, "", spec.world_size, sopt);
  try {
    session.Run([&](comm::Communicator& comm) {
      ElasticBody(spec, board, run, comm);
    });
  } catch (const DetectedError& e) {
    run.error = e.what();
    run.detected = true;
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  run.crashed = session.crashed_ranks();
  run.departed = session.departed_ranks();
  run.epoch = session.membership_epoch();
  return run;
}

// -----------------------------------------------------------------------
// Scenario schedules. Collective-entry indexes below are GLOBAL lockstep
// counts (every alive rank's per-rank index equals the group's, and a
// rejoiner resumes from the group's snapshot): a Top-k step costs 3
// entries (two all_gathers + the commit), a Power-SGD step 4 (two factor
// all-reduces, the bias all-reduce, the commit), and a resync after a
// joining commit adds 1 broadcast (2 for Power-SGD).
// -----------------------------------------------------------------------
ScenarioSpec SpecFor(ChurnScenario s, const ChurnOptions& opt) {
  using Kind = MembershipEvent::Kind;
  ScenarioSpec spec;
  spec.world_size = opt.world_size;
  spec.capacity = opt.world_size;
  spec.steps = std::max(opt.steps, 6);
  const int last = opt.world_size - 1;  // default victim, like chaos
  const auto everyone = [&spec] {
    std::vector<int> all;
    for (int i = 0; i < spec.capacity; ++i) all.push_back(i);
    return all;
  };
  switch (s) {
    case ChurnScenario::kCrashRejoin:
      // Dies at step 2's first all_gather (entry 4), readmitted at the
      // next commit.
      spec.events = {{Kind::kCrash, last, 4}, {Kind::kRejoin, last, 1}};
      spec.expect_crashed = {last};
      spec.expect_finished = everyone();
      spec.expect_generation.assign(static_cast<size_t>(spec.capacity), 0);
      spec.expect_generation[static_cast<size_t>(last)] = 1;
      break;
    case ChurnScenario::kRepeatedCrashRejoin:
      // First crash mid step 2 (entry 4) → readmitted at commit 2 (entry
      // 6), resync 7, step 3 = 8,9,10, step 4 = 11,12,13; second crash at
      // step 4's second all_gather (entry 12) → readmitted at commit 4.
      spec.events = {{Kind::kCrash, last, 4},
                     {Kind::kRejoin, last, 1},
                     {Kind::kCrash, last, 12},
                     {Kind::kRejoin, last, 1}};
      spec.expect_crashed = {last, last};
      spec.expect_finished = everyone();
      spec.expect_generation.assign(static_cast<size_t>(spec.capacity), 0);
      spec.expect_generation[static_cast<size_t>(last)] = 2;
      break;
    case ChurnScenario::kFreshJoin:
      // A latent capacity slot joins at commit 3, mid-run.
      spec.capacity = opt.world_size + 1;
      spec.events = {{Kind::kJoin, opt.world_size, 3}};
      spec.expect_finished = everyone();
      spec.expect_generation.assign(static_cast<size_t>(spec.capacity), 0);
      spec.expect_generation[static_cast<size_t>(opt.world_size)] = 1;
      spec.join_only = true;
      break;
    case ChurnScenario::kGracefulLeave:
      spec.events = {{Kind::kLeave, 1, 3}};
      spec.expect_departed = {1};
      for (int i = 0; i < spec.capacity; ++i)
        if (i != 1) spec.expect_finished.push_back(i);
      spec.expect_generation.assign(static_cast<size_t>(spec.capacity), 0);
      break;
    case ChurnScenario::kJoinDuringCollective:
      // The intent is eligible from commit 1 and pending the whole time
      // step 1's collectives are in flight; admission must still land at
      // the barrier-aligned commit, never mid-collective.
      spec.capacity = opt.world_size + 1;
      spec.events = {{Kind::kJoin, opt.world_size, 1}};
      spec.expect_finished = everyone();
      spec.expect_generation.assign(static_cast<size_t>(spec.capacity), 0);
      spec.expect_generation[static_cast<size_t>(opt.world_size)] = 1;
      spec.join_only = true;
      break;
    case ChurnScenario::kLeaderCrashHier:
      // Rank 0 leads node 0 of the two-rank nodes; it dies at entry 2 —
      // inside step 1's hierarchical phases, after the intra-node stage
      // started — and rejoins at the next commit.
      spec.method = ChurnMethod::kDenseHier;
      spec.world_size = 4;
      spec.capacity = 4;
      spec.gpus_per_node = 2;
      spec.events = {{Kind::kCrash, 0, 2}, {Kind::kRejoin, 0, 1}};
      spec.expect_crashed = {0};
      spec.expect_finished = everyone();
      spec.expect_generation.assign(static_cast<size_t>(spec.capacity), 0);
      spec.expect_generation[0] = 1;
      break;
    case ChurnScenario::kPowerSgdRejoin:
      // Dies between the two factor all-reduces of step 2 (entry 6 of the
      // 4-entry Power-SGD steps), readmitted at the next commit with the
      // donor's Q re-broadcast.
      spec.method = ChurnMethod::kPowerSgd;
      spec.events = {{Kind::kCrash, last, 6}, {Kind::kRejoin, last, 1}};
      spec.expect_crashed = {last};
      spec.expect_finished = everyone();
      spec.expect_generation.assign(static_cast<size_t>(spec.capacity), 0);
      spec.expect_generation[static_cast<size_t>(last)] = 1;
      break;
    case ChurnScenario::kSoak:
      // Long horizon, every event kind, including a commit that admits a
      // rejoiner and loses a leaver at once (commit 6): fresh join at
      // commit 2, crash r2 mid step 2 (readmitted alongside the joiner),
      // graceful leave of r1 at commit 6, second crash of r2 at step 6's
      // second all_gather (entry 18, readmitted at commit 6).
      spec.capacity = opt.world_size + 1;
      spec.steps = std::max(opt.steps * 2, 12);
      spec.events = {{Kind::kJoin, opt.world_size, 2},
                     {Kind::kCrash, 2, 5},
                     {Kind::kRejoin, 2, 1},
                     {Kind::kLeave, 1, 6},
                     {Kind::kCrash, 2, 18},
                     {Kind::kRejoin, 2, 1}};
      spec.expect_crashed = {2, 2};
      spec.expect_departed = {1};
      for (int i = 0; i < spec.capacity; ++i)
        if (i != 1) spec.expect_finished.push_back(i);
      spec.expect_generation.assign(static_cast<size_t>(spec.capacity), 0);
      spec.expect_generation[2] = 2;
      spec.expect_generation[static_cast<size_t>(opt.world_size)] = 1;
      spec.envelope = true;
      break;
  }
  return spec;
}

std::string JoinInts(const std::vector<int>& v) {
  std::ostringstream oss;
  for (size_t i = 0; i < v.size(); ++i) oss << (i != 0 ? "," : "") << v[i];
  return oss.str();
}

// Empty when the runs are byte-identical; otherwise names the first field
// that differs (the replay-gate failure message).
std::string DiffRuns(const ChurnRun& a, const ChurnRun& b) {
  if (a.outputs != b.outputs) {
    for (size_t i = 0; i < a.outputs.size(); ++i)
      if (a.outputs[i] != b.outputs[i])
        return "model bytes of rank " + std::to_string(i);
    return "model bytes";
  }
  if (a.finished != b.finished) return "finished set";
  if (a.generation != b.generation) return "join generations";
  if (a.crashed != b.crashed) return "crash record";
  if (a.departed != b.departed) return "departure record";
  if (a.epoch != b.epoch)
    return "epoch (" + std::to_string(a.epoch) + " vs " +
           std::to_string(b.epoch) + ")";
  if (a.error != b.error)
    return "error ('" + a.error + "' vs '" + b.error + "')";
  if (a.detected != b.detected) return "detected flag";
  return {};
}

}  // namespace

const char* ToString(ChurnScenario s) noexcept {
  switch (s) {
    case ChurnScenario::kCrashRejoin: return "crash-rejoin";
    case ChurnScenario::kRepeatedCrashRejoin: return "repeated-crash-rejoin";
    case ChurnScenario::kFreshJoin: return "fresh-join";
    case ChurnScenario::kGracefulLeave: return "graceful-leave";
    case ChurnScenario::kJoinDuringCollective: return "join-during-collective";
    case ChurnScenario::kLeaderCrashHier: return "leader-crash-hier";
    case ChurnScenario::kPowerSgdRejoin: return "powersgd-rejoin";
    case ChurnScenario::kSoak: return "soak";
  }
  return "unknown";
}

std::vector<ChurnScenario> AllChurnScenarios() {
  return {ChurnScenario::kCrashRejoin,
          ChurnScenario::kRepeatedCrashRejoin,
          ChurnScenario::kFreshJoin,
          ChurnScenario::kGracefulLeave,
          ChurnScenario::kJoinDuringCollective,
          ChurnScenario::kLeaderCrashHier,
          ChurnScenario::kPowerSgdRejoin,
          ChurnScenario::kSoak};
}

std::string ChurnCaseResult::Summary() const {
  std::ostringstream oss;
  oss << name << ": " << ToString(outcome) << " (seed=" << seed_used << ")";
  if (!detail.empty()) oss << " — " << detail;
  return oss.str();
}

ChurnRun RunChurnWorkload(ChurnScenario scenario, const ChurnOptions& opt) {
  const ScenarioSpec spec = SpecFor(scenario, opt);
  FaultPlanConfig cfg;
  cfg.seed = opt.seed;
  cfg.membership = spec.events;
  FaultPlan plan(cfg);
  ScopedFaultInjector install(&plan);
  return RunElastic(spec);
}

ChurnCaseResult RunChurnScenario(ChurnScenario scenario,
                                 const ChurnOptions& opt) {
  const ScenarioSpec spec = SpecFor(scenario, opt);
  ChurnCaseResult result;
  result.name = std::string("churn x ") + ToString(scenario);
  result.seed_used = opt.seed;
  const auto fail = [&result](std::string why) {
    result.outcome = ChaosOutcome::kSilentCorruption;
    result.detail = std::move(why);
    return result;
  };

  FaultPlanConfig cfg;
  cfg.seed = opt.seed;
  cfg.membership = spec.events;

  // Replay-determinism gate: the same seeded plan twice must produce
  // byte-identical results before the case may classify at all.
  ChurnRun run;
  int64_t injected = 0;
  {
    FaultPlan plan(cfg);
    ScopedFaultInjector install(&plan);
    run = RunElastic(spec);
    injected = plan.injected();
  }
  {
    FaultPlan replay(cfg);
    ScopedFaultInjector install(&replay);
    const ChurnRun second = RunElastic(spec);
    if (const std::string diff = DiffRuns(run, second); !diff.empty())
      return fail("nondeterministic under replay: two runs of seed " +
                  std::to_string(opt.seed) + " differ in " + diff);
  }

  if (run.detected) {
    result.outcome = ChaosOutcome::kDetected;
    result.detail = run.error;
    return result;
  }
  if (!run.error.empty())
    return fail("unstructured failure: " + run.error);

  // The scenario must actually have happened: crash/leave plans must have
  // fired, and join-only plans must show the admitted generation.
  if (!spec.join_only && injected == 0) {
    result.outcome = ChaosOutcome::kNoInjection;
    result.detail = "membership plan never fired";
    return result;
  }

  // Membership records.
  if (run.crashed != spec.expect_crashed)
    return fail("crash record [" + JoinInts(run.crashed) +
                "] != expected [" + JoinInts(spec.expect_crashed) + "]");
  if (run.departed != spec.expect_departed)
    return fail("departure record [" + JoinInts(run.departed) +
                "] != expected [" + JoinInts(spec.expect_departed) + "]");
  if (run.epoch != static_cast<uint64_t>(spec.steps))
    return fail("final membership epoch " + std::to_string(run.epoch) +
                " != expected " + std::to_string(spec.steps) +
                " (one commit per step)");
  std::vector<int> finished;
  for (size_t i = 0; i < run.finished.size(); ++i)
    if (run.finished[i] != 0) finished.push_back(static_cast<int>(i));
  if (finished != spec.expect_finished)
    return fail("finished ranks [" + JoinInts(finished) + "] != expected [" +
                JoinInts(spec.expect_finished) + "]");
  for (const int f : finished) {
    if (run.generation[static_cast<size_t>(f)] !=
        spec.expect_generation[static_cast<size_t>(f)])
      return fail("rank " + std::to_string(f) + " join generation " +
                  std::to_string(run.generation[static_cast<size_t>(f)]) +
                  " != expected " +
                  std::to_string(
                      spec.expect_generation[static_cast<size_t>(f)]));
  }

  // Every finished rank must hold bitwise-identical replicas: resync plus
  // lockstep aggregation leaves no room for divergence.
  for (size_t i = 1; i < finished.size(); ++i) {
    const auto a = static_cast<size_t>(finished[0]);
    const auto bidx = static_cast<size_t>(finished[i]);
    if (run.outputs[bidx] != run.outputs[a])
      return fail("finished ranks diverged: rank " +
                  std::to_string(finished[i]) + " != rank " +
                  std::to_string(finished[0]));
  }

  // Telescoping EF-mass ledger (Top-k scenarios).
  if (spec.method == ChurnMethod::kTopkEf) {
    for (const int f : finished) {
      const double gap = run.ef_gap[static_cast<size_t>(f)];
      if (!(gap < 1e-3))
        return fail("error-feedback mass not conserved on rank " +
                    std::to_string(f) + ": gap = " + std::to_string(gap));
    }
  }

  // Soak: convergence-tolerance envelope against the fault-free
  // fixed-membership baseline — catches divergence and corruption while
  // allowing the legitimate drift churn introduces.
  if (spec.envelope) {
    ScenarioSpec base = spec;
    base.events.clear();
    base.capacity = base.world_size;
    const ChurnRun baseline = RunElastic(base);
    if (!baseline.error.empty())
      return fail("baseline failed: " + baseline.error);
    const auto& ref = baseline.outputs[0];
    const auto& got = run.outputs[static_cast<size_t>(finished[0])];
    if (ref.size() != got.size())
      return fail("soak output size mismatch vs baseline");
    double linf = 0.0;
    for (size_t i = 0; i + sizeof(float) <= ref.size(); i += sizeof(float)) {
      float a = 0.0f;
      float g = 0.0f;
      std::memcpy(&a, ref.data() + i, sizeof(float));
      std::memcpy(&g, got.data() + i, sizeof(float));
      if (!std::isfinite(g))
        return fail("soak model contains a non-finite value");
      linf = std::max(linf, std::abs(static_cast<double>(a) -
                                     static_cast<double>(g)));
    }
    if (linf > opt.tolerance)
      return fail("soak model drifted " + std::to_string(linf) +
                  " (L-inf) from the fault-free baseline, tolerance " +
                  std::to_string(opt.tolerance));
    result.detail = "soak L-inf drift " + std::to_string(linf) +
                    " within tolerance " + std::to_string(opt.tolerance) +
                    "; ";
  }

  result.outcome = ChaosOutcome::kRecovered;
  result.detail += "membership records, replicas, epoch and ledgers "
                   "consistent after churn";
  return result;
}

}  // namespace acps::fault
