#include "fault/clock.h"

#include <thread>

namespace acps::fault {

std::atomic<int64_t> VirtualClock::ticks_{0};

int64_t BackoffTicks(int attempt) noexcept {
  if (attempt < 0) return 0;
  if (attempt > 16) attempt = 16;
  return int64_t{1} << attempt;
}

void ConsumeBackoff(int attempt) noexcept {
  VirtualClock::Advance(BackoffTicks(attempt));
  SpinYield(attempt + 1);
}

void SpinYield(int count) noexcept {
  for (int i = 0; i < count; ++i) std::this_thread::yield();
}

}  // namespace acps::fault
