// Fault-injection hooks: the instrumentation half of the resilience layer
// (acps::fault, DESIGN.md §6f).
//
// The in-process transport (comm/communicator.cc) moves every chunk through
// a sequence-numbered, checksummed mailbox envelope. A FaultInjector sits on
// the "wire" between a publish and the matching read: it can drop the
// message, replay the previous one, serve a reader a stale mailbox, rotate
// payload bytes after the checksum was sealed, charge virtual straggler
// ticks, or kill a rank outright at a collective entry. When no injector is
// installed (the normal case, including release builds) every hook costs one
// acquire load and a predicted-not-taken branch.
//
// This header is the only part of acps::fault the transport depends on; it
// depends on nothing but the standard library, so the dependency arrow stays
// comm -> fault::points, never fault -> comm at the hook level (the seeded
// FaultPlan and the chaos harness sit above comm, see plan.h / chaos.h).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace acps::fault {

// What the injector does to one transport event.
enum class FaultKind : uint8_t {
  kNone,       // deliver faithfully
  kDrop,       // publish lost on the wire: mailbox keeps the old message
  kDuplicate,  // publish delivered, then the previous message replayed over it
  kStaleRead,  // reader is served the previous mailbox contents
  kCorrupt,    // payload bytes rotated after the checksum was sealed
  kStraggler,  // sender charged virtual delay ticks before publishing
  kCrash,      // rank dies at this collective entry (fail-stop)
};

[[nodiscard]] const char* ToString(FaultKind kind) noexcept;

// Decision for one collective-entry event. `ticks` is only meaningful for
// kStraggler.
struct EntryDecision {
  FaultKind kind = FaultKind::kNone;
  int64_t ticks = 0;
};

// One scheduled (re)admission: `rank` wants to (re)enter the group at the
// first membership commit with index >= `at_commit` at which it is down
// (crashed, departed, or latent — never yet joined). The session registers
// every intent up front, so admission is a pure function of the commit
// index and the membership state, never of thread arrival order.
struct AdmissionIntent {
  int rank = -1;
  uint64_t at_commit = 1;  // 1-based commit index
};

// Receives every transport event while installed. Implementations must be
// thread-safe (events fire concurrently from all worker threads) and must be
// pure functions of their arguments plus immutable seed state, so a plan is
// replayable from (seed, sequence number) alone. `attempt` is the bounded
// retry attempt of the surrounding exchange; plans are expected to inject
// only at attempt 0 so recovery converges deterministically.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Wire fault for `rank`'s publish of message `seq`. May return kNone,
  // kDrop, kDuplicate, kCorrupt or kStraggler.
  virtual FaultKind OnPublish(int rank, uint64_t seq, int attempt) = 0;

  // Reader-side fault before `rank` validates the message `seq` it expects.
  // May return kNone or kStaleRead.
  virtual FaultKind OnRead(int rank, uint64_t seq, int attempt) = 0;

  // Collective-entry fault for `rank` entering its `collective_index`-th
  // collective (1-based, counted per rank). May return kNone, kCrash or
  // kStraggler.
  virtual EntryDecision OnCollectiveEntry(int rank,
                                          uint64_t collective_index) = 0;

  // Membership churn (elastic sessions, DESIGN.md "Elastic membership").
  // Both hooks must be pure functions of their arguments plus immutable
  // seed state, like the wire hooks above. Defaults keep every existing
  // injector a pure fail-stop plan.
  //
  // True when `rank` departs gracefully at the `commit_index`-th membership
  // commit (1-based): the rank announces the departure inside commit_view
  // and unwinds via RankDeparted instead of running further steps.
  [[nodiscard]] virtual bool LeavesAtCommit(int /*rank*/,
                                            uint64_t /*commit_index*/) {
    return false;
  }

  // The full (re)admission schedule for the run, known up front. The
  // session registers each intent before any worker starts, so replay
  // never depends on when a crashed thread reaches its wait loop.
  [[nodiscard]] virtual std::vector<AdmissionIntent> AdmissionSchedule() {
    return {};
  }

  // Identity string folded into detected-fault reports so a failure is
  // replayable from the report alone (seed, kind, rate, ...).
  [[nodiscard]] virtual std::string Describe() const {
    return "unnamed fault injector";
  }
};

namespace detail {
extern std::atomic<FaultInjector*> g_injector;
}  // namespace detail

// Installs `injector` process-wide (nullptr uninstalls); returns the
// previous one. The caller must guarantee no transport code is running
// during the swap — in practice the chaos harness installs before
// ThreadGroup::Run and uninstalls after it joins.
FaultInjector* InstallFaultInjector(FaultInjector* injector);

// RAII installation for harness code.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector)
      : previous_(InstallFaultInjector(injector)) {}
  ~ScopedFaultInjector() { InstallFaultInjector(previous_); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

[[nodiscard]] inline FaultInjector* InstalledFaultInjector() noexcept {
  return detail::g_injector.load(std::memory_order_acquire);
}

// The hooks the transport calls. Free when no injector is installed.
inline FaultKind OnPublish(int rank, uint64_t seq, int attempt) {
  FaultInjector* f = InstalledFaultInjector();
  return f != nullptr ? f->OnPublish(rank, seq, attempt) : FaultKind::kNone;
}

inline FaultKind OnRead(int rank, uint64_t seq, int attempt) {
  FaultInjector* f = InstalledFaultInjector();
  return f != nullptr ? f->OnRead(rank, seq, attempt) : FaultKind::kNone;
}

inline EntryDecision OnCollectiveEntry(int rank, uint64_t collective_index) {
  FaultInjector* f = InstalledFaultInjector();
  return f != nullptr ? f->OnCollectiveEntry(rank, collective_index)
                      : EntryDecision{};
}

// Thrown (as a plain struct, deliberately NOT a std::exception, so generic
// catch(const std::exception&) handlers in library code cannot swallow it)
// by the transport when a rank's fail-stop crash fires. ThreadGroup::Run
// catches it, records the rank as crashed, and lets the surviving ranks
// finish with the reconfigured membership.
struct RankCrashed {
  int rank = -1;
  uint64_t collective_index = 0;
};

// Thrown (same plain-struct rationale as RankCrashed) by commit_view when a
// rank's scheduled graceful departure fires: the rank marks itself gone,
// the survivors complete the commit over the shrunken view, and the
// session worker either finishes the rank or parks it for readmission.
struct RankDeparted {
  int rank = -1;
  uint64_t commit_index = 0;
};

// Unrecoverable-but-detected transport failure: bounded retry exhausted
// (e.g. the only publisher of a message is dead, or faults outlasted the
// retry budget). Carries the structured site report; every rank of the
// group throws it in lockstep, so the group unwinds without deadlocking.
class DetectedError : public std::runtime_error {
 public:
  explicit DetectedError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace acps::fault
