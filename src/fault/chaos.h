// Chaos harness (DESIGN.md §6f): drives every fault kind through every
// collective and every compression method, and classifies each case as
//
//   kRecovered         — the run completed and the observable result is
//                        bitwise identical to the fault-free baseline (wire
//                        faults), or the survivors completed consistently
//                        with the reconfigured membership (rank crash);
//   kDetected          — the transport raised fault::DetectedError on every
//                        rank in lockstep, carrying a seed-replayable report;
//   kSilentCorruption  — the run "succeeded" but the bits differ from the
//                        baseline, or it failed in an unstructured way. This
//                        is the outcome the whole layer exists to rule out:
//                        any occurrence is a test failure;
//   kNoInjection       — the seeded plan never fired even after the seed
//                        bumps; the case proves nothing and is also a test
//                        failure (it means the rate/seed knobs are broken).
//
// Two granularities:
//  * RunCollectiveChaos — one collective op over method-flavored payloads
//    (the compressed representations each method actually puts on the wire).
//  * RunTrainingChaos — a short compressed training loop (error feedback,
//    factor reuse, momentum-free SGD); recoverable faults must leave the
//    final model bitwise identical, a rank crash must leave the survivors
//    mutually identical with conserved error-feedback mass.
//
// Every decision is replayable: the result records the plan seed that was
// used, and re-running the same case with the same ChaosOptions reproduces
// the identical fault sequence (FaultPlan is a pure function of (seed, seq,
// rank, site); the transport has no wall-clock nondeterminism).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.h"

namespace acps::fault {

// The collectives the matrix covers (ISSUE: ring all-reduce, all-gather,
// reduce-scatter, broadcast, hierarchical).
enum class ChaosCollective : uint8_t {
  kAllReduceRing,
  kAllGather,
  kReduceScatter,
  kBroadcast,
  kHierarchical,
};

// The compression methods whose wire payloads / training loops the matrix
// covers (ISSUE: ACP-SGD, Power-SGD, Top-k, Sign).
enum class ChaosMethod : uint8_t {
  kAcpSgd,
  kPowerSgd,
  kTopk,
  kSign,
};

enum class ChaosOutcome : uint8_t {
  kRecovered,
  kDetected,
  kSilentCorruption,
  kNoInjection,
};

[[nodiscard]] const char* ToString(ChaosCollective c) noexcept;
[[nodiscard]] const char* ToString(ChaosMethod m) noexcept;
[[nodiscard]] const char* ToString(ChaosOutcome o) noexcept;

[[nodiscard]] std::vector<ChaosCollective> AllChaosCollectives();
[[nodiscard]] std::vector<ChaosMethod> AllChaosMethods();
// The injectable kinds (everything except kNone).
[[nodiscard]] std::vector<FaultKind> AllInjectableFaultKinds();

struct ChaosOptions {
  int world_size = 4;
  // Elements per collective payload; must be divisible by 6 (the low-rank
  // payloads reshape it to a 6 x numel/6 matrix).
  int64_t numel = 48;
  // Training steps for RunTrainingChaos.
  int steps = 5;
  // Base plan seed. When a seeded plan happens to never fire for a case,
  // the harness deterministically bumps the seed up to `max_seed_bumps`
  // times before giving up with kNoInjection.
  uint64_t seed = 0xFA17ull;
  int max_seed_bumps = 8;
  // Wire-fault probability per event; entry-fault probability for
  // stragglers.
  double rate = 0.25;
  int64_t straggler_ticks = 64;
  // Rank that fail-stops in kCrash cases (-1: world_size - 1) and the
  // 1-based collective entry it dies at (training cases die later so the
  // crash lands mid-run).
  int crash_rank = -1;
  uint64_t crash_at_collective = 1;
};

// Raw outcome of one group run: per-rank output bytes (crashed ranks hold
// whatever they had produced before dying — callers must ignore them),
// the crash record, and how the run ended.
struct ChaosRun {
  std::vector<std::vector<std::byte>> outputs;  // per rank
  std::vector<int> crashed;                     // from ThreadGroup
  // Per-rank error-feedback conservation gap (training runs with
  // harness-owned EF only, i.e. Top-k and Sign):
  //   max_i | sum_t grad_t[i] - (sum_t reconstruction_t[i] + residual_T[i]) |
  // The telescoping EF invariant makes this ~0 for any fault the run
  // absorbed; a lost or double-counted update shows up here even when the
  // final models happen to agree.
  std::vector<double> ef_gap;  // empty for methods with internal EF
  std::string error;     // non-empty when the run failed
  bool detected = false; // the failure was a structured fault::DetectedError
};

// Runs the collective workload under whatever FaultInjector is currently
// installed (none = fault-free baseline). Payloads are deterministic
// per (method, rank), so two runs with the same injector state are
// bitwise-comparable.
[[nodiscard]] ChaosRun RunCollectiveWorkload(ChaosCollective c, ChaosMethod m,
                                             const ChaosOptions& opt);

// Short compressed training loop (see file comment) under the installed
// injector. Outputs are the final parameter bytes per rank.
[[nodiscard]] ChaosRun RunTrainingWorkload(ChaosMethod m,
                                           const ChaosOptions& opt);

// One classified matrix cell. `ok()` is what the chaos test asserts for
// every cell: the fault fired, and it was either absorbed or detected.
struct ChaosCaseResult {
  std::string name;
  ChaosOutcome outcome = ChaosOutcome::kNoInjection;
  int64_t injected = 0;    // faults the plan actually fired
  uint64_t seed_used = 0;  // replay handle
  std::string detail;      // diff / report / crash record

  [[nodiscard]] bool ok() const {
    return outcome == ChaosOutcome::kRecovered ||
           outcome == ChaosOutcome::kDetected;
  }
  [[nodiscard]] std::string Summary() const;
};

// One cell of the collective-level matrix: baseline run, then the same
// workload under a seeded FaultPlan of `kind`, then classification.
[[nodiscard]] ChaosCaseResult RunCollectiveChaos(FaultKind kind,
                                                 ChaosCollective c,
                                                 ChaosMethod m,
                                                 const ChaosOptions& opt);

// One cell of the training-level matrix (kCrash cases die at
// max(crash_at_collective, 3) so the crash lands mid-training).
[[nodiscard]] ChaosCaseResult RunTrainingChaos(FaultKind kind, ChaosMethod m,
                                               const ChaosOptions& opt);

// Detected-path probes (the matrix above exercises the recovery paths):
// broadcast whose root has fail-stopped — every survivor must raise the
// same structured DetectedError naming the dead root.
[[nodiscard]] ChaosCaseResult RunDeadRootBroadcast(const ChaosOptions& opt);
// A hostile injector that drops every publish on every attempt — the
// bounded retry must exhaust its budget and raise DetectedError rather
// than spin or deadlock.
[[nodiscard]] ChaosCaseResult RunRetryExhaustion(const ChaosOptions& opt);

}  // namespace acps::fault
