// Churn chaos harness (DESIGN.md "Elastic membership"): drives membership
// churn — crash→rejoin, repeated crash, fresh join, graceful leave,
// node-leader crash on the hierarchical inter-node stage, and a long-horizon
// soak — through a real elastic training loop, and classifies every scenario
// with the chaos taxonomy (fault/chaos.h): recovered, detected, or the
// failure mode the layer exists to rule out, silent divergence.
//
// The training loop is the elastic extension of RunTrainingWorkload: one
// membership commit (Communicator::commit_view) per step, a harness-owned
// *escrow board* holding each rank's commit-boundary snapshot (EF residual,
// conservation ledgers, Power-SGD residual), and a resync protocol after
// every commit that admitted ranks:
//
//   * the donor — the lowest-ranked survivor of the committed view —
//     broadcasts the current model and step counter (and, for Power-SGD,
//     its reused query factor Q, which is identical on every survivor);
//   * a REJOINING rank restores its own escrowed EF residual and ledgers —
//     the mass it still owes the group — rolled back to its last committed
//     step, so the telescoping EF invariant
//       sum(grad) == sum(reconstruction) + residual
//     holds globally across the crash;
//   * a FRESH joiner starts from zero residual and empty ledgers.
//
// Every scenario is replayable: the harness runs each faulted case twice
// with the same seed and requires byte-identical results (outputs,
// membership records, epochs) before it will classify at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "fault/plan.h"

namespace acps::fault {

// The churn matrix (ISSUE: churn chaos gates).
enum class ChurnScenario : uint8_t {
  kCrashRejoin,           // crash mid-step, readmitted at the next commit
  kRepeatedCrashRejoin,   // the same rank crashes and rejoins twice
  kFreshJoin,             // latent capacity rank admitted mid-run
  kGracefulLeave,         // planned departure at a commit (LEFT, not CRASHED)
  kJoinDuringCollective,  // intent pending while step collectives are in
                          // flight; admission must wait for the commit
  kLeaderCrashHier,       // node-leader crash mid-phase of the hierarchical
                          // inter-node stage, then rejoin
  kPowerSgdRejoin,        // crash+rejoin with donor factor re-broadcast
  kSoak,                  // long horizon: join + crash + leave + repeated
                          // crash, convergence-tolerance envelope vs the
                          // fault-free baseline
};

[[nodiscard]] const char* ToString(ChurnScenario s) noexcept;
[[nodiscard]] std::vector<ChurnScenario> AllChurnScenarios();

struct ChurnOptions {
  // Initial world size; capacity (SessionOptions::max_world_size) is
  // world_size + 1 for join scenarios and world_size otherwise.
  int world_size = 3;
  // Training steps == membership commits (one commit_view per step).
  int steps = 6;
  uint64_t seed = 0xC4E27ull;
  // L-inf envelope for the soak scenario's final model against the
  // fault-free fixed-membership baseline. Churn changes which gradients
  // are aggregated, so the soak model legitimately drifts; the envelope
  // bounds the drift (steps * lr * max |combined gradient| difference) and
  // catches divergence, NaNs, and corruption.
  double tolerance = 6.0;
};

// Raw outcome of one elastic run, indexed by capacity slot.
struct ChurnRun {
  std::vector<std::vector<std::byte>> outputs;  // final model bytes
  std::vector<uint8_t> finished;    // slot was alive at the end of the run
  std::vector<int> generation;      // Communicator::join_generation() at end
  std::vector<double> ef_gap;       // telescoping ledger gap (EF methods)
  std::vector<int> crashed;         // Session::crashed_ranks (crash order)
  std::vector<int> departed;        // Session::departed_ranks (commit order)
  uint64_t epoch = 0;               // Session::membership_epoch
  std::string error;                // non-empty when the run failed
  bool detected = false;            // the failure was fault::DetectedError
};

// One classified churn case. Reuses the chaos outcome taxonomy; `ok()`
// means recovered-or-detected — no silent divergence, no vacuous pass.
struct ChurnCaseResult {
  std::string name;
  ChaosOutcome outcome = ChaosOutcome::kNoInjection;
  uint64_t seed_used = 0;  // replay handle
  std::string detail;

  [[nodiscard]] bool ok() const {
    return outcome == ChaosOutcome::kRecovered ||
           outcome == ChaosOutcome::kDetected;
  }
  [[nodiscard]] std::string Summary() const;
};

// Runs the elastic training workload for `scenario` under its membership
// plan (exposed for determinism tests: two calls with the same options are
// byte-identical).
[[nodiscard]] ChurnRun RunChurnWorkload(ChurnScenario scenario,
                                        const ChurnOptions& opt);

// One cell of the churn matrix: replay-determinism gate, then membership/
// output/ledger classification (and, for kSoak, the tolerance envelope
// against the fault-free baseline).
[[nodiscard]] ChurnCaseResult RunChurnScenario(ChurnScenario scenario,
                                               const ChurnOptions& opt);

}  // namespace acps::fault
