// Seeded, replayable fault plans (DESIGN.md §6f).
//
// A FaultPlan is the standard FaultInjector used by the chaos harness and
// tests. Every decision is a pure function of (seed, event coordinates): a
// SplitMix64-style hash of (seed, seq, rank, site) compared against the
// configured rate. No wall-clock input, no mutable per-event state — so two
// runs of the same plan against the same workload inject byte-identical
// fault sequences, and a failure report's (seed, seq, rank) triple replays
// exactly. Faults fire only on retry attempt 0: the transport's bounded
// retry then converges deterministically instead of racing the injector.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "fault/injector.h"

namespace acps::fault {

// Deterministic 64-bit mix (SplitMix64 finalizer). Exposed for tests.
[[nodiscard]] uint64_t Mix64(uint64_t x) noexcept;

struct FaultPlanConfig {
  uint64_t seed = 1;

  // The wire/read fault kind this plan injects (kDrop, kDuplicate,
  // kStaleRead or kCorrupt), fired per matching event with probability
  // `rate` (0..1). kStraggler and kCrash are driven by the entry fields
  // below instead.
  FaultKind kind = FaultKind::kNone;
  double rate = 0.0;

  // Straggler injection at collective entry: with probability `rate`, the
  // entering rank is charged `straggler_ticks` of virtual delay.
  int64_t straggler_ticks = 64;

  // Fail-stop crash: `crash_rank` dies when it enters its
  // `crash_at_collective`-th collective (1-based). Disabled when empty.
  std::optional<int> crash_rank;
  uint64_t crash_at_collective = 1;
};

class FaultPlan final : public FaultInjector {
 public:
  explicit FaultPlan(FaultPlanConfig config) : config_(config) {}

  FaultKind OnPublish(int rank, uint64_t seq, int attempt) override;
  FaultKind OnRead(int rank, uint64_t seq, int attempt) override;
  EntryDecision OnCollectiveEntry(int rank, uint64_t collective_index) override;

  // Total faults actually injected (all kinds). The chaos harness requires
  // this to be > 0 before it will claim a fault kind "recovered" — a plan
  // that never fired proves nothing.
  [[nodiscard]] int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const FaultPlanConfig& config() const { return config_; }

  // Human-readable identity for seed-replayable reports.
  [[nodiscard]] std::string Describe() const override;

 private:
  // True with probability config_.rate for the event at (seq, rank, site).
  [[nodiscard]] bool Fires(uint64_t seq, int rank, uint64_t site) const;

  FaultPlanConfig config_;
  std::atomic<int64_t> injected_{0};
};

}  // namespace acps::fault
