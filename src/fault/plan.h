// Seeded, replayable fault plans (DESIGN.md §6f).
//
// A FaultPlan is the standard FaultInjector used by the chaos harness and
// tests. Every decision is a pure function of (seed, event coordinates): a
// SplitMix64-style hash of (seed, seq, rank, site) compared against the
// configured rate. No wall-clock input, no mutable per-event state — so two
// runs of the same plan against the same workload inject byte-identical
// fault sequences, and a failure report's (seed, seq, rank) triple replays
// exactly. Faults fire only on retry attempt 0: the transport's bounded
// retry then converges deterministically instead of racing the injector.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/injector.h"

namespace acps::fault {

// Deterministic 64-bit mix (SplitMix64 finalizer). Exposed for tests.
[[nodiscard]] uint64_t Mix64(uint64_t x) noexcept;

// One membership-churn event in a plan's ordered schedule. `at` is 1-based:
// for kCrash it is the victim's per-rank collective-entry index (matching
// the legacy crash_at_collective); for kRejoin/kJoin/kLeave it is the
// membership-commit index the event targets. kRejoin and kJoin share
// admission semantics (first commit >= `at` at which the rank is down) and
// differ only in intent: kRejoin re-admits a previously crashed/departed
// rank, kJoin admits a latent rank that has never run.
struct MembershipEvent {
  enum class Kind : uint8_t { kCrash, kRejoin, kJoin, kLeave };
  Kind kind = Kind::kCrash;
  int rank = 0;
  uint64_t at = 1;
};

[[nodiscard]] const char* ToString(MembershipEvent::Kind kind) noexcept;

struct FaultPlanConfig {
  uint64_t seed = 1;

  // The wire/read fault kind this plan injects (kDrop, kDuplicate,
  // kStaleRead or kCorrupt), fired per matching event with probability
  // `rate` (0..1). kStraggler and membership churn are driven by the
  // fields below instead.
  FaultKind kind = FaultKind::kNone;
  double rate = 0.0;

  // Straggler injection at collective entry: with probability `rate`, the
  // entering rank is charged `straggler_ticks` of virtual delay.
  int64_t straggler_ticks = 64;

  // Legacy single fail-stop crash: `crash_rank` dies when it enters its
  // `crash_at_collective`-th collective (1-based). Folded into
  // `membership` at FaultPlan construction; kept so existing configs and
  // replay handles stay valid.
  std::optional<int> crash_rank;
  uint64_t crash_at_collective = 1;

  // Ordered membership schedule: repeated crashes, rejoins, fresh joins
  // and graceful leaves. Order in the vector is documentation only —
  // every event is keyed by its own (rank, at) coordinates, so the
  // schedule is replayable regardless of listing order.
  std::vector<MembershipEvent> membership;
};

class FaultPlan final : public FaultInjector {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  FaultKind OnPublish(int rank, uint64_t seq, int attempt) override;
  FaultKind OnRead(int rank, uint64_t seq, int attempt) override;
  EntryDecision OnCollectiveEntry(int rank, uint64_t collective_index) override;
  bool LeavesAtCommit(int rank, uint64_t commit_index) override;
  std::vector<AdmissionIntent> AdmissionSchedule() override;

  // Total faults actually injected (all kinds). The chaos harness requires
  // this to be > 0 before it will claim a fault kind "recovered" — a plan
  // that never fired proves nothing.
  [[nodiscard]] int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const FaultPlanConfig& config() const { return config_; }

  // Human-readable identity for seed-replayable reports.
  [[nodiscard]] std::string Describe() const override;

 private:
  // True with probability config_.rate for the event at (seq, rank, site).
  [[nodiscard]] bool Fires(uint64_t seq, int rank, uint64_t site) const;

  FaultPlanConfig config_;
  std::atomic<int64_t> injected_{0};
};

// True when the plan's membership schedule admits or readmits at least one
// rank (kRejoin/kJoin events). Sessions use this to size the worker pool.
[[nodiscard]] bool HasAdmissions(const FaultPlanConfig& config);

}  // namespace acps::fault
