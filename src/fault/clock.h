// Virtual time for deterministic backoff (DESIGN.md §6f).
//
// Real retry loops back off with wall-clock sleeps; that is banned here
// (tools/lint.sh `raw-sleep`) because wall-clock time is the one input the
// replay contract cannot reproduce. Instead the resilience layer keeps a
// process-wide monotonic tick counter: "waiting" means atomically charging
// ticks to the clock and yielding the CPU a bounded number of times so
// sibling worker threads make progress. Two runs with the same (seed, plan)
// therefore charge identical tick totals — the clock is part of the
// replayable state, and tests assert on it.
#pragma once

#include <atomic>
#include <cstdint>

namespace acps::fault {

class VirtualClock {
 public:
  // Current virtual time in ticks.
  static int64_t Now() noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }

  // Charges `ticks` of virtual delay (straggler latency, retry backoff).
  static void Advance(int64_t ticks) noexcept {
    if (ticks > 0) ticks_.fetch_add(ticks, std::memory_order_relaxed);
  }

  static void Reset() noexcept {
    ticks_.store(0, std::memory_order_relaxed);
  }

 private:
  static std::atomic<int64_t> ticks_;
};

// Backoff schedule for bounded retry: attempt a (0-based) charges 2^a ticks,
// capped so a full retry budget stays small and overflow-free.
[[nodiscard]] int64_t BackoffTicks(int attempt) noexcept;

// Charges the backoff for `attempt` to the virtual clock and yields the CPU
// a few times (bounded — no spinning on wall-clock time). The yields are a
// scheduling courtesy to sibling simulated ranks, not a synchronization
// mechanism; correctness comes from the barriers around the exchange.
void ConsumeBackoff(int attempt) noexcept;

// Bounded CPU-yield helper for code that must not sleep (see the raw-sleep
// lint ban): performs exactly `count` sched yields.
void SpinYield(int count) noexcept;

}  // namespace acps::fault
