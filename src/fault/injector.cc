#include "fault/injector.h"

namespace acps::fault {

namespace detail {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace detail

const char* ToString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone:      return "none";
    case FaultKind::kDrop:      return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kStaleRead: return "stale-read";
    case FaultKind::kCorrupt:   return "corrupt";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCrash:     return "crash";
  }
  return "?";
}

FaultInjector* InstallFaultInjector(FaultInjector* injector) {
  return detail::g_injector.exchange(injector, std::memory_order_acq_rel);
}

}  // namespace acps::fault
