#include "fault/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "comm/communicator.h"
#include "comm/hierarchical.h"
#include "compress/acpsgd.h"
#include "compress/error_feedback.h"
#include "compress/powersgd.h"
#include "compress/sign.h"
#include "compress/topk.h"
#include "fault/plan.h"
#include "tensor/check.h"

namespace acps::fault {
namespace {

// ---------------------------------------------------------------------------
// Deterministic inputs. Multiples of 0.25 keep the exact-arithmetic parts of
// the pipelines exactly representable; bitwise oracles never rely on it, but
// it keeps diffs readable.
// ---------------------------------------------------------------------------

float GradValue(int rank, int64_t i, int step = 0) {
  return static_cast<float>(((i * 7 + rank * 13 + step * 29) % 19) - 9) *
         0.25f;
}

std::vector<std::byte> FloatsToBytes(std::span<const float> v) {
  std::vector<std::byte> out(v.size() * sizeof(float));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

void AppendBytes(std::vector<std::byte>& slot, std::span<const float> v) {
  const auto b = FloatsToBytes(v);
  slot.insert(slot.end(), b.begin(), b.end());
}

// The wire payload a method would put on this collective: the compressed
// representation (decoded back to floats so every collective can carry it),
// deterministic per (method, rank).
std::vector<float> MethodPayload(ChaosMethod m, int rank, int64_t n) {
  ACPS_CHECK_MSG(n % 6 == 0, "chaos payload numel must be divisible by 6");
  std::vector<float> g(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    g[static_cast<size_t>(i)] = GradValue(rank, i);
  switch (m) {
    case ChaosMethod::kSign: {
      compress::SignCompressor sign;
      std::vector<std::byte> blob(sign.EncodedBytes(g.size()));
      sign.EncodeInto(g, blob);
      std::vector<float> out(g.size());
      sign.Decode(blob, out);
      return out;
    }
    case ChaosMethod::kTopk: {
      compress::TopkCompressor topk(0.25, compress::TopkSelection::kExact);
      std::vector<std::byte> blob(topk.EncodedBytes(g.size()));
      topk.EncodeInto(g, blob);
      std::vector<float> out(g.size(), 0.0f);
      topk.Decode(blob, out);
      return out;
    }
    case ChaosMethod::kAcpSgd: {
      compress::AcpSgdConfig cfg;
      cfg.rank = 2;
      compress::AcpSgd acp(cfg);
      Tensor mat({6, n / 6});
      std::copy(g.begin(), g.end(), mat.data().begin());
      const std::span<float> factor = acp.LocalStep(0, mat);
      // Factor first (the bytes ACP-SGD actually communicates), gradient
      // values as filler to reach the collective's payload size.
      std::vector<float> out = g;
      const size_t k = std::min(out.size(), factor.size());
      std::copy(factor.begin(), factor.begin() + static_cast<ptrdiff_t>(k),
                out.begin());
      return out;
    }
    case ChaosMethod::kPowerSgd: {
      compress::PowerSgdConfig cfg;
      cfg.rank = 2;
      compress::PowerSgd psgd(cfg);
      Tensor mat({6, n / 6});
      std::copy(g.begin(), g.end(), mat.data().begin());
      // Local (single-worker) step: the identity "all-reduce" makes the
      // low-rank reconstruction P·Qᵀ the payload.
      psgd.Step(0, mat, [](std::span<float>) {});
      return {mat.data().begin(), mat.data().end()};
    }
  }
  return g;
}

// Shared tail of both workloads: run `body` on a fresh group and fold the
// outcome (outputs, crash record, error classification) into a ChaosRun.
ChaosRun RunGroup(int world_size,
                  const std::function<void(comm::Communicator&, ChaosRun&)>& body,
                  bool with_ef_gap = false) {
  ChaosRun run;
  run.outputs.assign(static_cast<size_t>(world_size), {});
  if (with_ef_gap) run.ef_gap.assign(static_cast<size_t>(world_size), 0.0);
  comm::Transport transport;
  comm::Session group(transport, "", world_size);
  try {
    group.Run([&](comm::Communicator& comm) { body(comm, run); });
  } catch (const DetectedError& e) {
    run.error = e.what();
    run.detected = true;
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  run.crashed = group.crashed_ranks();
  return run;
}

std::string DescribeByteDiff(const std::vector<std::byte>& want,
                             const std::vector<std::byte>& got) {
  std::ostringstream oss;
  if (want.size() != got.size()) {
    oss << "size " << got.size() << " != expected " << want.size();
    return oss.str();
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (want[i] != got[i]) {
      oss << "first diff at byte " << i;
      const size_t fi = i / sizeof(float);
      if ((want.size() % sizeof(float)) == 0) {
        float fw = 0.0f;
        float fg = 0.0f;
        std::memcpy(&fw, want.data() + fi * sizeof(float), sizeof(float));
        std::memcpy(&fg, got.data() + fi * sizeof(float), sizeof(float));
        oss << " (element " << fi << ": expected " << fw << ", got " << fg
            << ")";
      }
      return oss.str();
    }
  }
  return "";
}

std::string JoinRanks(const std::vector<int>& ranks) {
  std::ostringstream oss;
  for (size_t i = 0; i < ranks.size(); ++i)
    oss << (i != 0 ? "," : "") << ranks[i];
  return oss.str();
}

// Classifies a faulted run against its fault-free baseline. `crash_rank`
// is < 0 for wire-fault cases (which must reproduce the baseline bits) and
// the expected dead rank for crash cases (which must complete consistently
// over the survivors instead). `rank_invariant` says whether all (surviving)
// ranks must hold identical bytes.
ChaosCaseResult Classify(const ChaosRun& baseline, const ChaosRun& run,
                         int crash_rank, bool rank_invariant) {
  ChaosCaseResult result;
  if (run.detected) {
    result.outcome = ChaosOutcome::kDetected;
    result.detail = run.error;
    return result;
  }
  if (!run.error.empty()) {
    result.outcome = ChaosOutcome::kSilentCorruption;
    result.detail = "unstructured failure: " + run.error;
    return result;
  }
  const int p = static_cast<int>(run.outputs.size());
  if (crash_rank >= 0) {
    if (run.crashed != std::vector<int>{crash_rank}) {
      result.outcome = ChaosOutcome::kSilentCorruption;
      result.detail =
          "expected exactly rank " + std::to_string(crash_rank) +
          " to crash, got [" + JoinRanks(run.crashed) + "]";
      return result;
    }
    if (rank_invariant) {
      int first = crash_rank == 0 ? 1 : 0;
      for (int r = first + 1; r < p; ++r) {
        if (r == crash_rank) continue;
        if (run.outputs[static_cast<size_t>(r)] !=
            run.outputs[static_cast<size_t>(first)]) {
          result.outcome = ChaosOutcome::kSilentCorruption;
          result.detail =
              "survivors diverged: rank " + std::to_string(r) + " vs rank " +
              std::to_string(first) + ": " +
              DescribeByteDiff(run.outputs[static_cast<size_t>(first)],
                               run.outputs[static_cast<size_t>(r)]);
          return result;
        }
      }
    }
    for (size_t r = 0; r < run.ef_gap.size(); ++r) {
      if (static_cast<int>(r) == crash_rank) continue;
      if (!(run.ef_gap[r] < 1e-3)) {
        result.outcome = ChaosOutcome::kSilentCorruption;
        result.detail = "error-feedback mass not conserved on rank " +
                        std::to_string(r) +
                        ": gap = " + std::to_string(run.ef_gap[r]);
        return result;
      }
    }
    result.outcome = ChaosOutcome::kRecovered;
    result.detail = "completed with " + std::to_string(p - 1) +
                    " survivors after rank " + std::to_string(crash_rank) +
                    " fail-stopped";
    return result;
  }
  for (int r = 0; r < p; ++r) {
    if (run.outputs[static_cast<size_t>(r)] !=
        baseline.outputs[static_cast<size_t>(r)]) {
      result.outcome = ChaosOutcome::kSilentCorruption;
      result.detail =
          "rank " + std::to_string(r) + " diverged from fault-free bits: " +
          DescribeByteDiff(baseline.outputs[static_cast<size_t>(r)],
                           run.outputs[static_cast<size_t>(r)]);
      return result;
    }
  }
  for (size_t r = 0; r < run.ef_gap.size(); ++r) {
    if (!(run.ef_gap[r] < 1e-3)) {
      result.outcome = ChaosOutcome::kSilentCorruption;
      result.detail = "error-feedback mass not conserved on rank " +
                      std::to_string(r) +
                      ": gap = " + std::to_string(run.ef_gap[r]);
      return result;
    }
  }
  result.outcome = ChaosOutcome::kRecovered;
  result.detail = "bitwise identical to the fault-free run";
  return result;
}

// Builds the FaultPlan for one matrix cell. Wire kinds use `rate`; crash is
// deterministic; stragglers ride the entry site. `rate` has already been
// escalated across seed bumps (see RunPlannedCase) — workloads with very few
// events (broadcast publishes once) converge to rate 1.0, which is still a
// valid plan because plans only fire on attempt 0.
FaultPlanConfig PlanFor(FaultKind kind, uint64_t seed, double rate,
                        const ChaosOptions& opt, uint64_t crash_at) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  switch (kind) {
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
    case FaultKind::kStaleRead:
    case FaultKind::kCorrupt:
      cfg.kind = kind;
      cfg.rate = rate;
      break;
    case FaultKind::kStraggler:
      cfg.kind = kind;
      cfg.rate = std::max(rate, 0.5);  // few entry events per run
      cfg.straggler_ticks = opt.straggler_ticks;
      break;
    case FaultKind::kCrash:
      cfg.crash_rank = opt.crash_rank >= 0 ? opt.crash_rank
                                           : opt.world_size - 1;
      cfg.crash_at_collective = crash_at;
      break;
    case FaultKind::kNone:
      break;
  }
  return cfg;
}

std::string CaseName(FaultKind kind, const std::string& workload,
                     ChaosMethod m) {
  return std::string(ToString(kind)) + " x " + workload + " x " + ToString(m);
}

// Seed-bump loop shared by both matrices: a plan that never fired proves
// nothing, so retry with deterministically bumped seeds before reporting
// kNoInjection.
ChaosCaseResult RunPlannedCase(FaultKind kind, const std::string& workload,
                               ChaosMethod m, const ChaosOptions& opt,
                               uint64_t crash_at, bool rank_invariant,
                               const ChaosRun& baseline,
                               const std::function<ChaosRun()>& faulted) {
  ChaosCaseResult result;
  result.name = CaseName(kind, workload, m);
  const int expected_crash =
      kind == FaultKind::kCrash
          ? (opt.crash_rank >= 0 ? opt.crash_rank : opt.world_size - 1)
          : -1;
  for (int bump = 0; bump <= opt.max_seed_bumps; ++bump) {
    const uint64_t seed = opt.seed + 0x9E37ull * static_cast<uint64_t>(bump);
    const double rate =
        std::min(1.0, opt.rate * static_cast<double>(bump + 1));
    FaultPlan plan(PlanFor(kind, seed, rate, opt, crash_at));
    ChaosRun run;
    {
      ScopedFaultInjector install(&plan);
      run = faulted();
    }
    if (plan.injected() == 0) continue;  // bump the seed, try again
    result = Classify(baseline, run, expected_crash, rank_invariant);
    result.name = CaseName(kind, workload, m);
    result.injected = plan.injected();
    result.seed_used = seed;
    return result;
  }
  result.outcome = ChaosOutcome::kNoInjection;
  result.detail = "plan never fired after " +
                  std::to_string(opt.max_seed_bumps + 1) + " seeds";
  return result;
}

}  // namespace

const char* ToString(ChaosCollective c) noexcept {
  switch (c) {
    case ChaosCollective::kAllReduceRing: return "all_reduce[ring]";
    case ChaosCollective::kAllGather: return "all_gather";
    case ChaosCollective::kReduceScatter: return "reduce_scatter";
    case ChaosCollective::kBroadcast: return "broadcast";
    case ChaosCollective::kHierarchical: return "hierarchical";
  }
  return "unknown";
}

const char* ToString(ChaosMethod m) noexcept {
  switch (m) {
    case ChaosMethod::kAcpSgd: return "acpsgd";
    case ChaosMethod::kPowerSgd: return "powersgd";
    case ChaosMethod::kTopk: return "topk";
    case ChaosMethod::kSign: return "signsgd";
  }
  return "unknown";
}

const char* ToString(ChaosOutcome o) noexcept {
  switch (o) {
    case ChaosOutcome::kRecovered: return "RECOVERED";
    case ChaosOutcome::kDetected: return "DETECTED";
    case ChaosOutcome::kSilentCorruption: return "SILENT-CORRUPTION";
    case ChaosOutcome::kNoInjection: return "NO-INJECTION";
  }
  return "unknown";
}

std::vector<ChaosCollective> AllChaosCollectives() {
  return {ChaosCollective::kAllReduceRing, ChaosCollective::kAllGather,
          ChaosCollective::kReduceScatter, ChaosCollective::kBroadcast,
          ChaosCollective::kHierarchical};
}

std::vector<ChaosMethod> AllChaosMethods() {
  return {ChaosMethod::kAcpSgd, ChaosMethod::kPowerSgd, ChaosMethod::kTopk,
          ChaosMethod::kSign};
}

std::vector<FaultKind> AllInjectableFaultKinds() {
  return {FaultKind::kDrop,    FaultKind::kDuplicate, FaultKind::kStaleRead,
          FaultKind::kCorrupt, FaultKind::kStraggler, FaultKind::kCrash};
}

std::string ChaosCaseResult::Summary() const {
  std::ostringstream oss;
  oss << name << ": " << ToString(outcome) << " (injected=" << injected
      << ", seed=" << seed_used << ")";
  if (!detail.empty()) oss << " — " << detail;
  return oss.str();
}

ChaosRun RunCollectiveWorkload(ChaosCollective c, ChaosMethod m,
                               const ChaosOptions& opt) {
  const int p = opt.world_size;
  const int64_t n = opt.numel;
  return RunGroup(p, [&](comm::Communicator& comm, ChaosRun& run) {
    const int r = comm.rank();
    std::vector<float> data = MethodPayload(m, r, n);
    auto& slot = run.outputs[static_cast<size_t>(r)];
    switch (c) {
      case ChaosCollective::kAllReduceRing:
        comm.all_reduce(data);
        slot = FloatsToBytes(data);
        break;
      case ChaosCollective::kAllGather: {
        std::vector<float> recv(data.size() * static_cast<size_t>(p));
        comm.all_gather(data, recv);
        slot = FloatsToBytes(recv);
        break;
      }
      case ChaosCollective::kReduceScatter: {
        comm.reduce_scatter(data);
        // Own chunk under the *alive* chunking the collective actually used.
        const auto& alive = comm.alive_ranks();
        const auto it = std::find(alive.begin(), alive.end(), r);
        if (it != alive.end()) {
          const auto rc = comm::GetChunkRange(
              n, comm.alive_world_size(),
              static_cast<int>(it - alive.begin()));
          slot = FloatsToBytes(std::span<const float>(data).subspan(
              static_cast<size_t>(rc.begin), static_cast<size_t>(rc.size())));
        }
        break;
      }
      case ChaosCollective::kBroadcast:
        comm.broadcast(data, /*root=*/0);
        slot = FloatsToBytes(data);
        break;
      case ChaosCollective::kHierarchical:
        comm::HierarchicalAllReduce(comm, data, p % 2 == 0 ? 2 : p);
        slot = FloatsToBytes(data);
        break;
    }
  });
}

ChaosRun RunTrainingWorkload(ChaosMethod m, const ChaosOptions& opt) {
  const int p = opt.world_size;
  const int steps = opt.steps;
  const bool with_ef_gap =
      m == ChaosMethod::kTopk || m == ChaosMethod::kSign;
  ChaosRun run = RunGroup(p, [&](comm::Communicator& comm, ChaosRun& out) {
    const int r = comm.rank();
    Tensor w({8, 12});
    Tensor b({10});
    {
      int64_t i = 0;
      for (Tensor* t : {&w, &b})
        for (float& v : t->data())
          v = static_cast<float>(((i++ * 3 + 5) % 11) - 5) * 0.5f;
    }
    Tensor wg({8, 12});
    Tensor bg({10});

    compress::AcpSgdConfig acp_cfg;
    acp_cfg.rank = 2;
    compress::AcpSgd acp(acp_cfg);
    compress::PowerSgdConfig psgd_cfg;
    psgd_cfg.rank = 2;
    compress::PowerSgd psgd(psgd_cfg);
    compress::TopkCompressor topk(0.25, compress::TopkSelection::kExact);
    compress::SignCompressor sign;
    compress::ErrorFeedback ef;

    // EF conservation ledgers (harness-owned EF methods only): per element,
    // sum of raw gradients fed in and sum of reconstructions applied.
    const bool harness_ef =
        m == ChaosMethod::kTopk || m == ChaosMethod::kSign;
    std::vector<double> grad_mass;
    std::vector<double> recon_mass;
    if (harness_ef) {
      grad_mass.assign(static_cast<size_t>(w.numel() + b.numel()), 0.0);
      recon_mass.assign(grad_mass.size(), 0.0);
    }

    const auto mean = [&comm](std::span<float> v) {
      comm.all_reduce(v);
      const float inv = 1.0f / static_cast<float>(comm.alive_world_size());
      for (float& x : v) x *= inv;
    };

    // One sparse/sign aggregation: EF add-in, encode, all-gather blobs,
    // combine the ALIVE blobs, EF update from the own-blob reconstruction.
    const auto gather_combine = [&](int64_t id, Tensor& grad,
                                    int64_t mass_base) {
      if (harness_ef) {
        for (int64_t i = 0; i < grad.numel(); ++i)
          grad_mass[static_cast<size_t>(mass_base + i)] +=
              static_cast<double>(grad.data()[static_cast<size_t>(i)]);
      }
      ef.AddInto(id, grad);
      const Tensor input = grad.clone();
      const size_t nel = static_cast<size_t>(grad.numel());
      compress::Compressor& comp =
          m == ChaosMethod::kTopk
              ? static_cast<compress::Compressor&>(topk)
              : static_cast<compress::Compressor&>(sign);
      std::vector<std::byte> blob(comp.EncodedBytes(nel));
      comp.EncodeInto(grad.data(), blob);
      std::vector<std::byte> gathered(blob.size() *
                                      static_cast<size_t>(p));
      comm.all_gather_bytes(blob, gathered);
      // Own reconstruction BEFORE combining: EF tracks what this worker's
      // compressor kept, not what the group agreed on.
      Tensor recon(Shape{grad.numel()});
      comp.Decode(blob, recon.data());
      std::vector<float> merged(nel, 0.0f);
      if (m == ChaosMethod::kTopk) {
        for (int src : comm.alive_ranks()) {
          const auto sb = std::span<const std::byte>(gathered).subspan(
              static_cast<size_t>(src) * blob.size(), blob.size());
          compress::TopkCompressor::AccumulateInto(
              sb, merged, comm.alive_world_size());
        }
      } else {
        std::vector<std::vector<std::byte>> blobs;
        blobs.reserve(static_cast<size_t>(comm.alive_world_size()));
        for (int src : comm.alive_ranks()) {
          const auto sb = std::span<const std::byte>(gathered).subspan(
              static_cast<size_t>(src) * blob.size(), blob.size());
          blobs.emplace_back(sb.begin(), sb.end());
        }
        compress::SignCompressor::MajorityVote(blobs, merged);
      }
      ef.Update(id, input, recon);
      if (harness_ef) {
        for (size_t i = 0; i < nel; ++i)
          recon_mass[static_cast<size_t>(mass_base) + i] +=
              static_cast<double>(recon.data()[i]);
      }
      std::copy(merged.begin(), merged.end(), grad.data().begin());
    };

    for (int s = 0; s < steps; ++s) {
      int64_t i = 0;
      for (Tensor* t : {&wg, &bg})
        for (float& gv : t->data()) gv = GradValue(r, i++, s);

      switch (m) {
        case ChaosMethod::kAcpSgd: {
          const std::span<float> factor = acp.LocalStep(0, wg);
          mean(factor);
          acp.Finish(0, wg);
          mean(bg.data());
          break;
        }
        case ChaosMethod::kPowerSgd:
          psgd.Step(0, wg, mean);
          mean(bg.data());
          break;
        case ChaosMethod::kTopk:
        case ChaosMethod::kSign:
          gather_combine(0, wg, 0);
          gather_combine(1, bg, w.numel());
          break;
      }
      for (int64_t j = 0; j < w.numel(); ++j)
        w.data()[static_cast<size_t>(j)] -=
            0.1f * wg.data()[static_cast<size_t>(j)];
      for (int64_t j = 0; j < b.numel(); ++j)
        b.data()[static_cast<size_t>(j)] -=
            0.1f * bg.data()[static_cast<size_t>(j)];
    }

    auto& slot = out.outputs[static_cast<size_t>(r)];
    AppendBytes(slot, w.data());
    AppendBytes(slot, b.data());
    if (harness_ef) {
      // Telescoping invariant: sum(grad) == sum(reconstruction) + residual.
      double gap = 0.0;
      const Tensor& rw = ef.residual(0, wg.shape());
      const Tensor& rb = ef.residual(1, bg.shape());
      for (int64_t j = 0; j < w.numel(); ++j)
        gap = std::max(
            gap, std::abs(grad_mass[static_cast<size_t>(j)] -
                          recon_mass[static_cast<size_t>(j)] -
                          static_cast<double>(
                              rw.data()[static_cast<size_t>(j)])));
      for (int64_t j = 0; j < b.numel(); ++j)
        gap = std::max(
            gap,
            std::abs(grad_mass[static_cast<size_t>(w.numel() + j)] -
                     recon_mass[static_cast<size_t>(w.numel() + j)] -
                     static_cast<double>(rb.data()[static_cast<size_t>(j)])));
      out.ef_gap[static_cast<size_t>(r)] = gap;
    }
  }, with_ef_gap);
  return run;
}

ChaosCaseResult RunCollectiveChaos(FaultKind kind, ChaosCollective c,
                                   ChaosMethod m, const ChaosOptions& opt) {
  const ChaosRun baseline = RunCollectiveWorkload(c, m, opt);
  const bool rank_invariant = c != ChaosCollective::kReduceScatter;
  return RunPlannedCase(
      kind, ToString(c), m, opt, opt.crash_at_collective, rank_invariant,
      baseline, [&] { return RunCollectiveWorkload(c, m, opt); });
}

ChaosCaseResult RunTrainingChaos(FaultKind kind, ChaosMethod m,
                                 const ChaosOptions& opt) {
  const ChaosRun baseline = RunTrainingWorkload(m, opt);
  // Die mid-training, not at the very first collective.
  const uint64_t crash_at = std::max<uint64_t>(opt.crash_at_collective, 3);
  return RunPlannedCase(kind, std::string("training[") + ToString(m) + "]", m,
                        opt, crash_at, /*rank_invariant=*/true, baseline,
                        [&] { return RunTrainingWorkload(m, opt); });
}

ChaosCaseResult RunDeadRootBroadcast(const ChaosOptions& opt) {
  ChaosCaseResult result;
  result.name = "crash x broadcast[dead-root]";
  FaultPlanConfig cfg;
  cfg.seed = opt.seed;
  cfg.crash_rank = 0;  // the broadcast root below
  cfg.crash_at_collective = 1;
  FaultPlan plan(cfg);
  ChaosRun run;
  {
    ScopedFaultInjector install(&plan);
    run = RunCollectiveWorkload(ChaosCollective::kBroadcast,
                                ChaosMethod::kSign, opt);
  }
  result.injected = plan.injected();
  result.seed_used = cfg.seed;
  if (run.detected) {
    result.outcome = ChaosOutcome::kDetected;
    result.detail = run.error;
  } else {
    result.outcome = ChaosOutcome::kSilentCorruption;
    result.detail = run.error.empty()
                        ? "broadcast from a dead root completed silently"
                        : "unstructured failure: " + run.error;
  }
  return result;
}

namespace {
// Hostile injector: drops every publish on every attempt, so the bounded
// retry can never succeed and MUST give up with a structured report.
class AlwaysDropInjector final : public FaultInjector {
 public:
  FaultKind OnPublish(int, uint64_t, int) override {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kDrop;
  }
  FaultKind OnRead(int, uint64_t, int) override { return FaultKind::kNone; }
  EntryDecision OnCollectiveEntry(int, uint64_t) override { return {}; }
  [[nodiscard]] std::string Describe() const override {
    return "always-drop (hostile, fires on every attempt)";
  }
  [[nodiscard]] int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> injected_{0};
};
}  // namespace

ChaosCaseResult RunRetryExhaustion(const ChaosOptions& opt) {
  ChaosCaseResult result;
  result.name = "always-drop x all_reduce[ring]";
  AlwaysDropInjector hostile;
  ChaosRun run;
  {
    ScopedFaultInjector install(&hostile);
    run = RunCollectiveWorkload(ChaosCollective::kAllReduceRing,
                                ChaosMethod::kSign, opt);
  }
  result.injected = hostile.injected();
  result.seed_used = 0;
  if (run.detected) {
    result.outcome = ChaosOutcome::kDetected;
    result.detail = run.error;
  } else {
    result.outcome = ChaosOutcome::kSilentCorruption;
    result.detail = run.error.empty()
                        ? "retry budget exhaustion was not reported"
                        : "unstructured failure: " + run.error;
  }
  return result;
}

}  // namespace acps::fault
