#include "fault/plan.h"

#include <sstream>

namespace acps::fault {

namespace {
// Distinct site tags keep publish / read / entry decision streams
// independent even when (seq, rank) collide.
constexpr uint64_t kSitePublish = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kSiteRead = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kSiteEntry = 0x94d049bb133111ebULL;
}  // namespace

uint64_t Mix64(uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool FaultPlan::Fires(uint64_t seq, int rank, uint64_t site) const {
  if (config_.rate <= 0.0) return false;
  uint64_t h = Mix64(config_.seed ^ Mix64(seq ^ Mix64(
                         site ^ static_cast<uint64_t>(rank))));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.rate;
}

FaultKind FaultPlan::OnPublish(int rank, uint64_t seq, int attempt) {
  if (attempt != 0) return FaultKind::kNone;
  switch (config_.kind) {
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
    case FaultKind::kCorrupt:
      if (Fires(seq, rank, kSitePublish)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return config_.kind;
      }
      return FaultKind::kNone;
    default:
      return FaultKind::kNone;
  }
}

FaultKind FaultPlan::OnRead(int rank, uint64_t seq, int attempt) {
  if (attempt != 0 || config_.kind != FaultKind::kStaleRead)
    return FaultKind::kNone;
  if (Fires(seq, rank, kSiteRead)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kStaleRead;
  }
  return FaultKind::kNone;
}

EntryDecision FaultPlan::OnCollectiveEntry(int rank,
                                           uint64_t collective_index) {
  if (config_.crash_rank && rank == *config_.crash_rank &&
      collective_index == config_.crash_at_collective) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return {FaultKind::kCrash, 0};
  }
  if (config_.kind == FaultKind::kStraggler &&
      Fires(collective_index, rank, kSiteEntry)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return {FaultKind::kStraggler, config_.straggler_ticks};
  }
  return {};
}

std::string FaultPlan::Describe() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << config_.seed << ", kind="
     << ToString(config_.kind) << ", rate=" << config_.rate;
  if (config_.crash_rank) {
    os << ", crash_rank=" << *config_.crash_rank << "@collective "
       << config_.crash_at_collective;
  }
  os << ", injected=" << injected() << "}";
  return os.str();
}

}  // namespace acps::fault
