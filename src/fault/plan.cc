#include "fault/plan.h"

#include <sstream>
#include <utility>

namespace acps::fault {

namespace {
// Distinct site tags keep publish / read / entry decision streams
// independent even when (seq, rank) collide.
constexpr uint64_t kSitePublish = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kSiteRead = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kSiteEntry = 0x94d049bb133111ebULL;
}  // namespace

const char* ToString(MembershipEvent::Kind kind) noexcept {
  switch (kind) {
    case MembershipEvent::Kind::kCrash: return "crash";
    case MembershipEvent::Kind::kRejoin: return "rejoin";
    case MembershipEvent::Kind::kJoin: return "join";
    case MembershipEvent::Kind::kLeave: return "leave";
  }
  return "?";
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {
  // Fold the legacy single-crash fields into the membership schedule so
  // every downstream consumer sees one event stream. The optional is
  // cleared to keep the fold idempotent if the config round-trips.
  if (config_.crash_rank) {
    config_.membership.push_back({MembershipEvent::Kind::kCrash,
                                  *config_.crash_rank,
                                  config_.crash_at_collective});
    config_.crash_rank.reset();
  }
}

uint64_t Mix64(uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool FaultPlan::Fires(uint64_t seq, int rank, uint64_t site) const {
  if (config_.rate <= 0.0) return false;
  uint64_t h = Mix64(config_.seed ^ Mix64(seq ^ Mix64(
                         site ^ static_cast<uint64_t>(rank))));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.rate;
}

FaultKind FaultPlan::OnPublish(int rank, uint64_t seq, int attempt) {
  if (attempt != 0) return FaultKind::kNone;
  switch (config_.kind) {
    case FaultKind::kDrop:
    case FaultKind::kDuplicate:
    case FaultKind::kCorrupt:
      if (Fires(seq, rank, kSitePublish)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return config_.kind;
      }
      return FaultKind::kNone;
    default:
      return FaultKind::kNone;
  }
}

FaultKind FaultPlan::OnRead(int rank, uint64_t seq, int attempt) {
  if (attempt != 0 || config_.kind != FaultKind::kStaleRead)
    return FaultKind::kNone;
  if (Fires(seq, rank, kSiteRead)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kStaleRead;
  }
  return FaultKind::kNone;
}

EntryDecision FaultPlan::OnCollectiveEntry(int rank,
                                           uint64_t collective_index) {
  // The same rank may carry several kCrash events (crash, rejoin, crash
  // again at a later entry index) — the per-rank collective index keeps
  // counting across generations, so each event fires at most once.
  for (const MembershipEvent& ev : config_.membership) {
    if (ev.kind == MembershipEvent::Kind::kCrash && ev.rank == rank &&
        ev.at == collective_index) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return {FaultKind::kCrash, 0};
    }
  }
  if (config_.kind == FaultKind::kStraggler &&
      Fires(collective_index, rank, kSiteEntry)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return {FaultKind::kStraggler, config_.straggler_ticks};
  }
  return {};
}

bool FaultPlan::LeavesAtCommit(int rank, uint64_t commit_index) {
  for (const MembershipEvent& ev : config_.membership) {
    if (ev.kind == MembershipEvent::Kind::kLeave && ev.rank == rank &&
        ev.at == commit_index) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::vector<AdmissionIntent> FaultPlan::AdmissionSchedule() {
  std::vector<AdmissionIntent> intents;
  for (const MembershipEvent& ev : config_.membership) {
    if (ev.kind == MembershipEvent::Kind::kRejoin ||
        ev.kind == MembershipEvent::Kind::kJoin) {
      intents.push_back({ev.rank, ev.at});
    }
  }
  return intents;
}

bool HasAdmissions(const FaultPlanConfig& config) {
  for (const MembershipEvent& ev : config.membership) {
    if (ev.kind == MembershipEvent::Kind::kRejoin ||
        ev.kind == MembershipEvent::Kind::kJoin) {
      return true;
    }
  }
  return false;
}

std::string FaultPlan::Describe() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << config_.seed << ", kind="
     << ToString(config_.kind) << ", rate=" << config_.rate;
  if (!config_.membership.empty()) {
    os << ", membership=[";
    for (size_t i = 0; i < config_.membership.size(); ++i) {
      const MembershipEvent& ev = config_.membership[i];
      if (i > 0) os << " ";
      os << ToString(ev.kind) << ":r" << ev.rank << "@" << ev.at;
    }
    os << "]";
  }
  os << ", injected=" << injected() << "}";
  return os.str();
}

}  // namespace acps::fault
