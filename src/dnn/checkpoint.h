// Binary checkpointing for networks: save/restore all parameter values so
// long training runs (and the convergence benches) can resume, and so users
// can export trained weights. Format: a small header (magic, version,
// tensor count) followed by per-tensor records (name, shape, data),
// validated exhaustively on load.
#pragma once

#include <string>

#include "dnn/network.h"

namespace acps::dnn {

// Serializes all parameter values of `net` to `path`.
// Returns false on I/O failure (contents unspecified on failure).
[[nodiscard]] bool SaveCheckpoint(Network& net, const std::string& path);

// Restores parameter values saved by SaveCheckpoint into `net`. The
// network must have identical structure (names, shapes, order); any
// mismatch or corruption throws acps::Error. Returns false if the file
// cannot be opened.
[[nodiscard]] bool LoadCheckpoint(Network& net, const std::string& path);

}  // namespace acps::dnn
