#include "dnn/layers.h"

#include <cmath>

#include "tensor/matrix_ops.h"

namespace acps::dnn {

Linear::Linear(std::string name, int64_t in, int64_t out)
    : name_(std::move(name)), in_(in), out_(out) {
  ACPS_CHECK_MSG(in >= 1 && out >= 1, "bad Linear dims");
  weight_.name = name_ + ".weight";
  weight_.value = Tensor({out, in});
  weight_.grad = Tensor({out, in});
  weight_.matrix_rows = out;
  weight_.matrix_cols = in;
  bias_.name = name_ + ".bias";
  bias_.value = Tensor({out});
  bias_.grad = Tensor({out});
}

void Linear::Init(Rng& rng) {
  // Kaiming-uniform for ReLU nets: U(-b, b), b = sqrt(6 / fan_in).
  const float bound = std::sqrt(6.0f / static_cast<float>(in_));
  rng.fill_uniform(weight_.value, -bound, bound);
  bias_.value.zero();
}

Tensor Linear::Forward(const Tensor& x) {
  ACPS_CHECK_MSG(x.ndim() == 2 && x.cols() == in_,
                 name_ << ": input " << ShapeToString(x.shape())
                       << " != in_features " << in_);
  input_ = x.clone();
  Tensor y = MatMulTB(x, weight_.value);  // [B,in]·[out,in]ᵀ = [B,out]
  for (int64_t b = 0; b < y.rows(); ++b)
    for (int64_t j = 0; j < out_; ++j) y.at(b, j) += bias_.value.at(j);
  return y;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  ACPS_CHECK_MSG(grad_out.ndim() == 2 && grad_out.cols() == out_ &&
                     grad_out.rows() == input_.rows(),
                 name_ << ": bad grad_out " << ShapeToString(grad_out.shape()));
  // dW += gyᵀ·x ; db += Σ_b gy ; dx = gy·W.
  Tensor dw = MatMulTA(grad_out, input_);  // [out,B]·[B,in]
  weight_.grad.add_(dw);
  for (int64_t b = 0; b < grad_out.rows(); ++b)
    for (int64_t j = 0; j < out_; ++j)
      bias_.grad.at(j) += grad_out.at(b, j);
  return MatMul(grad_out, weight_.value);  // [B,out]·[out,in]
}

Tensor ReLU::Forward(const Tensor& x) {
  mask_ = Tensor(x.shape());
  Tensor y = x.clone();
  auto m = mask_.data();
  auto yd = y.data();
  for (size_t i = 0; i < yd.size(); ++i) {
    if (yd[i] > 0.0f) {
      m[i] = 1.0f;
    } else {
      yd[i] = 0.0f;
      m[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  ACPS_CHECK_MSG(grad_out.shape() == mask_.shape(),
                 name_ << ": grad shape mismatch");
  Tensor gx = grad_out.clone();
  auto g = gx.data();
  auto m = mask_.data();
  for (size_t i = 0; i < g.size(); ++i) g[i] *= m[i];
  return gx;
}

Residual::Residual(std::string name,
                   std::vector<std::unique_ptr<Layer>> inner)
    : name_(std::move(name)), inner_(std::move(inner)) {
  ACPS_CHECK_MSG(!inner_.empty(), "Residual needs inner layers");
}

std::vector<Param*> Residual::params() {
  std::vector<Param*> all;
  for (auto& l : inner_)
    for (Param* p : l->params()) all.push_back(p);
  return all;
}

void Residual::Init(Rng& rng) {
  for (auto& l : inner_) l->Init(rng);
}

Tensor Residual::Forward(const Tensor& x) {
  Tensor h = x.clone();
  for (auto& l : inner_) h = l->Forward(h);
  ACPS_CHECK_MSG(h.shape() == x.shape(),
                 name_ << ": inner stack must preserve shape");
  h.add_(x);
  // Final ReLU with cached mask.
  mask_ = Tensor(h.shape());
  auto m = mask_.data();
  auto hd = h.data();
  for (size_t i = 0; i < hd.size(); ++i) {
    if (hd[i] > 0.0f) {
      m[i] = 1.0f;
    } else {
      hd[i] = 0.0f;
      m[i] = 0.0f;
    }
  }
  return h;
}

Tensor Residual::Backward(const Tensor& grad_out) {
  Tensor g = grad_out.clone();
  auto gd = g.data();
  auto m = mask_.data();
  for (size_t i = 0; i < gd.size(); ++i) gd[i] *= m[i];
  // Branch gradient through the inner stack; skip path adds g directly.
  Tensor gb = g.clone();
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it)
    gb = (*it)->Backward(gb);
  gb.add_(g);
  return gb;
}

}  // namespace acps::dnn
