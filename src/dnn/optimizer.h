// Momentum SGD with the paper's learning-rate schedule (§V-A): gradual
// warmup over the first epochs, then step decays by 10x.
#pragma once

#include <vector>

#include "dnn/layer.h"

namespace acps::dnn {

struct LrSchedule {
  float base_lr = 0.1f;
  int warmup_epochs = 5;
  std::vector<int> decay_epochs = {150, 220};  // paper's milestones
  float decay_factor = 0.1f;

  // Piecewise schedule: linear warmup from base_lr/warmup to base_lr, then
  // step decays. `epoch` may be fractional.
  [[nodiscard]] float LrAt(double epoch) const;
};

class SgdOptimizer {
 public:
  SgdOptimizer(std::vector<Param*> params, LrSchedule schedule,
               float momentum = 0.9f, float weight_decay = 0.0f);

  // Applies one update using the gradients currently in the params.
  void Step(double epoch);

  [[nodiscard]] float last_lr() const noexcept { return last_lr_; }

  // Momentum buffers, one per param in construction order. Mutable access
  // exists for elastic-membership state resync (core/resync.h): a rejoining
  // rank overwrites its velocities with a donor's broadcast replica so the
  // next Step is bitwise identical across the group.
  [[nodiscard]] std::vector<Tensor>& velocities() noexcept {
    return velocity_;
  }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  LrSchedule schedule_;
  float momentum_;
  float weight_decay_;
  float last_lr_ = 0.0f;
};

}  // namespace acps::dnn
