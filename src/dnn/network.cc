#include "dnn/network.h"

namespace acps::dnn {

void Network::Init(uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < layers_.size(); ++i) {
    Rng layer_rng = rng.split(i + 1);
    layers_[i]->Init(layer_rng);
  }
}

Tensor Network::Forward(const Tensor& x) {
  Tensor h = x.clone();
  for (auto& l : layers_) h = l->Forward(h);
  return h;
}

Tensor Network::Backward(const Tensor& grad_out, const GradReadyHook& hook) {
  // Global param index of each layer's first param (forward order).
  std::vector<size_t> offsets;
  if (hook) {
    offsets.reserve(layers_.size());
    size_t off = 0;
    for (auto& l : layers_) {
      offsets.push_back(off);
      off += l->params().size();
    }
  }
  Tensor g = grad_out.clone();
  for (size_t r = 0; r < layers_.size(); ++r) {
    const size_t i = layers_.size() - 1 - r;
    g = layers_[i]->Backward(g);
    if (hook) {
      const size_t count = layers_[i]->params().size();
      for (size_t k = 0; k < count; ++k) hook(offsets[i] + k);
    }
  }
  return g;
}

std::vector<Param*> Network::params() {
  std::vector<Param*> all;
  for (auto& l : layers_)
    for (Param* p : l->params()) all.push_back(p);
  return all;
}

void Network::ZeroGrads() {
  for (Param* p : params()) p->grad.zero();
}

int64_t Network::total_params() {
  int64_t total = 0;
  for (Param* p : params()) total += p->value.numel();
  return total;
}

}  // namespace acps::dnn
