// Sequential network container.
#pragma once

#include <functional>
#include <memory>

#include "dnn/layer.h"

namespace acps::dnn {

// Invoked during Backward as each parameter's gradient becomes final —
// the WFBP hook point (params are identified by their index in params()).
using GradReadyHook = std::function<void(size_t param_index)>;

class Network {
 public:
  Network() = default;

  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  // Deterministic initialization; identical seeds yield identical replicas
  // (required so data-parallel workers start from the same weights).
  void Init(uint64_t seed);

  [[nodiscard]] Tensor Forward(const Tensor& x);
  // Returns gradient w.r.t. the network input (usually discarded). If
  // `hook` is set it fires for every parameter of a layer right after that
  // layer's backward completes (layers visited in reverse order).
  Tensor Backward(const Tensor& grad_out, const GradReadyHook& hook = {});

  // Flattened parameter list in forward order; ids are stable indices.
  [[nodiscard]] std::vector<Param*> params();

  void ZeroGrads();

  [[nodiscard]] int64_t total_params();

  [[nodiscard]] size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace acps::dnn
