#include "dnn/dataset.h"

#include <array>
#include <cmath>

namespace acps::dnn {
namespace {

// 3x3 box blur over each channel to make prototypes smooth (image-like
// local correlation).
void Smooth(Tensor& img, int64_t c, int64_t h, int64_t w) {
  Tensor out(img.shape());
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        double acc = 0.0;
        int cnt = 0;
        for (int64_t dy = -1; dy <= 1; ++dy) {
          for (int64_t dx = -1; dx <= 1; ++dx) {
            const int64_t sy = y + dy, sx = x + dx;
            if (sy < 0 || sy >= h || sx < 0 || sx >= w) continue;
            acc += img.at(ch * h * w + sy * w + sx);
            ++cnt;
          }
        }
        out.at(ch * h * w + y * w + x) =
            static_cast<float>(acc / std::max(1, cnt));
      }
    }
  }
  img = std::move(out);
}

}  // namespace

void Dataset::Slice(int64_t begin, int64_t count, Tensor& batch_x,
                    std::vector<int>& batch_y) const {
  ACPS_CHECK_MSG(begin >= 0 && count >= 0 && begin + count <= size(),
                 "bad dataset slice [" << begin << ", " << begin + count
                                       << ") of " << size());
  batch_x = Tensor({count, features});
  batch_y.assign(static_cast<size_t>(count), 0);
  const auto src = xs.data();
  auto dst = batch_x.data();
  std::copy(src.begin() + static_cast<ptrdiff_t>(begin * features),
            src.begin() + static_cast<ptrdiff_t>((begin + count) * features),
            dst.begin());
  for (int64_t i = 0; i < count; ++i)
    batch_y[static_cast<size_t>(i)] = labels[static_cast<size_t>(begin + i)];
}

Dataset MakeSynthetic(const SyntheticSpec& spec, int64_t n,
                      uint64_t split_salt) {
  const int64_t features = spec.channels * spec.height * spec.width;
  ACPS_CHECK_MSG(n >= spec.num_classes, "need at least one sample per class");

  // Class prototypes and the shared mixing matrix depend only on the seed,
  // never the split, so train and test come from the same distribution.
  Rng proto_rng = Rng(spec.seed).split(1);
  std::vector<Tensor> prototypes;
  prototypes.reserve(static_cast<size_t>(spec.num_classes));
  for (int c = 0; c < spec.num_classes; ++c) {
    Tensor p({features});
    proto_rng.fill_normal(p);
    Smooth(p, spec.channels, spec.height, spec.width);
    p.scale_(2.0f / std::max(1e-6f, p.norm2() /
                                        std::sqrt(static_cast<float>(features))));
    prototypes.push_back(std::move(p));
  }
  // Sparse random mixing: each output feature blends 4 input features.
  Rng mix_rng = Rng(spec.seed).split(2);
  std::vector<std::array<int64_t, 4>> mix_idx(static_cast<size_t>(features));
  std::vector<std::array<float, 4>> mix_w(static_cast<size_t>(features));
  for (int64_t f = 0; f < features; ++f) {
    for (int k = 0; k < 4; ++k) {
      mix_idx[static_cast<size_t>(f)][static_cast<size_t>(k)] =
          static_cast<int64_t>(mix_rng.next_below(static_cast<uint64_t>(features)));
      mix_w[static_cast<size_t>(f)][static_cast<size_t>(k)] =
          mix_rng.normal(0.0f, 0.5f);
    }
  }

  Dataset ds;
  ds.features = features;
  ds.num_classes = spec.num_classes;
  ds.xs = Tensor({n, features});
  ds.labels.assign(static_cast<size_t>(n), 0);

  Rng sample_rng = Rng(spec.seed).split(0x5A17 + split_salt);
  Tensor raw({features});
  for (int64_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % spec.num_classes);
    ds.labels[static_cast<size_t>(i)] = label;
    const Tensor& proto = prototypes[static_cast<size_t>(label)];
    for (int64_t f = 0; f < features; ++f) {
      const float jitter = 1.0f + 0.3f * sample_rng.normal();
      raw.at(f) = proto.at(f) * jitter + spec.noise * sample_rng.normal();
    }
    // Nonlinear mixing: x_f = tanh(raw_f + Σ_k w_k · raw_{idx_k}).
    for (int64_t f = 0; f < features; ++f) {
      float v = raw.at(f);
      for (int k = 0; k < 4; ++k)
        v += mix_w[static_cast<size_t>(f)][static_cast<size_t>(k)] *
             raw.at(mix_idx[static_cast<size_t>(f)][static_cast<size_t>(k)]);
      ds.xs.at(i * features + f) = std::tanh(v);
    }
  }
  return ds;
}

Shard ShardFor(const Dataset& ds, int rank, int world) {
  ACPS_CHECK_MSG(world >= 1 && rank >= 0 && rank < world, "bad shard rank");
  const int64_t n = ds.size();
  const int64_t base = n / world;
  const int64_t rem = n % world;
  const int64_t extra = std::min<int64_t>(rank, rem);
  Shard s;
  s.begin = base * rank + extra;
  s.count = base + (rank < rem ? 1 : 0);
  return s;
}

}  // namespace acps::dnn
