#include "dnn/conv.h"

#include <cmath>
#include <limits>

#include "tensor/matrix_ops.h"

namespace acps::dnn {

Conv2d::Conv2d(std::string name, int64_t cin, int64_t cout, int64_t h,
               int64_t w)
    : name_(std::move(name)), cin_(cin), cout_(cout), h_(h), w_(w) {
  ACPS_CHECK_MSG(cin >= 1 && cout >= 1 && h >= 1 && w >= 1, "bad Conv2d dims");
  weight_.name = name_ + ".weight";
  weight_.value = Tensor({cout, cin * 9});
  weight_.grad = Tensor({cout, cin * 9});
  weight_.matrix_rows = cout;
  weight_.matrix_cols = cin * 9;
  bias_.name = name_ + ".bias";
  bias_.value = Tensor({cout});
  bias_.grad = Tensor({cout});
}

void Conv2d::Init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(cin_ * 9));
  rng.fill_uniform(weight_.value, -bound, bound);
  bias_.value.zero();
}

void Conv2d::Im2Col(std::span<const float> img, Tensor& col) const {
  // col[(c*9 + ky*3 + kx), y*w + x] = img[c, y+ky-1, x+kx-1] (0 outside).
  auto cd = col.data();
  const int64_t hw = h_ * w_;
  for (int64_t c = 0; c < cin_; ++c) {
    for (int64_t ky = 0; ky < 3; ++ky) {
      for (int64_t kx = 0; kx < 3; ++kx) {
        float* row = cd.data() + (c * 9 + ky * 3 + kx) * hw;
        for (int64_t y = 0; y < h_; ++y) {
          const int64_t sy = y + ky - 1;
          for (int64_t x = 0; x < w_; ++x) {
            const int64_t sx = x + kx - 1;
            row[y * w_ + x] =
                (sy >= 0 && sy < h_ && sx >= 0 && sx < w_)
                    ? img[static_cast<size_t>(c * hw + sy * w_ + sx)]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::Col2Im(const Tensor& col, std::span<float> img) const {
  auto cd = col.data();
  const int64_t hw = h_ * w_;
  for (int64_t c = 0; c < cin_; ++c) {
    for (int64_t ky = 0; ky < 3; ++ky) {
      for (int64_t kx = 0; kx < 3; ++kx) {
        const float* row = cd.data() + (c * 9 + ky * 3 + kx) * hw;
        for (int64_t y = 0; y < h_; ++y) {
          const int64_t sy = y + ky - 1;
          if (sy < 0 || sy >= h_) continue;
          for (int64_t x = 0; x < w_; ++x) {
            const int64_t sx = x + kx - 1;
            if (sx < 0 || sx >= w_) continue;
            img[static_cast<size_t>(c * hw + sy * w_ + sx)] +=
                row[y * w_ + x];
          }
        }
      }
    }
  }
}

Tensor Conv2d::Forward(const Tensor& x) {
  const int64_t in_feat = cin_ * h_ * w_;
  ACPS_CHECK_MSG(x.ndim() == 2 && x.cols() == in_feat,
                 name_ << ": input " << ShapeToString(x.shape())
                       << " != " << in_feat);
  input_ = x.clone();
  const int64_t batch = x.rows();
  const int64_t hw = h_ * w_;
  Tensor y({batch, cout_ * hw});
  Tensor col({cin_ * 9, hw});
  Tensor out({cout_, hw});
  for (int64_t b = 0; b < batch; ++b) {
    Im2Col(x.data().subspan(static_cast<size_t>(b * in_feat),
                            static_cast<size_t>(in_feat)),
           col);
    Gemm(weight_.value.data(), col.data(), out.data(), cout_, cin_ * 9, hw);
    auto yd = y.data().subspan(static_cast<size_t>(b * cout_ * hw),
                               static_cast<size_t>(cout_ * hw));
    for (int64_t c = 0; c < cout_; ++c) {
      const float bv = bias_.value.at(c);
      for (int64_t i = 0; i < hw; ++i) yd[static_cast<size_t>(c * hw + i)] =
          out.at(c, i) + bv;
    }
  }
  return y;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  const int64_t in_feat = cin_ * h_ * w_;
  const int64_t hw = h_ * w_;
  const int64_t batch = input_.rows();
  ACPS_CHECK_MSG(grad_out.ndim() == 2 && grad_out.rows() == batch &&
                     grad_out.cols() == cout_ * hw,
                 name_ << ": bad grad_out");
  Tensor gx({batch, in_feat});
  Tensor col({cin_ * 9, hw});
  Tensor gcol({cin_ * 9, hw});
  for (int64_t b = 0; b < batch; ++b) {
    const auto gy = grad_out.data().subspan(
        static_cast<size_t>(b * cout_ * hw), static_cast<size_t>(cout_ * hw));
    // dW += gy[cout,hw] · colᵀ[hw, cin*9]
    Im2Col(input_.data().subspan(static_cast<size_t>(b * in_feat),
                                 static_cast<size_t>(in_feat)),
           col);
    GemmTransB(gy, col.data(), weight_.grad.data(), cout_, hw, cin_ * 9,
               1.0f, 1.0f);
    // db += row sums of gy.
    for (int64_t c = 0; c < cout_; ++c) {
      double acc = 0.0;
      for (int64_t i = 0; i < hw; ++i)
        acc += gy[static_cast<size_t>(c * hw + i)];
      bias_.grad.at(c) += static_cast<float>(acc);
    }
    // gcol = Wᵀ[cin*9, cout] · gy[cout, hw]; scatter back to image layout.
    GemmTransA(weight_.value.data(), gy, gcol.data(), cin_ * 9, cout_, hw);
    Col2Im(gcol, gx.data().subspan(static_cast<size_t>(b * in_feat),
                                   static_cast<size_t>(in_feat)));
  }
  return gx;
}

MaxPool2d::MaxPool2d(std::string name, int64_t c, int64_t h, int64_t w)
    : name_(std::move(name)), c_(c), h_(h), w_(w) {
  ACPS_CHECK_MSG(h % 2 == 0 && w % 2 == 0,
                 name_ << ": pooling needs even spatial dims");
}

Tensor MaxPool2d::Forward(const Tensor& x) {
  const int64_t in_feat = c_ * h_ * w_;
  ACPS_CHECK_MSG(x.ndim() == 2 && x.cols() == in_feat,
                 name_ << ": input mismatch");
  batch_ = x.rows();
  const int64_t oh = h_ / 2, ow = w_ / 2;
  Tensor y({batch_, c_ * oh * ow});
  argmax_.assign(static_cast<size_t>(batch_ * c_ * oh * ow), 0);
  const auto xd = x.data();
  auto yd = y.data();
  for (int64_t b = 0; b < batch_; ++b) {
    for (int64_t c = 0; c < c_; ++c) {
      for (int64_t y2 = 0; y2 < oh; ++y2) {
        for (int64_t x2 = 0; x2 < ow; ++x2) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t dy = 0; dy < 2; ++dy) {
            for (int64_t dx = 0; dx < 2; ++dx) {
              const int64_t idx =
                  b * c_ * h_ * w_ + c * h_ * w_ + (2 * y2 + dy) * w_ +
                  (2 * x2 + dx);
              const float v = xd[static_cast<size_t>(idx)];
              if (v > best) {
                best = v;
                best_idx = idx;
              }
            }
          }
          const int64_t oidx =
              b * c_ * oh * ow + c * oh * ow + y2 * ow + x2;
          yd[static_cast<size_t>(oidx)] = best;
          argmax_[static_cast<size_t>(oidx)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  const int64_t oh = h_ / 2, ow = w_ / 2;
  ACPS_CHECK_MSG(grad_out.ndim() == 2 && grad_out.rows() == batch_ &&
                     grad_out.cols() == c_ * oh * ow,
                 name_ << ": bad grad_out");
  Tensor gx({batch_, c_ * h_ * w_});
  auto gxd = gx.data();
  const auto gyd = grad_out.data();
  for (size_t i = 0; i < argmax_.size(); ++i)
    gxd[static_cast<size_t>(argmax_[i])] += gyd[i];
  return gx;
}

}  // namespace acps::dnn
