// Naive 2-D convolution and max-pool layers (im2col formulation).
//
// Geometry is fixed per layer: input [batch, Cin*H*W] row-major with
// channel-major pixel layout (c, y, x). Convolutions are 3x3, stride 1,
// padding 1 (the CIFAR-style VGG/ResNet block shape); pooling is 2x2/2.
#pragma once

#include "dnn/layer.h"

namespace acps::dnn {

class Conv2d final : public Layer {
 public:
  Conv2d(std::string name, int64_t cin, int64_t cout, int64_t h, int64_t w);

  [[nodiscard]] std::string name() const override { return name_; }
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void Init(Rng& rng) override;

  [[nodiscard]] int64_t out_features() const { return cout_ * h_ * w_; }

 private:
  // Builds the [Cin*9, H*W] im2col matrix of one sample.
  void Im2Col(std::span<const float> img, Tensor& col) const;
  // Scatters a [Cin*9, H*W] gradient matrix back to image layout.
  void Col2Im(const Tensor& col, std::span<float> img) const;

  std::string name_;
  int64_t cin_, cout_, h_, w_;
  Param weight_;  // [cout, cin*9]
  Param bias_;    // [cout]
  Tensor input_;
};

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, int64_t c, int64_t h, int64_t w);

  [[nodiscard]] std::string name() const override { return name_; }
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_out) override;

  [[nodiscard]] int64_t out_features() const { return c_ * (h_ / 2) * (w_ / 2); }

 private:
  std::string name_;
  int64_t c_, h_, w_;
  std::vector<int64_t> argmax_;  // flat input index per output element
  int64_t batch_ = 0;
};

}  // namespace acps::dnn
