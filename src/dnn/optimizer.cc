#include "dnn/optimizer.h"

namespace acps::dnn {

float LrSchedule::LrAt(double epoch) const {
  float lr = base_lr;
  if (warmup_epochs > 0 && epoch < warmup_epochs) {
    // Linear warmup starting at base_lr / warmup_epochs (Goyal et al.).
    const double frac = (epoch + 1.0) / static_cast<double>(warmup_epochs);
    lr = base_lr * static_cast<float>(std::min(1.0, frac));
  }
  for (int milestone : decay_epochs) {
    if (epoch >= milestone) lr *= decay_factor;
  }
  return lr;
}

SgdOptimizer::SgdOptimizer(std::vector<Param*> params, LrSchedule schedule,
                           float momentum, float weight_decay)
    : params_(std::move(params)),
      schedule_(schedule),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.push_back(Tensor::Zeros(p->value.shape()));
}

void SgdOptimizer::Step(double epoch) {
  const float lr = schedule_.LrAt(epoch);
  last_lr_ = lr;
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    Tensor& v = velocity_[i];
    auto vd = v.data();
    auto gd = p->grad.data();
    auto wd = p->value.data();
    for (size_t j = 0; j < vd.size(); ++j) {
      float g = gd[j];
      if (weight_decay_ != 0.0f) g += weight_decay_ * wd[j];
      vd[j] = momentum_ * vd[j] + g;
      wd[j] -= lr * vd[j];
    }
  }
}

}  // namespace acps::dnn
