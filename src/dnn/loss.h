// Softmax cross-entropy loss and accuracy metric.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace acps::dnn {

struct LossResult {
  float loss = 0.0f;        // mean over the batch
  Tensor grad_logits;       // [batch, classes], already divided by batch
};

// Numerically stable softmax cross entropy. labels[i] in [0, classes).
[[nodiscard]] LossResult SoftmaxCrossEntropy(const Tensor& logits,
                                             const std::vector<int>& labels);

// Fraction of rows whose arg-max equals the label.
[[nodiscard]] float Accuracy(const Tensor& logits,
                             const std::vector<int>& labels);

}  // namespace acps::dnn
