// Synthetic 10-class image dataset — the CIFAR-10 stand-in (DESIGN.md §2).
//
// Each class has a random smooth prototype image; a sample is its class
// prototype under multiplicative jitter plus additive Gaussian noise, passed
// through a fixed random mixing layer (tanh(M·x)) so the task is not
// linearly separable. Class difficulty is controlled by the noise scale.
// Everything is deterministic in the seed, so all data-parallel workers can
// regenerate the dataset locally and shard it by rank.
#pragma once

#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace acps::dnn {

struct Dataset {
  Tensor xs;               // [n, features]
  std::vector<int> labels;  // n entries in [0, classes)
  int64_t features = 0;
  int num_classes = 0;

  [[nodiscard]] int64_t size() const { return xs.ndim() == 2 ? xs.rows() : 0; }

  // Copies sample rows [begin, begin+count) into a batch tensor + labels.
  void Slice(int64_t begin, int64_t count, Tensor& batch_x,
             std::vector<int>& batch_y) const;
};

struct SyntheticSpec {
  int num_classes = 10;
  int64_t channels = 3;
  int64_t height = 8;
  int64_t width = 8;
  float noise = 0.8f;
  uint64_t seed = 0xDA7Aull;
};

// Generates train and test splits from the same class prototypes.
[[nodiscard]] Dataset MakeSynthetic(const SyntheticSpec& spec, int64_t n,
                                    uint64_t split_salt);

// The contiguous shard of `ds` owned by `rank` out of `world` workers.
struct Shard {
  int64_t begin = 0;
  int64_t count = 0;
};
[[nodiscard]] Shard ShardFor(const Dataset& ds, int rank, int world);

}  // namespace acps::dnn
