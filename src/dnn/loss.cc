#include "dnn/loss.h"

#include <algorithm>
#include <cmath>

namespace acps::dnn {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  ACPS_CHECK_MSG(logits.ndim() == 2, "logits must be [batch, classes]");
  const int64_t batch = logits.rows(), classes = logits.cols();
  ACPS_CHECK_MSG(static_cast<int64_t>(labels.size()) == batch,
                 "labels/batch mismatch");

  LossResult result;
  result.grad_logits = Tensor({batch, classes});
  double loss_acc = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);

  for (int64_t b = 0; b < batch; ++b) {
    const int label = labels[static_cast<size_t>(b)];
    ACPS_CHECK_MSG(label >= 0 && label < classes, "label out of range");
    float maxv = logits.at(b, 0);
    for (int64_t c = 1; c < classes; ++c)
      maxv = std::max(maxv, logits.at(b, c));
    double denom = 0.0;
    for (int64_t c = 0; c < classes; ++c)
      denom += std::exp(static_cast<double>(logits.at(b, c) - maxv));
    for (int64_t c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(logits.at(b, c) - maxv)) / denom;
      result.grad_logits.at(b, c) =
          (static_cast<float>(p) - (c == label ? 1.0f : 0.0f)) * inv_batch;
    }
    const double p_label =
        std::exp(static_cast<double>(logits.at(b, label) - maxv)) / denom;
    loss_acc += -std::log(std::max(p_label, 1e-12));
  }
  result.loss = static_cast<float>(loss_acc / static_cast<double>(batch));
  return result;
}

float Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  ACPS_CHECK(logits.ndim() == 2 &&
             static_cast<int64_t>(labels.size()) == logits.rows());
  int correct = 0;
  for (int64_t b = 0; b < logits.rows(); ++b) {
    int64_t best = 0;
    for (int64_t c = 1; c < logits.cols(); ++c)
      if (logits.at(b, c) > logits.at(b, best)) best = c;
    if (static_cast<int>(best) == labels[static_cast<size_t>(b)]) ++correct;
  }
  return logits.rows() == 0
             ? 0.0f
             : static_cast<float>(correct) / static_cast<float>(logits.rows());
}

}  // namespace acps::dnn
