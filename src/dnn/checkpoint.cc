#include "dnn/checkpoint.h"

#include <cstring>
#include <fstream>

namespace acps::dnn {
namespace {

constexpr uint32_t kMagic = 0x41435053;  // "ACPS"
constexpr uint32_t kVersion = 1;

template <typename T>
void Write(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T Read(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  ACPS_CHECK_MSG(static_cast<bool>(in), "checkpoint truncated");
  return v;
}

void WriteString(std::ofstream& out, const std::string& s) {
  Write(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::ifstream& in) {
  const auto len = Read<uint32_t>(in);
  ACPS_CHECK_MSG(len < (1u << 20), "implausible string length in checkpoint");
  std::string s(len, '\0');
  in.read(s.data(), len);
  ACPS_CHECK_MSG(static_cast<bool>(in), "checkpoint truncated");
  return s;
}

}  // namespace

bool SaveCheckpoint(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const auto params = net.params();
  Write(out, kMagic);
  Write(out, kVersion);
  Write(out, static_cast<uint64_t>(params.size()));
  for (const Param* p : params) {
    WriteString(out, p->name);
    Write(out, static_cast<uint32_t>(p->value.shape().size()));
    for (int64_t d : p->value.shape()) Write(out, d);
    const auto data = p->value.data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool LoadCheckpoint(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  ACPS_CHECK_MSG(Read<uint32_t>(in) == kMagic, "not an acps checkpoint");
  ACPS_CHECK_MSG(Read<uint32_t>(in) == kVersion,
                 "unsupported checkpoint version");
  const auto params = net.params();
  const auto count = Read<uint64_t>(in);
  ACPS_CHECK_MSG(count == params.size(),
                 "checkpoint has " << count << " tensors, network has "
                                   << params.size());
  for (Param* p : params) {
    const std::string name = ReadString(in);
    ACPS_CHECK_MSG(name == p->name, "checkpoint tensor '"
                                        << name << "' does not match '"
                                        << p->name << "'");
    const auto ndim = Read<uint32_t>(in);
    Shape shape(ndim);
    for (auto& d : shape) d = Read<int64_t>(in);
    ACPS_CHECK_MSG(shape == p->value.shape(),
                   "shape mismatch for " << name << ": "
                       << ShapeToString(shape) << " vs "
                       << ShapeToString(p->value.shape()));
    auto data = p->value.data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    ACPS_CHECK_MSG(static_cast<bool>(in), "checkpoint truncated in " << name);
  }
  return true;
}

}  // namespace acps::dnn
