#include "dnn/mini_models.h"

#include "dnn/conv.h"
#include "dnn/layers.h"
#include "tensor/check.h"

namespace acps::dnn {

Network VggMini(const MiniModelSpec& spec) {
  Network net;
  const int64_t h = spec.height, w = spec.width;
  net.Add(std::make_unique<Conv2d>("conv1", spec.channels, 16, h, w));
  net.Add(std::make_unique<ReLU>("relu1"));
  net.Add(std::make_unique<Conv2d>("conv2", 16, 16, h, w));
  net.Add(std::make_unique<ReLU>("relu2"));
  net.Add(std::make_unique<MaxPool2d>("pool1", 16, h, w));
  net.Add(std::make_unique<Conv2d>("conv3", 16, 32, h / 2, w / 2));
  net.Add(std::make_unique<ReLU>("relu3"));
  net.Add(std::make_unique<MaxPool2d>("pool2", 32, h / 2, w / 2));
  const int64_t flat = 32 * (h / 4) * (w / 4);
  net.Add(std::make_unique<Linear>("fc1", flat, 64));
  net.Add(std::make_unique<ReLU>("relu4"));
  net.Add(std::make_unique<Linear>("fc2", 64, spec.num_classes));
  return net;
}

Network ResMini(const MiniModelSpec& spec) {
  Network net;
  const int64_t h = spec.height, w = spec.width;
  net.Add(std::make_unique<Conv2d>("stem", spec.channels, 16, h, w));
  net.Add(std::make_unique<ReLU>("stem.relu"));

  auto block = [&](const std::string& name, int64_t c, int64_t bh,
                   int64_t bw) {
    std::vector<std::unique_ptr<Layer>> inner;
    inner.push_back(std::make_unique<Conv2d>(name + ".conv1", c, c, bh, bw));
    inner.push_back(std::make_unique<ReLU>(name + ".relu"));
    inner.push_back(std::make_unique<Conv2d>(name + ".conv2", c, c, bh, bw));
    return std::make_unique<Residual>(name, std::move(inner));
  };

  net.Add(block("block1", 16, h, w));
  net.Add(std::make_unique<MaxPool2d>("pool1", 16, h, w));
  net.Add(block("block2", 16, h / 2, w / 2));
  net.Add(std::make_unique<MaxPool2d>("pool2", 16, h / 2, w / 2));
  const int64_t flat = 16 * (h / 4) * (w / 4);
  net.Add(std::make_unique<Linear>("fc", flat, spec.num_classes));
  return net;
}

Network MiniByName(const std::string& name, const MiniModelSpec& spec) {
  if (name == "vgg-mini") return VggMini(spec);
  if (name == "res-mini") return ResMini(spec);
  ACPS_FAIL_MSG("unknown mini model '" << name << "'");
}

}  // namespace acps::dnn
