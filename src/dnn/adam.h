// Adam optimizer (Kingma & Ba) with bias correction — the optimizer behind
// the BERT results the paper benchmarks, and the base of 1-bit Adam (paper
// ref [5]). Drop-in alternative to SgdOptimizer; shares LrSchedule.
#pragma once

#include "dnn/optimizer.h"

namespace acps::dnn {

class AdamOptimizer {
 public:
  AdamOptimizer(std::vector<Param*> params, LrSchedule schedule,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
                float weight_decay = 0.0f);

  // Applies one update using the gradients currently in the params.
  void Step(double epoch);

  [[nodiscard]] float last_lr() const noexcept { return last_lr_; }
  [[nodiscard]] int64_t step_count() const noexcept { return t_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_;  // first moment
  std::vector<Tensor> v_;  // second moment
  LrSchedule schedule_;
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  float last_lr_ = 0.0f;
};

}  // namespace acps::dnn
