#include "dnn/adam.h"

#include <cmath>

namespace acps::dnn {

AdamOptimizer::AdamOptimizer(std::vector<Param*> params, LrSchedule schedule,
                             float beta1, float beta2, float eps,
                             float weight_decay)
    : params_(std::move(params)),
      schedule_(schedule),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  ACPS_CHECK_MSG(beta1 >= 0.0f && beta1 < 1.0f && beta2 >= 0.0f &&
                     beta2 < 1.0f && eps > 0.0f,
                 "invalid Adam hyperparameters");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.push_back(Tensor::Zeros(p->value.shape()));
    v_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void AdamOptimizer::Step(double epoch) {
  const float lr = schedule_.LrAt(epoch);
  last_lr_ = lr;
  ++t_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(t_));  // bias corrections
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    auto md = m_[i].data();
    auto vd = v_[i].data();
    auto gd = p->grad.data();
    auto wd = p->value.data();
    for (size_t j = 0; j < md.size(); ++j) {
      float g = gd[j];
      if (weight_decay_ != 0.0f) g += weight_decay_ * wd[j];
      md[j] = beta1_ * md[j] + (1.0f - beta1_) * g;
      vd[j] = beta2_ * vd[j] + (1.0f - beta2_) * g * g;
      const float mhat = md[j] / bc1;
      const float vhat = vd[j] / bc2;
      wd[j] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace acps::dnn
