// Miniaturized VGG-16 / ResNet-18 stand-ins for the convergence study
// (Fig 6/7). Both consume the synthetic 3×8×8 image task.
//
//  * VggMini — a plain (no skip connections) conv stack with a 2-layer MLP
//    head: the structural analogue of VGG-16.
//  * ResMini — a conv stem followed by identity-shortcut residual blocks:
//    the structural analogue of ResNet-18.
#pragma once

#include "dnn/network.h"

namespace acps::dnn {

struct MiniModelSpec {
  int64_t channels = 3;
  int64_t height = 8;
  int64_t width = 8;
  int num_classes = 10;
};

[[nodiscard]] Network VggMini(const MiniModelSpec& spec = {});
[[nodiscard]] Network ResMini(const MiniModelSpec& spec = {});

// Lookup by name ("vgg-mini" | "res-mini"); throws on unknown.
[[nodiscard]] Network MiniByName(const std::string& name,
                                 const MiniModelSpec& spec = {});

}  // namespace acps::dnn
