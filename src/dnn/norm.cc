#include "dnn/norm.h"

#include <cmath>

namespace acps::dnn {

BatchNorm1d::BatchNorm1d(std::string name, int64_t features, float momentum,
                         float eps)
    : name_(std::move(name)), features_(features), momentum_(momentum),
      eps_(eps) {
  ACPS_CHECK_MSG(features >= 1, "bad BatchNorm1d feature count");
  gamma_.name = name_ + ".weight";
  gamma_.value = Tensor::Full({features}, 1.0f);
  gamma_.grad = Tensor({features});
  beta_.name = name_ + ".bias";
  beta_.value = Tensor({features});
  beta_.grad = Tensor({features});
  running_mean_ = Tensor({features});
  running_var_ = Tensor::Full({features}, 1.0f);
}

void BatchNorm1d::Init(Rng& rng) {
  (void)rng;
  gamma_.value.fill(1.0f);
  beta_.value.zero();
  running_mean_.zero();
  running_var_.fill(1.0f);
}

Tensor BatchNorm1d::Forward(const Tensor& x) {
  ACPS_CHECK_MSG(x.ndim() == 2 && x.cols() == features_,
                 name_ << ": input mismatch");
  const int64_t batch = x.rows();
  Tensor mean({features_}), var({features_});
  if (training_) {
    ACPS_CHECK_MSG(batch >= 2, name_ << ": training BN needs batch >= 2");
    for (int64_t j = 0; j < features_; ++j) {
      double m = 0.0;
      for (int64_t b = 0; b < batch; ++b) m += x.at(b, j);
      m /= batch;
      double v = 0.0;
      for (int64_t b = 0; b < batch; ++b) {
        const double d = x.at(b, j) - m;
        v += d * d;
      }
      v /= batch;  // biased, as in PyTorch's normalization path
      mean.at(j) = static_cast<float>(m);
      var.at(j) = static_cast<float>(v);
      running_mean_.at(j) = (1.0f - momentum_) * running_mean_.at(j) +
                            momentum_ * static_cast<float>(m);
      running_var_.at(j) = (1.0f - momentum_) * running_var_.at(j) +
                           momentum_ * static_cast<float>(v);
    }
  } else {
    mean.copy_from(running_mean_);
    var.copy_from(running_var_);
  }

  inv_std_ = Tensor({features_});
  for (int64_t j = 0; j < features_; ++j)
    inv_std_.at(j) = 1.0f / std::sqrt(var.at(j) + eps_);

  xhat_ = Tensor({batch, features_});
  Tensor y({batch, features_});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t j = 0; j < features_; ++j) {
      const float xh = (x.at(b, j) - mean.at(j)) * inv_std_.at(j);
      xhat_.at(b, j) = xh;
      y.at(b, j) = gamma_.value.at(j) * xh + beta_.value.at(j);
    }
  }
  return y;
}

Tensor BatchNorm1d::Backward(const Tensor& grad_out) {
  const int64_t batch = xhat_.rows();
  ACPS_CHECK_MSG(grad_out.shape() == xhat_.shape(), name_ << ": bad grad");
  Tensor gx({batch, features_});
  for (int64_t j = 0; j < features_; ++j) {
    // dgamma, dbeta and the batch-stat terms.
    double dgamma = 0.0, dbeta = 0.0, dxhat_sum = 0.0, dxhat_xhat_sum = 0.0;
    for (int64_t b = 0; b < batch; ++b) {
      const double gy = grad_out.at(b, j);
      dgamma += gy * xhat_.at(b, j);
      dbeta += gy;
      const double dxhat = gy * gamma_.value.at(j);
      dxhat_sum += dxhat;
      dxhat_xhat_sum += dxhat * xhat_.at(b, j);
    }
    gamma_.grad.at(j) += static_cast<float>(dgamma);
    beta_.grad.at(j) += static_cast<float>(dbeta);
    if (training_) {
      for (int64_t b = 0; b < batch; ++b) {
        const double dxhat = double(grad_out.at(b, j)) * gamma_.value.at(j);
        gx.at(b, j) = static_cast<float>(
            inv_std_.at(j) / batch *
            (batch * dxhat - dxhat_sum - xhat_.at(b, j) * dxhat_xhat_sum));
      }
    } else {
      for (int64_t b = 0; b < batch; ++b) {
        gx.at(b, j) = static_cast<float>(double(grad_out.at(b, j)) *
                                         gamma_.value.at(j) * inv_std_.at(j));
      }
    }
  }
  return gx;
}

LayerNorm::LayerNorm(std::string name, int64_t features, float eps)
    : name_(std::move(name)), features_(features), eps_(eps) {
  ACPS_CHECK_MSG(features >= 2, "LayerNorm needs >= 2 features");
  gamma_.name = name_ + ".weight";
  gamma_.value = Tensor::Full({features}, 1.0f);
  gamma_.grad = Tensor({features});
  beta_.name = name_ + ".bias";
  beta_.value = Tensor({features});
  beta_.grad = Tensor({features});
}

void LayerNorm::Init(Rng& rng) {
  (void)rng;
  gamma_.value.fill(1.0f);
  beta_.value.zero();
}

Tensor LayerNorm::Forward(const Tensor& x) {
  ACPS_CHECK_MSG(x.ndim() == 2 && x.cols() == features_,
                 name_ << ": input mismatch");
  const int64_t batch = x.rows();
  xhat_ = Tensor({batch, features_});
  inv_std_ = Tensor({batch});
  Tensor y({batch, features_});
  for (int64_t b = 0; b < batch; ++b) {
    double m = 0.0;
    for (int64_t j = 0; j < features_; ++j) m += x.at(b, j);
    m /= features_;
    double v = 0.0;
    for (int64_t j = 0; j < features_; ++j) {
      const double d = x.at(b, j) - m;
      v += d * d;
    }
    v /= features_;
    const float inv = 1.0f / std::sqrt(static_cast<float>(v) + eps_);
    inv_std_.at(b) = inv;
    for (int64_t j = 0; j < features_; ++j) {
      const float xh = (x.at(b, j) - static_cast<float>(m)) * inv;
      xhat_.at(b, j) = xh;
      y.at(b, j) = gamma_.value.at(j) * xh + beta_.value.at(j);
    }
  }
  return y;
}

Tensor LayerNorm::Backward(const Tensor& grad_out) {
  const int64_t batch = xhat_.rows();
  ACPS_CHECK_MSG(grad_out.shape() == xhat_.shape(), name_ << ": bad grad");
  Tensor gx({batch, features_});
  for (int64_t j = 0; j < features_; ++j) {
    double dgamma = 0.0, dbeta = 0.0;
    for (int64_t b = 0; b < batch; ++b) {
      dgamma += double(grad_out.at(b, j)) * xhat_.at(b, j);
      dbeta += grad_out.at(b, j);
    }
    gamma_.grad.at(j) += static_cast<float>(dgamma);
    beta_.grad.at(j) += static_cast<float>(dbeta);
  }
  for (int64_t b = 0; b < batch; ++b) {
    double dxhat_sum = 0.0, dxhat_xhat_sum = 0.0;
    for (int64_t j = 0; j < features_; ++j) {
      const double dxhat = double(grad_out.at(b, j)) * gamma_.value.at(j);
      dxhat_sum += dxhat;
      dxhat_xhat_sum += dxhat * xhat_.at(b, j);
    }
    for (int64_t j = 0; j < features_; ++j) {
      const double dxhat = double(grad_out.at(b, j)) * gamma_.value.at(j);
      gx.at(b, j) = static_cast<float>(
          inv_std_.at(b) / features_ *
          (features_ * dxhat - dxhat_sum - xhat_.at(b, j) * dxhat_xhat_sum));
    }
  }
  return gx;
}

}  // namespace acps::dnn
