// Normalization layers: BatchNorm1d (per-feature batch statistics with
// running estimates for eval) and LayerNorm (per-sample). The real VGG-16 /
// ResNet-18 and BERT use these; the miniature convergence models keep them
// optional, but the library provides them as first-class layers with exact
// backward passes (gradient-checked in tests).
#pragma once

#include "dnn/layer.h"

namespace acps::dnn {

class BatchNorm1d final : public Layer {
 public:
  BatchNorm1d(std::string name, int64_t features, float momentum = 0.1f,
              float eps = 1e-5f);

  [[nodiscard]] std::string name() const override { return name_; }
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  void Init(Rng& rng) override;

  // Training mode uses batch statistics and updates the running estimates;
  // eval mode uses the running estimates. Default: training.
  void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const { return training_; }

  [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const { return running_var_; }

 private:
  std::string name_;
  int64_t features_;
  float momentum_;
  float eps_;
  bool training_ = true;
  Param gamma_;  // scale [features]
  Param beta_;   // shift [features]
  Tensor running_mean_, running_var_;
  // Backward caches.
  Tensor xhat_;      // normalized input
  Tensor inv_std_;   // [features]
};

class LayerNorm final : public Layer {
 public:
  LayerNorm(std::string name, int64_t features, float eps = 1e-5f);

  [[nodiscard]] std::string name() const override { return name_; }
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  void Init(Rng& rng) override;

 private:
  std::string name_;
  int64_t features_;
  float eps_;
  Param gamma_;
  Param beta_;
  Tensor xhat_;
  Tensor inv_std_;  // [batch]
};

}  // namespace acps::dnn
