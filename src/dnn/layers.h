// Linear, ReLU and residual-wrapper layers.
#pragma once

#include "dnn/layer.h"

namespace acps::dnn {

class Linear final : public Layer {
 public:
  Linear(std::string name, int64_t in, int64_t out);

  [[nodiscard]] std::string name() const override { return name_; }
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void Init(Rng& rng) override;  // Kaiming-uniform

  [[nodiscard]] int64_t in_features() const { return in_; }
  [[nodiscard]] int64_t out_features() const { return out_; }

 private:
  std::string name_;
  int64_t in_, out_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor input_;  // cached for backward
};

class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  Tensor mask_;  // 1 where x > 0
};

// y = ReLU(inner(x) + x): the identity-shortcut residual wrapper used by
// the ResMini architecture. The inner stack must preserve feature count.
class Residual final : public Layer {
 public:
  Residual(std::string name, std::vector<std::unique_ptr<Layer>> inner);

  [[nodiscard]] std::string name() const override { return name_; }
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  void Init(Rng& rng) override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> inner_;
  Tensor mask_;  // ReLU mask of the output
};

}  // namespace acps::dnn
