// Minimal trainable neural-network substrate for the convergence
// experiments (paper §V-B, Fig 6/7).
//
// The paper trains VGG-16 / ResNet-18 on CIFAR-10 for 300 epochs on 4 GPUs;
// here (no GPUs, no datasets offline) miniaturized versions of the same
// architectures train on a synthetic 10-class image task (DESIGN.md §2).
// What matters for the reproduction is the *optimizer algebra* — that
// ACP-SGD with error feedback + reuse matches S-SGD / Power-SGD accuracy
// and that the ablations degrade — which this substrate exercises end to
// end through the real collectives.
//
// Conventions: activations are dense row-major [batch, features]; image
// layers (conv/pool) know their own C×H×W geometry. Forward caches whatever
// Backward needs; Backward ACCUMULATES into param.grad (callers zero grads
// between steps) and returns the gradient w.r.t. the layer input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace acps::dnn {

// One learnable tensor. `matrix_rows/cols` give the 2-D view used by
// low-rank compression (0 for vector-shaped parameters such as biases).
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  int64_t matrix_rows = 0;
  int64_t matrix_cols = 0;

  [[nodiscard]] bool is_matrix() const {
    return matrix_rows > 1 && matrix_cols > 1;
  }
};

class Layer {
 public:
  virtual ~Layer() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // x: [batch, in_features] -> [batch, out_features].
  virtual Tensor Forward(const Tensor& x) = 0;

  // grad_out: [batch, out_features] -> gradient w.r.t. input; accumulates
  // parameter gradients. Must be called after Forward on the same batch.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  // Learnable parameters (empty by default). Pointers remain valid for the
  // layer's lifetime.
  virtual std::vector<Param*> params() { return {}; }

  // (Re)initialize parameters from `rng`; layers without params ignore it.
  virtual void Init(Rng& rng) { (void)rng; }
};

}  // namespace acps::dnn
