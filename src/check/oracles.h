// Compressor invariant oracles: the compressor contracts from the paper's
// §II-B / §IV-A (and the PowerSGD / gradient-compression-utility literature)
// as machine-checked properties, run for every spec the registry knows:
//
//   encode-into-parity   EncodeInto writes bit-for-bit what Encode returns
//                        (fresh instances, so stateful RNG streams align).
//   decode-determinism   Decode is a pure function of the blob: same blob →
//                        same bits, on the same and on a fresh instance.
//   ef-conservation      error-feedback residual + decoded gradient
//                        reconstructs the compressor input within a
//                        per-compressor float tolerance (mass conservation
//                        of the EF loop, DESIGN.md tolerance table).
//   rank-invariance      the compressed all-reduce path (encode → gather →
//                        decode-all → fixed-order average) produces bitwise
//                        identical results on every rank, matching a
//                        single-threaded reference — checked clean AND under
//                        the schedule explorer's perturbation, so comm
//                        nondeterminism is covered too.
//
// Failures carry compressor name, tensor shape, seed, and the violated
// property, so a red run is immediately reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/schedule.h"

namespace acps::check {

struct OracleOptions {
  std::vector<int64_t> numels = {1, 5, 33, 256, 1000};
  uint64_t seed = 0x0AC1Eull;
  int world_size = 3;
  // Perturbed repetitions of the rank-invariance oracle per shape (plus one
  // unperturbed run).
  int perturbed_runs = 10;
  double perturb_prob = 0.5;
};

struct OracleFailure {
  std::string compressor;  // registry spec, e.g. "qsgd:16"
  std::string property;    // which oracle
  int64_t numel = 0;
  uint64_t seed = 0;
  std::string detail;

  [[nodiscard]] std::string Describe() const;
};

struct OracleReport {
  int checks_run = 0;
  std::vector<OracleFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] std::string Summary() const;
};

// Absolute-scale multiplier for the ef-conservation tolerance of `spec`
// (documented in DESIGN.md §6d; the residual is stored in fp32, so the
// property holds to rounding for every compressor — the per-compressor
// entries bound how much reconstruction magnitude amplifies that rounding).
[[nodiscard]] double EfTolerance(const std::string& spec);

// Runs all four oracles for one registry spec.
[[nodiscard]] OracleReport CheckCompressorInvariants(const std::string& spec,
                                                     const OracleOptions& opt);

// Runs the oracles for every spec in compress::KnownCompressors().
[[nodiscard]] OracleReport CheckAllRegisteredCompressors(
    const OracleOptions& opt);

// Determinism oracle for the acps::par compute kernels (DESIGN.md §6e):
// every kernel (GEMM family, Gemv, Axpy, Transpose, tensor reductions, sign
// and sampled-top-k encodes) must produce BITWISE identical results at
// thread counts 1, 2, 4 and 8, and the GEMM family must additionally match
// its single-threaded naive reference bit-for-bit. Restores the previous
// thread budget before returning.
[[nodiscard]] OracleReport CheckKernelThreadInvariance(
    const OracleOptions& opt);

}  // namespace acps::check
