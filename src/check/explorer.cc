#include "check/explorer.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <sstream>

#include "comm/communicator.h"
#include "comm/hierarchical.h"
#include "core/distributed_optimizer.h"
#include "core/grad_reducer.h"
#include "dnn/layer.h"
#include "fault/injector.h"
#include "tensor/check.h"

namespace acps::check {
namespace {

// ---------------------------------------------------------------------------
// Deterministic inputs. Values are small integers so that sums across any
// association order stay exactly representable in fp32 — the arithmetic
// reference is then exact, not approximate.
// ---------------------------------------------------------------------------

float IntInput(int rank, int64_t i) {
  return static_cast<float>(((i * 7 + rank * 13) % 21) - 10);
}

std::vector<float> IntInputs(int rank, int64_t numel) {
  std::vector<float> v(static_cast<size_t>(numel));
  for (int64_t i = 0; i < numel; ++i) v[static_cast<size_t>(i)] = IntInput(rank, i);
  return v;
}

std::vector<std::byte> BytePattern(int rank, size_t n) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 31 + static_cast<size_t>(rank) * 7) & 0xFF);
  return v;
}

std::vector<std::byte> FloatsToBytes(std::span<const float> v) {
  std::vector<std::byte> out(v.size() * sizeof(float));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

// ---------------------------------------------------------------------------
// One run of a workload: per-rank output bytes + traffic stats, or an error.
// ---------------------------------------------------------------------------

struct RunOutcome {
  std::vector<std::vector<std::byte>> outputs;  // per rank
  std::vector<comm::TrafficStats> traffic;      // per rank
  std::string error;  // non-empty when any worker threw
};

// The GradReducer workload's parameter set: one low-rank-worthy matrix, one
// smaller matrix, one dense bias — covers both bucket classes.
struct WfbpFixture {
  dnn::Param w1, w2, bias;

  explicit WfbpFixture(int rank) {
    w1.name = "w1";
    w1.value = Tensor({12, 16});
    w1.grad = Tensor({12, 16});
    w1.matrix_rows = 12;
    w1.matrix_cols = 16;
    w2.name = "w2";
    w2.value = Tensor({8, 10});
    w2.grad = Tensor({8, 10});
    w2.matrix_rows = 8;
    w2.matrix_cols = 10;
    bias.name = "bias";
    bias.value = Tensor({16});
    bias.grad = Tensor({16});
    int64_t i = 0;
    for (auto* p : list())
      for (float& g : p->grad.data()) g = IntInput(rank, i++);
  }

  std::vector<dnn::Param*> list() { return {&w1, &w2, &bias}; }
};

// Deterministic membership injector for Workload::kRejoin, built on the
// fault.points interface alone (the check layer must not depend on seeded
// fault plans): the victim fail-stops at its `crash_at`-th collective entry
// and holds a standing readmission intent for the next commit.
class RejoinInjector final : public fault::FaultInjector {
 public:
  RejoinInjector(int victim, uint64_t crash_at)
      : victim_(victim), crash_at_(crash_at) {}

  fault::FaultKind OnPublish(int, uint64_t, int) override {
    return fault::FaultKind::kNone;
  }
  fault::FaultKind OnRead(int, uint64_t, int) override {
    return fault::FaultKind::kNone;
  }
  fault::EntryDecision OnCollectiveEntry(int rank,
                                         uint64_t collective_index) override {
    if (rank == victim_ && collective_index == crash_at_)
      return {fault::FaultKind::kCrash, 0};
    return {};
  }
  std::vector<fault::AdmissionIntent> AdmissionSchedule() override {
    return {{victim_, 1}};
  }
  [[nodiscard]] std::string Describe() const override {
    return "rejoin-injector{victim=" + std::to_string(victim_) +
           ", crash_at=" + std::to_string(crash_at_) + "}";
  }

 private:
  int victim_;
  uint64_t crash_at_;
};

RunOutcome RunWorkload(Workload w, const ExploreOptions& opt,
                       ScheduleController* controller) {
  const int p = opt.world_size;
  const int64_t n = opt.numel;
  RunOutcome out;
  out.outputs.assign(static_cast<size_t>(p), {});
  out.traffic.assign(static_cast<size_t>(p), {});

  // kRejoin runs under its membership injector in every mode — baseline
  // included, so the baseline is the unperturbed run of the SAME
  // crash→rejoin history and the oracle isolates pure schedule effects.
  std::optional<RejoinInjector> rejoin;
  std::optional<fault::ScopedFaultInjector> install_rejoin;
  if (w == Workload::kRejoin && p >= 2) {
    // Entry 3 is the victim's step-2 all-reduce (2 entries per step:
    // the all-reduce and the commit), so the crash lands mid-run and the
    // readmission at commit 2 still leaves a step to run after resync.
    rejoin.emplace(/*victim=*/p - 1, /*crash_at=*/3);
    install_rejoin.emplace(&*rejoin);
  }

  comm::Transport transport;
  comm::Session group(transport, "", p);
  group.set_contract_checking(opt.contract_checking);
  ScopedSchedListener install(controller);
  // A reused controller must re-enforce / re-inject from window 0, not from
  // wherever the previous run left its window counter.
  if (controller != nullptr) controller->ResetRunState();
  try {
    group.Run([&](comm::Communicator& comm) {
      const int r = comm.rank();
      auto& slot = out.outputs[static_cast<size_t>(r)];
      switch (w) {
        case Workload::kAllReduceRing:
        case Workload::kAllReduceNaive: {
          auto data = IntInputs(r, n);
          comm.all_reduce(data, comm::ReduceOp::kSum,
                          w == Workload::kAllReduceRing
                              ? comm::AllReduceAlgo::kRing
                              : comm::AllReduceAlgo::kNaive);
          slot = FloatsToBytes(data);
          break;
        }
        case Workload::kAllGather: {
          const auto send = IntInputs(r, n);
          std::vector<float> recv(send.size() * static_cast<size_t>(p));
          comm.all_gather(send, recv);
          slot = FloatsToBytes(recv);
          break;
        }
        case Workload::kAllGatherBytes: {
          const auto send = BytePattern(r, static_cast<size_t>(n));
          std::vector<std::byte> recv(send.size() * static_cast<size_t>(p));
          comm.all_gather_bytes(send, recv);
          slot = recv;
          break;
        }
        case Workload::kAllGatherV: {
          const auto send =
              BytePattern(r, static_cast<size_t>(n) + 3 * static_cast<size_t>(r));
          std::vector<std::byte> recv;
          std::vector<size_t> offsets;
          comm.all_gather_v(send, recv, offsets);
          slot = recv;
          break;
        }
        case Workload::kReduceScatter: {
          auto data = IntInputs(r, n);
          comm.reduce_scatter(data);
          const auto rc = comm::GetChunkRange(n, p, r);
          slot = FloatsToBytes(std::span<const float>(data).subspan(
              static_cast<size_t>(rc.begin), static_cast<size_t>(rc.size())));
          break;
        }
        case Workload::kBroadcast: {
          const int root = p > 1 ? 1 : 0;
          auto data = r == root ? IntInputs(root, n)
                                : std::vector<float>(static_cast<size_t>(n));
          comm.broadcast(data, root);
          slot = FloatsToBytes(data);
          break;
        }
        case Workload::kBarrier: {
          comm.barrier();
          auto data = IntInputs(r, std::min<int64_t>(n, 8));
          comm.barrier();
          comm.all_reduce(data);
          comm.barrier();
          slot = FloatsToBytes(data);
          break;
        }
        case Workload::kWfbpStep: {
          WfbpFixture fix(r);
          compress::AcpSgdConfig cfg;
          cfg.rank = 2;
          core::GradReducer reducer(fix.list(), cfg, &comm);
          reducer.BeginStep();
          // Hooks fire in backward order, identically on every rank (the
          // data-parallel contract); the explorer perturbs their timing.
          reducer.OnGradReady(2);
          reducer.OnGradReady(1);
          reducer.OnGradReady(0);
          reducer.FinishStep();
          for (auto* prm : fix.list()) {
            const auto bytes = FloatsToBytes(prm->grad.data());
            slot.insert(slot.end(), bytes.begin(), bytes.end());
          }
          break;
        }
        case Workload::kHierarchical: {
          // gpus_per_node must divide p; odd group sizes degrade to a single
          // node (phase 1 + 3 only), even sizes exercise the leader ring too.
          const int g = (p % 2 == 0) ? 2 : p;
          auto data = IntInputs(r, n);
          comm::HierarchicalAllReduce(comm, data, g);
          slot = FloatsToBytes(data);
          break;
        }
        case Workload::kOptimizerStep: {
          WfbpFixture fix(r);
          // Values start identical on every rank (data-parallel invariant);
          // per-rank gradients are averaged by the aggregator, so values
          // must stay rank-invariant after each step.
          int64_t i = 0;
          for (auto* prm : fix.list())
            for (float& v : prm->value.data()) v = IntInput(0, i++) * 0.125f;
          core::DistributedOptimizer dopt(
              fix.list(), core::MakeAcpSgdFactory(2)(r, p),
              dnn::LrSchedule{.base_lr = 0.125f, .warmup_epochs = 1},
              /*momentum=*/0.5f);
          for (int step = 0; step < 2; ++step) {
            int64_t j = 0;
            for (auto* prm : fix.list())
              for (float& gr : prm->grad.data())
                gr = IntInput(r, j++ + step * 131);
            dopt.Step(comm, /*epoch=*/static_cast<double>(step));
          }
          for (auto* prm : fix.list()) {
            const auto bytes = FloatsToBytes(prm->value.data());
            slot.insert(slot.end(), bytes.begin(), bytes.end());
          }
          break;
        }
        case Workload::kRejoin: {
          // Three all-reduce steps with a membership commit after each;
          // the victim dies at its step-2 all-reduce and is readmitted at
          // the next commit, where the lowest-ranked survivor broadcasts
          // the running sums plus the step counter. Any explored schedule
          // must reproduce the same final bits on every rank. Naive
          // all-reduce keeps the workload at one hand-off window per step
          // (the gather publish; the root re-publish is kRootPublish), so
          // exhaustive mode can enumerate every publish order at p=3.
          auto data = IntInputs(r, n);
          int step = 0;
          const auto resync = [&](const comm::detail::ViewTransition& t) {
            if (t.joined.empty()) return;
            int donor = -1;
            for (const int a : comm.alive_ranks()) {
              if (std::find(t.joined.begin(), t.joined.end(), a) ==
                  t.joined.end()) {
                donor = a;
                break;
              }
            }
            std::vector<float> wire(data.size() + 1);
            wire[0] = static_cast<float>(step);
            std::copy(data.begin(), data.end(), wire.begin() + 1);
            comm.broadcast(wire, donor);
            step = static_cast<int>(wire[0]);
            std::copy(wire.begin() + 1, wire.end(), data.begin());
          };
          // A readmitted generation starts mid-commit: its first
          // collective is the resync broadcast the survivors are issuing.
          if (comm.join_generation() > 0) resync(comm.last_transition());
          while (step < 3) {
            comm.all_reduce(data, comm::ReduceOp::kSum,
                            comm::AllReduceAlgo::kNaive);
            ++step;
            resync(comm.commit_view());
          }
          slot = FloatsToBytes(data);
          break;
        }
      }
      out.traffic[static_cast<size_t>(r)] = comm.stats();
    });
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

// Arithmetic reference outputs (exact — integer inputs), or empty when the
// workload has no closed-form reference (kWfbpStep).
std::vector<std::vector<std::byte>> ReferenceOutputs(Workload w,
                                                     const ExploreOptions& opt) {
  const int p = opt.world_size;
  const int64_t n = opt.numel;
  std::vector<std::vector<std::byte>> ref(static_cast<size_t>(p));
  switch (w) {
    case Workload::kAllReduceRing:
    case Workload::kAllReduceNaive: {
      std::vector<float> sum(static_cast<size_t>(n), 0.0f);
      for (int r = 0; r < p; ++r)
        for (int64_t i = 0; i < n; ++i)
          sum[static_cast<size_t>(i)] += IntInput(r, i);
      for (int r = 0; r < p; ++r) ref[static_cast<size_t>(r)] = FloatsToBytes(sum);
      break;
    }
    case Workload::kAllGather: {
      std::vector<float> cat;
      for (int r = 0; r < p; ++r) {
        const auto v = IntInputs(r, n);
        cat.insert(cat.end(), v.begin(), v.end());
      }
      for (int r = 0; r < p; ++r) ref[static_cast<size_t>(r)] = FloatsToBytes(cat);
      break;
    }
    case Workload::kAllGatherBytes: {
      std::vector<std::byte> cat;
      for (int r = 0; r < p; ++r) {
        const auto v = BytePattern(r, static_cast<size_t>(n));
        cat.insert(cat.end(), v.begin(), v.end());
      }
      for (int r = 0; r < p; ++r) ref[static_cast<size_t>(r)] = cat;
      break;
    }
    case Workload::kAllGatherV: {
      std::vector<std::byte> cat;
      for (int r = 0; r < p; ++r) {
        const auto v =
            BytePattern(r, static_cast<size_t>(n) + 3 * static_cast<size_t>(r));
        cat.insert(cat.end(), v.begin(), v.end());
      }
      for (int r = 0; r < p; ++r) ref[static_cast<size_t>(r)] = cat;
      break;
    }
    case Workload::kReduceScatter: {
      std::vector<float> sum(static_cast<size_t>(n), 0.0f);
      for (int r = 0; r < p; ++r)
        for (int64_t i = 0; i < n; ++i)
          sum[static_cast<size_t>(i)] += IntInput(r, i);
      for (int r = 0; r < p; ++r) {
        const auto rc = comm::GetChunkRange(n, p, r);
        ref[static_cast<size_t>(r)] = FloatsToBytes(std::span<const float>(sum).subspan(
            static_cast<size_t>(rc.begin), static_cast<size_t>(rc.size())));
      }
      break;
    }
    case Workload::kBroadcast: {
      const int root = p > 1 ? 1 : 0;
      const auto v = IntInputs(root, n);
      for (int r = 0; r < p; ++r) ref[static_cast<size_t>(r)] = FloatsToBytes(v);
      break;
    }
    case Workload::kBarrier: {
      const int64_t m = std::min<int64_t>(n, 8);
      std::vector<float> sum(static_cast<size_t>(m), 0.0f);
      for (int r = 0; r < p; ++r)
        for (int64_t i = 0; i < m; ++i)
          sum[static_cast<size_t>(i)] += IntInput(r, i);
      for (int r = 0; r < p; ++r) ref[static_cast<size_t>(r)] = FloatsToBytes(sum);
      break;
    }
    case Workload::kHierarchical: {
      // Same contract as a flat all-reduce: every rank ends with the sum.
      std::vector<float> sum(static_cast<size_t>(n), 0.0f);
      for (int r = 0; r < p; ++r)
        for (int64_t i = 0; i < n; ++i)
          sum[static_cast<size_t>(i)] += IntInput(r, i);
      for (int r = 0; r < p; ++r) ref[static_cast<size_t>(r)] = FloatsToBytes(sum);
      break;
    }
    case Workload::kWfbpStep:
    case Workload::kOptimizerStep:
    case Workload::kRejoin:
      ref.clear();  // no closed form; baseline comparison covers it
      break;
  }
  return ref;
}

bool RankInvariant(Workload w) {
  // Every rank must end with identical bytes — true for all workloads except
  // reduce-scatter, whose whole point is that rank i owns only chunk i.
  return w != Workload::kReduceScatter;
}

std::string DescribeByteDiff(const std::vector<std::byte>& want,
                             const std::vector<std::byte>& got) {
  std::ostringstream oss;
  if (want.size() != got.size()) {
    oss << "size " << got.size() << " != expected " << want.size();
    return oss.str();
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (want[i] != got[i]) {
      oss << "first diff at byte " << i << " (expected 0x" << std::hex
          << static_cast<int>(want[i]) << ", got 0x" << static_cast<int>(got[i])
          << std::dec << ")";
      // Decode the enclosing float for float-sized payloads — far more
      // readable in reports than raw bytes.
      const size_t fi = i / sizeof(float);
      if ((want.size() % sizeof(float)) == 0 &&
          (fi + 1) * sizeof(float) <= want.size()) {
        float fw = 0.0f;
        float fg = 0.0f;
        std::memcpy(&fw, want.data() + fi * sizeof(float), sizeof(float));
        std::memcpy(&fg, got.data() + fi * sizeof(float), sizeof(float));
        oss << "; element " << fi << ": expected " << fw << ", got " << fg;
      }
      return oss.str();
    }
  }
  return "";
}

// Applies every oracle to `run`; returns the first failure description.
std::string CheckRun(Workload w, const RunOutcome& baseline,
                     const std::vector<std::vector<std::byte>>& reference,
                     const RunOutcome& run) {
  if (!run.error.empty()) return "worker threw: " + run.error;
  const size_t p = run.outputs.size();
  for (size_t r = 0; r < p; ++r) {
    if (run.outputs[r] != baseline.outputs[r]) {
      return "rank " + std::to_string(r) + " diverged from baseline bits: " +
             DescribeByteDiff(baseline.outputs[r], run.outputs[r]);
    }
  }
  if (!reference.empty()) {
    for (size_t r = 0; r < p; ++r) {
      if (run.outputs[r] != reference[r]) {
        return "rank " + std::to_string(r) +
               " diverged from arithmetic reference: " +
               DescribeByteDiff(reference[r], run.outputs[r]);
      }
    }
  }
  if (RankInvariant(w)) {
    for (size_t r = 1; r < p; ++r) {
      if (run.outputs[r] != run.outputs[0]) {
        return "rank-invariance broken: rank " + std::to_string(r) +
               " != rank 0: " + DescribeByteDiff(run.outputs[0], run.outputs[r]);
      }
    }
  }
  for (size_t r = 0; r < p; ++r) {
    const auto& a = run.traffic[r];
    const auto& b = baseline.traffic[r];
    if (a.bytes_sent != b.bytes_sent || a.messages_sent != b.messages_sent ||
        a.collectives != b.collectives) {
      return "rank " + std::to_string(r) + " traffic drifted: sent " +
             std::to_string(a.bytes_sent) + " B / " +
             std::to_string(a.messages_sent) + " msgs vs baseline " +
             std::to_string(b.bytes_sent) + " B / " +
             std::to_string(b.messages_sent) + " msgs";
    }
  }
  return "";
}

// Baseline + its self-check; a broken baseline is itself a violation (the
// clean tree must satisfy the arithmetic reference with no controller at all).
struct Prepared {
  RunOutcome baseline;
  std::vector<std::vector<std::byte>> reference;
  std::optional<Violation> baseline_violation;
};

Prepared Prepare(Workload w, const ExploreOptions& opt) {
  Prepared prep;
  prep.baseline = RunWorkload(w, opt, nullptr);
  prep.reference = ReferenceOutputs(w, opt);
  if (!prep.baseline.error.empty()) {
    prep.baseline_violation =
        Violation{0, "baseline (unperturbed) run threw: " + prep.baseline.error, ""};
    return prep;
  }
  if (!prep.reference.empty()) {
    for (size_t r = 0; r < prep.reference.size(); ++r) {
      if (prep.baseline.outputs[r] != prep.reference[r]) {
        prep.baseline_violation = Violation{
            0,
            "baseline run diverged from arithmetic reference at rank " +
                std::to_string(r) + ": " +
                DescribeByteDiff(prep.reference[r], prep.baseline.outputs[r]),
            ""};
        return prep;
      }
    }
  }
  return prep;
}

}  // namespace

const char* ToString(Workload w) noexcept {
  switch (w) {
    case Workload::kAllReduceRing: return "all_reduce[ring]";
    case Workload::kAllReduceNaive: return "all_reduce[naive]";
    case Workload::kAllGather: return "all_gather";
    case Workload::kAllGatherBytes: return "all_gather_bytes";
    case Workload::kAllGatherV: return "all_gather_v";
    case Workload::kReduceScatter: return "reduce_scatter";
    case Workload::kBroadcast: return "broadcast";
    case Workload::kBarrier: return "barrier";
    case Workload::kWfbpStep: return "wfbp_step";
    case Workload::kHierarchical: return "hierarchical";
    case Workload::kOptimizerStep: return "optimizer_step";
    case Workload::kRejoin: return "rejoin";
  }
  return "unknown";
}

std::vector<Workload> AllCollectiveWorkloads() {
  return {Workload::kAllReduceRing, Workload::kAllReduceNaive,
          Workload::kAllGather,     Workload::kAllGatherBytes,
          Workload::kAllGatherV,    Workload::kReduceScatter,
          Workload::kBroadcast,     Workload::kBarrier};
}

std::string ExploreReport::Summary() const {
  std::ostringstream oss;
  oss << ToString(workload) << ": " << schedules_run << " schedules, "
      << windows << " hand-off windows";
  if (enforcement_misses > 0)
    oss << ", " << enforcement_misses << " enforcement misses";
  if (violations.empty()) {
    oss << ", no violations";
  } else {
    oss << ", " << violations.size() << " VIOLATION(S):";
    for (const auto& v : violations) {
      oss << "\n  seed=" << v.seed << ": " << v.what;
      if (!v.schedule.empty()) oss << "\n  schedule tail:\n" << v.schedule;
    }
  }
  return oss.str();
}

ExploreReport ExplorePerturbed(Workload w, const ExploreOptions& opt) {
  ExploreReport report;
  report.workload = w;
  Prepared prep = Prepare(w, opt);
  if (prep.baseline_violation) {
    report.violations.push_back(*prep.baseline_violation);
    return report;
  }
  for (int i = 0; i < opt.runs; ++i) {
    const uint64_t seed = opt.base_seed + static_cast<uint64_t>(i);
    ScheduleConfig cfg;
    cfg.seed = seed;
    cfg.world_size = opt.world_size;
    cfg.perturb_prob = opt.perturb_prob;
    cfg.fault = opt.fault;
    ScheduleController controller(cfg);
    const RunOutcome run = RunWorkload(w, opt, &controller);
    ++report.schedules_run;
    if (i == 0) report.windows = controller.stats().windows;
    if (std::string what = CheckRun(w, prep.baseline, prep.reference, run);
        !what.empty()) {
      report.violations.push_back(Violation{seed, what, controller.Trace()});
      if (static_cast<int>(report.violations.size()) >=
          opt.max_reported_violations)
        break;
    }
  }
  return report;
}

ExploreReport ExploreExhaustive(Workload w, const ExploreOptions& opt,
                                int max_schedules) {
  ExploreReport report;
  report.workload = w;
  Prepared prep = Prepare(w, opt);
  if (prep.baseline_violation) {
    report.violations.push_back(*prep.baseline_violation);
    return report;
  }
  const int fact = Factorial(opt.world_size);
  std::vector<int> digits;  // grown to the window count after the first run
  bool first = true;
  while (report.schedules_run < max_schedules) {
    ScheduleConfig cfg;
    cfg.seed = opt.base_seed;
    cfg.world_size = opt.world_size;
    cfg.perturb_prob = 0.0;  // pure ordering — decisions are the digits
    cfg.enforce_order = true;
    cfg.order_digits = digits;
    cfg.fault = opt.fault;
    ScheduleController controller(cfg);
    const RunOutcome run = RunWorkload(w, opt, &controller);
    ++report.schedules_run;
    report.enforcement_misses += controller.stats().enforcement_misses;
    if (std::string what = CheckRun(w, prep.baseline, prep.reference, run);
        !what.empty()) {
      // The schedule IS the digit vector here; render it as the seed-free
      // replay handle.
      std::ostringstream sched;
      sched << "order digits:";
      for (int d : digits) sched << ' ' << d;
      sched << '\n' << controller.Trace();
      report.violations.push_back(
          Violation{opt.base_seed, what, sched.str()});
      if (static_cast<int>(report.violations.size()) >=
          opt.max_reported_violations)
        break;
    }
    if (first) {
      report.windows = controller.stats().windows;
      digits.assign(static_cast<size_t>(report.windows), 0);
      first = false;
      if (report.windows == 0) {
        report.exhaustive_complete = true;  // nothing to enumerate
        break;
      }
    }
    // Odometer step over [0, fact)^windows; wrap-around = full enumeration.
    size_t i = 0;
    while (i < digits.size() && ++digits[i] == fact) {
      digits[i] = 0;
      ++i;
    }
    if (i == digits.size()) {
      report.exhaustive_complete = true;
      break;
    }
  }
  return report;
}

ExploreReport ReplaySeed(Workload w, const ExploreOptions& opt,
                         uint64_t seed) {
  ExploreOptions single = opt;
  single.runs = 1;
  single.base_seed = seed;
  ExploreReport report = ExplorePerturbed(w, single);
  return report;
}

}  // namespace acps::check
