// ScheduleController: the CHESS/loom-style scheduling half of acps::check.
//
// The in-process collectives (comm/communicator.cc) are rendezvous-
// synchronous, so their *results* must be independent of how the OS
// interleaves the worker threads between barriers. The controller attacks
// exactly that assumption, in three modes that compose:
//
//  * Random perturbation — at every SchedPoint, a decision derived purely
//    from (seed, window, rank) or a global point counter chooses to do
//    nothing, yield, double-yield, or charge a virtual-time delay (ticks on
//    fault::VirtualClock plus bounded yields — wall-clock sleeps are banned,
//    see tools/lint.sh raw-sleep). One seed = one perturbation schedule; a
//    violating seed is replayed by re-running with the same seed.
//  * Order enforcement — for hand-off windows (the kHandoffSend /
//    kHandoffPublished pairs where all p ranks publish one chunk between two
//    barriers), the controller serializes publishes in a chosen permutation
//    per window. The explorer enumerates permutation vectors to walk every
//    hand-off order (bounded exhaustive mode). A rank whose turn never comes
//    (uniform-participation assumption violated) proceeds after
//    `order_wait_ms` and the miss is counted — degraded to perturbation,
//    never deadlock.
//  * Fault injection — at one chosen (window, rank) the just-published
//    payload is rotated by one float, emulating a mis-ordered chunk
//    hand-off. The explorer must flag the resulting divergence; this is the
//    mutation test proving the checker can detect real bugs.
//
// The controller is installed process-wide via ScopedSchedListener around a
// ThreadGroup::Run; see explorer.h for the harness that drives it.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "check/sched_point.h"
#include "par/lock_level.h"

namespace acps::check {

// One intentionally injected hand-off corruption (see class comment).
struct FaultSpec {
  int window = 0;  // which hand-off window (global index, 0-based)
  int rank = 0;    // whose published payload to corrupt
};

struct ScheduleConfig {
  // Drives every perturbation decision; the replay handle.
  uint64_t seed = 1;
  // Ranks in the group under test; required for window accounting.
  int world_size = 0;
  // Probability that a point perturbs at all (random mode).
  double perturb_prob = 0.5;

  // Order enforcement (exhaustive mode). `order_digits[w]` selects the
  // publish permutation for window w as an index in [0, world_size!);
  // windows beyond the vector use permutation 0 (identity).
  bool enforce_order = false;
  std::vector<int> order_digits;
  int64_t order_wait_ms = 2000;  // safety valve: never deadlock the group

  std::optional<FaultSpec> fault;

  size_t trace_capacity = 256;  // most recent points kept for reports
};

class ScheduleController final : public SchedListener {
 public:
  explicit ScheduleController(ScheduleConfig cfg);

  void OnSchedPoint(PointKind kind, int rank,
                    std::span<std::byte> payload) override;

  struct Stats {
    int64_t points = 0;
    int windows = 0;  // completed hand-off windows
    int64_t yields = 0;
    int64_t sleeps = 0;
    int enforcement_misses = 0;
    int faults_injected = 0;
  };
  [[nodiscard]] Stats stats() const;

  // Human-readable tail of the observed schedule ("w3 pub r0", ...), newest
  // last; rendered into violation reports.
  [[nodiscard]] std::string Trace() const;

  // Rearms per-run state (window counter, in-window publish count, trace)
  // so a controller reused across ThreadGroup::Run calls re-injects and
  // re-enforces from window 0. Without this, the window counter kept
  // monotonically increasing across runs, so a FaultSpec aimed at window w
  // only ever fired on the first run that passed it — reused controllers
  // silently stopped injecting. Cumulative stats are preserved.
  void ResetRunState();

  [[nodiscard]] const ScheduleConfig& config() const { return config_; }

 private:
  void Perturb(PointKind kind, int rank);
  void Record(PointKind kind, int rank, const char* note);
  // Permutation of [0, world_size) for window `w` from order_digits.
  [[nodiscard]] std::vector<int> PermForWindow(int w) const;
  // Closes the in-progress hand-off window once every *live* rank has
  // published. Called after each publish and after a kRankDown membership
  // flip — a window whose remaining publisher just died must close, or
  // order enforcement would stall every later window waiting on a rank
  // that no longer exists (elastic-membership runs).
  void MaybeCloseWindowLocked();

  ScheduleConfig config_;

  // Level 50: the replay lock is only ever taken from SchedPoint hooks and
  // harness accessors, never with a comm-layer lock held (hooks fire
  // outside GroupState::group_mu by design — rule `sched-point-under-lock`).
  mutable ACPS_LOCK_LEVEL(50) replay_mu_;
  par::ConditionVariable cv_;
  int window_ = 0;                // current hand-off window
  int published_in_window_ = 0;   // publishes completed in current window
  int perm_pos_ = 0;              // next position in the window's permutation
  // Live-membership view, updated by kRankDown / kRankUp points. Windows
  // close when every live rank published, and enforcement skips dead ranks
  // in the permutation — fixed-membership runs (alive_ all true) behave
  // exactly as before.
  std::vector<char> alive_;
  Stats stats_;
  std::vector<std::string> trace_;  // ring buffer
  size_t trace_next_ = 0;
  std::atomic<uint64_t> point_counter_{0};  // decisions for rank-less points
};

// Decodes `digit` (in [0, p!)) into the permutation of [0, p) with that
// index in the factorial number system. Exposed for the explorer's odometer.
[[nodiscard]] std::vector<int> NthPermutation(int p, int digit);

// p! for small p (checked: p <= 8).
[[nodiscard]] int Factorial(int p);

}  // namespace acps::check
