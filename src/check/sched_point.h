// Schedule points: the instrumentation half of the model checker (acps::check).
//
// A SchedPoint marks a synchronization-sensitive spot in the runtime — a ring
// chunk hand-off about to be published, a payload just made visible in a
// mailbox, a barrier entry, a WFBP gradient-ready hook. When no listener is
// installed (the normal case, including release builds) a point costs one
// acquire load and a predicted-not-taken branch; nothing else happens. The
// model checker (schedule.h) installs a process-wide SchedListener that turns
// the points into controlled yields, enforced hand-off orders, or injected
// faults.
//
// This header is the only part of acps::check the instrumented layers
// (acps::comm, acps::core) depend on; it depends on nothing but the standard
// library, so the dependency arrow stays comm -> check::points, never
// check -> comm at the hook level. The explorer/oracle layers (explorer.h,
// oracles.h) sit above comm.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

namespace acps::check {

// Where in the runtime a schedule point sits.
enum class PointKind : uint8_t {
  // Ring hand-off: every rank of the group is about to publish one chunk to
  // its mailbox (uniform participation — these are the windows the ordered /
  // exhaustive explorer enumerates).
  kHandoffSend,
  // The chunk is now visible in this rank's mailbox; `payload` is a mutable
  // view of the published bytes (fault injection mutates it here, strictly
  // before the barrier that releases readers).
  kHandoffPublished,
  // Rank-subset publish (broadcast root, naive all-reduce root re-publish):
  // perturbed but never order-enforced, since not every rank participates.
  kRootPublish,
  // Entering the group barrier. Rank is -1 when the call site cannot name
  // the rank (GroupState::Barrier is rank-agnostic); perturb-only.
  kBarrierEnter,
  // GradReducer: a gradient-ready hook fired (WFBP ordering point).
  kWfbpReady,
  // GradReducer: a fused bucket's all-reduce is about to be issued.
  kBucketIssue,
  // HierarchicalAllReduce: a phase boundary (intra-node reduce, inter-node
  // all-reduce, intra-node broadcast) is about to run. Perturb-only — every
  // rank passes it, but the inner collectives own the hand-off windows.
  // Doubles as a fault site: entry-kind faults fire at the nested
  // collectives this point precedes.
  kHierPhase,
  // DistributedOptimizer: one training step (aggregate + SGD update) is
  // about to run. Perturb-only; fault site for step-granular injection.
  kOptStep,
  // Elastic membership: an admission intent was just registered with the
  // group (rejoin/fresh-join schedule entry). Perturb-only.
  kJoinIntent,
  // Elastic membership: this rank is about to enter the barrier-aligned
  // membership-view commit (epoch bump, admissions, departures).
  // Perturb-only — the commit itself is a pair of group barriers.
  kViewCommit,
  // Elastic membership: `rank` is leaving the live group (fail-stop crash
  // or graceful departure). Fired in the leaving rank's thread strictly
  // BEFORE the membership flip (MarkDead / MarkLeft), so a controller's
  // alive-set is updated before any survivor can publish in a window that
  // no longer includes the rank (the entry-stabilization barrier orders
  // the flip before the survivors' publishes).
  kRankDown,
  // Elastic membership: `rank` was readmitted (or freshly admitted) by a
  // view commit and is about to start its new communicator generation.
  // Fired after the admitting commit's closing barrier, before the rank's
  // first collective.
  kRankUp,
};

[[nodiscard]] const char* ToString(PointKind kind) noexcept;

// Receives every schedule point hit while installed. Implementations must be
// thread-safe: points fire concurrently from all worker threads.
class SchedListener {
 public:
  virtual ~SchedListener() = default;

  // `payload` is non-empty only for kHandoffPublished / kRootPublish, where
  // it views (mutably) the bytes just published to the rank's mailbox.
  virtual void OnSchedPoint(PointKind kind, int rank,
                            std::span<std::byte> payload) = 0;
};

namespace detail {
extern std::atomic<SchedListener*> g_listener;
}  // namespace detail

// Installs `listener` process-wide (nullptr uninstalls); returns the previous
// listener. The caller must guarantee no instrumented code is running during
// the swap and that the listener outlives its installation — in practice the
// explorer installs before ThreadGroup::Run and uninstalls after it joins.
SchedListener* InstallSchedListener(SchedListener* listener);

// RAII installation for harness code.
class ScopedSchedListener {
 public:
  explicit ScopedSchedListener(SchedListener* listener)
      : previous_(InstallSchedListener(listener)) {}
  ~ScopedSchedListener() { InstallSchedListener(previous_); }
  ScopedSchedListener(const ScopedSchedListener&) = delete;
  ScopedSchedListener& operator=(const ScopedSchedListener&) = delete;

 private:
  SchedListener* previous_;
};

// The hook the instrumented layers call. Free when no listener is installed.
inline void SchedPoint(PointKind kind, int rank,
                       std::span<std::byte> payload = {}) {
  SchedListener* l = detail::g_listener.load(std::memory_order_acquire);
  if (l != nullptr) l->OnSchedPoint(kind, rank, payload);
}

}  // namespace acps::check
