// Schedule explorer: drives every collective kind (and the GradReducer WFBP
// pipeline) through ThreadGroup runs under a ScheduleController, and checks
// schedule-independence oracles after each run:
//
//   1. the run completes without exception (no contract violation, no
//      watchdog timeout, no ACPS_CHECK failure);
//   2. every rank's output is bitwise identical to an unperturbed baseline
//      run of the same workload (the collectives are deterministic functions
//      of their inputs, so ANY schedule must reproduce the baseline bits);
//   3. per-rank traffic counters match the baseline (chunking and message
//      counts are schedule-invariant);
//   4. where float association order is provably irrelevant (inputs are
//      small integers, sums stay exactly representable), the result equals
//      the arithmetic reference;
//   5. collectives whose contract says "all ranks end with the same value"
//      (all-reduce, all-gather, broadcast) are bitwise rank-invariant.
//
// A violating random schedule is reported with its seed — re-running
// ReplaySeed with that seed reproduces the perturbation decisions (they are
// pure functions of (seed, window, rank)) — plus the controller's schedule
// trace. Exhaustive mode enumerates hand-off publish orders per window with
// an odometer over permutation indices and reports whether enumeration
// completed within the budget.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/schedule.h"

namespace acps::check {

enum class Workload {
  kAllReduceRing,
  kAllReduceNaive,
  kAllGather,
  kAllGatherBytes,
  kAllGatherV,
  kReduceScatter,
  kBroadcast,
  kBarrier,    // barriers interleaved with a small all-reduce
  kWfbpStep,   // GradReducer hook-driven step (low-rank + dense buckets)
  // Higher layers, explorable but not in AllCollectiveWorkloads() (they
  // compose the collectives above and would double-count enumeration):
  kHierarchical,   // two-level node-aware all-reduce (kHierPhase points)
  kOptimizerStep,  // DistributedOptimizer::Step (kOptStep point + SGD)
  kRejoin,         // elastic membership: crash mid-run, barrier-aligned
                   // readmission at the next commit_view, donor resync
                   // (kJoinIntent/kViewCommit/kRankDown/kRankUp points)
};

[[nodiscard]] const char* ToString(Workload w) noexcept;

// The collective kinds (everything except kWfbpStep).
[[nodiscard]] std::vector<Workload> AllCollectiveWorkloads();

struct ExploreOptions {
  int world_size = 3;
  int64_t numel = 36;           // elements per rank (small on purpose)
  int runs = 200;               // random schedules per Explore call
  uint64_t base_seed = 0xC0FFEEull;
  bool contract_checking = true;
  double perturb_prob = 0.5;
  std::optional<FaultSpec> fault;  // forwarded to every controlled run
  int max_reported_violations = 8;
};

struct Violation {
  uint64_t seed = 0;
  std::string what;      // which oracle failed, where, expected vs got
  std::string schedule;  // controller trace tail
};

struct ExploreReport {
  Workload workload = Workload::kAllReduceRing;
  int schedules_run = 0;
  int windows = 0;  // hand-off windows per schedule (from the first run)
  bool exhaustive_complete = false;  // exhaustive mode only
  int enforcement_misses = 0;        // exhaustive mode: must be 0 for trust
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string Summary() const;
};

// `runs` random perturbation schedules (seeds base_seed .. base_seed+runs-1).
[[nodiscard]] ExploreReport ExplorePerturbed(Workload w,
                                             const ExploreOptions& opt);

// Bounded exhaustive exploration of hand-off publish orders: enumerates
// permutation digit vectors over the workload's hand-off windows, stopping
// at `max_schedules`. exhaustive_complete is true when the odometer wrapped
// (every order visited).
[[nodiscard]] ExploreReport ExploreExhaustive(Workload w,
                                              const ExploreOptions& opt,
                                              int max_schedules = 4096);

// Re-runs one random schedule by seed; the report carries at most one
// violation. Deterministic for fault-injection runs and for the seed-keyed
// hand-off decisions of random runs.
[[nodiscard]] ExploreReport ReplaySeed(Workload w, const ExploreOptions& opt,
                                       uint64_t seed);

}  // namespace acps::check
