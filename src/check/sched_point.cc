#include "check/sched_point.h"

namespace acps::check {

namespace detail {
std::atomic<SchedListener*> g_listener{nullptr};
}  // namespace detail

SchedListener* InstallSchedListener(SchedListener* listener) {
  return detail::g_listener.exchange(listener, std::memory_order_acq_rel);
}

const char* ToString(PointKind kind) noexcept {
  switch (kind) {
    case PointKind::kHandoffSend: return "handoff_send";
    case PointKind::kHandoffPublished: return "handoff_published";
    case PointKind::kRootPublish: return "root_publish";
    case PointKind::kBarrierEnter: return "barrier_enter";
    case PointKind::kWfbpReady: return "wfbp_ready";
    case PointKind::kBucketIssue: return "bucket_issue";
    case PointKind::kHierPhase: return "hier_phase";
    case PointKind::kOptStep: return "opt_step";
    case PointKind::kJoinIntent: return "join_intent";
    case PointKind::kViewCommit: return "view_commit";
    case PointKind::kRankDown: return "rank_down";
    case PointKind::kRankUp: return "rank_up";
  }
  return "unknown";
}

}  // namespace acps::check
