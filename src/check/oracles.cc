#include "check/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "comm/communicator.h"
#include "compress/error_feedback.h"
#include "compress/registry.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace acps::check {
namespace {

// Deterministic per-(seed, shape, rank, step) gradient data.
std::vector<float> GradData(uint64_t seed, int64_t numel, int rank, int step) {
  Rng rng(seed + static_cast<uint64_t>(numel) * 1000003ull +
          static_cast<uint64_t>(rank) * 7919ull +
          static_cast<uint64_t>(step) * 104729ull);
  std::vector<float> g(static_cast<size_t>(numel));
  for (float& v : g) v = rng.normal();
  return g;
}

float MaxAbs(std::span<const float> v) {
  float m = 0.0f;
  for (float x : v) m = std::max(m, std::abs(x));
  return m;
}

std::string BaseName(const std::string& spec) {
  const size_t colon = spec.find(':');
  return colon == std::string::npos ? spec : spec.substr(0, colon);
}

void AddFailure(OracleReport& report, const std::string& spec,
                const std::string& property, int64_t numel, uint64_t seed,
                std::string detail) {
  report.failures.push_back(
      OracleFailure{spec, property, numel, seed, std::move(detail)});
}

// --- Oracle 1: EncodeInto writes exactly what Encode returns. --------------
void CheckEncodeIntoParity(const std::string& spec, int64_t numel,
                           const OracleOptions& opt, OracleReport& report) {
  // Two fresh instances: stateful encoders (RNG streams, step counters)
  // advance per call, so comparing two encodes of ONE instance would test
  // the wrong thing.
  auto via_encode = compress::MakeCompressor(spec);
  auto via_into = compress::MakeCompressor(spec);
  const auto g = GradData(opt.seed, numel, /*rank=*/0, /*step=*/0);
  const auto blob = via_encode->Encode(g);
  std::vector<std::byte> into(via_into->EncodedBytes(g.size()));
  via_into->EncodeInto(g, into);
  ++report.checks_run;
  if (blob != into) {
    size_t i = 0;
    while (i < blob.size() && i < into.size() && blob[i] == into[i]) ++i;
    AddFailure(report, spec, "encode-into-parity", numel, opt.seed,
               "Encode and EncodeInto blobs differ at byte " +
                   std::to_string(i) + " (sizes " + std::to_string(blob.size()) +
                   " / " + std::to_string(into.size()) + ")");
  }
}

// --- Oracle 2: Decode is a pure function of the blob. ----------------------
void CheckDecodeDeterminism(const std::string& spec, int64_t numel,
                            const OracleOptions& opt, OracleReport& report) {
  auto encoder = compress::MakeCompressor(spec);
  const auto g = GradData(opt.seed, numel, 0, 1);
  const auto blob = encoder->Encode(g);
  std::vector<float> d1(g.size());
  std::vector<float> d2(g.size());
  std::vector<float> d3(g.size());
  encoder->Decode(blob, d1);
  encoder->Decode(blob, d2);
  compress::MakeCompressor(spec)->Decode(blob, d3);
  ++report.checks_run;
  if (std::memcmp(d1.data(), d2.data(), d1.size() * sizeof(float)) != 0 ||
      std::memcmp(d1.data(), d3.data(), d1.size() * sizeof(float)) != 0) {
    AddFailure(report, spec, "decode-determinism", numel, opt.seed,
               "two decodes of the same blob produced different bits");
  }
}

// --- Oracle 3: EF residual + decoded gradient conserves the input. ---------
void CheckEfConservation(const std::string& spec, int64_t numel,
                         const OracleOptions& opt, OracleReport& report) {
  auto compressor = compress::MakeCompressor(spec);
  compress::ErrorFeedback ef;
  const int64_t id = 7;
  const Shape shape({numel});
  const double tol = EfTolerance(spec);
  for (int step = 0; step < 3; ++step) {
    Tensor grad = Tensor::FromSpan(shape, GradData(opt.seed, numel, 0, step));
    ef.AddInto(id, grad);  // grad is now the compressor input
    const auto blob = compressor->Encode(grad.data());
    Tensor recon(shape);
    compressor->Decode(blob, recon.data());
    ef.Update(id, grad, recon);
    const Tensor& residual = ef.residual(id, shape);
    const float scale =
        1.0f + MaxAbs(grad.data()) + MaxAbs(recon.data());
    const double bound = tol * static_cast<double>(scale);
    ++report.checks_run;
    for (int64_t i = 0; i < numel; ++i) {
      const double recovered =
          static_cast<double>(residual.data()[static_cast<size_t>(i)]) +
          static_cast<double>(recon.data()[static_cast<size_t>(i)]);
      const double want = static_cast<double>(grad.data()[static_cast<size_t>(i)]);
      if (std::abs(recovered - want) > bound) {
        std::ostringstream oss;
        oss << "step " << step << " element " << i << ": residual+decoded = "
            << recovered << " vs input " << want << " (|diff| "
            << std::abs(recovered - want) << " > tol " << bound << ")";
        AddFailure(report, spec, "ef-conservation", numel, opt.seed, oss.str());
        return;
      }
    }
  }
}

// --- Oracle 4: compressed all-reduce is bitwise rank-invariant. ------------
//
// The generic compressed aggregation path: every rank encodes its own
// gradient, blobs travel a ring all-gather, every rank decodes all p blobs
// and averages them in rank order. Inputs, the encode, and the fixed-order
// average are deterministic, so every rank must end bit-identical to a
// single-threaded reference — no matter how the schedule explorer perturbs
// the ring.
void CheckRankInvariance(const std::string& spec, int64_t numel,
                         const OracleOptions& opt, OracleReport& report) {
  const int p = opt.world_size;

  // Single-threaded reference.
  std::vector<float> reference(static_cast<size_t>(numel), 0.0f);
  {
    std::vector<float> decoded(static_cast<size_t>(numel));
    for (int r = 0; r < p; ++r) {
      auto compressor = compress::MakeCompressor(spec);
      const auto g = GradData(opt.seed, numel, r, 0);
      const auto blob = compressor->Encode(g);
      compressor->Decode(blob, decoded);
      for (int64_t i = 0; i < numel; ++i)
        reference[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
    }
    const float inv = 1.0f / static_cast<float>(p);
    for (float& v : reference) v *= inv;
  }

  const auto run_once = [&](ScheduleController* controller,
                            uint64_t seed) -> bool {
    std::vector<std::vector<float>> results(static_cast<size_t>(p));
    std::string error;
    {
      comm::ThreadGroup group(p);
      group.set_contract_checking(true);
      ScopedSchedListener install(controller);
      try {
        group.Run([&](comm::Communicator& comm) {
          const int r = comm.rank();
          auto compressor = compress::MakeCompressor(spec);
          const auto g = GradData(opt.seed, numel, r, 0);
          std::vector<std::byte> blob(compressor->EncodedBytes(g.size()));
          compressor->EncodeInto(g, blob);
          std::vector<std::byte> gathered(blob.size() *
                                          static_cast<size_t>(p));
          comm.all_gather_bytes(blob, gathered);
          std::vector<float> acc(static_cast<size_t>(numel), 0.0f);
          std::vector<float> decoded(static_cast<size_t>(numel));
          for (int s = 0; s < p; ++s) {
            compressor->Decode(
                std::span<const std::byte>(gathered)
                    .subspan(static_cast<size_t>(s) * blob.size(), blob.size()),
                decoded);
            for (int64_t i = 0; i < numel; ++i)
              acc[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
          }
          const float inv = 1.0f / static_cast<float>(p);
          for (float& v : acc) v *= inv;
          results[static_cast<size_t>(r)] = std::move(acc);
        });
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    ++report.checks_run;
    if (!error.empty()) {
      AddFailure(report, spec, "rank-invariance", numel, seed,
                 "compressed all-reduce threw: " + error);
      return false;
    }
    for (int r = 0; r < p; ++r) {
      const auto& got = results[static_cast<size_t>(r)];
      if (std::memcmp(got.data(), reference.data(),
                      reference.size() * sizeof(float)) != 0) {
        int64_t i = 0;
        while (i < numel &&
               got[static_cast<size_t>(i)] == reference[static_cast<size_t>(i)])
          ++i;
        std::ostringstream oss;
        oss << "rank " << r << " diverged from reference at element " << i
            << " (got " << got[static_cast<size_t>(i)] << ", want "
            << reference[static_cast<size_t>(i)] << ")";
        AddFailure(report, spec, "rank-invariance", numel, seed, oss.str());
        return false;
      }
    }
    return true;
  };

  if (!run_once(nullptr, 0)) return;  // clean run first
  for (int i = 0; i < opt.perturbed_runs; ++i) {
    const uint64_t seed = opt.seed + 1 + static_cast<uint64_t>(i);
    ScheduleConfig cfg;
    cfg.seed = seed;
    cfg.world_size = p;
    cfg.perturb_prob = opt.perturb_prob;
    ScheduleController controller(cfg);
    if (!run_once(&controller, seed)) return;
  }
}

}  // namespace

std::string OracleFailure::Describe() const {
  std::ostringstream oss;
  oss << "oracle FAILED: compressor=" << compressor << " property=" << property
      << " shape=[" << numel << "] seed=" << seed << " — " << detail;
  return oss.str();
}

std::string OracleReport::Summary() const {
  std::ostringstream oss;
  oss << checks_run << " oracle checks";
  if (failures.empty()) {
    oss << ", all passed";
  } else {
    oss << ", " << failures.size() << " FAILURE(S):";
    for (const auto& f : failures) oss << "\n  " << f.Describe();
  }
  return oss.str();
}

double EfTolerance(const std::string& spec) {
  // Sparsifiers copy kept values verbatim (residual is exactly the dropped
  // mass) and fp16's round-trip subtraction is exact by Sterbenz's lemma, so
  // those conserve bit-exactly. Quantizers reconstruct at magnitudes up to
  // ‖g‖, where the fp32 residual arithmetic rounds; their tolerance is a
  // small multiple of machine epsilon on the (1 + max|g| + max|recon|) scale.
  const std::string name = BaseName(spec);
  if (name == "topk" || name == "topk-sampled" || name == "randomk" ||
      name == "fp16") {
    return 0.0;
  }
  return 1e-6;  // sign, blockwise-sign, qsgd, terngrad
}

OracleReport CheckCompressorInvariants(const std::string& spec,
                                       const OracleOptions& opt) {
  OracleReport report;
  for (int64_t numel : opt.numels) {
    CheckEncodeIntoParity(spec, numel, opt, report);
    CheckDecodeDeterminism(spec, numel, opt, report);
    CheckEfConservation(spec, numel, opt, report);
  }
  // Rank-invariance is the expensive oracle (real ThreadGroup runs under the
  // explorer); run it on a representative small and large shape.
  const std::vector<int64_t> comm_numels = {opt.numels.front(),
                                            opt.numels.back()};
  for (int64_t numel : comm_numels)
    CheckRankInvariance(spec, numel, opt, report);
  return report;
}

OracleReport CheckAllRegisteredCompressors(const OracleOptions& opt) {
  OracleReport total;
  for (const std::string& spec : compress::KnownCompressors()) {
    OracleReport r = CheckCompressorInvariants(spec, opt);
    total.checks_run += r.checks_run;
    total.failures.insert(total.failures.end(), r.failures.begin(),
                          r.failures.end());
  }
  return total;
}

}  // namespace acps::check
