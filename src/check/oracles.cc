#include "check/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "comm/communicator.h"
#include "compress/error_feedback.h"
#include "compress/registry.h"
#include "compress/sign.h"
#include "compress/topk.h"
#include "par/thread_pool.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace acps::check {
namespace {

// Deterministic per-(seed, shape, rank, step) gradient data.
std::vector<float> GradData(uint64_t seed, int64_t numel, int rank, int step) {
  Rng rng(seed + static_cast<uint64_t>(numel) * 1000003ull +
          static_cast<uint64_t>(rank) * 7919ull +
          static_cast<uint64_t>(step) * 104729ull);
  std::vector<float> g(static_cast<size_t>(numel));
  for (float& v : g) v = rng.normal();
  return g;
}

float MaxAbs(std::span<const float> v) {
  float m = 0.0f;
  for (float x : v) m = std::max(m, std::abs(x));
  return m;
}

std::string BaseName(const std::string& spec) {
  const size_t colon = spec.find(':');
  return colon == std::string::npos ? spec : spec.substr(0, colon);
}

void AddFailure(OracleReport& report, const std::string& spec,
                const std::string& property, int64_t numel, uint64_t seed,
                std::string detail) {
  report.failures.push_back(
      OracleFailure{spec, property, numel, seed, std::move(detail)});
}

// --- Oracle 1: EncodeInto writes exactly what Encode returns. --------------
void CheckEncodeIntoParity(const std::string& spec, int64_t numel,
                           const OracleOptions& opt, OracleReport& report) {
  // Two fresh instances: stateful encoders (RNG streams, step counters)
  // advance per call, so comparing two encodes of ONE instance would test
  // the wrong thing.
  auto via_encode = compress::MakeCompressor(spec);
  auto via_into = compress::MakeCompressor(spec);
  const auto g = GradData(opt.seed, numel, /*rank=*/0, /*step=*/0);
  const auto blob = via_encode->Encode(g);
  std::vector<std::byte> into(via_into->EncodedBytes(g.size()));
  via_into->EncodeInto(g, into);
  ++report.checks_run;
  if (blob != into) {
    size_t i = 0;
    while (i < blob.size() && i < into.size() && blob[i] == into[i]) ++i;
    AddFailure(report, spec, "encode-into-parity", numel, opt.seed,
               "Encode and EncodeInto blobs differ at byte " +
                   std::to_string(i) + " (sizes " + std::to_string(blob.size()) +
                   " / " + std::to_string(into.size()) + ")");
  }
}

// --- Oracle 2: Decode is a pure function of the blob. ----------------------
void CheckDecodeDeterminism(const std::string& spec, int64_t numel,
                            const OracleOptions& opt, OracleReport& report) {
  auto encoder = compress::MakeCompressor(spec);
  const auto g = GradData(opt.seed, numel, 0, 1);
  const auto blob = encoder->Encode(g);
  std::vector<float> d1(g.size());
  std::vector<float> d2(g.size());
  std::vector<float> d3(g.size());
  encoder->Decode(blob, d1);
  encoder->Decode(blob, d2);
  compress::MakeCompressor(spec)->Decode(blob, d3);
  ++report.checks_run;
  if (std::memcmp(d1.data(), d2.data(), d1.size() * sizeof(float)) != 0 ||
      std::memcmp(d1.data(), d3.data(), d1.size() * sizeof(float)) != 0) {
    AddFailure(report, spec, "decode-determinism", numel, opt.seed,
               "two decodes of the same blob produced different bits");
  }
}

// --- Oracle 3: EF residual + decoded gradient conserves the input. ---------
void CheckEfConservation(const std::string& spec, int64_t numel,
                         const OracleOptions& opt, OracleReport& report) {
  auto compressor = compress::MakeCompressor(spec);
  compress::ErrorFeedback ef;
  const int64_t id = 7;
  const Shape shape({numel});
  const double tol = EfTolerance(spec);
  for (int step = 0; step < 3; ++step) {
    Tensor grad = Tensor::FromSpan(shape, GradData(opt.seed, numel, 0, step));
    ef.AddInto(id, grad);  // grad is now the compressor input
    const auto blob = compressor->Encode(grad.data());
    Tensor recon(shape);
    compressor->Decode(blob, recon.data());
    ef.Update(id, grad, recon);
    const Tensor& residual = ef.residual(id, shape);
    const float scale =
        1.0f + MaxAbs(grad.data()) + MaxAbs(recon.data());
    const double bound = tol * static_cast<double>(scale);
    ++report.checks_run;
    for (int64_t i = 0; i < numel; ++i) {
      const double recovered =
          static_cast<double>(residual.data()[static_cast<size_t>(i)]) +
          static_cast<double>(recon.data()[static_cast<size_t>(i)]);
      const double want = static_cast<double>(grad.data()[static_cast<size_t>(i)]);
      if (std::abs(recovered - want) > bound) {
        std::ostringstream oss;
        oss << "step " << step << " element " << i << ": residual+decoded = "
            << recovered << " vs input " << want << " (|diff| "
            << std::abs(recovered - want) << " > tol " << bound << ")";
        AddFailure(report, spec, "ef-conservation", numel, opt.seed, oss.str());
        return;
      }
    }
  }
}

// --- Oracle 4: compressed all-reduce is bitwise rank-invariant. ------------
//
// The generic compressed aggregation path: every rank encodes its own
// gradient, blobs travel a ring all-gather, every rank decodes all p blobs
// and averages them in rank order. Inputs, the encode, and the fixed-order
// average are deterministic, so every rank must end bit-identical to a
// single-threaded reference — no matter how the schedule explorer perturbs
// the ring.
void CheckRankInvariance(const std::string& spec, int64_t numel,
                         const OracleOptions& opt, OracleReport& report) {
  const int p = opt.world_size;

  // Single-threaded reference.
  std::vector<float> reference(static_cast<size_t>(numel), 0.0f);
  {
    std::vector<float> decoded(static_cast<size_t>(numel));
    for (int r = 0; r < p; ++r) {
      auto compressor = compress::MakeCompressor(spec);
      const auto g = GradData(opt.seed, numel, r, 0);
      const auto blob = compressor->Encode(g);
      compressor->Decode(blob, decoded);
      for (int64_t i = 0; i < numel; ++i)
        reference[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
    }
    const float inv = 1.0f / static_cast<float>(p);
    for (float& v : reference) v *= inv;
  }

  const auto run_once = [&](ScheduleController* controller,
                            uint64_t seed) -> bool {
    std::vector<std::vector<float>> results(static_cast<size_t>(p));
    std::string error;
    {
      comm::Transport transport;
      comm::Session group(transport, "", p);
      group.set_contract_checking(true);
      ScopedSchedListener install(controller);
      try {
        group.Run([&](comm::Communicator& comm) {
          const int r = comm.rank();
          auto compressor = compress::MakeCompressor(spec);
          const auto g = GradData(opt.seed, numel, r, 0);
          std::vector<std::byte> blob(compressor->EncodedBytes(g.size()));
          compressor->EncodeInto(g, blob);
          std::vector<std::byte> gathered(blob.size() *
                                          static_cast<size_t>(p));
          comm.all_gather_bytes(blob, gathered);
          std::vector<float> acc(static_cast<size_t>(numel), 0.0f);
          std::vector<float> decoded(static_cast<size_t>(numel));
          for (int s = 0; s < p; ++s) {
            compressor->Decode(
                std::span<const std::byte>(gathered)
                    .subspan(static_cast<size_t>(s) * blob.size(), blob.size()),
                decoded);
            for (int64_t i = 0; i < numel; ++i)
              acc[static_cast<size_t>(i)] += decoded[static_cast<size_t>(i)];
          }
          const float inv = 1.0f / static_cast<float>(p);
          for (float& v : acc) v *= inv;
          results[static_cast<size_t>(r)] = std::move(acc);
        });
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    ++report.checks_run;
    if (!error.empty()) {
      AddFailure(report, spec, "rank-invariance", numel, seed,
                 "compressed all-reduce threw: " + error);
      return false;
    }
    for (int r = 0; r < p; ++r) {
      const auto& got = results[static_cast<size_t>(r)];
      if (std::memcmp(got.data(), reference.data(),
                      reference.size() * sizeof(float)) != 0) {
        int64_t i = 0;
        while (i < numel &&
               got[static_cast<size_t>(i)] == reference[static_cast<size_t>(i)])
          ++i;
        std::ostringstream oss;
        oss << "rank " << r << " diverged from reference at element " << i
            << " (got " << got[static_cast<size_t>(i)] << ", want "
            << reference[static_cast<size_t>(i)] << ")";
        AddFailure(report, spec, "rank-invariance", numel, seed, oss.str());
        return false;
      }
    }
    return true;
  };

  if (!run_once(nullptr, 0)) return;  // clean run first
  for (int i = 0; i < opt.perturbed_runs; ++i) {
    const uint64_t seed = opt.seed + 1 + static_cast<uint64_t>(i);
    ScheduleConfig cfg;
    cfg.seed = seed;
    cfg.world_size = p;
    cfg.perturb_prob = opt.perturb_prob;
    ScheduleController controller(cfg);
    if (!run_once(&controller, seed)) return;
  }
}

}  // namespace

std::string OracleFailure::Describe() const {
  std::ostringstream oss;
  oss << "oracle FAILED: compressor=" << compressor << " property=" << property
      << " shape=[" << numel << "] seed=" << seed << " — " << detail;
  return oss.str();
}

std::string OracleReport::Summary() const {
  std::ostringstream oss;
  oss << checks_run << " oracle checks";
  if (failures.empty()) {
    oss << ", all passed";
  } else {
    oss << ", " << failures.size() << " FAILURE(S):";
    for (const auto& f : failures) oss << "\n  " << f.Describe();
  }
  return oss.str();
}

double EfTolerance(const std::string& spec) {
  // Sparsifiers copy kept values verbatim (residual is exactly the dropped
  // mass) and fp16's round-trip subtraction is exact by Sterbenz's lemma, so
  // those conserve bit-exactly. Quantizers reconstruct at magnitudes up to
  // ‖g‖, where the fp32 residual arithmetic rounds; their tolerance is a
  // small multiple of machine epsilon on the (1 + max|g| + max|recon|) scale.
  const std::string name = BaseName(spec);
  if (name == "topk" || name == "topk-sampled" || name == "randomk" ||
      name == "fp16") {
    return 0.0;
  }
  return 1e-6;  // sign, blockwise-sign, qsgd, terngrad
}

OracleReport CheckCompressorInvariants(const std::string& spec,
                                       const OracleOptions& opt) {
  OracleReport report;
  for (int64_t numel : opt.numels) {
    CheckEncodeIntoParity(spec, numel, opt, report);
    CheckDecodeDeterminism(spec, numel, opt, report);
    CheckEfConservation(spec, numel, opt, report);
  }
  // Rank-invariance is the expensive oracle (real ThreadGroup runs under the
  // explorer); run it on a representative small and large shape.
  const std::vector<int64_t> comm_numels = {opt.numels.front(),
                                            opt.numels.back()};
  for (int64_t numel : comm_numels)
    CheckRankInvariance(spec, numel, opt, report);
  return report;
}

namespace {

// One full pass of every parallel kernel at the CURRENT thread budget.
// Returns all outputs concatenated into one float vector so the caller can
// compare runs bitwise with a single memcmp-style equality.
std::vector<float> RunKernelSuite(uint64_t seed) {
  std::vector<float> out;
  const auto emit = [&out](std::span<const float> v) {
    out.insert(out.end(), v.begin(), v.end());
  };

  // Shapes: odd sizes exercise the edge tiles, the (n, r)-style shapes match
  // the paper's low-rank factors.
  struct GemmShape {
    int64_t n, k, m;
  };
  for (const GemmShape s : {GemmShape{33, 17, 8}, GemmShape{64, 64, 32},
                            GemmShape{1000, 4, 4}}) {
    Rng rng(seed ^ (static_cast<uint64_t>(s.n) << 20));
    std::vector<float> a(static_cast<size_t>(s.n * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.m));
    std::vector<float> c(static_cast<size_t>(s.n * s.m));
    for (float& v : a) v = rng.normal();
    for (float& v : b) v = rng.normal();
    for (float& v : c) v = rng.normal();

    std::vector<float> c1 = c;
    Gemm(a, b, c1, s.n, s.k, s.m, 1.25f, 0.5f);
    emit(c1);
    // A stored [k×n] for TransA: reuse `a` reinterpreted (size matches).
    std::vector<float> c2 = c;
    GemmTransA(a, b, c2, s.n, s.k, s.m, 1.0f, 0.0f);
    emit(c2);
    // B stored [m×k] for TransB: sizes match b.
    std::vector<float> c3 = c;
    GemmTransB(a, b, c3, s.n, s.k, s.m, -0.75f, 1.0f);
    emit(c3);

    std::vector<float> x(static_cast<size_t>(s.k));
    std::vector<float> y(static_cast<size_t>(s.n));
    for (float& v : x) v = rng.normal();
    Gemv(a, x, y, s.n, s.k);
    emit(y);
  }

  // Vector kernels + deterministic reductions on a size that spans several
  // grain blocks and a ragged tail.
  const int64_t n = 100003;
  Rng rng(seed ^ 0xFEEDull);
  Tensor t({n}), u({n});
  for (int64_t i = 0; i < n; ++i) t.at(i) = rng.normal();
  for (int64_t i = 0; i < n; ++i) u.at(i) = rng.normal();
  Axpy(0.37f, u.data(), t.data());
  Scal(1.1f, t.data());
  emit(t.data());
  const float red[4] = {t.sum(), t.dot(u), t.norm2(), t.abs_max()};
  emit(std::span<const float>(red, 4));

  Tensor mat = Tensor::FromSpan(
      {149, 67}, std::span<const float>(t.data().data(), 149 * 67));
  emit(Transpose(mat).data());

  // Compressor kernels: blobs reinterpreted as floats for the comparison
  // (bit patterns are what must match).
  compress::SignCompressor sign;
  const auto sign_blob = sign.Encode(t.data());
  std::vector<float> sign_dec(static_cast<size_t>(n));
  sign.Decode(sign_blob, sign_dec);
  emit(sign_dec);

  compress::TopkCompressor topk(0.01, compress::TopkSelection::kSampledThreshold);
  const auto topk_blob = topk.Encode(t.data());
  std::vector<float> topk_dec(static_cast<size_t>(n));
  topk.Decode(topk_blob, topk_dec);
  emit(topk_dec);

  return out;
}

// Bitwise comparison (float == would treat -0.0f == 0.0f and NaN != NaN).
bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b,
                  size_t* first_diff) {
  if (a.size() != b.size()) {
    *first_diff = std::min(a.size(), b.size());
    return false;
  }
  if (a.empty() ||
      std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0)
    return true;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
      *first_diff = i;
      return false;
    }
  }
  return true;
}

}  // namespace

OracleReport CheckKernelThreadInvariance(const OracleOptions& opt) {
  OracleReport report;
  const int saved = par::NumThreads();

  par::SetNumThreads(1);
  const std::vector<float> baseline = RunKernelSuite(opt.seed);

  // GEMM-family naive parity at 1 thread: the production kernels implement
  // the documented accumulation policy exactly.
  {
    Rng rng(opt.seed ^ 0xBEEFull);
    const int64_t n = 61, k = 37, m = 33;
    std::vector<float> a(static_cast<size_t>(n * k));
    std::vector<float> b(static_cast<size_t>(k * m));
    std::vector<float> c(static_cast<size_t>(n * m));
    for (float& v : a) v = rng.normal();
    for (float& v : b) v = rng.normal();
    for (float& v : c) v = rng.normal();
    struct Variant {
      const char* name;
      void (*kernel)(std::span<const float>, std::span<const float>,
                     std::span<float>, int64_t, int64_t, int64_t, float,
                     float);
      void (*naive)(std::span<const float>, std::span<const float>,
                    std::span<float>, int64_t, int64_t, int64_t, float, float);
    };
    for (const Variant v :
         {Variant{"gemm", &Gemm, &GemmNaive},
          Variant{"gemm_ta", &GemmTransA, &GemmTransANaive},
          Variant{"gemm_tb", &GemmTransB, &GemmTransBNaive}}) {
      for (const float beta : {0.0f, 1.0f, 0.5f}) {
        std::vector<float> got = c, want = c;
        v.kernel(a, b, got, n, k, m, 1.5f, beta);
        v.naive(a, b, want, n, k, m, 1.5f, beta);
        ++report.checks_run;
        size_t diff = 0;
        if (!BitwiseEqual(got, want, &diff)) {
          std::ostringstream oss;
          oss << v.name << " (beta=" << beta
              << ") diverges from its naive reference at element " << diff;
          AddFailure(report, "par-kernels", "naive-parity", n * m, opt.seed,
                     oss.str());
        }
      }
    }
  }

  for (const int threads : {2, 4, 8}) {
    par::SetNumThreads(threads);
    const std::vector<float> got = RunKernelSuite(opt.seed);
    ++report.checks_run;
    size_t diff = 0;
    if (!BitwiseEqual(got, baseline, &diff)) {
      std::ostringstream oss;
      oss << "kernel suite at " << threads
          << " threads diverges from 1 thread at output element " << diff;
      AddFailure(report, "par-kernels", "thread-invariance",
                 static_cast<int64_t>(baseline.size()), opt.seed, oss.str());
    }
  }

  par::SetNumThreads(saved);
  return report;
}

OracleReport CheckAllRegisteredCompressors(const OracleOptions& opt) {
  OracleReport total;
  for (const std::string& spec : compress::KnownCompressors()) {
    OracleReport r = CheckCompressorInvariants(spec, opt);
    total.checks_run += r.checks_run;
    total.failures.insert(total.failures.end(), r.failures.begin(),
                          r.failures.end());
  }
  return total;
}

}  // namespace acps::check
