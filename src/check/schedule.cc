#include "check/schedule.h"

#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "fault/clock.h"
#include "tensor/check.h"

namespace acps::check {
namespace {

// SplitMix64 — the same mixer tensor/rng.h seeds with; good enough to turn
// (seed, window, rank, kind) into an independent decision stream without
// dragging a stateful generator through the hot hook path.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

int Factorial(int p) {
  ACPS_CHECK_MSG(p >= 0 && p <= 8, "Factorial: p out of supported range");
  int f = 1;
  for (int i = 2; i <= p; ++i) f *= i;
  return f;
}

std::vector<int> NthPermutation(int p, int digit) {
  ACPS_CHECK_MSG(digit >= 0 && digit < Factorial(p),
                 "permutation index " << digit << " out of range for p=" << p);
  std::vector<int> pool;
  pool.reserve(static_cast<size_t>(p));
  for (int i = 0; i < p; ++i) pool.push_back(i);
  std::vector<int> perm;
  perm.reserve(static_cast<size_t>(p));
  int radix = Factorial(p);
  for (int i = p; i >= 1; --i) {
    radix /= i;
    const int idx = digit / radix;
    digit %= radix;
    perm.push_back(pool[static_cast<size_t>(idx)]);
    pool.erase(pool.begin() + idx);
  }
  return perm;
}

ScheduleController::ScheduleController(ScheduleConfig cfg)
    : config_(std::move(cfg)) {
  ACPS_CHECK_MSG(config_.world_size >= 1,
                 "ScheduleController needs the group's world_size");
  trace_.reserve(config_.trace_capacity);
  alive_.assign(static_cast<size_t>(config_.world_size), 1);
}

void ScheduleController::MaybeCloseWindowLocked() {
  if (published_in_window_ == 0) return;
  int expected = 0;
  for (const char a : alive_) expected += (a != 0) ? 1 : 0;
  if (published_in_window_ >= expected) {
    published_in_window_ = 0;
    perm_pos_ = 0;
    ++window_;
    ++stats_.windows;
  }
}

std::vector<int> ScheduleController::PermForWindow(int w) const {
  const int digit =
      w < static_cast<int>(config_.order_digits.size())
          ? config_.order_digits[static_cast<size_t>(w)]
          : 0;
  return NthPermutation(config_.world_size, digit);
}

void ScheduleController::Record(PointKind kind, int rank, const char* note) {
  if (config_.trace_capacity == 0) return;
  std::ostringstream oss;
  oss << "w" << window_ << " " << ToString(kind) << " r" << rank;
  if (note[0] != '\0') oss << " " << note;
  if (trace_.size() < config_.trace_capacity) {
    trace_.push_back(oss.str());
  } else {
    trace_[trace_next_] = oss.str();
    trace_next_ = (trace_next_ + 1) % config_.trace_capacity;
  }
}

void ScheduleController::Perturb(PointKind kind, int rank) {
  // Decision input: hand-off points are keyed by (window, rank, kind) so a
  // seed replays the same decision at the same logical point regardless of
  // thread timing; rank-less points (barrier entry) fall back to a global
  // arrival counter, which perturbs well but is only statistically
  // reproducible — the deterministic detectors (order enforcement, fault
  // injection) never depend on it.
  uint64_t key;
  if (rank >= 0 && (kind == PointKind::kHandoffSend ||
                    kind == PointKind::kHandoffPublished)) {
    uint64_t w;
    {
      std::lock_guard lock(replay_mu_);
      w = static_cast<uint64_t>(window_);
    }
    key = (w << 16) ^ (static_cast<uint64_t>(rank) << 8) ^
          static_cast<uint64_t>(kind);
  } else {
    key = 0xB000000000000000ull ^
          point_counter_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t h = Mix(config_.seed ^ Mix(key));
  const double gate = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (gate >= config_.perturb_prob) return;
  switch ((h >> 3) % 8) {
    case 0:
    case 1:
    case 2:
    case 3:
      std::this_thread::yield();
      {
        std::lock_guard lock(replay_mu_);
        ++stats_.yields;
      }
      break;
    case 4:
    case 5:
    case 6:
      std::this_thread::yield();
      std::this_thread::yield();
      {
        std::lock_guard lock(replay_mu_);
        ++stats_.yields;
      }
      break;
    default: {
      // "Sleep" in virtual time: charge replayable ticks and yield a
      // bounded, seed-derived number of times. Wall-clock sleeps are banned
      // (tools/lint.sh raw-sleep) — they are the one perturbation a replay
      // cannot reproduce.
      const auto ticks = static_cast<int64_t>(1 + (h >> 13) % 40);
      fault::VirtualClock::Advance(ticks);
      fault::SpinYield(static_cast<int>(1 + (h >> 7) % 4));
      std::lock_guard lock(replay_mu_);
      ++stats_.sleeps;
      break;
    }
  }
}

void ScheduleController::OnSchedPoint(PointKind kind, int rank,
                                      std::span<std::byte> payload) {
  {
    std::lock_guard lock(replay_mu_);
    ++stats_.points;
  }

  if (kind == PointKind::kRankDown || kind == PointKind::kRankUp) {
    // Membership flip. The caller fires kRankDown strictly before
    // MarkDead/MarkLeft, so survivors cannot publish into a shrunken window
    // before the controller's alive-set reflects the departure (the entry-
    // stabilization barrier orders the flip ahead of their publishes).
    {
      std::lock_guard lock(replay_mu_);
      if (rank >= 0 && rank < config_.world_size) {
        alive_[static_cast<size_t>(rank)] =
            (kind == PointKind::kRankUp) ? 1 : 0;
      }
      Record(kind, rank, kind == PointKind::kRankUp ? "UP" : "DOWN");
      if (kind == PointKind::kRankDown) MaybeCloseWindowLocked();
    }
    cv_.notify_all();
    Perturb(kind, rank);
    return;
  }

  if (kind == PointKind::kHandoffSend && config_.enforce_order) {
    std::unique_lock lock(replay_mu_);
    const int w = window_;
    const std::vector<int> perm = PermForWindow(w);
    const auto my_turn = [&] {
      if (window_ != w) return true;
      // Skip ranks that died: their turn never comes, and waiting for it
      // would turn every post-crash window into an order_wait_ms stall.
      size_t pos = static_cast<size_t>(perm_pos_);
      while (pos < perm.size() &&
             alive_[static_cast<size_t>(perm[pos])] == 0) {
        ++pos;
      }
      return pos < perm.size() && perm[pos] == rank;
    };
    if (!cv_.wait_for(lock, std::chrono::milliseconds(config_.order_wait_ms),
                      my_turn)) {
      // Participation was not uniform (or another group shares the
      // listener): degrade to perturbation rather than stall the group.
      ++stats_.enforcement_misses;
      Record(kind, rank, "MISS");
    } else {
      Record(kind, rank, "");
    }
    lock.unlock();
    return;  // the wait itself is the perturbation
  }

  if (kind == PointKind::kHandoffPublished) {
    std::unique_lock lock(replay_mu_);
    if (config_.fault && window_ == config_.fault->window &&
        rank == config_.fault->rank && payload.size() >= 2) {
      // "Reorder one hand-off": rotate the published chunk by one float
      // (one byte for sub-float payloads). Readers past the next barrier
      // see a chunk whose elements arrive in the wrong order.
      const size_t unit = payload.size() >= 2 * sizeof(float)
                              ? sizeof(float)
                              : size_t{1};
      std::vector<std::byte> head(payload.begin(),
                                  payload.begin() + static_cast<ptrdiff_t>(unit));
      std::memmove(payload.data(), payload.data() + unit,
                   payload.size() - unit);
      std::memcpy(payload.data() + (payload.size() - unit), head.data(), unit);
      ++stats_.faults_injected;
      Record(kind, rank, "FAULT");
    } else {
      Record(kind, rank, "");
    }
    if (config_.enforce_order) {
      // Advance past this rank's position (searching forward keeps the
      // cursor sane even after an enforcement miss published out of turn).
      const std::vector<int> perm = PermForWindow(window_);
      size_t pos = static_cast<size_t>(perm_pos_);
      while (pos < perm.size() && perm[pos] != rank) ++pos;
      perm_pos_ = static_cast<int>(
          pos < perm.size() ? pos + 1 : perm.size());
    }
    ++published_in_window_;
    MaybeCloseWindowLocked();
    lock.unlock();
    cv_.notify_all();
    Perturb(kind, rank);
    return;
  }

  Perturb(kind, rank);
}

void ScheduleController::ResetRunState() {
  std::lock_guard lock(replay_mu_);
  window_ = 0;
  published_in_window_ = 0;
  perm_pos_ = 0;
  alive_.assign(static_cast<size_t>(config_.world_size), 1);
  trace_.clear();
  trace_next_ = 0;
}

ScheduleController::Stats ScheduleController::stats() const {
  std::lock_guard lock(replay_mu_);
  return stats_;
}

std::string ScheduleController::Trace() const {
  std::lock_guard lock(replay_mu_);
  std::ostringstream oss;
  const size_t n = trace_.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t idx =
        n < config_.trace_capacity ? i : (trace_next_ + i) % n;
    oss << trace_[idx] << '\n';
  }
  return oss.str();
}

}  // namespace acps::check
