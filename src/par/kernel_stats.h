// Per-kernel call/time/FLOP accounting for the hot compute paths.
//
// The compute kernels (matrix_ops, top-k selection, QR) open a KernelTimer
// naming themselves and their FLOP count; when accounting is enabled the
// timer records wall time and flops into a process-wide table. Disabled
// (the default), the constructor is one relaxed atomic load and nothing is
// recorded — kernels stay unobserved-cost-free like the obs tracer.
//
// acps::obs exports this table as metrics / a FLOP-rate report
// (obs/kernel_metrics.h); keeping the collection side here preserves the
// layering (tensor/linalg must not depend on obs).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace acps::par {

struct KernelStat {
  uint64_t calls = 0;
  uint64_t ns = 0;     // accumulated wall time
  uint64_t flops = 0;  // accumulated floating-point operations

  // Achieved rate over the accumulated window; 0 when nothing ran.
  [[nodiscard]] double gflops() const noexcept {
    return ns == 0 ? 0.0 : static_cast<double>(flops) / static_cast<double>(ns);
  }
};

void SetKernelStatsEnabled(bool enabled);
[[nodiscard]] bool KernelStatsEnabled();

// Adds one call of `ns` wall-nanoseconds and `flops` operations to `name`.
// No-op while disabled. Thread-safe.
void RecordKernel(const char* name, uint64_t ns, uint64_t flops);

// Snapshot of all kernels recorded so far, sorted by name.
[[nodiscard]] std::vector<std::pair<std::string, KernelStat>>
KernelStatsSnapshot();

void ResetKernelStats();

// RAII recorder: stamps a clock only when accounting is enabled.
class KernelTimer {
 public:
  KernelTimer(const char* name, uint64_t flops);
  ~KernelTimer();

  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  const char* name_;  // nullptr when accounting was off at construction
  uint64_t flops_;
  uint64_t begin_ns_;
};

}  // namespace acps::par
