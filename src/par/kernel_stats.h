// Per-kernel call/time/FLOP/traffic accounting for the hot compute paths.
//
// The compute kernels (matrix_ops, top-k selection, QR) open a KernelTimer
// naming themselves, their FLOP count, and (optionally) the bytes the call
// moves; when accounting is enabled the timer records wall time, flops and
// traffic into a process-wide table. Disabled (the default), the
// constructor is one relaxed atomic load and nothing is recorded — kernels
// stay unobserved-cost-free like the obs tracer.
//
// The packed-panel GEMM layer (tensor/matrix_ops.cc, DESIGN.md §6e)
// additionally reports how much data it staged into packed panels and how
// often a packed panel was reused by a micro-kernel sweep, via
// KernelTimer::AddPanel from inside the parallel workers (relaxed atomics
// on the caller's timer, flushed once at destruction).
//
// acps::obs exports this table as metrics / a FLOP-rate report
// (obs/kernel_metrics.h); keeping the collection side here preserves the
// layering (tensor/linalg must not depend on obs).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace acps::par {

struct KernelStat {
  uint64_t calls = 0;
  uint64_t ns = 0;     // accumulated wall time
  uint64_t flops = 0;  // accumulated floating-point operations
  // Operand + result bytes the calls touched (shape-derived: each operand
  // counted once per logical pass, not per cache miss).
  uint64_t bytes = 0;
  // Bytes staged into packed panels (pure layout copies), and the number of
  // micro-kernel sweeps served by an already-packed panel — the panel-reuse
  // ratio panel_reuses/calls is what cache blocking buys (DESIGN.md §6e).
  uint64_t pack_bytes = 0;
  uint64_t panel_reuses = 0;

  // Achieved rate over the accumulated window; 0 when nothing ran.
  [[nodiscard]] double gflops() const noexcept {
    return ns == 0 ? 0.0 : static_cast<double>(flops) / static_cast<double>(ns);
  }
  // Logical traffic rate in GB/s over the accumulated window.
  [[nodiscard]] double gbps() const noexcept {
    return ns == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(ns);
  }
};

void SetKernelStatsEnabled(bool enabled);
[[nodiscard]] bool KernelStatsEnabled();

// Adds one call of `ns` wall-nanoseconds, `flops` operations and `bytes`
// moved to `name`. No-op while disabled. Thread-safe.
void RecordKernel(const char* name, uint64_t ns, uint64_t flops,
                  uint64_t bytes = 0);

// Adds packed-panel traffic (bytes copied into pack scratch, micro-kernel
// sweeps served from an already-packed panel) to `name` without opening a
// new call. No-op while disabled. Thread-safe.
void RecordKernelPack(const char* name, uint64_t pack_bytes,
                      uint64_t panel_reuses);

// Snapshot of all kernels recorded so far, sorted by name.
[[nodiscard]] std::vector<std::pair<std::string, KernelStat>>
KernelStatsSnapshot();

void ResetKernelStats();

// RAII recorder: stamps a clock only when accounting is enabled.
class KernelTimer {
 public:
  KernelTimer(const char* name, uint64_t flops, uint64_t bytes = 0);
  ~KernelTimer();

  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

  // Accumulates packed-panel traffic for this call. Safe to call from the
  // pool workers of the region the timer wraps (relaxed atomics); flushed
  // into the table when the timer closes. No-op while accounting is off.
  void AddPanel(uint64_t pack_bytes, uint64_t panel_reuses) {
    if (name_ == nullptr) return;
    pack_bytes_.fetch_add(pack_bytes, std::memory_order_relaxed);
    panel_reuses_.fetch_add(panel_reuses, std::memory_order_relaxed);
  }

 private:
  const char* name_;  // nullptr when accounting was off at construction
  uint64_t flops_;
  uint64_t bytes_;
  uint64_t begin_ns_;
  std::atomic<uint64_t> pack_bytes_{0};
  std::atomic<uint64_t> panel_reuses_{0};
};

}  // namespace acps::par
