#include "par/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <string>

namespace acps::par {
namespace {

// 0 = auto (env / hardware); > 0 = fixed via SetNumThreads.
ACPS_LOCK_LEVEL(75) g_budget_mu;
int g_fixed_threads = 0;
int g_resolved_threads = 0;  // cache of the auto resolution

int ResolveAuto() {
  const char* env = std::getenv("ACPS_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1) {
      return static_cast<int>(v < kMaxThreads ? v : kMaxThreads);
    }
    // Malformed values fall through to the hardware default.
  }
  return HardwareThreads();
}

}  // namespace

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int NumThreads() {
  std::lock_guard lock(g_budget_mu);
  if (g_fixed_threads > 0) return g_fixed_threads;
  if (g_resolved_threads == 0) g_resolved_threads = ResolveAuto();
  return g_resolved_threads;
}

void SetNumThreads(int n) {
  if (n < 0 || n > kMaxThreads) {
    throw std::invalid_argument("SetNumThreads: budget out of [0, " +
                                std::to_string(kMaxThreads) + "]: " +
                                std::to_string(n));
  }
  {
    std::lock_guard lock(g_budget_mu);
    g_fixed_threads = n;
    g_resolved_threads = 0;  // re-resolve on next auto lookup
  }
  GlobalPool().Resize(NumThreads());
}

int WorkerThreadBudget(int requested, int world_size) {
  if (requested > 0) return requested < kMaxThreads ? requested : kMaxThreads;
  const int world = world_size > 1 ? world_size : 1;
  const int per_worker = NumThreads() / world;
  return per_worker > 1 ? per_worker : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(threads > 1 ? threads : 1) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int w = 0; w < threads_ - 1; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(pool_mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Resize(int threads) {
  const int target = threads > 1 ? threads : 1;
  std::lock_guard region(region_mu_);  // no region may be in flight
  if (target == threads_) return;
  {
    std::lock_guard lock(pool_mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  {
    std::lock_guard lock(pool_mu_);
    shutdown_ = false;
    threads_ = target;
    // Respawned workers start at seen_generation 0; the counter must start
    // there too or they would instantly "see" the previous (stale, dangling)
    // job and run it.
    generation_ = 0;
    job_fn_ = nullptr;
    workers_finished_ = 0;
  }
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int w = 0; w < threads_ - 1; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void ThreadPool::RunBlockRange(int participant,
                               const std::function<void(int64_t)>& fn,
                               int64_t nblocks, int participants) {
  // Static partition: participant t owns [t*n/T, (t+1)*n/T).
  const int64_t begin = nblocks * participant / participants;
  const int64_t end = nblocks * (participant + 1) / participants;
  for (int64_t b = begin; b < end; ++b) fn(b);
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t nblocks = 0;
    int participants = 0;
    {
      std::unique_lock lock(pool_mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = job_fn_;
      nblocks = job_nblocks_;
      participants = job_participants_;
    }
    if (fn == nullptr) continue;  // no job in flight (post-resize wake)
    std::exception_ptr error;
    try {
      // The caller is participant 0; worker w is participant w + 1.
      RunBlockRange(worker_index + 1, *fn, nblocks, participants);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(pool_mu_);
      if (error && !first_error_) first_error_ = error;
      ++workers_finished_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::Run(int64_t nblocks, const std::function<void(int64_t)>& fn) {
  if (nblocks <= 0) return;
  std::unique_lock region(region_mu_, std::try_to_lock);
  // threads_ may only be read under region_mu_ (Resize holds it to write).
  if (!region.owns_lock() || threads_ == 1 || nblocks == 1) {
    // Busy (nested / concurrent callers) or nothing to fan out: the serial
    // path is bitwise identical because blocks never share state.
    for (int64_t b = 0; b < nblocks; ++b) fn(b);
    return;
  }
  const int participants = threads_;
  {
    std::lock_guard lock(pool_mu_);
    job_fn_ = &fn;
    job_nblocks_ = nblocks;
    job_participants_ = participants;
    workers_finished_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr caller_error;
  try {
    RunBlockRange(/*participant=*/0, fn, nblocks, participants);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock lock(pool_mu_);
  cv_done_.wait(lock, [&] { return workers_finished_ == participants - 1; });
  const std::exception_ptr worker_error = first_error_;
  first_error_ = nullptr;
  job_fn_ = nullptr;  // the reference dies with this region
  lock.unlock();

  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

ThreadPool& GlobalPool() {
  static ThreadPool pool(NumThreads());
  return pool;
}

}  // namespace acps::par
