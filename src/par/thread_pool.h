// Deterministic parallel compute layer (DESIGN.md §6e).
//
// A small, work-stealing-free thread pool with STATIC partitioning: a
// parallel region splits its index space into contiguous blocks up front and
// every block is executed exactly once, so which thread runs a block can
// never influence results. Combined with the fixed-split reduction trees in
// parallel.h this makes every kernel built on the pool bitwise deterministic
// for ANY thread count — the property the model-checker oracles
// (bitwise baselines, rank invariance) and the Power-SGD family (all workers
// must compute the identical Q basis) rely on.
//
// Nesting / oversubscription: Run() takes the region lock with try_lock.
// When the pool is already busy — e.g. several simulated ring workers
// (comm::ThreadGroup) hit a kernel at once, or a kernel nests inside another
// parallel region — the caller simply executes all blocks inline. Because
// results are partition- and scheduling-independent by construction, the
// serial fallback is bitwise identical to the parallel path.
//
// This module is intentionally dependency-free (standard library only), like
// check/sched_point.h: every compute layer links it, so an include of any
// other acps module here would invert the layering (tools/lint.sh enforces
// this).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/lock_level.h"

namespace acps::par {

// Hard cap on the thread budget; protects against absurd ACPS_NUM_THREADS
// values (the pool allocates one std::thread per extra worker).
inline constexpr int kMaxThreads = 256;

// Threads the hardware offers (>= 1 even when the runtime reports 0).
[[nodiscard]] int HardwareThreads();

// The process-wide compute-thread budget, resolved on first use:
//   1. a value fixed by SetNumThreads(n > 0), else
//   2. the ACPS_NUM_THREADS environment variable (clamped to
//      [1, kMaxThreads]; malformed values are ignored), else
//   3. HardwareThreads().
[[nodiscard]] int NumThreads();

// n >= 1 fixes the budget (and resizes the global pool); n == 0 drops any
// fixed value and re-resolves from the environment / hardware. Safe to call
// between parallel regions only (tests, trainer setup) — not from inside one.
void SetNumThreads(int n);

// Budget for one of `world_size` simulated ring workers: `requested` if
// > 0, else NumThreads() divided by the worker count (min 1), so the
// pool and the ThreadGroup together never oversubscribe the machine.
[[nodiscard]] int WorkerThreadBudget(int requested, int world_size);

class ThreadPool {
 public:
  // Spawns `threads - 1` workers; the caller of Run() is always the first
  // participant, so `threads == 1` means a pool with no worker threads.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const noexcept { return threads_; }

  // Joins all workers and respawns for the new budget. Must not be called
  // from inside a running region.
  void Resize(int threads);

  // Executes fn(block) for every block in [0, nblocks), distributing blocks
  // statically: participant t runs the contiguous range
  // [t*nblocks/T, (t+1)*nblocks/T). Runs inline (serially, same results)
  // when the pool is busy, has no workers, or nblocks <= 1. Exceptions
  // thrown by fn are rethrown on the calling thread (first one wins).
  void Run(int64_t nblocks, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop(int worker_index);
  void RunBlockRange(int participant, const std::function<void(int64_t)>& fn,
                     int64_t nblocks, int participants);

  int threads_;

  // Levels 60/70: a region acquires region_mu_ first, then pool_mu_ for
  // each job hand-off, so the region lock sits above the pool lock in the
  // hierarchy. Nested regions re-enter region_mu_ via try_to_lock only
  // (non-blocking, exempt from ordering).
  ACPS_LOCK_LEVEL(60) region_mu_;  // held for the duration of one parallel region

  ACPS_LOCK_LEVEL(70) pool_mu_;  // guards everything below
  ConditionVariable cv_start_;
  ConditionVariable cv_done_;
  uint64_t generation_ = 0;
  int workers_finished_ = 0;
  bool shutdown_ = false;
  const std::function<void(int64_t)>* job_fn_ = nullptr;
  int64_t job_nblocks_ = 0;
  int job_participants_ = 0;
  std::exception_ptr first_error_;

  std::vector<std::thread> workers_;
};

// The process-wide pool all kernels share, sized to NumThreads(). Created
// lazily on first use.
[[nodiscard]] ThreadPool& GlobalPool();

}  // namespace acps::par
