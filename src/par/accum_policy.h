// Accumulation-policy annotation for floating-point reduction kernels.
//
// The determinism contract (DESIGN.md "Determinism") demands that every
// floating-point reduction have a schedule-independent order: float addition
// does not associate, so "sum these in whatever order the threads finish"
// yields run-to-run drift. Most kernels get that order from
// par::ParallelReduce's fixed combine tree. The few that legitimately sum
// serially (per-column Householder dots, rank-ordered scale averaging)
// declare their ordering contract by opening the function body with
//
//   ACPS_ACCUM_POLICY(serial_index_order);
//
// The annotation expands to nothing at runtime — it exists for the reader
// and for acps-analyze's float-loop-accum rule, which flags any loop-carried
// float/double accumulation in the numeric-kernel directories whose
// enclosing function neither routes through ParallelReduce nor carries this
// annotation. Recognized policies (a reviewer contract, not an enum):
//
//   serial_index_order   one thread walks indices 0..n-1; order is the
//                        index order regardless of the pool size
//   fixed_tree           pairwise combine over a shape fixed by n and the
//                        chunk size (what ParallelReduce implements)
//   rank_order           folds contributions in rank order 0..world-1
#pragma once

#define ACPS_ACCUM_POLICY(policy) \
  static_assert(true, "accumulation order: " #policy)
