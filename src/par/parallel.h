// ParallelFor / ParallelReduce on top of the static thread pool.
//
// Determinism contract (DESIGN.md §6e):
//  * For-style kernels write disjoint outputs, so any partition yields the
//    same results; blocks are sized from the budget only to bound overhead.
//  * Reduce-style kernels split the index space into FIXED chunks of exactly
//    `chunk` elements — a function of (n, chunk) alone, never of the thread
//    count — and combine the chunk partials pairwise in a fixed left-to-
//    right binary tree. The floating-point result is therefore identical
//    for 1, 2, 4, ... threads, and identical to the serial execution.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "par/thread_pool.h"

namespace acps::par {

// Default minimum elements per block; small inputs stay serial so the pool
// never costs more than it saves.
inline constexpr int64_t kDefaultGrain = 1 << 14;

// Contiguous blocks [0, n) is split into for ParallelFor: enough to feed
// every pool thread, but never fewer than `grain` elements per block.
[[nodiscard]] inline int64_t NumForBlocks(int64_t grain, int64_t n) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  const int64_t by_grain = (n + grain - 1) / grain;
  const int64_t threads = NumThreads();
  return by_grain < threads ? by_grain : threads;
}

// Runs fn(block, begin, end) for every block of the NumForBlocks(grain, n)
// partition. Block boundaries are aligned down to a multiple of `align`
// (e.g. 8 for bit-packing kernels, so no two blocks touch the same byte).
inline void ParallelForBlocks(
    int64_t grain, int64_t n, int64_t align,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  const int64_t nblocks = NumForBlocks(grain, n);
  if (nblocks <= 0) return;
  if (nblocks == 1) {
    fn(0, 0, n);
    return;
  }
  GlobalPool().Run(nblocks, [&](int64_t b) {
    int64_t begin = n * b / nblocks;
    int64_t end = n * (b + 1) / nblocks;
    begin -= begin % align;
    if (b + 1 < nblocks) end -= end % align;
    if (begin < end) fn(b, begin, end);
  });
}

// Element-range parallel loop: fn(begin, end) over a partition of [0, n).
inline void ParallelFor(int64_t grain, int64_t n,
                        const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForBlocks(grain, n, /*align=*/1,
                    [&](int64_t, int64_t begin, int64_t end) {
                      fn(begin, end);
                    });
}

// Deterministic tree reduction over [0, n). `map(begin, end)` produces the
// partial for one fixed chunk; partials are combined pairwise in a fixed
// left-to-right tree. Returns `init` for empty ranges. The chunk grid
// depends only on (n, chunk), so the result is thread-count invariant.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T ParallelReduce(int64_t chunk, int64_t n, T init, MapFn map,
                               CombineFn combine) {
  if (n <= 0) return init;
  if (chunk < 1) chunk = 1;
  const int64_t nchunks = (n + chunk - 1) / chunk;
  if (nchunks == 1) return map(static_cast<int64_t>(0), n);

  std::vector<T> partials(static_cast<size_t>(nchunks), init);
  // Blocks of whole chunks keep per-task overhead bounded; the chunk grid
  // (and therefore every partial) is unaffected by the blocking.
  const int64_t threads = NumThreads();
  const int64_t nblocks = nchunks < threads ? nchunks : threads;
  GlobalPool().Run(nblocks, [&](int64_t b) {
    const int64_t c0 = nchunks * b / nblocks;
    const int64_t c1 = nchunks * (b + 1) / nblocks;
    for (int64_t c = c0; c < c1; ++c) {
      const int64_t begin = c * chunk;
      const int64_t end = begin + chunk < n ? begin + chunk : n;
      partials[static_cast<size_t>(c)] = map(begin, end);
    }
  });

  // Fixed pairwise combine tree: ((p0⊕p1)⊕(p2⊕p3))⊕... independent of how
  // the partials were computed.
  int64_t width = nchunks;
  while (width > 1) {
    const int64_t half = width / 2;
    for (int64_t i = 0; i < half; ++i) {
      partials[static_cast<size_t>(i)] =
          combine(partials[static_cast<size_t>(2 * i)],
                  partials[static_cast<size_t>(2 * i + 1)]);
    }
    if (width % 2 == 1) {
      partials[static_cast<size_t>(half)] =
          partials[static_cast<size_t>(width - 1)];
    }
    width = half + width % 2;
  }
  return partials[0];
}

}  // namespace acps::par
