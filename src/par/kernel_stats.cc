#include "par/kernel_stats.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>

#include "par/lock_level.h"

namespace acps::par {
namespace {

std::atomic<bool> g_enabled{false};
ACPS_LOCK_LEVEL(80) g_stats_mu;
std::map<std::string, KernelStat>& Table() {
  static std::map<std::string, KernelStat> table;
  return table;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SetKernelStatsEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool KernelStatsEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void RecordKernel(const char* name, uint64_t ns, uint64_t flops,
                  uint64_t bytes) {
  if (!KernelStatsEnabled()) return;
  std::lock_guard lock(g_stats_mu);
  KernelStat& s = Table()[name];
  ++s.calls;
  s.ns += ns;
  s.flops += flops;
  s.bytes += bytes;
}

void RecordKernelPack(const char* name, uint64_t pack_bytes,
                      uint64_t panel_reuses) {
  if (!KernelStatsEnabled()) return;
  if (pack_bytes == 0 && panel_reuses == 0) return;
  std::lock_guard lock(g_stats_mu);
  KernelStat& s = Table()[name];
  s.pack_bytes += pack_bytes;
  s.panel_reuses += panel_reuses;
}

std::vector<std::pair<std::string, KernelStat>> KernelStatsSnapshot() {
  std::lock_guard lock(g_stats_mu);
  return {Table().begin(), Table().end()};
}

void ResetKernelStats() {
  std::lock_guard lock(g_stats_mu);
  Table().clear();
}

KernelTimer::KernelTimer(const char* name, uint64_t flops, uint64_t bytes)
    : name_(KernelStatsEnabled() ? name : nullptr),
      flops_(flops),
      bytes_(bytes),
      begin_ns_(name_ != nullptr ? NowNs() : 0) {}

KernelTimer::~KernelTimer() {
  if (name_ == nullptr) return;
  RecordKernel(name_, NowNs() - begin_ns_, flops_, bytes_);
  RecordKernelPack(name_, pack_bytes_.load(std::memory_order_relaxed),
                   panel_reuses_.load(std::memory_order_relaxed));
}

}  // namespace acps::par
