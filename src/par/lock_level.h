// Lock-hierarchy annotations and the runtime lockset validator
// (DESIGN.md "Static analysis": rule family 3, lock-order).
//
// Every mutex in src/ declares its place in the repo-wide lock hierarchy:
//
//   ACPS_LOCK_LEVEL(40) contract_mu_;   // a mutex at level 40
//
// The macro IS the declaration's type. In normal builds it aliases
// std::mutex, so the annotation costs nothing and the ABI is unchanged. In
// lock-checked builds (ACPS_LOCK_CHECK, defined by the tsan preset) it
// expands to LeveledMutex<40>, whose lock() asserts against a thread-local
// lockset that every level already held is strictly lower — the dynamic
// twin of the static analysis acps-analyze performs over the same
// annotations. A violation throws std::logic_error naming both levels, so
// an inversion fails the test that executed it instead of deadlocking some
// later run.
//
// Hierarchy (acquire downward only; levels are unique per mutex so the
// static acquisition graph stays a DAG by construction):
//
//   10  core::TrainingService::service_mu_   job registry + admission
//   20  comm::Transport::transport_mu_       capacity accounting, obs hooks
//   30  comm::detail::GroupState::group_mu   barrier + membership
//   32  comm::detail::GroupState::err_mu     first-error slot
//   40  comm::ContractChecker::contract_mu_  deposits + watchdog status
//                                            (taken under group_mu: the
//                                            watchdog composes BlockedReport
//                                            while holding the barrier lock)
//   50  check::ScheduleController::replay_mu_  model-checker replay state
//   60  par::ThreadPool::region_mu_          one parallel region in flight
//   70  par::ThreadPool::pool_mu_            job slot + generation counter
//   75  par (anon)::g_budget_mu              thread-budget resolution
//   80  par (anon)::g_stats_mu               kernel-stats table
//   90  obs::Tracer::trace_mu_               span buffer
//   91  obs::MetricsRegistry::registry_mu_   instrument table
//   92  obs::Histogram::hist_mu_             (taken under registry_mu_ by
//                                            DumpText)
//   95  core (fn-local)::result_mu           trainer epoch-history slot
//
// Like the rest of src/par this header is standard-library-only: it is
// included by every layer that owns a mutex, so an acps include here would
// invert the layering (tools/analyzer `include-layering`).
//
// Condition variables: std::condition_variable only accepts
// std::unique_lock<std::mutex>, which LeveledMutex is not under
// ACPS_LOCK_CHECK. Declare cvs that wait on an annotated mutex as
// acps::par::ConditionVariable — std::condition_variable in normal builds,
// condition_variable_any in checked ones (where wait() routes unlock/lock
// through the validator, keeping the lockset exact across waits).
//
// Naming note: the issue-level name for the checked build would be
// ACPS_CHECK, but that identifier is the assertion macro in tensor/check.h,
// so the build flag is ACPS_LOCK_CHECK.
#pragma once

#include <condition_variable>
#include <mutex>  // the wrapper's backing mutex lives here

#ifdef ACPS_LOCK_CHECK
#include <cstddef>
#include <stdexcept>
#include <string>
#endif

namespace acps::par {

#ifdef ACPS_LOCK_CHECK

namespace lockdetail {

// Levels held by this thread, in acquisition order. The storage must be
// trivially destructible: static-lifetime owners (the shim ThreadPool,
// tracer singletons) lock their mutexes from atexit destructors, which on
// glibc run AFTER the main thread's TLS destructors — a thread_local
// std::vector here is a heap-use-after-free at exactly that moment. A POD
// array has no TLS destructor, so the lockset stays valid for the whole
// process lifetime. inline thread_local: one instance per thread, all TUs.
inline constexpr std::size_t kMaxHeldLocks = 32;
inline thread_local int t_held_levels[kMaxHeldLocks];
inline thread_local std::size_t t_held_count = 0;

inline void AssertAcquirable(int level) {
  for (std::size_t i = 0; i < t_held_count; ++i) {
    if (t_held_levels[i] >= level) {
      throw std::logic_error(
          "lock-order violation: acquiring lock level " +
          std::to_string(level) + " while holding level " +
          std::to_string(t_held_levels[i]) +
          " (hierarchy in src/par/lock_level.h; acquisitions must strictly "
          "descend it)");
    }
  }
}

inline void PushLevel(int level) {
  if (t_held_count == kMaxHeldLocks) {
    throw std::logic_error(
        "lockset validator: thread holds more than " +
        std::to_string(kMaxHeldLocks) +
        " locks — raise kMaxHeldLocks in src/par/lock_level.h if this "
        "nesting is intentional");
  }
  t_held_levels[t_held_count++] = level;
}

inline void PopLevel(int level) {
  // Search from the back: condition-variable waits release the innermost
  // (most recently pushed) occurrence.
  for (std::size_t i = t_held_count; i > 0; --i) {
    if (t_held_levels[i - 1] == level) {
      for (std::size_t j = i - 1; j + 1 < t_held_count; ++j) {
        t_held_levels[j] = t_held_levels[j + 1];
      }
      --t_held_count;
      return;
    }
  }
  throw std::logic_error("lockset validator: unlocking level " +
                         std::to_string(level) + " that this thread holds "
                         "no record of");
}

}  // namespace lockdetail

// Validating mutex: Lockable, so lock_guard / unique_lock / scoped_lock and
// condition_variable_any all work unchanged. try_lock() skips the order
// assertion — a non-blocking acquisition cannot deadlock, and the pool's
// nested-region try_to_lock legitimately targets its own level.
template <int Level>
class LeveledMutex {
 public:
  static constexpr int level = Level;

  void lock() {
    lockdetail::AssertAcquirable(Level);
    m_.lock();
    lockdetail::PushLevel(Level);
  }

  bool try_lock() {
    if (!m_.try_lock()) return false;
    lockdetail::PushLevel(Level);
    return true;
  }

  void unlock() {
    lockdetail::PopLevel(Level);
    m_.unlock();
  }

 private:
  std::mutex m_;  // lint:allow(lock-annotation) the wrapper's backing mutex
};

using ConditionVariable = std::condition_variable_any;

#else  // !ACPS_LOCK_CHECK

// Annotation-only build: the level lives in the type for acps-analyze to
// read; the object is exactly a std::mutex.
template <int Level>
using LeveledMutex = std::mutex;  // alias target, not a declaration site

using ConditionVariable = std::condition_variable;

#endif  // ACPS_LOCK_CHECK

}  // namespace acps::par

// The annotation macro: use as the TYPE of the mutex declaration.
//   ACPS_LOCK_LEVEL(30) group_mu;
// acps-analyze parses these declarations into its level table and rejects
// any std::mutex / std::shared_mutex in src/ declared without one
// (rule `lock-annotation`).
#define ACPS_LOCK_LEVEL(n) ::acps::par::LeveledMutex<(n)>
