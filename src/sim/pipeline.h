// Iteration-time simulator: prices one training iteration of each method
// (S-SGD, Sign-SGD, Top-k SGD, Power-SGD, Power-SGD*, ACP-SGD) under each
// system-optimization level (naive / WFBP / WFBP+TF) on a configurable
// cluster — the engine behind every timing table and figure (Fig 2, 3, 4,
// 8-13, Table III).
//
// Model: two resources per worker — a COMPUTE stream (back-propagation and
// compression kernels) and a COMM stream (collectives, priced by the α-β
// CostModel). WFBP issues a tensor/bucket's collective the moment its
// compute finishes; tensor fusion groups tensors into byte-budgeted buckets
// (paper's 25MB default; ACP-SGD scales the budget by the compression rate).
// Power-SGD* compression runs on a side stream concurrently with BP and its
// FLOP-bound part is inflated by the calibrated interference factor —
// reproducing the paper's "WFBP harms Power-SGD" observation.
#pragma once

#include <string>
#include <vector>

#include "comm/cost_model.h"
#include "fusion/bucket_assigner.h"
#include "models/layer_spec.h"
#include "sim/calibration.h"

namespace acps::sim {

enum class Method {
  kSSGD,
  kSignSGD,
  kTopkSGD,
  kPowerSGD,      // original: compress+communicate packed after BP
  kPowerSGDStar,  // Power-SGD on the WFBP+TF communication hook
  kACPSGD,
};

[[nodiscard]] std::string MethodName(Method m);

enum class SysOptLevel {
  kNaive,   // aggregate after BP, one collective per tensor, no overlap
  kWfbp,    // per-tensor collectives overlapped with remaining BP
  kWfbpTf,  // WFBP + tensor fusion (byte-budgeted buckets)
};

[[nodiscard]] std::string SysOptName(SysOptLevel level);

// One scheduled interval, for Fig. 4-style schedule traces.
struct TraceEvent {
  std::string name;
  std::string resource;  // "compute" | "comm"
  double start_s = 0.0;
  double end_s = 0.0;
};

struct SimConfig {
  Method method = Method::kSSGD;
  SysOptLevel sysopt = SysOptLevel::kWfbpTf;
  int world_size = 32;
  comm::NetworkSpec net = comm::NetworkSpec::Ethernet10G();
  Calibration calib = Calibration::Default();
  int batch_size = 0;  // 0 => the model's default (paper settings)
  int64_t rank = 4;    // low-rank methods
  double topk_ratio = 0.001;
  int64_t buffer_bytes = fusion::kDefaultBufferBytes;
  // ACP-SGD step parity: 1 => P step (communicate [n×r]), 0 => Q step.
  // Benches average both parities, as a real run alternates them.
  int acp_parity = 1;
  std::vector<TraceEvent>* trace = nullptr;  // optional schedule recording
};

struct Breakdown {
  double fwdbwd_s = 0.0;        // pure FF&BP busy time
  double compress_s = 0.0;      // compression + decompression busy time
  double comm_exposed_s = 0.0;  // non-overlapped communication
  double total_s = 0.0;

  [[nodiscard]] double total_ms() const { return total_s * 1e3; }
};

// Simulates one iteration. For ACP-SGD this simulates the parity in
// `config.acp_parity`; use SimulateIterationAvg for the steady-state mean.
[[nodiscard]] Breakdown SimulateIteration(const models::ModelSpec& model,
                                          const SimConfig& config);

// Mean of the two ACP parities (identical to SimulateIteration for other
// methods).
[[nodiscard]] Breakdown SimulateIterationAvg(const models::ModelSpec& model,
                                             const SimConfig& config);

}  // namespace acps::sim
