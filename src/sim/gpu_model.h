// GPU execution-time model: prices forward/backward layers and the
// compression kernels of every method on the calibrated GpuSpec.
#pragma once

#include "models/layer_spec.h"
#include "sim/calibration.h"

namespace acps::sim {

// Cost of one compression kernel chain for a single matrix tensor, split by
// what the work contends for:
//  * interferable_s — FLOP- and memory-bound work; when executed on a side
//    CUDA stream concurrently with back-propagation (Power-SGD*), it
//    competes for SMs/bandwidth and is inflated by the interference factor;
//  * launch_s — kernel-launch / framework-dispatch overhead, which does not
//    contend with BP compute.
struct LowRankKernelCost {
  double interferable_s = 0.0;
  double launch_s = 0.0;
  [[nodiscard]] double total() const { return interferable_s + launch_s; }

  LowRankKernelCost& operator+=(const LowRankKernelCost& o) {
    interferable_s += o.interferable_s;
    launch_s += o.launch_s;
    return *this;
  }
};

class GpuModel {
 public:
  GpuModel(GpuSpec spec, int batch_size);

  [[nodiscard]] const GpuSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int batch() const noexcept { return batch_; }

  // Small-batch efficiency multiplier.
  [[nodiscard]] double BatchEfficiency() const;

  // Forward time of the whole model (one kernel per parameterized op).
  [[nodiscard]] double ForwardTime(const models::ModelSpec& model) const;

  // Backward time of one layer (≈ 2x forward FLOPs).
  [[nodiscard]] double BackwardTime(const models::LayerSpec& layer) const;

  // --- Low-rank compression kernels (per matrix tensor, rank r) ---------
  // Power-SGD phase P: EF-add + P-GEMM.
  [[nodiscard]] LowRankKernelCost PowerSgdPhasePCost(int64_t n, int64_t m,
                                                     int64_t r) const;
  // Power-SGD phase Q: orthogonalize aggregated P + Q-GEMM.
  [[nodiscard]] LowRankKernelCost PowerSgdPhaseQCost(int64_t n, int64_t m,
                                                     int64_t r) const;
  // ACP-SGD per-step compression: orthogonalize carried factor + single
  // factor GEMM + fused local-reconstruct EF update (§IV-A's halved cost).
  [[nodiscard]] LowRankKernelCost AcpCompressCost(int64_t n, int64_t m,
                                                  int64_t r) const;
  // Decompression M̂ = P·Qᵀ plus the EF residual update pass.
  [[nodiscard]] LowRankKernelCost ReconstructCost(int64_t n, int64_t m,
                                                  int64_t r) const;

  [[nodiscard]] double MemSeconds(double bytes) const;

 private:
  [[nodiscard]] double Throughput(models::OpClass op) const;
  [[nodiscard]] double GemmSeconds(double flops) const;  // low-rank GEMMs

  GpuSpec spec_;
  int batch_;
};

}  // namespace acps::sim
