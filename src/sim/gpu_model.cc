#include "sim/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace acps::sim {

GpuModel::GpuModel(GpuSpec spec, int batch_size)
    : spec_(spec), batch_(batch_size) {
  ACPS_CHECK_MSG(batch_ >= 1, "batch size must be >= 1");
}

double GpuModel::BatchEfficiency() const {
  const double ratio = static_cast<double>(batch_) / spec_.batch_knee;
  return std::min(1.0, std::pow(ratio, spec_.batch_eff_exp));
}

double GpuModel::Throughput(models::OpClass op) const {
  switch (op) {
    case models::OpClass::kConv:
      return spec_.conv_tflops * 1e12;
    case models::OpClass::kGemm:
      return spec_.gemm_tflops * 1e12;
    case models::OpClass::kElementwise:
      return spec_.mem_gbps * 1e9 / 4.0;  // one float read per "flop"
  }
  ACPS_FAIL_MSG("unknown op class");
}

double GpuModel::GemmSeconds(double flops) const {
  return flops / (spec_.lowrank_tflops * 1e12);
}

double GpuModel::MemSeconds(double bytes) const {
  return bytes / (spec_.mem_gbps * 1e9);
}

double GpuModel::ForwardTime(const models::ModelSpec& model) const {
  const double eff = BatchEfficiency();
  double total = 0.0;
  for (const auto& l : model.layers) {
    total += spec_.kernel_launch_s +
             l.fwd_flops_per_sample * batch_ / (Throughput(l.op_class) * eff);
  }
  return total;
}

double GpuModel::BackwardTime(const models::LayerSpec& layer) const {
  // Backward computes both the input gradient and the weight gradient:
  // ~2x the forward FLOPs.
  const double eff = BatchEfficiency();
  return spec_.kernel_launch_s +
         2.0 * layer.fwd_flops_per_sample * batch_ /
             (Throughput(layer.op_class) * eff);
}

LowRankKernelCost GpuModel::PowerSgdPhasePCost(int64_t n, int64_t m,
                                               int64_t r) const {
  // EF-add (one pass over the n×m residual) + P-GEMM.
  LowRankKernelCost c;
  const double nm = static_cast<double>(n) * static_cast<double>(m);
  c.interferable_s = GemmSeconds(2.0 * nm * static_cast<double>(r)) +
                     MemSeconds(2.0 * 4.0 * nm);
  c.launch_s = 2.0 * spec_.kernel_launch_s;
  return c;
}

LowRankKernelCost GpuModel::PowerSgdPhaseQCost(int64_t n, int64_t m,
                                               int64_t r) const {
  // Orthogonalize the aggregated P + Q-GEMM.
  LowRankKernelCost c;
  const double nm = static_cast<double>(n) * static_cast<double>(m);
  const double orth_flops = 2.0 * static_cast<double>(n) *
                            static_cast<double>(r) * static_cast<double>(r);
  c.interferable_s =
      GemmSeconds(2.0 * nm * static_cast<double>(r) + orth_flops) +
      MemSeconds(4.0 * nm);
  c.launch_s = 2.0 * spec_.kernel_launch_s + spec_.orth_extra_s;
  return c;
}

LowRankKernelCost GpuModel::AcpCompressCost(int64_t n, int64_t m,
                                            int64_t r) const {
  // Orthogonalize carried factor + single factor GEMM + fused EF update
  // (local reconstruct + subtract): the halved compression of §IV-A.
  LowRankKernelCost c;
  const double nm = static_cast<double>(n) * static_cast<double>(m);
  const double avg_dim = 0.5 * static_cast<double>(n + m);
  const double orth_flops =
      2.0 * avg_dim * static_cast<double>(r) * static_cast<double>(r);
  c.interferable_s =
      GemmSeconds(2.0 * nm * static_cast<double>(r) + orth_flops) +
      MemSeconds(2.0 * 4.0 * nm);
  c.launch_s = 2.0 * spec_.kernel_launch_s + spec_.orth_extra_s;
  return c;
}

LowRankKernelCost GpuModel::ReconstructCost(int64_t n, int64_t m,
                                            int64_t r) const {
  // M̂ = P·Qᵀ GEMM + EF residual update pass.
  LowRankKernelCost c;
  const double nm = static_cast<double>(n) * static_cast<double>(m);
  c.interferable_s = GemmSeconds(2.0 * nm * static_cast<double>(r)) +
                     MemSeconds(2.0 * 4.0 * nm);
  c.launch_s = 2.0 * spec_.kernel_launch_s;
  return c;
}

}  // namespace acps::sim
