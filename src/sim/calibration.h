// Calibration constants for the performance simulator.
//
// Every constant is anchored either to published hardware characteristics of
// the paper's testbed (RTX 2080 Ti, PCIe3, 10GbE) or to one of the absolute
// numbers the paper states in prose (see DESIGN.md §5 for the anchor list).
// The simulator's job is to reproduce *shapes* — orderings, ratios,
// crossovers — not absolute milliseconds; EXPERIMENTS.md records both.
#pragma once

namespace acps::sim {

// Effective GPU execution model for one RTX 2080 Ti running PyTorch fp32.
struct GpuSpec {
  // Effective sustained throughput by kernel class (TFLOP/s). Anchored to
  // "ResNet-50 batch 64 FF&BP ≈ 235ms" and "BERT-Base batch 32/seq 64
  // FF&BP ≈ 175ms" implied by Table III / Fig 8.
  double conv_tflops = 7.0;
  double gemm_tflops = 7.0;
  // Batched low-rank GEMMs (n×m · m×r, r ≤ 256) as issued by the fused
  // compression kernels.
  double lowrank_tflops = 8.0;

  // Effective bandwidth for elementwise/memory-bound framework kernels
  // (includes framework dispatch inefficiency).
  double mem_gbps = 200.0;

  // Per-kernel launch + dispatch overhead.
  double kernel_launch_s = 30e-6;

  // Extra cost of one torch.linalg.qr-style orthogonalization call beyond
  // its FLOPs (host synchronization + workspace management).
  double orth_extra_s = 0.1e-3;

  // Per-matrix Python/dispatch overhead of the *original* (non-hook)
  // Power-SGD implementation, which loops matmul/qr per matrix.
  double powersgd_dispatch_s = 0.45e-3;

  // Per-bucket overhead of the Power-SGD* communication hook (bucket
  // view/copy management); memory-bound, so subject to interference.
  double hook_per_bucket_s = 1.3e-3;

  // Small batches under-utilize the GPU: efficiency = min(1,
  // (batch/batch_knee)^batch_eff_exp). Anchored to "BERT-Large batch 8
  // FF&BP ≈ 230ms".
  double batch_knee = 32.0;
  double batch_eff_exp = 0.25;

  // Power-SGD* runs compression on a side CUDA stream concurrently with
  // back-propagation; both compete for SMs and memory bandwidth. The
  // FLOP/memory-bound part of side-stream work executed before BP finishes
  // is charged this inflation factor (its slowdown plus the slowdown it
  // inflicts on BP, lumped into the serialized compute queue). Anchored to
  // "WFBP causes 13% slowdown for Power-SGD on 1 GPU (ResNet-50)" and
  // Table III's Power-SGD* > Power-SGD on the BERTs.
  double interference_factor = 3.0;
};

// Cost model for the quantization / sparsification kernels of §III.
struct QuantCostSpec {
  // Sign-SGD bit-packing: ns per element (multi-pass elementwise chain).
  double sign_pack_ns_per_elem = 0.5;
  // Majority-vote decompression: ns per element per worker blob.
  double sign_vote_ns_per_elem_per_worker = 0.02;
  // Top-k sampled-threshold selection: ns per element (the multi-pass
  // binary search of footnote 2; anchored to "Top-k takes 4x the
  // compression time of Sign-SGD on BERT-Base").
  double topk_select_ns_per_elem = 4.4;
  // Fixed per-tensor overhead of the sparsification kernel chain.
  double topk_per_tensor_s = 0.35e-3;
  double sign_per_tensor_s = 0.10e-3;
  // Scatter/decompress of gathered top-k records: ns per record per worker.
  double topk_scatter_ns_per_record = 1.0;
};

struct Calibration {
  GpuSpec gpu;
  QuantCostSpec quant;

  static Calibration Default() { return Calibration{}; }
};

}  // namespace acps::sim
