#include "sim/trace_export.h"

#include "obs/chrome_trace.h"

namespace acps::sim {

std::string ToChromeTracingJson(const std::vector<TraceEvent>& trace) {
  // Simulated schedules keep the historical row layout: pid 1, one tid per
  // resource (compute=1, comm=2, others=3).
  std::vector<obs::ChromeEvent> events;
  events.reserve(trace.size());
  bool has_other = false;
  for (const auto& e : trace) {
    obs::ChromeEvent ev;
    ev.name = e.name;
    ev.category = e.resource;
    ev.tid = e.resource == "compute" ? 1 : (e.resource == "comm" ? 2 : 3);
    has_other |= ev.tid == 3;
    ev.ts_us = e.start_s * 1e6;
    ev.dur_us = (e.end_s - e.start_s) * 1e6;
    events.push_back(std::move(ev));
  }
  std::vector<obs::RowLabel> rows = {{1, 1, "compute"}, {1, 2, "comm"}};
  if (has_other) rows.push_back({1, 3, "other"});
  return obs::ToChromeTraceJson(events, rows);
}

}  // namespace acps::sim
