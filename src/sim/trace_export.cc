#include "sim/trace_export.h"

#include <sstream>

namespace acps::sim {
namespace {

// Minimal JSON string escaping (names are library-generated but be safe).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToChromeTracingJson(const std::vector<TraceEvent>& trace) {
  std::ostringstream oss;
  oss << "[";
  bool first = true;
  for (const auto& e : trace) {
    if (!first) oss << ",";
    first = false;
    const double us = e.start_s * 1e6;
    const double dur = (e.end_s - e.start_s) * 1e6;
    // pid 1; one tid per resource (compute=1, comm=2, others=3).
    const int tid = e.resource == "compute" ? 1 : (e.resource == "comm" ? 2 : 3);
    oss << "\n  {\"name\": \"" << Escape(e.name) << "\", \"cat\": \""
        << Escape(e.resource) << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << tid << ", \"ts\": " << us << ", \"dur\": " << dur << "}";
  }
  oss << "\n]\n";
  return oss.str();
}

}  // namespace acps::sim
