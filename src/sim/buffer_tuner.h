// Automatic buffer-size tuning (the paper's §IV-B notes the budget could
// be tuned with e.g. Bayesian optimization [43] but uses the 25MB default;
// this extension implements the tuner so the claim "the default is nearly
// optimal" — Fig 10 — can be checked quantitatively).
//
// Deterministic coarse-to-fine search over the simulated iteration time as
// a function of the fusion-buffer budget. The objective is piecewise
// constant in the bucket boundaries, so golden-section alone can stall; we
// grid-scan log-spaced candidates and refine around the best.
#pragma once

#include "models/layer_spec.h"
#include "sim/pipeline.h"

namespace acps::sim {

struct TuneResult {
  int64_t best_buffer_bytes = 0;
  double best_iter_s = 0.0;
  double default_iter_s = 0.0;  // at cfg.buffer_bytes (usually 25MB)
  // default_iter_s / best_iter_s — how much tuning buys over the default.
  [[nodiscard]] double gain() const {
    return best_iter_s > 0 ? default_iter_s / best_iter_s : 1.0;
  }
};

// Searches buffer budgets in [min_bytes, max_bytes] (log-spaced, then
// refined) for the configuration in `cfg` (method, rank, cluster...).
[[nodiscard]] TuneResult TuneBufferSize(const models::ModelSpec& model,
                                        const SimConfig& cfg,
                                        int64_t min_bytes = 64 * 1024,
                                        int64_t max_bytes = 2LL << 30,
                                        int coarse_points = 24,
                                        int refine_rounds = 2);

}  // namespace acps::sim
