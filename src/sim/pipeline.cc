#include "sim/pipeline.h"

#include <algorithm>
#include <sstream>

#include "compress/powersgd.h"
#include "sim/gpu_model.h"
#include "tensor/check.h"

namespace acps::sim {

std::string MethodName(Method m) {
  switch (m) {
    case Method::kSSGD: return "S-SGD";
    case Method::kSignSGD: return "Sign-SGD";
    case Method::kTopkSGD: return "Top-k SGD";
    case Method::kPowerSGD: return "Power-SGD";
    case Method::kPowerSGDStar: return "Power-SGD*";
    case Method::kACPSGD: return "ACP-SGD";
  }
  return "?";
}

std::string SysOptName(SysOptLevel level) {
  switch (level) {
    case SysOptLevel::kNaive: return "Naive";
    case SysOptLevel::kWfbp: return "WFBP";
    case SysOptLevel::kWfbpTf: return "WFBP+TF";
  }
  return "?";
}

namespace {

using models::LayerSpec;
using models::ModelSpec;

// Single-resource FIFO timeline.
class Timeline {
 public:
  double Schedule(double ready, double duration) {
    const double start = std::max(cursor_, ready);
    cursor_ = start + duration;
    busy_ += duration;
    last_start_ = start;
    return cursor_;
  }
  [[nodiscard]] double cursor() const { return cursor_; }
  [[nodiscard]] double busy() const { return busy_; }
  [[nodiscard]] double last_start() const { return last_start_; }

 private:
  double cursor_ = 0.0;
  double busy_ = 0.0;
  double last_start_ = 0.0;
};

// Per-tensor derived info, in backward (gradient-ready) order.
struct TensorInfo {
  const LayerSpec* layer;
  int64_t bytes;        // uncompressed gradient bytes
  bool lowrank;         // goes through P/Q compression at this rank
  int64_t n = 0, m = 0, r = 0;
  int64_t p_bytes = 0;  // factor sizes
  int64_t q_bytes = 0;
};

struct Ctx {
  const ModelSpec& model;
  const SimConfig& cfg;
  GpuModel gpu;
  comm::CostModel net;
  std::vector<TensorInfo> tensors;  // backward order
  std::vector<double> bwd_time;     // per tensor, backward order
  double fwd_time = 0.0;
  double bp_end = 0.0;  // fwd + all backward (pure compute chain)

  void Trace(const std::string& name, const char* resource, double start,
             double end) const {
    if (cfg.trace != nullptr)
      cfg.trace->push_back(TraceEvent{name, resource, start, end});
  }
};

Ctx MakeCtx(const ModelSpec& model, const SimConfig& cfg) {
  const int batch =
      cfg.batch_size > 0 ? cfg.batch_size : model.default_batch_size;
  Ctx ctx{model, cfg, GpuModel(cfg.calib.gpu, batch),
          comm::CostModel(cfg.net, cfg.world_size), {}, {}, 0.0, 0.0};
  ctx.fwd_time = ctx.gpu.ForwardTime(model);

  double t = ctx.fwd_time;
  for (const LayerSpec* l : model.backward_order()) {
    TensorInfo info;
    info.layer = l;
    info.bytes = l->bytes();
    info.lowrank =
        l->compressible &&
        compress::LowRankWorthwhile({l->matrix_rows, l->matrix_cols},
                                    cfg.rank);
    if (info.lowrank) {
      info.n = l->matrix_rows;
      info.m = l->matrix_cols;
      info.r = compress::EffectiveRank(info.n, info.m, cfg.rank);
      info.p_bytes = info.n * info.r * 4;
      info.q_bytes = info.m * info.r * 4;
    }
    ctx.tensors.push_back(info);
    const double bt = ctx.gpu.BackwardTime(*l);
    ctx.bwd_time.push_back(bt);
    t += bt;
  }
  ctx.bp_end = t;
  return ctx;
}

// Gradient-ready times under the pure BP chain (no injected work).
std::vector<double> ReadyTimes(const Ctx& ctx) {
  std::vector<double> ready(ctx.tensors.size());
  double t = ctx.fwd_time;
  for (size_t i = 0; i < ctx.tensors.size(); ++i) {
    t += ctx.bwd_time[i];
    ready[i] = t;
  }
  return ready;
}

std::vector<int64_t> GradBytes(const Ctx& ctx) {
  std::vector<int64_t> bytes;
  bytes.reserve(ctx.tensors.size());
  for (const auto& t : ctx.tensors) bytes.push_back(t.bytes);
  return bytes;
}

Breakdown FinishBreakdown(const Ctx& ctx, double total, double compress_busy) {
  Breakdown b;
  b.fwdbwd_s = ctx.bp_end;
  b.compress_s = compress_busy;
  b.total_s = total;
  b.comm_exposed_s = std::max(0.0, total - ctx.bp_end - compress_busy);
  return b;
}

// ---------------------------------------------------------------------------
// S-SGD
// ---------------------------------------------------------------------------

Breakdown SimulateSSGD(const Ctx& ctx) {
  const auto ready = ReadyTimes(ctx);
  const auto bytes = GradBytes(ctx);
  if (ctx.cfg.trace != nullptr) {
    for (size_t i = 0; i < ctx.tensors.size(); ++i)
      ctx.Trace("M" + std::to_string(i), "compute", ready[i] - ctx.bwd_time[i],
                ready[i]);
  }
  const bool overlap = ctx.cfg.sysopt != SysOptLevel::kNaive;
  const int64_t buffer = ctx.cfg.sysopt == SysOptLevel::kWfbpTf
                             ? ctx.cfg.buffer_bytes
                             : 0;  // 0 => one bucket per tensor
  const auto buckets = fusion::AssignBuckets(bytes, buffer);

  Timeline comm;
  double total = ctx.bp_end;
  for (const auto& bucket : buckets) {
    const double bucket_ready = overlap ? ready[static_cast<size_t>(
                                              bucket.back())]
                                        : ctx.bp_end;
    const int64_t bucket_bytes = fusion::BucketBytes(bucket, bytes);
    const double end = comm.Schedule(
        bucket_ready, ctx.net.AllReduce(static_cast<double>(bucket_bytes)));
    ctx.Trace("A[" + std::to_string(bucket.front()) + ".." +
                  std::to_string(bucket.back()) + "]",
              "comm", comm.last_start(), end);
    total = std::max(total, end);
  }
  return FinishBreakdown(ctx, total, 0.0);
}

// ---------------------------------------------------------------------------
// Sign-SGD / Top-k SGD: pack all gradients after BP, compress once,
// all-gather, decompress (the best-performing published configuration —
// §III-A "gradients are packed together").
// ---------------------------------------------------------------------------

Breakdown SimulateSign(const Ctx& ctx) {
  const auto n = static_cast<double>(ctx.model.total_params());
  const auto& q = ctx.cfg.calib.quant;
  const double num_tensors = static_cast<double>(ctx.tensors.size());
  const double p = ctx.cfg.world_size;

  const double pack = num_tensors * q.sign_per_tensor_s +
                      n * q.sign_pack_ns_per_elem * 1e-9;
  const double gather_bytes = n / 8.0 + 16.0;
  const double comm = ctx.net.AllGather(gather_bytes);
  const double vote = n * p * q.sign_vote_ns_per_elem_per_worker * 1e-9;

  const double total = ctx.bp_end + pack + comm + vote;
  Breakdown b = FinishBreakdown(ctx, total, pack + vote);
  return b;
}

Breakdown SimulateTopk(const Ctx& ctx) {
  const auto n = static_cast<double>(ctx.model.total_params());
  const auto& q = ctx.cfg.calib.quant;
  const double num_tensors = static_cast<double>(ctx.tensors.size());
  const double p = ctx.cfg.world_size;
  const double k = std::max(1.0, n * ctx.cfg.topk_ratio);

  const double select = num_tensors * q.topk_per_tensor_s +
                        n * q.topk_select_ns_per_elem * 1e-9;
  const double gather_bytes = k * 8.0 + 16.0;  // (uint32 idx, fp32 val)
  const double comm = ctx.net.AllGather(gather_bytes);
  const double scatter = p * k * q.topk_scatter_ns_per_record * 1e-9;

  const double total = ctx.bp_end + select + comm + scatter;
  return FinishBreakdown(ctx, total, select + scatter);
}

// ---------------------------------------------------------------------------
// Power-SGD (original implementation): pack gradients after BP, run both
// power-iteration phases with two fused all-reduces, unpack. No overlap.
// ---------------------------------------------------------------------------

Breakdown SimulatePowerSgd(const Ctx& ctx) {
  double compress = 0.0;
  int64_t p_total = 0, q_total = 0, dense_total = 0;
  for (const auto& t : ctx.tensors) {
    if (t.lowrank) {
      compress += ctx.gpu.PowerSgdPhasePCost(t.n, t.m, t.r).total();
      compress += ctx.gpu.PowerSgdPhaseQCost(t.n, t.m, t.r).total();
      compress += ctx.gpu.ReconstructCost(t.n, t.m, t.r).total();
      // The original implementation loops matmul/qr per matrix in Python.
      compress += ctx.cfg.calib.gpu.powersgd_dispatch_s;
      p_total += t.p_bytes;
      q_total += t.q_bytes;
    } else {
      dense_total += t.bytes;
    }
  }
  // Pack/unpack of the full gradient into the compression workspace
  // (vogels' batched implementation): two passes over all bytes.
  compress += ctx.gpu.MemSeconds(
      2.0 * 4.0 * static_cast<double>(ctx.model.total_params()));

  const double comm = ctx.net.AllReduce(static_cast<double>(p_total)) +
                      ctx.net.AllReduce(static_cast<double>(q_total)) +
                      ctx.net.AllReduce(static_cast<double>(dense_total));
  const double total = ctx.bp_end + compress + comm;
  return FinishBreakdown(ctx, total, compress);
}

// ---------------------------------------------------------------------------
// Power-SGD* — Power-SGD on the WFBP(+TF) communication hook. Compression
// runs on a side stream concurrently with BP: the FLOP-bound part of any
// compression kernel executed before BP finishes is inflated by the
// interference factor (and symmetrically delays BP, which the serialized
// compute queue captures).
// ---------------------------------------------------------------------------

struct SideTask {
  double ready;
  double interferable_s;
  double launch_s;
  int bucket;
  enum class Kind { kComputeQ, kReconstruct } kind;
};

Breakdown SimulatePowerSgdStar(const Ctx& ctx) {
  if (ctx.cfg.sysopt == SysOptLevel::kNaive) {
    // Without WFBP/TF the hook degenerates to per-tensor sequential
    // compress→AR(P)→compute-Q→AR(Q)→reconstruct after BP.
    double t = ctx.bp_end;
    double compress = 0.0;
    for (const auto& ti : ctx.tensors) {
      if (ti.lowrank) {
        const double cp = ctx.gpu.PowerSgdPhasePCost(ti.n, ti.m, ti.r).total();
        const double cq = ctx.gpu.PowerSgdPhaseQCost(ti.n, ti.m, ti.r).total();
        const double cr = ctx.gpu.ReconstructCost(ti.n, ti.m, ti.r).total();
        t += cp + ctx.net.AllReduce(static_cast<double>(ti.p_bytes)) + cq +
             ctx.net.AllReduce(static_cast<double>(ti.q_bytes)) + cr;
        compress += cp + cq + cr;
      } else {
        t += ctx.net.AllReduce(static_cast<double>(ti.bytes));
      }
    }
    return FinishBreakdown(ctx, t, compress);
  }

  const auto ready = ReadyTimes(ctx);
  const auto bytes = GradBytes(ctx);
  const int64_t buffer = ctx.cfg.sysopt == SysOptLevel::kWfbpTf
                             ? ctx.cfg.buffer_bytes
                             : 0;
  const auto buckets = fusion::AssignBuckets(bytes, buffer);
  const double gamma = ctx.cfg.calib.gpu.interference_factor;

  // Map: bucket index -> index of its last tensor.
  std::vector<int> bucket_of_tensor(ctx.tensors.size(), -1);
  for (size_t b = 0; b < buckets.size(); ++b)
    for (int i : buckets[b]) bucket_of_tensor[static_cast<size_t>(i)] =
        static_cast<int>(b);

  // Pre-compute per-bucket aggregate costs and factor/dense bytes. The hook
  // batches the per-matrix ops of one bucket (so orth_extra is paid once per
  // bucket phase) but pays a per-bucket buffer-management cost, which is
  // memory-bound and therefore interferable.
  struct BucketCost {
    LowRankKernelCost phase_p, phase_q, recon;
    int64_t p_bytes = 0, q_bytes = 0, dense_bytes = 0;
  };
  const double hook = ctx.cfg.calib.gpu.hook_per_bucket_s;
  std::vector<BucketCost> bc(buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) {
    bool any_lowrank = false;
    for (int i : buckets[b]) {
      const auto& ti = ctx.tensors[static_cast<size_t>(i)];
      if (ti.lowrank) {
        any_lowrank = true;
        bc[b].phase_p += ctx.gpu.PowerSgdPhasePCost(ti.n, ti.m, ti.r);
        bc[b].phase_q += ctx.gpu.PowerSgdPhaseQCost(ti.n, ti.m, ti.r);
        bc[b].recon += ctx.gpu.ReconstructCost(ti.n, ti.m, ti.r);
        bc[b].p_bytes += ti.p_bytes;
        bc[b].q_bytes += ti.q_bytes;
      } else {
        bc[b].dense_bytes += ti.bytes;
      }
    }
    if (any_lowrank) bc[b].phase_p.interferable_s += hook;
  }

  Timeline comm;
  std::vector<SideTask> side;
  double t_c = ctx.fwd_time;
  double compress_busy = 0.0;
  double total = 0.0;

  auto run_side_task = [&](const SideTask& st, bool before_bp_end) {
    const double inflate = before_bp_end ? gamma : 1.0;
    const double dur = st.interferable_s * inflate + st.launch_s;
    t_c = std::max(t_c, st.ready) + dur;
    compress_busy += dur;
    const auto& cost = bc[static_cast<size_t>(st.bucket)];
    if (st.kind == SideTask::Kind::kComputeQ) {
      const double end = comm.Schedule(
          t_c, ctx.net.AllReduce(static_cast<double>(cost.q_bytes)));
      total = std::max(total, end);
      side.push_back(SideTask{end, cost.recon.interferable_s,
                              cost.recon.launch_s, st.bucket,
                              SideTask::Kind::kReconstruct});
    }
  };

  // --- BP phase: interleave compression with backward layers.
  for (size_t i = 0; i < ctx.tensors.size(); ++i) {
    // Side tasks whose dependency completed run between layers (inflated).
    for (;;) {
      auto it = std::min_element(
          side.begin(), side.end(),
          [](const SideTask& a, const SideTask& b) { return a.ready < b.ready; });
      if (it == side.end() || it->ready > t_c) break;
      SideTask st = *it;
      side.erase(it);
      run_side_task(st, /*before_bp_end=*/true);
    }
    t_c += ctx.bwd_time[i];
    const int b = bucket_of_tensor[i];
    if (b >= 0 && buckets[static_cast<size_t>(b)].back() ==
                      static_cast<int>(i)) {
      const auto& cost = bc[static_cast<size_t>(b)];
      // Compress phase P for the completed bucket (side stream, inflated).
      const double dur =
          cost.phase_p.interferable_s * gamma + cost.phase_p.launch_s;
      t_c += dur;
      compress_busy += dur;
      if (cost.p_bytes > 0) {
        const double end = comm.Schedule(
            t_c, ctx.net.AllReduce(static_cast<double>(cost.p_bytes)));
        total = std::max(total, end);
        side.push_back(SideTask{end, cost.phase_q.interferable_s,
                                cost.phase_q.launch_s, b,
                                SideTask::Kind::kComputeQ});
      }
      if (cost.dense_bytes > 0) {
        const double end = comm.Schedule(
            t_c, ctx.net.AllReduce(static_cast<double>(cost.dense_bytes)));
        total = std::max(total, end);
      }
    }
  }

  // --- Drain: remaining side tasks after BP (no interference).
  while (!side.empty()) {
    auto it = std::min_element(
        side.begin(), side.end(),
        [](const SideTask& a, const SideTask& b) { return a.ready < b.ready; });
    SideTask st = *it;
    side.erase(it);
    run_side_task(st, /*before_bp_end=*/false);
  }

  total = std::max({total, t_c, comm.cursor()});
  return FinishBreakdown(ctx, total, compress_busy);
}

// ---------------------------------------------------------------------------
// ACP-SGD: compression runs inline on the compute stream right after each
// layer's backward (no side-stream interference by construction); the single
// factor all-reduce per bucket is non-blocking; buckets use the scaled
// compressed buffer size (paper §IV-B).
// ---------------------------------------------------------------------------

Breakdown SimulateAcp(const Ctx& ctx) {
  const bool p_step = ctx.cfg.acp_parity % 2 == 1;

  // Per-tensor compression cost and communicated factor bytes.
  std::vector<double> comp_cost(ctx.tensors.size(), 0.0);
  std::vector<double> recon_cost(ctx.tensors.size(), 0.0);
  std::vector<int64_t> factor_bytes(ctx.tensors.size(), 0);
  int64_t factor_total = 0, grad_total = 0;
  for (size_t i = 0; i < ctx.tensors.size(); ++i) {
    const auto& ti = ctx.tensors[i];
    grad_total += ti.bytes;
    if (ti.lowrank) {
      comp_cost[i] = ctx.gpu.AcpCompressCost(ti.n, ti.m, ti.r).total();
      recon_cost[i] = ctx.gpu.ReconstructCost(ti.n, ti.m, ti.r).total();
      factor_bytes[i] = p_step ? ti.p_bytes : ti.q_bytes;
      factor_total += factor_bytes[i];
    }
  }

  double compress_busy = 0.0;

  if (ctx.cfg.sysopt == SysOptLevel::kNaive) {
    double t = ctx.bp_end;
    for (size_t i = 0; i < ctx.tensors.size(); ++i) {
      const auto& ti = ctx.tensors[i];
      if (ti.lowrank) {
        t += comp_cost[i];
        t += ctx.net.AllReduce(static_cast<double>(factor_bytes[i]));
        t += recon_cost[i];
        compress_busy += comp_cost[i] + recon_cost[i];
      } else {
        t += ctx.net.AllReduce(static_cast<double>(ti.bytes));
      }
    }
    return FinishBreakdown(ctx, t, compress_busy);
  }

  // Bucket the compressed factors with the scaled budget, dense tensors
  // with the default budget. Bucketing is in ready order within each class.
  const bool fuse = ctx.cfg.sysopt == SysOptLevel::kWfbpTf;
  const int64_t factor_budget =
      fuse ? fusion::ScaledBufferBytes(ctx.cfg.buffer_bytes, factor_total,
                                       grad_total)
           : 0;
  const int64_t dense_budget = fuse ? ctx.cfg.buffer_bytes : 0;

  std::vector<int> lowrank_ids, dense_ids;  // tensor indices per class
  std::vector<int64_t> lowrank_bytes, dense_bytes;
  for (size_t i = 0; i < ctx.tensors.size(); ++i) {
    if (ctx.tensors[i].lowrank) {
      lowrank_ids.push_back(static_cast<int>(i));
      lowrank_bytes.push_back(factor_bytes[i]);
    } else {
      dense_ids.push_back(static_cast<int>(i));
      dense_bytes.push_back(ctx.tensors[i].bytes);
    }
  }
  const auto factor_buckets = fusion::AssignBuckets(lowrank_bytes, factor_budget);
  const auto dense_buckets = fusion::AssignBuckets(dense_bytes, dense_budget);

  // last tensor index (in global bwd order) per bucket, to know readiness.
  std::vector<int> factor_bucket_of(ctx.tensors.size(), -1);
  for (size_t b = 0; b < factor_buckets.size(); ++b)
    for (int j : factor_buckets[b])
      factor_bucket_of[static_cast<size_t>(lowrank_ids[static_cast<size_t>(j)])] =
          static_cast<int>(b);
  std::vector<int> dense_bucket_of(ctx.tensors.size(), -1);
  for (size_t b = 0; b < dense_buckets.size(); ++b)
    for (int j : dense_buckets[b])
      dense_bucket_of[static_cast<size_t>(dense_ids[static_cast<size_t>(j)])] =
          static_cast<int>(b);

  Timeline comm;
  double t_c = ctx.fwd_time;
  double total = 0.0;
  struct Recon {
    double ready;
    double cost;
  };
  std::vector<Recon> recons;

  for (size_t i = 0; i < ctx.tensors.size(); ++i) {
    t_c += ctx.bwd_time[i];
    ctx.Trace("M" + std::to_string(i), "compute", t_c - ctx.bwd_time[i], t_c);
    const auto& ti = ctx.tensors[i];
    if (ti.lowrank) {
      t_c += comp_cost[i];
      compress_busy += comp_cost[i];
      ctx.Trace((p_step ? "P" : "Q") + std::to_string(i), "compute",
                t_c - comp_cost[i], t_c);
      const int b = factor_bucket_of[i];
      if (factor_buckets[static_cast<size_t>(b)].back() ==
          static_cast<int>(std::find(lowrank_ids.begin(), lowrank_ids.end(),
                                     static_cast<int>(i)) -
                           lowrank_ids.begin())) {
        const int64_t bb = fusion::BucketBytes(
            factor_buckets[static_cast<size_t>(b)], lowrank_bytes);
        const double end =
            comm.Schedule(t_c, ctx.net.AllReduce(static_cast<double>(bb)));
        ctx.Trace((p_step ? std::string("AP") : std::string("AQ")) +
                      std::to_string(b),
                  "comm", comm.last_start(), end);
        total = std::max(total, end);
        double rc = 0.0;
        for (int j : factor_buckets[static_cast<size_t>(b)])
          rc += recon_cost[static_cast<size_t>(
              lowrank_ids[static_cast<size_t>(j)])];
        recons.push_back(Recon{end, rc});
      }
    } else {
      const int b = dense_bucket_of[i];
      if (dense_buckets[static_cast<size_t>(b)].back() ==
          static_cast<int>(std::find(dense_ids.begin(), dense_ids.end(),
                                     static_cast<int>(i)) -
                           dense_ids.begin())) {
        const int64_t bb = fusion::BucketBytes(
            dense_buckets[static_cast<size_t>(b)], dense_bytes);
        const double end =
            comm.Schedule(t_c, ctx.net.AllReduce(static_cast<double>(bb)));
        total = std::max(total, end);
      }
    }
  }

  // Decompression after each factor bucket's all-reduce.
  std::sort(recons.begin(), recons.end(),
            [](const Recon& a, const Recon& b) { return a.ready < b.ready; });
  for (const auto& r : recons) {
    t_c = std::max(t_c, r.ready) + r.cost;
    compress_busy += r.cost;
  }

  total = std::max({total, t_c, comm.cursor()});
  return FinishBreakdown(ctx, total, compress_busy);
}

}  // namespace

Breakdown SimulateIteration(const ModelSpec& model, const SimConfig& config) {
  ACPS_CHECK_MSG(config.world_size >= 1, "world_size must be >= 1");
  const Ctx ctx = MakeCtx(model, config);
  switch (config.method) {
    case Method::kSSGD: return SimulateSSGD(ctx);
    case Method::kSignSGD: return SimulateSign(ctx);
    case Method::kTopkSGD: return SimulateTopk(ctx);
    case Method::kPowerSGD: return SimulatePowerSgd(ctx);
    case Method::kPowerSGDStar: return SimulatePowerSgdStar(ctx);
    case Method::kACPSGD: return SimulateAcp(ctx);
  }
  ACPS_FAIL_MSG("unknown method");
}

Breakdown SimulateIterationAvg(const ModelSpec& model,
                               const SimConfig& config) {
  if (config.method != Method::kACPSGD) return SimulateIteration(model, config);
  SimConfig odd = config;
  odd.acp_parity = 1;
  SimConfig even = config;
  even.acp_parity = 0;
  const Breakdown a = SimulateIteration(model, odd);
  const Breakdown b = SimulateIteration(model, even);
  Breakdown avg;
  avg.fwdbwd_s = 0.5 * (a.fwdbwd_s + b.fwdbwd_s);
  avg.compress_s = 0.5 * (a.compress_s + b.compress_s);
  avg.comm_exposed_s = 0.5 * (a.comm_exposed_s + b.comm_exposed_s);
  avg.total_s = 0.5 * (a.total_s + b.total_s);
  return avg;
}

}  // namespace acps::sim
