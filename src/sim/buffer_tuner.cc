#include "sim/buffer_tuner.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace acps::sim {

TuneResult TuneBufferSize(const models::ModelSpec& model,
                          const SimConfig& cfg, int64_t min_bytes,
                          int64_t max_bytes, int coarse_points,
                          int refine_rounds) {
  ACPS_CHECK_MSG(min_bytes >= 1 && max_bytes > min_bytes,
                 "invalid tuning range");
  ACPS_CHECK_MSG(coarse_points >= 3, "need at least 3 coarse points");

  auto eval = [&](int64_t buffer) {
    SimConfig c = cfg;
    c.buffer_bytes = buffer;
    return SimulateIterationAvg(model, c).total_s;
  };

  TuneResult result;
  result.default_iter_s = eval(cfg.buffer_bytes);

  // Coarse log-spaced scan.
  const double log_lo = std::log(static_cast<double>(min_bytes));
  const double log_hi = std::log(static_cast<double>(max_bytes));
  int64_t best = min_bytes;
  double best_t = 1e300;
  auto consider = [&](int64_t buffer) {
    buffer = std::clamp(buffer, min_bytes, max_bytes);
    const double t = eval(buffer);
    if (t < best_t) {
      best_t = t;
      best = buffer;
    }
  };
  for (int i = 0; i < coarse_points; ++i) {
    const double frac = static_cast<double>(i) / (coarse_points - 1);
    consider(static_cast<int64_t>(
        std::exp(log_lo + frac * (log_hi - log_lo))));
  }

  // Refine geometrically around the incumbent.
  double span = 2.0;  // search [best/2, best*2], then tighten
  for (int round = 0; round < refine_rounds; ++round) {
    const int64_t center = best;
    for (int i = -3; i <= 3; ++i) {
      if (i == 0) continue;
      consider(static_cast<int64_t>(
          static_cast<double>(center) *
          std::pow(span, static_cast<double>(i) / 3.0)));
    }
    span = std::sqrt(span);
  }

  result.best_buffer_bytes = best;
  result.best_iter_s = best_t;
  return result;
}

}  // namespace acps::sim
