// Chrome-tracing (about://tracing, Perfetto) export of simulated schedule
// traces — turns a Fig 4-style schedule into a timeline a user can inspect
// visually.
#pragma once

#include <string>
#include <vector>

#include "sim/pipeline.h"

namespace acps::sim {

// Serializes trace events as a Chrome Trace Event JSON array ("X" complete
// events; one row per resource). Timestamps in microseconds.
[[nodiscard]] std::string ToChromeTracingJson(
    const std::vector<TraceEvent>& trace);

}  // namespace acps::sim
