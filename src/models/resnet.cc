// ResNet generators (He et al., CVPR'16) — ImageNet arithmetic.
//
// The generator tracks spatial resolution through the network so each conv's
// forward FLOPs (2·k²·C_in·C_out·H_out·W_out per sample) are exact. BatchNorm
// scale/shift parameters are emitted as vector-shaped (non-compressible)
// tensors, matching the paper's rule that only matrix-shaped parameters go
// through low-rank compression.
#include <sstream>

#include "models/model_zoo.h"

namespace acps::models {
namespace {

class Builder {
 public:
  explicit Builder(ModelSpec* spec) : spec_(spec) {}

  // 2-D convolution parameter + its BN pair. Updates spatial size.
  void Conv(const std::string& name, int64_t cin, int64_t cout, int64_t k,
            int64_t stride, bool with_bn = true) {
    h_ = (h_ + 2 * (k / 2) - k) / stride + 1;  // same-ish padding k/2
    w_ = h_;
    LayerSpec conv;
    conv.name = name;
    conv.shape = {cout, cin, k, k};
    conv.matrix_rows = cout;
    conv.matrix_cols = cin * k * k;
    conv.compressible = true;
    conv.fwd_flops_per_sample =
        2.0 * static_cast<double>(k * k * cin * cout) *
        static_cast<double>(h_ * w_);
    conv.op_class = OpClass::kConv;
    spec_->layers.push_back(std::move(conv));
    if (with_bn) {
      Vector(name + ".bn.weight", cout);
      Vector(name + ".bn.bias", cout);
    }
  }

  void Vector(const std::string& name, int64_t n) {
    LayerSpec v;
    v.name = name;
    v.shape = {n};
    v.compressible = false;
    v.fwd_flops_per_sample = static_cast<double>(n);  // negligible
    v.op_class = OpClass::kElementwise;
    spec_->layers.push_back(std::move(v));
  }

  void Linear(const std::string& name, int64_t in, int64_t out) {
    LayerSpec fc;
    fc.name = name;
    fc.shape = {out, in};
    fc.matrix_rows = out;
    fc.matrix_cols = in;
    fc.compressible = true;
    fc.fwd_flops_per_sample = 2.0 * static_cast<double>(in * out);
    fc.op_class = OpClass::kGemm;
    spec_->layers.push_back(std::move(fc));
    Vector(name + ".bias", out);
  }

  void MaxPool(int64_t k, int64_t stride) {
    h_ = (h_ + 2 * (k / 2) - k) / stride + 1;
    w_ = h_;
  }

  void GlobalPool() { h_ = w_ = 1; }

  [[nodiscard]] int64_t h() const { return h_; }

 private:
  ModelSpec* spec_;
  int64_t h_ = 224;
  int64_t w_ = 224;
};

// Bottleneck residual block: 1x1 (cin→cmid), 3x3 (cmid→cmid, stride), 1x1
// (cmid→cout), plus a 1x1 projection when shape changes.
void Bottleneck(Builder& b, const std::string& name, int64_t cin,
                int64_t cmid, int64_t cout, int64_t stride) {
  b.Conv(name + ".conv1", cin, cmid, 1, 1);
  b.Conv(name + ".conv2", cmid, cmid, 3, stride);
  b.Conv(name + ".conv3", cmid, cout, 1, 1);
  if (stride != 1 || cin != cout) {
    // Projection shortcut runs at the block's output resolution; emit it
    // after conv2 has already applied the stride so FLOPs use H_out.
    b.Conv(name + ".downsample", cin, cout, 1, 1);
  }
}

// Basic residual block (ResNet-18/34): two 3x3 convs.
void BasicBlock(Builder& b, const std::string& name, int64_t cin,
                int64_t cout, int64_t stride) {
  b.Conv(name + ".conv1", cin, cout, 3, stride);
  b.Conv(name + ".conv2", cout, cout, 3, 1);
  if (stride != 1 || cin != cout) {
    b.Conv(name + ".downsample", cin, cout, 1, 1);
  }
}

ModelSpec BottleneckResNet(const std::string& name,
                           const std::vector<int>& blocks, int num_classes,
                           int default_batch) {
  ModelSpec spec;
  spec.name = name;
  spec.default_batch_size = default_batch;
  Builder b(&spec);

  b.Conv("conv1", 3, 64, 7, 2);
  b.MaxPool(3, 2);

  const int64_t mids[4] = {64, 128, 256, 512};
  int64_t cin = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const int64_t cmid = mids[stage];
    const int64_t cout = cmid * 4;
    for (int i = 0; i < blocks[static_cast<size_t>(stage)]; ++i) {
      const int64_t stride = (i == 0 && stage > 0) ? 2 : 1;
      std::ostringstream oss;
      oss << "layer" << (stage + 1) << "." << i;
      Bottleneck(b, oss.str(), cin, cmid, cout, stride);
      cin = cout;
    }
  }
  b.GlobalPool();
  b.Linear("fc", cin, num_classes);
  return spec;
}

}  // namespace

ModelSpec ResNet18(int num_classes) {
  ModelSpec spec;
  spec.name = "resnet18";
  spec.default_batch_size = 128;  // convergence experiments use 128 (§V-A)
  Builder b(&spec);
  b.Conv("conv1", 3, 64, 7, 2);
  b.MaxPool(3, 2);
  const int64_t chans[4] = {64, 128, 256, 512};
  int64_t cin = 64;
  for (int stage = 0; stage < 4; ++stage) {
    for (int i = 0; i < 2; ++i) {
      const int64_t stride = (i == 0 && stage > 0) ? 2 : 1;
      std::ostringstream oss;
      oss << "layer" << (stage + 1) << "." << i;
      BasicBlock(b, oss.str(), cin, chans[stage], stride);
      cin = chans[stage];
    }
  }
  b.GlobalPool();
  b.Linear("fc", cin, num_classes);
  return spec;
}

ModelSpec ResNet50(int num_classes) {
  return BottleneckResNet("resnet50", {3, 4, 6, 3}, num_classes,
                          /*default_batch=*/64);
}

ModelSpec ResNet152(int num_classes) {
  return BottleneckResNet("resnet152", {3, 8, 36, 3}, num_classes,
                          /*default_batch=*/32);
}

}  // namespace acps::models
