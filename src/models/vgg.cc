// VGG-16 generator (Simonyan & Zisserman, ICLR'15) — configuration D with
// the ImageNet classifier head. Used by the convergence experiments
// (miniaturized in acps::dnn) and available in the zoo for completeness.
#include <sstream>

#include "models/model_zoo.h"

namespace acps::models {

ModelSpec Vgg16(int num_classes) {
  ModelSpec spec;
  spec.name = "vgg16";
  spec.default_batch_size = 128;

  int64_t h = 224;
  int64_t cin = 3;
  int conv_idx = 0;
  // Configuration D: channel counts with 'M' = 2x2 max-pool.
  const int64_t cfg[] = {64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
                         512, 512, 512, -1, 512, 512, 512, -1};
  for (int64_t c : cfg) {
    if (c == -1) {
      h /= 2;
      continue;
    }
    std::ostringstream oss;
    oss << "features." << conv_idx++;
    LayerSpec conv;
    conv.name = oss.str();
    conv.shape = {c, cin, 3, 3};
    conv.matrix_rows = c;
    conv.matrix_cols = cin * 9;
    conv.compressible = true;
    conv.fwd_flops_per_sample =
        2.0 * 9.0 * static_cast<double>(cin * c) * static_cast<double>(h * h);
    conv.op_class = OpClass::kConv;
    spec.layers.push_back(std::move(conv));

    LayerSpec bias;
    bias.name = oss.str() + ".bias";
    bias.shape = {c};
    bias.op_class = OpClass::kElementwise;
    bias.fwd_flops_per_sample = static_cast<double>(c);
    spec.layers.push_back(std::move(bias));
    cin = c;
  }

  // Classifier: 512*7*7 -> 4096 -> 4096 -> classes.
  const int64_t dims[] = {cin * h * h, 4096, 4096, num_classes};
  for (int i = 0; i < 3; ++i) {
    std::ostringstream oss;
    oss << "classifier." << i;
    LayerSpec fc;
    fc.name = oss.str();
    fc.shape = {dims[i + 1], dims[i]};
    fc.matrix_rows = dims[i + 1];
    fc.matrix_cols = dims[i];
    fc.compressible = true;
    fc.fwd_flops_per_sample = 2.0 * static_cast<double>(dims[i] * dims[i + 1]);
    fc.op_class = OpClass::kGemm;
    spec.layers.push_back(std::move(fc));

    LayerSpec bias;
    bias.name = oss.str() + ".bias";
    bias.shape = {dims[i + 1]};
    bias.op_class = OpClass::kElementwise;
    bias.fwd_flops_per_sample = static_cast<double>(dims[i + 1]);
    spec.layers.push_back(std::move(bias));
  }
  return spec;
}

}  // namespace acps::models
