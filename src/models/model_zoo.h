// Builders for the six models the paper uses, plus a registry by name.
//
// Parameter counts (validated by tests against the paper's Table I /
// standard references):
//   ResNet-50  ≈ 25.6M    ResNet-152 ≈ 60.2M
//   BERT-Base  ≈ 110M     BERT-Large ≈ 336M
//   VGG-16     ≈ 138M     ResNet-18  ≈ 11.7M
#pragma once

#include "models/layer_spec.h"

namespace acps::models {

// ImageNet-style ResNets (input 3×224×224, 1000 classes — the paper's
// performance setting).
[[nodiscard]] ModelSpec ResNet18(int num_classes = 1000);
[[nodiscard]] ModelSpec ResNet50(int num_classes = 1000);
[[nodiscard]] ModelSpec ResNet152(int num_classes = 1000);

// VGG-16 with ImageNet head.
[[nodiscard]] ModelSpec Vgg16(int num_classes = 1000);

// BERT with the paper's sequence length of 64.
[[nodiscard]] ModelSpec BertBase(int seq_len = 64);
[[nodiscard]] ModelSpec BertLarge(int seq_len = 64);

// GPT-2 decoder family (zoo breadth beyond the paper; ~124M / ~350M).
[[nodiscard]] ModelSpec Gpt2Small(int seq_len = 512);
[[nodiscard]] ModelSpec Gpt2Medium(int seq_len = 512);

// Lookup by the names used throughout benches: "resnet50", "resnet152",
// "bert-base", "bert-large", "vgg16", "resnet18". Throws on unknown name.
[[nodiscard]] ModelSpec ByName(const std::string& name);

// The paper's evaluation set with its per-GPU batch sizes
// (64 / 32 / 32 / 8) and Power-SGD ranks (4 / 4 / 32 / 32).
struct EvalModel {
  std::string name;
  int batch_size;
  int64_t powersgd_rank;
};
[[nodiscard]] std::vector<EvalModel> PaperEvalSet();

}  // namespace acps::models
