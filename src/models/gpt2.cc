// GPT-2-style decoder-only transformer specs — zoo breadth beyond the
// paper's four models. Useful with the simulator/planner to ask "would
// ACP-SGD help my GPT-scale job?" Parameter counts match the published
// GPT-2 family (124M / 350M) up to the tied LM head.
#include <sstream>

#include "models/model_zoo.h"

namespace acps::models {
namespace {

struct Gpt2Cfg {
  std::string name;
  int64_t hidden;
  int64_t layers;
  int default_batch;
};

void Matrix(ModelSpec& spec, const std::string& name, int64_t rows,
            int64_t cols, double fwd_flops) {
  LayerSpec l;
  l.name = name;
  l.shape = {rows, cols};
  l.matrix_rows = rows;
  l.matrix_cols = cols;
  l.compressible = true;
  l.fwd_flops_per_sample = fwd_flops;
  l.op_class = OpClass::kGemm;
  spec.layers.push_back(std::move(l));
}

void Vector(ModelSpec& spec, const std::string& name, int64_t n) {
  LayerSpec l;
  l.name = name;
  l.shape = {n};
  l.op_class = OpClass::kElementwise;
  l.fwd_flops_per_sample = static_cast<double>(n);
  spec.layers.push_back(std::move(l));
}

ModelSpec Gpt2(const Gpt2Cfg& cfg, int64_t seq) {
  constexpr int64_t kVocab = 50257;
  constexpr int64_t kMaxPos = 1024;
  ModelSpec spec;
  spec.name = cfg.name;
  spec.default_batch_size = cfg.default_batch;
  const int64_t h = cfg.hidden;
  const auto s = static_cast<double>(seq);

  Matrix(spec, "wte", kVocab, h, 0.0);  // token embedding (tied LM head)
  Matrix(spec, "wpe", kMaxPos, h, 0.0);

  const double attn_extra = 4.0 * s * s * static_cast<double>(h);
  for (int64_t i = 0; i < cfg.layers; ++i) {
    std::ostringstream pre;
    pre << "h." << i << ".";
    const std::string base = pre.str();
    Vector(spec, base + "ln_1.weight", h);
    Vector(spec, base + "ln_1.bias", h);
    // Fused QKV projection (GPT-2 layout) + output projection.
    Matrix(spec, base + "attn.c_attn.weight", 3 * h, h,
           2.0 * s * static_cast<double>(3 * h * h));
    Vector(spec, base + "attn.c_attn.bias", 3 * h);
    Matrix(spec, base + "attn.c_proj.weight", h, h,
           2.0 * s * static_cast<double>(h * h) + attn_extra);
    Vector(spec, base + "attn.c_proj.bias", h);
    Vector(spec, base + "ln_2.weight", h);
    Vector(spec, base + "ln_2.bias", h);
    Matrix(spec, base + "mlp.c_fc.weight", 4 * h, h,
           2.0 * s * static_cast<double>(4 * h * h));
    Vector(spec, base + "mlp.c_fc.bias", 4 * h);
    Matrix(spec, base + "mlp.c_proj.weight", h, 4 * h,
           2.0 * s * static_cast<double>(4 * h * h));
    Vector(spec, base + "mlp.c_proj.bias", h);
  }
  Vector(spec, "ln_f.weight", h);
  Vector(spec, "ln_f.bias", h);
  return spec;
}

}  // namespace

ModelSpec Gpt2Small(int seq_len) {
  return Gpt2({"gpt2-small", 768, 12, /*default_batch=*/8}, seq_len);
}

ModelSpec Gpt2Medium(int seq_len) {
  return Gpt2({"gpt2-medium", 1024, 24, /*default_batch=*/4}, seq_len);
}

}  // namespace acps::models
