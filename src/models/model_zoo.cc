#include "models/model_zoo.h"

#include <algorithm>

#include "compress/powersgd.h"

namespace acps::models {

int64_t ModelSpec::total_params() const {
  int64_t total = 0;
  for (const auto& l : layers) total += l.numel();
  return total;
}

double ModelSpec::total_fwd_flops_per_sample() const {
  double total = 0.0;
  for (const auto& l : layers) total += l.fwd_flops_per_sample;
  return total;
}

std::vector<const LayerSpec*> ModelSpec::backward_order() const {
  std::vector<const LayerSpec*> order;
  order.reserve(layers.size());
  for (auto it = layers.rbegin(); it != layers.rend(); ++it)
    order.push_back(&*it);
  return order;
}

ModelSpec::LowRankFootprint ModelSpec::FootprintAtRank(int64_t rank) const {
  LowRankFootprint fp;
  for (const auto& l : layers) {
    if (l.compressible &&
        compress::LowRankWorthwhile({l.matrix_rows, l.matrix_cols}, rank)) {
      const int64_t r =
          compress::EffectiveRank(l.matrix_rows, l.matrix_cols, rank);
      fp.p_elements += l.matrix_rows * r;
      fp.q_elements += l.matrix_cols * r;
    } else {
      fp.dense_elements += l.numel();
    }
  }
  return fp;
}

double ModelSpec::LowRankCompressionRatio(int64_t rank) const {
  const LowRankFootprint fp = FootprintAtRank(rank);
  const auto compressed = fp.p_elements + fp.q_elements + fp.dense_elements;
  ACPS_CHECK(compressed > 0);
  return static_cast<double>(total_params()) /
         static_cast<double>(compressed);
}

double ModelSpec::AcpCompressionRatio(int64_t rank) const {
  const LowRankFootprint fp = FootprintAtRank(rank);
  const double compressed = 0.5 * static_cast<double>(fp.p_elements +
                                                      fp.q_elements) +
                            static_cast<double>(fp.dense_elements);
  ACPS_CHECK(compressed > 0);
  return static_cast<double>(total_params()) / compressed;
}

ModelSpec ByName(const std::string& name) {
  if (name == "resnet18") return ResNet18();
  if (name == "resnet50") return ResNet50();
  if (name == "resnet152") return ResNet152();
  if (name == "vgg16") return Vgg16();
  if (name == "bert-base") return BertBase();
  if (name == "bert-large") return BertLarge();
  if (name == "gpt2-small") return Gpt2Small();
  if (name == "gpt2-medium") return Gpt2Medium();
  ACPS_FAIL_MSG("unknown model '" << name << "'");
}

std::vector<EvalModel> PaperEvalSet() {
  return {
      {"resnet50", 64, 4},
      {"resnet152", 32, 4},
      {"bert-base", 32, 32},
      {"bert-large", 8, 32},
  };
}

}  // namespace acps::models
