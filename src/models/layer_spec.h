// Model descriptions for the performance experiments.
//
// Performance (unlike convergence) depends only on *shapes*: the list of
// parameter tensors in back-propagation order, their sizes, the matrix view
// used for low-rank compression, and the compute cost of producing each
// gradient. ModelSpec captures exactly that; generators in resnet/vgg/bert
// build the paper's four models with parameter counts matching Table I.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace acps::models {

// Which GPU pipeline executes the op that owns this parameter — different
// classes achieve different effective FLOP rates (conv vs GEMM kernels).
enum class OpClass { kConv, kGemm, kElementwise };

struct LayerSpec {
  std::string name;
  Shape shape;          // parameter tensor as stored (e.g. [out,in,kh,kw])
  int64_t matrix_rows = 0;  // matrix view for low-rank compression
  int64_t matrix_cols = 0;  // (0,0) for vector-shaped params
  bool compressible = false;
  double fwd_flops_per_sample = 0.0;  // forward FLOPs attributable to this op
  OpClass op_class = OpClass::kElementwise;

  [[nodiscard]] int64_t numel() const { return NumElements(shape); }
  [[nodiscard]] int64_t bytes() const {
    return numel() * static_cast<int64_t>(sizeof(float));
  }
};

struct ModelSpec {
  std::string name;
  // Parameters in FORWARD order; gradients become ready in reverse.
  std::vector<LayerSpec> layers;
  int default_batch_size = 32;  // the per-GPU batch the paper uses

  [[nodiscard]] int64_t total_params() const;
  [[nodiscard]] int64_t total_bytes() const {
    return total_params() * static_cast<int64_t>(sizeof(float));
  }
  [[nodiscard]] double total_fwd_flops_per_sample() const;
  [[nodiscard]] size_t num_tensors() const { return layers.size(); }

  // Layers in gradient-ready (backward) order.
  [[nodiscard]] std::vector<const LayerSpec*> backward_order() const;

  // Elements of the low-rank factors at `rank`, honoring per-tensor
  // effective rank and leaving non-compressible tensors dense.
  struct LowRankFootprint {
    int64_t p_elements = 0;        // Σ n·r over compressible matrices
    int64_t q_elements = 0;        // Σ m·r
    int64_t dense_elements = 0;    // non-compressible tensors, sent as-is
  };
  [[nodiscard]] LowRankFootprint FootprintAtRank(int64_t rank) const;

  // Overall compression ratio of the Power-SGD family at `rank`
  // (uncompressed bytes / (P+Q+dense bytes)) — the Table I numbers.
  [[nodiscard]] double LowRankCompressionRatio(int64_t rank) const;

  // Per-iteration communication ratio of ACP-SGD at `rank`: only ONE factor
  // (averaging P and Q across parities) is communicated per step, roughly
  // doubling the Power-SGD ratio. The paper's §V-D "rank 256 = 5.4x
  // compression" on BERT-Large is this quantity.
  [[nodiscard]] double AcpCompressionRatio(int64_t rank) const;
};

}  // namespace acps::models
