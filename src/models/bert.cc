// BERT generators (Devlin et al., NAACL'19).
//
// Transformer arithmetic with the paper's sequence length (64). Per-token
// GEMM FLOPs are attributed to their weight matrices; attention-score
// FLOPs (QKᵀ and attention×V, which have no parameters) are attributed to
// the output projection so total compute is accurate for the simulator.
#include <sstream>

#include "models/model_zoo.h"

namespace acps::models {
namespace {

constexpr int64_t kVocab = 30522;
constexpr int64_t kMaxPos = 512;
constexpr int64_t kTypeVocab = 2;

struct BertCfg {
  std::string name;
  int64_t hidden;
  int64_t ffn;
  int64_t layers;
  int default_batch;
};

void Matrix(ModelSpec& spec, const std::string& name, int64_t rows,
            int64_t cols, double fwd_flops, bool compressible = true) {
  LayerSpec l;
  l.name = name;
  l.shape = {rows, cols};
  l.matrix_rows = rows;
  l.matrix_cols = cols;
  l.compressible = compressible;
  l.fwd_flops_per_sample = fwd_flops;
  l.op_class = OpClass::kGemm;
  spec.layers.push_back(std::move(l));
}

void Vector(ModelSpec& spec, const std::string& name, int64_t n) {
  LayerSpec l;
  l.name = name;
  l.shape = {n};
  l.op_class = OpClass::kElementwise;
  l.fwd_flops_per_sample = static_cast<double>(n);
  spec.layers.push_back(std::move(l));
}

ModelSpec Bert(const BertCfg& cfg, int64_t seq) {
  ModelSpec spec;
  spec.name = cfg.name;
  spec.default_batch_size = cfg.default_batch;
  const int64_t h = cfg.hidden;
  const auto s = static_cast<double>(seq);

  // Embeddings. Lookups are memory ops, not FLOPs; the word embedding is a
  // large matrix and is compressible like any other (paper §IV-C reshapes
  // all non-vector parameters).
  Matrix(spec, "embeddings.word", kVocab, h, 0.0);
  Matrix(spec, "embeddings.position", kMaxPos, h, 0.0);
  Matrix(spec, "embeddings.token_type", kTypeVocab, h, 0.0,
         /*compressible=*/false);  // 2 rows: low-rank never pays off
  Vector(spec, "embeddings.ln.weight", h);
  Vector(spec, "embeddings.ln.bias", h);

  const double proj_flops = 2.0 * s * static_cast<double>(h * h);
  // Parameter-free attention math (scores + weighted sum): 4·S²·h per
  // sample, attributed to the output projection.
  const double attn_extra = 4.0 * s * s * static_cast<double>(h);

  for (int64_t i = 0; i < cfg.layers; ++i) {
    std::ostringstream pre;
    pre << "encoder.layer." << i << ".";
    const std::string base = pre.str();
    for (const char* head : {"attention.q", "attention.k", "attention.v"}) {
      Matrix(spec, base + head + ".weight", h, h, proj_flops);
      Vector(spec, base + head + ".bias", h);
    }
    Matrix(spec, base + "attention.output.weight", h, h,
           proj_flops + attn_extra);
    Vector(spec, base + "attention.output.bias", h);
    Vector(spec, base + "attention.ln.weight", h);
    Vector(spec, base + "attention.ln.bias", h);

    Matrix(spec, base + "ffn.intermediate.weight", cfg.ffn, h,
           2.0 * s * static_cast<double>(h * cfg.ffn));
    Vector(spec, base + "ffn.intermediate.bias", cfg.ffn);
    Matrix(spec, base + "ffn.output.weight", h, cfg.ffn,
           2.0 * s * static_cast<double>(h * cfg.ffn));
    Vector(spec, base + "ffn.output.bias", h);
    Vector(spec, base + "ffn.ln.weight", h);
    Vector(spec, base + "ffn.ln.bias", h);
  }

  Matrix(spec, "pooler.weight", h, h, 2.0 * static_cast<double>(h * h));
  Vector(spec, "pooler.bias", h);
  return spec;
}

}  // namespace

ModelSpec BertBase(int seq_len) {
  return Bert({"bert-base", 768, 3072, 12, /*default_batch=*/32}, seq_len);
}

ModelSpec BertLarge(int seq_len) {
  return Bert({"bert-large", 1024, 4096, 24, /*default_batch=*/8}, seq_len);
}

}  // namespace acps::models
