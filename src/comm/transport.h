// Shared communication transport: the long-lived substrate under every
// comm::Session (DESIGN.md §7).
//
// The transport owns what is common to all tenants of the in-process
// cluster: the envelope/mailbox delivery fabric (sequence numbers +
// checksums, extracted from the old single-tenant detail::GroupState), the
// fault-hook routing, capacity accounting (how many sessions / ranks may be
// open at once), and the observability attachment points (tracer, metrics
// registry). Per-job state — barrier, mailboxes, membership view, contract
// checker, traffic counters — lives in one detail::GroupState *channel
// block* per session, so tenants are physically isolated: no mailbox slot,
// barrier round or retry flag is ever shared between jobs.
//
// Layering (tools/lint.sh `transport-below-session`): this header sits at
// the bottom of src/comm — it must not include comm/session.h or
// comm/communicator.h, and detail::GroupState must never be touched outside
// src/comm (`groupstate-outside-comm`). Everything above talks to the
// transport through Session / Communicator.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/sched_point.h"
#include "comm/contract.h"
#include "par/lock_level.h"
#include "tensor/check.h"

namespace acps::obs {
class Tracer;
class MetricsRegistry;
}  // namespace acps::obs

namespace acps::fault {
class FaultInjector;
}  // namespace acps::fault

namespace acps::comm {

// Reduction operator for all_reduce / reduce_scatter.
enum class ReduceOp { kSum, kMax };

// All-reduce algorithm selection. kRing is the bandwidth-optimal default
// (reduce-scatter + all-gather, 2*(p-1)/p * N per worker); kNaive is the
// flat reduce-to-root + broadcast reference (O(p*N)). kSessionDefault (the
// per-call default) resolves to the session's configured algorithm
// (SessionOptions::algo; kRing for the legacy ThreadGroup shim), so callers
// normally do not thread an algorithm through every collective.
enum class AllReduceAlgo { kRing, kNaive, kSessionDefault };

// Per-worker traffic statistics, in "wire" units. One mailbox write of B
// bytes counts as one message of B bytes sent (the shared-memory analogue of
// one point-to-point send on the ring). Retransmissions during fault
// recovery are charged like first sends — the wire cost was paid. Counters
// are per communicator (and aggregated per session), never shared across
// tenants.
struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t messages_sent = 0;
  uint64_t collectives = 0;

  void reset() { *this = TrafficStats{}; }
};

// Sentinel for barrier-timeout parameters: resolve the timeout from the
// ACPS_COLLECTIVE_TIMEOUT_MS environment variable (milliseconds; <= 0
// disables the watchdog), falling back to 60000.
inline constexpr int64_t kCollectiveTimeoutFromEnv = INT64_MIN;

namespace detail {

// Absent sequence number: a mailbox slot that has never been published.
inline constexpr uint64_t kNoSeq = ~uint64_t{0};

// One published message with its delivery envelope. `seq` identifies the
// (collective, phase, ring step) the message belongs to; `checksum` seals
// the payload bytes under the owning session's envelope salt, so readers
// can tell apart every recoverable wire fault — and a chunk belonging to
// another tenant's session can never validate even if a buggy consumer were
// handed the wrong channel block.
struct Message {
  std::vector<std::byte> bytes;
  uint64_t seq = kNoSeq;
  uint32_t checksum = 0;
};

// Per-worker channel. `prev` keeps the previously published message — the
// source the injector serves for duplicate/replay and stale-read faults.
struct Mailbox {
  Message cur;
  Message prev;
};

// One registered (re)admission intent, parked in the group's join-intent
// mailbox until a membership commit consumes it. Registered up front (at
// session setup, from the injector's AdmissionSchedule), so admission is a
// pure function of (commit index, membership state) — never of when a
// crashed thread happened to reach its wait loop.
struct JoinIntent {
  int rank = -1;
  uint64_t at_commit = 1;  // first eligible commit index (1-based)
  bool consumed = false;   // admitted at some commit
};

// Record of one committed membership transition (epoch bump). Returned by
// Communicator::commit_view so workloads can react to churn (rescale
// means, re-plan topology splits, run state resync for joiners).
struct ViewTransition {
  uint64_t epoch = 0;         // epoch now in force
  uint64_t commit_index = 0;  // 1-based commit that produced it
  std::vector<int> joined;    // ranks admitted at this commit (sorted)
  std::vector<int> rejoined;  // subset of `joined` that ran before (sorted)
  std::vector<int> left;      // graceful departures at this commit (sorted)
};

// AwaitAdmission outcome for a parked (crashed/latent) rank.
enum class AdmissionStatus : uint8_t {
  kAdmitted,   // a commit re-admitted the rank; it owns a barrier slot
  kAbandoned,  // no commit can ever admit it (group drained or timeout)
  kAborted,    // the group aborted while the rank was parked
};

// One session's channel block: a sense-reversing barrier over the *alive*
// membership, one envelope mailbox per worker, a size-exchange board for
// variable-size collectives, retry flags for the reliable-delivery
// protocol, the collective usage-contract checker, and the session-scoped
// configuration (envelope salt, default algorithm, metric prefix, tenant
// fault injector). Owned by exactly one comm::Session; opaque outside
// src/comm.
struct GroupState {
  GroupState(int p, int64_t timeout_ms);

  int world_size;
  int64_t barrier_timeout_ms;
  ACPS_LOCK_LEVEL(30) group_mu;
  par::ConditionVariable cv;
  int arrived = 0;
  bool sense = false;
  bool aborted = false;
  // Why the group was aborted (watchdog report, contract diff); folded into
  // the "group aborted" errors seen by the other workers so every thrown
  // exception names the culprit, not just the first one.
  std::string abort_reason;

  // Fingerprint rendezvous on/off (watchdog status tracking is always on).
  bool contract_enabled = false;
  ContractChecker contract;

  std::vector<Mailbox> mailbox;
  std::vector<size_t> sizes;

  // Reliable-delivery retry flags: worker r sets retry_flag[r] between the
  // two barriers of an exchange step (1 = one of its reads failed
  // validation). Stable for readers from the step's second barrier until
  // the writer's next first barrier, so the post-barrier scan is race-free.
  std::vector<uint8_t> retry_flag;

  // Fail-stop membership. alive[r] flips to 0 exactly once per generation,
  // at the crashed rank's collective entry (before any survivor passes the
  // entry barrier), so every surviving rank samples an identical view per
  // collective. Elastic sessions may flip it back to 1 — only inside a
  // barrier-aligned view commit (ApplyViewCommit), so the invariant holds.
  std::vector<uint8_t> alive;
  int alive_count;
  std::vector<int> crashed;  // in crash order (a rank may appear twice)
  std::vector<int> departed;  // graceful leaves, in commit order

  // --- Elastic membership (DESIGN.md "Elastic membership") ----------------
  // Epoch-numbered views: `epoch` bumps at every committed membership
  // transition; `commit_count` counts commits (epoch == commit_count today,
  // kept separate so a no-op commit could skip the bump without breaking
  // the ledger). `commit_seq` snapshots the applier's per-rank collective
  // sequence at the commit: a joiner adopts it so its next collective entry
  // lands on commit_seq + 1, in lockstep with the survivors.
  uint64_t epoch = 0;
  uint64_t commit_count = 0;
  uint64_t commit_seq = 0;
  ViewTransition last_transition;
  // How many entries of `departed` earlier commits already reported;
  // entries past it are this commit's graceful leavers.
  size_t departed_reported = 0;
  // Ranks that have ever been admitted (ran at least one generation);
  // distinguishes a rejoin from a fresh join in transition records.
  std::vector<uint8_t> ever_ran;

  // Join-intent mailbox (all intents registered before Run starts).
  std::vector<JoinIntent> join_intents;

  // Threads currently inside the session's worker function. When it drains
  // to 0 no further commits can happen, so parked joiners give up
  // (kAbandoned) instead of waiting forever.
  int working = 0;

  // First exception thrown by any worker during Run.
  ACPS_LOCK_LEVEL(32) err_mu;
  std::exception_ptr first_error;

  // --- Session scope (set once at channel open / before Run) --------------
  // Folded into every envelope checksum: chunks sealed under one session's
  // salt never validate under another's, so tenants cannot observe each
  // other's payloads. 0 for the anonymous legacy session (bitwise-identical
  // envelopes to the pre-session transport).
  uint64_t envelope_salt = 0;
  // The session's job id ("" for the legacy shim) and the derived obs
  // namespace ("job/<id>/", "" when anonymous). Fault counters and traffic
  // metrics are recorded under this prefix so one tenant's retransmissions
  // never pollute another's counters.
  std::string job_id;
  std::string metric_prefix;
  // Per-session default for AllReduceAlgo::kSessionDefault resolution.
  AllReduceAlgo default_algo = AllReduceAlgo::kRing;
  // Tenant-scoped fault injector (not owned; may be null). When set, all
  // fault hooks of this session route here INSTEAD of the process-global
  // injector, so a chaos plan aimed at one tenant cannot leak into another.
  fault::FaultInjector* injector = nullptr;
  // Observability attachment, copied from the transport at Run entry.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  // Must be called with `group_mu` held.
  [[nodiscard]] std::string AbortMessage() const;

  void Barrier();
  void Abort();

  // Fail-stop for `rank`: remove it from the barrier membership. If the
  // current barrier round was only waiting on the dying rank, complete the
  // round so the survivors unblock. arrived can only reach alive_count when
  // every survivor has arrived, so a round never completes early.
  void MarkDead(int rank);

  // Graceful departure for `rank` at a membership commit: same barrier
  // mechanics as MarkDead, but recorded as a leave (contract renders LEFT,
  // not CRASHED) so churn reports distinguish planned exits from failures.
  void MarkLeft(int rank);

  // Applies membership commit `commit_index` (1-based): consumes every
  // eligible join intent (at_commit <= commit_index, rank currently down),
  // flips the admitted ranks alive, records this commit's graceful
  // departures, bumps the epoch and snapshots `applier_seq` as the
  // collective sequence joiners resume from. Called by every rank of the
  // commit after its opening barrier; the first caller applies, the rest
  // observe — the guard on commit_count makes the application idempotent,
  // so the outcome never depends on which rank got the lock first. Growing
  // alive_count mid-round is safe: an in-flight barrier can only complete
  // once the admitted joiner itself arrives. Returns the committed
  // transition (identical for every caller of the same commit).
  [[nodiscard]] ViewTransition ApplyViewCommit(uint64_t commit_index,
                                               uint64_t applier_seq);

  // Registers a (re)admission intent. Called before Run's workers start.
  void RegisterAdmission(int rank, uint64_t at_commit);

  // True while an unconsumed intent for `rank` exists — i.e. some future
  // commit may still (re)admit it — or a commit already consumed one and
  // flipped the rank alive, so its readmission is in flight and the worker
  // must park in AwaitAdmission rather than exit.
  [[nodiscard]] bool HasPendingAdmission(int rank);

  // Parks a crashed/latent `rank` until a commit re-admits it (kAdmitted),
  // the group drains or `timeout_ms` elapses (kAbandoned), or the group
  // aborts (kAborted). timeout_ms <= 0 waits without a deadline. On
  // kAdmitted the caller owns a barrier slot and must immediately call
  // Barrier() once, joining the admitting commit's closing barrier.
  [[nodiscard]] AdmissionStatus AwaitAdmission(int rank, int64_t timeout_ms);

  // Fingerprint rendezvous run at every collective entry in checked mode:
  //   deposit -> barrier -> validate -> barrier.
  // On divergence every rank computes the same per-rank diff and throws, so
  // the group unwinds in lockstep instead of deadlocking in the collective
  // body or silently mis-reducing.
  void CheckedRendezvous(int rank, const CollectiveFingerprint& fp);
};

}  // namespace detail

// Capacity and defaults for one Transport. Hard limits — a Session that
// would exceed them fails to construct. Admission *policy* (queueing jobs
// until capacity frees up) lives above, in core::TrainingService.
struct TransportOptions {
  // Barrier watchdog for every session opened on this transport; the
  // sentinel defers to ACPS_COLLECTIVE_TIMEOUT_MS (<= 0 disables).
  int64_t barrier_timeout_ms = kCollectiveTimeoutFromEnv;
  // Maximum concurrently open sessions (0 = unlimited).
  int max_sessions = 0;
  // Maximum sum of world sizes across open sessions (0 = unlimited).
  int max_total_ranks = 0;

  // Returns "" when valid, otherwise one message naming every violation.
  [[nodiscard]] std::string Validate() const;
};

// The long-lived shared substrate. One Transport hosts any number of
// concurrent per-job Sessions (subject to TransportOptions capacity); it
// outlives all of them. Thread-safe: sessions may be opened/closed from any
// thread.
class Transport {
 public:
  explicit Transport(TransportOptions options = {});
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] const TransportOptions& options() const noexcept {
    return options_;
  }

  // Attaches a tracer: every Communicator of every session Run started
  // afterwards emits spans into it (rows share one time base across
  // tenants; spans carry the session's rank). Pass nullptr to detach. The
  // tracer must outlive the runs that use it.
  void set_tracer(obs::Tracer* tracer) noexcept;
  [[nodiscard]] obs::Tracer* tracer() const noexcept;

  // Attaches a metrics registry: sessions record their fault/retry/
  // degradation counters under their own `job/<id>/` namespace into it.
  // Same lifetime contract as the tracer.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept;
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept;

  // --- Capacity accounting -------------------------------------------------
  [[nodiscard]] int active_sessions() const;
  [[nodiscard]] int active_ranks() const;
  [[nodiscard]] uint64_t sessions_opened() const;

  // Deterministic per-job envelope salt: 0 for the anonymous session (the
  // legacy shim keeps bitwise-identical envelopes), a 64-bit mix of the job
  // id otherwise. Exposed for isolation tests.
  [[nodiscard]] static uint64_t EnvelopeSalt(const std::string& job_id);

 private:
  friend class Session;

  // Opens one channel block for a session of `world_size` ranks. Throws
  // acps::Error when the transport is at capacity or world_size < 1.
  [[nodiscard]] std::unique_ptr<detail::GroupState> OpenChannel(
      const std::string& job_id, int world_size, AllReduceAlgo default_algo);
  void CloseChannel(int world_size) noexcept;

  TransportOptions options_;
  mutable ACPS_LOCK_LEVEL(20) transport_mu_;
  int active_sessions_ = 0;
  int active_ranks_ = 0;
  uint64_t sessions_opened_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace acps::comm
