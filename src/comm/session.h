// Per-job communication session (DESIGN.md §7).
//
// A Session is one tenant's namespace on a shared Transport: it owns the
// job's channel block (barrier, mailboxes, membership, contract checker),
// its envelope salt (chunks sealed under one session never validate under
// another), its obs metric namespace (`job/<id>/...`), its default
// collective configuration (SessionOptions), and — optionally — a
// tenant-scoped fault injector, so chaos plans aimed at this job cannot
// leak into any other tenant. N sessions run concurrently over one
// transport; each Session::Run spawns the job's worker threads exactly the
// way the old single-tenant ThreadGroup did.
//
// Lifetime: the Transport must outlive every Session opened on it, and a
// Session must outlive its Run calls. Sessions are not thread-safe objects
// themselves (one job driver drives one session), but any number of
// sessions may run concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/transport.h"

namespace acps::comm {

class Communicator;

// Session-level collective configuration — the knobs that used to be
// threaded through every call site move here, validated once at session
// construction (the TrainConfig::Validate pattern).
struct SessionOptions {
  // Default algorithm for all_reduce calls that pass
  // AllReduceAlgo::kSessionDefault (the parameter default).
  AllReduceAlgo algo = AllReduceAlgo::kRing;
  // Fusion-buffer budget for aggregators built for this session, in bytes.
  // 0 means "library default" (fusion::kDefaultBufferBytes, 25 MiB).
  int64_t fusion_bytes = 0;
  // Aggregation method for core::TrainingService jobs, parsed by
  // core::MakeAggregatorFactory: "ssgd", "acpsgd[:rank]", "powersgd[:rank]",
  // "sign", "topk[:ratio]", "randomk[:ratio]". Structural validation (known
  // name, parameter range) happens in core, which owns the registry; here
  // only emptiness is rejected.
  std::string compressor_spec = "ssgd";

  // Elastic membership capacity: the maximum world size this session may
  // ever grow to. 0 (the default) means "fixed membership" — capacity
  // equals the constructor's world_size and the session behaves exactly as
  // before. When > world_size, ranks [world_size, max_world_size) start
  // latent and may be admitted at a membership commit
  // (Communicator::commit_view) if the fault injector's AdmissionSchedule
  // names them; crashed or departed ranks may likewise rejoin. Channel
  // buffers (mailboxes, gather blocks) are capacity-sized, so
  // Communicator::world_size() reports the capacity in elastic sessions.
  int max_world_size = 0;

  // Returns "" when valid, otherwise one descriptive message naming every
  // violated constraint. Called at Session construction.
  [[nodiscard]] std::string Validate() const;
};

class Session {
 public:
  // Opens a channel for `world_size` ranks on `transport`. Throws
  // acps::Error when options are invalid or the transport is at capacity.
  // `job_id` scopes envelopes, metrics and fault injection; "" is the
  // anonymous legacy session (unsalted envelopes, unprefixed metrics).
  Session(Transport& transport, std::string job_id, int world_size,
          SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] int world_size() const noexcept { return world_size_; }
  // Channel capacity: equals world_size() for fixed-membership sessions,
  // SessionOptions::max_world_size for elastic ones.
  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::string& job_id() const noexcept { return job_id_; }
  [[nodiscard]] const SessionOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  // The salt sealed into this session's envelope checksums (isolation
  // tests assert distinct jobs get distinct salts).
  [[nodiscard]] uint64_t envelope_salt() const noexcept;
  // "job/<id>/" for named jobs, "" for the anonymous session.
  [[nodiscard]] const std::string& metric_prefix() const noexcept;

  // Toggles collective-contract fingerprint checking (contract.h) for this
  // session. Defaults to on in sanitizer builds and off otherwise;
  // ACPS_COLLECTIVE_CONTRACT overrides the build-type default.
  void set_contract_checking(bool on) noexcept;
  [[nodiscard]] bool contract_checking() const noexcept;

  // Installs a tenant-scoped fault injector (not owned; nullptr clears).
  // While set, every fault hook of this session routes here INSTEAD of the
  // process-global fault::InstalledFaultInjector, so faults aimed at this
  // job never touch other tenants. Must only be called between Runs.
  void set_fault_injector(fault::FaultInjector* injector) noexcept;
  [[nodiscard]] fault::FaultInjector* fault_injector() const noexcept;

  // Spawns one thread per capacity slot, each invoking fn(comm). Blocks
  // until all return. Exceptions thrown by any worker are rethrown (first
  // one wins) after all workers have been joined — except
  // fault::RankCrashed and fault::RankDeparted, which mark the rank down
  // (see crashed_ranks / departed_ranks) and let the survivors finish.
  //
  // Elastic sessions (max_world_size > world_size, or an injector whose
  // AdmissionSchedule is non-empty): a downed rank with a pending
  // admission parks until a commit_view re-admits it, then runs fn again
  // as a new generation (Communicator::join_generation() > 0) with its
  // collective sequence resumed in lockstep. ACPS_FAULT_REJOIN=0 disables
  // readmission entirely (legacy fail-stop-forever);
  // ACPS_FAULT_REJOIN_TIMEOUT_MS bounds the park (default: the collective
  // watchdog timeout).
  void Run(const std::function<void(Communicator&)>& fn);

  // Ranks that fail-stopped (injected crash) during the most recent Run,
  // in crash order. A rank that crashed, rejoined and crashed again
  // appears once per crash.
  [[nodiscard]] const std::vector<int>& crashed_ranks() const noexcept;

  // Ranks that departed gracefully at a membership commit during the most
  // recent Run, in commit order.
  [[nodiscard]] const std::vector<int>& departed_ranks() const noexcept;

  // Membership epoch committed by the most recent Run (0 when no
  // commit_view ran).
  [[nodiscard]] uint64_t membership_epoch() const noexcept;

  // Aggregate traffic across this session's workers from the most recent
  // Run. Never includes another tenant's bytes.
  [[nodiscard]] TrafficStats total_stats() const;

  // Records one step latency into the session's metric namespace
  // (`<prefix>step_ms` histogram on the transport's registry; no-op when no
  // registry is attached). The per-job p50/p99 step-latency export the
  // multi-tenant stress gate asserts on.
  void ObserveStepMs(double ms);

 private:
  Transport* transport_;
  std::string job_id_;
  int world_size_;
  int capacity_;
  SessionOptions options_;
  std::unique_ptr<detail::GroupState> state_;
  std::vector<TrafficStats> last_run_stats_;
};

}  // namespace acps::comm
