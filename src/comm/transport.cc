#include "comm/transport.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace acps::comm {
namespace detail {

GroupState::GroupState(int p, int64_t timeout_ms)
    : world_size(p), barrier_timeout_ms(timeout_ms),
      mailbox(static_cast<size_t>(p)), sizes(static_cast<size_t>(p), 0),
      retry_flag(static_cast<size_t>(p), 0),
      alive(static_cast<size_t>(p), 1), alive_count(p),
      ever_ran(static_cast<size_t>(p), 1) {
  contract.Reset(p);
}

std::string GroupState::AbortMessage() const {
  std::string msg = "communicator group aborted";
  if (!abort_reason.empty()) msg += ": " + abort_reason;
  return msg;
}

void GroupState::Barrier() {
  // Barrier entry is rank-agnostic here (GroupState does not know which
  // worker is calling), so the hook reports rank -1; the schedule
  // controller treats it as a pure perturbation point.
  check::SchedPoint(check::PointKind::kBarrierEnter, /*rank=*/-1);
  std::unique_lock lock(group_mu);
  if (aborted) throw Error(AbortMessage());
  if (++arrived >= alive_count) {
    arrived = 0;
    sense = !sense;
    cv.notify_all();
  } else {
    const bool my_sense = sense;
    const auto pred = [&] { return sense != my_sense || aborted; };
    if (barrier_timeout_ms > 0) {
      if (!cv.wait_for(lock, std::chrono::milliseconds(barrier_timeout_ms),
                       pred)) {
        // Some worker never arrived: collective mismatch or a hung worker.
        // Compose the watchdog report (who is blocked in which collective),
        // abort the whole group so every waiter unblocks, and surface the
        // report through every thrown error.
        std::string report =
            "collective watchdog: barrier timeout after " +
            std::to_string(barrier_timeout_ms) +
            " ms — a worker never reached the collective (mismatched "
            "collective sequence or hung worker)\n" +
            contract.BlockedReport();
        aborted = true;
        abort_reason = report;
        cv.notify_all();
        throw Error(report);
      }
    } else {
      cv.wait(lock, pred);
    }
    if (aborted) throw Error(AbortMessage());
  }
}

void GroupState::Abort() {
  std::lock_guard lock(group_mu);
  aborted = true;
  cv.notify_all();
}

void GroupState::MarkDead(int rank) {
  std::lock_guard lock(group_mu);
  auto& a = alive[static_cast<size_t>(rank)];
  if (a == 0) return;
  a = 0;
  --alive_count;
  crashed.push_back(rank);
  contract.SetDead(rank);
  if (alive_count > 0 && arrived >= alive_count) {
    arrived = 0;
    sense = !sense;
  }
  cv.notify_all();
}

void GroupState::MarkLeft(int rank) {
  std::lock_guard lock(group_mu);
  auto& a = alive[static_cast<size_t>(rank)];
  if (a == 0) return;
  a = 0;
  --alive_count;
  departed.push_back(rank);
  contract.SetLeft(rank);
  if (alive_count > 0 && arrived >= alive_count) {
    arrived = 0;
    sense = !sense;
  }
  cv.notify_all();
}

ViewTransition GroupState::ApplyViewCommit(uint64_t commit_index,
                                           uint64_t applier_seq) {
  std::lock_guard lock(group_mu);
  if (commit_count >= commit_index) {
    // Another rank of this commit already applied it; the guard makes the
    // outcome independent of which rank reached the lock first (the next
    // commit cannot start before this one's closing barrier, so
    // last_transition is exactly this commit's record).
    return last_transition;
  }
  commit_count = commit_index;
  ViewTransition t;
  t.commit_index = commit_index;
  // This commit's graceful leavers: MarkLeft entries not yet reported.
  for (size_t i = departed_reported; i < departed.size(); ++i)
    t.left.push_back(departed[i]);
  departed_reported = departed.size();
  std::sort(t.left.begin(), t.left.end());
  // Admissions: every unconsumed intent whose eligibility window opened
  // (at_commit <= commit_index) and whose rank is currently down. A rank
  // that has not crashed yet keeps its intent for a later commit.
  for (JoinIntent& intent : join_intents) {
    if (intent.consumed || intent.at_commit > commit_index) continue;
    const auto r = static_cast<size_t>(intent.rank);
    if (alive[r] != 0) continue;
    intent.consumed = true;
    alive[r] = 1;
    ++alive_count;
    contract.SetAlive(intent.rank);
    t.joined.push_back(intent.rank);
    if (ever_ran[r] != 0) t.rejoined.push_back(intent.rank);
    ever_ran[r] = 1;
  }
  std::sort(t.joined.begin(), t.joined.end());
  std::sort(t.rejoined.begin(), t.rejoined.end());
  epoch += 1;
  t.epoch = epoch;
  commit_seq = applier_seq;
  last_transition = t;
  // Growing alive_count can never complete an in-flight barrier round
  // (arrived only moved further from the target), so no round fix-up is
  // needed — only parked joiners must be woken.
  cv.notify_all();
  return t;
}

void GroupState::RegisterAdmission(int rank, uint64_t at_commit) {
  // Fired before the lock: sched-point-under-lock forbids controlled
  // yields inside a guard, and the perturbation window is the registration
  // order itself, not the mailbox write.
  check::SchedPoint(check::PointKind::kJoinIntent, rank);
  std::lock_guard lock(group_mu);
  join_intents.push_back({rank, at_commit, /*consumed=*/false});
}

bool GroupState::HasPendingAdmission(int rank) {
  std::lock_guard lock(group_mu);
  // A commit may consume this rank's intent (flipping it alive) between the
  // crash unwind and this check; the readmission is then already in flight
  // and the worker must proceed to AwaitAdmission (which returns kAdmitted
  // immediately) — exiting instead would strand the survivors' closing
  // barrier waiting on a thread that is gone.
  if (alive[static_cast<size_t>(rank)] != 0) return true;
  for (const JoinIntent& intent : join_intents) {
    if (intent.rank == rank && !intent.consumed) return true;
  }
  return false;
}

AdmissionStatus GroupState::AwaitAdmission(int rank, int64_t timeout_ms) {
  std::unique_lock lock(group_mu);
  contract.NoteJoinWaiting(rank, true);
  const auto pred = [&] {
    return alive[static_cast<size_t>(rank)] == 1 || aborted || working == 0;
  };
  bool woke = true;
  if (timeout_ms > 0) {
    woke = cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), pred);
  } else {
    cv.wait(lock, pred);
  }
  AdmissionStatus status;
  if (woke && alive[static_cast<size_t>(rank)] == 1) {
    // ApplyViewCommit already cleared the waiting flag via contract.SetAlive.
    status = AdmissionStatus::kAdmitted;
  } else if (woke && aborted) {
    contract.NoteJoinWaiting(rank, false);
    status = AdmissionStatus::kAborted;
  } else {
    // Group drained (no thread can commit a view again) or timed out.
    // Consume the rank's remaining intents under the same lock the commit
    // applier admits under, so a later commit cannot admit a joiner that
    // already gave up (which would leave its closing barrier waiting on a
    // thread that is gone).
    for (JoinIntent& intent : join_intents) {
      if (intent.rank == rank) intent.consumed = true;
    }
    contract.NoteJoinWaiting(rank, false);
    status = AdmissionStatus::kAbandoned;
  }
  return status;
}

void GroupState::CheckedRendezvous(int rank, const CollectiveFingerprint& fp) {
  if (!contract_enabled) return;
  contract.Deposit(rank, fp);
  Barrier();
  if (auto diff = contract.Validate()) throw Error(*diff);
  Barrier();
}

}  // namespace detail

namespace {

// ACPS_COLLECTIVE_TIMEOUT_MS resolution for the kCollectiveTimeoutFromEnv
// default: unset/unparsable -> 60000, <= 0 -> watchdog disabled.
int64_t ResolveBarrierTimeout(int64_t requested) {
  if (requested != kCollectiveTimeoutFromEnv) return requested;
  if (const char* env = std::getenv("ACPS_COLLECTIVE_TIMEOUT_MS")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<int64_t>(v);
  }
  return 60000;
}

// Contract checking defaults on in sanitizer builds (the cmake presets
// define ACPS_SANITIZE_BUILD) and off otherwise; ACPS_COLLECTIVE_CONTRACT
// (0/1) overrides either way.
bool ResolveContractDefault() {
  if (const char* env = std::getenv("ACPS_COLLECTIVE_CONTRACT"))
    return env[0] != '\0' && env[0] != '0';
#ifdef ACPS_SANITIZE_BUILD
  return true;
#else
  return false;
#endif
}

}  // namespace

std::string TransportOptions::Validate() const {
  std::string err;
  const auto add = [&err](const std::string& msg) {
    if (!err.empty()) err += "; ";
    err += msg;
  };
  if (max_sessions < 0)
    add("max_sessions must be >= 0 (0 = unlimited), got " +
        std::to_string(max_sessions));
  if (max_total_ranks < 0)
    add("max_total_ranks must be >= 0 (0 = unlimited), got " +
        std::to_string(max_total_ranks));
  return err;
}

Transport::Transport(TransportOptions options) : options_(options) {
  const std::string err = options_.Validate();
  ACPS_CHECK_MSG(err.empty(), "invalid TransportOptions: " << err);
  options_.barrier_timeout_ms =
      ResolveBarrierTimeout(options_.barrier_timeout_ms);
}

Transport::~Transport() = default;

void Transport::set_tracer(obs::Tracer* tracer) noexcept {
  std::lock_guard lock(transport_mu_);
  tracer_ = tracer;
}

obs::Tracer* Transport::tracer() const noexcept {
  std::lock_guard lock(transport_mu_);
  return tracer_;
}

void Transport::set_metrics(obs::MetricsRegistry* metrics) noexcept {
  std::lock_guard lock(transport_mu_);
  metrics_ = metrics;
}

obs::MetricsRegistry* Transport::metrics() const noexcept {
  std::lock_guard lock(transport_mu_);
  return metrics_;
}

int Transport::active_sessions() const {
  std::lock_guard lock(transport_mu_);
  return active_sessions_;
}

int Transport::active_ranks() const {
  std::lock_guard lock(transport_mu_);
  return active_ranks_;
}

uint64_t Transport::sessions_opened() const {
  std::lock_guard lock(transport_mu_);
  return sessions_opened_;
}

uint64_t Transport::EnvelopeSalt(const std::string& job_id) {
  if (job_id.empty()) return 0;
  // FNV-1a over the id, then a SplitMix64-style finalizer: deterministic
  // per job id (the solo-parity gate re-runs a job under the same id and
  // must see identical behaviour), well-mixed across ids.
  uint64_t h = 1469598103934665603ull;
  for (const char c : job_id) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  // A salt of 0 means "anonymous session"; never let a named job collide
  // with it.
  return h == 0 ? 1 : h;
}

std::unique_ptr<detail::GroupState> Transport::OpenChannel(
    const std::string& job_id, int world_size, AllReduceAlgo default_algo) {
  ACPS_CHECK_MSG(world_size >= 1, "world_size must be >= 1, got "
                                      << world_size << " (job '" << job_id
                                      << "')");
  ACPS_CHECK_MSG(default_algo != AllReduceAlgo::kSessionDefault,
                 "session default algo must be concrete (kRing or kNaive)");
  {
    std::lock_guard lock(transport_mu_);
    if (options_.max_sessions > 0 &&
        active_sessions_ + 1 > options_.max_sessions) {
      throw Error("transport at capacity: " + std::to_string(active_sessions_) +
                  " open sessions of max " +
                  std::to_string(options_.max_sessions) +
                  " (rejecting job '" + job_id + "')");
    }
    if (options_.max_total_ranks > 0 &&
        active_ranks_ + world_size > options_.max_total_ranks) {
      throw Error("transport at capacity: " + std::to_string(active_ranks_) +
                  " ranks in use of max " +
                  std::to_string(options_.max_total_ranks) +
                  " (rejecting job '" + job_id + "', world_size " +
                  std::to_string(world_size) + ")");
    }
    ++active_sessions_;
    active_ranks_ += world_size;
    ++sessions_opened_;
  }
  auto state = std::make_unique<detail::GroupState>(
      world_size, options_.barrier_timeout_ms);
  state->contract_enabled = ResolveContractDefault();
  state->envelope_salt = EnvelopeSalt(job_id);
  state->job_id = job_id;
  state->metric_prefix = job_id.empty() ? "" : "job/" + job_id + "/";
  state->default_algo = default_algo;
  return state;
}

void Transport::CloseChannel(int world_size) noexcept {
  std::lock_guard lock(transport_mu_);
  --active_sessions_;
  active_ranks_ -= world_size;
}

}  // namespace acps::comm
