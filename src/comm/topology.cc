#include "comm/topology.h"

#include "tensor/check.h"

namespace acps::comm {

ClusterTopology ClusterTopology::Paper32() { return ClusterTopology{}; }

HierarchicalCostModel::HierarchicalCostModel(ClusterTopology topo)
    : topo_(topo),
      flat_(topo.inter_node, topo.world_size()),
      intra_(topo.intra_node, topo.gpus_per_node),
      inter_(topo.inter_node, topo.nodes) {
  ACPS_CHECK_MSG(topo.nodes >= 1 && topo.gpus_per_node >= 1,
                 "invalid topology");
}

double HierarchicalCostModel::FlatAllReduce(double bytes) const {
  return flat_.AllReduce(bytes);
}

double HierarchicalCostModel::HierarchicalAllReduce(double bytes) const {
  if (bytes <= 0) return 0.0;
  // Phase 1: reduce-scatter within each node (fast links).
  const double phase1 = intra_.ReduceScatter(bytes);
  // Phase 2: each of the gpus_per_node leaders-of-a-shard all-reduces its
  // 1/gpus_per_node shard across nodes; shards move in parallel over each
  // node's NIC, so the wall-clock is one shard's all-reduce.
  const double phase2 =
      inter_.AllReduce(bytes / topo_.gpus_per_node);
  // Phase 3: all-gather within each node.
  const double phase3 = intra_.AllGather(bytes / topo_.gpus_per_node);
  return phase1 + phase2 + phase3;
}

double HierarchicalCostModel::Speedup(double bytes) const {
  const double h = HierarchicalAllReduce(bytes);
  ACPS_CHECK(h > 0);
  return FlatAllReduce(bytes) / h;
}

}  // namespace acps::comm
