#include "comm/session.h"

#include <thread>
#include <utility>

#include "comm/communicator.h"
#include "fault/injector.h"
#include "obs/metrics_registry.h"

namespace acps::comm {

std::string SessionOptions::Validate() const {
  std::string err;
  const auto add = [&err](const std::string& msg) {
    if (!err.empty()) err += "; ";
    err += msg;
  };
  if (algo == AllReduceAlgo::kSessionDefault)
    add("algo must be concrete (kRing or kNaive), not kSessionDefault");
  if (fusion_bytes < 0)
    add("fusion_bytes must be >= 0 (0 = library default), got " +
        std::to_string(fusion_bytes));
  if (fusion_bytes > 0 && fusion_bytes < 1024)
    add("fusion_bytes must be 0 or >= 1024, got " +
        std::to_string(fusion_bytes));
  if (compressor_spec.empty())
    add("compressor_spec must be non-empty (e.g. \"ssgd\")");
  return err;
}

Session::Session(Transport& transport, std::string job_id, int world_size,
                 SessionOptions options)
    : transport_(&transport), job_id_(std::move(job_id)),
      world_size_(world_size), options_(std::move(options)) {
  const std::string err = options_.Validate();
  ACPS_CHECK_MSG(err.empty(), "invalid SessionOptions for job '"
                                  << job_id_ << "': " << err);
  state_ = transport_->OpenChannel(job_id_, world_size_, options_.algo);
}

Session::~Session() {
  if (state_ != nullptr) transport_->CloseChannel(world_size_);
}

uint64_t Session::envelope_salt() const noexcept {
  return state_->envelope_salt;
}

const std::string& Session::metric_prefix() const noexcept {
  return state_->metric_prefix;
}

void Session::set_contract_checking(bool on) noexcept {
  state_->contract_enabled = on;
}

bool Session::contract_checking() const noexcept {
  return state_->contract_enabled;
}

void Session::set_fault_injector(fault::FaultInjector* injector) noexcept {
  state_->injector = injector;
}

fault::FaultInjector* Session::fault_injector() const noexcept {
  return state_->injector;
}

void Session::Run(const std::function<void(Communicator&)>& fn) {
  last_run_stats_.assign(static_cast<size_t>(world_size_), TrafficStats{});
  detail::GroupState* st = state_.get();
  // Observability attachment is sampled per Run so set_tracer/set_metrics
  // on the transport take effect for the next job step, like the old
  // ThreadGroup contract.
  st->tracer = transport_->tracer();
  st->metrics = transport_->metrics();
  // Reset barrier, error, membership, mailbox, and contract state: an
  // aborted or degraded previous Run may have left the sense-reversing
  // barrier mid-flip, ranks marked dead, and mailboxes holding old
  // envelopes.
  st->aborted = false;
  st->arrived = 0;
  st->sense = false;
  st->first_error = nullptr;
  st->abort_reason.clear();
  st->contract.Reset(world_size_);
  st->mailbox.assign(static_cast<size_t>(world_size_), detail::Mailbox{});
  st->retry_flag.assign(static_cast<size_t>(world_size_), 0);
  st->alive.assign(static_cast<size_t>(world_size_), 1);
  st->alive_count = world_size_;
  st->crashed.clear();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    threads.emplace_back([this, st, r, &fn] {
      Communicator comm(st, r, world_size_);
      try {
        fn(comm);
      } catch (const fault::RankCrashed&) {
        // Fail-stop: the rank already marked itself dead at its collective
        // entry; the surviving ranks reconfigure and finish the run.
      } catch (...) {
        {
          std::lock_guard lock(st->err_mu);
          if (!st->first_error) st->first_error = std::current_exception();
        }
        st->Abort();
      }
      last_run_stats_[static_cast<size_t>(r)] = comm.stats();
    });
  }
  for (auto& t : threads) t.join();
  if (st->first_error) std::rethrow_exception(st->first_error);
}

const std::vector<int>& Session::crashed_ranks() const noexcept {
  return state_->crashed;
}

TrafficStats Session::total_stats() const {
  TrafficStats total;
  for (const auto& s : last_run_stats_) {
    total.bytes_sent += s.bytes_sent;
    total.messages_sent += s.messages_sent;
    total.collectives += s.collectives;
  }
  return total;
}

void Session::ObserveStepMs(double ms) {
  obs::MetricsRegistry* metrics = transport_->metrics();
  if (metrics == nullptr) return;
  metrics->histogram(state_->metric_prefix + "step_ms").Observe(ms);
}

}  // namespace acps::comm
