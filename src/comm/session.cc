#include "comm/session.h"

#include <cstdlib>
#include <thread>
#include <utility>

#include "check/sched_point.h"
#include "comm/communicator.h"
#include "fault/injector.h"
#include "obs/metrics_registry.h"

namespace acps::comm {

namespace {

// ACPS_FAULT_REJOIN: 0 disables elastic readmission (legacy fail-stop-
// forever semantics); unset or any other value leaves it on.
bool ResolveRejoinEnabled() {
  if (const char* env = std::getenv("ACPS_FAULT_REJOIN"))
    return env[0] != '\0' && env[0] != '0';
  return true;
}

// ACPS_FAULT_REJOIN_TIMEOUT_MS: how long a downed rank may park waiting
// for readmission; <= 0 waits without a deadline. Defaults to the
// collective watchdog timeout so a stuck rejoin surfaces on the same
// clock as a stuck collective.
int64_t ResolveRejoinTimeout(int64_t fallback) {
  if (const char* env = std::getenv("ACPS_FAULT_REJOIN_TIMEOUT_MS")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<int64_t>(v);
  }
  return fallback;
}

}  // namespace

std::string SessionOptions::Validate() const {
  std::string err;
  const auto add = [&err](const std::string& msg) {
    if (!err.empty()) err += "; ";
    err += msg;
  };
  if (algo == AllReduceAlgo::kSessionDefault)
    add("algo must be concrete (kRing or kNaive), not kSessionDefault");
  if (fusion_bytes < 0)
    add("fusion_bytes must be >= 0 (0 = library default), got " +
        std::to_string(fusion_bytes));
  if (fusion_bytes > 0 && fusion_bytes < 1024)
    add("fusion_bytes must be 0 or >= 1024, got " +
        std::to_string(fusion_bytes));
  if (compressor_spec.empty())
    add("compressor_spec must be non-empty (e.g. \"ssgd\")");
  if (max_world_size < 0)
    add("max_world_size must be >= 0 (0 = fixed membership), got " +
        std::to_string(max_world_size));
  return err;
}

Session::Session(Transport& transport, std::string job_id, int world_size,
                 SessionOptions options)
    : transport_(&transport), job_id_(std::move(job_id)),
      world_size_(world_size), options_(std::move(options)) {
  const std::string err = options_.Validate();
  ACPS_CHECK_MSG(err.empty(), "invalid SessionOptions for job '"
                                  << job_id_ << "': " << err);
  ACPS_CHECK_MSG(
      options_.max_world_size == 0 || options_.max_world_size >= world_size_,
      "max_world_size (" << options_.max_world_size
                         << ") must be 0 or >= world_size (" << world_size_
                         << ") for job '" << job_id_ << "'");
  capacity_ =
      options_.max_world_size == 0 ? world_size_ : options_.max_world_size;
  state_ = transport_->OpenChannel(job_id_, capacity_, options_.algo);
}

Session::~Session() {
  if (state_ != nullptr) transport_->CloseChannel(capacity_);
}

uint64_t Session::envelope_salt() const noexcept {
  return state_->envelope_salt;
}

const std::string& Session::metric_prefix() const noexcept {
  return state_->metric_prefix;
}

void Session::set_contract_checking(bool on) noexcept {
  state_->contract_enabled = on;
}

bool Session::contract_checking() const noexcept {
  return state_->contract_enabled;
}

void Session::set_fault_injector(fault::FaultInjector* injector) noexcept {
  state_->injector = injector;
}

fault::FaultInjector* Session::fault_injector() const noexcept {
  return state_->injector;
}

void Session::Run(const std::function<void(Communicator&)>& fn) {
  last_run_stats_.assign(static_cast<size_t>(capacity_), TrafficStats{});
  detail::GroupState* st = state_.get();
  // Observability attachment is sampled per Run so set_tracer/set_metrics
  // on the transport take effect for the next job step, like the old
  // ThreadGroup contract.
  st->tracer = transport_->tracer();
  st->metrics = transport_->metrics();
  // Reset barrier, error, membership, mailbox, and contract state: an
  // aborted or degraded previous Run may have left the sense-reversing
  // barrier mid-flip, ranks marked dead, and mailboxes holding old
  // envelopes. Channel buffers are capacity-sized; ranks beyond the
  // initial world start latent (down, never run) until a membership commit
  // admits them.
  st->aborted = false;
  st->arrived = 0;
  st->sense = false;
  st->first_error = nullptr;
  st->abort_reason.clear();
  st->contract.Reset(capacity_);
  st->mailbox.assign(static_cast<size_t>(capacity_), detail::Mailbox{});
  st->retry_flag.assign(static_cast<size_t>(capacity_), 0);
  st->alive.assign(static_cast<size_t>(capacity_), 0);
  for (int r = 0; r < world_size_; ++r) st->alive[static_cast<size_t>(r)] = 1;
  st->alive_count = world_size_;
  st->crashed.clear();
  st->departed.clear();
  st->departed_reported = 0;
  st->epoch = 0;
  st->commit_count = 0;
  st->commit_seq = 0;
  st->last_transition = detail::ViewTransition{};
  st->join_intents.clear();
  st->ever_ran.assign(static_cast<size_t>(capacity_), 0);
  for (int r = 0; r < world_size_; ++r)
    st->ever_ran[static_cast<size_t>(r)] = 1;
  for (int r = world_size_; r < capacity_; ++r) st->contract.SetLatent(r);
  st->working = world_size_;

  const bool rejoin_enabled = ResolveRejoinEnabled();
  const int64_t rejoin_timeout_ms =
      ResolveRejoinTimeout(st->barrier_timeout_ms);
  // All (re)admission intents are registered before any worker starts:
  // admission becomes a pure function of (commit index, membership state),
  // never of when a crashed thread happened to reach its wait loop.
  fault::FaultInjector* inj =
      st->injector != nullptr ? st->injector : fault::InstalledFaultInjector();
  if (rejoin_enabled && inj != nullptr) {
    for (const fault::AdmissionIntent& intent : inj->AdmissionSchedule()) {
      ACPS_CHECK_MSG(intent.rank >= 0 && intent.rank < capacity_,
                     "admission intent rank " << intent.rank
                                              << " out of capacity range [0, "
                                              << capacity_ << ")");
      ACPS_CHECK_MSG(intent.at_commit >= 1,
                     "admission intent commit index must be >= 1");
      st->RegisterAdmission(intent.rank, intent.at_commit);
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(capacity_));
  for (int r = 0; r < capacity_; ++r) {
    threads.emplace_back([this, st, r, &fn, rejoin_timeout_ms] {
      bool active = r < world_size_;
      int generation = 0;
      uint64_t resume_seq = 0;
      TrafficStats acc;
      for (;;) {
        if (!active) {
          // Down (latent, crashed, or departed): park only while some
          // unconsumed intent may still admit this rank.
          if (!st->HasPendingAdmission(r)) break;
          const detail::AdmissionStatus status =
              st->AwaitAdmission(r, rejoin_timeout_ms);
          if (status == detail::AdmissionStatus::kAborted) break;
          if (status == detail::AdmissionStatus::kAbandoned) {
            if (st->metrics != nullptr) {
              st->metrics->counter(st->metric_prefix + "fault.rejoin.abandoned")
                  .Add();
            }
            break;
          }
          // Admitted: join the admitting commit's closing barrier (it
          // cannot complete without this rank — alive_count already counts
          // it), then resume the group's collective sequence in lockstep.
          try {
            st->Barrier();
          } catch (...) {
            {
              std::lock_guard lock(st->err_mu);
              if (!st->first_error) st->first_error = std::current_exception();
            }
            st->Abort();
            break;
          }
          {
            std::lock_guard lock(st->group_mu);
            ++st->working;
            resume_seq = st->commit_seq;
          }
          // Readmitted and past the admitting commit's closing barrier:
          // tell any schedule controller this rank publishes again before
          // its first collective of the new generation.
          check::SchedPoint(check::PointKind::kRankUp, r);
          ++generation;
          active = true;
        }
        Communicator comm(st, r, capacity_, resume_seq, generation);
        bool may_return = false;
        try {
          fn(comm);
        } catch (const fault::RankCrashed&) {
          // Fail-stop: the rank already marked itself dead at its
          // collective entry; the survivors reconfigure and finish, and a
          // pending admission may bring this rank back at a later commit.
          may_return = true;
        } catch (const fault::RankDeparted&) {
          // Graceful leave at a view commit; like a crash, the rank may be
          // readmitted by a later intent.
          may_return = true;
        } catch (...) {
          {
            std::lock_guard lock(st->err_mu);
            if (!st->first_error) st->first_error = std::current_exception();
          }
          st->Abort();
        }
        acc.bytes_sent += comm.stats().bytes_sent;
        acc.messages_sent += comm.stats().messages_sent;
        acc.collectives += comm.stats().collectives;
        {
          // Leaving fn: when the last working thread drains, parked
          // joiners must wake and abandon (no future commit can admit
          // them).
          std::lock_guard lock(st->group_mu);
          --st->working;
          if (st->working == 0) st->cv.notify_all();
        }
        active = false;
        if (!may_return) break;
      }
      last_run_stats_[static_cast<size_t>(r)] = acc;
    });
  }
  for (auto& t : threads) t.join();
  if (st->first_error) std::rethrow_exception(st->first_error);
}

const std::vector<int>& Session::crashed_ranks() const noexcept {
  return state_->crashed;
}

const std::vector<int>& Session::departed_ranks() const noexcept {
  return state_->departed;
}

uint64_t Session::membership_epoch() const noexcept {
  // Read after Run has joined its workers, so no lock is needed.
  return state_->epoch;
}

TrafficStats Session::total_stats() const {
  TrafficStats total;
  for (const auto& s : last_run_stats_) {
    total.bytes_sent += s.bytes_sent;
    total.messages_sent += s.messages_sent;
    total.collectives += s.collectives;
  }
  return total;
}

void Session::ObserveStepMs(double ms) {
  obs::MetricsRegistry* metrics = transport_->metrics();
  if (metrics == nullptr) return;
  metrics->histogram(state_->metric_prefix + "step_ms").Observe(ms);
}

}  // namespace acps::comm
