// In-process multi-worker communicator with real ring collectives.
//
// This is the NCCL stand-in (DESIGN.md §2): a comm::Session hosts `p`
// workers (one std::thread each) on a shared comm::Transport; every
// collective moves data through per-worker mailboxes with a barrier per
// ring step, so the *algorithm* — chunking, neighbor exchange, reduction
// order, and per-worker traffic — matches the ring implementations used on
// real clusters. Per-worker traffic counters let tests assert the Table II
// communication-volume formulas exactly.
//
// Concurrency model: collectives are rendezvous-synchronous. Every worker of
// the session must call the same sequence of collectives with matching sizes
// (mismatch throws). This mirrors NCCL's usage contract. Workers of
// *different* sessions share nothing but the transport substrate and never
// rendezvous with each other.
//
// Resilience (DESIGN.md §6f): every mailbox publish carries a sequence
// number + checksum envelope sealed under the session's salt. Readers
// validate both; a failed validation (dropped, replayed, stale, or corrupted
// chunk — injectable via fault/injector.h, process-wide or per session)
// triggers a bounded, deterministic group retry with virtual-time backoff,
// so recoverable wire faults are absorbed with bitwise-identical results. A
// rank that fail-stops at a collective entry is removed from the membership
// view: subsequent collectives run over the surviving ranks (ring
// reconfigured, chunking over the alive count, dead all-gather blocks
// zeroed) and callers rescale by alive_world_size().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "check/sched_point.h"
#include "comm/contract.h"
#include "comm/session.h"
#include "comm/transport.h"
#include "tensor/check.h"

namespace acps::obs {
class Counter;
}  // namespace acps::obs

namespace acps::comm {

// Per-worker handle. Obtained inside Session::Run (or the deprecated
// ThreadGroup::Run shim); not movable across workers.
class Communicator {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int world_size() const noexcept { return world_size_; }

  // --- Membership (fault tolerance) ----------------------------------------
  // The alive view as sampled at this worker's most recent collective entry.
  // Without fault injection it is always the full group. Membership only
  // shrinks at collective entries, and every surviving rank samples the same
  // view at the same entry, so view-derived values (e.g. the 1/p mean scale)
  // are deterministic and identical across ranks.
  [[nodiscard]] int alive_world_size() const noexcept {
    return static_cast<int>(view_.size());
  }
  [[nodiscard]] bool is_alive(int r) const {
    return view_alive_[static_cast<size_t>(r)] != 0;
  }
  // Alive ranks in ascending order.
  [[nodiscard]] const std::vector<int>& alive_ranks() const noexcept {
    return view_;
  }

  // --- Elastic membership (DESIGN.md "Elastic membership") -----------------
  // The membership epoch this worker's view belongs to (0 until the first
  // committed transition). Identical across ranks at every collective —
  // checked by the contract fingerprints in epoch-aware sessions.
  [[nodiscard]] uint64_t membership_epoch() const noexcept { return epoch_; }

  // 0 for a rank's first admission (session start), bumped once per
  // readmission — lets workloads tell a resumed generation from the first.
  [[nodiscard]] int join_generation() const noexcept { return generation_; }

  // Barrier-aligned membership-view commit: the only point where ranks may
  // (re)join or gracefully leave. Every alive worker must call it at the
  // same step boundary (it is a collective). Protocol: entry (crashable) →
  // departure decisions → opening barrier → first claimer applies the
  // commit (consume eligible join intents, bump the epoch, snapshot the
  // collective seq for joiners) → closing barrier, which newly admitted
  // ranks also join → view refresh. Returns the committed transition,
  // identical on every rank; the epoch bumps at every commit, changed or
  // not, so replay handles stay aligned. Throws fault::RankDeparted on a
  // rank whose injector schedules a leave at this commit.
  detail::ViewTransition commit_view();

  // The most recent committed transition (copy; identical across ranks
  // between commits).
  [[nodiscard]] detail::ViewTransition last_transition() const;

  // Blocks until every (alive) worker reaches the barrier.
  void barrier();

  // All-reduce in place over `data`. The algorithm defaults to the
  // session's configured one (SessionOptions::algo; kRing for the legacy
  // shim); passing kRing/kNaive explicitly overrides per call (kept for the
  // reference cross-checks in tests — new code should configure the session
  // instead). kRing: reduce-scatter + all-gather, 2*(p-1)/p * N elements
  // per worker; kNaive: flat reduce-to-root + broadcast, the O(p*N)
  // reference. After a rank crash the reduction covers the surviving ranks
  // only — divide by alive_world_size() for a mean.
  void all_reduce(std::span<float> data, ReduceOp op = ReduceOp::kSum,
                  AllReduceAlgo algo = AllReduceAlgo::kSessionDefault);

  // Ring all-gather: worker i contributes `send`; `recv` (size p*|send|)
  // receives all contributions in rank order. All workers must pass equal
  // |send|. Per-worker traffic: (p-1) * |send| elements. Blocks of crashed
  // ranks are zero-filled.
  void all_gather(std::span<const float> send, std::span<float> recv);

  // Byte-wise ring all-gather for packed/compressed payloads (e.g. sign
  // bits, top-k index+value records). Equal |send| across workers.
  void all_gather_bytes(std::span<const std::byte> send,
                        std::span<std::byte> recv);

  // Variable-size all-gather: contributions may differ per worker; sizes are
  // first exchanged, then payloads. `recv` is resized to the concatenation
  // in rank order; `offsets[i]` gives the start of worker i's block. Crashed
  // ranks contribute zero-length blocks.
  void all_gather_v(std::span<const std::byte> send,
                    std::vector<std::byte>& recv,
                    std::vector<size_t>& offsets);

  // Ring reduce-scatter: in-place partial reduction; on return, the worker
  // with the i-th position in alive_ranks() owns the fully reduced chunk i
  // of `data` split into alive_world_size() chunks (other chunks are
  // garbage). With full membership this is chunk `rank` of `world_size`
  // chunks, per GetChunkRange below.
  void reduce_scatter(std::span<float> data, ReduceOp op = ReduceOp::kSum);

  // Broadcast from `root`. Throws fault::DetectedError on every surviving
  // rank (in lockstep) if the root has crashed.
  void broadcast(std::span<float> data, int root);

  // Traffic counters for this worker (session-scoped: only this job's
  // bytes).
  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  // Tracer attached to the owning Transport (nullptr when tracing is off).
  // Runtimes built on the communicator (GradReducer, trainer) emit their
  // spans through the same tracer so all rows share a time base.
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  friend class Session;
  // `resume_seq`/`generation` are nonzero only for a readmitted rank: the
  // joiner adopts the group's collective sequence snapshot taken at the
  // admitting commit, so its next collective entry lands in lockstep with
  // the survivors.
  Communicator(detail::GroupState* state, int rank, int world_size,
               uint64_t resume_seq = 0, int generation = 0);

  // The fault injector governing this worker's transport events: the
  // session-scoped one when installed (tenant-isolated chaos), else the
  // process-global fault::InstalledFaultInjector().
  [[nodiscard]] fault::FaultInjector* ActiveInjector() const noexcept;

  // Per-collective entry hook: bumps the collective sequence number, runs
  // the fault-injection entry site (crash / straggler) when an injector is
  // installed, and resamples the membership view behind an entry barrier so
  // all survivors agree on it before the collective body runs.
  void EnterCollective();
  void RefreshView();
  // Position of this rank in the alive view.
  [[nodiscard]] int ViewIndex() const;
  // Sequence number for step `step` of phase `phase` of the current
  // collective — identical on every rank (collectives are lockstep).
  [[nodiscard]] uint64_t StepSeq(int phase, int step) const;

  // One reliable exchange step: optional publish (seq/checksum envelope
  // under the session salt) plus validated reads from `read_from`, with
  // bounded deterministic group retry on validation failure. Exactly two
  // barriers on the fault-free path — identical to the pre-envelope
  // transport. `consume` is invoked at most once per source rank, only with
  // a validated payload.
  using ConsumeFn = std::function<void(int from, std::span<const std::byte>)>;
  void ReliableStep(uint64_t seq, bool publish,
                    std::span<const std::byte> payload, check::PointKind kind,
                    int fanout, std::span<const int> read_from,
                    const ConsumeFn& consume);

  // Ring all-gather over `buf` viewed as p equal blocks of `block_bytes`;
  // block `rank` must already hold this worker's contribution. `phase`
  // disambiguates the step sequence numbers within the collective.
  void RingAllGatherBlocks(std::span<std::byte> buf, size_t block_bytes,
                           int phase);

  // Naive (reduce-to-root + broadcast) all-reduce body.
  void AllReduceNaive(std::span<float> data, ReduceOp op);

  detail::GroupState* state_;
  int rank_;
  int world_size_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Session-namespaced fault counters (`<prefix>fault.*`), resolved once at
  // construction so the recovery hot path never concatenates metric names.
  // Null when no registry is attached.
  obs::Counter* ctr_crash_ranks_ = nullptr;
  obs::Counter* ctr_straggler_events_ = nullptr;
  obs::Counter* ctr_straggler_ticks_ = nullptr;
  obs::Counter* ctr_retry_attempts_ = nullptr;
  obs::Counter* ctr_detected_ = nullptr;
  obs::Counter* ctr_rejoin_admitted_ = nullptr;
  obs::Counter* ctr_join_ranks_ = nullptr;
  obs::Counter* ctr_leave_ranks_ = nullptr;
  TrafficStats stats_;
  uint64_t collective_seq_ = 0;
  uint64_t epoch_ = 0;  // membership epoch of view_
  int generation_ = 0;  // readmission count for this rank
  std::vector<int> view_;            // alive ranks, ascending
  std::vector<uint8_t> view_alive_;  // indexed by rank
};

// DEPRECATED single-tenant shim (kept for one release): owns a private
// Transport plus one anonymous Session and forwards to them, so code
// written against the pre-service API (`ThreadGroup group(p);
// group.Run(...)`) keeps compiling and behaving bitwise identically.
// New code should open a comm::Session on a shared comm::Transport (or go
// through core::TrainingService); tests/comm_test.cc exercises both paths
// until the shim is removed. In-repo callers have all migrated — the
// attribute (and the analyzer's no-new-threadgroup check) keeps it that
// way for the shim's final release.
class [[deprecated(
    "single-tenant shim: open a comm::Session on a comm::Transport "
    "instead")]] ThreadGroup {
 public:
  // `barrier_timeout_ms` bounds how long any worker may wait at a barrier
  // before the group aborts with an error — turns collective-mismatch bugs
  // (one worker skipping a collective) into a diagnosable exception with a
  // per-rank blocked-in-which-collective report instead of a deadlock.
  // <= 0 disables the watchdog; the default defers to
  // ACPS_COLLECTIVE_TIMEOUT_MS (see kCollectiveTimeoutFromEnv).
  explicit ThreadGroup(int world_size,
                       int64_t barrier_timeout_ms = kCollectiveTimeoutFromEnv);
  ~ThreadGroup();

  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  [[nodiscard]] int world_size() const noexcept;

  // The anonymous session this shim wraps — the bridge for call sites
  // migrating to the Session API incrementally.
  [[nodiscard]] Session& session() noexcept { return *session_; }

  void set_contract_checking(bool on) noexcept;
  [[nodiscard]] bool contract_checking() const noexcept;

  // Tracer/metrics attach to the shim's private transport; see
  // Transport::set_tracer / set_metrics for the lifetime contract.
  void set_tracer(obs::Tracer* tracer) noexcept;
  [[nodiscard]] obs::Tracer* tracer() const noexcept;
  void set_metrics(obs::MetricsRegistry* metrics) noexcept;
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept;

  // Spawns one thread per worker, each invoking fn(comm). Blocks until all
  // return; see Session::Run.
  void Run(const std::function<void(Communicator&)>& fn);

  // Ranks that fail-stopped (injected crash) during the most recent Run,
  // in crash order.
  [[nodiscard]] const std::vector<int>& crashed_ranks() const noexcept;

  // Aggregate traffic across workers from the most recent Run.
  [[nodiscard]] TrafficStats total_stats() const;

 private:
  Transport transport_;
  std::unique_ptr<Session> session_;
};

// The contiguous range [begin, end) of chunk `chunk` when splitting `n`
// elements into `p` chunks (first n%p chunks get one extra element).
struct ChunkRange {
  int64_t begin = 0;
  int64_t end = 0;
  [[nodiscard]] int64_t size() const noexcept { return end - begin; }
};
[[nodiscard]] ChunkRange GetChunkRange(int64_t n, int p, int chunk);

}  // namespace acps::comm
