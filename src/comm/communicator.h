// In-process multi-worker communicator with real ring collectives.
//
// This is the NCCL stand-in (DESIGN.md §2): a ThreadGroup hosts `p` workers
// (one std::thread each); every collective moves data through per-worker
// mailboxes with a barrier per ring step, so the *algorithm* — chunking,
// neighbor exchange, reduction order, and per-worker traffic — matches the
// ring implementations used on real clusters. Per-worker traffic counters
// let tests assert the Table II communication-volume formulas exactly.
//
// Concurrency model: collectives are rendezvous-synchronous. Every worker of
// the group must call the same sequence of collectives with matching sizes
// (mismatch throws). This mirrors NCCL's usage contract.
//
// Resilience (DESIGN.md §6f): every mailbox publish carries a sequence
// number + checksum envelope. Readers validate both; a failed validation
// (dropped, replayed, stale, or corrupted chunk — injectable via
// fault/injector.h) triggers a bounded, deterministic group retry with
// virtual-time backoff, so recoverable wire faults are absorbed with
// bitwise-identical results. A rank that fail-stops at a collective entry is
// removed from the membership view: subsequent collectives run over the
// surviving ranks (ring reconfigured, chunking over the alive count, dead
// all-gather blocks zeroed) and callers rescale by alive_world_size().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "check/sched_point.h"
#include "comm/contract.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "tensor/check.h"

namespace acps::comm {

// Reduction operator for all_reduce / reduce_scatter.
enum class ReduceOp { kSum, kMax };

// All-reduce algorithm selection. kRing is the bandwidth-optimal default
// (reduce-scatter + all-gather, 2*(p-1)/p * N per worker); kNaive is the
// flat reduce-to-root + broadcast reference (O(p*N)) used by the "naive"
// configurations and as a cross-check in tests.
enum class AllReduceAlgo { kRing, kNaive };

// Per-worker traffic statistics, in "wire" units. One mailbox write of B
// bytes counts as one message of B bytes sent (the shared-memory analogue of
// one point-to-point send on the ring). Retransmissions during fault
// recovery are charged like first sends — the wire cost was paid.
struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t messages_sent = 0;
  uint64_t collectives = 0;

  void reset() { *this = TrafficStats{}; }
};

namespace detail {
struct GroupState;  // defined in communicator.cc
}

class ThreadGroup;

// Per-worker handle. Obtained inside ThreadGroup::Run; not movable across
// workers.
class Communicator {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int world_size() const noexcept { return world_size_; }

  // --- Membership (fault tolerance) ----------------------------------------
  // The alive view as sampled at this worker's most recent collective entry.
  // Without fault injection it is always the full group. Membership only
  // shrinks at collective entries, and every surviving rank samples the same
  // view at the same entry, so view-derived values (e.g. the 1/p mean scale)
  // are deterministic and identical across ranks.
  [[nodiscard]] int alive_world_size() const noexcept {
    return static_cast<int>(view_.size());
  }
  [[nodiscard]] bool is_alive(int r) const {
    return view_alive_[static_cast<size_t>(r)] != 0;
  }
  // Alive ranks in ascending order.
  [[nodiscard]] const std::vector<int>& alive_ranks() const noexcept {
    return view_;
  }

  // Blocks until every (alive) worker reaches the barrier.
  void barrier();

  // All-reduce in place over `data` with the chosen algorithm (kRing:
  // reduce-scatter + all-gather, 2*(p-1)/p * N elements per worker; kNaive:
  // flat reduce-to-root + broadcast, the O(p*N) reference). After a rank
  // crash the reduction covers the surviving ranks only — divide by
  // alive_world_size() for a mean.
  void all_reduce(std::span<float> data, ReduceOp op = ReduceOp::kSum,
                  AllReduceAlgo algo = AllReduceAlgo::kRing);

  // Ring all-gather: worker i contributes `send`; `recv` (size p*|send|)
  // receives all contributions in rank order. All workers must pass equal
  // |send|. Per-worker traffic: (p-1) * |send| elements. Blocks of crashed
  // ranks are zero-filled.
  void all_gather(std::span<const float> send, std::span<float> recv);

  // Byte-wise ring all-gather for packed/compressed payloads (e.g. sign
  // bits, top-k index+value records). Equal |send| across workers.
  void all_gather_bytes(std::span<const std::byte> send,
                        std::span<std::byte> recv);

  // Variable-size all-gather: contributions may differ per worker; sizes are
  // first exchanged, then payloads. `recv` is resized to the concatenation
  // in rank order; `offsets[i]` gives the start of worker i's block. Crashed
  // ranks contribute zero-length blocks.
  void all_gather_v(std::span<const std::byte> send,
                    std::vector<std::byte>& recv,
                    std::vector<size_t>& offsets);

  // Ring reduce-scatter: in-place partial reduction; on return, the worker
  // with the i-th position in alive_ranks() owns the fully reduced chunk i
  // of `data` split into alive_world_size() chunks (other chunks are
  // garbage). With full membership this is chunk `rank` of `world_size`
  // chunks, per GetChunkRange below.
  void reduce_scatter(std::span<float> data, ReduceOp op = ReduceOp::kSum);

  // Broadcast from `root`. Throws fault::DetectedError on every surviving
  // rank (in lockstep) if the root has crashed.
  void broadcast(std::span<float> data, int root);

  // Traffic counters for this worker.
  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  // Tracer attached to the owning ThreadGroup (nullptr when tracing is
  // off). Runtimes built on the communicator (GradReducer, trainer) emit
  // their spans through the same tracer so all rows share a time base.
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  friend class ThreadGroup;
  Communicator(detail::GroupState* state, int rank, int world_size,
               obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Per-collective entry hook: bumps the collective sequence number, runs
  // the fault-injection entry site (crash / straggler) when an injector is
  // installed, and resamples the membership view behind an entry barrier so
  // all survivors agree on it before the collective body runs.
  void EnterCollective();
  void RefreshView();
  // Position of this rank in the alive view.
  [[nodiscard]] int ViewIndex() const;
  // Sequence number for step `step` of phase `phase` of the current
  // collective — identical on every rank (collectives are lockstep).
  [[nodiscard]] uint64_t StepSeq(int phase, int step) const;

  // One reliable exchange step: optional publish (seq/checksum envelope)
  // plus validated reads from `read_from`, with bounded deterministic group
  // retry on validation failure. Exactly two barriers on the fault-free
  // path — identical to the pre-envelope transport. `consume` is invoked at
  // most once per source rank, only with a validated payload.
  using ConsumeFn = std::function<void(int from, std::span<const std::byte>)>;
  void ReliableStep(uint64_t seq, bool publish,
                    std::span<const std::byte> payload, check::PointKind kind,
                    int fanout, std::span<const int> read_from,
                    const ConsumeFn& consume);

  // Ring all-gather over `buf` viewed as p equal blocks of `block_bytes`;
  // block `rank` must already hold this worker's contribution. `phase`
  // disambiguates the step sequence numbers within the collective.
  void RingAllGatherBlocks(std::span<std::byte> buf, size_t block_bytes,
                           int phase);

  // Naive (reduce-to-root + broadcast) all-reduce body.
  void AllReduceNaive(std::span<float> data, ReduceOp op);

  detail::GroupState* state_;
  int rank_;
  int world_size_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  TrafficStats stats_;
  uint64_t collective_seq_ = 0;
  std::vector<int> view_;           // alive ranks, ascending
  std::vector<uint8_t> view_alive_; // indexed by rank
};

// Sentinel for ThreadGroup's `barrier_timeout_ms` parameter: resolve the
// timeout from the ACPS_COLLECTIVE_TIMEOUT_MS environment variable
// (milliseconds; <= 0 disables the watchdog), falling back to 60000.
inline constexpr int64_t kCollectiveTimeoutFromEnv = INT64_MIN;

// Owns the shared state for one group of workers and runs worker bodies.
class ThreadGroup {
 public:
  // `barrier_timeout_ms` bounds how long any worker may wait at a barrier
  // before the group aborts with an error — turns collective-mismatch bugs
  // (one worker skipping a collective) into a diagnosable exception with a
  // per-rank blocked-in-which-collective report instead of a deadlock.
  // <= 0 disables the watchdog; the default defers to
  // ACPS_COLLECTIVE_TIMEOUT_MS (see kCollectiveTimeoutFromEnv).
  explicit ThreadGroup(int world_size,
                       int64_t barrier_timeout_ms = kCollectiveTimeoutFromEnv);
  ~ThreadGroup();

  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  [[nodiscard]] int world_size() const noexcept { return world_size_; }

  // Toggles collective-contract fingerprint checking (contract.h): when on,
  // every collective entry is an explicit rendezvous that fails fast with a
  // per-rank diff if workers issue mismatched collectives. Defaults to on
  // in sanitizer builds (ACPS_SANITIZE) and off otherwise; the
  // ACPS_COLLECTIVE_CONTRACT environment variable (0/1) overrides the
  // build-type default. Takes effect for subsequent Run calls.
  void set_contract_checking(bool on) noexcept;
  [[nodiscard]] bool contract_checking() const noexcept;

  // Attaches a tracer: every Communicator handed out by subsequent Run
  // calls emits spans (collectives tagged with bytes moved) into it. Pass
  // nullptr to detach. The tracer must outlive the runs that use it.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  // Attaches a metrics registry: transports record fault/retry/degradation
  // counters (fault.*) into it. Same lifetime contract as the tracer.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

  // Spawns one thread per worker, each invoking fn(comm). Blocks until all
  // return. Exceptions thrown by any worker are rethrown (first one wins)
  // after all workers have been joined — except fault::RankCrashed, which
  // marks the rank dead (see crashed_ranks) and lets the survivors finish.
  void Run(const std::function<void(Communicator&)>& fn);

  // Ranks that fail-stopped (injected crash) during the most recent Run,
  // in crash order.
  [[nodiscard]] const std::vector<int>& crashed_ranks() const noexcept;

  // Aggregate traffic across workers from the most recent Run.
  [[nodiscard]] TrafficStats total_stats() const;

 private:
  int world_size_;
  std::unique_ptr<detail::GroupState> state_;
  std::vector<TrafficStats> last_run_stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

// The contiguous range [begin, end) of chunk `chunk` when splitting `n`
// elements into `p` chunks (first n%p chunks get one extra element).
struct ChunkRange {
  int64_t begin = 0;
  int64_t end = 0;
  [[nodiscard]] int64_t size() const noexcept { return end - begin; }
};
[[nodiscard]] ChunkRange GetChunkRange(int64_t n, int p, int chunk);

}  // namespace acps::comm
