// Analytical α-β communication cost model (Thakur et al. / Table II).
//
// Used by the discrete-event simulator to price collectives on networks we
// do not have (1GbE, 10GbE, 100Gb InfiniBand). Ring all-reduce on p workers
// over B bytes costs
//     T = 2(p−1)·α + 2(p−1)/p · B/β
// — the startup term is linear in p (why tensor fusion matters) and the
// bandwidth term is ~constant in p (why ring all-reduce scales, Fig. 12).
// All-gather carries an efficiency discount (calibration in DESIGN.md §5).
#pragma once

#include <string>

namespace acps::comm {

struct NetworkSpec {
  std::string name;
  double alpha_s = 10e-6;          // per-hop startup latency (seconds)
  double beta_bytes_per_s = 1.25e9;  // per-link bandwidth (bytes/second)
  // Relative efficiency of all-gather vs ring all-reduce (<1): models the
  // less-optimized collective plus pack/unpack passes the paper observes
  // ("Sign-SGD comm 24% higher than S-SGD despite 32x compression").
  double allgather_efficiency = 0.45;

  // Paper testbed presets.
  static NetworkSpec Ethernet1G();
  static NetworkSpec Ethernet10G();   // the main testbed
  static NetworkSpec Infiniband100G();
};

class CostModel {
 public:
  CostModel(NetworkSpec net, int world_size);

  [[nodiscard]] const NetworkSpec& net() const noexcept { return net_; }
  [[nodiscard]] int world_size() const noexcept { return p_; }

  // Ring all-reduce over `bytes` (every worker sends/receives
  // 2(p-1)/p·bytes).
  [[nodiscard]] double AllReduce(double bytes) const;

  // Ring all-gather where each worker contributes `bytes_per_worker`.
  [[nodiscard]] double AllGather(double bytes_per_worker) const;

  // Ring reduce-scatter over `bytes`.
  [[nodiscard]] double ReduceScatter(double bytes) const;

  // Flat broadcast of `bytes` from one root.
  [[nodiscard]] double Broadcast(double bytes) const;

  // One point-to-point message.
  [[nodiscard]] double PointToPoint(double bytes) const;

  // The startup-only cost of one all-reduce — what tensor fusion amortizes.
  [[nodiscard]] double AllReduceStartup() const;

 private:
  NetworkSpec net_;
  int p_;
};

}  // namespace acps::comm
