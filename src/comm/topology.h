// Cluster topology description and the hierarchical (node-aware)
// all-reduce cost model.
//
// The paper's testbed is 8 nodes x 4 GPUs: intra-node PCIe is an order of
// magnitude faster than the 10GbE inter-node links. Flat rings treat all
// links equally; hierarchical all-reduce (BlueConnect, NCCL trees —
// paper ref [40]) splits the collective into
//     intra-node reduce-scatter -> inter-node all-reduce (leaders only)
//     -> intra-node all-gather,
// paying the slow network only 1/gpus_per_node of the flat volume per NIC.
// This module provides the analytic model; comm/hierarchical.h provides a
// real two-level implementation on the thread cluster.
#pragma once

#include "comm/cost_model.h"

namespace acps::comm {

struct ClusterTopology {
  int nodes = 8;
  int gpus_per_node = 4;
  NetworkSpec inter_node = NetworkSpec::Ethernet10G();
  // PCIe3 x16-ish effective: ~10 GB/s, microsecond-scale latency.
  NetworkSpec intra_node{"pcie3", 2e-6, 10e9, 0.8};

  [[nodiscard]] int world_size() const { return nodes * gpus_per_node; }

  // Paper testbed: 8 x 4 RTX 2080 Ti over 10GbE.
  static ClusterTopology Paper32();
};

class HierarchicalCostModel {
 public:
  explicit HierarchicalCostModel(ClusterTopology topo);

  // Flat ring all-reduce over all world_size workers, where the ring's
  // bottleneck link is the inter-node network (the standard deployment).
  [[nodiscard]] double FlatAllReduce(double bytes) const;

  // Two-level all-reduce: intra-node reduce-scatter + inter-node ring
  // all-reduce of 1/gpus_per_node of the data + intra-node all-gather.
  [[nodiscard]] double HierarchicalAllReduce(double bytes) const;

  // Speedup of hierarchical over flat for this payload.
  [[nodiscard]] double Speedup(double bytes) const;

  [[nodiscard]] const ClusterTopology& topology() const { return topo_; }

 private:
  ClusterTopology topo_;
  CostModel flat_;
  CostModel intra_;
  CostModel inter_;
};

}  // namespace acps::comm
