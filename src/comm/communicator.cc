#include "comm/communicator.h"

#include <algorithm>

#include "check/sched_point.h"
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

namespace acps::comm {
namespace detail {

// Shared state of one worker group: a sense-reversing barrier, one mailbox
// per worker (the shared-memory analogue of a point-to-point channel), a
// size-exchange board for variable-size collectives, and the collective
// usage-contract checker (contract.h).
struct GroupState {
  explicit GroupState(int p, int64_t timeout_ms)
      : world_size(p), barrier_timeout_ms(timeout_ms),
        mailbox(static_cast<size_t>(p)), sizes(static_cast<size_t>(p), 0) {
    contract.Reset(p);
  }

  int world_size;
  int64_t barrier_timeout_ms;
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool sense = false;
  bool aborted = false;
  // Why the group was aborted (watchdog report, contract diff); folded into
  // the "group aborted" errors seen by the other workers so every thrown
  // exception names the culprit, not just the first one.
  std::string abort_reason;

  // Fingerprint rendezvous on/off (watchdog status tracking is always on).
  bool contract_enabled = false;
  ContractChecker contract;

  std::vector<std::vector<std::byte>> mailbox;
  std::vector<size_t> sizes;

  // First exception thrown by any worker during Run.
  std::mutex err_mu;
  std::exception_ptr first_error;

  // Must be called with `mu` held.
  [[nodiscard]] std::string AbortMessage() const {
    std::string msg = "communicator group aborted";
    if (!abort_reason.empty()) msg += ": " + abort_reason;
    return msg;
  }

  void Barrier() {
    // Barrier entry is rank-agnostic here (GroupState does not know which
    // worker is calling), so the hook reports rank -1; the schedule
    // controller treats it as a pure perturbation point.
    check::SchedPoint(check::PointKind::kBarrierEnter, /*rank=*/-1);
    std::unique_lock lock(mu);
    if (aborted) throw Error(AbortMessage());
    if (++arrived == world_size) {
      arrived = 0;
      sense = !sense;
      cv.notify_all();
    } else {
      const bool my_sense = sense;
      const auto pred = [&] { return sense != my_sense || aborted; };
      if (barrier_timeout_ms > 0) {
        if (!cv.wait_for(lock, std::chrono::milliseconds(barrier_timeout_ms),
                         pred)) {
          // Some worker never arrived: collective mismatch or a hung
          // worker. Compose the watchdog report (who is blocked in which
          // collective), abort the whole group so every waiter unblocks,
          // and surface the report through every thrown error.
          std::string report =
              "collective watchdog: barrier timeout after " +
              std::to_string(barrier_timeout_ms) +
              " ms — a worker never reached the collective (mismatched "
              "collective sequence or hung worker)\n" +
              contract.BlockedReport();
          aborted = true;
          abort_reason = report;
          cv.notify_all();
          throw Error(report);
        }
      } else {
        cv.wait(lock, pred);
      }
      if (aborted) throw Error(AbortMessage());
    }
  }

  void Abort() {
    std::lock_guard lock(mu);
    aborted = true;
    cv.notify_all();
  }

  // Fingerprint rendezvous run at every collective entry in checked mode:
  //   deposit -> barrier -> validate -> barrier.
  // On divergence every rank computes the same per-rank diff and throws, so
  // the group unwinds in lockstep instead of deadlocking in the collective
  // body or silently mis-reducing.
  void CheckedRendezvous(int rank, const CollectiveFingerprint& fp) {
    if (!contract_enabled) return;
    contract.Deposit(rank, fp);
    Barrier();
    if (auto diff = contract.Validate()) throw Error(*diff);
    Barrier();
  }
};

}  // namespace detail

namespace {

int Mod(int x, int p) { return ((x % p) + p) % p; }

void ReduceInto(std::span<float> dst, std::span<const float> src,
                ReduceOp op) {
  ACPS_CHECK(dst.size() == src.size());
  switch (op) {
    case ReduceOp::kSum:
      for (size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
      return;
    case ReduceOp::kMax:
      for (size_t i = 0; i < dst.size(); ++i) dst[i] = std::max(dst[i], src[i]);
      return;
  }
  ACPS_FAIL_MSG("unknown ReduceOp");
}

std::span<const std::byte> AsBytes(std::span<const float> v) {
  return {reinterpret_cast<const std::byte*>(v.data()),
          v.size() * sizeof(float)};
}

std::span<const float> AsFloats(std::span<const std::byte> v) {
  ACPS_CHECK(v.size() % sizeof(float) == 0);
  return {reinterpret_cast<const float*>(v.data()), v.size() / sizeof(float)};
}

}  // namespace

ChunkRange GetChunkRange(int64_t n, int p, int chunk) {
  ACPS_CHECK_MSG(p >= 1 && chunk >= 0 && chunk < p, "bad chunk index");
  const int64_t base = n / p;
  const int64_t rem = n % p;
  const int64_t extra = std::min<int64_t>(chunk, rem);
  const int64_t begin = base * chunk + extra;
  const int64_t size = base + (chunk < rem ? 1 : 0);
  return ChunkRange{begin, begin + size};
}

// Publishes `payload` to this worker's mailbox and accounts the traffic.
// Callers must barrier() before a peer reads and again before the next write.
//
// Schedule-exploration hooks (check/sched_point.h): a uniform hand-off —
// one where every rank publishes exactly once between group barriers, i.e.
// every ring step — raises kHandoffSend before the publish (the controller
// may delay the caller to force a publish order) and kHandoffPublished,
// carrying the mailbox bytes, after it (the controller may corrupt them in
// fault-injection mode). Publishes that only a subset of ranks perform
// (broadcast root, the naive all-reduce result) pass kRootPublish instead
// so they never enter the controller's per-window accounting.
namespace {
void Send(detail::GroupState* st, int rank, TrafficStats& stats,
          std::span<const std::byte> payload,
          check::PointKind kind = check::PointKind::kHandoffSend) {
  if (kind == check::PointKind::kHandoffSend)
    check::SchedPoint(check::PointKind::kHandoffSend, rank);
  auto& box = st->mailbox[static_cast<size_t>(rank)];
  box.assign(payload.begin(), payload.end());
  stats.bytes_sent += payload.size();
  stats.messages_sent += 1;
  check::SchedPoint(kind == check::PointKind::kHandoffSend
                        ? check::PointKind::kHandoffPublished
                        : check::PointKind::kRootPublish,
                    rank, std::span<std::byte>(box.data(), box.size()));
}

// RAII wrapper around one collective call: registers the rank as "inside
// `fp`" for the watchdog, runs the contract rendezvous (no-op unless the
// group has contract checking enabled), and clears the watchdog status on
// exit. If the rendezvous throws (contract violation / abort) the status
// intentionally stays set — the group is dead and the stale entry only
// feeds post-mortem reports; the next Run resets the checker.
class ContractScope {
 public:
  ContractScope(detail::GroupState* st, int rank,
                const CollectiveFingerprint& fp)
      : st_(st), rank_(rank) {
    st_->contract.Enter(rank_, fp);
    st_->CheckedRendezvous(rank_, fp);
  }

  ContractScope(const ContractScope&) = delete;
  ContractScope& operator=(const ContractScope&) = delete;

  ~ContractScope() { st_->contract.Exit(rank_); }

 private:
  detail::GroupState* st_;
  int rank_;
};
}  // namespace

void Communicator::barrier() {
  obs::ScopedSpan span(tracer_, "barrier", obs::kCatComm, rank_);
  ContractScope contract(
      state_, rank_, CollectiveFingerprint{.kind = CollectiveKind::kBarrier});
  state_->Barrier();
}

void Communicator::all_reduce(std::span<float> data, ReduceOp op,
                              AllReduceAlgo algo) {
  obs::ScopedSpan span(tracer_,
                       algo == AllReduceAlgo::kRing ? "all_reduce"
                                                    : "all_reduce_naive",
                       obs::kCatComm, rank_, data.size() * sizeof(float));
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kAllReduce,
                            .bytes = data.size() * sizeof(float),
                            .op = static_cast<int>(op),
                            .algo = static_cast<int>(algo)});
  if (algo == AllReduceAlgo::kNaive) {
    AllReduceNaive(data, op);
    return;
  }
  ++stats_.collectives;
  const int p = world_size_;
  if (p == 1 || data.empty()) return;
  const int64_t n = static_cast<int64_t>(data.size());

  // --- Phase 1: ring reduce-scatter. After p-1 steps worker i owns the
  // fully reduced chunk i.
  for (int s = 0; s < p - 1; ++s) {
    const int send_idx = Mod(rank_ - s - 1, p);
    const int recv_idx = Mod(rank_ - s - 2, p);
    const ChunkRange sc = GetChunkRange(n, p, send_idx);
    Send(state_, rank_, stats_,
         AsBytes(data.subspan(static_cast<size_t>(sc.begin),
                              static_cast<size_t>(sc.size()))));
    state_->Barrier();
    const ChunkRange rc = GetChunkRange(n, p, recv_idx);
    const auto& box = state_->mailbox[static_cast<size_t>(Mod(rank_ - 1, p))];
    ReduceInto(data.subspan(static_cast<size_t>(rc.begin),
                            static_cast<size_t>(rc.size())),
               AsFloats({box.data(), box.size()}), op);
    state_->Barrier();
  }

  // --- Phase 2: ring all-gather of the reduced chunks.
  for (int s = 0; s < p - 1; ++s) {
    const int send_idx = Mod(rank_ - s, p);
    const int recv_idx = Mod(rank_ - s - 1, p);
    const ChunkRange sc = GetChunkRange(n, p, send_idx);
    Send(state_, rank_, stats_,
         AsBytes(data.subspan(static_cast<size_t>(sc.begin),
                              static_cast<size_t>(sc.size()))));
    state_->Barrier();
    const ChunkRange rc = GetChunkRange(n, p, recv_idx);
    const auto& box = state_->mailbox[static_cast<size_t>(Mod(rank_ - 1, p))];
    const auto incoming = AsFloats({box.data(), box.size()});
    ACPS_CHECK(static_cast<int64_t>(incoming.size()) == rc.size());
    std::copy(incoming.begin(), incoming.end(),
              data.begin() + static_cast<size_t>(rc.begin));
    state_->Barrier();
  }
}

void Communicator::AllReduceNaive(std::span<float> data, ReduceOp op) {
  ++stats_.collectives;
  const int p = world_size_;
  if (p == 1 || data.empty()) return;

  // Everyone publishes; rank 0 reduces; rank 0 publishes the result;
  // everyone copies. This is the flat O(p·N) reference algorithm.
  Send(state_, rank_, stats_, AsBytes(data));
  state_->Barrier();
  if (rank_ == 0) {
    for (int r = 1; r < p; ++r) {
      const auto& box = state_->mailbox[static_cast<size_t>(r)];
      ReduceInto(data, AsFloats({box.data(), box.size()}), op);
    }
  }
  state_->Barrier();
  if (rank_ == 0)
    Send(state_, rank_, stats_, AsBytes(data),
         check::PointKind::kRootPublish);
  state_->Barrier();
  if (rank_ != 0) {
    const auto& box = state_->mailbox[0];
    const auto result = AsFloats({box.data(), box.size()});
    ACPS_CHECK(result.size() == data.size());
    std::copy(result.begin(), result.end(), data.begin());
  }
  state_->Barrier();
}

void Communicator::all_gather(std::span<const float> send,
                              std::span<float> recv) {
  obs::ScopedSpan span(tracer_, "all_gather", obs::kCatComm, rank_,
                       send.size() * sizeof(float));
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kAllGather,
                            .bytes = send.size() * sizeof(float)});
  ACPS_CHECK_MSG(recv.size() == send.size() * static_cast<size_t>(world_size_),
                 "all_gather recv size must be p * send size");
  // Place own block, then run the byte-wise ring over the recv buffer.
  std::copy(send.begin(), send.end(),
            recv.begin() + static_cast<size_t>(rank_) * send.size());
  auto recv_bytes =
      std::span<std::byte>(reinterpret_cast<std::byte*>(recv.data()),
                           recv.size() * sizeof(float));
  RingAllGatherBlocks(recv_bytes, send.size() * sizeof(float));
}

void Communicator::all_gather_bytes(std::span<const std::byte> send,
                                    std::span<std::byte> recv) {
  obs::ScopedSpan span(tracer_, "all_gather_bytes", obs::kCatComm, rank_,
                       send.size());
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kAllGatherBytes,
                            .bytes = send.size()});
  ACPS_CHECK_MSG(recv.size() == send.size() * static_cast<size_t>(world_size_),
                 "all_gather_bytes recv size must be p * send size");
  std::copy(send.begin(), send.end(),
            recv.begin() + static_cast<size_t>(rank_) * send.size());
  RingAllGatherBlocks(recv, send.size());
}

// Ring all-gather over `buf` viewed as p equal blocks of `block_bytes`;
// block `rank` must already hold this worker's contribution.
void Communicator::RingAllGatherBlocks(std::span<std::byte> buf,
                                       size_t block_bytes) {
  ++stats_.collectives;
  const int p = world_size_;
  if (p == 1 || block_bytes == 0) return;
  for (int s = 0; s < p - 1; ++s) {
    const int send_idx = Mod(rank_ - s, p);
    const int recv_idx = Mod(rank_ - s - 1, p);
    Send(state_, rank_, stats_,
         buf.subspan(static_cast<size_t>(send_idx) * block_bytes,
                     block_bytes));
    state_->Barrier();
    const auto& box = state_->mailbox[static_cast<size_t>(Mod(rank_ - 1, p))];
    ACPS_CHECK(box.size() == block_bytes);
    std::memcpy(buf.data() + static_cast<size_t>(recv_idx) * block_bytes,
                box.data(), block_bytes);
    state_->Barrier();
  }
}

void Communicator::all_gather_v(std::span<const std::byte> send,
                                std::vector<std::byte>& recv,
                                std::vector<size_t>& offsets) {
  obs::ScopedSpan span(tracer_, "all_gather_v", obs::kCatComm, rank_,
                       send.size());
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kAllGatherV,
                            .bytes = send.size(),
                            .variable_size = true});
  ++stats_.collectives;
  const int p = world_size_;
  // Exchange sizes through the board.
  state_->sizes[static_cast<size_t>(rank_)] = send.size();
  state_->Barrier();
  offsets.assign(static_cast<size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r)
    offsets[static_cast<size_t>(r) + 1] =
        offsets[static_cast<size_t>(r)] + state_->sizes[static_cast<size_t>(r)];
  recv.assign(offsets.back(), std::byte{0});
  state_->Barrier();

  if (p == 1) {
    std::copy(send.begin(), send.end(), recv.begin());
    return;
  }

  // Ring with variable block sizes: block r = worker r's contribution.
  std::copy(send.begin(), send.end(),
            recv.begin() + static_cast<ptrdiff_t>(offsets[static_cast<size_t>(rank_)]));
  for (int s = 0; s < p - 1; ++s) {
    const int send_idx = Mod(rank_ - s, p);
    const int recv_idx = Mod(rank_ - s - 1, p);
    Send(state_, rank_, stats_,
         std::span<const std::byte>(
             recv.data() + offsets[static_cast<size_t>(send_idx)],
             state_->sizes[static_cast<size_t>(send_idx)]));
    state_->Barrier();
    const auto& box = state_->mailbox[static_cast<size_t>(Mod(rank_ - 1, p))];
    ACPS_CHECK(box.size() == state_->sizes[static_cast<size_t>(recv_idx)]);
    std::memcpy(recv.data() + offsets[static_cast<size_t>(recv_idx)],
                box.data(), box.size());
    state_->Barrier();
  }
}

void Communicator::reduce_scatter(std::span<float> data, ReduceOp op) {
  obs::ScopedSpan span(tracer_, "reduce_scatter", obs::kCatComm, rank_,
                       data.size() * sizeof(float));
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kReduceScatter,
                            .bytes = data.size() * sizeof(float),
                            .op = static_cast<int>(op)});
  ++stats_.collectives;
  const int p = world_size_;
  if (p == 1 || data.empty()) return;
  const int64_t n = static_cast<int64_t>(data.size());
  for (int s = 0; s < p - 1; ++s) {
    const int send_idx = Mod(rank_ - s - 1, p);
    const int recv_idx = Mod(rank_ - s - 2, p);
    const ChunkRange sc = GetChunkRange(n, p, send_idx);
    Send(state_, rank_, stats_,
         AsBytes(std::span<const float>(data).subspan(
             static_cast<size_t>(sc.begin), static_cast<size_t>(sc.size()))));
    state_->Barrier();
    const ChunkRange rc = GetChunkRange(n, p, recv_idx);
    const auto& box = state_->mailbox[static_cast<size_t>(Mod(rank_ - 1, p))];
    ReduceInto(data.subspan(static_cast<size_t>(rc.begin),
                            static_cast<size_t>(rc.size())),
               AsFloats({box.data(), box.size()}), op);
    state_->Barrier();
  }
}

void Communicator::broadcast(std::span<float> data, int root) {
  obs::ScopedSpan span(tracer_, "broadcast", obs::kCatComm, rank_,
                       data.size() * sizeof(float));
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kBroadcast,
                            .bytes = data.size() * sizeof(float),
                            .root = root});
  ++stats_.collectives;
  const int p = world_size_;
  ACPS_CHECK_MSG(root >= 0 && root < p, "broadcast root out of range");
  if (p == 1 || data.empty()) return;
  if (rank_ == root) {
    // Account flat point-to-point cost: root sends (p-1) copies.
    auto& box = state_->mailbox[static_cast<size_t>(rank_)];
    const auto payload = AsBytes(data);
    box.assign(payload.begin(), payload.end());
    stats_.bytes_sent += payload.size() * static_cast<size_t>(p - 1);
    stats_.messages_sent += static_cast<uint64_t>(p - 1);
    check::SchedPoint(check::PointKind::kRootPublish, rank_,
                      std::span<std::byte>(box.data(), box.size()));
  }
  state_->Barrier();
  if (rank_ != root) {
    const auto& box = state_->mailbox[static_cast<size_t>(root)];
    const auto incoming = AsFloats({box.data(), box.size()});
    ACPS_CHECK(incoming.size() == data.size());
    std::copy(incoming.begin(), incoming.end(), data.begin());
  }
  state_->Barrier();
}

namespace {

// ACPS_COLLECTIVE_TIMEOUT_MS resolution for the kCollectiveTimeoutFromEnv
// default: unset/unparsable -> 60000, <= 0 -> watchdog disabled.
int64_t ResolveBarrierTimeout(int64_t requested) {
  if (requested != kCollectiveTimeoutFromEnv) return requested;
  if (const char* env = std::getenv("ACPS_COLLECTIVE_TIMEOUT_MS")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<int64_t>(v);
  }
  return 60000;
}

// Contract checking defaults on in sanitizer builds (the cmake presets
// define ACPS_SANITIZE_BUILD) and off otherwise; ACPS_COLLECTIVE_CONTRACT
// (0/1) overrides either way.
bool ResolveContractDefault() {
  if (const char* env = std::getenv("ACPS_COLLECTIVE_CONTRACT"))
    return env[0] != '\0' && env[0] != '0';
#ifdef ACPS_SANITIZE_BUILD
  return true;
#else
  return false;
#endif
}

}  // namespace

ThreadGroup::ThreadGroup(int world_size, int64_t barrier_timeout_ms)
    : world_size_(world_size),
      state_(std::make_unique<detail::GroupState>(
          world_size, ResolveBarrierTimeout(barrier_timeout_ms))) {
  ACPS_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  state_->contract_enabled = ResolveContractDefault();
}

ThreadGroup::~ThreadGroup() = default;

void ThreadGroup::set_contract_checking(bool on) noexcept {
  state_->contract_enabled = on;
}

bool ThreadGroup::contract_checking() const noexcept {
  return state_->contract_enabled;
}

void ThreadGroup::Run(const std::function<void(Communicator&)>& fn) {
  last_run_stats_.assign(static_cast<size_t>(world_size_), TrafficStats{});
  // Reset barrier, error, and contract state: an aborted previous Run may
  // have left the sense-reversing barrier mid-flip (workers that threw
  // never finish their barrier round) and the contract checker mid-deposit.
  state_->aborted = false;
  state_->arrived = 0;
  state_->sense = false;
  state_->first_error = nullptr;
  state_->abort_reason.clear();
  state_->contract.Reset(world_size_);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    threads.emplace_back([this, r, &fn] {
      Communicator comm(state_.get(), r, world_size_, tracer_);
      try {
        fn(comm);
      } catch (...) {
        {
          std::lock_guard lock(state_->err_mu);
          if (!state_->first_error)
            state_->first_error = std::current_exception();
        }
        state_->Abort();
      }
      last_run_stats_[static_cast<size_t>(r)] = comm.stats();
    });
  }
  for (auto& t : threads) t.join();
  if (state_->first_error) std::rethrow_exception(state_->first_error);
}

TrafficStats ThreadGroup::total_stats() const {
  TrafficStats total;
  for (const auto& s : last_run_stats_) {
    total.bytes_sent += s.bytes_sent;
    total.messages_sent += s.messages_sent;
    total.collectives += s.collectives;
  }
  return total;
}

}  // namespace acps::comm
