#include "comm/communicator.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>

#include "check/sched_point.h"
#include "fault/clock.h"
#include "fault/injector.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace acps::comm {
namespace {

// Bounded retry budget for one exchange step. Exhausting it means the fault
// is not transient (a hostile injector, or the only publisher is dead):
// every rank then throws fault::DetectedError in lockstep.
constexpr int kMaxDeliveryAttempts = 8;

int Mod(int x, int p) { return ((x % p) + p) % p; }

// FNV-1a over the payload, seeded with the sequence number and the owning
// session's envelope salt: a stale message whose bytes happen to match still
// fails validation if its seq was forged, and a chunk sealed under another
// session never validates here. salt == 0 (the anonymous legacy session)
// reproduces the pre-session checksum bit for bit.
uint32_t EnvelopeChecksum(std::span<const std::byte> bytes, uint64_t seq,
                          uint64_t salt) noexcept {
  uint32_t h = 2166136261u ^ static_cast<uint32_t>((seq ^ salt) * 2654435761ULL);
  for (const std::byte b : bytes) {
    h ^= static_cast<uint32_t>(b);
    h *= 16777619u;
  }
  return h;
}

void ReduceInto(std::span<float> dst, std::span<const float> src,
                ReduceOp op) {
  ACPS_CHECK(dst.size() == src.size());
  switch (op) {
    case ReduceOp::kSum:
      for (size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
      return;
    case ReduceOp::kMax:
      for (size_t i = 0; i < dst.size(); ++i) dst[i] = std::max(dst[i], src[i]);
      return;
  }
  ACPS_FAIL_MSG("unknown ReduceOp");
}

std::span<const std::byte> AsBytes(std::span<const float> v) {
  return {reinterpret_cast<const std::byte*>(v.data()),
          v.size() * sizeof(float)};
}

std::span<const float> AsFloats(std::span<const std::byte> v) {
  ACPS_CHECK(v.size() % sizeof(float) == 0);
  return {reinterpret_cast<const float*>(v.data()), v.size() / sizeof(float)};
}

// RAII wrapper around one collective call: registers the rank as "inside
// `fp`" for the watchdog, runs the contract rendezvous (no-op unless the
// session has contract checking enabled), and clears the watchdog status on
// exit. If the rendezvous throws (contract violation / abort) the status
// intentionally stays set — the group is dead and the stale entry only
// feeds post-mortem reports; the next Run resets the checker.
class ContractScope {
 public:
  ContractScope(detail::GroupState* st, int rank,
                const CollectiveFingerprint& fp)
      : st_(st), rank_(rank) {
    st_->contract.Enter(rank_, fp);
    st_->CheckedRendezvous(rank_, fp);
  }

  ContractScope(const ContractScope&) = delete;
  ContractScope& operator=(const ContractScope&) = delete;

  ~ContractScope() { st_->contract.Exit(rank_); }

 private:
  detail::GroupState* st_;
  int rank_;
};

}  // namespace

ChunkRange GetChunkRange(int64_t n, int p, int chunk) {
  ACPS_CHECK_MSG(p >= 1 && chunk >= 0 && chunk < p, "bad chunk index");
  const int64_t base = n / p;
  const int64_t rem = n % p;
  const int64_t extra = std::min<int64_t>(chunk, rem);
  const int64_t begin = base * chunk + extra;
  const int64_t size = base + (chunk < rem ? 1 : 0);
  return ChunkRange{begin, begin + size};
}

Communicator::Communicator(detail::GroupState* state, int rank, int world_size,
                           uint64_t resume_seq, int generation)
    : state_(state), rank_(rank), world_size_(world_size),
      tracer_(state->tracer), metrics_(state->metrics),
      collective_seq_(resume_seq), generation_(generation) {
  if (metrics_ != nullptr) {
    // Resolve the session-namespaced fault counters once; the prefix is ""
    // for the anonymous legacy session, so the historical flat names
    // (`fault.crash.ranks`, ...) are preserved there.
    const std::string& pre = state_->metric_prefix;
    ctr_crash_ranks_ = &metrics_->counter(pre + "fault.crash.ranks");
    ctr_straggler_events_ = &metrics_->counter(pre + "fault.straggler.events");
    ctr_straggler_ticks_ = &metrics_->counter(pre + "fault.straggler.ticks");
    ctr_retry_attempts_ = &metrics_->counter(pre + "fault.retry.attempts");
    ctr_detected_ = &metrics_->counter(pre + "fault.detected");
    ctr_rejoin_admitted_ = &metrics_->counter(pre + "fault.rejoin.admitted");
    ctr_join_ranks_ = &metrics_->counter(pre + "fault.join.ranks");
    ctr_leave_ranks_ = &metrics_->counter(pre + "fault.leave.ranks");
  }
  RefreshView();
}

fault::FaultInjector* Communicator::ActiveInjector() const noexcept {
  fault::FaultInjector* inj = state_->injector;
  return inj != nullptr ? inj : fault::InstalledFaultInjector();
}

void Communicator::RefreshView() {
  std::lock_guard lock(state_->group_mu);
  view_.clear();
  view_alive_.assign(static_cast<size_t>(world_size_), 0);
  for (int r = 0; r < world_size_; ++r) {
    if (state_->alive[static_cast<size_t>(r)] != 0) {
      view_.push_back(r);
      view_alive_[static_cast<size_t>(r)] = 1;
    }
  }
  epoch_ = state_->epoch;
  // Noted under group_mu -> contract_mu, the same ascending order MarkDead
  // uses; visible in watchdog reports so epoch skew is diagnosable.
  state_->contract.NoteEpoch(rank_, epoch_);
}

int Communicator::ViewIndex() const {
  const auto it = std::lower_bound(view_.begin(), view_.end(), rank_);
  ACPS_CHECK_MSG(it != view_.end() && *it == rank_,
                 "rank not in alive view");
  return static_cast<int>(it - view_.begin());
}

uint64_t Communicator::StepSeq(int phase, int step) const {
  ACPS_CHECK(phase >= 0 && phase < 16 && step >= 0 && step < (1 << 16));
  return (collective_seq_ << 20) | (static_cast<uint64_t>(phase) << 16) |
         static_cast<uint64_t>(step);
}

void Communicator::EnterCollective() {
  // Collectives are rendezvous-synchronous, so every rank's counter stays in
  // lockstep and StepSeq values agree group-wide without communication.
  ++collective_seq_;
  fault::FaultInjector* inj = ActiveInjector();
  if (inj == nullptr) return;

  // Injected runs only: entry fault site, then a membership-stabilization
  // barrier so every survivor samples the same alive view for this
  // collective. Crash decisions always precede the barrier, and the barrier
  // cannot complete until every survivor arrives, so the view is identical
  // (and thus view-derived scales are deterministic) across ranks.
  const fault::EntryDecision decision =
      inj->OnCollectiveEntry(rank_, collective_seq_);
  if (decision.kind == fault::FaultKind::kCrash) {
    if (ctr_crash_ranks_ != nullptr) ctr_crash_ranks_->Add();
    if (tracer_ != nullptr && tracer_->enabled()) {
      const int64_t now = tracer_->NowUs();
      tracer_->Record(obs::SpanEvent{"fault_crash", obs::kCatFault, rank_, now,
                                     now, 0,
                                     static_cast<int64_t>(collective_seq_)});
    }
    // Fired before MarkDead so a schedule controller's alive-set reflects
    // the crash before any survivor clears the entry-stabilization barrier
    // (which MarkDead releases) and publishes into a shrunken window.
    check::SchedPoint(check::PointKind::kRankDown, rank_);
    state_->MarkDead(rank_);
    throw fault::RankCrashed{rank_, collective_seq_};
  }
  if (decision.kind == fault::FaultKind::kStraggler) {
    if (ctr_straggler_events_ != nullptr) {
      ctr_straggler_events_->Add();
      ctr_straggler_ticks_->Add(static_cast<uint64_t>(decision.ticks));
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      const int64_t now = tracer_->NowUs();
      tracer_->Record(obs::SpanEvent{"fault_straggler", obs::kCatFault, rank_,
                                     now, now, 0, decision.ticks});
    }
    // Straggler latency is virtual: charge ticks to the replayable clock and
    // yield a bounded number of times; the entry barrier below is what
    // actually absorbs the (virtual) delay, so results stay bitwise equal.
    fault::VirtualClock::Advance(decision.ticks);
    state_->contract.NoteStraggler(rank_, decision.ticks);
    fault::SpinYield(2);
  }
  state_->Barrier();
  RefreshView();
}

void Communicator::ReliableStep(uint64_t seq, bool publish,
                                std::span<const std::byte> payload,
                                check::PointKind kind, int fanout,
                                std::span<const int> read_from,
                                const ConsumeFn& consume) {
  ACPS_CHECK_MSG(read_from.size() <= 64,
                 "reliable step supports at most 64 sources");
  fault::FaultInjector* inj = ActiveInjector();
  const uint64_t salt = state_->envelope_salt;
  uint64_t consumed = 0;  // bit i: read_from[i] validated and consumed
  for (int attempt = 0;; ++attempt) {
    if (publish) {
      const fault::FaultKind fk =
          inj != nullptr ? inj->OnPublish(rank_, seq, attempt)
                         : fault::FaultKind::kNone;
      // Wire cost is charged even for dropped or retried publishes — the
      // bytes were put on the wire either way. Fault-free this is exactly
      // one message of |payload| bytes (times `fanout` for one-to-many
      // publishes), byte-identical to the pre-envelope transport.
      stats_.bytes_sent += payload.size() * static_cast<size_t>(fanout);
      stats_.messages_sent += static_cast<uint64_t>(fanout);
      if (fk != fault::FaultKind::kDrop) {
        auto& box = state_->mailbox[static_cast<size_t>(rank_)];
        const bool fresh = box.cur.seq != seq;
        // Schedule points fire only on the first attempt: retries replay
        // data movement, not the explored schedule, so the controller's
        // per-window publish accounting is unaffected by recovery.
        if (attempt == 0 && fresh && kind == check::PointKind::kHandoffSend)
          check::SchedPoint(check::PointKind::kHandoffSend, rank_);
        if (fresh) {
          box.prev = std::move(box.cur);
          box.cur = detail::Message{};
        }
        box.cur.bytes.assign(payload.begin(), payload.end());
        if (attempt == 0) {
          // The controller may mutate the payload here (fault-injection
          // mode); the checksum below is computed afterwards, sealing the
          // mutation in. Model-checker corruption is therefore *delivered*
          // (and caught by the check-layer oracles), while injector
          // corruption — applied after the seal — is *detected* and retried.
          check::SchedPoint(kind == check::PointKind::kHandoffSend
                                ? check::PointKind::kHandoffPublished
                                : check::PointKind::kRootPublish,
                            rank_,
                            std::span<std::byte>(box.cur.bytes.data(),
                                                 box.cur.bytes.size()));
        }
        box.cur.seq = seq;
        box.cur.checksum = EnvelopeChecksum(
            {box.cur.bytes.data(), box.cur.bytes.size()}, seq, salt);
        if (fk == fault::FaultKind::kDuplicate) {
          // Replay: the previous message overwrites this publish.
          box.cur = box.prev;
        } else if (fk == fault::FaultKind::kCorrupt) {
          // Wire corruption after the checksum seal: rotate each byte's
          // bits so validation fails deterministically.
          for (std::byte& b : box.cur.bytes) {
            const auto u = static_cast<uint8_t>(b);
            b = static_cast<std::byte>(
                static_cast<uint8_t>((u << 1) | (u >> 7)));
          }
        }
      }
    }
    state_->Barrier();

    bool ok = true;
    std::string why;
    int why_from = -1;
    for (size_t i = 0; i < read_from.size(); ++i) {
      if ((consumed & (uint64_t{1} << i)) != 0) continue;
      const int from = read_from[i];
      const fault::FaultKind fk =
          inj != nullptr ? inj->OnRead(rank_, seq, attempt)
                         : fault::FaultKind::kNone;
      const auto& box = state_->mailbox[static_cast<size_t>(from)];
      const detail::Message& m =
          fk == fault::FaultKind::kStaleRead ? box.prev : box.cur;
      const char* fail = nullptr;
      if (m.seq != seq)
        fail = "sequence mismatch (lost, replayed or stale chunk)";
      else if (EnvelopeChecksum({m.bytes.data(), m.bytes.size()}, m.seq,
                                salt) != m.checksum)
        fail = "checksum mismatch (corrupted chunk)";
      if (fail == nullptr) {
        consume(from, std::span<const std::byte>(m.bytes.data(),
                                                 m.bytes.size()));
        consumed |= uint64_t{1} << i;
      } else {
        ok = false;
        why = fail;
        why_from = from;
      }
    }
    state_->retry_flag[static_cast<size_t>(rank_)] = ok ? 0 : 1;
    state_->Barrier();

    // Flags are stable here: no rank can overwrite its flag before the next
    // first barrier, which needs every rank to finish this scan first. All
    // ranks therefore compute the same verdict and retry (or throw) in
    // lockstep — no rank is ever left waiting at a barrier.
    bool again = false;
    for (const int r : view_)
      again = again || state_->retry_flag[static_cast<size_t>(r)] != 0;
    if (!again) return;

    if (ctr_retry_attempts_ != nullptr) ctr_retry_attempts_->Add();
    if (tracer_ != nullptr && tracer_->enabled()) {
      const int64_t now = tracer_->NowUs();
      tracer_->Record(obs::SpanEvent{"fault_retry", obs::kCatFault, rank_, now,
                                     now, payload.size(), attempt});
    }
    if (attempt + 1 >= kMaxDeliveryAttempts) {
      if (ctr_detected_ != nullptr) ctr_detected_->Add();
      std::ostringstream os;
      os << "fault detected: chunk delivery failed after "
         << kMaxDeliveryAttempts << " attempts (rank " << rank_
         << ", collective #" << collective_seq_ << ", seq=0x" << std::hex
         << seq << std::dec << ")";
      if (why_from >= 0)
        os << ": " << why << " reading from rank " << why_from;
      else
        os << ": a peer reported undeliverable chunks";
      if (inj != nullptr) os << "; replay with " << inj->Describe();
      throw fault::DetectedError(os.str());
    }
    fault::ConsumeBackoff(attempt);
  }
}

void Communicator::barrier() {
  obs::ScopedSpan span(tracer_, "barrier", obs::kCatComm, rank_);
  EnterCollective();
  ContractScope contract(
      state_, rank_, CollectiveFingerprint{.kind = CollectiveKind::kBarrier,
                            .epoch = epoch_});
  state_->Barrier();
}

detail::ViewTransition Communicator::commit_view() {
  obs::ScopedSpan span(tracer_, "commit_view", obs::kCatComm, rank_);
  // Crashable entry, like every collective: a rank can die on its way into
  // the commit, and the commit then runs over the survivors.
  EnterCollective();

  // Stable commit index: every rank passed the previous commit's closing
  // barrier before any rank reached this collective's entry, so
  // commit_count cannot move between these reads across ranks.
  uint64_t commit_index;
  {
    std::lock_guard lock(state_->group_mu);
    commit_index = state_->commit_count + 1;
  }

  // Graceful departures fire before the opening barrier: MarkLeft removes
  // the leaver from the barrier membership, so the survivors' barrier
  // completes over the shrunken view (same ordering argument as MarkDead
  // at collective entry — the barrier cannot complete while the leaver is
  // still counted alive).
  fault::FaultInjector* inj = ActiveInjector();
  if (inj != nullptr && inj->LeavesAtCommit(rank_, commit_index)) {
    if (ctr_leave_ranks_ != nullptr) ctr_leave_ranks_->Add();
    if (tracer_ != nullptr && tracer_->enabled()) {
      const int64_t now = tracer_->NowUs();
      tracer_->Record(obs::SpanEvent{"fault_leave", obs::kCatFault, rank_, now,
                                     now, 0,
                                     static_cast<int64_t>(commit_index)});
    }
    // Same ordering rule as the crash branch: the controller learns of the
    // departure before MarkLeft lets the survivors' barrier complete.
    check::SchedPoint(check::PointKind::kRankDown, rank_);
    state_->MarkLeft(rank_);
    throw fault::RankDeparted{rank_, commit_index};
  }

  check::SchedPoint(check::PointKind::kViewCommit, rank_);
  ContractScope contract(
      state_, rank_, CollectiveFingerprint{.kind = CollectiveKind::kViewCommit,
                            .epoch = epoch_});

  // Opening barrier: membership is now stable for this commit (crashes only
  // fire at collective entries, leavers are already gone).
  state_->Barrier();

  // Every survivor calls the applier; the first to take the lock applies,
  // the rest read the identical committed record.
  const detail::ViewTransition t =
      state_->ApplyViewCommit(commit_index, collective_seq_);

  // The lowest-ranked survivor emits the membership metrics, outside
  // group_mu and exactly once per commit. The pre-commit view is used on
  // purpose: a newly admitted rank is not running commit_view and must not
  // be eligible to emit.
  if (ViewIndex() == 0 && metrics_ != nullptr) {
    const auto rejoins = static_cast<uint64_t>(t.rejoined.size());
    const auto fresh = static_cast<uint64_t>(t.joined.size()) - rejoins;
    if (rejoins > 0 && ctr_rejoin_admitted_ != nullptr)
      ctr_rejoin_admitted_->Add(rejoins);
    if (fresh > 0 && ctr_join_ranks_ != nullptr) ctr_join_ranks_->Add(fresh);
    metrics_->gauge(state_->metric_prefix + "comm.epoch")
        .Set(static_cast<double>(t.epoch));
  }

  // Closing barrier: newly admitted ranks join it (their one Barrier()
  // call after AwaitAdmission), so the whole group — survivors plus
  // joiners — leaves the commit aligned.
  state_->Barrier();
  RefreshView();
  return t;
}

detail::ViewTransition Communicator::last_transition() const {
  std::lock_guard lock(state_->group_mu);
  return state_->last_transition;
}

void Communicator::all_reduce(std::span<float> data, ReduceOp op,
                              AllReduceAlgo algo) {
  // The per-call default defers to the session's configured algorithm; the
  // resolved value feeds the contract fingerprint, so mixed-session
  // cross-checks (one session ring, one naive) stay well-defined.
  if (algo == AllReduceAlgo::kSessionDefault) algo = state_->default_algo;
  obs::ScopedSpan span(tracer_,
                       algo == AllReduceAlgo::kRing ? "all_reduce"
                                                    : "all_reduce_naive",
                       obs::kCatComm, rank_, data.size() * sizeof(float));
  EnterCollective();
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kAllReduce,
                            .bytes = data.size() * sizeof(float),
                            .op = static_cast<int>(op),
                            .algo = static_cast<int>(algo),
                            .epoch = epoch_});
  if (algo == AllReduceAlgo::kNaive) {
    AllReduceNaive(data, op);
    return;
  }
  ++stats_.collectives;
  const int pa = alive_world_size();
  if (pa == 1 || data.empty()) return;
  const int64_t n = static_cast<int64_t>(data.size());
  const int vi = ViewIndex();
  const int pred[] = {view_[static_cast<size_t>(Mod(vi - 1, pa))]};

  // --- Phase 0: ring reduce-scatter over the alive view. After pa-1 steps
  // the worker at view position i owns the fully reduced chunk i.
  for (int s = 0; s < pa - 1; ++s) {
    const ChunkRange sc = GetChunkRange(n, pa, Mod(vi - s - 1, pa));
    const ChunkRange rc = GetChunkRange(n, pa, Mod(vi - s - 2, pa));
    ReliableStep(
        StepSeq(0, s), /*publish=*/true,
        AsBytes(data.subspan(static_cast<size_t>(sc.begin),
                             static_cast<size_t>(sc.size()))),
        check::PointKind::kHandoffSend, /*fanout=*/1, pred,
        [&](int, std::span<const std::byte> bytes) {
          ReduceInto(data.subspan(static_cast<size_t>(rc.begin),
                                  static_cast<size_t>(rc.size())),
                     AsFloats(bytes), op);
        });
  }

  // --- Phase 1: ring all-gather of the reduced chunks.
  for (int s = 0; s < pa - 1; ++s) {
    const ChunkRange sc = GetChunkRange(n, pa, Mod(vi - s, pa));
    const ChunkRange rc = GetChunkRange(n, pa, Mod(vi - s - 1, pa));
    ReliableStep(
        StepSeq(1, s), /*publish=*/true,
        AsBytes(data.subspan(static_cast<size_t>(sc.begin),
                             static_cast<size_t>(sc.size()))),
        check::PointKind::kHandoffSend, /*fanout=*/1, pred,
        [&](int, std::span<const std::byte> bytes) {
          const auto incoming = AsFloats(bytes);
          ACPS_CHECK(static_cast<int64_t>(incoming.size()) == rc.size());
          std::copy(incoming.begin(), incoming.end(),
                    data.begin() + static_cast<size_t>(rc.begin));
        });
  }
}

void Communicator::AllReduceNaive(std::span<float> data, ReduceOp op) {
  ++stats_.collectives;
  const int pa = alive_world_size();
  if (pa == 1 || data.empty()) return;
  const int root = view_[0];

  // Everyone publishes; the root (first alive rank) reduces; the root
  // publishes the result; everyone copies. This is the flat O(p·N)
  // reference algorithm. The root's phase-0 mailbox is never read, so
  // retried steps may safely republish its partially reduced buffer.
  std::vector<int> others;
  if (rank_ == root) {
    others.reserve(static_cast<size_t>(pa - 1));
    for (const int r : view_)
      if (r != root) others.push_back(r);
  }
  ReliableStep(StepSeq(0, 0), /*publish=*/true, AsBytes(data),
               check::PointKind::kHandoffSend, /*fanout=*/1, others,
               [&](int, std::span<const std::byte> bytes) {
                 ReduceInto(data, AsFloats(bytes), op);
               });

  const int root_src[] = {root};
  ReliableStep(StepSeq(1, 0), /*publish=*/rank_ == root, AsBytes(data),
               check::PointKind::kRootPublish, /*fanout=*/1,
               rank_ == root ? std::span<const int>{}
                             : std::span<const int>(root_src),
               [&](int, std::span<const std::byte> bytes) {
                 const auto result = AsFloats(bytes);
                 ACPS_CHECK(result.size() == data.size());
                 std::copy(result.begin(), result.end(), data.begin());
               });
}

void Communicator::all_gather(std::span<const float> send,
                              std::span<float> recv) {
  obs::ScopedSpan span(tracer_, "all_gather", obs::kCatComm, rank_,
                       send.size() * sizeof(float));
  EnterCollective();
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kAllGather,
                            .bytes = send.size() * sizeof(float),
                            .epoch = epoch_});
  ACPS_CHECK_MSG(recv.size() == send.size() * static_cast<size_t>(world_size_),
                 "all_gather recv size must be p * send size");
  // Place own block, then run the byte-wise ring over the recv buffer.
  std::copy(send.begin(), send.end(),
            recv.begin() + static_cast<size_t>(rank_) * send.size());
  auto recv_bytes =
      std::span<std::byte>(reinterpret_cast<std::byte*>(recv.data()),
                           recv.size() * sizeof(float));
  RingAllGatherBlocks(recv_bytes, send.size() * sizeof(float), /*phase=*/0);
}

void Communicator::all_gather_bytes(std::span<const std::byte> send,
                                    std::span<std::byte> recv) {
  obs::ScopedSpan span(tracer_, "all_gather_bytes", obs::kCatComm, rank_,
                       send.size());
  EnterCollective();
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kAllGatherBytes,
                            .bytes = send.size(),
                            .epoch = epoch_});
  ACPS_CHECK_MSG(recv.size() == send.size() * static_cast<size_t>(world_size_),
                 "all_gather_bytes recv size must be p * send size");
  std::copy(send.begin(), send.end(),
            recv.begin() + static_cast<size_t>(rank_) * send.size());
  RingAllGatherBlocks(recv, send.size(), /*phase=*/0);
}

void Communicator::RingAllGatherBlocks(std::span<std::byte> buf,
                                       size_t block_bytes, int phase) {
  ++stats_.collectives;
  const int pa = alive_world_size();
  if (block_bytes == 0) return;
  // Degraded membership: crashed ranks contribute all-zero blocks, so the
  // gathered buffer stays deterministic and consumers can skip dead blocks
  // by rank.
  if (pa != world_size_) {
    for (int r = 0; r < world_size_; ++r) {
      if (!is_alive(r))
        std::memset(buf.data() + static_cast<size_t>(r) * block_bytes, 0,
                    block_bytes);
    }
  }
  if (pa == 1) return;
  const int vi = ViewIndex();
  const int pred[] = {view_[static_cast<size_t>(Mod(vi - 1, pa))]};
  // Blocks are indexed by *real* rank; the ring circulates the alive blocks
  // through the alive view.
  for (int s = 0; s < pa - 1; ++s) {
    const int send_rank = view_[static_cast<size_t>(Mod(vi - s, pa))];
    const int recv_rank = view_[static_cast<size_t>(Mod(vi - s - 1, pa))];
    ReliableStep(
        StepSeq(phase, s), /*publish=*/true,
        buf.subspan(static_cast<size_t>(send_rank) * block_bytes, block_bytes),
        check::PointKind::kHandoffSend, /*fanout=*/1, pred,
        [&](int, std::span<const std::byte> bytes) {
          ACPS_CHECK(bytes.size() == block_bytes);
          std::memcpy(buf.data() + static_cast<size_t>(recv_rank) * block_bytes,
                      bytes.data(), block_bytes);
        });
  }
}

void Communicator::all_gather_v(std::span<const std::byte> send,
                                std::vector<std::byte>& recv,
                                std::vector<size_t>& offsets) {
  obs::ScopedSpan span(tracer_, "all_gather_v", obs::kCatComm, rank_,
                       send.size());
  EnterCollective();
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kAllGatherV,
                            .bytes = send.size(),
                            .epoch = epoch_,
                            .variable_size = true});
  ++stats_.collectives;
  const int p = world_size_;
  const int pa = alive_world_size();
  // Exchange sizes through the board. Crashed ranks' slots may hold stale
  // values; readers treat dead slots as zero-length contributions.
  state_->sizes[static_cast<size_t>(rank_)] = send.size();
  state_->Barrier();
  const auto size_of = [&](int r) -> size_t {
    return is_alive(r) ? state_->sizes[static_cast<size_t>(r)] : 0;
  };
  offsets.assign(static_cast<size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r)
    offsets[static_cast<size_t>(r) + 1] =
        offsets[static_cast<size_t>(r)] + size_of(r);
  recv.assign(offsets.back(), std::byte{0});
  state_->Barrier();

  if (pa == 1) {
    std::copy(send.begin(), send.end(),
              recv.begin() +
                  static_cast<ptrdiff_t>(offsets[static_cast<size_t>(rank_)]));
    return;
  }

  // Ring with variable block sizes: block r = worker r's contribution.
  std::copy(send.begin(), send.end(),
            recv.begin() +
                static_cast<ptrdiff_t>(offsets[static_cast<size_t>(rank_)]));
  const int vi = ViewIndex();
  const int pred[] = {view_[static_cast<size_t>(Mod(vi - 1, pa))]};
  for (int s = 0; s < pa - 1; ++s) {
    const int send_rank = view_[static_cast<size_t>(Mod(vi - s, pa))];
    const int recv_rank = view_[static_cast<size_t>(Mod(vi - s - 1, pa))];
    const size_t recv_size = size_of(recv_rank);
    ReliableStep(
        StepSeq(0, s), /*publish=*/true,
        std::span<const std::byte>(
            recv.data() + offsets[static_cast<size_t>(send_rank)],
            size_of(send_rank)),
        check::PointKind::kHandoffSend, /*fanout=*/1, pred,
        [&](int, std::span<const std::byte> bytes) {
          ACPS_CHECK(bytes.size() == recv_size);
          std::memcpy(recv.data() + offsets[static_cast<size_t>(recv_rank)],
                      bytes.data(), bytes.size());
        });
  }
}

void Communicator::reduce_scatter(std::span<float> data, ReduceOp op) {
  obs::ScopedSpan span(tracer_, "reduce_scatter", obs::kCatComm, rank_,
                       data.size() * sizeof(float));
  EnterCollective();
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kReduceScatter,
                            .bytes = data.size() * sizeof(float),
                            .op = static_cast<int>(op),
                            .epoch = epoch_});
  ++stats_.collectives;
  const int pa = alive_world_size();
  if (pa == 1 || data.empty()) return;
  const int64_t n = static_cast<int64_t>(data.size());
  const int vi = ViewIndex();
  const int pred[] = {view_[static_cast<size_t>(Mod(vi - 1, pa))]};
  for (int s = 0; s < pa - 1; ++s) {
    const ChunkRange sc = GetChunkRange(n, pa, Mod(vi - s - 1, pa));
    const ChunkRange rc = GetChunkRange(n, pa, Mod(vi - s - 2, pa));
    ReliableStep(
        StepSeq(0, s), /*publish=*/true,
        AsBytes(std::span<const float>(data).subspan(
            static_cast<size_t>(sc.begin), static_cast<size_t>(sc.size()))),
        check::PointKind::kHandoffSend, /*fanout=*/1, pred,
        [&](int, std::span<const std::byte> bytes) {
          ReduceInto(data.subspan(static_cast<size_t>(rc.begin),
                                  static_cast<size_t>(rc.size())),
                     AsFloats(bytes), op);
        });
  }
}

void Communicator::broadcast(std::span<float> data, int root) {
  obs::ScopedSpan span(tracer_, "broadcast", obs::kCatComm, rank_,
                       data.size() * sizeof(float));
  EnterCollective();
  ContractScope contract(
      state_, rank_,
      CollectiveFingerprint{.kind = CollectiveKind::kBroadcast,
                            .bytes = data.size() * sizeof(float),
                            .root = root,
                            .epoch = epoch_});
  ++stats_.collectives;
  ACPS_CHECK_MSG(root >= 0 && root < world_size_,
                 "broadcast root out of range");
  const int pa = alive_world_size();
  if (!is_alive(root)) {
    // The only publisher is dead: unsatisfiable, but *detected* — every
    // surviving rank computed the same view, so all throw in lockstep.
    if (ctr_detected_ != nullptr) ctr_detected_->Add();
    std::ostringstream os;
    os << "fault detected: broadcast root rank " << root
       << " has crashed (fail-stop); collective #" << collective_seq_
       << " cannot be satisfied";
    if (fault::FaultInjector* inj = ActiveInjector())
      os << "; replay with " << inj->Describe();
    throw fault::DetectedError(os.str());
  }
  if (pa == 1 || data.empty()) return;
  const int root_src[] = {root};
  ReliableStep(StepSeq(0, 0), /*publish=*/rank_ == root, AsBytes(data),
               check::PointKind::kRootPublish, /*fanout=*/pa - 1,
               rank_ == root ? std::span<const int>{}
                             : std::span<const int>(root_src),
               [&](int, std::span<const std::byte> bytes) {
                 const auto incoming = AsFloats(bytes);
                 ACPS_CHECK(incoming.size() == data.size());
                 std::copy(incoming.begin(), incoming.end(), data.begin());
               });
}

// The shim's own member definitions must keep compiling after the class is
// [[deprecated]]; callers elsewhere still get the warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

ThreadGroup::ThreadGroup(int world_size, int64_t barrier_timeout_ms)
    : transport_(TransportOptions{.barrier_timeout_ms = barrier_timeout_ms}),
      session_(std::make_unique<Session>(transport_, /*job_id=*/"",
                                         world_size)) {}

ThreadGroup::~ThreadGroup() = default;

int ThreadGroup::world_size() const noexcept { return session_->world_size(); }

void ThreadGroup::set_contract_checking(bool on) noexcept {
  session_->set_contract_checking(on);
}

bool ThreadGroup::contract_checking() const noexcept {
  return session_->contract_checking();
}

void ThreadGroup::set_tracer(obs::Tracer* tracer) noexcept {
  transport_.set_tracer(tracer);
}

obs::Tracer* ThreadGroup::tracer() const noexcept {
  return transport_.tracer();
}

void ThreadGroup::set_metrics(obs::MetricsRegistry* metrics) noexcept {
  transport_.set_metrics(metrics);
}

obs::MetricsRegistry* ThreadGroup::metrics() const noexcept {
  return transport_.metrics();
}

void ThreadGroup::Run(const std::function<void(Communicator&)>& fn) {
  session_->Run(fn);
}

const std::vector<int>& ThreadGroup::crashed_ranks() const noexcept {
  return session_->crashed_ranks();
}

TrafficStats ThreadGroup::total_stats() const {
  return session_->total_stats();
}

#pragma GCC diagnostic pop

}  // namespace acps::comm
