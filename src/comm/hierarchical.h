// Real two-level (node-aware) all-reduce over the thread cluster.
//
// Partitions the `world_size` workers into contiguous "nodes" of
// `gpus_per_node` ranks. Phase 1 reduces each node's data onto its leader
// (rank % gpus_per_node == 0); phase 2 ring-all-reduces across leaders;
// phase 3 broadcasts back within each node. Numerically equivalent to a
// flat all-reduce (same sum, different reduction order), verified by tests.
//
// On real clusters this shape moves 1/gpus_per_node of the bytes across the
// slow inter-node links (see comm/topology.h for the analytic model); on
// the in-process cluster it demonstrates and tests the algorithm.
#pragma once

#include "comm/communicator.h"

namespace acps::comm {

// In-place hierarchical all-reduce (sum). `gpus_per_node` must divide the
// world size. All workers of the group must call it collectively.
void HierarchicalAllReduce(Communicator& comm, std::span<float> data,
                           int gpus_per_node);

}  // namespace acps::comm
