// Collective usage-contract checking for the in-process communicator.
//
// NCCL-style collectives have an implicit contract: every worker of a group
// must issue the same sequence of collectives with matching shapes. Break it
// and a real cluster deadlocks or silently mis-reduces. In checked builds
// (sanitizer presets, or ACPS_COLLECTIVE_CONTRACT=1) every collective entry
// becomes an explicit rendezvous: each rank deposits a fingerprint of the
// call it is about to make — (op kind, byte size, ReduceOp, algorithm,
// root) — and the group fails fast with a per-rank diff when the
// fingerprints diverge, instead of hanging until the watchdog or corrupting
// the reduction.
//
// Independently of fingerprint checking, the checker tracks which collective
// each rank is currently inside (always on — one small mutex-guarded write
// per collective). When the barrier watchdog fires it renders that table, so
// a timeout reports "rank 2 blocked in all_reduce[ring] seq=17, rank 1 idle
// after seq=16" rather than a bare "timeout".
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "par/lock_level.h"

namespace acps::comm {

// Which collective a rank is issuing. kNone means "not in a collective".
enum class CollectiveKind {
  kNone,
  kBarrier,
  kAllReduce,
  kAllGather,
  kAllGatherBytes,
  kAllGatherV,
  kReduceScatter,
  kBroadcast,
  kViewCommit,  // barrier-aligned membership-view commit (elastic sessions)
};

[[nodiscard]] const char* ToString(CollectiveKind kind) noexcept;

// Everything that must match across ranks for one collective call.
struct CollectiveFingerprint {
  CollectiveKind kind = CollectiveKind::kNone;
  uint64_t bytes = 0;  // payload bytes this rank contributes
  int op = -1;         // static_cast<int>(ReduceOp), -1 when not applicable
  int algo = -1;       // static_cast<int>(AllReduceAlgo), -1 when n/a
  int root = -1;       // broadcast root, -1 when n/a
  // Membership epoch the issuing rank believes it is in (0 in non-elastic
  // sessions, so legacy fingerprints compare exactly as before). An
  // epoch-only divergence is a view-transition skew — one rank committed a
  // membership change the other has not seen — and is reported as such,
  // not as a generic shape mismatch.
  uint64_t epoch = 0;
  // all_gather_v legitimately sends different byte counts per rank; its
  // fingerprint matches on kind alone.
  bool variable_size = false;

  // Contract equality: kind/op/algo/root/epoch always compared, bytes only
  // for fixed-size collectives.
  [[nodiscard]] bool Matches(const CollectiveFingerprint& other) const;

  // Like Matches but ignoring `epoch` — used to classify a divergence as
  // "pure view-transition skew" versus a real shape mismatch.
  [[nodiscard]] bool MatchesIgnoringEpoch(
      const CollectiveFingerprint& other) const;

  // "all_reduce[ring, sum, 4096 B]" — the form used in diffs and reports.
  [[nodiscard]] std::string Describe() const;
};

// Shared per-group contract state. Thread-safe; one instance lives in the
// group's shared state next to the barrier.
class ContractChecker {
 public:
  // (Re)arms the checker for a group of `world_size` ranks.
  void Reset(int world_size);

  // --- Fingerprint rendezvous (checked builds) -----------------------------
  // Protocol, driven by the caller around its own barrier:
  //   Deposit(rank, fp);  barrier();  Validate();  barrier();
  // The first barrier makes all deposits visible, Validate() compares them,
  // and the trailing barrier keeps fast ranks from overwriting the slots
  // while slow ranks are still reading.
  void Deposit(int rank, const CollectiveFingerprint& fp);

  // Returns the per-rank diff when deposited fingerprints diverge, nullopt
  // when the group agrees. Crashed ranks are skipped (their slots hold the
  // fingerprint of whatever collective they died before); the comparison
  // baseline is the first alive rank. Every rank computes the same report.
  [[nodiscard]] std::optional<std::string> Validate() const;

  // --- Fault-tolerance bookkeeping (DESIGN.md §6f) -------------------------
  // Marks `rank` as fail-stopped: excluded from fingerprint validation and
  // annotated CRASHED in watchdog reports. Cleared by Reset.
  void SetDead(int rank);

  // --- Elastic-membership bookkeeping (DESIGN.md "Elastic membership") -----
  // Marks `rank` alive again after a committed (re)admission: re-included
  // in fingerprint validation, cleared of dead/left/latent/waiting flags.
  void SetAlive(int rank);

  // Marks `rank` latent: part of the channel's capacity but never yet
  // admitted. Excluded from validation; rendered "not yet joined" so a
  // watchdog report does not blame a rank that was never supposed to run.
  void SetLatent(int rank);

  // Marks `rank` as gracefully departed at a membership commit (vs crashed).
  void SetLeft(int rank);

  // Flags `rank` as parked in AwaitAdmission. A parked rank is rendered
  // "awaiting admission", never "blocked in <collective>", so a rejoin in
  // flight cannot masquerade as a deadlock.
  void NoteJoinWaiting(int rank, bool waiting);

  // Records the membership epoch `rank` last entered a collective under;
  // rendered in reports so epoch skew is visible at a glance.
  void NoteEpoch(int rank, uint64_t epoch);

  // Accumulates `ticks` of virtual straggler delay charged to `rank` at a
  // collective entry — the watchdog escalation path: a straggling rank shows
  // its accumulated delay in BlockedReport, so a timeout report
  // distinguishes "slow" from "gone".
  void NoteStraggler(int rank, int64_t ticks);
  [[nodiscard]] int64_t straggler_ticks(int rank) const;

  // --- Watchdog bookkeeping (always on) ------------------------------------
  // Marks `rank` as inside `fp` / back out of it. Each Enter bumps the
  // rank's collective sequence number.
  void Enter(int rank, const CollectiveFingerprint& fp);
  void Exit(int rank);

  // One line per rank: the collective it is blocked in (with its sequence
  // number) or "idle". Rendered into barrier-timeout errors.
  [[nodiscard]] std::string BlockedReport() const;

 private:
  struct RankStatus {
    CollectiveFingerprint current;
    bool active = false;
    bool dead = false;    // fail-stopped (SetDead)
    bool latent = false;  // capacity slot never admitted (SetLatent)
    bool left = false;    // graceful departure at a commit (SetLeft)
    bool join_waiting = false;    // parked in AwaitAdmission
    uint64_t seq = 0;             // collectives entered so far
    uint64_t epoch = 0;           // last membership epoch noted
    int64_t straggler_ticks = 0;  // cumulative virtual delay charged
  };

  // True when `status_[r]` should be excluded from fingerprint validation.
  [[nodiscard]] static bool Excluded(const RankStatus& st) {
    return st.dead || st.latent || st.left;
  }

  // Level 40: the watchdog composes BlockedReport and MarkDead calls
  // SetDead while holding GroupState::group_mu (30), so the contract lock
  // sits strictly below it in the hierarchy.
  mutable ACPS_LOCK_LEVEL(40) contract_mu_;
  std::vector<CollectiveFingerprint> deposits_;
  std::vector<RankStatus> status_;
};

}  // namespace acps::comm
