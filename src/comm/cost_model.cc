#include "comm/cost_model.h"

#include "tensor/check.h"

namespace acps::comm {

NetworkSpec NetworkSpec::Ethernet1G() {
  // Commodity 1Gb/s Ethernet: ~125 MB/s, higher software latency.
  return NetworkSpec{"1GbE", 30e-6, 0.125e9, 0.45};
}

NetworkSpec NetworkSpec::Ethernet10G() {
  // The paper's main testbed: 10Gb/s Ethernet. α calibrated from the
  // "two 32KB all-reduces ≈ 2.0ms vs one 64KB ≈ 1.2ms (p=32)" anchor.
  return NetworkSpec{"10GbE", 10e-6, 1.25e9, 0.45};
}

NetworkSpec NetworkSpec::Infiniband100G() {
  return NetworkSpec{"100GbIB", 2e-6, 12.5e9, 0.55};
}

CostModel::CostModel(NetworkSpec net, int world_size)
    : net_(std::move(net)), p_(world_size) {
  ACPS_CHECK_MSG(p_ >= 1, "world_size must be >= 1");
  ACPS_CHECK_MSG(net_.beta_bytes_per_s > 0 && net_.alpha_s >= 0,
                 "invalid network spec");
}

double CostModel::AllReduce(double bytes) const {
  if (p_ == 1 || bytes <= 0) return 0.0;
  const double p = p_;
  return 2.0 * (p - 1.0) * net_.alpha_s +
         2.0 * (p - 1.0) / p * bytes / net_.beta_bytes_per_s;
}

double CostModel::AllGather(double bytes_per_worker) const {
  if (p_ == 1 || bytes_per_worker <= 0) return 0.0;
  const double p = p_;
  return (p - 1.0) * net_.alpha_s +
         (p - 1.0) * bytes_per_worker /
             (net_.beta_bytes_per_s * net_.allgather_efficiency);
}

double CostModel::ReduceScatter(double bytes) const {
  if (p_ == 1 || bytes <= 0) return 0.0;
  const double p = p_;
  return (p - 1.0) * net_.alpha_s +
         (p - 1.0) / p * bytes / net_.beta_bytes_per_s;
}

double CostModel::Broadcast(double bytes) const {
  if (p_ == 1 || bytes <= 0) return 0.0;
  const double p = p_;
  return (p - 1.0) * (net_.alpha_s + bytes / net_.beta_bytes_per_s);
}

double CostModel::PointToPoint(double bytes) const {
  return net_.alpha_s + (bytes > 0 ? bytes / net_.beta_bytes_per_s : 0.0);
}

double CostModel::AllReduceStartup() const {
  return p_ == 1 ? 0.0 : 2.0 * (p_ - 1.0) * net_.alpha_s;
}

}  // namespace acps::comm
