#include "comm/hierarchical.h"

#include <cstring>

namespace acps::comm {

void HierarchicalAllReduce(Communicator& comm, std::span<float> data,
                           int gpus_per_node) {
  const int p = comm.world_size();
  ACPS_CHECK_MSG(gpus_per_node >= 1 && p % gpus_per_node == 0,
                 "gpus_per_node " << gpus_per_node
                                  << " must divide world size " << p);
  if (p == 1 || data.empty()) return;
  const int nodes = p / gpus_per_node;
  const int node = comm.rank() / gpus_per_node;
  const int local = comm.rank() % gpus_per_node;
  const int leader = node * gpus_per_node;

  if (gpus_per_node == 1) {
    comm.all_reduce(data);
    return;
  }

  // Phase 1: intra-node reduction onto the leader. Non-leaders publish
  // their data; leaders accumulate their node members' contributions.
  // (Uses the mailbox/barrier fabric via all_gather of node-tagged data —
  // implemented with the generic gather then local sum to keep the
  // communicator surface small.)
  std::vector<float> gathered(data.size() * static_cast<size_t>(p));
  comm.all_gather(data, gathered);
  if (local == 0) {
    // Leader sums its node's block range.
    for (int r = leader; r < leader + gpus_per_node; ++r) {
      if (r == comm.rank()) continue;
      const float* src = gathered.data() + static_cast<size_t>(r) * data.size();
      for (size_t i = 0; i < data.size(); ++i) data[i] += src[i];
    }
  }

  // Phase 2: leaders all-reduce across nodes. Implemented as a masked
  // collective: every worker participates in the all_gather (rendezvous
  // requirement) but only leader contributions are summed.
  if (nodes > 1) {
    std::vector<float> leader_gather(data.size() * static_cast<size_t>(p));
    comm.all_gather(data, leader_gather);
    if (local == 0) {
      for (int n = 0; n < nodes; ++n) {
        const int r = n * gpus_per_node;
        if (r == comm.rank()) continue;
        const float* src =
            leader_gather.data() + static_cast<size_t>(r) * data.size();
        for (size_t i = 0; i < data.size(); ++i) data[i] += src[i];
      }
    }
  }

  // Phase 3: intra-node broadcast from the leader.
  std::vector<float> final_gather(data.size() * static_cast<size_t>(p));
  comm.all_gather(data, final_gather);
  if (local != 0) {
    const float* src =
        final_gather.data() + static_cast<size_t>(leader) * data.size();
    std::memcpy(data.data(), src, data.size() * sizeof(float));
  }
}

}  // namespace acps::comm
