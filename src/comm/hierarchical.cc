#include "comm/hierarchical.h"

#include <cstring>
#include <vector>

#include "check/sched_point.h"

namespace acps::comm {

namespace {

// First alive rank of `node`'s range, or -1 when the whole node crashed.
int NodeLeader(const Communicator& comm, int node, int gpus_per_node) {
  for (int r = node * gpus_per_node; r < (node + 1) * gpus_per_node; ++r) {
    if (comm.is_alive(r)) return r;
  }
  return -1;
}

}  // namespace

void HierarchicalAllReduce(Communicator& comm, std::span<float> data,
                           int gpus_per_node) {
  const int p = comm.world_size();
  ACPS_CHECK_MSG(gpus_per_node >= 1 && p % gpus_per_node == 0,
                 "gpus_per_node " << gpus_per_node
                                  << " must divide world size " << p);
  if (p == 1 || data.empty()) return;
  const int nodes = p / gpus_per_node;
  const int node = comm.rank() / gpus_per_node;

  if (gpus_per_node == 1) {
    comm.all_reduce(data);
    return;
  }

  // Leadership follows the alive view: the node leader is its first alive
  // rank, so a crashed leader's duties fail over deterministically. The
  // view is resampled at every nested collective entry; `leader` below is
  // recomputed per phase from the view the phase's collective produced.
  //
  // Each phase boundary is a schedule point (kHierPhase): the model checker
  // perturbs here to explore phase interleavings, and entry-kind faults
  // (crash/straggler) fire at the nested collectives these points precede.

  // Phase 1: intra-node reduction onto the leader. Non-leaders publish
  // their data; leaders accumulate their node members' contributions.
  // (Uses the mailbox/barrier fabric via all_gather of node-tagged data —
  // implemented with the generic gather then local sum to keep the
  // communicator surface small.)
  check::SchedPoint(check::PointKind::kHierPhase, comm.rank());
  std::vector<float> gathered(data.size() * static_cast<size_t>(p));
  comm.all_gather(data, gathered);
  int leader = NodeLeader(comm, node, gpus_per_node);
  if (comm.rank() == leader) {
    // Leader sums its node's alive block range (dead blocks are zeroed by
    // all_gather, but skipping them keeps the arithmetic order exact).
    for (int r = node * gpus_per_node; r < (node + 1) * gpus_per_node; ++r) {
      if (r == comm.rank() || !comm.is_alive(r)) continue;
      const float* src = gathered.data() + static_cast<size_t>(r) * data.size();
      for (size_t i = 0; i < data.size(); ++i) data[i] += src[i];
    }
  }

  // Phase 2: leaders all-reduce across nodes. Implemented as a masked
  // collective: every worker participates in the all_gather (rendezvous
  // requirement) but only leader contributions are summed.
  if (nodes > 1) {
    check::SchedPoint(check::PointKind::kHierPhase, comm.rank());
    std::vector<float> leader_gather(data.size() * static_cast<size_t>(p));
    comm.all_gather(data, leader_gather);
    leader = NodeLeader(comm, node, gpus_per_node);
    if (comm.rank() == leader) {
      for (int n = 0; n < nodes; ++n) {
        const int r = NodeLeader(comm, n, gpus_per_node);
        if (r < 0 || r == comm.rank()) continue;
        const float* src =
            leader_gather.data() + static_cast<size_t>(r) * data.size();
        for (size_t i = 0; i < data.size(); ++i) data[i] += src[i];
      }
    }
  }

  // Phase 3: intra-node broadcast from the leader.
  check::SchedPoint(check::PointKind::kHierPhase, comm.rank());
  std::vector<float> final_gather(data.size() * static_cast<size_t>(p));
  comm.all_gather(data, final_gather);
  leader = NodeLeader(comm, node, gpus_per_node);
  if (comm.rank() != leader && leader >= 0) {
    const float* src =
        final_gather.data() + static_cast<size_t>(leader) * data.size();
    std::memcpy(data.data(), src, data.size() * sizeof(float));
  }
}

}  // namespace acps::comm
