#include "comm/contract.h"

#include <sstream>

#include "tensor/check.h"

namespace acps::comm {

const char* ToString(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::kNone: return "none";
    case CollectiveKind::kBarrier: return "barrier";
    case CollectiveKind::kAllReduce: return "all_reduce";
    case CollectiveKind::kAllGather: return "all_gather";
    case CollectiveKind::kAllGatherBytes: return "all_gather_bytes";
    case CollectiveKind::kAllGatherV: return "all_gather_v";
    case CollectiveKind::kReduceScatter: return "reduce_scatter";
    case CollectiveKind::kBroadcast: return "broadcast";
  }
  return "unknown";
}

bool CollectiveFingerprint::Matches(const CollectiveFingerprint& other) const {
  if (kind != other.kind || op != other.op || algo != other.algo ||
      root != other.root)
    return false;
  if (variable_size || other.variable_size) return kind == other.kind;
  return bytes == other.bytes;
}

std::string CollectiveFingerprint::Describe() const {
  std::ostringstream oss;
  oss << ToString(kind) << '[';
  bool first = true;
  const auto sep = [&]() -> std::ostringstream& {
    if (!first) oss << ", ";
    first = false;
    return oss;
  };
  if (algo >= 0) sep() << (algo == 0 ? "ring" : "naive");
  if (op >= 0) sep() << (op == 0 ? "sum" : "max");
  if (root >= 0) sep() << "root=" << root;
  if (variable_size)
    sep() << "variable size";
  else if (kind != CollectiveKind::kBarrier)
    sep() << bytes << " B";
  oss << ']';
  return oss.str();
}

void ContractChecker::Reset(int world_size) {
  ACPS_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  std::lock_guard lock(mu_);
  deposits_.assign(static_cast<size_t>(world_size), CollectiveFingerprint{});
  status_.assign(static_cast<size_t>(world_size), RankStatus{});
}

void ContractChecker::Deposit(int rank, const CollectiveFingerprint& fp) {
  std::lock_guard lock(mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(deposits_.size()),
                 "rank out of range");
  deposits_[static_cast<size_t>(rank)] = fp;
}

std::optional<std::string> ContractChecker::Validate() const {
  std::lock_guard lock(mu_);
  bool diverged = false;
  for (size_t r = 1; r < deposits_.size(); ++r) {
    if (!deposits_[0].Matches(deposits_[r])) {
      diverged = true;
      break;
    }
  }
  if (!diverged) return std::nullopt;

  std::ostringstream oss;
  oss << "collective contract violation: workers issued mismatched "
         "collectives\n";
  for (size_t r = 0; r < deposits_.size(); ++r) {
    oss << "  rank " << r << ": " << deposits_[r].Describe();
    if (!deposits_[0].Matches(deposits_[r])) oss << "   <-- differs from rank 0";
    oss << '\n';
  }
  oss << "every worker of a group must issue the same sequence of "
         "collectives with matching sizes (DESIGN.md, NCCL usage contract)";
  return oss.str();
}

void ContractChecker::Enter(int rank, const CollectiveFingerprint& fp) {
  std::lock_guard lock(mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  auto& st = status_[static_cast<size_t>(rank)];
  st.current = fp;
  st.active = true;
  ++st.seq;
}

void ContractChecker::Exit(int rank) {
  std::lock_guard lock(mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  status_[static_cast<size_t>(rank)].active = false;
}

std::string ContractChecker::BlockedReport() const {
  std::lock_guard lock(mu_);
  std::ostringstream oss;
  oss << "per-rank collective status:\n";
  for (size_t r = 0; r < status_.size(); ++r) {
    const auto& st = status_[r];
    oss << "  rank " << r << ": ";
    if (st.active)
      oss << "blocked in " << st.current.Describe() << " (collective #"
          << st.seq << ')';
    else
      oss << "idle (completed " << st.seq << " collectives)";
    oss << '\n';
  }
  return oss.str();
}

}  // namespace acps::comm
