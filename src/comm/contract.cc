#include "comm/contract.h"

#include <sstream>

#include "tensor/check.h"

namespace acps::comm {

const char* ToString(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::kNone: return "none";
    case CollectiveKind::kBarrier: return "barrier";
    case CollectiveKind::kAllReduce: return "all_reduce";
    case CollectiveKind::kAllGather: return "all_gather";
    case CollectiveKind::kAllGatherBytes: return "all_gather_bytes";
    case CollectiveKind::kAllGatherV: return "all_gather_v";
    case CollectiveKind::kReduceScatter: return "reduce_scatter";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kViewCommit: return "view_commit";
  }
  return "unknown";
}

bool CollectiveFingerprint::Matches(const CollectiveFingerprint& other) const {
  return epoch == other.epoch && MatchesIgnoringEpoch(other);
}

bool CollectiveFingerprint::MatchesIgnoringEpoch(
    const CollectiveFingerprint& other) const {
  if (kind != other.kind || op != other.op || algo != other.algo ||
      root != other.root)
    return false;
  if (variable_size || other.variable_size) return kind == other.kind;
  return bytes == other.bytes;
}

std::string CollectiveFingerprint::Describe() const {
  std::ostringstream oss;
  oss << ToString(kind) << '[';
  bool first = true;
  const auto sep = [&]() -> std::ostringstream& {
    if (!first) oss << ", ";
    first = false;
    return oss;
  };
  if (algo >= 0) sep() << (algo == 0 ? "ring" : "naive");
  if (op >= 0) sep() << (op == 0 ? "sum" : "max");
  if (root >= 0) sep() << "root=" << root;
  if (epoch > 0) sep() << "epoch=" << epoch;
  if (variable_size)
    sep() << "variable size";
  else if (kind != CollectiveKind::kBarrier &&
           kind != CollectiveKind::kViewCommit)
    sep() << bytes << " B";
  oss << ']';
  return oss.str();
}

void ContractChecker::Reset(int world_size) {
  ACPS_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  std::lock_guard lock(contract_mu_);
  deposits_.assign(static_cast<size_t>(world_size), CollectiveFingerprint{});
  status_.assign(static_cast<size_t>(world_size), RankStatus{});
}

void ContractChecker::Deposit(int rank, const CollectiveFingerprint& fp) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(deposits_.size()),
                 "rank out of range");
  deposits_[static_cast<size_t>(rank)] = fp;
}

std::optional<std::string> ContractChecker::Validate() const {
  std::lock_guard lock(contract_mu_);
  // Baseline = first participating rank; crashed/latent/departed ranks'
  // deposits are stale by definition and excluded from the comparison.
  int base = -1;
  for (size_t r = 0; r < deposits_.size(); ++r) {
    if (!Excluded(status_[r])) {
      base = static_cast<int>(r);
      break;
    }
  }
  if (base < 0) return std::nullopt;
  bool diverged = false;
  bool epoch_only = true;
  for (size_t r = static_cast<size_t>(base) + 1; r < deposits_.size(); ++r) {
    if (Excluded(status_[r])) continue;
    if (!deposits_[static_cast<size_t>(base)].Matches(deposits_[r])) {
      diverged = true;
      if (!deposits_[static_cast<size_t>(base)].MatchesIgnoringEpoch(
              deposits_[r]))
        epoch_only = false;
    }
  }
  if (!diverged) return std::nullopt;

  std::ostringstream oss;
  if (epoch_only) {
    oss << "collective contract violation: membership view transition skew — "
           "workers issued the same collective under different membership "
           "epochs (a rank ran past a view commit its peers have not "
           "reached)\n";
  } else {
    oss << "collective contract violation: workers issued mismatched "
           "collectives\n";
  }
  for (size_t r = 0; r < deposits_.size(); ++r) {
    oss << "  rank " << r << ": ";
    if (status_[r].dead) {
      oss << "CRASHED (fail-stop, excluded)\n";
      continue;
    }
    if (status_[r].latent) {
      oss << "not yet joined (latent capacity slot, excluded)\n";
      continue;
    }
    if (status_[r].left) {
      oss << "LEFT (graceful departure, excluded)\n";
      continue;
    }
    oss << deposits_[r].Describe();
    if (!deposits_[static_cast<size_t>(base)].Matches(deposits_[r]))
      oss << "   <-- differs from rank " << base;
    oss << '\n';
  }
  if (epoch_only) {
    oss << "membership epochs must advance in lockstep: every rank passes "
           "the same barrier-aligned view commit before issuing collectives "
           "in the new epoch (DESIGN.md, elastic membership)";
  } else {
    oss << "every worker of a group must issue the same sequence of "
           "collectives with matching sizes (DESIGN.md, NCCL usage contract)";
  }
  return oss.str();
}

void ContractChecker::SetDead(int rank) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  auto& st = status_[static_cast<size_t>(rank)];
  st.dead = true;
  st.active = false;
}

void ContractChecker::SetAlive(int rank) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  auto& st = status_[static_cast<size_t>(rank)];
  st.dead = false;
  st.latent = false;
  st.left = false;
  st.join_waiting = false;
}

void ContractChecker::SetLatent(int rank) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  auto& st = status_[static_cast<size_t>(rank)];
  st.latent = true;
  st.active = false;
}

void ContractChecker::SetLeft(int rank) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  auto& st = status_[static_cast<size_t>(rank)];
  st.left = true;
  st.active = false;
}

void ContractChecker::NoteJoinWaiting(int rank, bool waiting) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  status_[static_cast<size_t>(rank)].join_waiting = waiting;
}

void ContractChecker::NoteEpoch(int rank, uint64_t epoch) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  status_[static_cast<size_t>(rank)].epoch = epoch;
}

void ContractChecker::NoteStraggler(int rank, int64_t ticks) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  status_[static_cast<size_t>(rank)].straggler_ticks += ticks;
}

int64_t ContractChecker::straggler_ticks(int rank) const {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  return status_[static_cast<size_t>(rank)].straggler_ticks;
}

void ContractChecker::Enter(int rank, const CollectiveFingerprint& fp) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  auto& st = status_[static_cast<size_t>(rank)];
  st.current = fp;
  st.active = true;
  ++st.seq;
}

void ContractChecker::Exit(int rank) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  status_[static_cast<size_t>(rank)].active = false;
}

std::string ContractChecker::BlockedReport() const {
  std::lock_guard lock(contract_mu_);
  std::ostringstream oss;
  oss << "per-rank collective status:\n";
  for (size_t r = 0; r < status_.size(); ++r) {
    const auto& st = status_[r];
    oss << "  rank " << r << ": ";
    if (st.join_waiting)
      oss << "awaiting admission (rejoin/join parked at the next view "
             "commit, not deadlocked)";
    else if (st.dead)
      oss << "CRASHED (fail-stop after " << st.seq << " collectives)";
    else if (st.latent)
      oss << "not yet joined (latent capacity slot)";
    else if (st.left)
      oss << "LEFT (graceful departure after " << st.seq << " collectives)";
    else if (st.active)
      oss << "blocked in " << st.current.Describe() << " (collective #"
          << st.seq << ')';
    else
      oss << "idle (completed " << st.seq << " collectives)";
    if (st.epoch > 0) oss << ", epoch " << st.epoch;
    if (st.straggler_ticks > 0)
      oss << ", straggler delay " << st.straggler_ticks << " ticks";
    oss << '\n';
  }
  return oss.str();
}

}  // namespace acps::comm
