#include "comm/contract.h"

#include <sstream>

#include "tensor/check.h"

namespace acps::comm {

const char* ToString(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::kNone: return "none";
    case CollectiveKind::kBarrier: return "barrier";
    case CollectiveKind::kAllReduce: return "all_reduce";
    case CollectiveKind::kAllGather: return "all_gather";
    case CollectiveKind::kAllGatherBytes: return "all_gather_bytes";
    case CollectiveKind::kAllGatherV: return "all_gather_v";
    case CollectiveKind::kReduceScatter: return "reduce_scatter";
    case CollectiveKind::kBroadcast: return "broadcast";
  }
  return "unknown";
}

bool CollectiveFingerprint::Matches(const CollectiveFingerprint& other) const {
  if (kind != other.kind || op != other.op || algo != other.algo ||
      root != other.root)
    return false;
  if (variable_size || other.variable_size) return kind == other.kind;
  return bytes == other.bytes;
}

std::string CollectiveFingerprint::Describe() const {
  std::ostringstream oss;
  oss << ToString(kind) << '[';
  bool first = true;
  const auto sep = [&]() -> std::ostringstream& {
    if (!first) oss << ", ";
    first = false;
    return oss;
  };
  if (algo >= 0) sep() << (algo == 0 ? "ring" : "naive");
  if (op >= 0) sep() << (op == 0 ? "sum" : "max");
  if (root >= 0) sep() << "root=" << root;
  if (variable_size)
    sep() << "variable size";
  else if (kind != CollectiveKind::kBarrier)
    sep() << bytes << " B";
  oss << ']';
  return oss.str();
}

void ContractChecker::Reset(int world_size) {
  ACPS_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  std::lock_guard lock(contract_mu_);
  deposits_.assign(static_cast<size_t>(world_size), CollectiveFingerprint{});
  status_.assign(static_cast<size_t>(world_size), RankStatus{});
}

void ContractChecker::Deposit(int rank, const CollectiveFingerprint& fp) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(deposits_.size()),
                 "rank out of range");
  deposits_[static_cast<size_t>(rank)] = fp;
}

std::optional<std::string> ContractChecker::Validate() const {
  std::lock_guard lock(contract_mu_);
  // Baseline = first alive rank; crashed ranks' deposits are stale by
  // definition and excluded from the comparison.
  int base = -1;
  for (size_t r = 0; r < deposits_.size(); ++r) {
    if (!status_[r].dead) {
      base = static_cast<int>(r);
      break;
    }
  }
  if (base < 0) return std::nullopt;
  bool diverged = false;
  for (size_t r = static_cast<size_t>(base) + 1; r < deposits_.size(); ++r) {
    if (status_[r].dead) continue;
    if (!deposits_[static_cast<size_t>(base)].Matches(deposits_[r])) {
      diverged = true;
      break;
    }
  }
  if (!diverged) return std::nullopt;

  std::ostringstream oss;
  oss << "collective contract violation: workers issued mismatched "
         "collectives\n";
  for (size_t r = 0; r < deposits_.size(); ++r) {
    oss << "  rank " << r << ": ";
    if (status_[r].dead) {
      oss << "CRASHED (fail-stop, excluded)\n";
      continue;
    }
    oss << deposits_[r].Describe();
    if (!deposits_[static_cast<size_t>(base)].Matches(deposits_[r]))
      oss << "   <-- differs from rank " << base;
    oss << '\n';
  }
  oss << "every worker of a group must issue the same sequence of "
         "collectives with matching sizes (DESIGN.md, NCCL usage contract)";
  return oss.str();
}

void ContractChecker::SetDead(int rank) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  auto& st = status_[static_cast<size_t>(rank)];
  st.dead = true;
  st.active = false;
}

void ContractChecker::NoteStraggler(int rank, int64_t ticks) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  status_[static_cast<size_t>(rank)].straggler_ticks += ticks;
}

int64_t ContractChecker::straggler_ticks(int rank) const {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  return status_[static_cast<size_t>(rank)].straggler_ticks;
}

void ContractChecker::Enter(int rank, const CollectiveFingerprint& fp) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  auto& st = status_[static_cast<size_t>(rank)];
  st.current = fp;
  st.active = true;
  ++st.seq;
}

void ContractChecker::Exit(int rank) {
  std::lock_guard lock(contract_mu_);
  ACPS_CHECK_MSG(rank >= 0 && rank < static_cast<int>(status_.size()),
                 "rank out of range");
  status_[static_cast<size_t>(rank)].active = false;
}

std::string ContractChecker::BlockedReport() const {
  std::lock_guard lock(contract_mu_);
  std::ostringstream oss;
  oss << "per-rank collective status:\n";
  for (size_t r = 0; r < status_.size(); ++r) {
    const auto& st = status_[r];
    oss << "  rank " << r << ": ";
    if (st.dead)
      oss << "CRASHED (fail-stop after " << st.seq << " collectives)";
    else if (st.active)
      oss << "blocked in " << st.current.Describe() << " (collective #"
          << st.seq << ')';
    else
      oss << "idle (completed " << st.seq << " collectives)";
    if (st.straggler_ticks > 0)
      oss << ", straggler delay " << st.straggler_ticks << " ticks";
    oss << '\n';
  }
  return oss.str();
}

}  // namespace acps::comm
