#include "metrics/csv.h"

#include <fstream>
#include <sstream>

#include "tensor/check.h"

namespace acps::metrics {
namespace {

std::string Field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  ACPS_CHECK_MSG(cells.size() == headers_.size(),
                 "CSV row has " << cells.size() << " cells, expected "
                                << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::Render() const {
  std::ostringstream oss;
  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) oss << ",";
      oss << Field(cells[i]);
    }
    oss << "\n";
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
  return oss.str();
}

bool CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << Render();
  return static_cast<bool>(out);
}

}  // namespace acps::metrics
