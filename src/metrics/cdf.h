// Empirical CDF helper — regenerates the paper's Fig. 5 (distribution of
// tensor sizes before/after low-rank compression).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace acps::metrics {

class Cdf {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void AddAll(const std::vector<double>& xs) {
    values_.insert(values_.end(), xs.begin(), xs.end());
    sorted_ = false;
  }

  [[nodiscard]] size_t count() const noexcept { return values_.size(); }

  // Fraction of samples <= x (0 for empty).
  [[nodiscard]] double FractionAtOrBelow(double x) const;

  // q-quantile (0 <= q <= 1) by linear interpolation; requires samples.
  [[nodiscard]] double Quantile(double q) const;

 private:
  void Sort() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace acps::metrics
