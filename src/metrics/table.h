// ASCII table / bar-series renderer shared by all bench harnesses so every
// reproduced table and figure prints in one consistent format.
#pragma once

#include <string>
#include <vector>

namespace acps::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 2);

  [[nodiscard]] std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders one horizontal ASCII bar scaled against `max_value` — used to
// print "figures" (bar charts) in the terminal.
[[nodiscard]] std::string Bar(double value, double max_value, int width = 40);

}  // namespace acps::metrics
