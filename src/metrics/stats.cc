#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace acps::metrics {

void RunningStats::Add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace acps::metrics
