// Streaming statistics accumulators used by benches and tests.
#pragma once

#include <cstdint>
#include <limits>

namespace acps::metrics {

// Welford online mean/variance.
class RunningStats {
 public:
  void Add(double x) noexcept;

  [[nodiscard]] int64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  // Sample variance / stddev (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  void Reset() noexcept { *this = RunningStats{}; }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace acps::metrics
