#include "metrics/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "tensor/check.h"

namespace acps::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ACPS_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream oss;
  auto rule = [&] {
    oss << "+";
    for (size_t w : widths) oss << std::string(w + 2, '-') << "+";
    oss << "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    oss << "|";
    for (size_t c = 0; c < cells.size(); ++c)
      oss << " " << std::left << std::setw(static_cast<int>(widths[c]))
          << cells[c] << " |";
    oss << "\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return oss.str();
}

std::string Bar(double value, double max_value, int width) {
  if (max_value <= 0 || value < 0) return "";
  const int n = std::min(
      width, static_cast<int>(value / max_value * width + 0.5));
  return std::string(static_cast<size_t>(std::max(0, n)), '#');
}

}  // namespace acps::metrics
