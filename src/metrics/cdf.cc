#include "metrics/cdf.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace acps::metrics {

void Cdf::Sort() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::FractionAtOrBelow(double x) const {
  if (values_.empty()) return 0.0;
  Sort();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double Cdf::Quantile(double q) const {
  ACPS_CHECK_MSG(!values_.empty(), "Quantile of empty CDF");
  ACPS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  Sort();
  if (values_.size() == 1) return values_[0];
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace acps::metrics
