// Tiny CSV writer so bench harnesses can dump machine-readable results
// next to the printed tables (plotting, regression tracking).
#pragma once

#include <string>
#include <vector>

namespace acps::metrics {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // RFC-4180-style rendering (quotes fields containing , " or newline).
  [[nodiscard]] std::string Render() const;

  // Writes to `path`; returns false on I/O failure.
  [[nodiscard]] bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acps::metrics
