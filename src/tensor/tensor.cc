#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "par/parallel.h"

namespace acps {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    ACPS_CHECK_MSG(d >= 0, "negative dimension in shape " << ShapeToString(shape));
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(NumElements(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  ACPS_CHECK_MSG(NumElements(shape_) == static_cast<int64_t>(data_.size()),
                 "shape " << ShapeToString(shape_) << " does not match "
                          << data_.size() << " values");
}

Tensor Tensor::clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_ = data_;
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::FromSpan(Shape shape, std::span<const float> v) {
  return Tensor(std::move(shape), std::vector<float>(v.begin(), v.end()));
}

int64_t Tensor::dim(int64_t i) const {
  ACPS_CHECK_MSG(i >= 0 && i < ndim(),
                 "dim " << i << " out of range for " << ShapeToString(shape_));
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::rows() const {
  ACPS_CHECK_MSG(ndim() == 2, "rows() on non-matrix " << ShapeToString(shape_));
  return shape_[0];
}

int64_t Tensor::cols() const {
  ACPS_CHECK_MSG(ndim() == 2, "cols() on non-matrix " << ShapeToString(shape_));
  return shape_[1];
}

float& Tensor::at(int64_t i) {
  ACPS_CHECK_MSG(i >= 0 && i < numel(), "index " << i << " out of range");
  return data_[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i) const {
  ACPS_CHECK_MSG(i >= 0 && i < numel(), "index " << i << " out of range");
  return data_[static_cast<size_t>(i)];
}

float& Tensor::at(int64_t r, int64_t c) {
  ACPS_CHECK_MSG(ndim() == 2 && r >= 0 && r < rows() && c >= 0 && c < cols(),
                 "(" << r << ", " << c << ") out of range for "
                     << ShapeToString(shape_));
  return data_[static_cast<size_t>(r * cols() + c)];
}

float Tensor::at(int64_t r, int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

void Tensor::reshape(Shape new_shape) {
  ACPS_CHECK_MSG(NumElements(new_shape) == numel(),
                 "reshape " << ShapeToString(shape_) << " -> "
                            << ShapeToString(new_shape));
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = clone();
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::fill(float value) noexcept {
  float* dst = data_.data();
  par::ParallelFor(par::kDefaultGrain, static_cast<int64_t>(data_.size()),
                   [&](int64_t begin, int64_t end) {
                     std::fill(dst + begin, dst + end, value);
                   });
}

void Tensor::add_(const Tensor& other) { axpy_(1.0f, other); }

void Tensor::sub_(const Tensor& other) { axpy_(-1.0f, other); }

void Tensor::axpy_(float alpha, const Tensor& other) {
  ACPS_CHECK_MSG(numel() == other.numel(),
                 "axpy size mismatch: " << numel() << " vs " << other.numel());
  const float* src = other.data_.data();
  float* dst = data_.data();
  par::ParallelFor(par::kDefaultGrain, static_cast<int64_t>(data_.size()),
                   [&](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i)
                       dst[i] += alpha * src[i];
                   });
}

void Tensor::scale_(float alpha) noexcept {
  float* dst = data_.data();
  par::ParallelFor(par::kDefaultGrain, static_cast<int64_t>(data_.size()),
                   [&](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) dst[i] *= alpha;
                   });
}

void Tensor::copy_from(const Tensor& other) {
  ACPS_CHECK_MSG(numel() == other.numel(), "copy_from size mismatch: "
                                               << numel() << " vs "
                                               << other.numel());
  const float* src = other.data_.data();
  float* dst = data_.data();
  par::ParallelFor(par::kDefaultGrain, static_cast<int64_t>(data_.size()),
                   [&](int64_t begin, int64_t end) {
                     std::copy(src + begin, src + end, dst + begin);
                   });
}

// Reductions use the deterministic fixed-chunk tree (par/parallel.h):
// double partials over chunks of kReduceChunk elements, combined pairwise.
// The chunk grid depends only on numel, so the value is identical for every
// thread count within a build.
namespace {
constexpr int64_t kReduceChunk = 1 << 15;
}  // namespace

float Tensor::sum() const noexcept {
  const float* src = data_.data();
  const double acc = par::ParallelReduce(
      kReduceChunk, static_cast<int64_t>(data_.size()), 0.0,
      [&](int64_t begin, int64_t end) {
        double a = 0.0;
        for (int64_t i = begin; i < end; ++i) a += src[i];
        return a;
      },
      [](double x, double y) { return x + y; });
  return static_cast<float>(acc);
}

float Tensor::dot(const Tensor& other) const {
  ACPS_CHECK_MSG(numel() == other.numel(),
                 "dot size mismatch: " << numel() << " vs " << other.numel());
  const float* xs = data_.data();
  const float* ys = other.data_.data();
  const double acc = par::ParallelReduce(
      kReduceChunk, static_cast<int64_t>(data_.size()), 0.0,
      [&](int64_t begin, int64_t end) {
        double a = 0.0;
        for (int64_t i = begin; i < end; ++i)
          a += static_cast<double>(xs[i]) * ys[i];
        return a;
      },
      [](double x, double y) { return x + y; });
  return static_cast<float>(acc);
}

float Tensor::norm2() const noexcept {
  const float* src = data_.data();
  const double acc = par::ParallelReduce(
      kReduceChunk, static_cast<int64_t>(data_.size()), 0.0,
      [&](int64_t begin, int64_t end) {
        double a = 0.0;
        for (int64_t i = begin; i < end; ++i)
          a += static_cast<double>(src[i]) * src[i];
        return a;
      },
      [](double x, double y) { return x + y; });
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::abs_max() const noexcept {
  const float* src = data_.data();
  // max is exact, so the tree combine is bitwise equal to the serial scan.
  return par::ParallelReduce(
      kReduceChunk, static_cast<int64_t>(data_.size()), 0.0f,
      [&](int64_t begin, int64_t end) {
        float m = 0.0f;
        for (int64_t i = begin; i < end; ++i) m = std::max(m, std::abs(src[i]));
        return m;
      },
      [](float x, float y) { return std::max(x, y); });
}

bool Tensor::all_close(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace acps
