#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace acps {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    ACPS_CHECK_MSG(d >= 0, "negative dimension in shape " << ShapeToString(shape));
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(NumElements(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  ACPS_CHECK_MSG(NumElements(shape_) == static_cast<int64_t>(data_.size()),
                 "shape " << ShapeToString(shape_) << " does not match "
                          << data_.size() << " values");
}

Tensor Tensor::clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_ = data_;
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::FromSpan(Shape shape, std::span<const float> v) {
  return Tensor(std::move(shape), std::vector<float>(v.begin(), v.end()));
}

int64_t Tensor::dim(int64_t i) const {
  ACPS_CHECK_MSG(i >= 0 && i < ndim(),
                 "dim " << i << " out of range for " << ShapeToString(shape_));
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::rows() const {
  ACPS_CHECK_MSG(ndim() == 2, "rows() on non-matrix " << ShapeToString(shape_));
  return shape_[0];
}

int64_t Tensor::cols() const {
  ACPS_CHECK_MSG(ndim() == 2, "cols() on non-matrix " << ShapeToString(shape_));
  return shape_[1];
}

float& Tensor::at(int64_t i) {
  ACPS_CHECK_MSG(i >= 0 && i < numel(), "index " << i << " out of range");
  return data_[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i) const {
  ACPS_CHECK_MSG(i >= 0 && i < numel(), "index " << i << " out of range");
  return data_[static_cast<size_t>(i)];
}

float& Tensor::at(int64_t r, int64_t c) {
  ACPS_CHECK_MSG(ndim() == 2 && r >= 0 && r < rows() && c >= 0 && c < cols(),
                 "(" << r << ", " << c << ") out of range for "
                     << ShapeToString(shape_));
  return data_[static_cast<size_t>(r * cols() + c)];
}

float Tensor::at(int64_t r, int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

void Tensor::reshape(Shape new_shape) {
  ACPS_CHECK_MSG(NumElements(new_shape) == numel(),
                 "reshape " << ShapeToString(shape_) << " -> "
                            << ShapeToString(new_shape));
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = clone();
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) { axpy_(1.0f, other); }

void Tensor::sub_(const Tensor& other) { axpy_(-1.0f, other); }

void Tensor::axpy_(float alpha, const Tensor& other) {
  ACPS_CHECK_MSG(numel() == other.numel(),
                 "axpy size mismatch: " << numel() << " vs " << other.numel());
  const float* src = other.data_.data();
  float* dst = data_.data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::scale_(float alpha) noexcept {
  for (float& v : data_) v *= alpha;
}

void Tensor::copy_from(const Tensor& other) {
  ACPS_CHECK_MSG(numel() == other.numel(), "copy_from size mismatch: "
                                               << numel() << " vs "
                                               << other.numel());
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

float Tensor::sum() const noexcept {
  // Pairwise-ish summation via double accumulator for stability.
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::dot(const Tensor& other) const {
  ACPS_CHECK_MSG(numel() == other.numel(),
                 "dot size mismatch: " << numel() << " vs " << other.numel());
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    acc += static_cast<double>(data_[i]) * other.data_[i];
  return static_cast<float>(acc);
}

float Tensor::norm2() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::abs_max() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

bool Tensor::all_close(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace acps
