// Row-major BLAS-like matrix kernels on raw spans and Tensors.
//
// These are the compute primitives behind Power-SGD / ACP-SGD compression
// (M·Q, Mᵀ·P), the DNN substrate (linear layers), and the linalg module.
// They are deliberately simple, cache-blocked loops — correctness and
// determinism over peak throughput (perf *measurement* happens in acps::sim).
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace acps {

// C[n×m] = alpha * A[n×k] · B[k×m] + beta * C. Row-major, no aliasing.
void Gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, int64_t n, int64_t k, int64_t m,
          float alpha = 1.0f, float beta = 0.0f);

// C[n×m] = alpha * Aᵀ[n×k] · B[k×m] + beta * C, where A is stored as [k×n].
void GemmTransA(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha = 1.0f, float beta = 0.0f);

// C[n×m] = alpha * A[n×k] · Bᵀ[k×m] + beta * C, where B is stored as [m×k].
void GemmTransB(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha = 1.0f, float beta = 0.0f);

// Tensor conveniences (shapes checked). Result is freshly allocated.
[[nodiscard]] Tensor MatMul(const Tensor& a, const Tensor& b);      // A·B
[[nodiscard]] Tensor MatMulTA(const Tensor& a, const Tensor& b);    // Aᵀ·B
[[nodiscard]] Tensor MatMulTB(const Tensor& a, const Tensor& b);    // A·Bᵀ

// out[r×c] = inᵀ where in is [c×r].
[[nodiscard]] Tensor Transpose(const Tensor& in);

// y[n] = A[n×m]·x[m]  (row-major).
void Gemv(std::span<const float> a, std::span<const float> x,
          std::span<float> y, int64_t n, int64_t m);

// y += alpha * x (sizes must match).
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

}  // namespace acps
