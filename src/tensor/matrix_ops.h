// Row-major BLAS-like matrix kernels on raw spans and Tensors.
//
// These are the compute primitives behind Power-SGD / ACP-SGD compression
// (M·Q, Mᵀ·P), the DNN substrate (linear layers), and the linalg module.
// The production kernels are tiled, register-blocked, and multi-threaded on
// the deterministic pool (par/parallel.h); each also has a `*Naive`
// reference — a plain loop nest implementing the identical accumulation
// policy — retained for the bitwise parity tests (tests/kernel_parity_test)
// and as the speedup baseline of bench/bench_kernels.
//
// ACCUMULATION POLICY (uniform across the GEMM family, DESIGN.md §6e):
//  * All accumulation is fp32. Every output element is produced by exactly
//    one task, so results are bitwise identical for any thread count.
//  * beta handling: the result is written as `beta_term + alpha_term`,
//    where beta_term is 0 when beta == 0 (the old C contents — even NaN or
//    garbage — are overwritten) and beta * c_old otherwise. The beta != 0
//    blend goes through one shared non-inlined helper (BetaBlend in the
//    .cc) so FMA contraction cannot split the expression differently in
//    the production vs naive bodies.
//  * saxpy-form kernels (Gemm, GemmTransA) accumulate contributions
//    (alpha * a_ik) * b_kj into a single per-element fp32 accumulator that
//    starts at 0, in ascending k order, each contribution folded in with an
//    explicit std::fmaf (single rounding). The fma is spelled out rather
//    than left to -ffp-contract because GCC contracts the production tile
//    but not the interchanged naive nest, which silently breaks parity.
//  * dot-form kernels (GemmTransB, Gemv) accumulate a_ik * b_jk into 8
//    fixed interleaved fp32 lanes (lane l takes k ≡ l mod 8), combine the
//    lanes in a fixed pairwise tree, and apply alpha once to the combined
//    dot product.
// Tiling and row-partitioning never reorder any element's accumulation
// chain, which is what makes kernel == naive bitwise at every thread count.
//
// Above the register tiles sits an L2-blocked packed-panel layer (DESIGN.md
// §6e): macro-panels of A and B are copied into contiguous per-thread
// scratch (kMr-row / kNj-column interleaved) and reused across the j/i
// loops. Packing is a pure data-layout change and k-splitting only spills /
// reloads the fp32 accumulator (exact), so the packed paths stay bitwise
// identical to the unpacked ones and to the naive references.
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace acps {

// Routing policy for the L2-blocked packed-panel GEMM layer. kAuto (the
// default) picks packed vs direct per call from the problem shape; kAlways
// forces every GEMM through the packed path (parity tests use this to pin
// the packed kernels against the naive references at boundary shapes);
// kNever forces the pre-packing register-blocked path. All three produce
// bitwise-identical results — the mode only moves data layout and
// scheduling, never an accumulation chain.
enum class GemmPackMode { kAuto, kAlways, kNever };
void SetGemmPackMode(GemmPackMode mode);
[[nodiscard]] GemmPackMode GetGemmPackMode();

// C[n×m] = alpha * A[n×k] · B[k×m] + beta * C. Row-major, no aliasing.
void Gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, int64_t n, int64_t k, int64_t m,
          float alpha = 1.0f, float beta = 0.0f);

// C[n×m] = alpha * Aᵀ[n×k] · B[k×m] + beta * C, where A is stored as [k×n].
void GemmTransA(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha = 1.0f, float beta = 0.0f);

// C[n×m] = alpha * A[n×k] · Bᵀ[k×m] + beta * C, where B is stored as [m×k].
void GemmTransB(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha = 1.0f, float beta = 0.0f);

// Tensor conveniences (shapes checked). Result is freshly allocated.
[[nodiscard]] Tensor MatMul(const Tensor& a, const Tensor& b);      // A·B
[[nodiscard]] Tensor MatMulTA(const Tensor& a, const Tensor& b);    // Aᵀ·B
[[nodiscard]] Tensor MatMulTB(const Tensor& a, const Tensor& b);    // A·Bᵀ

// out[r×c] = inᵀ where in is [c×r].
[[nodiscard]] Tensor Transpose(const Tensor& in);

// y[n] = A[n×m]·x[m]  (row-major).
void Gemv(std::span<const float> a, std::span<const float> x,
          std::span<float> y, int64_t n, int64_t m);

// y += alpha * x (sizes must match).
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

// x *= alpha.
void Scal(float alpha, std::span<float> x);

// ---------------------------------------------------------------------------
// Naive references: single-threaded definitional loop nests (one output
// element at a time, pinned to scalar code — see the .cc) implementing the
// exact accumulation policy above. The production kernels must match them
// bitwise (enforced by tests/kernel_parity_test at thread counts 1/2/4/8);
// the bench harness reports production/naive speedups against them.
// ---------------------------------------------------------------------------
void GemmNaive(std::span<const float> a, std::span<const float> b,
               std::span<float> c, int64_t n, int64_t k, int64_t m,
               float alpha = 1.0f, float beta = 0.0f);
void GemmTransANaive(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, int64_t n, int64_t k, int64_t m,
                     float alpha = 1.0f, float beta = 0.0f);
void GemmTransBNaive(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, int64_t n, int64_t k, int64_t m,
                     float alpha = 1.0f, float beta = 0.0f);
[[nodiscard]] Tensor TransposeNaive(const Tensor& in);
void GemvNaive(std::span<const float> a, std::span<const float> x,
               std::span<float> y, int64_t n, int64_t m);
void AxpyNaive(float alpha, std::span<const float> x, std::span<float> y);

}  // namespace acps
