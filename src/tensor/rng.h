// Deterministic, splittable random number generation.
//
// All stochastic behaviour in the library (low-rank initialization, synthetic
// datasets, randomized compressors) flows through Rng so experiments are
// reproducible bit-for-bit across runs and worker counts. The generator is
// xoshiro256** seeded via SplitMix64 — fast, high quality, and trivially
// seedable per (experiment, worker, tensor) without correlation.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace acps {

class Rng {
 public:
  // An unseeded generator: every draw (and split()) fails with ACPS_CHECK
  // until seed() is called. Reproducibility depends on every stream having a
  // deliberately chosen seed, so "forgot to seed" is an error, not a silent
  // fallback to some default stream shared by unrelated call sites.
  Rng() = default;

  explicit Rng(uint64_t seed);

  // (Re-)seeds the generator; after this, draws are allowed.
  void seed(uint64_t seed);

  [[nodiscard]] bool seeded() const noexcept { return seeded_; }

  // Derives an independent stream; used to give each worker/tensor its own
  // generator from one experiment seed.
  [[nodiscard]] Rng split(uint64_t stream_id) const;

  // Uniform bits / integers / reals.
  uint64_t next_u64();
  // Uniform in [0, n). n must be > 0.
  uint64_t next_below(uint64_t n);
  // Uniform in [0, 1).
  double next_double();
  float uniform(float lo, float hi);

  // Standard normal via Box–Muller (cached second value).
  float normal();
  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  // Tensor fillers.
  void fill_normal(Tensor& t, float mean = 0.0f, float stddev = 1.0f);
  void fill_uniform(Tensor& t, float lo, float hi);

 private:
  uint64_t s_[4] = {0, 0, 0, 0};
  bool seeded_ = false;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace acps
