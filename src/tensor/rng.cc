#include "tensor/rng.h"

#include <cmath>
#include <numbers>

namespace acps {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) { this->seed(seed); }

void Rng::seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  seeded_ = true;
  has_cached_normal_ = false;
}

Rng Rng::split(uint64_t stream_id) const {
  ACPS_CHECK_MSG(seeded_, "Rng::split on an unseeded generator — every "
                          "stream must derive from an explicit seed");
  // Mix the current state with the stream id through SplitMix64 to derive an
  // uncorrelated child stream.
  uint64_t x = s_[0] ^ Rotl(s_[2], 17) ^ (stream_id * 0xD1B54A32D192ED03ull);
  Rng child(0);
  for (auto& s : child.s_) s = SplitMix64(x);
  return child;
}

uint64_t Rng::next_u64() {
  ACPS_CHECK_MSG(seeded_, "Rng draw on an unseeded generator — seed it "
                          "explicitly (reproducibility contract)");
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t n) {
  ACPS_CHECK_MSG(n > 0, "next_below(0)");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + (hi - lo) * static_cast<float>(next_double());
}

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; guard u1 away from zero.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = static_cast<float>(radius * std::sin(theta));
  has_cached_normal_ = true;
  return static_cast<float>(radius * std::cos(theta));
}

void Rng::fill_normal(Tensor& t, float mean, float stddev) {
  for (float& v : t.data()) v = normal(mean, stddev);
}

void Rng::fill_uniform(Tensor& t, float lo, float hi) {
  for (float& v : t.data()) v = uniform(lo, hi);
}

}  // namespace acps
