// Dense row-major float tensor used throughout the library.
//
// Design notes (see DESIGN.md §3):
//  * Owning, shape-checked, value-semantic. Copies are explicit via clone()
//    to avoid accidental O(N) copies in hot paths; moves are cheap.
//  * Gradient-compression code views tensors as 2-D matrices; `Tensor`
//    supports reshape without copying (row-major invariant).
//  * Element type is float (fp32), matching the paper's gradients.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace acps {

// Shape of a tensor; empty shape denotes a scalar with one element.
using Shape = std::vector<int64_t>;

// Returns the number of elements implied by a shape (product of dims).
[[nodiscard]] int64_t NumElements(const Shape& shape);

// Human-readable "[a, b, c]" rendering of a shape.
[[nodiscard]] std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // An empty (0-element, shapeless) tensor.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor of the given shape adopting `values` (size must match).
  Tensor(Shape shape, std::vector<float> values);

  Tensor(const Tensor&) = delete;             // use clone(): copies are O(N)
  Tensor& operator=(const Tensor&) = delete;  // and should be explicit
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  // Deep copy.
  [[nodiscard]] Tensor clone() const;

  // Factory helpers.
  [[nodiscard]] static Tensor Zeros(Shape shape);
  [[nodiscard]] static Tensor Full(Shape shape, float value);
  [[nodiscard]] static Tensor FromSpan(Shape shape, std::span<const float> v);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] int64_t numel() const noexcept {
    return static_cast<int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  // Dimension accessors; `dim(i)` checks bounds.
  [[nodiscard]] int64_t ndim() const noexcept {
    return static_cast<int64_t>(shape_.size());
  }
  [[nodiscard]] int64_t dim(int64_t i) const;

  // Rows/cols of a 2-D tensor (checked).
  [[nodiscard]] int64_t rows() const;
  [[nodiscard]] int64_t cols() const;

  // Raw element access.
  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  // 1-D indexed access (checked).
  [[nodiscard]] float& at(int64_t i);
  [[nodiscard]] float at(int64_t i) const;

  // 2-D indexed access for matrices (checked).
  [[nodiscard]] float& at(int64_t r, int64_t c);
  [[nodiscard]] float at(int64_t r, int64_t c) const;

  // Reinterprets the tensor with a new shape of equal element count.
  // No data movement (row-major).
  void reshape(Shape new_shape);
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  // In-place arithmetic (shapes must match for tensor operands).
  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }
  void add_(const Tensor& other);                  // this += other
  void sub_(const Tensor& other);                  // this -= other
  void axpy_(float alpha, const Tensor& other);    // this += alpha * other
  void scale_(float alpha) noexcept;               // this *= alpha
  void copy_from(const Tensor& other);             // this = other (same numel)

  // Reductions.
  [[nodiscard]] float sum() const noexcept;
  [[nodiscard]] float dot(const Tensor& other) const;
  [[nodiscard]] float norm2() const noexcept;      // Frobenius / L2 norm
  [[nodiscard]] float abs_max() const noexcept;

  // True iff shapes are identical and all elements differ by <= tol.
  [[nodiscard]] bool all_close(const Tensor& other, float tol = 1e-5f) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace acps
