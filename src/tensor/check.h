// Lightweight runtime-check macros shared across the acps libraries.
//
// We prefer throwing over aborting: every precondition violation is reported
// as acps::Error with a formatted message, so tests can assert on failures
// and long-running harnesses fail loudly instead of corrupting state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace acps {

// Error thrown on any violated precondition/invariant inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::ostringstream oss;
  oss << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace detail
}  // namespace acps

// ACPS_CHECK(cond) / ACPS_CHECK_MSG(cond, streamed-message)
#define ACPS_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) ::acps::detail::fail(__FILE__, __LINE__, #cond, ""); \
  } while (0)

#define ACPS_CHECK_MSG(cond, msg)                            \
  do {                                                       \
    if (!(cond)) {                                           \
      std::ostringstream oss_;                               \
      oss_ << msg;                                           \
      ::acps::detail::fail(__FILE__, __LINE__, #cond, oss_.str()); \
    }                                                        \
  } while (0)

// Unconditional failure for unreachable terminators (exhausted switches,
// unknown-enum tails). Unlike ACPS_CHECK_MSG(false, ...), the [[noreturn]]
// call is not hidden behind a branch, so -Wreturn-type stays satisfied in
// unoptimized (-O0 / coverage) builds too.
#define ACPS_FAIL_MSG(msg)                                          \
  do {                                                              \
    std::ostringstream oss_;                                        \
    oss_ << msg;                                                    \
    ::acps::detail::fail(__FILE__, __LINE__, "unreachable", oss_.str()); \
  } while (0)
