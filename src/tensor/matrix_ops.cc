#include "tensor/matrix_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "par/kernel_stats.h"
#include "par/parallel.h"

namespace acps {
namespace {

std::atomic<GemmPackMode> g_pack_mode{GemmPackMode::kAuto};

// Micro-tile shape for the register-blocked GEMM family: kMr C rows × kNj C
// columns of fp32 accumulators live in registers across the whole k loop, so
// C is touched once per tile instead of once per k step. Measured on
// AVX2/GCC-12 at the paper's Power-SGD shape (4096×4096×32): 6×32 is the
// fastest sweep point (52 GFLOP/s vs 47 for 8×32 and 46 for 4×32). kNj = 32
// is load-bearing — GCC vectorizes the 32-wide jj loop into clean 4-ymm FMA
// blocks, while 16- or 8-wide tiles fall out of the vectorizer's profitable
// range and collapse ~20× (2–4 GFLOP/s). Don't shrink kNj without re-running
// bench/bench_kernels.
constexpr int64_t kMr = 6;
constexpr int64_t kNj = 32;

void CheckGemmSizes(size_t a, size_t b, size_t c, int64_t n, int64_t k,
                    int64_t m) {
  ACPS_CHECK_MSG(n >= 0 && k >= 0 && m >= 0, "negative gemm dims");
  ACPS_CHECK_MSG(static_cast<int64_t>(a) == n * k, "A size mismatch");
  ACPS_CHECK_MSG(static_cast<int64_t>(b) == k * m, "B size mismatch");
  ACPS_CHECK_MSG(static_cast<int64_t>(c) == n * m, "C size mismatch");
}

// Row grain: ~kDefaultGrain multiply-adds per block, but never splitting a
// micro-tile. Depends only on the problem shape, not the thread count.
int64_t GemmRowGrain(int64_t k, int64_t m) {
  const int64_t per_row = std::max<int64_t>(1, k * m);
  return std::max<int64_t>(kMr, 8 * par::kDefaultGrain / per_row);
}

uint64_t GemmFlops(int64_t n, int64_t k, int64_t m) {
  return 2ull * static_cast<uint64_t>(n) * static_cast<uint64_t>(k) *
         static_cast<uint64_t>(m);
}

// Logical operand/result traffic of one GEMM call for the kernel-stats
// table: A + B read once, C written once, and read once more when beta != 0.
uint64_t GemmBytes(int64_t n, int64_t k, int64_t m, float beta) {
  const uint64_t a = static_cast<uint64_t>(n) * static_cast<uint64_t>(k);
  const uint64_t b = static_cast<uint64_t>(k) * static_cast<uint64_t>(m);
  const uint64_t cc = static_cast<uint64_t>(n) * static_cast<uint64_t>(m);
  return (a + b + cc * (beta == 0.0f ? 1 : 2)) * sizeof(float);
}

// Below this many flops a GEMM runs inline on the calling thread: the
// pool's dispatch + join costs more than the math at the Power-SGD r=1/2
// factor shapes (2·1024·1024·r < 2^23 for r <= 3). Partitioning never
// changes an accumulation chain, so serial-vs-pool is bitwise neutral.
constexpr uint64_t kSerialInlineFlops = 1ull << 23;

// FMA-contraction barrier for the beta != 0 writeback. Under the default
// -ffp-contract=fast, textually identical `alpha_term + beta * c` expressions
// may compile to different mul/fma splits in different functions (observed:
// GemmTransBRows vs GemmTransBNaive diverging in the last bit for
// non-power-of-two alpha). Production and naive writebacks both call this
// exact non-inlined function, so the compiler makes the choice once.
[[gnu::noinline]] float BetaBlend(float alpha_term, float beta, float c_old) {
  return alpha_term + beta * c_old;
}

// Saxpy-form rows [i0, i1) of C = alpha·op(A)·B + beta·C. TransA selects the
// element layout of A ([k×n] instead of [n×k]); the accumulation chain —
// fp32 accumulator from 0, each contribution folded in with an explicit
// std::fmaf (single rounding — never left to -ffp-contract's discretion),
// ascending k, beta applied at writeback — is identical either way and
// identical to the naive references.
template <bool TransA>
void GemmRows(const float* a, const float* b, float* c, int64_t i0_begin,
              int64_t i0_end, int64_t n, int64_t k, int64_t m, float alpha,
              float beta) {
  for (int64_t i0 = i0_begin; i0 < i0_end; i0 += kMr) {
    const int64_t ib = std::min<int64_t>(kMr, i0_end - i0);
    for (int64_t j0 = 0; j0 < m; j0 += kNj) {
      const int64_t jb = std::min<int64_t>(kNj, m - j0);
      if (ib == kMr && jb == kNj) {
        // Full tile: all kMr×kNj accumulators stay in registers.
        float acc[kMr][kNj] = {};
        const float* __restrict__ arow[kMr] = {};
        if constexpr (!TransA) {
          for (int64_t r = 0; r < kMr; ++r) arow[r] = a + (i0 + r) * k;
        }
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* __restrict__ bk = b + kk * m + j0;
          float av[kMr];
          if constexpr (TransA) {
            const float* __restrict__ acol = a + kk * n + i0;
            for (int64_t r = 0; r < kMr; ++r) av[r] = acol[r];
          } else {
            for (int64_t r = 0; r < kMr; ++r) av[r] = arow[r][kk];
          }
          for (int64_t r = 0; r < kMr; ++r) {
            const float aik = alpha * av[r];
            for (int64_t jj = 0; jj < kNj; ++jj)
              acc[r][jj] = std::fmaf(aik, bk[jj], acc[r][jj]);
          }
        }
        for (int64_t r = 0; r < kMr; ++r) {
          float* __restrict__ ci = c + (i0 + r) * m + j0;
          if (beta == 0.0f) {
            for (int64_t jj = 0; jj < kNj; ++jj) ci[jj] = acc[r][jj];
          } else {
            for (int64_t jj = 0; jj < kNj; ++jj)
              ci[jj] = BetaBlend(acc[r][jj], beta, ci[jj]);
          }
        }
      } else if (jb == 1) {
        // Width-1 tile (rank-1 Power-SGD factors, odd tail columns): keep
        // the single accumulator in a register. The general edge path's
        // runtime-bound jj loop forces its accumulators onto the stack,
        // which halves rank-1 throughput.
        for (int64_t i = i0; i < i0 + ib; ++i) {
          float acc = 0.0f;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float aik = alpha * (TransA ? a[kk * n + i] : a[i * k + kk]);
            acc = std::fmaf(aik, b[kk * m + j0], acc);
          }
          float* ci = c + i * m + j0;
          ci[0] = beta == 0.0f ? acc : BetaBlend(acc, beta, ci[0]);
        }
      } else {
        // Edge tile: same per-element chain, one row at a time.
        float accv[kNj] = {};
        for (int64_t i = i0; i < i0 + ib; ++i) {
          std::fill(accv, accv + jb, 0.0f);
          for (int64_t kk = 0; kk < k; ++kk) {
            const float aik = alpha * (TransA ? a[kk * n + i] : a[i * k + kk]);
            const float* __restrict__ bk = b + kk * m + j0;
            for (int64_t jj = 0; jj < jb; ++jj)
              accv[jj] = std::fmaf(aik, bk[jj], accv[jj]);
          }
          float* __restrict__ ci = c + i * m + j0;
          if (beta == 0.0f) {
            for (int64_t jj = 0; jj < jb; ++jj) ci[jj] = accv[jj];
          } else {
            for (int64_t jj = 0; jj < jb; ++jj)
              ci[jj] = BetaBlend(accv[jj], beta, ci[jj]);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L2-blocked packed-panel layer (DESIGN.md §6e). The (m,n,k) nest is tiled
// into macro-panels sized for the 2 MiB L2; A panels are copied kMr-row
// interleaved (alpha folded in — the same single `alpha * a_ik` multiply the
// unpacked tile performs) and B panels kNj-column interleaved into
// per-thread scratch, so the micro-kernel reads both operands as contiguous
// streams and a packed B panel is reused by every row tile of the ic loop.
// Edge tiles are zero-padded to full kMr×kNj inside the pack — the padded
// lanes compute garbage accumulators that are simply never written back, so
// every real element keeps the exact fmaf chain of the unpacked path.
// k-splitting (the pc loop) spills the fp32 accumulators to a scratch C
// block between panels; a float round-trips memory exactly, so the chain
// value is untouched. Scratch is thread_local: workers never share panels.
// ---------------------------------------------------------------------------
constexpr int64_t kKc = 256;  // k macro-panel depth
constexpr int64_t kMc = 96;   // rows per A pack (16 micro row tiles)
constexpr int64_t kNc = 128;  // cols per B pack (4 micro col tiles, 128 KiB)
constexpr int64_t kRc = 768;  // row chunk bounding the accumulator scratch

// Packs rows [i0, i0+mb) of op(A)'s k-panel [pc, pc+kc) into `dst`,
// kMr-interleaved per micro row tile: dst[t*kc*kMr + kk*kMr + r] =
// alpha * op(A)[i0 + t*kMr + r][pc + kk], zero beyond mb. Pure data
// movement plus the alpha fold — no accumulation (acps-analyze
// pack-pure-move enforces this for every Pack* function).
template <bool TransA>
void PackAPanel(const float* a, int64_t n, int64_t k, int64_t i0, int64_t mb,
                int64_t pc, int64_t kc, float alpha, float* dst) {
  const int64_t mtiles = (mb + kMr - 1) / kMr;
  for (int64_t t = 0; t < mtiles; ++t) {
    float* __restrict__ tile = dst + t * kc * kMr;
    const int64_t rb = std::min<int64_t>(kMr, mb - t * kMr);
    if constexpr (TransA) {
      // A is [k×n]: walk kk outer so source reads stay row-sequential.
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* __restrict__ acol = a + (pc + kk) * n + i0 + t * kMr;
        for (int64_t r = 0; r < rb; ++r) tile[kk * kMr + r] = alpha * acol[r];
        for (int64_t r = rb; r < kMr; ++r) tile[kk * kMr + r] = 0.0f;
      }
    } else {
      // A is [n×k]: walk each source row once, scattering into the tile.
      for (int64_t r = 0; r < rb; ++r) {
        const float* __restrict__ arow = a + (i0 + t * kMr + r) * k + pc;
        for (int64_t kk = 0; kk < kc; ++kk)
          tile[kk * kMr + r] = alpha * arow[kk];
      }
      for (int64_t r = rb; r < kMr; ++r)
        for (int64_t kk = 0; kk < kc; ++kk) tile[kk * kMr + r] = 0.0f;
    }
  }
}

// Packs B's [pc, pc+kc) × [jc, jc+nb) panel kNj-interleaved per micro
// column tile: dst[t*kc*kNj + kk*kNj + jj] = B[pc+kk][jc + t*kNj + jj],
// zero beyond nb. Pure data movement.
void PackBPanel(const float* b, int64_t m, int64_t pc, int64_t kc, int64_t jc,
                int64_t nb, float* dst) {
  const int64_t ntiles = (nb + kNj - 1) / kNj;
  for (int64_t t = 0; t < ntiles; ++t) {
    float* __restrict__ tile = dst + t * kc * kNj;
    const int64_t jb = std::min<int64_t>(kNj, nb - t * kNj);
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* __restrict__ brow = b + (pc + kk) * m + jc + t * kNj;
      for (int64_t jj = 0; jj < jb; ++jj) tile[kk * kNj + jj] = brow[jj];
      for (int64_t jj = jb; jj < kNj; ++jj) tile[kk * kNj + jj] = 0.0f;
    }
  }
}

// One kMr×kNj register tile over a packed k-panel: load the running
// accumulators (or start at 0 on the first panel), fold kc contributions in
// ascending k with the same explicit std::fmaf as the unpacked tile, spill
// back. acc_io round-trips fp32 exactly, so chaining panels reproduces the
// full-k register chain bit for bit.
void PackedMicroKernel(const float* __restrict__ ap,
                       const float* __restrict__ bp, int64_t kc, bool first,
                       float* __restrict__ acc_io) {
  float acc[kMr][kNj];
  for (int64_t r = 0; r < kMr; ++r)
    for (int64_t jj = 0; jj < kNj; ++jj)
      acc[r][jj] = first ? 0.0f : acc_io[r * kNj + jj];
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* __restrict__ av = ap + kk * kMr;
    const float* __restrict__ bk = bp + kk * kNj;
    for (int64_t r = 0; r < kMr; ++r) {
      const float aik = av[r];
      for (int64_t jj = 0; jj < kNj; ++jj)
        acc[r][jj] = std::fmaf(aik, bk[jj], acc[r][jj]);
    }
  }
  for (int64_t r = 0; r < kMr; ++r)
    for (int64_t jj = 0; jj < kNj; ++jj) acc_io[r * kNj + jj] = acc[r][jj];
}

// Packed-path rows [rb_, re_) of C = alpha·op(A)·B + beta·C. Loop order
// rc → jc → pc → ic: each packed B panel is reused by every row tile of its
// rc chunk, each packed A panel by every column tile of its jc panel. beta
// is applied exactly once per element at the final writeback from the
// accumulator scratch, against the untouched original C.
template <bool TransA>
void PackedGemmRows(const float* a, const float* b, float* c, int64_t rb_,
                    int64_t re_, int64_t n, int64_t k, int64_t m, float alpha,
                    float beta, par::KernelTimer* timer) {
  thread_local std::vector<float> apack, bpack, cacc;
  uint64_t pack_bytes = 0;
  uint64_t reuses = 0;
  for (int64_t rc = rb_; rc < re_; rc += kRc) {
    const int64_t rows = std::min<int64_t>(kRc, re_ - rc);
    for (int64_t jc = 0; jc < m; jc += kNc) {
      const int64_t nb = std::min<int64_t>(kNc, m - jc);
      const int64_t ntiles = (nb + kNj - 1) / kNj;
      const int64_t mtiles_all = (rows + kMr - 1) / kMr;
      cacc.resize(static_cast<size_t>(mtiles_all * ntiles * kMr * kNj));
      if (k == 0) std::fill(cacc.begin(), cacc.end(), 0.0f);
      for (int64_t pc = 0; pc < k; pc += kKc) {
        const int64_t kc = std::min<int64_t>(kKc, k - pc);
        bpack.resize(static_cast<size_t>(ntiles * kc * kNj));
        PackBPanel(b, m, pc, kc, jc, nb, bpack.data());
        pack_bytes += static_cast<uint64_t>(ntiles * kc * kNj) * sizeof(float);
        const bool first = pc == 0;
        for (int64_t ic = rc; ic < rc + rows; ic += kMc) {
          const int64_t mb = std::min<int64_t>(kMc, rc + rows - ic);
          const int64_t mtiles = (mb + kMr - 1) / kMr;
          apack.resize(static_cast<size_t>(mtiles * kc * kMr));
          PackAPanel<TransA>(a, n, k, ic, mb, pc, kc, alpha, apack.data());
          pack_bytes +=
              static_cast<uint64_t>(mtiles * kc * kMr) * sizeof(float);
          for (int64_t t = 0; t < mtiles; ++t) {
            const int64_t it = (ic - rc) / kMr + t;
            for (int64_t jt = 0; jt < ntiles; ++jt) {
              PackedMicroKernel(
                  apack.data() + t * kc * kMr, bpack.data() + jt * kc * kNj,
                  kc, first, cacc.data() + (it * ntiles + jt) * kMr * kNj);
              ++reuses;
            }
          }
        }
      }
      for (int64_t i = rc; i < rc + rows; ++i) {
        const int64_t it = (i - rc) / kMr;
        const int64_t r = (i - rc) % kMr;
        for (int64_t jt = 0; jt < ntiles; ++jt) {
          const float* __restrict__ at =
              cacc.data() + (it * ntiles + jt) * kMr * kNj + r * kNj;
          const int64_t jb = std::min<int64_t>(kNj, nb - jt * kNj);
          float* __restrict__ cj = c + i * m + jc + jt * kNj;
          if (beta == 0.0f) {
            for (int64_t jj = 0; jj < jb; ++jj) cj[jj] = at[jj];
          } else {
            for (int64_t jj = 0; jj < jb; ++jj)
              cj[jj] = BetaBlend(at[jj], beta, cj[jj]);
          }
        }
      }
    }
  }
  if (timer != nullptr) timer->AddPanel(pack_bytes, reuses);
}

// Packed-path routing. kAuto takes the packed saxpy path only where the
// panel reuse pays for the copies: enough columns for an A panel to serve
// several column tiles, a deep enough k for the pc loop to matter, and a B
// footprint that is actually straining L2. The acceptance dense shape
// (4096×4096×32, B = 512 KiB, m = kNj) stays on the direct path, which
// already runs at ~28× naive out of L2.
bool UsePackedSaxpy(int64_t n, int64_t k, int64_t m) {
  switch (g_pack_mode.load(std::memory_order_relaxed)) {
    case GemmPackMode::kAlways:
      return true;
    case GemmPackMode::kNever:
      return false;
    case GemmPackMode::kAuto:
      break;
  }
  return m >= 2 * kNj && k >= 128 && n >= kMr &&
         static_cast<uint64_t>(k) * static_cast<uint64_t>(m) * sizeof(float) >=
             (1u << 20);
}

template <bool TransA>
void GemmImpl(std::span<const float> a, std::span<const float> b,
              std::span<float> c, int64_t n, int64_t k, int64_t m, float alpha,
              float beta, const char* stat_name) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  if (n == 0 || m == 0) return;
  const uint64_t flops = GemmFlops(n, k, m);
  par::KernelTimer timer(stat_name, flops, GemmBytes(n, k, m, beta));
  const bool packed = UsePackedSaxpy(n, k, m);
  if (flops < kSerialInlineFlops) {
    if (packed) {
      PackedGemmRows<TransA>(a.data(), b.data(), c.data(), 0, n, n, k, m,
                             alpha, beta, &timer);
    } else {
      GemmRows<TransA>(a.data(), b.data(), c.data(), 0, n, n, k, m, alpha,
                       beta);
    }
    return;
  }
  par::ParallelForBlocks(
      GemmRowGrain(k, m), n, /*align=*/kMr,
      [&](int64_t, int64_t begin, int64_t end) {
        if (packed) {
          PackedGemmRows<TransA>(a.data(), b.data(), c.data(), begin, end, n,
                                 k, m, alpha, beta, &timer);
        } else {
          GemmRows<TransA>(a.data(), b.data(), c.data(), begin, end, n, k, m,
                           alpha, beta);
        }
      });
}

// Fixed 8-lane interleaved fp32 dot product (lane l takes k ≡ l mod 8),
// lanes combined in a fixed pairwise tree. The interleaving is part of the
// accumulation policy: production and naive code both use it, so results
// match bitwise and are independent of any row partition.
float Dot8(const float* __restrict__ x, const float* __restrict__ y,
           int64_t k) {
  float lane[8] = {};
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    for (int64_t l = 0; l < 8; ++l) lane[l] += x[kk + l] * y[kk + l];
  }
  for (; kk < k; ++kk) lane[kk % 8] += x[kk] * y[kk];
  const float s0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  const float s1 = (lane[4] + lane[5]) + (lane[6] + lane[7]);
  return s0 + s1;
}

void GemmTransBRows(const float* a, const float* b, float* c, int64_t i_begin,
                    int64_t i_end, int64_t j_begin, int64_t j_end, int64_t k,
                    int64_t m, float alpha, float beta) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * m;
    for (int64_t j = j_begin; j < j_end; ++j) {
      const float dot = Dot8(ai, b + j * k, k);
      if (beta == 0.0f) {
        ci[j] = alpha * dot;
      } else {
        ci[j] = BetaBlend(alpha * dot, beta, ci[j]);
      }
    }
  }
}

// Columns per packed GemmTransB j-panel. Dot8's single 8-lane accumulator
// is a serial fma dependency chain, so one dot at a time runs at fma
// *latency*, not throughput; interleaving kTbJb independent output columns
// gives the core kTbJb chains to overlap. Each column's own lane array
// still receives the exact Dot8 update sequence (ascending 8-blocks, then
// the k%8 tail, then the fixed pairwise tree), so outputs stay bitwise
// identical to the unpacked path.
constexpr int64_t kTbJb = 8;

// Packs kTbJb rows of B (the j-panel's dot operands) 8-block-interleaved:
// dst[(kb/8)*kTbJb*8 + jj*8 + l] = B[j0+jj][kb+l] for the vectorizable
// prefix k8 = k - k%8. Pure data movement.
void PackTransBPanel(const float* b, int64_t k, int64_t j0, int64_t k8,
                     float* dst) {
  for (int64_t jj = 0; jj < kTbJb; ++jj) {
    const float* __restrict__ bj = b + (j0 + jj) * k;
    for (int64_t kb = 0; kb < k8; kb += 8) {
      float* __restrict__ blk = dst + kb * kTbJb + jj * 8;
      for (int64_t l = 0; l < 8; ++l) blk[l] = bj[kb + l];
    }
  }
}

// Packed-path rows [i_begin, i_end) of C = alpha·A·Bᵀ + beta·C: j-panels
// are packed in groups sized to stay L2-resident (~1 MiB), then every A row
// sweeps the whole group — A streams through once per group, the packed
// panels replay from L2, and each panel is processed with kTbJb interleaved
// lane arrays. The k%8 tail and any m%kTbJb remainder columns take the
// plain Dot8 path.
void GemmTransBPackedRows(const float* a, const float* b, float* c,
                          int64_t i_begin, int64_t i_end, int64_t k, int64_t m,
                          float alpha, float beta, par::KernelTimer* timer) {
  const int64_t k8 = k - k % 8;
  const int64_t jp_end = m - m % kTbJb;
  const int64_t panel_floats = kTbJb * k8;
  const int64_t group_panels = std::max<int64_t>(
      1, (1 << 20) / std::max<int64_t>(1, panel_floats *
                                              static_cast<int64_t>(
                                                  sizeof(float))));
  thread_local std::vector<float> pack;
  uint64_t pack_bytes = 0;
  uint64_t reuses = 0;
  for (int64_t g0 = 0; g0 < jp_end; g0 += group_panels * kTbJb) {
    const int64_t gend = std::min<int64_t>(jp_end, g0 + group_panels * kTbJb);
    const int64_t npanels = (gend - g0) / kTbJb;
    pack.resize(static_cast<size_t>(npanels * panel_floats));
    for (int64_t p = 0; p < npanels; ++p)
      PackTransBPanel(b, k, g0 + p * kTbJb, k8,
                      pack.data() + p * panel_floats);
    pack_bytes += static_cast<uint64_t>(npanels * panel_floats) * sizeof(float);
    for (int64_t i = i_begin; i < i_end; ++i) {
      const float* __restrict__ ai = a + i * k;
      float* ci = c + i * m;
      for (int64_t p = 0; p < npanels; ++p) {
        const int64_t j0 = g0 + p * kTbJb;
        const float* __restrict__ panel = pack.data() + p * panel_floats;
        float lane[kTbJb][8] = {};
        for (int64_t kb = 0; kb < k8; kb += 8) {
          const float* __restrict__ xv = ai + kb;
          const float* __restrict__ pv = panel + kb * kTbJb;
          for (int64_t jj = 0; jj < kTbJb; ++jj)
            for (int64_t l = 0; l < 8; ++l)
              lane[jj][l] += xv[l] * pv[jj * 8 + l];
        }
        for (int64_t kk = k8; kk < k; ++kk) {
          const float av = ai[kk];
          for (int64_t jj = 0; jj < kTbJb; ++jj)
            lane[jj][kk % 8] += av * b[(j0 + jj) * k + kk];
        }
        for (int64_t jj = 0; jj < kTbJb; ++jj) {
          const float s0 =
              (lane[jj][0] + lane[jj][1]) + (lane[jj][2] + lane[jj][3]);
          const float s1 =
              (lane[jj][4] + lane[jj][5]) + (lane[jj][6] + lane[jj][7]);
          const float dot = s0 + s1;
          if (beta == 0.0f) {
            ci[j0 + jj] = alpha * dot;
          } else {
            ci[j0 + jj] = BetaBlend(alpha * dot, beta, ci[j0 + jj]);
          }
        }
      }
      reuses += static_cast<uint64_t>(npanels);
    }
  }
  if (jp_end < m) {
    GemmTransBRows(a, b, c, i_begin, i_end, jp_end, m, k, m, alpha, beta);
  }
  if (timer != nullptr) timer->AddPanel(pack_bytes, reuses);
}

// kAuto takes the packed TransB path when k is deep enough for the
// interleaved 8-blocks to dominate the tail and there are enough rows to
// amortize the panel copy.
bool UsePackedTransB(int64_t n, int64_t k, int64_t m) {
  switch (g_pack_mode.load(std::memory_order_relaxed)) {
    case GemmPackMode::kAlways:
      return true;
    case GemmPackMode::kNever:
      return false;
    case GemmPackMode::kAuto:
      break;
  }
  return k >= 64 && n >= 8 && m >= kTbJb;
}

}  // namespace

void SetGemmPackMode(GemmPackMode mode) {
  g_pack_mode.store(mode, std::memory_order_relaxed);
}

GemmPackMode GetGemmPackMode() {
  return g_pack_mode.load(std::memory_order_relaxed);
}

void Gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, int64_t n, int64_t k, int64_t m, float alpha,
          float beta) {
  GemmImpl<false>(a, b, c, n, k, m, alpha, beta, "gemm");
}

void GemmTransA(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha, float beta) {
  GemmImpl<true>(a, b, c, n, k, m, alpha, beta, "gemm_ta");
}

void GemmTransB(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  if (n == 0 || m == 0) return;
  const uint64_t flops = GemmFlops(n, k, m);
  par::KernelTimer timer("gemm_tb", flops, GemmBytes(n, k, m, beta));
  const bool packed = UsePackedTransB(n, k, m);
  if (flops < kSerialInlineFlops) {
    if (packed) {
      GemmTransBPackedRows(a.data(), b.data(), c.data(), 0, n, k, m, alpha,
                           beta, &timer);
    } else {
      GemmTransBRows(a.data(), b.data(), c.data(), 0, n, 0, m, k, m, alpha,
                     beta);
    }
    return;
  }
  par::ParallelFor(GemmRowGrain(k, m), n, [&](int64_t begin, int64_t end) {
    if (packed) {
      GemmTransBPackedRows(a.data(), b.data(), c.data(), begin, end, k, m,
                           alpha, beta, &timer);
    } else {
      GemmTransBRows(a.data(), b.data(), c.data(), begin, end, 0, m, k, m,
                     alpha, beta);
    }
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.cols() == b.rows(),
                 "MatMul shape mismatch: " << ShapeToString(a.shape()) << " x "
                                           << ShapeToString(b.shape()));
  Tensor c({a.rows(), b.cols()});
  Gemm(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  return c;
}

Tensor MatMulTA(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.rows() == b.rows(),
                 "MatMulTA shape mismatch: " << ShapeToString(a.shape())
                                             << "ᵀ x "
                                             << ShapeToString(b.shape()));
  Tensor c({a.cols(), b.cols()});
  GemmTransA(a.data(), b.data(), c.data(), a.cols(), a.rows(), b.cols());
  return c;
}

Tensor MatMulTB(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.cols() == b.cols(),
                 "MatMulTB shape mismatch: " << ShapeToString(a.shape())
                                             << " x "
                                             << ShapeToString(b.shape())
                                             << "ᵀ");
  Tensor c({a.rows(), b.rows()});
  GemmTransB(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.rows());
  return c;
}

Tensor Transpose(const Tensor& in) {
  ACPS_CHECK_MSG(in.ndim() == 2, "Transpose needs a matrix");
  const int64_t r = in.rows(), c = in.cols();
  Tensor out({c, r});
  par::KernelTimer timer("transpose", 0,
                         2ull * static_cast<uint64_t>(r) *
                             static_cast<uint64_t>(c) * sizeof(float));
  // 64×64 blocks: both the input rows and the output rows of a block stay
  // cache-resident. Pure data movement — any partition is exact.
  constexpr int64_t kBlk = 64;
  const float* src = in.data().data();
  float* dst = out.data().data();
  const int64_t row_grain = std::max<int64_t>(
      kBlk, par::kDefaultGrain / std::max<int64_t>(1, c));
  par::ParallelFor(row_grain, r, [&](int64_t begin, int64_t end) {
    for (int64_t ib = begin; ib < end; ib += kBlk) {
      const int64_t ie = std::min(ib + kBlk, end);
      for (int64_t jb = 0; jb < c; jb += kBlk) {
        const int64_t je = std::min(jb + kBlk, c);
        for (int64_t i = ib; i < ie; ++i)
          for (int64_t j = jb; j < je; ++j) dst[j * r + i] = src[i * c + j];
      }
    }
  });
  return out;
}

void Gemv(std::span<const float> a, std::span<const float> x,
          std::span<float> y, int64_t n, int64_t m) {
  ACPS_CHECK_MSG(static_cast<int64_t>(a.size()) == n * m &&
                     static_cast<int64_t>(x.size()) == m &&
                     static_cast<int64_t>(y.size()) == n,
                 "Gemv size mismatch");
  par::KernelTimer timer("gemv",
                         2ull * static_cast<uint64_t>(n) *
                             static_cast<uint64_t>(m),
                         static_cast<uint64_t>(n * m + m + n) * sizeof(float));
  const int64_t grain =
      std::max<int64_t>(1, par::kDefaultGrain / std::max<int64_t>(1, m));
  par::ParallelFor(grain, n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i)
      y[i] = Dot8(a.data() + i * m, x.data(), m);
  });
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  ACPS_CHECK_MSG(x.size() == y.size(), "Axpy size mismatch");
  const int64_t n = static_cast<int64_t>(x.size());
  par::KernelTimer timer("axpy", 2ull * static_cast<uint64_t>(n),
                         3ull * static_cast<uint64_t>(n) * sizeof(float));
  par::ParallelFor(par::kDefaultGrain, n, [&](int64_t begin, int64_t end) {
    const float* __restrict__ xs = x.data();
    float* __restrict__ ys = y.data();
    for (int64_t i = begin; i < end; ++i) ys[i] += alpha * xs[i];
  });
}

void Scal(float alpha, std::span<float> x) {
  const int64_t n = static_cast<int64_t>(x.size());
  par::KernelTimer timer("scal", static_cast<uint64_t>(n),
                         2ull * static_cast<uint64_t>(n) * sizeof(float));
  par::ParallelFor(par::kDefaultGrain, n, [&](int64_t begin, int64_t end) {
    float* __restrict__ xs = x.data();
    for (int64_t i = begin; i < end; ++i) xs[i] *= alpha;
  });
}

// ---------------------------------------------------------------------------
// Naive references. The definitional loop nest — one output element at a
// time, its accumulator walked in ascending k with the same explicit
// std::fmaf as production — single-threaded, no blocking or reuse. The
// saxpy-form pair is additionally pinned to scalar code
// (`no-tree-vectorize`): GCC's -O3 loop interchange otherwise rewrites the
// nest into a blocked vector kernel, which both defeats the point of a
// reference baseline and (observed) splits the fma into a separate
// mul + add, breaking bitwise parity with production.
// ---------------------------------------------------------------------------

__attribute__((optimize("no-tree-vectorize"))) void GemmNaive(
    std::span<const float> a, std::span<const float> b, std::span<float> c,
    int64_t n, int64_t k, int64_t m, float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = alpha * ai[kk];
        acc = std::fmaf(aik, b[kk * m + j], acc);
      }
      ci[j] = beta == 0.0f ? acc : BetaBlend(acc, beta, ci[j]);
    }
  }
}

__attribute__((optimize("no-tree-vectorize"))) void GemmTransANaive(
    std::span<const float> a, std::span<const float> b, std::span<float> c,
    int64_t n, int64_t k, int64_t m, float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    float* ci = c.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = alpha * a[kk * n + i];
        acc = std::fmaf(aik, b[kk * m + j], acc);
      }
      ci[j] = beta == 0.0f ? acc : BetaBlend(acc, beta, ci[j]);
    }
  }
}

void GemmTransBNaive(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, int64_t n, int64_t k, int64_t m,
                     float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* bj = b.data() + j * k;
      float lane[8] = {};
      for (int64_t kk = 0; kk < k; ++kk) lane[kk % 8] += ai[kk] * bj[kk];
      const float s0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
      const float s1 = (lane[4] + lane[5]) + (lane[6] + lane[7]);
      const float dot = s0 + s1;
      if (beta == 0.0f) {
        ci[j] = alpha * dot;
      } else {
        ci[j] = BetaBlend(alpha * dot, beta, ci[j]);
      }
    }
  }
}

Tensor TransposeNaive(const Tensor& in) {
  ACPS_CHECK_MSG(in.ndim() == 2, "Transpose needs a matrix");
  const int64_t r = in.rows(), c = in.cols();
  Tensor out({c, r});
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < c; ++j) out.at(j, i) = in.at(i, j);
  return out;
}

void GemvNaive(std::span<const float> a, std::span<const float> x,
               std::span<float> y, int64_t n, int64_t m) {
  ACPS_CHECK_MSG(static_cast<int64_t>(a.size()) == n * m &&
                     static_cast<int64_t>(x.size()) == m &&
                     static_cast<int64_t>(y.size()) == n,
                 "Gemv size mismatch");
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = a.data() + i * m;
    float lane[8] = {};
    for (int64_t j = 0; j < m; ++j) lane[j % 8] += ai[j] * x[j];
    const float s0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    const float s1 = (lane[4] + lane[5]) + (lane[6] + lane[7]);
    y[i] = s0 + s1;
  }
}

void AxpyNaive(float alpha, std::span<const float> x, std::span<float> y) {
  ACPS_CHECK_MSG(x.size() == y.size(), "Axpy size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace acps
