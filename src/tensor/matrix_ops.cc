#include "tensor/matrix_ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "par/kernel_stats.h"
#include "par/parallel.h"

namespace acps {
namespace {

// Micro-tile shape for the register-blocked GEMM family: kMr C rows × kNj C
// columns of fp32 accumulators live in registers across the whole k loop, so
// C is touched once per tile instead of once per k step. Measured on
// AVX2/GCC-12 at the paper's Power-SGD shape (4096×4096×32): 6×32 is the
// fastest sweep point (52 GFLOP/s vs 47 for 8×32 and 46 for 4×32). kNj = 32
// is load-bearing — GCC vectorizes the 32-wide jj loop into clean 4-ymm FMA
// blocks, while 16- or 8-wide tiles fall out of the vectorizer's profitable
// range and collapse ~20× (2–4 GFLOP/s). Don't shrink kNj without re-running
// bench/bench_kernels.
constexpr int64_t kMr = 6;
constexpr int64_t kNj = 32;

void CheckGemmSizes(size_t a, size_t b, size_t c, int64_t n, int64_t k,
                    int64_t m) {
  ACPS_CHECK_MSG(n >= 0 && k >= 0 && m >= 0, "negative gemm dims");
  ACPS_CHECK_MSG(static_cast<int64_t>(a) == n * k, "A size mismatch");
  ACPS_CHECK_MSG(static_cast<int64_t>(b) == k * m, "B size mismatch");
  ACPS_CHECK_MSG(static_cast<int64_t>(c) == n * m, "C size mismatch");
}

// Row grain: ~kDefaultGrain multiply-adds per block, but never splitting a
// micro-tile. Depends only on the problem shape, not the thread count.
int64_t GemmRowGrain(int64_t k, int64_t m) {
  const int64_t per_row = std::max<int64_t>(1, k * m);
  return std::max<int64_t>(kMr, 8 * par::kDefaultGrain / per_row);
}

uint64_t GemmFlops(int64_t n, int64_t k, int64_t m) {
  return 2ull * static_cast<uint64_t>(n) * static_cast<uint64_t>(k) *
         static_cast<uint64_t>(m);
}

// FMA-contraction barrier for the beta != 0 writeback. Under the default
// -ffp-contract=fast, textually identical `alpha_term + beta * c` expressions
// may compile to different mul/fma splits in different functions (observed:
// GemmTransBRows vs GemmTransBNaive diverging in the last bit for
// non-power-of-two alpha). Production and naive writebacks both call this
// exact non-inlined function, so the compiler makes the choice once.
[[gnu::noinline]] float BetaBlend(float alpha_term, float beta, float c_old) {
  return alpha_term + beta * c_old;
}

// Saxpy-form rows [i0, i1) of C = alpha·op(A)·B + beta·C. TransA selects the
// element layout of A ([k×n] instead of [n×k]); the accumulation chain —
// fp32 accumulator from 0, each contribution folded in with an explicit
// std::fmaf (single rounding — never left to -ffp-contract's discretion),
// ascending k, beta applied at writeback — is identical either way and
// identical to the naive references.
template <bool TransA>
void GemmRows(const float* a, const float* b, float* c, int64_t i0_begin,
              int64_t i0_end, int64_t n, int64_t k, int64_t m, float alpha,
              float beta) {
  for (int64_t i0 = i0_begin; i0 < i0_end; i0 += kMr) {
    const int64_t ib = std::min<int64_t>(kMr, i0_end - i0);
    for (int64_t j0 = 0; j0 < m; j0 += kNj) {
      const int64_t jb = std::min<int64_t>(kNj, m - j0);
      if (ib == kMr && jb == kNj) {
        // Full tile: all kMr×kNj accumulators stay in registers.
        float acc[kMr][kNj] = {};
        const float* __restrict__ arow[kMr] = {};
        if constexpr (!TransA) {
          for (int64_t r = 0; r < kMr; ++r) arow[r] = a + (i0 + r) * k;
        }
        for (int64_t kk = 0; kk < k; ++kk) {
          const float* __restrict__ bk = b + kk * m + j0;
          float av[kMr];
          if constexpr (TransA) {
            const float* __restrict__ acol = a + kk * n + i0;
            for (int64_t r = 0; r < kMr; ++r) av[r] = acol[r];
          } else {
            for (int64_t r = 0; r < kMr; ++r) av[r] = arow[r][kk];
          }
          for (int64_t r = 0; r < kMr; ++r) {
            const float aik = alpha * av[r];
            for (int64_t jj = 0; jj < kNj; ++jj)
              acc[r][jj] = std::fmaf(aik, bk[jj], acc[r][jj]);
          }
        }
        for (int64_t r = 0; r < kMr; ++r) {
          float* __restrict__ ci = c + (i0 + r) * m + j0;
          if (beta == 0.0f) {
            for (int64_t jj = 0; jj < kNj; ++jj) ci[jj] = acc[r][jj];
          } else {
            for (int64_t jj = 0; jj < kNj; ++jj)
              ci[jj] = BetaBlend(acc[r][jj], beta, ci[jj]);
          }
        }
      } else if (jb == 1) {
        // Width-1 tile (rank-1 Power-SGD factors, odd tail columns): keep
        // the single accumulator in a register. The general edge path's
        // runtime-bound jj loop forces its accumulators onto the stack,
        // which halves rank-1 throughput.
        for (int64_t i = i0; i < i0 + ib; ++i) {
          float acc = 0.0f;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float aik = alpha * (TransA ? a[kk * n + i] : a[i * k + kk]);
            acc = std::fmaf(aik, b[kk * m + j0], acc);
          }
          float* ci = c + i * m + j0;
          ci[0] = beta == 0.0f ? acc : BetaBlend(acc, beta, ci[0]);
        }
      } else {
        // Edge tile: same per-element chain, one row at a time.
        float accv[kNj] = {};
        for (int64_t i = i0; i < i0 + ib; ++i) {
          std::fill(accv, accv + jb, 0.0f);
          for (int64_t kk = 0; kk < k; ++kk) {
            const float aik = alpha * (TransA ? a[kk * n + i] : a[i * k + kk]);
            const float* __restrict__ bk = b + kk * m + j0;
            for (int64_t jj = 0; jj < jb; ++jj)
              accv[jj] = std::fmaf(aik, bk[jj], accv[jj]);
          }
          float* __restrict__ ci = c + i * m + j0;
          if (beta == 0.0f) {
            for (int64_t jj = 0; jj < jb; ++jj) ci[jj] = accv[jj];
          } else {
            for (int64_t jj = 0; jj < jb; ++jj)
              ci[jj] = BetaBlend(accv[jj], beta, ci[jj]);
          }
        }
      }
    }
  }
}

template <bool TransA>
void GemmImpl(std::span<const float> a, std::span<const float> b,
              std::span<float> c, int64_t n, int64_t k, int64_t m, float alpha,
              float beta, const char* stat_name) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  if (n == 0 || m == 0) return;
  par::KernelTimer timer(stat_name, GemmFlops(n, k, m));
  par::ParallelForBlocks(GemmRowGrain(k, m), n, /*align=*/kMr,
                         [&](int64_t, int64_t begin, int64_t end) {
                           GemmRows<TransA>(a.data(), b.data(), c.data(),
                                            begin, end, n, k, m, alpha, beta);
                         });
}

// Fixed 8-lane interleaved fp32 dot product (lane l takes k ≡ l mod 8),
// lanes combined in a fixed pairwise tree. The interleaving is part of the
// accumulation policy: production and naive code both use it, so results
// match bitwise and are independent of any row partition.
float Dot8(const float* __restrict__ x, const float* __restrict__ y,
           int64_t k) {
  float lane[8] = {};
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    for (int64_t l = 0; l < 8; ++l) lane[l] += x[kk + l] * y[kk + l];
  }
  for (; kk < k; ++kk) lane[kk % 8] += x[kk] * y[kk];
  const float s0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  const float s1 = (lane[4] + lane[5]) + (lane[6] + lane[7]);
  return s0 + s1;
}

void GemmTransBRows(const float* a, const float* b, float* c, int64_t i_begin,
                    int64_t i_end, int64_t k, int64_t m, float alpha,
                    float beta) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float dot = Dot8(ai, b + j * k, k);
      if (beta == 0.0f) {
        ci[j] = alpha * dot;
      } else {
        ci[j] = BetaBlend(alpha * dot, beta, ci[j]);
      }
    }
  }
}

}  // namespace

void Gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, int64_t n, int64_t k, int64_t m, float alpha,
          float beta) {
  GemmImpl<false>(a, b, c, n, k, m, alpha, beta, "gemm");
}

void GemmTransA(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha, float beta) {
  GemmImpl<true>(a, b, c, n, k, m, alpha, beta, "gemm_ta");
}

void GemmTransB(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  if (n == 0 || m == 0) return;
  par::KernelTimer timer("gemm_tb", GemmFlops(n, k, m));
  par::ParallelFor(GemmRowGrain(k, m), n, [&](int64_t begin, int64_t end) {
    GemmTransBRows(a.data(), b.data(), c.data(), begin, end, k, m, alpha,
                   beta);
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.cols() == b.rows(),
                 "MatMul shape mismatch: " << ShapeToString(a.shape()) << " x "
                                           << ShapeToString(b.shape()));
  Tensor c({a.rows(), b.cols()});
  Gemm(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  return c;
}

Tensor MatMulTA(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.rows() == b.rows(),
                 "MatMulTA shape mismatch: " << ShapeToString(a.shape())
                                             << "ᵀ x "
                                             << ShapeToString(b.shape()));
  Tensor c({a.cols(), b.cols()});
  GemmTransA(a.data(), b.data(), c.data(), a.cols(), a.rows(), b.cols());
  return c;
}

Tensor MatMulTB(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.cols() == b.cols(),
                 "MatMulTB shape mismatch: " << ShapeToString(a.shape())
                                             << " x "
                                             << ShapeToString(b.shape())
                                             << "ᵀ");
  Tensor c({a.rows(), b.rows()});
  GemmTransB(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.rows());
  return c;
}

Tensor Transpose(const Tensor& in) {
  ACPS_CHECK_MSG(in.ndim() == 2, "Transpose needs a matrix");
  const int64_t r = in.rows(), c = in.cols();
  Tensor out({c, r});
  par::KernelTimer timer("transpose", 0);
  // 64×64 blocks: both the input rows and the output rows of a block stay
  // cache-resident. Pure data movement — any partition is exact.
  constexpr int64_t kBlk = 64;
  const float* src = in.data().data();
  float* dst = out.data().data();
  const int64_t row_grain = std::max<int64_t>(
      kBlk, par::kDefaultGrain / std::max<int64_t>(1, c));
  par::ParallelFor(row_grain, r, [&](int64_t begin, int64_t end) {
    for (int64_t ib = begin; ib < end; ib += kBlk) {
      const int64_t ie = std::min(ib + kBlk, end);
      for (int64_t jb = 0; jb < c; jb += kBlk) {
        const int64_t je = std::min(jb + kBlk, c);
        for (int64_t i = ib; i < ie; ++i)
          for (int64_t j = jb; j < je; ++j) dst[j * r + i] = src[i * c + j];
      }
    }
  });
  return out;
}

void Gemv(std::span<const float> a, std::span<const float> x,
          std::span<float> y, int64_t n, int64_t m) {
  ACPS_CHECK_MSG(static_cast<int64_t>(a.size()) == n * m &&
                     static_cast<int64_t>(x.size()) == m &&
                     static_cast<int64_t>(y.size()) == n,
                 "Gemv size mismatch");
  par::KernelTimer timer("gemv", 2ull * static_cast<uint64_t>(n) *
                                     static_cast<uint64_t>(m));
  const int64_t grain =
      std::max<int64_t>(1, par::kDefaultGrain / std::max<int64_t>(1, m));
  par::ParallelFor(grain, n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i)
      y[i] = Dot8(a.data() + i * m, x.data(), m);
  });
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  ACPS_CHECK_MSG(x.size() == y.size(), "Axpy size mismatch");
  const int64_t n = static_cast<int64_t>(x.size());
  par::KernelTimer timer("axpy", 2ull * static_cast<uint64_t>(n));
  par::ParallelFor(par::kDefaultGrain, n, [&](int64_t begin, int64_t end) {
    const float* __restrict__ xs = x.data();
    float* __restrict__ ys = y.data();
    for (int64_t i = begin; i < end; ++i) ys[i] += alpha * xs[i];
  });
}

void Scal(float alpha, std::span<float> x) {
  const int64_t n = static_cast<int64_t>(x.size());
  par::KernelTimer timer("scal", static_cast<uint64_t>(n));
  par::ParallelFor(par::kDefaultGrain, n, [&](int64_t begin, int64_t end) {
    float* __restrict__ xs = x.data();
    for (int64_t i = begin; i < end; ++i) xs[i] *= alpha;
  });
}

// ---------------------------------------------------------------------------
// Naive references. The definitional loop nest — one output element at a
// time, its accumulator walked in ascending k with the same explicit
// std::fmaf as production — single-threaded, no blocking or reuse. The
// saxpy-form pair is additionally pinned to scalar code
// (`no-tree-vectorize`): GCC's -O3 loop interchange otherwise rewrites the
// nest into a blocked vector kernel, which both defeats the point of a
// reference baseline and (observed) splits the fma into a separate
// mul + add, breaking bitwise parity with production.
// ---------------------------------------------------------------------------

__attribute__((optimize("no-tree-vectorize"))) void GemmNaive(
    std::span<const float> a, std::span<const float> b, std::span<float> c,
    int64_t n, int64_t k, int64_t m, float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = alpha * ai[kk];
        acc = std::fmaf(aik, b[kk * m + j], acc);
      }
      ci[j] = beta == 0.0f ? acc : BetaBlend(acc, beta, ci[j]);
    }
  }
}

__attribute__((optimize("no-tree-vectorize"))) void GemmTransANaive(
    std::span<const float> a, std::span<const float> b, std::span<float> c,
    int64_t n, int64_t k, int64_t m, float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    float* ci = c.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = alpha * a[kk * n + i];
        acc = std::fmaf(aik, b[kk * m + j], acc);
      }
      ci[j] = beta == 0.0f ? acc : BetaBlend(acc, beta, ci[j]);
    }
  }
}

void GemmTransBNaive(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, int64_t n, int64_t k, int64_t m,
                     float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* bj = b.data() + j * k;
      float lane[8] = {};
      for (int64_t kk = 0; kk < k; ++kk) lane[kk % 8] += ai[kk] * bj[kk];
      const float s0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
      const float s1 = (lane[4] + lane[5]) + (lane[6] + lane[7]);
      const float dot = s0 + s1;
      if (beta == 0.0f) {
        ci[j] = alpha * dot;
      } else {
        ci[j] = BetaBlend(alpha * dot, beta, ci[j]);
      }
    }
  }
}

Tensor TransposeNaive(const Tensor& in) {
  ACPS_CHECK_MSG(in.ndim() == 2, "Transpose needs a matrix");
  const int64_t r = in.rows(), c = in.cols();
  Tensor out({c, r});
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < c; ++j) out.at(j, i) = in.at(i, j);
  return out;
}

void GemvNaive(std::span<const float> a, std::span<const float> x,
               std::span<float> y, int64_t n, int64_t m) {
  ACPS_CHECK_MSG(static_cast<int64_t>(a.size()) == n * m &&
                     static_cast<int64_t>(x.size()) == m &&
                     static_cast<int64_t>(y.size()) == n,
                 "Gemv size mismatch");
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = a.data() + i * m;
    float lane[8] = {};
    for (int64_t j = 0; j < m; ++j) lane[j % 8] += ai[j] * x[j];
    const float s0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    const float s1 = (lane[4] + lane[5]) + (lane[6] + lane[7]);
    y[i] = s0 + s1;
  }
}

void AxpyNaive(float alpha, std::span<const float> x, std::span<float> y) {
  ACPS_CHECK_MSG(x.size() == y.size(), "Axpy size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace acps
