#include "tensor/matrix_ops.h"

#include <algorithm>

namespace acps {
namespace {

void CheckGemmSizes(size_t a, size_t b, size_t c, int64_t n, int64_t k,
                    int64_t m) {
  ACPS_CHECK_MSG(n >= 0 && k >= 0 && m >= 0, "negative gemm dims");
  ACPS_CHECK_MSG(static_cast<int64_t>(a) == n * k, "A size mismatch");
  ACPS_CHECK_MSG(static_cast<int64_t>(b) == k * m, "B size mismatch");
  ACPS_CHECK_MSG(static_cast<int64_t>(c) == n * m, "C size mismatch");
}

}  // namespace

void Gemm(std::span<const float> a, std::span<const float> b,
          std::span<float> c, int64_t n, int64_t k, int64_t m, float alpha,
          float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  // i-k-j loop order: streams B and C rows, good locality for row-major.
  for (int64_t i = 0; i < n; ++i) {
    float* ci = c.data() + i * m;
    if (beta == 0.0f) {
      std::fill(ci, ci + m, 0.0f);
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < m; ++j) ci[j] *= beta;
    }
    const float* ai = a.data() + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = alpha * ai[kk];
      if (aik == 0.0f) continue;
      const float* bk = b.data() + kk * m;
      for (int64_t j = 0; j < m; ++j) ci[j] += aik * bk[j];
    }
  }
}

void GemmTransA(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    float* ci = c.data() + i * m;
    if (beta == 0.0f) {
      std::fill(ci, ci + m, 0.0f);
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < m; ++j) ci[j] *= beta;
    }
  }
  // A stored [k×n]: visit A row-wise to stay sequential.
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* ak = a.data() + kk * n;
    const float* bk = b.data() + kk * m;
    for (int64_t i = 0; i < n; ++i) {
      const float aik = alpha * ak[i];
      if (aik == 0.0f) continue;
      float* ci = c.data() + i * m;
      for (int64_t j = 0; j < m; ++j) ci[j] += aik * bk[j];
    }
  }
}

void GemmTransB(std::span<const float> a, std::span<const float> b,
                std::span<float> c, int64_t n, int64_t k, int64_t m,
                float alpha, float beta) {
  CheckGemmSizes(a.size(), b.size(), c.size(), n, k, m);
  // B stored [m×k]; dot products of A rows with B rows.
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* bj = b.data() + j * k;
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) acc += double(ai[kk]) * bj[kk];
      ci[j] = alpha * static_cast<float>(acc) + beta * (beta == 0.0f ? 0.0f : ci[j]);
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.cols() == b.rows(),
                 "MatMul shape mismatch: " << ShapeToString(a.shape()) << " x "
                                           << ShapeToString(b.shape()));
  Tensor c({a.rows(), b.cols()});
  Gemm(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  return c;
}

Tensor MatMulTA(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.rows() == b.rows(),
                 "MatMulTA shape mismatch: " << ShapeToString(a.shape())
                                             << "ᵀ x "
                                             << ShapeToString(b.shape()));
  Tensor c({a.cols(), b.cols()});
  GemmTransA(a.data(), b.data(), c.data(), a.cols(), a.rows(), b.cols());
  return c;
}

Tensor MatMulTB(const Tensor& a, const Tensor& b) {
  ACPS_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2 && a.cols() == b.cols(),
                 "MatMulTB shape mismatch: " << ShapeToString(a.shape())
                                             << " x "
                                             << ShapeToString(b.shape())
                                             << "ᵀ");
  Tensor c({a.rows(), b.rows()});
  GemmTransB(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.rows());
  return c;
}

Tensor Transpose(const Tensor& in) {
  ACPS_CHECK_MSG(in.ndim() == 2, "Transpose needs a matrix");
  const int64_t r = in.rows(), c = in.cols();
  Tensor out({c, r});
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < c; ++j) out.at(j, i) = in.at(i, j);
  return out;
}

void Gemv(std::span<const float> a, std::span<const float> x,
          std::span<float> y, int64_t n, int64_t m) {
  ACPS_CHECK_MSG(static_cast<int64_t>(a.size()) == n * m &&
                     static_cast<int64_t>(x.size()) == m &&
                     static_cast<int64_t>(y.size()) == n,
                 "Gemv size mismatch");
  for (int64_t i = 0; i < n; ++i) {
    const float* ai = a.data() + i * m;
    double acc = 0.0;
    for (int64_t j = 0; j < m; ++j) acc += double(ai[j]) * x[j];
    y[i] = static_cast<float>(acc);
  }
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  ACPS_CHECK_MSG(x.size() == y.size(), "Axpy size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace acps
