#include "obs/kernel_metrics.h"

#include "metrics/table.h"
#include "par/kernel_stats.h"

namespace acps::obs {

void ExportKernelStats(MetricsRegistry& registry) {
  // Every instrument is a gauge set to the cumulative snapshot value, so
  // the export is idempotent: the trainer calls this once per step and the
  // registry always reads as "totals so far", never inflated by re-export.
  for (const auto& [name, stat] : par::KernelStatsSnapshot()) {
    registry.gauge("kernel." + name + ".calls")
        .Set(static_cast<double>(stat.calls));
    registry.gauge("kernel." + name + ".ms")
        .Set(static_cast<double>(stat.ns) / 1e6);
    registry.gauge("kernel." + name + ".gflops").Set(stat.gflops());
    registry.gauge("kernel." + name + ".bytes")
        .Set(static_cast<double>(stat.bytes));
    registry.gauge("kernel." + name + ".pack_bytes")
        .Set(static_cast<double>(stat.pack_bytes));
    registry.gauge("kernel." + name + ".panel_reuses")
        .Set(static_cast<double>(stat.panel_reuses));
  }
}

std::string KernelStatsTable() {
  metrics::Table table(
      {"kernel", "calls", "total ms", "GFLOP/s", "GB/s", "pack MB", "reuses"});
  for (const auto& [name, stat] : par::KernelStatsSnapshot()) {
    table.AddRow({name, std::to_string(stat.calls),
                  metrics::Table::Num(static_cast<double>(stat.ns) / 1e6),
                  metrics::Table::Num(stat.gflops()),
                  metrics::Table::Num(stat.gbps()),
                  metrics::Table::Num(static_cast<double>(stat.pack_bytes) /
                                      1e6),
                  std::to_string(stat.panel_reuses)});
  }
  return table.Render();
}

}  // namespace acps::obs
