#include "obs/kernel_metrics.h"

#include "metrics/table.h"
#include "par/kernel_stats.h"

namespace acps::obs {

void ExportKernelStats(MetricsRegistry& registry) {
  for (const auto& [name, stat] : par::KernelStatsSnapshot()) {
    registry.counter("kernel." + name + ".calls").Add(stat.calls);
    registry.gauge("kernel." + name + ".ms")
        .Set(static_cast<double>(stat.ns) / 1e6);
    registry.gauge("kernel." + name + ".gflops").Set(stat.gflops());
  }
}

std::string KernelStatsTable() {
  metrics::Table table({"kernel", "calls", "total ms", "GFLOP/s"});
  for (const auto& [name, stat] : par::KernelStatsSnapshot()) {
    table.AddRow({name, std::to_string(stat.calls),
                  metrics::Table::Num(static_cast<double>(stat.ns) / 1e6),
                  metrics::Table::Num(stat.gflops())});
  }
  return table.Render();
}

}  // namespace acps::obs
