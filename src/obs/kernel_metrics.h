// Export of the par::KernelStats table (per-kernel calls / wall time /
// FLOP rate) into the obs metrics registry and the shared ASCII table
// renderer. Collection lives in par/kernel_stats.h so tensor/linalg never
// depend on obs; this is the reporting side used by the Fig 3/8 breakdown
// benches and bench_kernels.
#pragma once

#include <string>

#include "obs/metrics_registry.h"

namespace acps::obs {

// Writes each recorded kernel into `registry` as
//   kernel.<name>.calls   (counter)  total invocations
//   kernel.<name>.ms      (gauge)    accumulated wall milliseconds
//   kernel.<name>.gflops  (gauge)    achieved GFLOP/s over that window
// The registry must be enabled for the instruments to take values.
void ExportKernelStats(MetricsRegistry& registry);

// ASCII table of the snapshot (kernel, calls, total ms, GFLOP/s), sorted by
// name; empty-table render when nothing was recorded.
[[nodiscard]] std::string KernelStatsTable();

}  // namespace acps::obs
