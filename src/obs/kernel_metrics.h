// Export of the par::KernelStats table (per-kernel calls / wall time /
// FLOP rate) into the obs metrics registry and the shared ASCII table
// renderer. Collection lives in par/kernel_stats.h so tensor/linalg never
// depend on obs; this is the reporting side used by the Fig 3/8 breakdown
// benches and bench_kernels.
#pragma once

#include <string>

#include "obs/metrics_registry.h"

namespace acps::obs {

// Writes each recorded kernel into `registry` as cumulative-total gauges
//   kernel.<name>.calls         total invocations
//   kernel.<name>.ms            accumulated wall milliseconds
//   kernel.<name>.gflops        achieved GFLOP/s over that window
//   kernel.<name>.bytes         logical operand/result bytes moved
//   kernel.<name>.pack_bytes    bytes staged into packed panels (§6e)
//   kernel.<name>.panel_reuses  micro-kernel sweeps served from a packed
//                               panel
// Idempotent: each instrument is Set to the snapshot total, so the trainer
// may re-export every step without inflating anything. The registry must
// be enabled for the instruments to take values.
void ExportKernelStats(MetricsRegistry& registry);

// ASCII table of the snapshot (kernel, calls, total ms, GFLOP/s, GB/s,
// packed MB, panel reuses), sorted by name; empty-table render when nothing
// was recorded.
[[nodiscard]] std::string KernelStatsTable();

}  // namespace acps::obs
