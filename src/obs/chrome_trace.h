// Generalized Chrome Trace Event writer (chrome://tracing, Perfetto).
//
// One serializer serves every trace source in the library: the analytical
// simulator (sim::TraceEvent, converted in sim/trace_export.cc) and real
// obs::Tracer runs (one row per worker). Events are "X" complete events;
// optional metadata events name the rows.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace acps::obs {

// One Chrome-trace "complete" event. `args` are pre-rendered JSON values
// keyed by name (numbers or quoted strings), kept generic so callers can
// attach whatever detail they have (bytes, indices, labels).
struct ChromeEvent {
  std::string name;
  std::string category;
  int pid = 1;
  int tid = 1;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::vector<std::pair<std::string, std::string>> args;
};

// Human label for a (pid, tid) row, emitted as a thread_name metadata event.
struct RowLabel {
  int pid = 1;
  int tid = 1;
  std::string label;
};

// Serializes events (plus row labels) as a Chrome Trace Event JSON array.
[[nodiscard]] std::string ToChromeTraceJson(std::span<const ChromeEvent> events,
                                            std::span<const RowLabel> rows = {});

// Converts recorded spans to Chrome events: pid 1, tid = worker rank, with
// "bytes" / "arg" attached as args when present. Row labels "worker N" are
// appended to `rows` for every rank seen.
[[nodiscard]] std::vector<ChromeEvent> SpansToChromeEvents(
    std::span<const SpanEvent> spans, std::vector<RowLabel>* rows = nullptr);

}  // namespace acps::obs
