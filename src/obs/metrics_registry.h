// Named runtime metrics for real runs: monotonic counters, last-value
// gauges, and sample histograms with CDF/quantile export (metrics/cdf.h).
//
// A registry hands out stable instrument references; instruments are safe
// to update from any worker thread. Like the tracer, the whole registry is
// gated on one relaxed atomic so disabled metrics cost a single load on the
// hot path and record nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/cdf.h"
#include "par/lock_level.h"

namespace acps::obs {

class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void Observe(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::lock_guard lock(hist_mu_);
    samples_.push_back(v);
  }
  [[nodiscard]] size_t count() const {
    std::lock_guard lock(hist_mu_);
    return samples_.size();
  }
  // Empirical CDF over the samples observed so far.
  [[nodiscard]] metrics::Cdf ToCdf() const {
    std::lock_guard lock(hist_mu_);
    metrics::Cdf cdf;
    cdf.AddAll(samples_);
    return cdf;
  }
  // q-quantile of the samples (throws for an empty histogram).
  [[nodiscard]] double Quantile(double q) const { return ToCdf().Quantile(q); }

 private:
  const std::atomic<bool>* enabled_;
  // Level 92: DumpText snapshots histograms while holding registry_mu_
  // (90), so the per-instrument lock sits below the registry lock.
  mutable ACPS_LOCK_LEVEL(92) hist_mu_;
  std::vector<double> samples_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Instrument lookup creates on first use; the returned reference stays
  // valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Plain-text dump, one line per instrument in name order; histograms show
  // count and p50/p90/p99 from the CDF export.
  [[nodiscard]] std::string DumpText() const;

 private:
  std::atomic<bool> enabled_{false};
  // Level 91: distinct from Tracer::trace_mu_ (90) so every mutex in src/
  // owns a unique level (acps-analyze `lock-level-unique`).
  mutable ACPS_LOCK_LEVEL(91) registry_mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace acps::obs
