#include "obs/chrome_trace.h"

#include <fstream>
#include <set>
#include <sstream>

namespace acps::obs {
namespace {

// Minimal JSON string escaping (names are library-generated but be safe).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToChromeTraceJson(std::span<const ChromeEvent> events,
                              std::span<const RowLabel> rows) {
  std::ostringstream oss;
  oss << "[";
  bool first = true;
  for (const auto& r : rows) {
    if (!first) oss << ",";
    first = false;
    oss << "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << r.pid
        << ", \"tid\": " << r.tid << ", \"args\": {\"name\": \""
        << Escape(r.label) << "\"}}";
  }
  for (const auto& e : events) {
    if (!first) oss << ",";
    first = false;
    oss << "\n  {\"name\": \"" << Escape(e.name) << "\", \"cat\": \""
        << Escape(e.category) << "\", \"ph\": \"X\", \"pid\": " << e.pid
        << ", \"tid\": " << e.tid << ", \"ts\": " << e.ts_us
        << ", \"dur\": " << e.dur_us;
    if (!e.args.empty()) {
      oss << ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) oss << ", ";
        first_arg = false;
        oss << "\"" << Escape(key) << "\": " << value;
      }
      oss << "}";
    }
    oss << "}";
  }
  oss << "\n]\n";
  return oss.str();
}

std::vector<ChromeEvent> SpansToChromeEvents(std::span<const SpanEvent> spans,
                                             std::vector<RowLabel>* rows) {
  std::vector<ChromeEvent> events;
  events.reserve(spans.size());
  std::set<int> workers;
  for (const auto& s : spans) {
    workers.insert(s.worker);
    ChromeEvent e;
    e.name = s.name;
    e.category = s.category;
    e.pid = 1;
    e.tid = s.worker;
    e.ts_us = static_cast<double>(s.begin_us);
    e.dur_us = static_cast<double>(s.end_us - s.begin_us);
    if (s.bytes > 0)
      e.args.emplace_back("bytes", std::to_string(s.bytes));
    if (s.arg >= 0) e.args.emplace_back("arg", std::to_string(s.arg));
    events.push_back(std::move(e));
  }
  if (rows != nullptr) {
    for (int w : workers)
      rows->push_back(RowLabel{1, w, "worker " + std::to_string(w)});
  }
  return events;
}

std::string Tracer::ToChromeTracingJson() const {
  const auto spans = Snapshot();
  std::vector<RowLabel> rows;
  const auto events = SpansToChromeEvents(spans, &rows);
  return ToChromeTraceJson(events, rows);
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToChromeTracingJson();
  return static_cast<bool>(out);
}

}  // namespace acps::obs
