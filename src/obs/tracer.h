// Runtime span tracing for REAL runs (DESIGN.md "Observability").
//
// The analytical simulator has always been able to emit Fig 4-style
// timelines (sim::TraceEvent); this tracer produces the same evidence from
// actual ThreadGroup executions: every worker records begin/end-stamped
// spans (collectives, compression, bucket issues, training steps) into one
// shared, thread-safe buffer, and the result exports to Chrome-trace JSON
// with one Perfetto row per worker (chrome_trace.h).
//
// Cost discipline: tracing is opt-in. Components hold a `Tracer*` that is
// nullptr by default; ScopedSpan's constructor is a single pointer test
// plus one relaxed atomic load when a tracer is attached, so instrumented
// hot paths (the ring collectives) are unaffected when tracing is off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "par/lock_level.h"

namespace acps::obs {

// Span categories mirror the simulator's resource labels so the two trace
// sources read the same way in a viewer.
inline constexpr const char* kCatComm = "comm";
inline constexpr const char* kCatCompress = "compress";
inline constexpr const char* kCatGrad = "grad";
inline constexpr const char* kCatBucket = "bucket";
inline constexpr const char* kCatStep = "step";
inline constexpr const char* kCatFault = "fault";  // injection/retry/crash

// One completed span. Timestamps are microseconds on the tracer's own
// monotonic clock (origin = construction or the last Clear()), so spans
// from all workers of a run share a time base.
struct SpanEvent {
  std::string name;
  std::string category;
  int worker = 0;        // communicator rank (row in the exported timeline)
  int64_t begin_us = 0;
  int64_t end_us = 0;
  uint64_t bytes = 0;    // wire bytes moved, 0 if not applicable
  int64_t arg = -1;      // free-form detail (param / bucket index), -1 if none
};

class Tracer {
 public:
  Tracer() : origin_(std::chrono::steady_clock::now()) {}

  // Disabled tracers record nothing; spans opened while disabled stay
  // dropped even if the tracer is enabled before they close.
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Microseconds since the tracer's origin (monotonic).
  [[nodiscard]] int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  // Thread-safe append (workers record concurrently).
  void Record(SpanEvent event) {
    std::lock_guard lock(trace_mu_);
    events_.push_back(std::move(event));
  }

  [[nodiscard]] std::vector<SpanEvent> Snapshot() const {
    std::lock_guard lock(trace_mu_);
    return events_;
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard lock(trace_mu_);
    return events_.size();
  }

  // Drops all events and restarts the clock origin.
  void Clear() {
    std::lock_guard lock(trace_mu_);
    events_.clear();
    origin_ = std::chrono::steady_clock::now();
  }

  // Chrome-trace JSON of the current snapshot: one pid, one tid (row) per
  // worker, span bytes/arg attached as event args. Implemented in
  // chrome_trace.cc.
  [[nodiscard]] std::string ToChromeTracingJson() const;

  // Writes ToChromeTracingJson() to `path`; returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable ACPS_LOCK_LEVEL(90) trace_mu_;
  std::vector<SpanEvent> events_;
  std::chrono::steady_clock::time_point origin_;
};

// RAII span: stamps begin at construction, records at destruction. With a
// null or disabled tracer the constructor degenerates to one branch and the
// destructor to another — no strings are built, nothing is recorded.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, const char* category,
             int worker, uint64_t bytes = 0, int64_t arg = -1)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ == nullptr) return;
    name_ = name;
    category_ = category;
    worker_ = worker;
    bytes_ = bytes;
    arg_ = arg;
    begin_us_ = tracer_->NowUs();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Adjusts the byte tag after construction (for spans whose payload size
  // is only known mid-flight, e.g. all_gather_v).
  void set_bytes(uint64_t bytes) { bytes_ = bytes; }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    tracer_->Record(SpanEvent{name_, category_, worker_, begin_us_,
                              tracer_->NowUs(), bytes_, arg_});
  }

 private:
  Tracer* tracer_;
  const char* name_ = "";
  const char* category_ = "";
  int worker_ = 0;
  uint64_t bytes_ = 0;
  int64_t arg_ = -1;
  int64_t begin_us_ = 0;
};

}  // namespace acps::obs
