#include "obs/metrics_registry.h"

#include <sstream>

namespace acps::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(registry_mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(&enabled_);
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(registry_mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(&enabled_);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(registry_mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(&enabled_);
  return *slot;
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard lock(registry_mu_);
  std::ostringstream oss;
  for (const auto& [name, c] : counters_)
    oss << "counter   " << name << " = " << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    oss << "gauge     " << name << " = " << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    oss << "histogram " << name << " count=" << h->count();
    if (h->count() > 0) {
      const auto cdf = h->ToCdf();
      oss << " p50=" << cdf.Quantile(0.5) << " p90=" << cdf.Quantile(0.9)
          << " p99=" << cdf.Quantile(0.99);
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace acps::obs
