// Flat fusion buffer: packs a set of tensors contiguously so one collective
// moves them all (amortizing the 2(p−1)·α startup), then unpacks.
//
// This is the runtime counterpart of BucketAssigner: the core GradReducer
// copies ready compressed factors into a FusionBuffer, all-reduces
// buffer.data() once, and scatters the results back.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace acps::fusion {

class FusionBuffer {
 public:
  // Registers a slot of `numel` elements; returns the slot id. Must happen
  // before Pack. Layout is registration order.
  int AddSlot(int64_t numel);

  [[nodiscard]] int64_t total_elements() const noexcept { return total_; }
  [[nodiscard]] size_t num_slots() const noexcept { return slots_.size(); }

  // Copies `src` into slot `slot` (sizes must match).
  void Pack(int slot, std::span<const float> src);

  // Copies slot `slot` out into `dst`.
  void Unpack(int slot, std::span<float> dst) const;

  // The contiguous storage (allocated lazily on first Pack); the collective
  // target.
  [[nodiscard]] std::span<float> flat();
  [[nodiscard]] std::span<const float> flat() const;

  // Drops all slots and storage for reuse with a new layout.
  void Reset();

 private:
  struct Slot {
    int64_t offset;
    int64_t numel;
  };
  void EnsureStorage();

  std::vector<Slot> slots_;
  int64_t total_ = 0;
  std::vector<float> storage_;
};

}  // namespace acps::fusion
