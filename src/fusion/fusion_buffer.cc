#include "fusion/fusion_buffer.h"

#include <algorithm>

namespace acps::fusion {

int FusionBuffer::AddSlot(int64_t numel) {
  ACPS_CHECK_MSG(numel >= 0, "negative slot size");
  ACPS_CHECK_MSG(storage_.empty(),
                 "AddSlot after Pack: Reset() the buffer first");
  const int id = static_cast<int>(slots_.size());
  slots_.push_back(Slot{total_, numel});
  total_ += numel;
  return id;
}

void FusionBuffer::EnsureStorage() {
  if (storage_.empty() && total_ > 0)
    storage_.assign(static_cast<size_t>(total_), 0.0f);
  // Storage must cover the declared layout exactly; anything else means a
  // Pack/Unpack below would read or write out of bounds of the fused
  // buffer (the zero-copy all-reduce path aliases it via flat()).
  ACPS_CHECK_MSG(static_cast<int64_t>(storage_.size()) == total_ ||
                     (storage_.empty() && total_ == 0),
                 "fusion buffer storage holds " << storage_.size()
                                                << " floats but the layout "
                                                   "declares " << total_);
}

void FusionBuffer::Pack(int slot, std::span<const float> src) {
  ACPS_CHECK_MSG(slot >= 0 && slot < static_cast<int>(slots_.size()),
                 "bad slot " << slot);
  const Slot& s = slots_[static_cast<size_t>(slot)];
  ACPS_CHECK_MSG(static_cast<int64_t>(src.size()) == s.numel,
                 "Pack size mismatch for slot " << slot);
  EnsureStorage();
  std::copy(src.begin(), src.end(),
            storage_.begin() + static_cast<ptrdiff_t>(s.offset));
}

void FusionBuffer::Unpack(int slot, std::span<float> dst) const {
  ACPS_CHECK_MSG(slot >= 0 && slot < static_cast<int>(slots_.size()),
                 "bad slot " << slot);
  const Slot& s = slots_[static_cast<size_t>(slot)];
  ACPS_CHECK_MSG(static_cast<int64_t>(dst.size()) == s.numel,
                 "Unpack size mismatch for slot " << slot);
  ACPS_CHECK_MSG(!storage_.empty() || s.numel == 0,
                 "Unpack before any Pack");
  std::copy(storage_.begin() + static_cast<ptrdiff_t>(s.offset),
            storage_.begin() + static_cast<ptrdiff_t>(s.offset + s.numel),
            dst.begin());
}

std::span<float> FusionBuffer::flat() {
  EnsureStorage();
  return storage_;
}

std::span<const float> FusionBuffer::flat() const {
  return storage_;
}

void FusionBuffer::Reset() {
  slots_.clear();
  storage_.clear();
  total_ = 0;
}

}  // namespace acps::fusion
