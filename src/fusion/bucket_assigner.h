// Tensor-fusion bucket assignment (paper §IV-B, "Buffer Size").
//
// Tensors are bucketed greedily in *ready order* (the order gradients become
// available during back-propagation): a bucket closes when adding the next
// tensor would exceed the byte budget. This is the PyTorch-DDP/Horovod
// scheme with the 25MB default.
//
// The paper's key twist for ACP-SGD: compressed factors are far smaller than
// gradients, so the budget for the P (or Q) buckets is the default budget
// scaled by that factor's compression rate — ScaledBufferBytes. This keeps
// the *number* of buckets (and hence the WFBP/TF trade-off) comparable to
// S-SGD at any rank, which is what makes the 25MB default robust in Fig. 10.
#pragma once

#include <cstdint>
#include <vector>

namespace acps::fusion {

inline constexpr int64_t kDefaultBufferBytes = 25LL * 1024 * 1024;  // 25MB

// Greedy in-order bucketing. `tensor_bytes[i]` is the wire size of tensor i
// (in ready order). Buckets are returned as index lists; every tensor lands
// in exactly one bucket, order preserved. A budget <= 0 means "no fusion"
// (one bucket per tensor). A tensor larger than the budget gets its own
// bucket.
[[nodiscard]] std::vector<std::vector<int>> AssignBuckets(
    const std::vector<int64_t>& tensor_bytes, int64_t buffer_bytes);

// The paper's compressed-buffer-size rule: scale the default budget by the
// compression rate (compressed bytes / uncompressed bytes of the tensors
// this bucket set covers). Returns at least 1 byte so bucketing stays
// well-defined.
[[nodiscard]] int64_t ScaledBufferBytes(int64_t default_bytes,
                                        int64_t compressed_total_bytes,
                                        int64_t uncompressed_total_bytes);

// Total bytes of a bucket.
[[nodiscard]] int64_t BucketBytes(const std::vector<int>& bucket,
                                  const std::vector<int64_t>& tensor_bytes);

}  // namespace acps::fusion
