#include "fusion/bucket_assigner.h"

#include <algorithm>

#include "tensor/check.h"

namespace acps::fusion {

std::vector<std::vector<int>> AssignBuckets(
    const std::vector<int64_t>& tensor_bytes, int64_t buffer_bytes) {
  std::vector<std::vector<int>> buckets;
  std::vector<int> current;
  int64_t current_bytes = 0;
  for (int i = 0; i < static_cast<int>(tensor_bytes.size()); ++i) {
    const int64_t b = tensor_bytes[static_cast<size_t>(i)];
    ACPS_CHECK_MSG(b >= 0, "negative tensor size");
    if (buffer_bytes <= 0) {  // fusion disabled
      buckets.push_back({i});
      continue;
    }
    if (!current.empty() && current_bytes + b > buffer_bytes) {
      buckets.push_back(std::move(current));
      current.clear();
      current_bytes = 0;
    }
    current.push_back(i);
    current_bytes += b;
  }
  if (!current.empty()) buckets.push_back(std::move(current));
  // Postcondition: no multi-tensor bucket exceeds the byte budget (a single
  // tensor larger than the budget legitimately rides alone). An over-full
  // bucket here means the fused all-reduce buffer downstream would be
  // under-sized relative to the plan — abort with context instead.
  if (buffer_bytes > 0) {
    for (const auto& bucket : buckets) {
      if (bucket.size() <= 1) continue;
      ACPS_CHECK_MSG(BucketBytes(bucket, tensor_bytes) <= buffer_bytes,
                     "bucket of " << bucket.size() << " tensors ("
                                  << BucketBytes(bucket, tensor_bytes)
                                  << " B) exceeds the " << buffer_bytes
                                  << " B fusion budget");
    }
  }
  return buckets;
}

int64_t ScaledBufferBytes(int64_t default_bytes, int64_t compressed_total_bytes,
                          int64_t uncompressed_total_bytes) {
  ACPS_CHECK_MSG(default_bytes >= 0 && compressed_total_bytes >= 0 &&
                     uncompressed_total_bytes >= 0,
                 "negative byte counts");
  if (default_bytes == 0) return 0;  // fusion disabled stays disabled
  if (uncompressed_total_bytes == 0) return std::max<int64_t>(1, default_bytes);
  // Use double to avoid overflow; rate <= 1 in all sane configurations but
  // we do not assume it.
  const double rate = static_cast<double>(compressed_total_bytes) /
                      static_cast<double>(uncompressed_total_bytes);
  const auto scaled = static_cast<int64_t>(
      static_cast<double>(default_bytes) * rate);
  return std::max<int64_t>(1, scaled);
}

int64_t BucketBytes(const std::vector<int>& bucket,
                    const std::vector<int64_t>& tensor_bytes) {
  int64_t total = 0;
  for (int i : bucket) {
    ACPS_CHECK(i >= 0 && i < static_cast<int>(tensor_bytes.size()));
    total += tensor_bytes[static_cast<size_t>(i)];
  }
  return total;
}

}  // namespace acps::fusion
