// Column orthogonalization used by the Power-SGD family.
//
// Two implementations:
//  * OrthogonalizeQr — reduced QR (matches the paper's torch.linalg.qr path);
//    robust for any rank.
//  * OrthogonalizeGramSchmidt — modified Gram–Schmidt, the cheaper scheme the
//    original Power-SGD paper uses for small ranks.
// Both replace the columns of `a` (in place) with an orthonormal basis of its
// column span; rank-deficient columns are re-seeded deterministically so the
// result always has full column rank.
#pragma once

#include "tensor/tensor.h"

namespace acps {

enum class OrthoScheme {
  kQr,           // Householder reduced QR (default, matches the paper)
  kGramSchmidt,  // modified Gram–Schmidt
};

// In-place orthogonalization of the columns of a[n×r] (n >= r).
void Orthogonalize(Tensor& a, OrthoScheme scheme = OrthoScheme::kQr);

void OrthogonalizeQr(Tensor& a);
void OrthogonalizeGramSchmidt(Tensor& a);

}  // namespace acps
