// Reduced QR decomposition via Householder reflections.
//
// Power-SGD and ACP-SGD orthogonalize their low-rank factor with a reduced QR
// (the paper uses torch.linalg.qr). For an input A[n×r] with n >= r we return
// Q[n×r] with orthonormal columns and R[r×r] upper triangular, A = Q·R.
#pragma once

#include "tensor/tensor.h"

namespace acps {

struct QrResult {
  Tensor q;  // [n×r], orthonormal columns
  Tensor r;  // [r×r], upper triangular
};

// Reduced QR of a[n×r], n >= r >= 1. Throws acps::Error on bad shapes.
[[nodiscard]] QrResult ReducedQr(const Tensor& a);

// Returns max |QᵀQ - I| — used by tests and as a debugging aid.
[[nodiscard]] float OrthonormalityError(const Tensor& q);

}  // namespace acps
