// Power-iteration helpers and low-rank approximation metrics.
//
// Used by tests (approximation-quality invariants) and by the
// compression_playground example to show how rank controls fidelity.
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace acps {

struct LowRankFactors {
  Tensor p;  // [n×r]
  Tensor q;  // [m×r]
};

// Runs `iters` steps of subspace power iteration on m[n×m] starting from a
// random Q (seeded by rng), returning factors with  m ≈ P·Qᵀ.
[[nodiscard]] LowRankFactors PowerIteration(const Tensor& m, int64_t rank,
                                            int iters, Rng& rng);

// Reconstruction P·Qᵀ.
[[nodiscard]] Tensor Reconstruct(const LowRankFactors& f);

// Relative Frobenius error ‖m − P·Qᵀ‖ / ‖m‖ (0 for zero m).
[[nodiscard]] float RelativeError(const Tensor& m, const LowRankFactors& f);

// Frobenius norm of the best rank-r approximation error, estimated by
// running many power iterations; used as a reference in property tests.
[[nodiscard]] float BestRankError(const Tensor& m, int64_t rank, Rng& rng);

}  // namespace acps
