#include "linalg/orthogonalize.h"

#include <cmath>

#include "linalg/qr.h"
#include "tensor/rng.h"

namespace acps {
namespace {

// Re-seed a (near-)zero column deterministically from its index so that
// orthogonalization always yields a full-rank basis. Seeding from the column
// index keeps all workers' bases identical, which the Power-SGD family
// requires (every worker must use the same Q).
void ReseedColumn(Tensor& a, int64_t col) {
  Rng rng(0xC01DBEEFull + static_cast<uint64_t>(col));
  for (int64_t i = 0; i < a.rows(); ++i) a.at(i, col) = rng.normal();
}

}  // namespace

void Orthogonalize(Tensor& a, OrthoScheme scheme) {
  switch (scheme) {
    case OrthoScheme::kQr:
      OrthogonalizeQr(a);
      return;
    case OrthoScheme::kGramSchmidt:
      OrthogonalizeGramSchmidt(a);
      return;
  }
  ACPS_FAIL_MSG("unknown orthogonalization scheme");
}

void OrthogonalizeQr(Tensor& a) {
  ACPS_CHECK_MSG(a.ndim() == 2 && a.rows() >= a.cols(),
                 "OrthogonalizeQr needs n >= r, got "
                     << ShapeToString(a.shape()));
  QrResult qr = ReducedQr(a);
  // Guard against rank deficiency: QR of a zero column produces a zero
  // column in Q (tau == 0 path); re-orthogonalize after reseeding if needed.
  bool deficient = false;
  for (int64_t j = 0; j < qr.q.cols(); ++j) {
    double norm_sq = 0.0;
    for (int64_t i = 0; i < qr.q.rows(); ++i)
      norm_sq += double(qr.q.at(i, j)) * qr.q.at(i, j);
    if (norm_sq < 0.5) {  // orthonormal column has norm 1
      ReseedColumn(qr.q, j);
      deficient = true;
    }
  }
  if (deficient) {
    OrthogonalizeGramSchmidt(qr.q);
  }
  a = std::move(qr.q);
}

void OrthogonalizeGramSchmidt(Tensor& a) {
  ACPS_CHECK_MSG(a.ndim() == 2 && a.rows() >= a.cols(),
                 "OrthogonalizeGramSchmidt needs n >= r, got "
                     << ShapeToString(a.shape()));
  const int64_t n = a.rows(), r = a.cols();
  for (int64_t j = 0; j < r; ++j) {
    // Pre-projection norm: the degeneracy threshold must be relative, or a
    // duplicated column leaves a tiny numerical residual that would be
    // normalized into garbage.
    double orig_norm_sq = 0.0;
    for (int64_t i = 0; i < n; ++i)
      orig_norm_sq += double(a.at(i, j)) * a.at(i, j);
    // Subtract projections onto previous columns (modified Gram–Schmidt).
    for (int64_t k = 0; k < j; ++k) {
      double dot = 0.0;
      for (int64_t i = 0; i < n; ++i)
        dot += double(a.at(i, k)) * a.at(i, j);
      for (int64_t i = 0; i < n; ++i)
        a.at(i, j) = static_cast<float>(a.at(i, j) - dot * a.at(i, k));
    }
    double norm_sq = 0.0;
    for (int64_t i = 0; i < n; ++i) norm_sq += double(a.at(i, j)) * a.at(i, j);
    if (norm_sq < 1e-10 * std::max(orig_norm_sq, 1.0)) {
      // Degenerate column: replace with a deterministic random direction and
      // redo this column.
      ReseedColumn(a, j);
      --j;
      continue;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (int64_t i = 0; i < n; ++i) a.at(i, j) *= inv;
  }
}

}  // namespace acps
