#include "linalg/orthogonalize.h"

#include <cmath>

#include "linalg/qr.h"
#include "par/kernel_stats.h"
#include "par/parallel.h"
#include "tensor/rng.h"

namespace acps {
namespace {

// Re-seed a (near-)zero column deterministically from its index so that
// orthogonalization always yields a full-rank basis. Seeding from the column
// index keeps all workers' bases identical, which the Power-SGD family
// requires (every worker must use the same Q).
void ReseedColumn(Tensor& a, int64_t col) {
  Rng rng(0xC01DBEEFull + static_cast<uint64_t>(col));
  for (int64_t i = 0; i < a.rows(); ++i) a.at(i, col) = rng.normal();
}

// Strided column dot over rows [0, n): deterministic fixed-chunk tree, so
// the value is thread-count invariant (par/parallel.h).
double ColumnDot(const float* a, int64_t n, int64_t stride, int64_t col_x,
                 int64_t col_y) {
  return par::ParallelReduce(
      int64_t{1} << 15, n, 0.0,
      [&](int64_t begin, int64_t end) {
        double acc = 0.0;
        for (int64_t i = begin; i < end; ++i)
          acc += double(a[i * stride + col_x]) * a[i * stride + col_y];
        return acc;
      },
      [](double x, double y) { return x + y; });
}

}  // namespace

void Orthogonalize(Tensor& a, OrthoScheme scheme) {
  switch (scheme) {
    case OrthoScheme::kQr:
      OrthogonalizeQr(a);
      return;
    case OrthoScheme::kGramSchmidt:
      OrthogonalizeGramSchmidt(a);
      return;
  }
  ACPS_FAIL_MSG("unknown orthogonalization scheme");
}

void OrthogonalizeQr(Tensor& a) {
  ACPS_CHECK_MSG(a.ndim() == 2 && a.rows() >= a.cols(),
                 "OrthogonalizeQr needs n >= r, got "
                     << ShapeToString(a.shape()));
  QrResult qr = ReducedQr(a);
  // Guard against rank deficiency: QR of a zero column produces a zero
  // column in Q (tau == 0 path); re-orthogonalize after reseeding if needed.
  const float* qd = qr.q.data().data();
  const int64_t stride = qr.q.cols();
  bool deficient = false;
  for (int64_t j = 0; j < qr.q.cols(); ++j) {
    const double norm_sq = ColumnDot(qd, qr.q.rows(), stride, j, j);
    if (norm_sq < 0.5) {  // orthonormal column has norm 1
      ReseedColumn(qr.q, j);
      deficient = true;
    }
  }
  if (deficient) {
    OrthogonalizeGramSchmidt(qr.q);
  }
  a = std::move(qr.q);
}

void OrthogonalizeGramSchmidt(Tensor& a) {
  ACPS_CHECK_MSG(a.ndim() == 2 && a.rows() >= a.cols(),
                 "OrthogonalizeGramSchmidt needs n >= r, got "
                     << ShapeToString(a.shape()));
  const int64_t n = a.rows(), r = a.cols();
  par::KernelTimer timer("gram_schmidt",
                         static_cast<uint64_t>(2 * n * r * r));
  float* ad = a.data().data();
  for (int64_t j = 0; j < r; ++j) {
    // Pre-projection norm: the degeneracy threshold must be relative, or a
    // duplicated column leaves a tiny numerical residual that would be
    // normalized into garbage.
    const double orig_norm_sq = ColumnDot(ad, n, r, j, j);
    // Subtract projections onto previous columns (modified Gram–Schmidt).
    for (int64_t k = 0; k < j; ++k) {
      const double dot = ColumnDot(ad, n, r, k, j);
      par::ParallelFor(par::kDefaultGrain, n, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i)
          ad[i * r + j] =
              static_cast<float>(ad[i * r + j] - dot * ad[i * r + k]);
      });
    }
    const double norm_sq = ColumnDot(ad, n, r, j, j);
    if (norm_sq < 1e-10 * std::max(orig_norm_sq, 1.0)) {
      // Degenerate column: replace with a deterministic random direction and
      // redo this column.
      ReseedColumn(a, j);
      --j;
      continue;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    par::ParallelFor(par::kDefaultGrain, n, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) ad[i * r + j] *= inv;
    });
  }
}

}  // namespace acps
