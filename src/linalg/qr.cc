#include "linalg/qr.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "par/accum_policy.h"
#include "par/kernel_stats.h"
#include "par/parallel.h"
#include "tensor/matrix_ops.h"

namespace acps {
namespace {

// Column-panel parallelism: the trailing-update and back-accumulation loops
// apply one reflector to many independent columns. Each column is processed
// serially by exactly one task, so any column partition is bitwise equal to
// the serial loop. The grain keeps small panels (short columns or few of
// them) inline on the caller.
int64_t ColumnGrain(int64_t col_len) {
  return std::max<int64_t>(1, par::kDefaultGrain /
                                  std::max<int64_t>(1, col_len));
}

}  // namespace

QrResult ReducedQr(const Tensor& a) {
  ACPS_CHECK_MSG(a.ndim() == 2, "ReducedQr needs a matrix, got "
                                    << ShapeToString(a.shape()));
  const int64_t n = a.rows(), r = a.cols();
  ACPS_CHECK_MSG(n >= r && r >= 1,
                 "ReducedQr needs n >= r >= 1, got " << n << "x" << r);
  par::KernelTimer timer(
      "qr", static_cast<uint64_t>(4 * n * r * r));  // ~2nr² factor + 2nr² Q

  // Householder QR is inherently sequential in k; the column norms and
  // reflector dot products inside each step run over ascending row index on
  // every rank (the ParallelFor below partitions columns, never a single
  // reduction), so the factorization is bitwise reproducible.
  ACPS_ACCUM_POLICY(serial_index_order);

  // Work on a copy; accumulate Householder vectors in-place below the
  // diagonal, R above it, then form Q explicitly by back-accumulation.
  Tensor work = a.clone();
  float* w = work.data().data();
  std::vector<float> tau(static_cast<size_t>(r), 0.0f);

  for (int64_t k = 0; k < r; ++k) {
    // Compute the Householder reflector for column k, rows k..n-1.
    double norm_sq = 0.0;
    for (int64_t i = k; i < n; ++i) {
      const double v = w[i * r + k];
      norm_sq += v * v;
    }
    const double norm = std::sqrt(norm_sq);
    const double akk = w[k * r + k];
    if (norm < 1e-30) {
      tau[static_cast<size_t>(k)] = 0.0f;  // zero column: skip reflection
      continue;
    }
    const double alpha = (akk >= 0.0) ? -norm : norm;
    // v = x - alpha*e1, normalized so v[k] = 1.
    const double vkk = akk - alpha;
    for (int64_t i = k + 1; i < n; ++i)
      w[i * r + k] = static_cast<float>(w[i * r + k] / vkk);
    tau[static_cast<size_t>(k)] =
        static_cast<float>((alpha - akk) / alpha);  // = -vkk/alpha
    w[k * r + k] = static_cast<float>(alpha);

    // Apply the reflector to remaining columns: A <- (I - tau v vᵀ) A.
    // Columns are independent; each runs serially on one task.
    const double tau_k = tau[static_cast<size_t>(k)];
    par::ParallelFor(ColumnGrain(n - k), r - (k + 1), [&](int64_t b, int64_t e) {
      for (int64_t j = k + 1 + b; j < k + 1 + e; ++j) {
        double dot = w[k * r + j];
        for (int64_t i = k + 1; i < n; ++i)
          dot += double(w[i * r + k]) * w[i * r + j];
        const double t = tau_k * dot;
        w[k * r + j] = static_cast<float>(w[k * r + j] - t);
        for (int64_t i = k + 1; i < n; ++i)
          w[i * r + j] = static_cast<float>(w[i * r + j] - t * w[i * r + k]);
      }
    });
  }

  // Extract R.
  Tensor rmat({r, r});
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = i; j < r; ++j) rmat.at(i, j) = work.at(i, j);

  // Form Q = H_0 H_1 ... H_{r-1} · [I_r; 0] by applying reflectors backwards.
  Tensor q({n, r});
  float* qd = q.data().data();
  for (int64_t j = 0; j < r; ++j) qd[j * r + j] = 1.0f;
  for (int64_t k = r - 1; k >= 0; --k) {
    const float tk = tau[static_cast<size_t>(k)];
    if (tk == 0.0f) continue;
    par::ParallelFor(ColumnGrain(n - k), r, [&](int64_t b, int64_t e) {
      for (int64_t j = b; j < e; ++j) {
        double dot = qd[k * r + j];
        for (int64_t i = k + 1; i < n; ++i)
          dot += double(w[i * r + k]) * qd[i * r + j];
        const double t = tk * dot;
        qd[k * r + j] = static_cast<float>(qd[k * r + j] - t);
        for (int64_t i = k + 1; i < n; ++i)
          qd[i * r + j] = static_cast<float>(qd[i * r + j] - t * w[i * r + k]);
      }
    });
  }

  return QrResult{std::move(q), std::move(rmat)};
}

float OrthonormalityError(const Tensor& q) {
  ACPS_CHECK(q.ndim() == 2);
  const Tensor gram = MatMulTA(q, q);
  float err = 0.0f;
  for (int64_t i = 0; i < gram.rows(); ++i)
    for (int64_t j = 0; j < gram.cols(); ++j) {
      const float target = (i == j) ? 1.0f : 0.0f;
      err = std::max(err, std::abs(gram.at(i, j) - target));
    }
  return err;
}

}  // namespace acps
