#include "linalg/qr.h"

#include <cmath>
#include <vector>

#include "tensor/matrix_ops.h"

namespace acps {

QrResult ReducedQr(const Tensor& a) {
  ACPS_CHECK_MSG(a.ndim() == 2, "ReducedQr needs a matrix, got "
                                    << ShapeToString(a.shape()));
  const int64_t n = a.rows(), r = a.cols();
  ACPS_CHECK_MSG(n >= r && r >= 1,
                 "ReducedQr needs n >= r >= 1, got " << n << "x" << r);

  // Work on a copy; accumulate Householder vectors in-place below the
  // diagonal, R above it, then form Q explicitly by back-accumulation.
  Tensor work = a.clone();
  std::vector<float> tau(static_cast<size_t>(r), 0.0f);

  for (int64_t k = 0; k < r; ++k) {
    // Compute the Householder reflector for column k, rows k..n-1.
    double norm_sq = 0.0;
    for (int64_t i = k; i < n; ++i) {
      const double v = work.at(i, k);
      norm_sq += v * v;
    }
    const double norm = std::sqrt(norm_sq);
    const double akk = work.at(k, k);
    if (norm < 1e-30) {
      tau[static_cast<size_t>(k)] = 0.0f;  // zero column: skip reflection
      continue;
    }
    const double alpha = (akk >= 0.0) ? -norm : norm;
    // v = x - alpha*e1, normalized so v[k] = 1.
    const double vkk = akk - alpha;
    for (int64_t i = k + 1; i < n; ++i)
      work.at(i, k) = static_cast<float>(work.at(i, k) / vkk);
    tau[static_cast<size_t>(k)] =
        static_cast<float>((alpha - akk) / alpha);  // = -vkk/alpha
    work.at(k, k) = static_cast<float>(alpha);

    // Apply the reflector to remaining columns: A <- (I - tau v vᵀ) A.
    for (int64_t j = k + 1; j < r; ++j) {
      double dot = work.at(k, j);
      for (int64_t i = k + 1; i < n; ++i)
        dot += double(work.at(i, k)) * work.at(i, j);
      const double t = tau[static_cast<size_t>(k)] * dot;
      work.at(k, j) = static_cast<float>(work.at(k, j) - t);
      for (int64_t i = k + 1; i < n; ++i)
        work.at(i, j) =
            static_cast<float>(work.at(i, j) - t * work.at(i, k));
    }
  }

  // Extract R.
  Tensor rmat({r, r});
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = i; j < r; ++j) rmat.at(i, j) = work.at(i, j);

  // Form Q = H_0 H_1 ... H_{r-1} · [I_r; 0] by applying reflectors backwards.
  Tensor q({n, r});
  for (int64_t j = 0; j < r; ++j) q.at(j, j) = 1.0f;
  for (int64_t k = r - 1; k >= 0; --k) {
    const float tk = tau[static_cast<size_t>(k)];
    if (tk == 0.0f) continue;
    for (int64_t j = 0; j < r; ++j) {
      double dot = q.at(k, j);
      for (int64_t i = k + 1; i < n; ++i)
        dot += double(work.at(i, k)) * q.at(i, j);
      const double t = tk * dot;
      q.at(k, j) = static_cast<float>(q.at(k, j) - t);
      for (int64_t i = k + 1; i < n; ++i)
        q.at(i, j) = static_cast<float>(q.at(i, j) - t * work.at(i, k));
    }
  }

  return QrResult{std::move(q), std::move(rmat)};
}

float OrthonormalityError(const Tensor& q) {
  ACPS_CHECK(q.ndim() == 2);
  const Tensor gram = MatMulTA(q, q);
  float err = 0.0f;
  for (int64_t i = 0; i < gram.rows(); ++i)
    for (int64_t j = 0; j < gram.cols(); ++j) {
      const float target = (i == j) ? 1.0f : 0.0f;
      err = std::max(err, std::abs(gram.at(i, j) - target));
    }
  return err;
}

}  // namespace acps
