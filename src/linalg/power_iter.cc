#include "linalg/power_iter.h"

#include "linalg/orthogonalize.h"
#include "tensor/matrix_ops.h"

namespace acps {

LowRankFactors PowerIteration(const Tensor& m, int64_t rank, int iters,
                              Rng& rng) {
  ACPS_CHECK_MSG(m.ndim() == 2, "PowerIteration needs a matrix");
  const int64_t n = m.rows(), mm = m.cols();
  ACPS_CHECK_MSG(rank >= 1 && rank <= std::min(n, mm),
                 "rank " << rank << " invalid for " << n << "x" << mm);
  ACPS_CHECK_MSG(iters >= 1, "iters must be >= 1");

  Tensor q({mm, rank});
  rng.fill_normal(q);
  Tensor p({n, rank});
  for (int it = 0; it < iters; ++it) {
    Orthogonalize(q);
    p = MatMul(m, q);          // P = M·Q
    Orthogonalize(p);
    q = MatMulTA(m, p);        // Q = Mᵀ·P
  }
  // Final convention (matches Power-SGD): P orthonormal, Q carries scale.
  return LowRankFactors{std::move(p), std::move(q)};
}

Tensor Reconstruct(const LowRankFactors& f) { return MatMulTB(f.p, f.q); }

float RelativeError(const Tensor& m, const LowRankFactors& f) {
  const float norm = m.norm2();
  if (norm == 0.0f) return 0.0f;
  Tensor diff = Reconstruct(f);
  diff.scale_(-1.0f);
  diff.add_(m);
  return diff.norm2() / norm;
}

float BestRankError(const Tensor& m, int64_t rank, Rng& rng) {
  // 30 power iterations converge to (near) the optimal subspace for the
  // matrix sizes used in tests.
  const LowRankFactors f = PowerIteration(m, rank, 30, rng);
  Tensor diff = Reconstruct(f);
  diff.scale_(-1.0f);
  diff.add_(m);
  return diff.norm2();
}

}  // namespace acps
