// DistributedOptimizer — the library's top-level façade (the quickstart
// API): wraps a model's parameters, a gradient aggregator, and momentum SGD
// into the two calls a training loop needs:
//
//   acps::core::DistributedOptimizer opt(net.params(), factory(rank, world),
//                                        schedule);
//   ... forward / backward ...
//   opt.Step(comm, epoch);   // aggregate gradients + apply the update
//
// Mirrors the paper's description of the prototype: "it wraps the SGD
// optimizer to cope with the underlying gradient compression and
// communication operations" (§IV-C).
#pragma once

#include <memory>

#include "core/aggregators.h"
#include "dnn/optimizer.h"

namespace acps::core {

class DistributedOptimizer {
 public:
  DistributedOptimizer(std::vector<dnn::Param*> params,
                       std::unique_ptr<GradientAggregator> aggregator,
                       dnn::LrSchedule schedule, float momentum = 0.9f,
                       float weight_decay = 0.0f);

  // Aggregates the gradients currently stored in the params across all
  // workers of `comm`, then applies one SGD update. Collective: every
  // worker must call it in lockstep.
  void Step(comm::Communicator& comm, double epoch);

  // Elastic-membership state resync (core/resync.h): broadcasts parameter
  // values and momentum buffers from `donor`, overwriting local replicas.
  // Called by every alive rank of the committed view at the same step
  // boundary after a membership transition admitted joiners — one flat
  // broadcast, so the whole model+optimizer transfer is a single
  // fingerprint-checked collective.
  void ResyncFrom(comm::Communicator& comm, int donor);

  [[nodiscard]] const GradientAggregator& aggregator() const {
    return *aggregator_;
  }
  [[nodiscard]] float last_lr() const { return sgd_.last_lr(); }

 private:
  std::vector<dnn::Param*> params_;
  std::unique_ptr<GradientAggregator> aggregator_;
  dnn::SgdOptimizer sgd_;
};

}  // namespace acps::core
