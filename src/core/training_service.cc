#include "core/training_service.h"

#include <utility>

#include "obs/metrics_registry.h"

namespace acps::core {

std::string ServiceConfig::Validate() const {
  std::string err;
  const auto add = [&err](const std::string& msg) {
    if (!err.empty()) err += "; ";
    err += msg;
  };
  if (max_concurrent_jobs < 1)
    add("max_concurrent_jobs must be >= 1, got " +
        std::to_string(max_concurrent_jobs));
  if (max_ranks_per_job < 1)
    add("max_ranks_per_job must be >= 1, got " +
        std::to_string(max_ranks_per_job));
  if (max_total_ranks < 0)
    add("max_total_ranks must be >= 0 (0 = jobs * ranks), got " +
        std::to_string(max_total_ranks));
  return err;
}

const char* ToString(JobState state) noexcept {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kSucceeded: return "succeeded";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

comm::TransportOptions TransportOptionsFor(const ServiceConfig& config,
                                           int total_rank_cap) {
  comm::TransportOptions opts;
  opts.barrier_timeout_ms = config.barrier_timeout_ms;
  // The transport's hard limits mirror the service budgets, so a bug in the
  // admission bookkeeping surfaces as a loud capacity error instead of a
  // silent over-subscription.
  opts.max_sessions = config.max_concurrent_jobs;
  opts.max_total_ranks = total_rank_cap;
  return opts;
}

}  // namespace

TrainingService::TrainingService(ServiceConfig config)
    : config_([&] {
        const std::string err = config.Validate();
        ACPS_CHECK_MSG(err.empty(), "invalid ServiceConfig: " << err);
        return config;
      }()),
      transport_(TransportOptionsFor(config_, TotalRankCap())) {
  transport_.set_tracer(config_.tracer);
  transport_.set_metrics(config_.metrics);
}

TrainingService::~TrainingService() {
  for (auto& t : runners_) {
    if (t.joinable()) t.join();
  }
}

int TrainingService::TotalRankCap() const noexcept {
  return config_.max_total_ranks > 0
             ? config_.max_total_ranks
             : config_.max_concurrent_jobs * config_.max_ranks_per_job;
}

JobHandle TrainingService::Submit(const JobSpec& spec,
                                  std::function<void(comm::Session&)> body) {
  ACPS_CHECK_MSG(body != nullptr, "job body must be non-null");
  ACPS_CHECK_MSG(spec.world_size >= 1 &&
                     spec.world_size <= config_.max_ranks_per_job,
                 "job world_size must be in [1, "
                     << config_.max_ranks_per_job << "], got "
                     << spec.world_size << " (job '" << spec.name << "')");
  ACPS_CHECK_MSG(spec.world_size <= TotalRankCap(),
                 "job world_size " << spec.world_size
                                   << " exceeds the service rank budget "
                                   << TotalRankCap());
  const std::string opt_err = spec.session.Validate();
  ACPS_CHECK_MSG(opt_err.empty(), "invalid SessionOptions for job '"
                                      << spec.name << "': " << opt_err);

  std::lock_guard lock(service_mu_);
  JobRecord record;
  record.id = records_.size() + 1;
  record.name = spec.name;
  record.job_key = (spec.name.empty() ? std::string("job") : spec.name) + "-" +
                   std::to_string(record.id);
  record.world_size = spec.world_size;
  records_.push_back(record);
  // One dedicated runner per job: a job is a long-lived blocking tenant
  // (it spawns its own Session::Run workers), so running it on the shared
  // deterministic pool would deadlock the pool. The runners_ declaration
  // carries the raw-thread exemption.
  runners_.emplace_back(&TrainingService::RunnerLoop, this, record.id, spec,
                        std::move(body));
  return record.id;
}

void TrainingService::RunnerLoop(uint64_t id, JobSpec spec,
                                 std::function<void(comm::Session&)> body) {
  std::string job_key;
  {
    // Admission: wait until both budgets have room. Capacity is re-checked
    // on every release, so queued jobs drain as running ones finish.
    std::unique_lock lock(service_mu_);
    admission_cv_.wait(lock, [&] {
      return active_jobs_ < config_.max_concurrent_jobs &&
             active_ranks_ + spec.world_size <= TotalRankCap();
    });
    ++active_jobs_;
    active_ranks_ += spec.world_size;
    // Copy the key out: records_ may reallocate under concurrent Submits,
    // so no pointer into it survives past this lock.
    records_[id - 1].state = JobState::kRunning;
    job_key = records_[id - 1].job_key;
  }

  std::string error;
  comm::TrafficStats traffic;
  std::vector<int> crashed;
  try {
    comm::Session session(transport_, job_key, spec.world_size, spec.session);
    if (spec.fault_injector != nullptr)
      session.set_fault_injector(spec.fault_injector);
    body(session);
    traffic = session.total_stats();
    crashed = session.crashed_ranks();
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "job body threw a non-standard exception";
  }

  if (config_.metrics != nullptr) {
    // Export the session totals into the job's metric namespace so traffic
    // is inspectable after the session (and its counters) are gone.
    const std::string prefix = "job/" + job_key + "/";
    config_.metrics->counter(prefix + "traffic.bytes_sent")
        .Add(traffic.bytes_sent);
    config_.metrics->counter(prefix + "traffic.messages_sent")
        .Add(traffic.messages_sent);
    config_.metrics->counter(prefix + "traffic.collectives")
        .Add(traffic.collectives);
  }

  {
    std::lock_guard lock(service_mu_);
    JobRecord& record = records_[id - 1];
    record.state = error.empty() ? JobState::kSucceeded : JobState::kFailed;
    record.error = std::move(error);
    record.traffic = traffic;
    record.crashed_ranks = std::move(crashed);
    --active_jobs_;
    active_ranks_ -= spec.world_size;
    ++completed_;
  }
  admission_cv_.notify_all();
  done_cv_.notify_all();
}

JobRecord TrainingService::Wait(JobHandle handle) {
  std::unique_lock lock(service_mu_);
  ACPS_CHECK_MSG(handle >= 1 && handle <= records_.size(),
                 "unknown job handle " << handle);
  done_cv_.wait(lock, [&] {
    const JobState s = records_[handle - 1].state;
    return s == JobState::kSucceeded || s == JobState::kFailed;
  });
  return records_[handle - 1];
}

JobRecord TrainingService::RunJob(const JobSpec& spec,
                                  std::function<void(comm::Session&)> body) {
  return Wait(Submit(spec, std::move(body)));
}

TrainResult TrainingService::Train(const JobSpec& spec,
                                   const TrainConfig& train_config) {
  const AggregatorFactory factory = MakeAggregatorFactory(
      spec.session.compressor_spec, spec.session.fusion_bytes);
  TrainResult result;
  const JobRecord record = RunJob(spec, [&](comm::Session& session) {
    result = TrainDistributed(session, train_config, factory);
  });
  ACPS_CHECK_MSG(record.state == JobState::kSucceeded,
                 "training job '" << record.job_key
                                  << "' failed: " << record.error);
  return result;
}

JobRecord TrainingService::job(JobHandle handle) const {
  std::lock_guard lock(service_mu_);
  ACPS_CHECK_MSG(handle >= 1 && handle <= records_.size(),
                 "unknown job handle " << handle);
  return records_[handle - 1];
}

std::vector<JobRecord> TrainingService::jobs() const {
  std::lock_guard lock(service_mu_);
  return records_;
}

int TrainingService::active_jobs() const {
  std::lock_guard lock(service_mu_);
  return active_jobs_;
}

uint64_t TrainingService::submitted() const {
  std::lock_guard lock(service_mu_);
  return records_.size();
}

uint64_t TrainingService::completed() const {
  std::lock_guard lock(service_mu_);
  return completed_;
}

}  // namespace acps::core
