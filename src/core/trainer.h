// Data-parallel trainer: the Fig 6/7 convergence harness.
//
// Each worker thread builds an identical model replica (same seed), streams
// its shard of the synthetic dataset, computes gradients, aggregates them
// through the chosen GradientAggregator (real collectives), and applies
// momentum SGD with the paper's warmup + step-decay schedule. Rank 0
// evaluates test accuracy after every epoch.
#pragma once

#include <string>
#include <vector>

#include "comm/communicator.h"
#include "core/aggregators.h"
#include "dnn/dataset.h"
#include "dnn/optimizer.h"
#include "obs/metrics_registry.h"

namespace acps::core {

struct TrainConfig {
  std::string model = "vgg-mini";  // "vgg-mini" | "res-mini"
  dnn::SyntheticSpec data;
  int64_t train_samples = 2048;  // must be divisible by world*batch
  int64_t test_samples = 512;
  int epochs = 30;
  int batch_per_worker = 32;
  dnn::LrSchedule lr{0.1f, /*warmup_epochs=*/3, /*decay_epochs=*/{15, 23},
                     /*decay_factor=*/0.1f};
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  uint64_t model_seed = 42;
  uint64_t shuffle_seed = 7;
  // Compute-thread budget for the kernel pool (acps::par). TrainDistributed
  // itself never resizes the shared pool (DESIGN.md §7); single-tenant
  // drivers apply this via par::SetNumThreads(par::WorkerThreadBudget(...))
  // before running so pool + session workers never oversubscribe the
  // machine. Kernels are bitwise deterministic for any value (§6e).
  int compute_threads = 0;
  // If non-empty, the per-epoch history (epoch, train_loss, test_acc) is
  // written there as CSV when training finishes.
  std::string history_csv_path;
  // Optional metrics sink (not owned; may be null). When set and enabled,
  // the trainer records step_us / epoch_us histograms and a steps counter.
  // Span tracing is configured separately, on the Transport's Tracer.
  obs::MetricsRegistry* metrics = nullptr;

  // Returns "" when the config is trainable on `world_size` workers,
  // otherwise one descriptive message naming every violated constraint.
  // Called at TrainDistributed entry.
  [[nodiscard]] std::string Validate(int world_size) const;
};

struct EpochStat {
  int epoch = 0;
  double train_loss = 0.0;  // rank-0 mean loss over the epoch
  double test_acc = 0.0;    // rank-0 full-test accuracy
};

struct TrainResult {
  std::vector<EpochStat> history;
  double final_test_acc = 0.0;
  double best_test_acc = 0.0;
};

// Runs the experiment as one tenant of a shared transport (one worker per
// communicator rank; the factory is called once per worker, inside that
// worker's thread). Single-tenant callers open an anonymous Session on a
// private Transport and, if they care about oversubscription, size the
// kernel pool themselves via par::WorkerThreadBudget.
// Does NOT resize the global kernel pool — concurrent jobs share it and
// busy-pool callers fall back to inline execution (the thread-budget
// donation rule, DESIGN.md §7), so results stay bitwise identical at any
// tenant count and any pool size. Rank 0 also records per-step latency
// into the session's `job/<id>/step_ms` histogram for named jobs.
[[nodiscard]] TrainResult TrainDistributed(comm::Session& session,
                                           const TrainConfig& config,
                                           const AggregatorFactory& factory);

}  // namespace acps::core
