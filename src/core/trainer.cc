#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <numeric>

#include "dnn/loss.h"
#include "dnn/mini_models.h"
#include "metrics/csv.h"
#include "obs/kernel_metrics.h"
#include "obs/tracer.h"
#include "par/kernel_stats.h"
#include "par/lock_level.h"
#include "par/thread_pool.h"

namespace acps::core {

std::string TrainConfig::Validate(int world_size) const {
  std::string err;
  const auto add = [&err](const std::string& msg) {
    if (!err.empty()) err += "; ";
    err += msg;
  };
  if (world_size < 1)
    add("world_size must be >= 1, got " + std::to_string(world_size));
  if (model != "vgg-mini" && model != "res-mini")
    add("unknown model '" + model + "' (expected vgg-mini or res-mini)");
  if (train_samples <= 0)
    add("train_samples must be > 0, got " + std::to_string(train_samples));
  if (test_samples <= 0)
    add("test_samples must be > 0, got " + std::to_string(test_samples));
  if (epochs <= 0) add("epochs must be > 0, got " + std::to_string(epochs));
  if (batch_per_worker <= 0)
    add("batch_per_worker must be > 0, got " +
        std::to_string(batch_per_worker));
  if (world_size >= 1 && train_samples > 0 && batch_per_worker > 0 &&
      train_samples % (static_cast<int64_t>(world_size) * batch_per_worker) !=
          0) {
    add("train_samples (" + std::to_string(train_samples) +
        ") must divide evenly into world_size*batch_per_worker (" +
        std::to_string(world_size) + "*" + std::to_string(batch_per_worker) +
        ")");
  }
  if (lr.base_lr <= 0.0f) add("lr.base_lr must be > 0");
  if (momentum < 0.0f || momentum >= 1.0f)
    add("momentum must be in [0, 1), got " + std::to_string(momentum));
  if (weight_decay < 0.0f) add("weight_decay must be >= 0");
  if (compute_threads < 0 || compute_threads > par::kMaxThreads)
    add("compute_threads must be in [0, " + std::to_string(par::kMaxThreads) +
        "], got " + std::to_string(compute_threads));
  return err;
}

namespace {

// Shared training body. Validation and pool sizing happen in the public
// overloads; this runs the replicas on whichever session it is handed.
TrainResult TrainImpl(comm::Session& session, const TrainConfig& config,
                      const AggregatorFactory& factory) {
  // Per-job step latency goes to the session namespace only for named jobs;
  // the anonymous legacy session keeps the historical train.* names alone.
  const bool observe_session_steps = !session.job_id().empty();

  TrainResult result;
  ACPS_LOCK_LEVEL(95) result_mu;

  session.Run([&](comm::Communicator& comm) {
    const int rank = comm.rank();
    const int world = comm.world_size();
    obs::Tracer* tracer = comm.tracer();
    obs::MetricsRegistry* metrics = config.metrics;

    // Identical replicas + deterministic data on every worker.
    dnn::MiniModelSpec mspec;
    mspec.channels = config.data.channels;
    mspec.height = config.data.height;
    mspec.width = config.data.width;
    mspec.num_classes = config.data.num_classes;
    dnn::Network net = dnn::MiniByName(config.model, mspec);
    net.Init(config.model_seed);

    const dnn::Dataset train =
        dnn::MakeSynthetic(config.data, config.train_samples, /*salt=*/1);
    const dnn::Dataset test =
        dnn::MakeSynthetic(config.data, config.test_samples, /*salt=*/2);
    const dnn::Shard shard = dnn::ShardFor(train, rank, world);

    auto aggregator = factory(rank, world);
    dnn::SgdOptimizer opt(net.params(), config.lr, config.momentum,
                          config.weight_decay);

    const int64_t iters_per_epoch = shard.count / config.batch_per_worker;
    std::vector<int64_t> order(static_cast<size_t>(shard.count));
    std::iota(order.begin(), order.end(), shard.begin);

    Tensor batch_x;
    std::vector<int> batch_y;
    Tensor one_x({1, train.features});

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      obs::ScopedSpan epoch_span(tracer, "epoch", obs::kCatStep, rank,
                                 /*bytes=*/0, /*arg=*/epoch);
      // lint:allow(wall-clock) epoch timing feeds metrics only, never control
      const auto epoch_t0 = std::chrono::steady_clock::now();
      // Epoch-local shuffle of this worker's shard (deterministic).
      Rng shuffle = Rng(config.shuffle_seed)
                        .split(static_cast<uint64_t>(epoch) * 131 +
                               static_cast<uint64_t>(rank));
      for (size_t i = order.size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(shuffle.next_below(i));
        std::swap(order[i - 1], order[j]);
      }

      double loss_acc = 0.0;
      for (int64_t it = 0; it < iters_per_epoch; ++it) {
        obs::ScopedSpan step_span(tracer, "step", obs::kCatStep, rank,
                                  /*bytes=*/0, /*arg=*/it);
        // lint:allow(wall-clock) step timing feeds metrics only, never control
        const auto step_t0 = std::chrono::steady_clock::now();
        // Assemble the batch from the shuffled shard.
        batch_x = Tensor({config.batch_per_worker, train.features});
        batch_y.assign(static_cast<size_t>(config.batch_per_worker), 0);
        for (int64_t b = 0; b < config.batch_per_worker; ++b) {
          const int64_t src = order[static_cast<size_t>(
              it * config.batch_per_worker + b)];
          std::vector<int> one_y;
          train.Slice(src, 1, one_x, one_y);
          std::copy(one_x.data().begin(), one_x.data().end(),
                    batch_x.data().begin() + b * train.features);
          batch_y[static_cast<size_t>(b)] = one_y[0];
        }

        net.ZeroGrads();
        const Tensor logits = net.Forward(batch_x);
        const dnn::LossResult loss = dnn::SoftmaxCrossEntropy(logits, batch_y);
        loss_acc += loss.loss;
        (void)net.Backward(loss.grad_logits);

        auto params = net.params();
        aggregator->Aggregate(params, comm);

        const double frac_epoch =
            epoch + static_cast<double>(it) / std::max<int64_t>(1, iters_per_epoch);
        opt.Step(frac_epoch);

        if (rank == 0) {
          const double step_us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() -  // lint:allow(wall-clock)
                  step_t0)
                  .count();
          if (metrics) {
            metrics->counter("train.steps").Add();
            metrics->histogram("train.step_us").Observe(step_us);
            // Per-iteration kernel breakdown (calls/ms/gflops plus the
            // packed-panel traffic counters); the export is idempotent so
            // re-running it each step only refreshes the cumulative gauges.
            if (par::KernelStatsEnabled()) obs::ExportKernelStats(*metrics);
          }
          if (observe_session_steps) session.ObserveStepMs(step_us / 1000.0);
        }
      }

      // Rank 0 evaluates; everyone synchronizes so replicas stay aligned.
      if (rank == 0) {
        Tensor test_x;
        std::vector<int> test_y;
        test.Slice(0, test.size(), test_x, test_y);
        const Tensor logits = net.Forward(test_x);
        EpochStat stat;
        stat.epoch = epoch;
        stat.train_loss = loss_acc / std::max<int64_t>(1, iters_per_epoch);
        stat.test_acc = dnn::Accuracy(logits, test_y);
        std::lock_guard lock(result_mu);
        result.history.push_back(stat);
      }
      comm.barrier();
      if (metrics && rank == 0) {
        metrics->histogram("train.epoch_us")
            .Observe(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() -  // lint:allow(wall-clock)
                         epoch_t0)
                         .count());
      }
    }
  });

  if (!result.history.empty()) {
    result.final_test_acc = result.history.back().test_acc;
    for (const auto& s : result.history)
      result.best_test_acc = std::max(result.best_test_acc, s.test_acc);
  }
  if (!config.history_csv_path.empty()) {
    metrics::CsvWriter csv({"epoch", "train_loss", "test_acc"});
    for (const auto& s : result.history) {
      csv.AddRow({std::to_string(s.epoch), std::to_string(s.train_loss),
                  std::to_string(s.test_acc)});
    }
    ACPS_CHECK_MSG(csv.WriteFile(config.history_csv_path),
                   "failed to write history CSV to "
                       << config.history_csv_path);
  }
  return result;
}

}  // namespace

TrainResult TrainDistributed(comm::Session& session, const TrainConfig& config,
                             const AggregatorFactory& factory) {
  const std::string err = config.Validate(session.world_size());
  ACPS_CHECK_MSG(err.empty(), "invalid TrainConfig for job '"
                                  << session.job_id() << "': " << err);
  // Multi-tenant path: never resize the shared pool — tenants donate their
  // own worker threads via the pool's inline fallback instead (DESIGN.md
  // §7), which keeps results bitwise independent of the tenant count.
  return TrainImpl(session, config, factory);
}

}  // namespace acps::core
