#include "core/trainer.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "dnn/loss.h"
#include "dnn/mini_models.h"
#include "metrics/csv.h"

namespace acps::core {

TrainResult TrainDistributed(comm::ThreadGroup& group,
                             const TrainConfig& config,
                             const AggregatorFactory& factory) {
  ACPS_CHECK_MSG(config.train_samples %
                         (static_cast<int64_t>(group.world_size()) *
                          config.batch_per_worker) ==
                     0,
                 "train_samples must divide evenly into world*batch");

  TrainResult result;
  std::mutex result_mu;

  group.Run([&](comm::Communicator& comm) {
    const int rank = comm.rank();
    const int world = comm.world_size();

    // Identical replicas + deterministic data on every worker.
    dnn::MiniModelSpec mspec;
    mspec.channels = config.data.channels;
    mspec.height = config.data.height;
    mspec.width = config.data.width;
    mspec.num_classes = config.data.num_classes;
    dnn::Network net = dnn::MiniByName(config.model, mspec);
    net.Init(config.model_seed);

    const dnn::Dataset train =
        dnn::MakeSynthetic(config.data, config.train_samples, /*salt=*/1);
    const dnn::Dataset test =
        dnn::MakeSynthetic(config.data, config.test_samples, /*salt=*/2);
    const dnn::Shard shard = dnn::ShardFor(train, rank, world);

    auto aggregator = factory(rank, world);
    dnn::SgdOptimizer opt(net.params(), config.lr, config.momentum,
                          config.weight_decay);

    const int64_t iters_per_epoch = shard.count / config.batch_per_worker;
    std::vector<int64_t> order(static_cast<size_t>(shard.count));
    std::iota(order.begin(), order.end(), shard.begin);

    Tensor batch_x;
    std::vector<int> batch_y;
    Tensor one_x({1, train.features});

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
      // Epoch-local shuffle of this worker's shard (deterministic).
      Rng shuffle = Rng(config.shuffle_seed)
                        .split(static_cast<uint64_t>(epoch) * 131 +
                               static_cast<uint64_t>(rank));
      for (size_t i = order.size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(shuffle.next_below(i));
        std::swap(order[i - 1], order[j]);
      }

      double loss_acc = 0.0;
      for (int64_t it = 0; it < iters_per_epoch; ++it) {
        // Assemble the batch from the shuffled shard.
        batch_x = Tensor({config.batch_per_worker, train.features});
        batch_y.assign(static_cast<size_t>(config.batch_per_worker), 0);
        for (int64_t b = 0; b < config.batch_per_worker; ++b) {
          const int64_t src = order[static_cast<size_t>(
              it * config.batch_per_worker + b)];
          std::vector<int> one_y;
          train.Slice(src, 1, one_x, one_y);
          std::copy(one_x.data().begin(), one_x.data().end(),
                    batch_x.data().begin() + b * train.features);
          batch_y[static_cast<size_t>(b)] = one_y[0];
        }

        net.ZeroGrads();
        const Tensor logits = net.Forward(batch_x);
        const dnn::LossResult loss = dnn::SoftmaxCrossEntropy(logits, batch_y);
        loss_acc += loss.loss;
        (void)net.Backward(loss.grad_logits);

        auto params = net.params();
        aggregator->Aggregate(params, comm);

        const double frac_epoch =
            epoch + static_cast<double>(it) / std::max<int64_t>(1, iters_per_epoch);
        opt.Step(frac_epoch);
      }

      // Rank 0 evaluates; everyone synchronizes so replicas stay aligned.
      if (rank == 0) {
        Tensor test_x;
        std::vector<int> test_y;
        test.Slice(0, test.size(), test_x, test_y);
        const Tensor logits = net.Forward(test_x);
        EpochStat stat;
        stat.epoch = epoch;
        stat.train_loss = loss_acc / std::max<int64_t>(1, iters_per_epoch);
        stat.test_acc = dnn::Accuracy(logits, test_y);
        std::lock_guard lock(result_mu);
        result.history.push_back(stat);
      }
      comm.barrier();
    }
  });

  if (!result.history.empty()) {
    result.final_test_acc = result.history.back().test_acc;
    for (const auto& s : result.history)
      result.best_test_acc = std::max(result.best_test_acc, s.test_acc);
  }
  if (!config.history_csv_path.empty()) {
    metrics::CsvWriter csv({"epoch", "train_loss", "test_acc"});
    for (const auto& s : result.history) {
      csv.AddRow({std::to_string(s.epoch), std::to_string(s.train_loss),
                  std::to_string(s.test_acc)});
    }
    ACPS_CHECK_MSG(csv.WriteFile(config.history_csv_path),
                   "failed to write history CSV to "
                       << config.history_csv_path);
  }
  return result;
}

}  // namespace acps::core
