#include "core/aggregators.h"

#include <algorithm>

#include "fusion/fusion_buffer.h"
#include "par/parallel.h"
#include "tensor/matrix_ops.h"

namespace acps::core {
namespace {

// Params in gradient-ready (reverse) order.
std::vector<dnn::Param*> ReverseOrder(const std::vector<dnn::Param*>& params) {
  return {params.rbegin(), params.rend()};
}

// Flattens all gradients into one tensor (reverse order) — the "packed"
// layout Sign/Top-k use (§III-A).
Tensor PackGrads(const std::vector<dnn::Param*>& rev) {
  int64_t total = 0;
  for (auto* p : rev) total += p->grad.numel();
  Tensor flat({total});
  auto dst = flat.data();
  int64_t off = 0;
  for (auto* p : rev) {
    const auto src = p->grad.data();
    par::ParallelFor(par::kDefaultGrain, p->grad.numel(),
                     [&](int64_t begin, int64_t end) {
                       std::copy(src.begin() + begin, src.begin() + end,
                                 dst.begin() + off + begin);
                     });
    off += p->grad.numel();
  }
  return flat;
}

void UnpackGrads(const Tensor& flat, const std::vector<dnn::Param*>& rev) {
  const auto src = flat.data();
  int64_t off = 0;
  for (auto* p : rev) {
    auto dst = p->grad.data();
    par::ParallelFor(par::kDefaultGrain, p->grad.numel(),
                     [&](int64_t begin, int64_t end) {
                       std::copy(src.begin() + off + begin,
                                 src.begin() + off + end, dst.begin() + begin);
                     });
    off += p->grad.numel();
  }
  ACPS_CHECK(off == flat.numel());
}

// Bucketed mean all-reduce over a list of float spans (in order).
void BucketedAllReduceMean(const std::vector<std::span<float>>& spans,
                           int64_t buffer_bytes, comm::Communicator& comm) {
  std::vector<int64_t> bytes;
  bytes.reserve(spans.size());
  for (const auto& s : spans)
    bytes.push_back(static_cast<int64_t>(s.size() * sizeof(float)));
  const auto buckets = fusion::AssignBuckets(bytes, buffer_bytes);
  fusion::FusionBuffer buf;
  for (const auto& bucket : buckets) {
    buf.Reset();
    for (int i : bucket)
      (void)buf.AddSlot(static_cast<int64_t>(spans[static_cast<size_t>(i)].size()));
    for (size_t j = 0; j < bucket.size(); ++j)
      buf.Pack(static_cast<int>(j), spans[static_cast<size_t>(bucket[j])]);
    auto flat = buf.flat();
    comm.all_reduce(flat);
    // Mean over the ranks that actually contributed: sampled *after* the
    // all-reduce so a rank crash at its entry rescales this very bucket.
    Scal(1.0f / static_cast<float>(comm.alive_world_size()), flat);
    for (size_t j = 0; j < bucket.size(); ++j) {
      auto dst = spans[static_cast<size_t>(bucket[j])];
      buf.Unpack(static_cast<int>(j), dst);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------

void AllReduceAggregator::Aggregate(const std::vector<dnn::Param*>& params,
                                    comm::Communicator& comm) {
  const auto rev = ReverseOrder(params);
  std::vector<std::span<float>> spans;
  spans.reserve(rev.size());
  for (auto* p : rev) spans.push_back(p->grad.data());
  BucketedAllReduceMean(spans, buffer_bytes_, comm);
}

// ---------------------------------------------------------------------------

void SignAggregator::Aggregate(const std::vector<dnn::Param*>& params,
                               comm::Communicator& comm) {
  const auto rev = ReverseOrder(params);
  Tensor flat = PackGrads(rev);
  if (error_feedback_) ef_.AddInto(/*tensor_id=*/0, flat);

  encode_scratch_.resize(
      compressor_.EncodedBytes(static_cast<size_t>(flat.numel())));
  const std::span<std::byte> blob(encode_scratch_);
  compressor_.EncodeInto(flat.data(), blob);
  gather_scratch_.resize(blob.size() * static_cast<size_t>(comm.world_size()));
  const std::span<std::byte> gathered(gather_scratch_);
  ACPS_CHECK_MSG(gathered.size() ==
                     blob.size() * static_cast<size_t>(comm.world_size()),
                 "Sign gather scratch under-sized: " << gathered.size()
                     << " B for " << comm.world_size() << " blobs of "
                     << blob.size() << " B");
  comm.all_gather_bytes(blob, gathered);

  // Majority vote over the per-worker blobs. Crashed ranks' blocks are
  // zero-filled by the degraded all-gather; skip them so the vote is over
  // actual contributions only.
  std::vector<std::vector<std::byte>> blobs;
  blobs.reserve(static_cast<size_t>(comm.alive_world_size()));
  for (int r = 0; r < comm.world_size(); ++r) {
    if (!comm.is_alive(r)) continue;
    blobs.emplace_back(gathered.begin() + static_cast<ptrdiff_t>(
                                              blob.size() * static_cast<size_t>(r)),
                       gathered.begin() + static_cast<ptrdiff_t>(
                                              blob.size() *
                                              static_cast<size_t>(r + 1)));
  }
  Tensor voted({flat.numel()});
  compress::SignCompressor::MajorityVote(blobs, voted.data());

  if (error_feedback_) {
    // Residual against the *locally* compressed gradient, the standard
    // EF-SignSGD formulation.
    Tensor local({flat.numel()});
    compressor_.Decode(blob, local.data());
    ef_.Update(0, flat, local);
  }
  UnpackGrads(voted, rev);
}

// ---------------------------------------------------------------------------

void TopkAggregator::Aggregate(const std::vector<dnn::Param*>& params,
                               comm::Communicator& comm) {
  const auto rev = ReverseOrder(params);
  Tensor flat = PackGrads(rev);
  if (error_feedback_) ef_.AddInto(0, flat);

  encode_scratch_.resize(
      compressor_.EncodedBytes(static_cast<size_t>(flat.numel())));
  const std::span<std::byte> blob(encode_scratch_);
  compressor_.EncodeInto(flat.data(), blob);
  gather_scratch_.resize(blob.size() * static_cast<size_t>(comm.world_size()));
  const std::span<std::byte> gathered(gather_scratch_);
  comm.all_gather_bytes(blob, gathered);

  if (error_feedback_) {
    Tensor local({flat.numel()});
    compressor_.Decode(blob, local.data());
    ef_.Update(0, flat, local);
  }

  Tensor merged({flat.numel()});
  merged.zero();
  for (int r = 0; r < comm.world_size(); ++r) {
    if (!comm.is_alive(r)) continue;  // crashed ranks gathered as zeros
    ACPS_CHECK_MSG(blob.size() * static_cast<size_t>(r + 1) <=
                       gathered.size(),
                   "Top-k gather scratch under-sized: worker " << r
                       << "'s blob ends past " << gathered.size() << " B");
    const std::span<const std::byte> wblob(
        gathered.data() + blob.size() * static_cast<size_t>(r), blob.size());
    compress::TopkCompressor::AccumulateInto(wblob, merged.data(),
                                             comm.alive_world_size());
  }
  UnpackGrads(merged, rev);
}

// ---------------------------------------------------------------------------

void RandomkAggregator::Aggregate(const std::vector<dnn::Param*>& params,
                                  comm::Communicator& comm) {
  const auto rev = ReverseOrder(params);
  Tensor flat = PackGrads(rev);
  if (error_feedback_) ef_.AddInto(0, flat);

  // All workers share the compressor seed and step counter, so this blob's
  // coordinate set is identical everywhere: the VALUE payload is additive
  // and rides a plain ring all-reduce — no all-gather needed.
  encode_scratch_.resize(
      compressor_.EncodedBytes(static_cast<size_t>(flat.numel())));
  const std::span<std::byte> blob(encode_scratch_);
  compressor_.EncodeInto(flat.data(), blob);
  const auto indices = compress::RandomkCompressor::IndicesOf(blob);
  constexpr size_t kHeader = 3 * sizeof(uint64_t);  // seed, k, numel
  // The value payload is aliased in place inside the encode scratch and
  // handed straight to the ring all-reduce; an under-sized blob would let
  // the reduction scribble past the buffer instead of failing loudly.
  ACPS_CHECK_MSG(kHeader + indices.size() * sizeof(float) <= blob.size(),
                 "Random-k blob under-sized: " << blob.size()
                     << " B cannot hold k=" << indices.size()
                     << " values after the " << kHeader << " B header");
  auto values = std::span<float>(
      reinterpret_cast<float*>(blob.data() + kHeader), indices.size());
  comm.all_reduce(values);
  Scal(1.0f / static_cast<float>(comm.alive_world_size()), values);

  if (error_feedback_) {
    // Residual against the locally kept coordinates (standard EF).
    Tensor local({flat.numel()});
    local.zero();
    for (size_t j = 0; j < indices.size(); ++j)
      local.at(indices[j]) = flat.at(indices[j]);
    ef_.Update(0, flat, local);
  }

  Tensor merged({flat.numel()});
  compressor_.Decode(blob, merged.data());
  UnpackGrads(merged, rev);
}

// ---------------------------------------------------------------------------

void PowerSgdAggregator::Aggregate(const std::vector<dnn::Param*>& params,
                                   comm::Communicator& comm) {
  const auto rev = ReverseOrder(params);
  const compress::AllReduceMeanFn mean = [&](std::span<float> v) {
    comm.all_reduce(v);
    // Alive count sampled after the collective (crash-at-entry rescales).
    Scal(1.0f / static_cast<float>(comm.alive_world_size()), v);
  };

  std::vector<std::span<float>> dense;
  for (size_t i = 0; i < rev.size(); ++i) {
    dnn::Param* p = rev[i];
    if (p->is_matrix() &&
        compress::LowRankWorthwhile({p->matrix_rows, p->matrix_cols},
                                    powersgd_.config().rank)) {
      // NOTE the structure the paper criticizes: each matrix runs
      // compute-P -> all-reduce -> orthogonalize -> compute-Q -> all-reduce
      // inline, blocking everything behind it. State is keyed by the
      // FORWARD param index (shared convention with GradReducer).
      powersgd_.Step(static_cast<int64_t>(rev.size() - 1 - i), p->grad, mean);
    } else {
      dense.push_back(p->grad.data());
    }
  }
  BucketedAllReduceMean(dense, buffer_bytes_, comm);
}

// ---------------------------------------------------------------------------

void AcpSgdAggregator::Aggregate(const std::vector<dnn::Param*>& params,
                                 comm::Communicator& comm) {
  const auto rev = ReverseOrder(params);

  // Phase 1 (per tensor, gradient-ready order): all local compute — the
  // non-blocking property means every factor is known before any collective
  // has to finish.
  std::vector<int> lowrank_ids;
  std::vector<std::span<float>> factors;
  std::vector<int64_t> factor_bytes;
  std::vector<std::span<float>> dense;
  int64_t factor_total = 0, grad_total = 0;
  for (size_t i = 0; i < rev.size(); ++i) {
    dnn::Param* p = rev[i];
    grad_total += p->grad.numel() * static_cast<int64_t>(sizeof(float));
    if (p->is_matrix() &&
        compress::LowRankWorthwhile({p->matrix_rows, p->matrix_cols},
                                    acp_.config().rank)) {
      // State keyed by the FORWARD param index (same convention as
      // GradReducer, so both runtimes are interchangeable).
      auto factor =
          acp_.LocalStep(static_cast<int64_t>(rev.size() - 1 - i), p->grad);
      lowrank_ids.push_back(static_cast<int>(i));
      factors.push_back(factor);
      factor_bytes.push_back(
          static_cast<int64_t>(factor.size() * sizeof(float)));
      factor_total += factor_bytes.back();
    } else {
      dense.push_back(p->grad.data());
    }
  }

  // Phase 2: one fused all-reduce per factor bucket, bucket budget scaled
  // by the compression rate (paper §IV-B).
  const int64_t factor_budget =
      fusion::ScaledBufferBytes(buffer_bytes_, factor_total, grad_total);
  const auto buckets = fusion::AssignBuckets(factor_bytes, factor_budget);
  fusion::FusionBuffer buf;
  for (const auto& bucket : buckets) {
    buf.Reset();
    for (int j : bucket)
      (void)buf.AddSlot(
          static_cast<int64_t>(factors[static_cast<size_t>(j)].size()));
    for (size_t s = 0; s < bucket.size(); ++s)
      buf.Pack(static_cast<int>(s), factors[static_cast<size_t>(bucket[s])]);
    auto flat = buf.flat();
    comm.all_reduce(flat);
    Scal(1.0f / static_cast<float>(comm.alive_world_size()), flat);
    for (size_t s = 0; s < bucket.size(); ++s)
      buf.Unpack(static_cast<int>(s), factors[static_cast<size_t>(bucket[s])]);
    // Phase 3: decompress the tensors of this bucket.
    for (int j : bucket) {
      const int rev_idx = lowrank_ids[static_cast<size_t>(j)];
      acp_.Finish(static_cast<int64_t>(rev.size() - 1 -
                                       static_cast<size_t>(rev_idx)),
                  rev[static_cast<size_t>(rev_idx)]->grad);
    }
  }

  // Dense (vector-shaped) params ride plain bucketed all-reduce.
  BucketedAllReduceMean(dense, buffer_bytes_, comm);
}

// ---------------------------------------------------------------------------

AggregatorFactory MakeSsgdFactory() {
  return [](int, int) { return std::make_unique<AllReduceAggregator>(); };
}

AggregatorFactory MakePowerSgdFactory(int64_t rank) {
  return [rank](int, int) {
    compress::PowerSgdConfig cfg;
    cfg.rank = rank;
    return std::make_unique<PowerSgdAggregator>(cfg);
  };
}

AggregatorFactory MakeAcpSgdFactory(int64_t rank, bool error_feedback,
                                    bool reuse) {
  return [rank, error_feedback, reuse](int, int) {
    compress::AcpSgdConfig cfg;
    cfg.rank = rank;
    cfg.error_feedback = error_feedback;
    cfg.reuse = reuse;
    return std::make_unique<AcpSgdAggregator>(cfg);
  };
}

AggregatorFactory MakeAggregatorFactory(const std::string& spec,
                                        int64_t buffer_bytes) {
  ACPS_CHECK_MSG(buffer_bytes >= 0,
                 "buffer_bytes must be >= 0 (0 = default), got "
                     << buffer_bytes);
  const int64_t bytes =
      buffer_bytes == 0 ? fusion::kDefaultBufferBytes : buffer_bytes;

  // Split "name[:param]"; an empty param after ':' is rejected below by the
  // per-method parser.
  const size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string param =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  const auto int_param = [&](int64_t fallback) -> int64_t {
    if (param.empty()) return fallback;
    size_t used = 0;
    int64_t v = 0;
    try {
      v = std::stoll(param, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    ACPS_CHECK_MSG(used == param.size() && v >= 1,
                   "bad parameter in compressor spec '" << spec
                       << "': want a positive integer, got '" << param << "'");
    return v;
  };
  const auto ratio_param = [&](double fallback) -> double {
    if (param.empty()) return fallback;
    size_t used = 0;
    double v = 0;
    try {
      v = std::stod(param, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    ACPS_CHECK_MSG(used == param.size() && v > 0.0 && v <= 1.0,
                   "bad parameter in compressor spec '" << spec
                       << "': want a ratio in (0, 1], got '" << param << "'");
    return v;
  };

  if (name == "ssgd") {
    ACPS_CHECK_MSG(param.empty(),
                   "compressor spec 'ssgd' takes no parameter, got '" << spec
                                                                      << "'");
    return [bytes](int, int) {
      return std::make_unique<AllReduceAggregator>(bytes);
    };
  }
  if (name == "acpsgd") {
    const int64_t rank = int_param(4);
    return [rank, bytes](int, int) {
      compress::AcpSgdConfig cfg;
      cfg.rank = rank;
      return std::make_unique<AcpSgdAggregator>(cfg, bytes);
    };
  }
  if (name == "powersgd") {
    const int64_t rank = int_param(4);
    return [rank, bytes](int, int) {
      compress::PowerSgdConfig cfg;
      cfg.rank = rank;
      return std::make_unique<PowerSgdAggregator>(cfg, bytes);
    };
  }
  if (name == "sign") {
    ACPS_CHECK_MSG(param.empty(),
                   "compressor spec 'sign' takes no parameter, got '" << spec
                                                                      << "'");
    return [](int, int) { return std::make_unique<SignAggregator>(); };
  }
  if (name == "topk") {
    const double ratio = ratio_param(0.001);
    return [ratio](int, int) {
      return std::make_unique<TopkAggregator>(ratio);
    };
  }
  if (name == "randomk") {
    const double ratio = ratio_param(0.01);
    return [ratio](int, int) {
      return std::make_unique<RandomkAggregator>(ratio);
    };
  }
  ACPS_FAIL_MSG("unknown compressor spec '"
                << spec
                << "' (want ssgd | acpsgd[:rank] | powersgd[:rank] | sign | "
                   "topk[:ratio] | randomk[:ratio])");
}

}  // namespace acps::core
