#include "core/resync.h"

#include <cstring>

#include "tensor/check.h"

namespace acps::core {

void BroadcastFlat(comm::Communicator& comm,
                   const std::vector<std::span<float>>& bufs, int root) {
  size_t total = 0;
  for (const auto& b : bufs) total += b.size();
  std::vector<float> flat(total);
  size_t off = 0;
  for (const auto& b : bufs) {
    std::memcpy(flat.data() + off, b.data(), b.size() * sizeof(float));
    off += b.size();
  }
  comm.broadcast(flat, root);
  off = 0;
  for (const auto& b : bufs) {
    std::memcpy(b.data(), flat.data() + off, b.size() * sizeof(float));
    off += b.size();
  }
}

uint64_t BroadcastScalar(comm::Communicator& comm, uint64_t value, int root) {
  // Two floats hold the 64-bit value exactly (bit pattern, not rounding):
  // the broadcast wire is float-typed, so split into two 32-bit halves.
  static_assert(sizeof(float) == sizeof(uint32_t));
  uint32_t halves[2] = {static_cast<uint32_t>(value & 0xFFFFFFFFull),
                        static_cast<uint32_t>(value >> 32)};
  float wire[2];
  std::memcpy(wire, halves, sizeof(wire));
  comm.broadcast(std::span<float>(wire, 2), root);
  std::memcpy(halves, wire, sizeof(wire));
  return static_cast<uint64_t>(halves[0]) |
         (static_cast<uint64_t>(halves[1]) << 32);
}

}  // namespace acps::core
