#include "core/distributed_optimizer.h"

namespace acps::core {

DistributedOptimizer::DistributedOptimizer(
    std::vector<dnn::Param*> params,
    std::unique_ptr<GradientAggregator> aggregator, dnn::LrSchedule schedule,
    float momentum, float weight_decay)
    : params_(std::move(params)),
      aggregator_(std::move(aggregator)),
      sgd_(params_, schedule, momentum, weight_decay) {
  ACPS_CHECK_MSG(aggregator_ != nullptr, "aggregator must not be null");
}

void DistributedOptimizer::Step(comm::Communicator& comm, double epoch) {
  aggregator_->Aggregate(params_, comm);
  sgd_.Step(epoch);
}

}  // namespace acps::core
