#include "core/distributed_optimizer.h"

#include "check/sched_point.h"
#include "core/resync.h"

namespace acps::core {

DistributedOptimizer::DistributedOptimizer(
    std::vector<dnn::Param*> params,
    std::unique_ptr<GradientAggregator> aggregator, dnn::LrSchedule schedule,
    float momentum, float weight_decay)
    : params_(std::move(params)),
      aggregator_(std::move(aggregator)),
      sgd_(params_, schedule, momentum, weight_decay) {
  ACPS_CHECK_MSG(aggregator_ != nullptr, "aggregator must not be null");
}

void DistributedOptimizer::Step(comm::Communicator& comm, double epoch) {
  // Step boundary: schedule-explorable (the model checker perturbs here to
  // interleave whole training steps) and the step-granular fault site.
  check::SchedPoint(check::PointKind::kOptStep, comm.rank());
  aggregator_->Aggregate(params_, comm);
  sgd_.Step(epoch);
}

void DistributedOptimizer::ResyncFrom(comm::Communicator& comm, int donor) {
  std::vector<std::span<float>> bufs;
  bufs.reserve(params_.size() + sgd_.velocities().size());
  for (dnn::Param* p : params_) bufs.push_back(p->value.data());
  for (Tensor& v : sgd_.velocities()) bufs.push_back(v.data());
  BroadcastFlat(comm, bufs, donor);
}

}  // namespace acps::core
