#include "core/grad_reducer.h"

#include "check/sched_point.h"
#include "compress/powersgd.h"
#include "obs/tracer.h"

namespace acps::core {

GradReducer::GradReducer(std::vector<dnn::Param*> params,
                         compress::AcpSgdConfig config,
                         comm::Communicator* comm, int64_t buffer_bytes,
                         obs::MetricsRegistry* metrics)
    : params_(std::move(params)),
      acp_(config),  // AcpSgd's ctor runs AcpSgdConfig::Validate
      comm_(comm),
      buffer_bytes_(buffer_bytes),
      metrics_(metrics) {
  ACPS_CHECK_MSG(comm_ != nullptr, "communicator must not be null");
  ACPS_CHECK_MSG(buffer_bytes_ > 0,
                 "buffer_bytes must be > 0, got " << buffer_bytes_);
  lowrank_index_.assign(params_.size(), -1);
  dense_index_.assign(params_.size(), -1);

  // Classify in backward (gradient-ready) order so bucket plans follow the
  // order hooks fire in.
  int64_t grad_total = 0;
  std::vector<int64_t> dense_bytes;
  std::vector<int64_t> factor_bytes[2];  // [parity]
  for (size_t r = 0; r < params_.size(); ++r) {
    const size_t i = params_.size() - 1 - r;
    dnn::Param* p = params_[i];
    grad_total += p->grad.numel() * static_cast<int64_t>(sizeof(float));
    if (p->is_matrix() &&
        compress::LowRankWorthwhile({p->matrix_rows, p->matrix_cols},
                                    acp_.config().rank)) {
      lowrank_index_[i] = static_cast<int>(lowrank_of_.size());
      lowrank_of_.push_back(i);
      const int64_t rank = compress::EffectiveRank(
          p->matrix_rows, p->matrix_cols, acp_.config().rank);
      factor_bytes[1].push_back(p->matrix_rows * rank * 4);  // P step
      factor_bytes[0].push_back(p->matrix_cols * rank * 4);  // Q step
    } else {
      dense_index_[i] = static_cast<int>(dense_of_.size());
      dense_of_.push_back(i);
      dense_bytes.push_back(p->grad.numel() *
                            static_cast<int64_t>(sizeof(float)));
    }
  }

  // Bucket plans: scaled budget per parity (paper §IV-B), default budget
  // for dense tensors.
  factor_plans_.resize(2);
  for (int parity = 0; parity < 2; ++parity) {
    int64_t factor_total = 0;
    for (int64_t b : factor_bytes[parity]) factor_total += b;
    const int64_t budget = fusion::ScaledBufferBytes(
        buffer_bytes_, factor_total, grad_total);
    const auto buckets =
        fusion::AssignBuckets(factor_bytes[parity], budget);
    lowrank_bucket_of_[parity].assign(lowrank_of_.size(), -1);
    for (size_t b = 0; b < buckets.size(); ++b) {
      BucketPlan plan;
      plan.members = buckets[b];
      for (int m : buckets[b])
        lowrank_bucket_of_[parity][static_cast<size_t>(m)] =
            static_cast<int>(b);
      factor_plans_[static_cast<size_t>(parity)].push_back(std::move(plan));
    }
  }
  const auto dense_buckets = fusion::AssignBuckets(dense_bytes, buffer_bytes_);
  dense_bucket_of_.assign(dense_of_.size(), -1);
  for (size_t b = 0; b < dense_buckets.size(); ++b) {
    BucketPlan plan;
    plan.members = dense_buckets[b];
    for (int m : dense_buckets[b])
      dense_bucket_of_[static_cast<size_t>(m)] = static_cast<int>(b);
    dense_plan_.push_back(std::move(plan));
  }

  factors_.resize(lowrank_of_.size());
  ready_.assign(params_.size(), false);
}

void GradReducer::BeginStep() {
  ACPS_CHECK_MSG(!in_step_, "BeginStep called twice without FinishStep");
  in_step_ = true;
  remaining_ = params_.size();
  std::fill(ready_.begin(), ready_.end(), false);
  for (auto& f : factors_) f.reset();
  const int parity = static_cast<int>((steps_ + 1) % 2);
  for (auto& plan : factor_plans_[static_cast<size_t>(parity)])
    plan.pending = static_cast<int>(plan.members.size());
  for (auto& plan : dense_plan_)
    plan.pending = static_cast<int>(plan.members.size());
}

void GradReducer::OnGradReady(size_t param_index) {
  ACPS_CHECK_MSG(in_step_, "OnGradReady outside BeginStep/FinishStep");
  ACPS_CHECK_MSG(param_index < params_.size(), "param index out of range");
  ACPS_CHECK_MSG(!ready_[param_index],
                 "OnGradReady called twice for param " << param_index);
  ready_[param_index] = true;
  --remaining_;

  // WFBP hook-arrival point: lets the schedule explorer perturb the timing
  // between a gradient becoming ready and its bucket filling up.
  check::SchedPoint(check::PointKind::kWfbpReady, comm_->rank());

  obs::ScopedSpan ready_span(comm_->tracer(), "grad_ready", obs::kCatGrad,
                             comm_->rank(), /*bytes=*/0,
                             static_cast<int64_t>(param_index));

  const int parity = static_cast<int>((steps_ + 1) % 2);
  if (const int li = lowrank_index_[param_index]; li >= 0) {
    // Compress now (local, non-blocking); communicate when the bucket
    // completes.
    {
      obs::ScopedSpan compress_span(
          comm_->tracer(), "compress", obs::kCatCompress, comm_->rank(),
          params_[param_index]->grad.numel() * sizeof(float),
          static_cast<int64_t>(param_index));
      factors_[static_cast<size_t>(li)] = acp_.LocalStep(
          static_cast<int64_t>(param_index), params_[param_index]->grad);
    }
    const int bucket = lowrank_bucket_of_[parity][static_cast<size_t>(li)];
    BucketPlan& plan =
        factor_plans_[static_cast<size_t>(parity)][static_cast<size_t>(bucket)];
    if (--plan.pending == 0) IssueLowRankBucket(bucket);
  } else {
    const int di = dense_index_[param_index];
    const int bucket = dense_bucket_of_[static_cast<size_t>(di)];
    BucketPlan& plan = dense_plan_[static_cast<size_t>(bucket)];
    if (--plan.pending == 0) IssueDenseBucket(bucket);
  }
}

void GradReducer::IssueLowRankBucket(int bucket) {
  check::SchedPoint(check::PointKind::kBucketIssue, comm_->rank());
  const int parity = static_cast<int>((steps_ + 1) % 2);
  const BucketPlan& plan =
      factor_plans_[static_cast<size_t>(parity)][static_cast<size_t>(bucket)];
  fusion::FusionBuffer buf;
  for (int m : plan.members) {
    ACPS_CHECK_MSG(factors_[static_cast<size_t>(m)].has_value(),
                   "bucket " << bucket << " issued before factor " << m
                             << " was compressed — WFBP ordering bug");
    (void)buf.AddSlot(
        static_cast<int64_t>(factors_[static_cast<size_t>(m)]->size()));
  }
  for (size_t s = 0; s < plan.members.size(); ++s)
    buf.Pack(static_cast<int>(s),
             *factors_[static_cast<size_t>(plan.members[s])]);
  auto flat = buf.flat();
  const uint64_t bucket_bytes = flat.size() * sizeof(float);
  {
    obs::ScopedSpan issue_span(comm_->tracer(), "bucket_issue",
                               obs::kCatBucket, comm_->rank(), bucket_bytes,
                               bucket);
    comm_->all_reduce(flat);
  }
  // Mean over the contributing ranks, sampled after the collective so a
  // crash at this bucket's all-reduce entry rescales it immediately.
  const float inv = 1.0f / static_cast<float>(comm_->alive_world_size());
  for (float& v : flat) v *= inv;
  {
    obs::ScopedSpan decompress_span(comm_->tracer(), "decompress",
                                    obs::kCatCompress, comm_->rank(),
                                    bucket_bytes, bucket);
    for (size_t s = 0; s < plan.members.size(); ++s) {
      const int m = plan.members[s];
      buf.Unpack(static_cast<int>(s), *factors_[static_cast<size_t>(m)]);
      const size_t param_index = lowrank_of_[static_cast<size_t>(m)];
      acp_.Finish(static_cast<int64_t>(param_index),
                  params_[param_index]->grad);
    }
  }
  if (metrics_) {
    metrics_->counter("reducer.buckets_issued").Add();
    metrics_->counter("reducer.params_reduced").Add(plan.members.size());
    metrics_->histogram("reducer.bucket_bytes")
        .Observe(static_cast<double>(bucket_bytes));
  }
}

void GradReducer::IssueDenseBucket(int bucket) {
  check::SchedPoint(check::PointKind::kBucketIssue, comm_->rank());
  const BucketPlan& plan = dense_plan_[static_cast<size_t>(bucket)];
  fusion::FusionBuffer buf;
  for (int m : plan.members) {
    const size_t param_index = dense_of_[static_cast<size_t>(m)];
    (void)buf.AddSlot(params_[param_index]->grad.numel());
  }
  for (size_t s = 0; s < plan.members.size(); ++s) {
    const size_t param_index =
        dense_of_[static_cast<size_t>(plan.members[s])];
    buf.Pack(static_cast<int>(s), params_[param_index]->grad.data());
  }
  auto flat = buf.flat();
  const uint64_t bucket_bytes = flat.size() * sizeof(float);
  {
    obs::ScopedSpan issue_span(comm_->tracer(), "bucket_issue",
                               obs::kCatBucket, comm_->rank(), bucket_bytes,
                               bucket);
    comm_->all_reduce(flat);
  }
  const float inv = 1.0f / static_cast<float>(comm_->alive_world_size());
  for (float& v : flat) v *= inv;
  for (size_t s = 0; s < plan.members.size(); ++s) {
    const size_t param_index =
        dense_of_[static_cast<size_t>(plan.members[s])];
    buf.Unpack(static_cast<int>(s), params_[param_index]->grad.data());
  }
  if (metrics_) {
    metrics_->counter("reducer.buckets_issued").Add();
    metrics_->counter("reducer.params_reduced").Add(plan.members.size());
    metrics_->histogram("reducer.bucket_bytes")
        .Observe(static_cast<double>(bucket_bytes));
  }
}

void GradReducer::FinishStep() {
  ACPS_CHECK_MSG(in_step_, "FinishStep without BeginStep");
  ACPS_CHECK_MSG(remaining_ == 0, remaining_
                                      << " params never reported ready — "
                                         "did every hook fire?");
  in_step_ = false;
  ++steps_;
}

}  // namespace acps::core
