// Multi-tenant training service (DESIGN.md §7): the front door through
// which independent training jobs share one process.
//
// The service owns the shared substrate — one comm::Transport and the
// process-wide kernel pool — and hands each submitted job its own
// comm::Session: a private channel block, envelope salt, obs namespace
// (`job/<key>/...`) and, optionally, a tenant-scoped fault injector. Jobs
// are admitted against two budgets (max concurrent jobs, max total ranks);
// a submission beyond the per-job rank budget is rejected at Submit, one
// beyond the concurrency budget queues until capacity frees up. Every
// completed job leaves a JobRecord in the registry: terminal state, error,
// traffic, crashed ranks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>  // job runner threads, see Submit
#include <vector>

#include "comm/session.h"
#include "comm/transport.h"
#include "core/trainer.h"
#include "par/lock_level.h"

namespace acps::core {

// Capacity and attachments for one TrainingService.
struct ServiceConfig {
  // Jobs running (not queued) at once. Admission is FIFO-fair only in the
  // sense that a queued job re-checks capacity on every release; tests that
  // need a strict order should submit within capacity.
  int max_concurrent_jobs = 8;
  // Largest world_size a single job may request; bigger submissions are
  // rejected at Submit (they could never be admitted).
  int max_ranks_per_job = 16;
  // Cap on the sum of world sizes across running jobs. 0 resolves to
  // max_concurrent_jobs * max_ranks_per_job (i.e. no extra constraint).
  int max_total_ranks = 0;
  // Barrier watchdog for every job's session (see TransportOptions).
  int64_t barrier_timeout_ms = comm::kCollectiveTimeoutFromEnv;
  // Observability attachments (not owned; may be null; must outlive the
  // service). Each job records under its own `job/<key>/` namespace.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  // Returns "" when valid, otherwise one message naming every violation.
  [[nodiscard]] std::string Validate() const;
};

// What a tenant submits.
struct JobSpec {
  // Human-readable name; the registry key becomes "<name>-<id>"
  // ("job-<id>" when empty), so two submissions of the same name never
  // collide in metrics or envelopes.
  std::string name;
  int world_size = 2;
  // Session-level collective configuration (algorithm, fusion budget,
  // compressor spec) — validated at admission, not per call.
  comm::SessionOptions session;
  // Tenant-scoped fault injector (not owned; may be null; must outlive the
  // job). Installed on this job's session only — it never observes or
  // perturbs another tenant.
  fault::FaultInjector* fault_injector = nullptr;
};

enum class JobState { kPending, kRunning, kSucceeded, kFailed };
[[nodiscard]] const char* ToString(JobState state) noexcept;

// Registry entry for one submission; snapshots returned by jobs()/job()/
// Wait are copies, safe to read without holding the service lock.
struct JobRecord {
  uint64_t id = 0;        // 1-based submission index
  std::string job_key;    // "<name>-<id>", the session's job id
  std::string name;
  int world_size = 0;
  JobState state = JobState::kPending;
  std::string error;      // non-empty iff state == kFailed
  comm::TrafficStats traffic;      // session total from the job's last Run
  std::vector<int> crashed_ranks;  // fail-stopped ranks, in crash order
};

using JobHandle = uint64_t;

// The service. Thread-safe: jobs may be submitted and awaited from any
// thread; the destructor joins every job runner.
class TrainingService {
 public:
  explicit TrainingService(ServiceConfig config = {});
  ~TrainingService();

  TrainingService(const TrainingService&) = delete;
  TrainingService& operator=(const TrainingService&) = delete;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  // The shared substrate (exposed for capacity introspection and for
  // adjacent harnesses that open bare sessions on the service's transport).
  [[nodiscard]] comm::Transport& transport() noexcept { return transport_; }

  // Validates the spec and enqueues the job; returns its handle. The body
  // runs on a dedicated runner thread once admission grants capacity; it is
  // handed the job's Session and drives it (typically one or more
  // Session::Run calls, or core::TrainDistributed). Throws acps::Error on an
  // invalid spec or a world_size beyond max_ranks_per_job. A body exception
  // fails the job (JobRecord::error) instead of propagating.
  JobHandle Submit(const JobSpec& spec,
                   std::function<void(comm::Session&)> body);

  // Blocks until the job reaches a terminal state; returns its record.
  JobRecord Wait(JobHandle handle);

  // Submit + Wait. Job failure is reported in the record, not thrown.
  JobRecord RunJob(const JobSpec& spec,
                   std::function<void(comm::Session&)> body);

  // Runs a full training job (core::TrainDistributed with an aggregator
  // built from spec.session.compressor_spec / fusion_bytes) as one tenant.
  // Throws acps::Error if the job failed.
  TrainResult Train(const JobSpec& spec, const TrainConfig& train_config);

  // --- Registry ------------------------------------------------------------
  [[nodiscard]] JobRecord job(JobHandle handle) const;
  [[nodiscard]] std::vector<JobRecord> jobs() const;
  [[nodiscard]] int active_jobs() const;
  [[nodiscard]] uint64_t submitted() const;
  [[nodiscard]] uint64_t completed() const;

 private:
  // Resolved max_total_ranks (never 0 after construction).
  [[nodiscard]] int TotalRankCap() const noexcept;
  void RunnerLoop(uint64_t id, JobSpec spec,
                  std::function<void(comm::Session&)> body);

  ServiceConfig config_;
  comm::Transport transport_;

  // Level 10: the outermost lock in the hierarchy — held across admission
  // waits and registry reads, never while calling into the transport.
  mutable ACPS_LOCK_LEVEL(10) service_mu_;
  par::ConditionVariable admission_cv_;  // capacity freed
  par::ConditionVariable done_cv_;       // some job reached a terminal state
  std::vector<JobRecord> records_;        // index = id - 1
  // One runner per job: jobs are long-lived, blocking tenants (each owns
  // worker threads of its own via Session::Run), not parallel-for work
  // items — the deterministic pool is the wrong tool.
  std::vector<std::thread> runners_;  // lint:allow(raw-thread)
  int active_jobs_ = 0;
  int active_ranks_ = 0;
  uint64_t completed_ = 0;
};

}  // namespace acps::core
