#include "core/policy.h"

#include "compress/powersgd.h"

namespace acps::core {
namespace {

// ACP-SGD per-step wire bytes for one tensor under low-rank: the average
// of the P and Q parities.
int64_t FactorBytes(const models::LayerSpec& l, int64_t rank) {
  const int64_t r = compress::EffectiveRank(l.matrix_rows, l.matrix_cols,
                                            rank);
  return (l.matrix_rows + l.matrix_cols) * r * 4 / 2;
}

// Per-tensor ACP compression compute (compress + reconstruct).
double CompressSeconds(const models::LayerSpec& l, int64_t rank,
                       const sim::GpuModel& gpu) {
  const int64_t r = compress::EffectiveRank(l.matrix_rows, l.matrix_cols,
                                            rank);
  return gpu.AcpCompressCost(l.matrix_rows, l.matrix_cols, r).total() +
         gpu.ReconstructCost(l.matrix_rows, l.matrix_cols, r).total();
}

bool Eligible(const models::LayerSpec& l, int64_t rank) {
  return l.compressible &&
         compress::LowRankWorthwhile({l.matrix_rows, l.matrix_cols}, rank);
}

}  // namespace

PolicyCost EvaluatePolicy(const models::ModelSpec& model,
                          const CompressionPolicy& policy,
                          const comm::CostModel& net,
                          const sim::GpuModel& gpu, const PolicyConfig& cfg) {
  ACPS_CHECK_MSG(policy.per_tensor.size() == model.layers.size(),
                 "policy size mismatch: " << policy.per_tensor.size()
                                          << " vs " << model.layers.size());
  PolicyCost cost;
  int64_t wire_bytes = 0;
  for (size_t i = 0; i < model.layers.size(); ++i) {
    const auto& l = model.layers[i];
    if (policy.per_tensor[i] == TensorMethod::kLowRank) {
      ACPS_CHECK_MSG(Eligible(l, policy.rank),
                     "policy marks non-compressible tensor " << l.name
                                                             << " low-rank");
      wire_bytes += FactorBytes(l, policy.rank);
      cost.compress_s += CompressSeconds(l, policy.rank, gpu);
    } else {
      wire_bytes += l.bytes();
    }
  }
  // One α per bucket + the β term over the total volume.
  cost.comm_s =
      cfg.num_buckets * net.AllReduceStartup() +
      (net.AllReduce(static_cast<double>(wire_bytes)) - net.AllReduceStartup());
  cost.exposed_s = cost.compress_s + cfg.exposure * cost.comm_s;
  return cost;
}

CompressionPolicy DecidePolicy(const models::ModelSpec& model,
                               const comm::CostModel& net,
                               const sim::GpuModel& gpu,
                               const PolicyConfig& cfg) {
  CompressionPolicy policy;
  policy.rank = cfg.rank;
  policy.per_tensor.assign(model.layers.size(), TensorMethod::kDense);

  // Marginal per-byte wire cost of the ring all-reduce (the β term).
  const double p = net.world_size();
  const double rate =
      p <= 1 ? 0.0
             : 2.0 * (p - 1.0) / p / net.net().beta_bytes_per_s;

  for (size_t i = 0; i < model.layers.size(); ++i) {
    const auto& l = model.layers[i];
    if (!Eligible(l, cfg.rank)) continue;
    const double delta_bytes =
        static_cast<double>(l.bytes() - FactorBytes(l, cfg.rank));
    const double comm_saving = cfg.exposure * delta_bytes * rate;
    const double compute_cost = CompressSeconds(l, cfg.rank, gpu);
    if (comm_saving > compute_cost)
      policy.per_tensor[i] = TensorMethod::kLowRank;
  }
  return policy;
}

CompressionPolicy AllDense(const models::ModelSpec& model, int64_t rank) {
  CompressionPolicy policy;
  policy.rank = rank;
  policy.per_tensor.assign(model.layers.size(), TensorMethod::kDense);
  return policy;
}

CompressionPolicy AllLowRank(const models::ModelSpec& model, int64_t rank) {
  CompressionPolicy policy;
  policy.rank = rank;
  policy.per_tensor.assign(model.layers.size(), TensorMethod::kDense);
  for (size_t i = 0; i < model.layers.size(); ++i) {
    if (Eligible(model.layers[i], rank))
      policy.per_tensor[i] = TensorMethod::kLowRank;
  }
  return policy;
}

}  // namespace acps::core
