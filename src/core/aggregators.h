// Gradient aggregators: the per-worker runtime that turns local gradients
// into globally averaged gradients, one implementation per method studied in
// the paper. All run against the real in-process collectives (acps::comm),
// so the math — bucketing, majority voting, factor aggregation, error
// feedback — is executed end to end, not simulated.
//
// Contract: Aggregate() is collective — every worker of the group must call
// it with structurally identical parameter lists (same order, shapes), and
// afterwards every param.grad holds the aggregated (mean) gradient the
// optimizer should apply. Params are processed in REVERSE list order,
// mirroring the gradient-ready order of back-propagation.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.h"
#include "compress/acpsgd.h"
#include "compress/error_feedback.h"
#include "compress/powersgd.h"
#include "compress/randomk.h"
#include "compress/sign.h"
#include "compress/topk.h"
#include "dnn/layer.h"
#include "fusion/bucket_assigner.h"

namespace acps::core {

class GradientAggregator {
 public:
  virtual ~GradientAggregator() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void Aggregate(const std::vector<dnn::Param*>& params,
                         comm::Communicator& comm) = 0;
};

// One aggregator per worker; the factory is invoked inside each worker
// thread so per-worker state (EF residuals, low-rank factors) stays private.
using AggregatorFactory =
    std::function<std::unique_ptr<GradientAggregator>(int rank, int world)>;

// --- S-SGD: bucketed ring all-reduce (the well-optimized baseline). -------
class AllReduceAggregator final : public GradientAggregator {
 public:
  explicit AllReduceAggregator(
      int64_t buffer_bytes = fusion::kDefaultBufferBytes)
      : buffer_bytes_(buffer_bytes) {}
  [[nodiscard]] std::string name() const override { return "ssgd"; }
  void Aggregate(const std::vector<dnn::Param*>& params,
                 comm::Communicator& comm) override;

 private:
  int64_t buffer_bytes_;
};

// --- Sign-SGD with majority vote over all-gather. --------------------------
class SignAggregator final : public GradientAggregator {
 public:
  explicit SignAggregator(bool error_feedback = true)
      : error_feedback_(error_feedback) {}
  [[nodiscard]] std::string name() const override { return "signsgd"; }
  void Aggregate(const std::vector<dnn::Param*>& params,
                 comm::Communicator& comm) override;

 private:
  bool error_feedback_;
  compress::SignCompressor compressor_;
  compress::ErrorFeedback ef_;
  // Encode/gather scratch reused across steps (EncodeInto writes in place,
  // so steady-state Aggregate() does no blob allocation).
  std::vector<std::byte> encode_scratch_;
  std::vector<std::byte> gather_scratch_;
};

// --- Top-k SGD over all-gather + scatter-add. ------------------------------
class TopkAggregator final : public GradientAggregator {
 public:
  explicit TopkAggregator(double ratio = 0.001, bool error_feedback = true,
                          compress::TopkSelection selection =
                              compress::TopkSelection::kSampledThreshold)
      : error_feedback_(error_feedback), compressor_(ratio, selection) {}
  [[nodiscard]] std::string name() const override { return "topk"; }
  void Aggregate(const std::vector<dnn::Param*>& params,
                 comm::Communicator& comm) override;

 private:
  bool error_feedback_;
  compress::TopkCompressor compressor_;
  compress::ErrorFeedback ef_;
  std::vector<std::byte> encode_scratch_;  // reused across steps
  std::vector<std::byte> gather_scratch_;
};

// --- Random-k: the additive sparsifier. ------------------------------------
// With a shared per-step seed, every worker selects the SAME coordinates,
// so the compressed value vectors are additive and can ride a ring
// all-reduce — the paper's §III-C "additive communication" property that
// Top-k lacks. The flip side (why the paper prefers Top-k for accuracy):
// random coordinates carry less of the gradient energy.
class RandomkAggregator final : public GradientAggregator {
 public:
  explicit RandomkAggregator(double ratio = 0.01, bool error_feedback = true,
                             uint64_t seed = 0x5EEDull)
      : error_feedback_(error_feedback), compressor_(ratio, seed) {}
  [[nodiscard]] std::string name() const override { return "randomk"; }
  void Aggregate(const std::vector<dnn::Param*>& params,
                 comm::Communicator& comm) override;

 private:
  bool error_feedback_;
  compress::RandomkCompressor compressor_;
  compress::ErrorFeedback ef_;
  std::vector<std::byte> encode_scratch_;  // reused across steps
};

// --- Power-SGD (Algorithm 1): blocking two-phase low-rank aggregation. -----
class PowerSgdAggregator final : public GradientAggregator {
 public:
  explicit PowerSgdAggregator(compress::PowerSgdConfig config,
                              int64_t buffer_bytes = fusion::kDefaultBufferBytes)
      : powersgd_(config), buffer_bytes_(buffer_bytes) {}
  [[nodiscard]] std::string name() const override { return "powersgd"; }
  void Aggregate(const std::vector<dnn::Param*>& params,
                 comm::Communicator& comm) override;

 private:
  compress::PowerSgd powersgd_;
  int64_t buffer_bytes_;
};

// --- ACP-SGD (Algorithm 2): the paper's contribution. ----------------------
// Per step: one local compression per matrix (non-blocking), factors fused
// into buckets sized by the paper's scaled-buffer rule, ONE all-reduce per
// bucket, then decompression. Vector params ride dense buckets like S-SGD.
class AcpSgdAggregator final : public GradientAggregator {
 public:
  explicit AcpSgdAggregator(compress::AcpSgdConfig config,
                            int64_t buffer_bytes = fusion::kDefaultBufferBytes)
      : acp_(config), buffer_bytes_(buffer_bytes) {}
  [[nodiscard]] std::string name() const override { return "acpsgd"; }
  void Aggregate(const std::vector<dnn::Param*>& params,
                 comm::Communicator& comm) override;

  [[nodiscard]] const compress::AcpSgd& algorithm() const { return acp_; }

 private:
  compress::AcpSgd acp_;
  int64_t buffer_bytes_;
};

// Ready-made factories for the methods compared in Fig 6/7.
[[nodiscard]] AggregatorFactory MakeSsgdFactory();
[[nodiscard]] AggregatorFactory MakePowerSgdFactory(int64_t rank);
[[nodiscard]] AggregatorFactory MakeAcpSgdFactory(int64_t rank,
                                                  bool error_feedback = true,
                                                  bool reuse = true);

// Spec-string factory, the bridge from comm::SessionOptions::compressor_spec
// to an AggregatorFactory. Grammar: "ssgd", "acpsgd[:rank]" (default 4),
// "powersgd[:rank]" (default 4), "sign", "topk[:ratio]" (default 0.001),
// "randomk[:ratio]" (default 0.01). `buffer_bytes` is the fusion budget for
// the bucketed methods; 0 means fusion::kDefaultBufferBytes. Throws
// acps::Error on an unknown name or an out-of-range parameter.
[[nodiscard]] AggregatorFactory MakeAggregatorFactory(const std::string& spec,
                                                      int64_t buffer_bytes = 0);

}  // namespace acps::core
