// Hook-driven ACP-SGD gradient reducer — the WFBP runtime of §IV-C.
//
// The paper's prototype registers a hook per learnable tensor; when
// back-propagation produces a gradient the hook compresses it and copies
// the factor into a fusion bucket, and a bucket's all-reduce is issued the
// moment its last member is ready (wait-free back-propagation + tensor
// fusion). AcpSgdAggregator (aggregators.h) performs the same math as a
// single post-backward call; GradReducer exposes the per-tensor hook flow
// so communication genuinely starts mid-backward:
//
//   GradReducer reducer(net.params(), config, comm);
//   reducer.BeginStep();
//   net.Backward(grad, [&](size_t i) { reducer.OnGradReady(i); });
//   reducer.FinishStep();   // waits for in-flight buckets + decompresses
//
// Bucket plans (which tensors fuse) are fixed at construction — separately
// for the P parity, the Q parity (factor sizes differ!) and the dense
// tensors — so every worker issues the identical collective sequence.
#pragma once

#include <optional>

#include "comm/communicator.h"
#include "compress/acpsgd.h"
#include "fusion/bucket_assigner.h"
#include "fusion/fusion_buffer.h"
#include "dnn/layer.h"
#include "obs/metrics_registry.h"

namespace acps::core {

class GradReducer {
 public:
  // `params` in forward order (hooks fire in reverse during backward, but
  // any order is accepted). The communicator must outlive the reducer and
  // all workers must construct reducers with identical params/config.
  // `config` is validated here (AcpSgdConfig::Validate) and `buffer_bytes`
  // must be positive. If the communicator's ThreadGroup carries an enabled
  // obs::Tracer, every hook/compress/bucket/decompress emits a span; if
  // `metrics` is non-null (not owned), bucket counters/histograms are
  // recorded there.
  GradReducer(std::vector<dnn::Param*> params, compress::AcpSgdConfig config,
              comm::Communicator* comm,
              int64_t buffer_bytes = fusion::kDefaultBufferBytes,
              obs::MetricsRegistry* metrics = nullptr);

  // Starts a new step; all tensors become "not ready".
  void BeginStep();

  // Marks params[param_index].grad as produced: compresses it (or queues
  // it densely) and, if this completes a bucket, issues that bucket's
  // all-reduce immediately and decompresses its tensors.
  void OnGradReady(size_t param_index);

  // Verifies every tensor was reduced this step. After this, every
  // param->grad holds the aggregated gradient.
  void FinishStep();

  [[nodiscard]] uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] size_t num_lowrank() const noexcept { return lowrank_of_.size(); }

 private:
  struct BucketPlan {
    std::vector<int> members;  // indices into the class (lowrank or dense)
    int pending = 0;
  };

  void IssueLowRankBucket(int bucket);
  void IssueDenseBucket(int bucket);

  std::vector<dnn::Param*> params_;        // forward order
  compress::AcpSgd acp_;
  comm::Communicator* comm_;
  int64_t buffer_bytes_;
  obs::MetricsRegistry* metrics_;  // optional, not owned

  // Classification (fixed): per param, its index within its class or -1.
  std::vector<int> lowrank_index_;  // params_ index -> lowrank ordinal
  std::vector<int> dense_index_;    // params_ index -> dense ordinal
  std::vector<size_t> lowrank_of_;  // lowrank ordinal -> params_ index
  std::vector<size_t> dense_of_;    // dense ordinal -> params_ index

  // Bucket plans per parity (0 = Q step, 1 = P step) and for dense params.
  std::vector<std::vector<BucketPlan>> factor_plans_;  // [parity][bucket]
  std::vector<BucketPlan> dense_plan_;
  std::vector<int> lowrank_bucket_of_[2];  // per parity
  std::vector<int> dense_bucket_of_;

  // Per-step state.
  uint64_t steps_ = 0;
  bool in_step_ = false;
  std::vector<std::optional<std::span<float>>> factors_;  // by lowrank ord.
  std::vector<bool> ready_;
  size_t remaining_ = 0;
};

}  // namespace acps::core
