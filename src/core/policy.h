// Per-tensor compression policy selection (ByteComp-lite; paper ref [37]).
//
// The paper's related work notes that whether compression pays off depends
// on the tensor and the hardware: ByteComp searches a per-tensor strategy.
// This module implements the decision analytically for the ACP-SGD family:
// for each tensor, low-rank compression is chosen iff its marginal
// communication saving (α-β model, discounted by how much of the
// communication is actually exposed) exceeds its compression compute cost:
//
//   choose LOW-RANK  iff  exposure · Δbytes · rate  >  t_compress(tensor)
//
// where Δbytes = dense wire bytes − factor wire bytes, rate = the ring
// all-reduce per-byte cost 2(p−1)/(p·β), and exposure ∈ [0,1] models how
// much communication WFBP fails to hide (1 = fully exposed, e.g. 1GbE
// with a fat model; ~0 = fully hidden, e.g. 100Gb InfiniBand).
//
// The rule recovers the paper's global observations as special cases: on
// slow networks everything compressible flips to low-rank; on fast
// networks compression is mostly skipped.
#pragma once

#include <vector>

#include "comm/cost_model.h"
#include "models/layer_spec.h"
#include "sim/gpu_model.h"

namespace acps::core {

enum class TensorMethod { kDense, kLowRank };

struct CompressionPolicy {
  // One entry per model layer (forward order).
  std::vector<TensorMethod> per_tensor;
  int64_t rank = 4;

  [[nodiscard]] size_t num_lowrank() const {
    size_t n = 0;
    for (TensorMethod m : per_tensor)
      if (m == TensorMethod::kLowRank) ++n;
    return n;
  }
};

struct PolicyCost {
  double compress_s = 0.0;   // total compression + decompression compute
  double comm_s = 0.0;       // total wire time (α amortized over buckets)
  double exposed_s = 0.0;    // exposure-weighted comm + compress overhead
};

struct PolicyConfig {
  int64_t rank = 4;
  // Fraction of communication time that back-propagation cannot hide.
  double exposure = 1.0;
  // Approximate number of fused buckets (amortizes the α term).
  int num_buckets = 4;
};

// Analytic cost of running `policy` for one iteration (overheads only; the
// FF&BP time is policy-independent).
[[nodiscard]] PolicyCost EvaluatePolicy(const models::ModelSpec& model,
                                        const CompressionPolicy& policy,
                                        const comm::CostModel& net,
                                        const sim::GpuModel& gpu,
                                        const PolicyConfig& cfg);

// The per-tensor decision rule above, applied to every layer. Vector
// params and non-worthwhile matrices always stay dense.
[[nodiscard]] CompressionPolicy DecidePolicy(const models::ModelSpec& model,
                                             const comm::CostModel& net,
                                             const sim::GpuModel& gpu,
                                             const PolicyConfig& cfg);

// Uniform policies for comparison.
[[nodiscard]] CompressionPolicy AllDense(const models::ModelSpec& model,
                                         int64_t rank);
[[nodiscard]] CompressionPolicy AllLowRank(const models::ModelSpec& model,
                                           int64_t rank);

}  // namespace acps::core
