// State resynchronization for elastic membership (DESIGN.md "Elastic
// membership"): when a rank (re)joins at a membership commit, it holds no
// model, optimizer, or compression state — a donor (by convention the
// lowest-ranked survivor of the committed view) broadcasts its replicas so
// the joiner resumes bitwise in lockstep with the group.
//
// Everything here is a plain collective over the committed view: every
// alive rank — donors, bystanders, and joiners alike — must call the same
// resync function at the same step boundary, exactly like any other
// collective. The broadcast payload is one flat float buffer regardless of
// tensor count, so the whole resync is a single fingerprint-checked
// collective per call.
#pragma once

#include <span>
#include <vector>

#include "comm/communicator.h"
#include "tensor/tensor.h"

namespace acps::core {

// Broadcasts the concatenation of `bufs` from `root` and scatters it back
// into each span. Sizes must match across ranks (same model, same
// optimizer layout) — the collective contract checker enforces it in
// checked builds. Collective: every alive rank must call it.
void BroadcastFlat(comm::Communicator& comm,
                   const std::vector<std::span<float>>& bufs, int root);

// Broadcasts a single uint64 (step counter, epoch, sample index) from
// `root`; returns the donor's value on every rank. Collective.
[[nodiscard]] uint64_t BroadcastScalar(comm::Communicator& comm,
                                       uint64_t value, int root);

}  // namespace acps::core
