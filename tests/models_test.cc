// Validates the model zoo against the paper's Table I and the standard
// published parameter counts.
#include <gtest/gtest.h>

#include "models/model_zoo.h"

namespace acps::models {
namespace {

struct ParamCountCase {
  const char* name;
  double millions;
  double tolerance;  // relative
};

class ParamCountTest : public ::testing::TestWithParam<ParamCountCase> {};

TEST_P(ParamCountTest, MatchesPublishedCount) {
  const auto& c = GetParam();
  const ModelSpec spec = ByName(c.name);
  const double actual = static_cast<double>(spec.total_params()) / 1e6;
  EXPECT_NEAR(actual, c.millions, c.millions * c.tolerance) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableI, ParamCountTest,
    ::testing::Values(ParamCountCase{"resnet50", 25.6, 0.01},
                      ParamCountCase{"resnet152", 60.2, 0.01},
                      ParamCountCase{"bert-base", 110.1, 0.02},
                      ParamCountCase{"bert-large", 336.2, 0.02},
                      ParamCountCase{"resnet18", 11.7, 0.01},
                      ParamCountCase{"vgg16", 138.4, 0.01}));

struct RatioCase {
  const char* name;
  int64_t rank;
  double paper_ratio;
  double tolerance;  // relative
};

class CompressionRatioTest : public ::testing::TestWithParam<RatioCase> {};

TEST_P(CompressionRatioTest, MatchesTableI) {
  const auto& c = GetParam();
  const ModelSpec spec = ByName(c.name);
  EXPECT_NEAR(spec.LowRankCompressionRatio(c.rank), c.paper_ratio,
              c.paper_ratio * c.tolerance)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableI, CompressionRatioTest,
    ::testing::Values(RatioCase{"resnet50", 4, 67.0, 0.10},
                      RatioCase{"resnet152", 4, 53.0, 0.10},
                      RatioCase{"bert-base", 32, 16.0, 0.15},
                      RatioCase{"bert-large", 32, 21.0, 0.10}));

TEST(ModelZoo, ByNameThrowsOnUnknown) {
  EXPECT_THROW((void)ByName("alexnet"), Error);
}

TEST(ModelZoo, BackwardOrderIsReversed) {
  const ModelSpec spec = ResNet50();
  const auto bwd = spec.backward_order();
  ASSERT_EQ(bwd.size(), spec.layers.size());
  EXPECT_EQ(bwd.front()->name, spec.layers.back().name);
  EXPECT_EQ(bwd.back()->name, spec.layers.front().name);
}

TEST(ModelZoo, AllLayersWellFormed) {
  for (const char* name :
       {"resnet18", "resnet50", "resnet152", "vgg16", "bert-base",
        "bert-large"}) {
    const ModelSpec spec = ByName(name);
    EXPECT_GT(spec.num_tensors(), 10u) << name;
    for (const auto& l : spec.layers) {
      EXPECT_GT(l.numel(), 0) << l.name;
      EXPECT_GE(l.fwd_flops_per_sample, 0.0) << l.name;
      if (l.compressible) {
        EXPECT_EQ(l.matrix_rows * l.matrix_cols, l.numel()) << l.name;
        EXPECT_GT(l.matrix_rows, 1) << l.name;
        EXPECT_GT(l.matrix_cols, 1) << l.name;
      }
    }
  }
}

TEST(ModelZoo, ResNet50FlopsMatchPublished) {
  // ResNet-50 forward ≈ 4.1 GMACs = 8.2 GFLOPs per 224x224 image.
  const ModelSpec spec = ResNet50();
  EXPECT_NEAR(spec.total_fwd_flops_per_sample() / 1e9, 8.2, 0.5);
}

TEST(ModelZoo, Vgg16FlopsMatchPublished) {
  // VGG-16 forward ≈ 15.5 GMACs = 31 GFLOPs.
  EXPECT_NEAR(Vgg16().total_fwd_flops_per_sample() / 1e9, 31.0, 1.5);
}

TEST(ModelZoo, BertFlopsScaleWithSeqLen) {
  const double f64 = BertBase(64).total_fwd_flops_per_sample();
  const double f128 = BertBase(128).total_fwd_flops_per_sample();
  EXPECT_GT(f128, 1.9 * f64);
  EXPECT_LT(f128, 2.3 * f64);  // slight super-linearity from attention
}

TEST(ModelZoo, FootprintPSmallerThanQForConvNets) {
  // Conv matrices are [cout, cin·k²] with cout < cin·k² mostly, so the P
  // factors are smaller than Q — Fig 5's observation (P: 0.63MB vs
  // Q: 1.04MB for ResNet-50 at rank 4).
  const auto fp = ResNet50().FootprintAtRank(4);
  EXPECT_LT(fp.p_elements, fp.q_elements);
  EXPECT_GT(fp.dense_elements, 0);
}

TEST(ModelZoo, HigherRankLowerRatio) {
  const ModelSpec spec = BertLarge();
  double prev = 1e18;
  for (int64_t r : {4, 32, 128, 256}) {
    const double ratio = spec.LowRankCompressionRatio(r);
    EXPECT_LT(ratio, prev);
    prev = ratio;
  }
  // Rank 256 on BERT-Large ≈ 5.4x (paper §V-D; this is the per-step
  // ACP-SGD ratio — one factor per iteration).
  EXPECT_NEAR(spec.AcpCompressionRatio(256), 5.4, 1.0);
}

TEST(ModelZoo, PaperEvalSetMatchesPaperSettings) {
  const auto eval = PaperEvalSet();
  ASSERT_EQ(eval.size(), 4u);
  EXPECT_EQ(eval[0].name, "resnet50");
  EXPECT_EQ(eval[0].batch_size, 64);
  EXPECT_EQ(eval[0].powersgd_rank, 4);
  EXPECT_EQ(eval[3].name, "bert-large");
  EXPECT_EQ(eval[3].batch_size, 8);
  EXPECT_EQ(eval[3].powersgd_rank, 32);
}

TEST(ModelZoo, BertLargeSizeInMB) {
  // Paper §V-D: BERT-Large has 1282.6MB of parameters.
  EXPECT_NEAR(static_cast<double>(BertLarge().total_bytes()) / 1e6 * 1e6 /
                  (1024.0 * 1024.0),
              1282.6, 30.0);
}

}  // namespace
}  // namespace acps::models
