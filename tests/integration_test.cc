// Cross-module integration and property sweeps:
//  * every (model x method) simulator combination satisfies basic sanity,
//  * the simulated speedup claims hold as parameterized properties,
//  * distributed training is bit-deterministic across repeated runs,
//  * compressors round-trip across a grid of sizes,
//  * the AllReduceAggregator is numerically equivalent to a hand-computed
//    mean for arbitrary parameter mixes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "compress/blockwise_sign.h"
#include "compress/fp16.h"
#include "compress/qsgd.h"
#include "compress/sign.h"
#include "compress/terngrad.h"
#include "compress/topk.h"
#include "core/trainer.h"
#include "models/model_zoo.h"
#include "sim/pipeline.h"
#include "tensor/rng.h"

namespace acps {
namespace {

// -------------------------------------------- simulator sweep properties --

struct SweepCase {
  const char* model;
  sim::Method method;
};

class SimSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SimSweepTest, BasicSanity) {
  const auto& c = GetParam();
  const auto model = models::ByName(c.model);
  sim::SimConfig cfg;
  cfg.method = c.method;
  cfg.rank = 8;
  const sim::Breakdown b = sim::SimulateIterationAvg(model, cfg);
  EXPECT_GT(b.total_s, 0.0);
  EXPECT_GT(b.fwdbwd_s, 0.0);
  EXPECT_GE(b.compress_s, 0.0);
  EXPECT_GE(b.comm_exposed_s, 0.0);
  // An iteration can never beat pure compute.
  EXPECT_GE(b.total_s, b.fwdbwd_s - 1e-9);
  // Nor exceed the fully serialized sum by much (scheduling overhead 0).
  EXPECT_LE(b.total_s, b.fwdbwd_s + b.compress_s + b.comm_exposed_s + 1e-9);
}

TEST_P(SimSweepTest, MoreWorkersNeverFaster) {
  const auto& c = GetParam();
  const auto model = models::ByName(c.model);
  double prev = 0.0;
  for (int p : {1, 4, 16, 64}) {
    sim::SimConfig cfg;
    cfg.method = c.method;
    cfg.rank = 8;
    cfg.world_size = p;
    const double t = sim::SimulateIterationAvg(model, cfg).total_s;
    EXPECT_GE(t, prev - 1e-9) << "p=" << p;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimSweepTest,
    ::testing::Values(
        SweepCase{"resnet18", sim::Method::kSSGD},
        SweepCase{"resnet50", sim::Method::kSignSGD},
        SweepCase{"resnet50", sim::Method::kTopkSGD},
        SweepCase{"resnet152", sim::Method::kPowerSGD},
        SweepCase{"bert-base", sim::Method::kPowerSGDStar},
        SweepCase{"bert-base", sim::Method::kACPSGD},
        SweepCase{"bert-large", sim::Method::kACPSGD},
        SweepCase{"vgg16", sim::Method::kACPSGD}));

// -------------------------------------------- compressor round-trip grid --

struct RoundTripCase {
  const char* name;
  size_t numel;
};

class CompressorGridTest : public ::testing::TestWithParam<RoundTripCase> {};

std::unique_ptr<compress::Compressor> MakeByName(const std::string& name) {
  if (name == "sign") return std::make_unique<compress::SignCompressor>();
  if (name == "blockwise")
    return std::make_unique<compress::BlockwiseSignCompressor>(64);
  if (name == "topk") return std::make_unique<compress::TopkCompressor>(0.1);
  if (name == "qsgd") return std::make_unique<compress::QsgdCompressor>(16);
  if (name == "terngrad")
    return std::make_unique<compress::TernGradCompressor>();
  if (name == "fp16") return std::make_unique<compress::Fp16Compressor>();
  ACPS_CHECK_MSG(false, "unknown compressor " << name);
}

TEST_P(CompressorGridTest, EncodedSizeExactAndDecodeSafe) {
  const auto& c = GetParam();
  auto compressor = MakeByName(c.name);
  Rng rng(c.numel + 17);
  std::vector<float> g(c.numel);
  for (auto& v : g) v = rng.normal();
  const auto blob = compressor->Encode(g);
  EXPECT_EQ(blob.size(), compressor->EncodedBytes(c.numel)) << c.name;
  std::vector<float> out(c.numel, -777.0f);
  compressor->Decode(blob, out);
  for (float v : out) {
    EXPECT_TRUE(std::isfinite(v)) << c.name;
    EXPECT_NE(v, -777.0f) << c.name << ": element left unwritten";
  }
}

std::vector<RoundTripCase> GridCases() {
  std::vector<RoundTripCase> cases;
  for (const char* name :
       {"sign", "blockwise", "topk", "qsgd", "terngrad", "fp16"}) {
    for (size_t n : {1u, 63u, 64u, 65u, 1000u}) cases.push_back({name, n});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, CompressorGridTest,
                         ::testing::ValuesIn(GridCases()));

// ------------------------------------------------ training determinism ----

TEST(Integration, DistributedTrainingIsDeterministic) {
  core::TrainConfig cfg;
  cfg.model = "res-mini";
  cfg.train_samples = 256;
  cfg.test_samples = 64;
  cfg.epochs = 2;
  cfg.batch_per_worker = 32;
  cfg.lr = dnn::LrSchedule{0.05f, 1, {}, 1.0f};

  auto run = [&] {
    comm::Transport group_transport;
    comm::Session group(group_transport, "", 2);
    return core::TrainDistributed(group, cfg, core::MakeAcpSgdFactory(2));
  };
  const core::TrainResult a = run();
  const core::TrainResult b = run();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].train_loss, b.history[i].train_loss) << i;
    EXPECT_DOUBLE_EQ(a.history[i].test_acc, b.history[i].test_acc) << i;
  }
}

TEST(Integration, SsgdMatchesSingleWorkerWithBigBatch) {
  // 2 workers x batch 16 with exact averaging == 1 worker x batch 32 (same
  // samples): losses must match closely (fp reduction order differs).
  core::TrainConfig two;
  two.model = "vgg-mini";
  two.train_samples = 256;
  two.test_samples = 64;
  two.epochs = 2;
  two.batch_per_worker = 16;
  two.lr = dnn::LrSchedule{0.05f, 0, {}, 1.0f};
  two.shuffle_seed = 0;  // note: shards shuffle independently, so align by
                         // disabling momentum-free single step comparisons
  core::TrainConfig one = two;
  one.batch_per_worker = 32;

  comm::Transport g2_transport;

  comm::Session g2(g2_transport, "", 2);
  const auto r2 = core::TrainDistributed(g2, two, core::MakeSsgdFactory());
  comm::Transport g1_transport;
  comm::Session g1(g1_transport, "", 1);
  const auto r1 = core::TrainDistributed(g1, one, core::MakeSsgdFactory());
  // Different batch composition (shuffling) => only statistical agreement.
  EXPECT_NEAR(r2.final_test_acc, r1.final_test_acc, 0.25);
}

// ------------------------------------------------- aggregator property ----

TEST(Integration, AllReduceAggregatorMatchesManualMeanAnyShapes) {
  const int p = 3;
  // A mix of many small params to exercise bucket boundaries.
  const std::vector<Shape> shapes = {{3, 5}, {7}, {2, 2}, {1}, {11, 3}, {4}};
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    std::vector<dnn::Param> params(shapes.size());
    std::vector<dnn::Param*> ptrs;
    Rng rng(400 + static_cast<uint64_t>(comm.rank()));
    for (size_t i = 0; i < shapes.size(); ++i) {
      params[i].name = "p" + std::to_string(i);
      params[i].value = Tensor(shapes[i]);
      params[i].grad = Tensor(shapes[i]);
      rng.fill_normal(params[i].grad);
      ptrs.push_back(&params[i]);
    }
    // Manual expectation: regenerate all workers' grads and average.
    std::vector<Tensor> expect;
    for (size_t i = 0; i < shapes.size(); ++i)
      expect.push_back(Tensor(shapes[i]));
    for (int r = 0; r < p; ++r) {
      Rng wr(400 + static_cast<uint64_t>(r));
      for (size_t i = 0; i < shapes.size(); ++i) {
        Tensor g(shapes[i]);
        wr.fill_normal(g);
        expect[i].add_(g);
      }
    }
    for (auto& e : expect) e.scale_(1.0f / p);

    core::AllReduceAggregator agg(/*buffer_bytes=*/64);  // tiny buckets
    agg.Aggregate(ptrs, comm);
    for (size_t i = 0; i < shapes.size(); ++i) {
      if (!params[i].grad.all_close(expect[i], 1e-4f)) ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace acps
