// Tests for the stateful low-rank algorithms: Power-SGD and ACP-SGD.
#include <gtest/gtest.h>

#include <atomic>

#include "comm/communicator.h"
#include "compress/acpsgd.h"
#include "compress/powersgd.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"

namespace acps::compress {
namespace {

const AllReduceMeanFn kIdentity = [](std::span<float>) {};

Tensor RandomMatrix(int64_t n, int64_t m, uint64_t seed) {
  Rng rng(seed);
  Tensor t({n, m});
  rng.fill_normal(t);
  return t;
}

float RelErr(const Tensor& approx, const Tensor& target) {
  Tensor d = approx.clone();
  d.sub_(target);
  return d.norm2() / target.norm2();
}

// ------------------------------------------------------------ helpers -----

TEST(LowRankWorthwhile, Logic) {
  EXPECT_TRUE(LowRankWorthwhile({64, 128}, 4));
  EXPECT_FALSE(LowRankWorthwhile({64}, 4));          // vector
  EXPECT_FALSE(LowRankWorthwhile({1, 128}, 4));      // degenerate
  EXPECT_FALSE(LowRankWorthwhile({2, 2}, 4));        // r(n+m) >= nm
  EXPECT_FALSE(LowRankWorthwhile({8, 8}, 8));        // no savings at full rank
}

TEST(EffectiveRank, Clamped) {
  EXPECT_EQ(EffectiveRank(100, 200, 4), 4);
  EXPECT_EQ(EffectiveRank(3, 200, 4), 3);
  EXPECT_EQ(EffectiveRank(100, 2, 4), 2);
}

// ------------------------------------------------------------ PowerSGD ----

TEST(PowerSgd, ExactOnLowRankMatrix) {
  Tensor u = RandomMatrix(20, 3, 1);
  Tensor v = RandomMatrix(15, 3, 2);
  const Tensor target = MatMulTB(u, v);  // rank 3

  PowerSgdConfig cfg;
  cfg.rank = 3;
  cfg.error_feedback = false;
  PowerSgd psgd(cfg);
  // Repeated steps on the same matrix converge to it (power iteration).
  Tensor m = target.clone();
  for (int t = 0; t < 6; ++t) {
    m = target.clone();
    psgd.Step(0, m, kIdentity);
  }
  EXPECT_LT(RelErr(m, target), 1e-2f);
}

TEST(PowerSgd, QueryReuseImprovesApproximation) {
  const Tensor target = RandomMatrix(32, 32, 3);
  PowerSgdConfig cfg;
  cfg.rank = 4;
  cfg.error_feedback = false;
  PowerSgd psgd(cfg);
  Tensor first = target.clone();
  psgd.Step(0, first, kIdentity);
  const float err_first = RelErr(first, target);
  for (int t = 0; t < 10; ++t) {
    Tensor m = target.clone();
    psgd.Step(0, m, kIdentity);
    if (t == 9) {
      EXPECT_LT(RelErr(m, target), err_first);
    }
  }
}

TEST(PowerSgd, ErrorFeedbackAveragesToTrueGradient) {
  const Tensor target = RandomMatrix(24, 24, 4);
  PowerSgdConfig cfg;
  cfg.rank = 2;
  cfg.error_feedback = true;
  PowerSgd psgd(cfg);
  Tensor sum({24, 24});
  const int steps = 60;
  for (int t = 0; t < steps; ++t) {
    Tensor m = target.clone();
    psgd.Step(0, m, kIdentity);
    sum.add_(m);
  }
  sum.scale_(1.0f / steps);
  EXPECT_LT(RelErr(sum, target), 0.15f);
}

TEST(PowerSgd, ShapeChangeThrows) {
  PowerSgd psgd(PowerSgdConfig{});
  Tensor a = RandomMatrix(8, 8, 5);
  psgd.Step(0, a, kIdentity);
  Tensor b = RandomMatrix(9, 8, 6);
  EXPECT_THROW(psgd.Step(0, b, kIdentity), Error);
}

TEST(PowerSgd, CommElements) {
  PowerSgdConfig cfg;
  cfg.rank = 4;
  PowerSgd psgd(cfg);
  EXPECT_EQ(psgd.CommElements(100, 50), 4 * 150);
  EXPECT_EQ(psgd.CommElements(2, 50), 2 * 52);  // clamped rank
}

// -------------------------------------------------------------- ACP-SGD ---

TEST(AcpSgd, AlternatesParityAndHalvesTraffic) {
  AcpSgdConfig cfg;
  cfg.rank = 4;
  AcpSgd acp(cfg);
  // Odd step communicates P (n*r), even step Q (m*r).
  EXPECT_EQ(acp.CommElements(100, 60, 1), 400);
  EXPECT_EQ(acp.CommElements(100, 60, 2), 240);
  const Tensor m = RandomMatrix(100, 60, 7);
  Tensor g = m.clone();
  EXPECT_EQ(acp.step_of(0), 0u);
  auto f1 = acp.LocalStep(0, g);
  EXPECT_EQ(static_cast<int64_t>(f1.size()), 100 * 4);  // P step
  acp.Finish(0, g);
  EXPECT_EQ(acp.step_of(0), 1u);
  auto f2 = acp.LocalStep(0, g);
  EXPECT_EQ(static_cast<int64_t>(f2.size()), 60 * 4);  // Q step
  acp.Finish(0, g);

  // Average traffic is half of Power-SGD's r(n+m).
  const int64_t avg2 =
      acp.CommElements(100, 60, 1) + acp.CommElements(100, 60, 2);
  EXPECT_EQ(avg2, 4 * 160);
}

TEST(AcpSgd, DoubleLocalStepThrows) {
  AcpSgd acp(AcpSgdConfig{});
  Tensor g = RandomMatrix(10, 10, 8);
  (void)acp.LocalStep(0, g);
  EXPECT_THROW((void)acp.LocalStep(0, g), Error);
}

TEST(AcpSgd, FinishWithoutLocalStepThrows) {
  AcpSgd acp(AcpSgdConfig{});
  Tensor g = RandomMatrix(10, 10, 8);
  EXPECT_THROW(acp.Finish(0, g), Error);
}

TEST(AcpSgd, ConvergesToLowRankMatrix) {
  Tensor u = RandomMatrix(20, 2, 11);
  Tensor v = RandomMatrix(16, 2, 12);
  const Tensor target = MatMulTB(u, v);  // rank 2
  AcpSgdConfig cfg;
  cfg.rank = 2;
  cfg.error_feedback = false;
  AcpSgd acp(cfg);
  Tensor m;
  for (int t = 0; t < 10; ++t) {
    m = target.clone();
    acp.Step(0, m, kIdentity);
  }
  EXPECT_LT(RelErr(m, target), 1e-2f);
}

TEST(AcpSgd, ErrorFeedbackAveragesToTrueGradient) {
  const Tensor target = RandomMatrix(24, 18, 13);
  AcpSgdConfig cfg;
  cfg.rank = 4;
  AcpSgd acp(cfg);
  Tensor sum({24, 18});
  const int steps = 80;
  for (int t = 0; t < steps; ++t) {
    Tensor m = target.clone();
    acp.Step(0, m, kIdentity);
    sum.add_(m);
  }
  sum.scale_(1.0f / steps);
  EXPECT_LT(RelErr(sum, target), 0.2f);
}

TEST(AcpSgd, WithoutErrorFeedbackIsBiased) {
  // Without EF the long-run average keeps missing the out-of-subspace
  // component — Fig 7's premise.
  const Tensor target = RandomMatrix(24, 18, 14);
  AcpSgdConfig with_cfg, without_cfg;
  with_cfg.rank = without_cfg.rank = 2;
  without_cfg.error_feedback = false;
  AcpSgd with_ef(with_cfg), without_ef(without_cfg);
  Tensor sum_with({24, 18}), sum_without({24, 18});
  const int steps = 80;
  for (int t = 0; t < steps; ++t) {
    Tensor a = target.clone();
    with_ef.Step(0, a, kIdentity);
    sum_with.add_(a);
    Tensor b = target.clone();
    without_ef.Step(0, b, kIdentity);
    sum_without.add_(b);
  }
  sum_with.scale_(1.0f / steps);
  sum_without.scale_(1.0f / steps);
  EXPECT_LT(RelErr(sum_with, target), RelErr(sum_without, target));
}

TEST(AcpSgd, ReuseBeatsFreshRandomBasis) {
  const Tensor target = RandomMatrix(32, 32, 15);
  AcpSgdConfig reuse_cfg, fresh_cfg;
  reuse_cfg.rank = fresh_cfg.rank = 4;
  reuse_cfg.error_feedback = fresh_cfg.error_feedback = false;
  fresh_cfg.reuse = false;
  AcpSgd reuse(reuse_cfg), fresh(fresh_cfg);
  float err_reuse = 0.0f, err_fresh = 0.0f;
  for (int t = 0; t < 12; ++t) {
    Tensor a = target.clone();
    reuse.Step(0, a, kIdentity);
    err_reuse = RelErr(a, target);
    Tensor b = target.clone();
    fresh.Step(0, b, kIdentity);
    err_fresh = RelErr(b, target);
  }
  EXPECT_LT(err_reuse, err_fresh);
}

TEST(AcpSgd, WorkersStayConsistent) {
  // All workers must produce bit-identical aggregated gradients: identical
  // seeds for the factors, mean-all-reduce for the rest.
  const int p = 4;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::vector<Tensor> results(static_cast<size_t>(p));
  group.Run([&](comm::Communicator& comm) {
    AcpSgdConfig cfg;
    cfg.rank = 3;
    AcpSgd acp(cfg);
    const AllReduceMeanFn mean = [&](std::span<float> v) {
      comm.all_reduce(v);
      for (float& x : v) x /= static_cast<float>(p);
    };
    // Each worker has a different gradient (different seed).
    for (int t = 0; t < 5; ++t) {
      Tensor g =
          RandomMatrix(16, 12, 100 + static_cast<uint64_t>(comm.rank()) + t);
      acp.Step(0, g, mean);
      if (t == 4) results[static_cast<size_t>(comm.rank())] = std::move(g);
    }
  });
  for (int r = 1; r < p; ++r)
    EXPECT_TRUE(results[static_cast<size_t>(r)].all_close(results[0], 1e-6f))
        << "worker " << r;
}

TEST(AcpSgd, AggregatedEqualsCompressedMeanGradient) {
  // With identical per-worker state, the aggregated output must equal the
  // single-process compression of the mean gradient.
  const int p = 4;
  const int64_t n = 12, m = 10;
  std::vector<Tensor> grads;
  Tensor mean_grad({n, m});
  for (int r = 0; r < p; ++r) {
    grads.push_back(RandomMatrix(n, m, 200 + static_cast<uint64_t>(r)));
    mean_grad.add_(grads.back());
  }
  mean_grad.scale_(1.0f / p);

  // Reference: single process compressing the mean gradient directly,
  // with EF disabled (EF state differs per worker by construction).
  AcpSgdConfig cfg;
  cfg.rank = 2;
  cfg.error_feedback = false;
  AcpSgd ref(cfg);
  Tensor expect = mean_grad.clone();
  ref.Step(0, expect, kIdentity);

  comm::Transport group_transport;

  comm::Session group(group_transport, "", p);
  std::vector<Tensor> results(static_cast<size_t>(p));
  group.Run([&](comm::Communicator& comm) {
    AcpSgd acp(cfg);
    const AllReduceMeanFn mean = [&](std::span<float> v) {
      comm.all_reduce(v);
      for (float& x : v) x /= static_cast<float>(p);
    };
    Tensor g = grads[static_cast<size_t>(comm.rank())].clone();
    acp.Step(0, g, mean);
    results[static_cast<size_t>(comm.rank())] = std::move(g);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_TRUE(results[static_cast<size_t>(r)].all_close(expect, 1e-3f));
}

TEST(AcpSgd, RejectsNonMatrix) {
  AcpSgd acp(AcpSgdConfig{});
  Tensor v({16});
  EXPECT_THROW((void)acp.LocalStep(0, v), Error);
}

}  // namespace
}  // namespace acps::compress
