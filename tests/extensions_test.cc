// Tests for the extension modules: hierarchical collectives + topology
// model, buffer auto-tuning, blockwise 1-bit compression, trace export,
// CSV output.
#include <gtest/gtest.h>

#include <atomic>

#include "comm/hierarchical.h"
#include "comm/topology.h"
#include "compress/blockwise_sign.h"
#include "compress/sign.h"
#include "metrics/csv.h"
#include "models/model_zoo.h"
#include "sim/buffer_tuner.h"
#include "sim/trace_export.h"
#include "tensor/rng.h"

namespace acps {
namespace {

// ----------------------------------------------------- hierarchical comm --

class HierarchicalTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HierarchicalTest, MatchesFlatAllReduce) {
  const auto [nodes, gpn] = GetParam();
  const int p = nodes * gpn;
  const size_t n = 37;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    std::vector<float> hier(n), flat(n);
    for (size_t i = 0; i < n; ++i)
      hier[i] = flat[i] =
          static_cast<float>((comm.rank() + 1) * 10 + static_cast<int>(i));
    comm::HierarchicalAllReduce(comm, hier, gpn);
    comm.all_reduce(flat);
    for (size_t i = 0; i < n; ++i) {
      if (std::abs(hier[i] - flat[i]) > 1e-2f) {
        ++failures;
        break;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Topologies, HierarchicalTest,
                         ::testing::Values(std::tuple{1, 4}, std::tuple{2, 2},
                                           std::tuple{2, 3}, std::tuple{4, 2},
                                           std::tuple{4, 1}));

TEST(Hierarchical, RejectsNonDividingGroupSize) {
  comm::Transport group_transport;
  comm::Session group(group_transport, "", 4);
  EXPECT_THROW(group.Run([&](comm::Communicator& comm) {
    std::vector<float> v(4, 1.0f);
    comm::HierarchicalAllReduce(comm, v, 3);
  }),
               Error);
}

TEST(TopologyModel, HierarchicalBeatsFlatForLargePayloads) {
  // With 4 GPUs sharing one slow NIC per node, the two-level algorithm
  // moves 1/4 the bytes over the bottleneck.
  comm::HierarchicalCostModel model(comm::ClusterTopology::Paper32());
  EXPECT_GT(model.Speedup(100e6), 2.0);
  EXPECT_LT(model.Speedup(100e6), 4.5);
}

TEST(TopologyModel, TinyPayloadSpeedupComesFromFewerSlowHops) {
  // For latency-bound payloads the two-level scheme crosses the slow
  // network with a ring of `nodes` members instead of `nodes*gpus`:
  // speedup ≈ (p-1)/(nodes-1) = 31/7 ≈ 4.4 on the paper topology.
  comm::HierarchicalCostModel model(comm::ClusterTopology::Paper32());
  EXPECT_GT(model.Speedup(1024), 3.0);
  EXPECT_LT(model.Speedup(1024), 31.0 / 7.0 + 0.5);
}

TEST(TopologyModel, WorldSize) {
  EXPECT_EQ(comm::ClusterTopology::Paper32().world_size(), 32);
}

// ------------------------------------------------------- buffer tuning ----

TEST(BufferTuner, NeverWorseThanDefault) {
  const auto model = models::BertLarge();
  for (int64_t rank : {32, 256}) {
    sim::SimConfig cfg;
    cfg.method = sim::Method::kACPSGD;
    cfg.rank = rank;
    const sim::TuneResult r = sim::TuneBufferSize(model, cfg);
    EXPECT_LE(r.best_iter_s, r.default_iter_s + 1e-9) << rank;
    EXPECT_GE(r.gain(), 1.0) << rank;
    EXPECT_GT(r.best_buffer_bytes, 0) << rank;
  }
}

TEST(BufferTuner, DefaultIsNearOptimalForAcp) {
  // The paper's Fig 10 claim, quantified: tuning buys < 15% over the 25MB
  // default for ACP-SGD because the scaled budget already adapts.
  const auto model = models::BertLarge();
  sim::SimConfig cfg;
  cfg.method = sim::Method::kACPSGD;
  cfg.rank = 256;
  const sim::TuneResult r = sim::TuneBufferSize(model, cfg);
  EXPECT_LT(r.gain(), 1.15);
}

TEST(BufferTuner, RejectsBadRange) {
  sim::SimConfig cfg;
  EXPECT_THROW(
      (void)sim::TuneBufferSize(models::ResNet18(), cfg, 1000, 100), Error);
}

// -------------------------------------------------------- trace export ----

TEST(TraceExport, ProducesChromeTracingJson) {
  std::vector<sim::TraceEvent> trace;
  sim::SimConfig cfg;
  cfg.method = sim::Method::kACPSGD;
  cfg.trace = &trace;
  (void)sim::SimulateIteration(models::ResNet18(), cfg);
  const std::string json = sim::ToChromeTracingJson(trace);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"comm\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"compute\""), std::string::npos);
  // Event count matches ("X" complete events; row-label metadata events
  // from the shared obs writer are "M" and don't count).
  size_t count = 0;
  for (size_t pos = 0;
       (pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos; ++pos)
    ++count;
  EXPECT_EQ(count, trace.size());
}

TEST(TraceExport, EscapesSpecials) {
  std::vector<sim::TraceEvent> trace{{"a\"b", "compute", 0.0, 1.0}};
  const std::string json = sim::ToChromeTracingJson(trace);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
}

// ------------------------------------------------------ blockwise sign ----

TEST(BlockwiseSign, RoundTripUsesPerBlockScales) {
  compress::BlockwiseSignCompressor c(4);
  // Two blocks with very different magnitudes.
  const std::vector<float> g{1.0f, -1.0f, 1.0f, -1.0f,
                             100.0f, -100.0f, 100.0f, -100.0f};
  const auto blob = c.Encode(g);
  EXPECT_EQ(blob.size(), c.EncodedBytes(g.size()));
  std::vector<float> out(g.size());
  c.Decode(blob, out);
  EXPECT_NEAR(out[0], 1.0f, 1e-5f);
  EXPECT_NEAR(out[4], 100.0f, 1e-3f);
  EXPECT_NEAR(out[5], -100.0f, 1e-3f);
}

TEST(BlockwiseSign, BetterReconstructionThanGlobalSign) {
  Rng rng(3);
  std::vector<float> g(4096);
  // Heteroscedastic gradient: magnitude varies by segment, like layers.
  for (size_t i = 0; i < g.size(); ++i)
    g[i] = rng.normal() * (1.0f + static_cast<float>(i / 512));
  auto err = [&](compress::Compressor& c) {
    const auto blob = c.Encode(g);
    std::vector<float> out(g.size());
    c.Decode(blob, out);
    double e = 0.0;
    for (size_t i = 0; i < g.size(); ++i)
      e += double(out[i] - g[i]) * (out[i] - g[i]);
    return e;
  };
  compress::SignCompressor global;
  compress::BlockwiseSignCompressor blockwise(512);
  EXPECT_LT(err(blockwise), err(global));
}

TEST(BlockwiseSign, PartialLastBlock) {
  compress::BlockwiseSignCompressor c(8);
  const std::vector<float> g{3.0f, -3.0f, 3.0f};  // one partial block
  const auto blob = c.Encode(g);
  std::vector<float> out(3);
  c.Decode(blob, out);
  EXPECT_NEAR(out[1], -3.0f, 1e-5f);
}

TEST(BlockwiseSign, MismatchedBlockSizeThrows) {
  compress::BlockwiseSignCompressor a(8), b(16);
  const auto blob = a.Encode(std::vector<float>{1.0f, 2.0f});
  std::vector<float> out(2);
  EXPECT_THROW(b.Decode(blob, out), Error);
}

TEST(BlockwiseSign, CompressionRatioNear32ForLargeBlocks) {
  compress::BlockwiseSignCompressor c(4096);
  EXPECT_GT(c.CompressionRatio(1 << 20), 28.0);
}

// ---------------------------------------------------------------- CSV -----

TEST(Csv, RendersAndEscapes) {
  metrics::CsvWriter csv({"name", "value"});
  csv.AddRow({"plain", "1"});
  csv.AddRow({"with,comma", "he said \"hi\""});
  const std::string out = csv.Render();
  EXPECT_NE(out.find("name,value\n"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, RowWidthChecked) {
  metrics::CsvWriter csv({"a"});
  EXPECT_THROW(csv.AddRow({"1", "2"}), Error);
}

TEST(Csv, WritesFile) {
  metrics::CsvWriter csv({"x"});
  csv.AddRow({"42"});
  const std::string path = ::testing::TempDir() + "/acps_csv_test.csv";
  EXPECT_TRUE(csv.WriteFile(path));
  EXPECT_FALSE(csv.WriteFile("/nonexistent-dir/impossible.csv"));
}

}  // namespace
}  // namespace acps
