#include "comm/cost_model.h"

#include <gtest/gtest.h>

#include "tensor/check.h"

namespace acps::comm {
namespace {

TEST(CostModel, SingleWorkerIsFree) {
  CostModel cm(NetworkSpec::Ethernet10G(), 1);
  EXPECT_EQ(cm.AllReduce(1e6), 0.0);
  EXPECT_EQ(cm.AllGather(1e6), 0.0);
  EXPECT_EQ(cm.Broadcast(1e6), 0.0);
  EXPECT_EQ(cm.AllReduceStartup(), 0.0);
}

TEST(CostModel, AllReduceFormula) {
  const NetworkSpec net = NetworkSpec::Ethernet10G();
  const int p = 32;
  CostModel cm(net, p);
  const double bytes = 1e6;
  const double expect = 2.0 * 31 * net.alpha_s +
                        2.0 * 31 / 32.0 * bytes / net.beta_bytes_per_s;
  EXPECT_DOUBLE_EQ(cm.AllReduce(bytes), expect);
}

TEST(CostModel, StartupLinearInWorkers) {
  const NetworkSpec net = NetworkSpec::Ethernet10G();
  const double s8 = CostModel(net, 8).AllReduceStartup();
  const double s64 = CostModel(net, 64).AllReduceStartup();
  EXPECT_NEAR(s64 / s8, 63.0 / 7.0, 1e-9);
}

TEST(CostModel, BandwidthTermNearlyConstantInWorkers) {
  // The ring all-reduce byte term 2(p-1)/p·B/β saturates: this is why the
  // methods scale in Fig 12.
  const NetworkSpec net = NetworkSpec::Ethernet10G();
  const double big = 1e9;
  const double t8 =
      CostModel(net, 8).AllReduce(big) - CostModel(net, 8).AllReduceStartup();
  const double t64 = CostModel(net, 64).AllReduce(big) -
                     CostModel(net, 64).AllReduceStartup();
  EXPECT_LT(t64 / t8, 1.15);
}

TEST(CostModel, AllGatherLinearInWorkers) {
  // (p-1)·B/β per worker — Table II's Sign/Top-k scalability problem.
  const NetworkSpec net = NetworkSpec::Ethernet10G();
  const double big = 1e8;
  const double t8 = CostModel(net, 8).AllGather(big);
  const double t64 = CostModel(net, 64).AllGather(big);
  EXPECT_NEAR(t64 / t8, 63.0 / 7.0, 0.01);
}

TEST(CostModel, FusionAmortizesStartup) {
  // Paper anchor: two 32KB all-reduces cost more than one 64KB all-reduce.
  CostModel cm(NetworkSpec::Ethernet10G(), 32);
  const double two_small = 2.0 * cm.AllReduce(32.0 * 1024);
  const double one_big = cm.AllReduce(64.0 * 1024);
  EXPECT_GT(two_small, one_big * 1.5);
}

TEST(CostModel, PaperAnchor10GbE) {
  // ~1.2ms for a 64KB all-reduce on 32 workers, ~2.0ms for two 32KB ones.
  CostModel cm(NetworkSpec::Ethernet10G(), 32);
  const double one = cm.AllReduce(64.0 * 1024) * 1e3;
  const double two = 2.0 * cm.AllReduce(32.0 * 1024) * 1e3;
  EXPECT_GT(one, 0.4);
  EXPECT_LT(one, 2.0);
  EXPECT_GT(two, 1.0);
  EXPECT_LT(two, 3.0);
}

TEST(CostModel, NetworksOrdered) {
  const double bytes = 1e8;
  const double t1 = CostModel(NetworkSpec::Ethernet1G(), 32).AllReduce(bytes);
  const double t10 = CostModel(NetworkSpec::Ethernet10G(), 32).AllReduce(bytes);
  const double t100 =
      CostModel(NetworkSpec::Infiniband100G(), 32).AllReduce(bytes);
  EXPECT_GT(t1, t10 * 5);
  EXPECT_GT(t10, t100 * 5);
}

TEST(CostModel, MonotoneInBytes) {
  CostModel cm(NetworkSpec::Ethernet10G(), 16);
  double prev = -1.0;
  for (double b : {0.0, 1e3, 1e5, 1e7, 1e9}) {
    const double t = cm.AllReduce(b);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CostModel, ReduceScatterAndP2P) {
  const NetworkSpec net = NetworkSpec::Ethernet10G();
  CostModel cm(net, 4);
  EXPECT_GT(cm.ReduceScatter(1e6), 0.0);
  EXPECT_LT(cm.ReduceScatter(1e6), cm.AllReduce(1e6));
  EXPECT_DOUBLE_EQ(cm.PointToPoint(0.0), net.alpha_s);
}

TEST(CostModel, RejectsBadConfig) {
  EXPECT_THROW(CostModel(NetworkSpec::Ethernet10G(), 0), Error);
  NetworkSpec bad = NetworkSpec::Ethernet10G();
  bad.beta_bytes_per_s = 0;
  EXPECT_THROW(CostModel(bad, 4), Error);
}

}  // namespace
}  // namespace acps::comm
