#include "tensor/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace acps {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  const Rng parent(99);
  Rng c1 = parent.split(1);
  Rng c1b = parent.split(1);
  Rng c2 = parent.split(2);
  EXPECT_EQ(c1.next_u64(), c1b.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.next_below(13);
    EXPECT_LT(v, 13u);
  }
  EXPECT_THROW((void)rng.next_below(0), Error);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.next_below(5)];
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LE(v, 3.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(21);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0f, 0.1f);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Rng, UnseededDrawIsAnError) {
  // Reproducibility contract: no stream may come from an implicit default
  // seed. A default-constructed Rng must refuse to produce anything until
  // it is explicitly seeded.
  Rng rng;
  EXPECT_FALSE(rng.seeded());
  EXPECT_THROW((void)rng.next_u64(), Error);
  EXPECT_THROW((void)rng.normal(), Error);
  EXPECT_THROW((void)rng.split(1), Error);
  rng.seed(42);
  EXPECT_TRUE(rng.seeded());
  EXPECT_EQ(rng.next_u64(), Rng(42).next_u64());
}

TEST(Rng, FillTensors) {
  Rng rng(8);
  Tensor t({1000});
  rng.fill_normal(t, 2.0f, 1.0f);
  EXPECT_NEAR(t.sum() / 1000.0f, 2.0f, 0.15f);
  rng.fill_uniform(t, 0.0f, 1.0f);
  for (float v : t.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

}  // namespace
}  // namespace acps
