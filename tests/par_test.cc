// Unit tests for the deterministic parallel compute layer (src/par):
// budget resolution, the static-partition pool (nesting, exceptions,
// resize), ParallelFor/ParallelReduce, and the kernel-stats table.
#include "par/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/kernel_stats.h"

namespace acps::par {
namespace {

// Restores the auto budget (env/hardware) when a test ends, so the budget
// fixed by one test never leaks into another.
struct BudgetGuard {
  ~BudgetGuard() {
    unsetenv("ACPS_NUM_THREADS");
    SetNumThreads(0);
  }
};

TEST(Budget, HardwareThreadsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(Budget, EnvVariableResolution) {
  BudgetGuard guard;
  setenv("ACPS_NUM_THREADS", "3", 1);
  SetNumThreads(0);  // drop any fixed value, re-resolve from env
  EXPECT_EQ(NumThreads(), 3);

  // Clamped to kMaxThreads.
  setenv("ACPS_NUM_THREADS", "99999", 1);
  SetNumThreads(0);
  EXPECT_EQ(NumThreads(), kMaxThreads);

  // Malformed values fall back to the hardware default.
  for (const char* bad : {"abc", "4x", "", "-2", "0"}) {
    setenv("ACPS_NUM_THREADS", bad, 1);
    SetNumThreads(0);
    EXPECT_EQ(NumThreads(), HardwareThreads()) << "env='" << bad << "'";
  }
}

TEST(Budget, SetNumThreadsOverridesEnv) {
  BudgetGuard guard;
  setenv("ACPS_NUM_THREADS", "2", 1);
  SetNumThreads(5);
  EXPECT_EQ(NumThreads(), 5);
  EXPECT_EQ(GlobalPool().threads(), 5);
  SetNumThreads(0);
  EXPECT_EQ(NumThreads(), 2);
}

TEST(Budget, SetNumThreadsRejectsOutOfRange) {
  EXPECT_THROW(SetNumThreads(-1), std::invalid_argument);
  EXPECT_THROW(SetNumThreads(kMaxThreads + 1), std::invalid_argument);
}

TEST(Budget, WorkerThreadBudget) {
  BudgetGuard guard;
  EXPECT_EQ(WorkerThreadBudget(/*requested=*/6, /*world_size=*/8), 6);
  EXPECT_EQ(WorkerThreadBudget(kMaxThreads + 50, 1), kMaxThreads);
  SetNumThreads(8);
  EXPECT_EQ(WorkerThreadBudget(0, 4), 2);   // divided across ring workers
  EXPECT_EQ(WorkerThreadBudget(0, 100), 1); // never below one
  EXPECT_EQ(WorkerThreadBudget(0, 0), 8);   // degenerate world treated as 1
}

TEST(ThreadPool, RunsEveryBlockExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(17);
  pool.Run(17, [&](int64_t b) { ++hits[static_cast<size_t>(b)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadAndSingleBlockRunInline) {
  ThreadPool serial(1);
  std::vector<int> hits(5, 0);
  const auto caller = std::this_thread::get_id();
  serial.Run(5, [&](int64_t b) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++hits[static_cast<size_t>(b)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);

  ThreadPool pool(4);
  pool.Run(1, [&](int64_t b) {
    EXPECT_EQ(b, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  pool.Run(0, [&](int64_t) { FAIL() << "no blocks to run"; });
}

TEST(ThreadPool, NestedRunFallsBackToInline) {
  ThreadPool pool(4);
  std::atomic<int> outer{0}, inner{0};
  pool.Run(4, [&](int64_t) {
    ++outer;
    // The pool is busy with the outer region: the nested call must run
    // inline on this thread, not deadlock.
    const auto me = std::this_thread::get_id();
    pool.Run(3, [&](int64_t) {
      EXPECT_EQ(std::this_thread::get_id(), me);
      ++inner;
    });
  });
  EXPECT_EQ(outer.load(), 4);
  EXPECT_EQ(inner.load(), 12);
}

TEST(ThreadPool, ConcurrentCallersBothComplete) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::thread other([&] {
    pool.Run(64, [&](int64_t) { ++total; });
  });
  pool.Run(64, [&](int64_t) { ++total; });
  other.join();
  EXPECT_EQ(total.load(), 128);
}

TEST(ThreadPool, ExceptionsRethrownAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.Run(8,
                        [&](int64_t b) {
                          if (b == 5) throw std::runtime_error("block 5");
                        }),
               std::runtime_error);
  // Pool is reusable after a throwing region.
  std::atomic<int> ran{0};
  pool.Run(8, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, Resize) {
  ThreadPool pool(2);
  pool.Resize(4);
  EXPECT_EQ(pool.threads(), 4);
  std::atomic<int> ran{0};
  pool.Run(16, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran.load(), 16);
  pool.Resize(1);
  EXPECT_EQ(pool.threads(), 1);
  pool.Resize(1);  // no-op path
  pool.Run(4, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran.load(), 20);
}

TEST(ParallelFor, NumForBlocksBounds) {
  BudgetGuard guard;
  SetNumThreads(4);
  EXPECT_EQ(NumForBlocks(/*grain=*/10, /*n=*/0), 0);
  EXPECT_EQ(NumForBlocks(10, 5), 1);    // under one grain
  EXPECT_EQ(NumForBlocks(10, 25), 3);   // grain-limited
  EXPECT_EQ(NumForBlocks(10, 1000), 4); // thread-limited
  EXPECT_EQ(NumForBlocks(0, 2), 2);     // grain clamped up to 1
}

TEST(ParallelFor, CoversRangeDisjointly) {
  BudgetGuard guard;
  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(1001);
  ParallelFor(/*grain=*/64, 1001, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, BlockBoundariesAlignDown) {
  BudgetGuard guard;
  SetNumThreads(4);
  std::vector<std::pair<int64_t, int64_t>> ranges(16, {-1, -1});
  ParallelForBlocks(/*grain=*/8, /*n=*/100, /*align=*/8,
                    [&](int64_t b, int64_t begin, int64_t end) {
                      ranges[static_cast<size_t>(b)] = {begin, end};
                    });
  int64_t covered = 0;
  for (const auto& [begin, end] : ranges) {
    if (begin < 0) continue;
    EXPECT_EQ(begin % 8, 0);
    if (end != 100) {
      EXPECT_EQ(end % 8, 0) << "interior boundary unaligned";
    }
    covered += end - begin;
  }
  EXPECT_EQ(covered, 100);
}

TEST(ParallelReduce, SumsAndEdgeCases) {
  BudgetGuard guard;
  SetNumThreads(4);
  const int64_t n = 100000;
  const auto sum = ParallelReduce(
      /*chunk=*/1 << 10, n, int64_t{0},
      [](int64_t begin, int64_t end) {
        int64_t acc = 0;
        for (int64_t i = begin; i < end; ++i) acc += i;
        return acc;
      },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);

  // Empty range returns init; a single chunk maps directly.
  EXPECT_EQ(ParallelReduce(
                8, 0, int64_t{42}, [](int64_t, int64_t) { return int64_t{7}; },
                [](int64_t a, int64_t b) { return a + b; }),
            42);
  EXPECT_EQ(ParallelReduce(
                8, 3, int64_t{0},
                [](int64_t begin, int64_t end) { return end - begin; },
                [](int64_t a, int64_t b) { return a + b; }),
            3);
}

TEST(ParallelReduce, FloatResultThreadCountInvariant) {
  // The determinism contract: an fp reduction yields the identical bits for
  // every thread budget, because the chunk grid and combine tree are fixed.
  std::vector<float> data(250007);
  uint32_t state = 123456789u;
  for (float& v : data) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<float>(state) / 4.0e9f - 0.5f;
  }
  const auto run = [&] {
    return ParallelReduce(
        int64_t{1} << 12, static_cast<int64_t>(data.size()), 0.0f,
        [&](int64_t begin, int64_t end) {
          float acc = 0.0f;
          for (int64_t i = begin; i < end; ++i)
            acc += data[static_cast<size_t>(i)];
          return acc;
        },
        [](float a, float b) { return a + b; });
  };
  BudgetGuard guard;
  SetNumThreads(1);
  const float serial = run();
  for (int threads : {2, 3, 4, 8}) {
    SetNumThreads(threads);
    const float parallel = run();
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }
}

TEST(KernelStats, DisabledRecordsNothing) {
  ResetKernelStats();
  SetKernelStatsEnabled(false);
  RecordKernel("gemm", 100, 200);
  { KernelTimer t("gemm", 42); }
  EXPECT_TRUE(KernelStatsSnapshot().empty());
}

TEST(KernelStats, RecordsAndResets) {
  ResetKernelStats();
  SetKernelStatsEnabled(true);
  RecordKernel("axpy", 50, 100);
  RecordKernel("gemm", 1000, 4000);
  RecordKernel("gemm", 3000, 4000);
  { KernelTimer t("axpy", 10); }

  const auto snapshot = KernelStatsSnapshot();
  SetKernelStatsEnabled(false);
  ASSERT_EQ(snapshot.size(), 2u);  // sorted by name
  EXPECT_EQ(snapshot[0].first, "axpy");
  EXPECT_EQ(snapshot[0].second.calls, 2u);
  EXPECT_EQ(snapshot[0].second.flops, 110u);
  EXPECT_EQ(snapshot[1].first, "gemm");
  EXPECT_EQ(snapshot[1].second.calls, 2u);
  EXPECT_EQ(snapshot[1].second.ns, 4000u);
  EXPECT_EQ(snapshot[1].second.flops, 8000u);
  EXPECT_DOUBLE_EQ(snapshot[1].second.gflops(), 2.0);
  EXPECT_EQ(KernelStat{}.gflops(), 0.0);

  ResetKernelStats();
  EXPECT_TRUE(KernelStatsSnapshot().empty());
}

}  // namespace
}  // namespace acps::par
