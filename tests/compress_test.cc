// Tests for the one-shot compressors: Sign, Top-k, Random-k, QSGD,
// TernGrad, FP16, and the error-feedback store.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/error_feedback.h"
#include "compress/fp16.h"
#include "compress/registry.h"
#include "compress/qsgd.h"
#include "compress/randomk.h"
#include "compress/sign.h"
#include "compress/terngrad.h"
#include "compress/topk.h"
#include "tensor/rng.h"

namespace acps::compress {
namespace {

std::vector<float> RandomGrad(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> g(n);
  for (auto& v : g) v = rng.normal();
  return g;
}

// ---------------------------------------------------------------- Sign ----

TEST(Sign, RoundTripSigns) {
  SignCompressor c;
  const std::vector<float> g{1.5f, -0.25f, 0.0f, -3.0f, 2.0f};
  const auto blob = c.Encode(g);
  std::vector<float> out(g.size());
  c.Decode(blob, out);
  const float scale = (1.5f + 0.25f + 0.0f + 3.0f + 2.0f) / 5.0f;
  EXPECT_NEAR(out[0], scale, 1e-5f);
  EXPECT_NEAR(out[1], -scale, 1e-5f);
  EXPECT_NEAR(out[2], scale, 1e-5f);  // sign(0) = +1
  EXPECT_NEAR(out[3], -scale, 1e-5f);
}

TEST(Sign, CompressionRatioApproaches32x) {
  SignCompressor c;
  const double ratio = c.CompressionRatio(1 << 20);
  EXPECT_GT(ratio, 30.0);
  EXPECT_LE(ratio, 32.0);
}

TEST(Sign, EncodedSizeExact) {
  SignCompressor c;
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 1000u}) {
    const auto blob = c.Encode(RandomGrad(n, n));
    EXPECT_EQ(blob.size(), c.EncodedBytes(n));
  }
}

TEST(Sign, MajorityVote) {
  SignCompressor c;
  // Three workers; element 0: (+,+,-) => +; element 1: (-,-,+) => -.
  std::vector<std::vector<std::byte>> blobs;
  blobs.push_back(c.Encode(std::vector<float>{1.0f, -1.0f}));
  blobs.push_back(c.Encode(std::vector<float>{1.0f, -1.0f}));
  blobs.push_back(c.Encode(std::vector<float>{-1.0f, 1.0f}));
  std::vector<float> out(2);
  SignCompressor::MajorityVote(blobs, out);
  EXPECT_GT(out[0], 0.0f);
  EXPECT_LT(out[1], 0.0f);
}

TEST(Sign, MajorityVoteTieIsPositive) {
  SignCompressor c;
  std::vector<std::vector<std::byte>> blobs;
  blobs.push_back(c.Encode(std::vector<float>{1.0f}));
  blobs.push_back(c.Encode(std::vector<float>{-1.0f}));
  std::vector<float> out(1);
  SignCompressor::MajorityVote(blobs, out);
  EXPECT_GT(out[0], 0.0f);
}

TEST(Sign, DecodeSizeMismatchThrows) {
  SignCompressor c;
  const auto blob = c.Encode(RandomGrad(8, 1));
  std::vector<float> out(9);
  EXPECT_THROW(c.Decode(blob, out), Error);
}

// ---------------------------------------------------------------- Topk ----

class TopkSelectionTest : public ::testing::TestWithParam<TopkSelection> {};

TEST_P(TopkSelectionTest, SelectsLargestMagnitudes) {
  TopkCompressor c(0.1, GetParam());
  std::vector<float> g(100, 0.01f);
  // Plant 10 large entries at known spots.
  for (int i = 0; i < 10; ++i) g[static_cast<size_t>(i * 10)] = 5.0f + i;
  const auto blob = c.Encode(g);
  std::vector<float> out(g.size());
  c.Decode(blob, out);
  int found = 0;
  for (int i = 0; i < 10; ++i)
    if (out[static_cast<size_t>(i * 10)] > 1.0f) ++found;
  EXPECT_EQ(found, 10);
  // Everything else zero.
  for (size_t i = 0; i < g.size(); ++i) {
    if (i % 10 != 0) {
      EXPECT_EQ(out[i], 0.0f);
    }
  }
}

TEST_P(TopkSelectionTest, ExactlyKRecords) {
  TopkCompressor c(0.05, GetParam());
  for (size_t n : {20u, 100u, 999u}) {
    const auto g = RandomGrad(n, n * 3);
    const auto blob = c.Encode(g);
    EXPECT_EQ(blob.size(), c.EncodedBytes(n)) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, TopkSelectionTest,
                         ::testing::Values(TopkSelection::kExact,
                                           TopkSelection::kSampledThreshold));

TEST(Topk, SampledMatchesExactEnergyClosely) {
  // Sampled threshold selection must capture nearly the same gradient
  // energy as exact top-k (it is allowed to differ in tie handling).
  const auto g = RandomGrad(20000, 9);
  TopkCompressor exact(0.01, TopkSelection::kExact);
  TopkCompressor sampled(0.01, TopkSelection::kSampledThreshold);
  auto energy = [&](Compressor& c) {
    const auto blob = c.Encode(g);
    std::vector<float> out(g.size());
    c.Decode(blob, out);
    double e = 0.0;
    for (float v : out) e += double(v) * v;
    return e;
  };
  const double ee = energy(exact);
  const double es = energy(sampled);
  EXPECT_GT(es, 0.97 * ee);
}

TEST(Topk, HistogramSelectionIsTwoPass) {
  TopkCompressor c(0.001, TopkSelection::kSampledThreshold);
  (void)c.Encode(RandomGrad(50000, 5));
  // Histogram-assisted selection: the bit-pattern bucketing needs no
  // max/range pass, so selection is histogram pass + gather pass.
  EXPECT_EQ(c.last_threshold_passes(), 2);
}

TEST(Topk, BinarySearchSelectionIsMultiPass) {
  TopkCompressor c(0.001, TopkSelection::kSampledThreshold);
  const auto g = RandomGrad(50000, 5);
  const auto idx = c.SelectSampledBinarySearch(g, c.KeptCount(g.size()));
  EXPECT_EQ(idx.size(), c.KeptCount(g.size()));
  // The paper's premise: the pre-histogram scheme needs many counting passes
  // (one per binary-search probe). This is the bench_kernels baseline.
  EXPECT_GE(c.last_threshold_passes(), 5);
}

TEST(Topk, ThresholdPassesResetEachEncode) {
  // Regression: the pass counter is per-call state. An exact-scheme encode
  // after a sampled one must report 0, not the stale sampled count — and a
  // mixed-magnitude gradient (one huge outlier 20 decades above the rest;
  // under the old linear-scale histogram it crowded everything else into
  // the bottom bucket) must still select exactly k.
  TopkCompressor sampled(0.01, TopkSelection::kSampledThreshold);
  std::vector<float> g = RandomGrad(10000, 11);
  g[123] = 1e20f;  // outlier, alone in a top bucket
  const auto blob = sampled.Encode(g);
  EXPECT_EQ(blob.size(), sampled.EncodedBytes(g.size()));
  EXPECT_EQ(sampled.last_threshold_passes(), 2);
  std::vector<float> out(g.size());
  sampled.Decode(blob, out);
  EXPECT_EQ(out[123], 1e20f);  // the outlier always survives selection

  TopkCompressor exact(0.01, TopkSelection::kExact);
  (void)exact.Encode(g);
  EXPECT_EQ(exact.last_threshold_passes(), 0);
}

TEST(Topk, AccumulateAverages) {
  TopkCompressor c(0.5, TopkSelection::kExact);
  const std::vector<float> g{4.0f, 0.0f, -8.0f, 0.0f};
  const auto blob = c.Encode(g);
  std::vector<float> out(4, 0.0f);
  TopkCompressor::AccumulateInto(blob, out, /*num_workers=*/2);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[2], -4.0f);
}

TEST(Topk, KeptCountAtLeastOne) {
  TopkCompressor c(0.001);
  EXPECT_EQ(c.KeptCount(10), 1u);
  EXPECT_EQ(c.KeptCount(0), 0u);
  EXPECT_EQ(c.KeptCount(10000), 10u);
}

TEST(Topk, RejectsBadRatio) {
  EXPECT_THROW(TopkCompressor(0.0), Error);
  EXPECT_THROW(TopkCompressor(1.5), Error);
}

// -------------------------------------------------------------- Randomk ---

TEST(Randomk, RoundTripSparse) {
  RandomkCompressor c(0.2);
  const auto g = RandomGrad(50, 3);
  const auto blob = c.Encode(g);
  std::vector<float> out(g.size());
  c.Decode(blob, out);
  size_t nonzero = 0;
  for (size_t i = 0; i < g.size(); ++i) {
    if (out[i] != 0.0f) {
      EXPECT_FLOAT_EQ(out[i], g[i]);
      ++nonzero;
    }
  }
  EXPECT_EQ(nonzero, c.KeptCount(g.size()));
}

TEST(Randomk, SameSeedSameIndices) {
  RandomkCompressor a(0.1, 99), b(0.1, 99);
  const auto g = RandomGrad(200, 4);
  const auto ba = a.Encode(g);
  const auto bb = b.Encode(g);
  EXPECT_EQ(RandomkCompressor::IndicesOf(ba), RandomkCompressor::IndicesOf(bb));
}

TEST(Randomk, IndicesChangePerStep) {
  RandomkCompressor c(0.1, 5);
  const auto g = RandomGrad(200, 4);
  const auto i1 = RandomkCompressor::IndicesOf(c.Encode(g));
  const auto i2 = RandomkCompressor::IndicesOf(c.Encode(g));
  EXPECT_NE(i1, i2);
}

TEST(Randomk, IndicesDistinct) {
  RandomkCompressor c(0.5, 6);
  const auto idx = RandomkCompressor::IndicesOf(c.Encode(RandomGrad(40, 2)));
  auto sorted = idx;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Randomk, AdditiveBlobs) {
  // The all-reduce-compatibility property: same (seed, step) blobs add.
  RandomkCompressor a(0.25, 123), b(0.25, 123);
  const auto g1 = RandomGrad(64, 7);
  const auto g2 = RandomGrad(64, 8);
  const auto b1 = a.Encode(g1);
  const auto b2 = b.Encode(g2);
  const auto sum = RandomkCompressor::Add(b1, b2);
  std::vector<float> out(64), o1(64), o2(64);
  a.Decode(sum, out);
  a.Decode(b1, o1);
  a.Decode(b2, o2);
  for (size_t i = 0; i < 64; ++i) EXPECT_NEAR(out[i], o1[i] + o2[i], 1e-5f);
}

TEST(Randomk, AddRejectsMismatchedHeaders) {
  RandomkCompressor a(0.25, 1), b(0.25, 2);  // different seeds
  const auto g = RandomGrad(64, 7);
  const auto b1 = a.Encode(g);
  const auto b2 = b.Encode(g);
  EXPECT_THROW((void)RandomkCompressor::Add(b1, b2), Error);
}

// ----------------------------------------------------------------- QSGD ---

TEST(Qsgd, Unbiased) {
  QsgdCompressor c(4, 12345);
  const std::vector<float> g{0.3f, -0.7f, 0.1f, 0.9f};
  std::vector<double> mean(4, 0.0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto blob = c.Encode(g);
    std::vector<float> out(4);
    c.Decode(blob, out);
    for (size_t i = 0; i < 4; ++i) mean[i] += out[i];
  }
  for (size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(mean[i] / trials, g[i], 0.03) << i;
}

TEST(Qsgd, MoreLevelsLessError) {
  const auto g = RandomGrad(1000, 13);
  auto err = [&](int levels) {
    QsgdCompressor c(levels, 7);
    const auto blob = c.Encode(g);
    std::vector<float> out(g.size());
    c.Decode(blob, out);
    double e = 0.0;
    for (size_t i = 0; i < g.size(); ++i)
      e += double(out[i] - g[i]) * (out[i] - g[i]);
    return e;
  };
  EXPECT_LT(err(64), err(2));
}

TEST(Qsgd, ZeroVector) {
  QsgdCompressor c(8);
  const std::vector<float> g(16, 0.0f);
  const auto blob = c.Encode(g);
  std::vector<float> out(16, 1.0f);
  c.Decode(blob, out);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(Qsgd, RejectsBadLevels) {
  EXPECT_THROW(QsgdCompressor(0), Error);
  EXPECT_THROW(QsgdCompressor(128), Error);
}

// ------------------------------------------------------------- TernGrad ---

TEST(TernGrad, ValuesAreTernary) {
  TernGradCompressor c(9);
  const auto g = RandomGrad(500, 21);
  float smax = 0.0f;
  for (float v : g) smax = std::max(smax, std::abs(v));
  const auto blob = c.Encode(g);
  std::vector<float> out(g.size());
  c.Decode(blob, out);
  for (float v : out) {
    EXPECT_TRUE(v == 0.0f || std::abs(std::abs(v) - smax) < 1e-5f);
  }
}

TEST(TernGrad, Unbiased) {
  TernGradCompressor c(31);
  const std::vector<float> g{0.5f, -0.2f, 1.0f};
  std::vector<double> mean(3, 0.0);
  const int trials = 6000;
  for (int t = 0; t < trials; ++t) {
    const auto blob = c.Encode(g);
    std::vector<float> out(3);
    c.Decode(blob, out);
    for (size_t i = 0; i < 3; ++i) mean[i] += out[i];
  }
  for (size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(mean[i] / trials, g[i], 0.04) << i;
}

TEST(TernGrad, TwoBitsPerElement) {
  TernGradCompressor c;
  EXPECT_GT(c.CompressionRatio(1 << 20), 15.0);
}

// ----------------------------------------------------------------- FP16 ---

TEST(Fp16, ExactForRepresentable) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2048.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << v;
  }
}

TEST(Fp16, BoundedRelativeError) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-100.0f, 100.0f);
    const float r = HalfToFloat(FloatToHalf(v));
    EXPECT_NEAR(r, v, std::abs(v) * 1e-3f + 1e-4f);
  }
}

TEST(Fp16, SpecialValues) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e30f))));   // overflow
  EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(NAN))));
  EXPECT_EQ(HalfToFloat(FloatToHalf(1e-20f)), 0.0f);          // underflow
  EXPECT_EQ(std::signbit(HalfToFloat(FloatToHalf(-0.0f))), true);
  // Subnormal half range round-trips approximately.
  const float sub = 3.0e-6f;
  EXPECT_NEAR(HalfToFloat(FloatToHalf(sub)), sub, sub * 0.05f);
}

TEST(Fp16, RoundTripVector) {
  Fp16Compressor c;
  const auto g = RandomGrad(333, 41);
  const auto blob = c.Encode(g);
  EXPECT_EQ(blob.size(), c.EncodedBytes(g.size()));
  std::vector<float> out(g.size());
  c.Decode(blob, out);
  for (size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(out[i], g[i], std::abs(g[i]) * 1e-3f + 1e-4f);
  EXPECT_NEAR(c.CompressionRatio(1000), 2.0, 0.05);
}

// ------------------------------------------------------- ErrorFeedback ----

TEST(ErrorFeedback, StartsAtZeroAndAccumulates) {
  ErrorFeedback ef;
  Tensor grad({4}, {1, 2, 3, 4});
  ef.AddInto(0, grad);  // residual zero: unchanged
  EXPECT_FLOAT_EQ(grad.at(0), 1.0f);

  Tensor recon({4}, {0.5f, 2.0f, 3.0f, 3.0f});
  ef.Update(0, grad, recon);  // residual = grad - recon
  Tensor next({4}, {1, 1, 1, 1});
  ef.AddInto(0, next);
  EXPECT_FLOAT_EQ(next.at(0), 1.5f);
  EXPECT_FLOAT_EQ(next.at(3), 2.0f);
}

TEST(ErrorFeedback, PerTensorIsolation) {
  ErrorFeedback ef;
  Tensor a({2}, {1, 1});
  Tensor zero({2});
  ef.Update(1, a, zero);  // residual(1) = a
  Tensor b({2});
  ef.AddInto(2, b);  // residual(2) is fresh zeros
  EXPECT_EQ(b.at(0), 0.0f);
  EXPECT_EQ(ef.num_tensors(), 2u);
  EXPECT_EQ(ef.total_elements(), 4);
}

TEST(ErrorFeedback, ShapeChangeThrows) {
  ErrorFeedback ef;
  (void)ef.residual(0, {2, 2});
  EXPECT_THROW((void)ef.residual(0, {4}), Error);
}

// ---------------------------------------------------- EncodeInto parity ----

// The zero-copy EncodeInto path must be byte-identical to the allocating
// Encode() wrapper for every registered compressor. Stochastic compressors
// (randomk, qsgd, terngrad) advance internal state per encode, so the two
// paths run on two identically constructed instances.
TEST(EncodeInto, ByteIdenticalToEncodeForAllCompressors) {
  const auto grads = {RandomGrad(1, 11), RandomGrad(257, 12),
                      RandomGrad(4096, 13)};
  for (const std::string& spec : KnownCompressors()) {
    for (const auto& g : grads) {
      auto a = MakeCompressor(spec);
      auto b = MakeCompressor(spec);
      const std::vector<std::byte> via_encode = a->Encode(g);
      std::vector<std::byte> via_into(b->EncodedBytes(g.size()));
      b->EncodeInto(g, via_into);
      ASSERT_EQ(via_encode.size(), via_into.size()) << spec;
      EXPECT_TRUE(via_encode == via_into) << spec << " n=" << g.size();
      // Both blobs decode to the same vector.
      std::vector<float> da(g.size()), db(g.size());
      a->Decode(via_encode, da);
      b->Decode(via_into, db);
      EXPECT_TRUE(da == db) << spec;
    }
  }
}

TEST(EncodeInto, RejectsWronglySizedOutput) {
  SignCompressor c;
  const auto g = RandomGrad(64, 3);
  std::vector<std::byte> small(c.EncodedBytes(g.size()) - 1);
  EXPECT_THROW(c.EncodeInto(g, small), Error);
  std::vector<std::byte> big(c.EncodedBytes(g.size()) + 1);
  EXPECT_THROW(c.EncodeInto(g, big), Error);
}

// Compression ratios summary (Table I row: Sign 32x, Top-k 1000x).
TEST(CompressionRatios, MatchTableI) {
  SignCompressor sign;
  TopkCompressor topk(0.001);
  const size_t n = 25600000;  // ResNet-50 scale
  EXPECT_NEAR(sign.CompressionRatio(n), 32.0, 1.0);
  // Top-k with ratio 0.001 sends (idx,val) pairs: ~500x in bytes.
  EXPECT_GT(topk.CompressionRatio(n), 400.0);
}

}  // namespace
}  // namespace acps::compress
