// Randomized (but deterministic-seeded) stress tests: random shapes,
// worker counts, and collective sequences, cross-checked against local
// reference computations. These catch rendezvous-ordering and chunking
// bugs that fixed-size unit tests miss.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "comm/communicator.h"
#include "core/aggregators.h"
#include "tensor/rng.h"

namespace acps {
namespace {

TEST(Stress, RandomizedAllReduceSequences) {
  Rng meta(0xABCDE);
  for (int round = 0; round < 6; ++round) {
    const int p = 2 + static_cast<int>(meta.next_below(5));  // 2..6
    const int ops = 5 + static_cast<int>(meta.next_below(10));
    std::vector<size_t> sizes;
    for (int i = 0; i < ops; ++i)
      sizes.push_back(1 + static_cast<size_t>(meta.next_below(3000)));

    comm::Transport group_transport;

    comm::Session group(group_transport, "", p);
    std::atomic<int> failures{0};
    group.Run([&](comm::Communicator& comm) {
      for (int op = 0; op < ops; ++op) {
        const size_t n = sizes[static_cast<size_t>(op)];
        // Deterministic per-(round, op, rank) payload.
        auto fill = [&](int rank) {
          Rng rng(static_cast<uint64_t>(round) * 1000003 +
                  static_cast<uint64_t>(op) * 131 +
                  static_cast<uint64_t>(rank));
          std::vector<float> v(n);
          for (auto& x : v) x = rng.uniform(-2.0f, 2.0f);
          return v;
        };
        auto mine = fill(comm.rank());
        comm.all_reduce(mine);
        // Reference: sum of all workers' payloads.
        std::vector<double> expect(n, 0.0);
        for (int r = 0; r < p; ++r) {
          const auto w = fill(r);
          for (size_t i = 0; i < n; ++i) expect[i] += w[i];
        }
        for (size_t i = 0; i < n; ++i) {
          if (std::abs(mine[i] - expect[i]) > 1e-3) {
            ++failures;
            break;
          }
        }
      }
    });
    EXPECT_EQ(failures.load(), 0) << "round " << round;
  }
}

TEST(Stress, MixedCollectivesInterleaved) {
  const int p = 4;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    Rng rng(42);  // same on all workers: same op sequence
    for (int op = 0; op < 30; ++op) {
      const size_t n = 1 + static_cast<size_t>(rng.next_below(500));
      const int kind = static_cast<int>(rng.next_below(4));
      std::vector<float> v(n, static_cast<float>(comm.rank() + 1));
      switch (kind) {
        case 0: {
          comm.all_reduce(v);
          if (v[0] != 1.0f + 2 + 3 + 4) ++failures;
          break;
        }
        case 1: {
          std::vector<float> g(n * p);
          comm.all_gather(v, g);
          for (int r = 0; r < p; ++r)
            if (g[static_cast<size_t>(r) * n] != static_cast<float>(r + 1))
              ++failures;
          break;
        }
        case 2: {
          const int root = static_cast<int>(rng.next_below(p));
          comm.broadcast(v, root);
          if (v[0] != static_cast<float>(root + 1)) ++failures;
          break;
        }
        case 3: {
          comm.barrier();
          break;
        }
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Stress, RandomkAggregatorAdditiveAllReducePath) {
  // The additive property end to end: workers hold different gradients,
  // the result must equal the mean restricted to the shared coordinates.
  const int p = 4;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    dnn::Param w;
    w.name = "w";
    w.value = Tensor({30, 10});
    w.grad = Tensor({30, 10});
    w.matrix_rows = 30;
    w.matrix_cols = 10;
    Rng rng(900 + static_cast<uint64_t>(comm.rank()));
    rng.fill_normal(w.grad);

    // Expected mean over all workers.
    Tensor mean({30, 10});
    for (int r = 0; r < p; ++r) {
      Tensor g({30, 10});
      Rng wr(900 + static_cast<uint64_t>(r));
      wr.fill_normal(g);
      mean.add_(g);
    }
    mean.scale_(1.0f / p);

    core::RandomkAggregator agg(/*ratio=*/0.3, /*error_feedback=*/false);
    std::vector<dnn::Param*> params{&w};
    agg.Aggregate(params, comm);

    // Every nonzero output coordinate must equal the mean gradient there;
    // roughly 30% of coordinates are kept.
    int64_t kept = 0;
    for (int64_t i = 0; i < w.grad.numel(); ++i) {
      const float v = w.grad.at(i);
      if (v != 0.0f) {
        ++kept;
        if (std::abs(v - mean.at(i)) > 1e-4f) ++failures;
      }
    }
    if (kept != 90) ++failures;  // 0.3 * 300
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Stress, RandomkAggregatorWithErrorFeedbackConverges) {
  // With EF, repeated aggregation of the same gradients averages to the
  // true mean even though each step keeps only 20% of coordinates.
  const int p = 2;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    core::RandomkAggregator agg(0.2, /*error_feedback=*/true);
    Tensor mean({8, 8});
    for (int r = 0; r < p; ++r) {
      Tensor g({8, 8});
      Rng wr(70 + static_cast<uint64_t>(r));
      wr.fill_normal(g);
      mean.add_(g);
    }
    mean.scale_(1.0f / p);

    Tensor sum({8, 8});
    const int steps = 100;
    for (int t = 0; t < steps; ++t) {
      dnn::Param w;
      w.name = "w";
      w.value = Tensor({8, 8});
      w.grad = Tensor({8, 8});
      w.matrix_rows = w.matrix_cols = 8;
      Rng wr(70 + static_cast<uint64_t>(comm.rank()));
      wr.fill_normal(w.grad);
      std::vector<dnn::Param*> params{&w};
      agg.Aggregate(params, comm);
      sum.add_(w.grad);
    }
    sum.scale_(1.0f / steps);
    Tensor diff = sum.clone();
    diff.sub_(mean);
    if (diff.norm2() / mean.norm2() > 0.25f) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Stress, AggregatorsSurviveManyTinyParams) {
  // 100 params of 1-5 elements each: exercises bucket edge cases hard.
  const int p = 3;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    std::vector<dnn::Param> params(100);
    std::vector<dnn::Param*> ptrs;
    Rng rng(50 + static_cast<uint64_t>(comm.rank()));
    Rng shapes(7);  // same shapes everywhere
    for (size_t i = 0; i < params.size(); ++i) {
      const int64_t n = 1 + static_cast<int64_t>(shapes.next_below(5));
      params[i].name = "p" + std::to_string(i);
      params[i].value = Tensor({n});
      params[i].grad = Tensor({n});
      rng.fill_normal(params[i].grad);
      ptrs.push_back(&params[i]);
    }
    core::AllReduceAggregator agg(/*buffer_bytes=*/16);
    agg.Aggregate(ptrs, comm);
    // Sanity: results are finite and identical across calls from the same
    // inputs (determinism is covered elsewhere; check finiteness here).
    for (auto& prm : params)
      for (float v : prm.grad.data())
        if (!std::isfinite(v)) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace acps
