// DNN substrate tests, including finite-difference gradient checks for
// every layer — the convergence experiments are only meaningful if the
// backward passes are exactly right.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/conv.h"
#include "dnn/dataset.h"
#include "dnn/layers.h"
#include "dnn/loss.h"
#include "dnn/mini_models.h"
#include "dnn/network.h"
#include "dnn/optimizer.h"

namespace acps::dnn {
namespace {

// Scalar objective: sum of elementwise-squared outputs / 2, whose gradient
// w.r.t. the output is the output itself.
float Objective(const Tensor& y) { return 0.5f * y.dot(y); }

// Finite-difference gradient check of a layer's parameter and input
// gradients against the analytic backward pass.
void GradCheck(Layer& layer, Tensor& x, float tol = 2e-2f) {
  Rng rng(321);
  layer.Init(rng);
  for (Param* p : layer.params()) {
    Rng prng(17);
    prng.fill_uniform(p->value, -0.5f, 0.5f);
    p->grad.zero();
  }

  const Tensor y = layer.Forward(x);
  const Tensor gx = layer.Backward(y.clone());  // dObj/dy = y

  const float eps = 1e-2f;
  // Check a sample of parameter coordinates.
  for (Param* p : layer.params()) {
    const int64_t n = p->value.numel();
    for (int64_t i = 0; i < n; i += std::max<int64_t>(1, n / 7)) {
      const float orig = p->value.at(i);
      p->value.at(i) = orig + eps;
      const float fp = Objective(layer.Forward(x));
      p->value.at(i) = orig - eps;
      const float fm = Objective(layer.Forward(x));
      p->value.at(i) = orig;
      const float numeric = (fp - fm) / (2.0f * eps);
      EXPECT_NEAR(p->grad.at(i), numeric,
                  tol * (std::abs(numeric) + 1.0f))
          << p->name << "[" << i << "]";
    }
    (void)layer.Forward(x);  // restore cached input
  }
  // Check a sample of input coordinates.
  (void)layer.Forward(x);
  for (int64_t i = 0; i < x.numel(); i += std::max<int64_t>(1, x.numel() / 7)) {
    const float orig = x.at(i);
    x.at(i) = orig + eps;
    const float fp = Objective(layer.Forward(x));
    x.at(i) = orig - eps;
    const float fm = Objective(layer.Forward(x));
    x.at(i) = orig;
    const float numeric = (fp - fm) / (2.0f * eps);
    EXPECT_NEAR(gx.at(i), numeric, tol * (std::abs(numeric) + 1.0f))
        << "input[" << i << "]";
  }
}

Tensor RandomInput(int64_t batch, int64_t features, uint64_t seed) {
  Rng rng(seed);
  Tensor x({batch, features});
  rng.fill_uniform(x, -1.0f, 1.0f);
  return x;
}

TEST(GradCheck, Linear) {
  Linear layer("fc", 6, 4);
  Tensor x = RandomInput(3, 6, 1);
  GradCheck(layer, x);
}

TEST(GradCheck, Conv2d) {
  Conv2d layer("conv", 2, 3, 4, 4);
  Tensor x = RandomInput(2, 2 * 4 * 4, 2);
  GradCheck(layer, x);
}

TEST(GradCheck, Residual) {
  std::vector<std::unique_ptr<Layer>> inner;
  inner.push_back(std::make_unique<Linear>("r.fc1", 5, 5));
  inner.push_back(std::make_unique<ReLU>("r.relu"));
  inner.push_back(std::make_unique<Linear>("r.fc2", 5, 5));
  Residual layer("res", std::move(inner));
  Tensor x = RandomInput(3, 5, 3);
  GradCheck(layer, x);
}

TEST(GradCheck, MaxPool) {
  MaxPool2d layer("pool", 2, 4, 4);
  Tensor x = RandomInput(2, 2 * 4 * 4, 4);
  // MaxPool is piecewise linear; finite differences are valid away from
  // ties, which random inputs avoid almost surely.
  const Tensor y = layer.Forward(x);
  const Tensor gx = layer.Backward(y.clone());
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.numel(); i += 5) {
    const float orig = x.at(i);
    x.at(i) = orig + eps;
    const float fp = Objective(layer.Forward(x));
    x.at(i) = orig - eps;
    const float fm = Objective(layer.Forward(x));
    x.at(i) = orig;
    EXPECT_NEAR(gx.at(i), (fp - fm) / (2.0f * eps), 2e-2f) << i;
  }
}

TEST(ReLULayer, ForwardBackward) {
  ReLU relu("relu");
  Tensor x({1, 4}, {-1.0f, 2.0f, 0.0f, 3.0f});
  const Tensor y = relu.Forward(x);
  EXPECT_EQ(y.at(0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 1), 2.0f);
  Tensor g({1, 4}, {1, 1, 1, 1});
  const Tensor gx = relu.Backward(g);
  EXPECT_EQ(gx.at(0, 0), 0.0f);
  EXPECT_EQ(gx.at(0, 1), 1.0f);
  EXPECT_EQ(gx.at(0, 2), 0.0f);  // relu'(0) = 0 convention
}

TEST(SoftmaxCE, KnownValues) {
  Tensor logits({2, 3}, {10.0f, 0.0f, 0.0f, 0.0f, 0.0f, 10.0f});
  const LossResult r = SoftmaxCrossEntropy(logits, {0, 2});
  EXPECT_LT(r.loss, 0.01f);  // confident & correct
  // Gradient rows sum to ~0 (softmax minus one-hot).
  for (int64_t b = 0; b < 2; ++b) {
    float s = 0.0f;
    for (int64_t c = 0; c < 3; ++c) s += r.grad_logits.at(b, c);
    EXPECT_NEAR(s, 0.0f, 1e-5f);
  }
}

TEST(SoftmaxCE, GradientMatchesFiniteDifference) {
  Rng rng(5);
  Tensor logits({2, 4});
  rng.fill_uniform(logits, -1.0f, 1.0f);
  const std::vector<int> labels{1, 3};
  const LossResult r = SoftmaxCrossEntropy(logits, labels);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits.at(i);
    logits.at(i) = orig + eps;
    const float fp = SoftmaxCrossEntropy(logits, labels).loss;
    logits.at(i) = orig - eps;
    const float fm = SoftmaxCrossEntropy(logits, labels).loss;
    logits.at(i) = orig;
    EXPECT_NEAR(r.grad_logits.at(i), (fp - fm) / (2.0f * eps), 1e-3f) << i;
  }
}

TEST(SoftmaxCE, RejectsBadLabels) {
  Tensor logits({1, 3});
  EXPECT_THROW((void)SoftmaxCrossEntropy(logits, {5}), Error);
  EXPECT_THROW((void)SoftmaxCrossEntropy(logits, {0, 1}), Error);
}

TEST(AccuracyMetric, Counts) {
  Tensor logits({2, 2}, {0.9f, 0.1f, 0.2f, 0.8f});
  EXPECT_FLOAT_EQ(Accuracy(logits, {0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(Accuracy(logits, {1, 1}), 0.5f);
}

TEST(Network, InitIsDeterministic) {
  Network a = VggMini();
  Network b = VggMini();
  a.Init(99);
  b.Init(99);
  auto pa = a.params(), pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(pa[i]->value.all_close(pb[i]->value, 0.0f)) << pa[i]->name;
}

TEST(Network, DifferentSeedsDiffer) {
  Network a = VggMini();
  Network b = VggMini();
  a.Init(1);
  b.Init(2);
  EXPECT_FALSE(a.params()[0]->value.all_close(b.params()[0]->value, 1e-6f));
}

TEST(Network, ZeroGrads) {
  Network net = ResMini();
  net.Init(3);
  Tensor x = RandomInput(2, 3 * 8 * 8, 6);
  const Tensor y = net.Forward(x);
  (void)net.Backward(y.clone());
  bool any_nonzero = false;
  for (auto* p : net.params())
    if (p->grad.norm2() > 0) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
  net.ZeroGrads();
  for (auto* p : net.params()) EXPECT_EQ(p->grad.norm2(), 0.0f);
}

TEST(MiniModels, ShapesAndLookup) {
  Network vgg = VggMini();
  Network res = ResMini();
  EXPECT_GT(vgg.total_params(), 1000);
  EXPECT_GT(res.total_params(), 1000);
  Tensor x = RandomInput(4, 3 * 8 * 8, 7);
  EXPECT_EQ(vgg.Forward(x).cols(), 10);
  EXPECT_EQ(res.Forward(x).cols(), 10);
  EXPECT_THROW((void)MiniByName("alexnet-mini"), Error);
}

TEST(LrSchedule, WarmupAndDecay) {
  LrSchedule s{0.1f, 5, {150, 220}, 0.1f};
  EXPECT_LT(s.LrAt(0), 0.1f);  // warming up
  EXPECT_LT(s.LrAt(1), s.LrAt(3));
  EXPECT_FLOAT_EQ(s.LrAt(10), 0.1f);
  EXPECT_FLOAT_EQ(s.LrAt(150), 0.01f);
  EXPECT_NEAR(s.LrAt(220), 0.001f, 1e-8f);
}

TEST(SgdOptimizer, PlainStep) {
  Param p;
  p.value = Tensor({2}, {1.0f, 2.0f});
  p.grad = Tensor({2}, {0.5f, -0.5f});
  LrSchedule s{0.1f, 0, {}, 1.0f};
  SgdOptimizer opt({&p}, s, /*momentum=*/0.0f);
  opt.Step(0);
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value.at(1), 2.0f + 0.1f * 0.5f);
}

TEST(SgdOptimizer, MomentumAccumulates) {
  Param p;
  p.value = Tensor({1}, {0.0f});
  p.grad = Tensor({1}, {1.0f});
  LrSchedule s{1.0f, 0, {}, 1.0f};
  SgdOptimizer opt({&p}, s, /*momentum=*/0.5f);
  opt.Step(0);  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0f);
  opt.Step(0);  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value.at(0), -2.5f);
}

TEST(SgdOptimizer, WeightDecay) {
  Param p;
  p.value = Tensor({1}, {10.0f});
  p.grad = Tensor({1}, {0.0f});
  LrSchedule s{0.1f, 0, {}, 1.0f};
  SgdOptimizer opt({&p}, s, 0.0f, /*weight_decay=*/0.1f);
  opt.Step(0);
  EXPECT_FLOAT_EQ(p.value.at(0), 10.0f - 0.1f * (0.1f * 10.0f));
}

TEST(Dataset, DeterministicAndBalanced) {
  SyntheticSpec spec;
  const Dataset a = MakeSynthetic(spec, 100, 1);
  const Dataset b = MakeSynthetic(spec, 100, 1);
  EXPECT_TRUE(a.xs.all_close(b.xs, 0.0f));
  EXPECT_EQ(a.labels, b.labels);
  std::vector<int> counts(static_cast<size_t>(spec.num_classes), 0);
  for (int label : a.labels) ++counts[static_cast<size_t>(label)];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Dataset, SplitsDiffer) {
  SyntheticSpec spec;
  const Dataset train = MakeSynthetic(spec, 50, 1);
  const Dataset test = MakeSynthetic(spec, 50, 2);
  EXPECT_FALSE(train.xs.all_close(test.xs, 1e-6f));
}

TEST(Dataset, ValuesBounded) {
  const Dataset ds = MakeSynthetic(SyntheticSpec{}, 64, 3);
  for (float v : ds.xs.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);  // tanh output
  }
}

TEST(Dataset, SliceAndShard) {
  const Dataset ds = MakeSynthetic(SyntheticSpec{}, 40, 1);
  Tensor x;
  std::vector<int> y;
  ds.Slice(10, 5, x, y);
  EXPECT_EQ(x.rows(), 5);
  EXPECT_EQ(y.size(), 5u);
  EXPECT_THROW(ds.Slice(38, 5, x, y), Error);

  int64_t covered = 0;
  for (int r = 0; r < 3; ++r) {
    const Shard s = ShardFor(ds, r, 3);
    covered += s.count;
  }
  EXPECT_EQ(covered, 40);
  EXPECT_THROW((void)ShardFor(ds, 3, 3), Error);
}

TEST(Training, SingleProcessLearnsTheTask) {
  // End-to-end sanity: a mini model fits a small synthetic set.
  SyntheticSpec spec;
  spec.noise = 0.5f;
  const Dataset train = MakeSynthetic(spec, 200, 1);
  Network net = VggMini();
  net.Init(11);
  LrSchedule s{0.05f, 0, {}, 1.0f};
  SgdOptimizer opt(net.params(), s, 0.9f);
  Tensor x;
  std::vector<int> y;
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 60; ++step) {
    const int64_t begin = (step * 50) % 200;
    train.Slice(begin, 50, x, y);
    net.ZeroGrads();
    const Tensor logits = net.Forward(x);
    const LossResult r = SoftmaxCrossEntropy(logits, y);
    if (step == 0) first_loss = r.loss;
    last_loss = r.loss;
    (void)net.Backward(r.grad_logits);
    opt.Step(0);
  }
  EXPECT_LT(last_loss, 0.5f * first_loss);
}

}  // namespace
}  // namespace acps::dnn
