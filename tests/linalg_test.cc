#include <gtest/gtest.h>

#include "linalg/orthogonalize.h"
#include "linalg/power_iter.h"
#include "linalg/qr.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"

namespace acps {
namespace {

struct QrDims {
  int64_t n, r;
};

class QrTest : public ::testing::TestWithParam<QrDims> {};

TEST_P(QrTest, Decomposes) {
  const auto [n, r] = GetParam();
  Rng rng(n * 31 + r);
  Tensor a({n, r});
  rng.fill_normal(a);
  const Tensor original = a.clone();
  const QrResult qr = ReducedQr(a);

  // Q has orthonormal columns.
  EXPECT_LT(OrthonormalityError(qr.q), 1e-4f);
  // R is upper triangular.
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < i; ++j) EXPECT_EQ(qr.r.at(i, j), 0.0f);
  // A = Q R.
  const Tensor recon = MatMul(qr.q, qr.r);
  EXPECT_TRUE(recon.all_close(original, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Dims, QrTest,
                         ::testing::Values(QrDims{1, 1}, QrDims{4, 4},
                                           QrDims{8, 3}, QrDims{100, 4},
                                           QrDims{64, 32}, QrDims{257, 16}));

TEST(Qr, RejectsBadShapes) {
  EXPECT_THROW((void)ReducedQr(Tensor({4})), Error);
  EXPECT_THROW((void)ReducedQr(Tensor({2, 4})), Error);  // n < r
}

TEST(Qr, ZeroColumnHandled) {
  Tensor a({5, 2});
  a.at(0, 0) = 1.0f;  // second column all zero
  EXPECT_NO_THROW((void)ReducedQr(a));
}

class OrthoSchemeTest : public ::testing::TestWithParam<OrthoScheme> {};

TEST_P(OrthoSchemeTest, ProducesOrthonormalColumns) {
  Rng rng(55);
  Tensor a({40, 6});
  rng.fill_normal(a);
  Orthogonalize(a, GetParam());
  EXPECT_LT(OrthonormalityError(a), 1e-4f);
}

TEST_P(OrthoSchemeTest, PreservesColumnSpan) {
  Rng rng(66);
  Tensor a({20, 3});
  rng.fill_normal(a);
  const Tensor original = a.clone();
  Orthogonalize(a, GetParam());
  // Projecting the original columns onto span(Q) must reproduce them:
  // original = Q (Qᵀ original).
  const Tensor coeffs = MatMulTA(a, original);
  const Tensor recon = MatMul(a, coeffs);
  EXPECT_TRUE(recon.all_close(original, 1e-3f));
}

TEST_P(OrthoSchemeTest, RankDeficientInputRecovers) {
  // Two identical columns: orthogonalization must still return a full-rank
  // orthonormal basis (via the deterministic reseed path).
  Tensor a({10, 2});
  for (int64_t i = 0; i < 10; ++i) {
    a.at(i, 0) = static_cast<float>(i + 1);
    a.at(i, 1) = static_cast<float>(i + 1);
  }
  Orthogonalize(a, GetParam());
  EXPECT_LT(OrthonormalityError(a), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Schemes, OrthoSchemeTest,
                         ::testing::Values(OrthoScheme::kQr,
                                           OrthoScheme::kGramSchmidt));

TEST(Orthogonalize, DeterministicAcrossCalls) {
  // Power-SGD requires all workers to produce the identical basis.
  Rng rng(77);
  Tensor a({30, 4});
  rng.fill_normal(a);
  Tensor b = a.clone();
  Orthogonalize(a);
  Orthogonalize(b);
  EXPECT_TRUE(a.all_close(b, 0.0f));
}

TEST(PowerIteration, ExactForLowRankMatrix) {
  // Build an exactly rank-2 matrix; rank-2 power iteration must recover it.
  Rng rng(88);
  Tensor u({16, 2});
  Tensor v({12, 2});
  rng.fill_normal(u);
  rng.fill_normal(v);
  const Tensor m = MatMulTB(u, v);
  Rng seed(1);
  const LowRankFactors f = PowerIteration(m, 2, 10, seed);
  EXPECT_LT(RelativeError(m, f), 1e-3f);
}

TEST(PowerIteration, ErrorDecreasesWithRank) {
  Rng rng(99);
  Tensor m({24, 24});
  rng.fill_normal(m);
  double prev = 1e9;
  for (int64_t r : {1, 4, 8, 16, 24}) {
    Rng seed(2);
    const LowRankFactors f = PowerIteration(m, r, 15, seed);
    const double err = RelativeError(m, f);
    EXPECT_LE(err, prev + 1e-4);
    prev = err;
  }
  // Full rank reconstructs exactly (up to float noise).
  Rng seed(2);
  EXPECT_LT(RelativeError(m, PowerIteration(m, 24, 25, seed)), 1e-2f);
}

TEST(PowerIteration, MoreItersNoWorse) {
  Rng rng(111);
  Tensor m({20, 30});
  rng.fill_normal(m);
  Rng s1(3), s2(3);
  const double e1 = RelativeError(m, PowerIteration(m, 3, 1, s1));
  const double e20 = RelativeError(m, PowerIteration(m, 3, 20, s2));
  EXPECT_LE(e20, e1 + 1e-4);
}

TEST(PowerIteration, RejectsBadArgs) {
  Tensor m({4, 4});
  Rng rng(1);
  EXPECT_THROW((void)PowerIteration(m, 0, 1, rng), Error);
  EXPECT_THROW((void)PowerIteration(m, 5, 1, rng), Error);
  EXPECT_THROW((void)PowerIteration(m, 2, 0, rng), Error);
}

TEST(PowerIteration, ZeroMatrix) {
  Tensor m({6, 6});
  Rng rng(4);
  const LowRankFactors f = PowerIteration(m, 2, 3, rng);
  EXPECT_EQ(RelativeError(m, f), 0.0f);
  EXPECT_LT(Reconstruct(f).norm2(), 1e-5f);
}

}  // namespace
}  // namespace acps
