#include "comm/communicator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

// This suite deliberately keeps exercising the deprecated ThreadGroup shim
// until its removal — it is the proof the legacy path stays bitwise
// identical. Everything else in the repo has migrated to Session.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace acps::comm {
namespace {

// Fills a per-rank test vector with a deterministic pattern.
std::vector<float> PatternFor(int rank, size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>((rank + 1) * 100 + static_cast<int>(i % 17));
  return v;
}

std::vector<float> ExpectedSum(int world, size_t n) {
  std::vector<float> sum(n, 0.0f);
  for (int r = 0; r < world; ++r) {
    const auto v = PatternFor(r, n);
    for (size_t i = 0; i < n; ++i) sum[i] += v[i];
  }
  return sum;
}

TEST(ChunkRange, PartitionsExactly) {
  for (int64_t n : {0, 1, 5, 7, 32, 100, 101}) {
    for (int p : {1, 2, 3, 4, 7, 8}) {
      int64_t covered = 0;
      int64_t prev_end = 0;
      for (int c = 0; c < p; ++c) {
        const ChunkRange r = GetChunkRange(n, p, c);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_GE(r.size(), 0);
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, n);
    }
  }
  EXPECT_THROW((void)GetChunkRange(10, 2, 2), Error);
}

struct WorldSize {
  int p;
  size_t n;
};

class AllReduceTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(AllReduceTest, RingSumsAcrossWorkers) {
  const auto [p, n] = GetParam();
  ThreadGroup group(p);
  std::atomic<int> failures{0};
  group.Run([&](Communicator& comm) {
    auto data = PatternFor(comm.rank(), n);
    comm.all_reduce(data);
    const auto expected = ExpectedSum(comm.world_size(), n);
    for (size_t i = 0; i < n; ++i) {
      if (std::abs(data[i] - expected[i]) > 1e-2f) {
        ++failures;
        break;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(AllReduceTest, NaiveMatchesRing) {
  const auto [p, n] = GetParam();
  ThreadGroup group(p);
  std::atomic<int> failures{0};
  group.Run([&](Communicator& comm) {
    auto ring = PatternFor(comm.rank(), n);
    auto naive = PatternFor(comm.rank(), n);
    comm.all_reduce(ring);
    comm.all_reduce(naive, ReduceOp::kSum, AllReduceAlgo::kNaive);
    for (size_t i = 0; i < n; ++i) {
      if (std::abs(ring[i] - naive[i]) > 1e-2f) {
        ++failures;
        break;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllReduceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8),
                       ::testing::Values<size_t>(0, 1, 3, 16, 257, 1024)));

TEST(AllReduce, MaxOp) {
  ThreadGroup group(4);
  std::atomic<int> failures{0};
  group.Run([&](Communicator& comm) {
    std::vector<float> v{static_cast<float>(comm.rank()),
                         static_cast<float>(-comm.rank())};
    comm.all_reduce(v, ReduceOp::kMax);
    if (v[0] != 3.0f || v[1] != 0.0f) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(AllGather, CollectsInRankOrder) {
  const int p = 4;
  const size_t n = 10;
  ThreadGroup group(p);
  std::atomic<int> failures{0};
  group.Run([&](Communicator& comm) {
    const auto mine = PatternFor(comm.rank(), n);
    std::vector<float> all(n * p);
    comm.all_gather(mine, all);
    for (int r = 0; r < p; ++r) {
      const auto expect = PatternFor(r, n);
      for (size_t i = 0; i < n; ++i) {
        if (all[static_cast<size_t>(r) * n + i] != expect[i]) ++failures;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(AllGather, SizeMismatchThrows) {
  ThreadGroup group(2);
  EXPECT_THROW(group.Run([&](Communicator& comm) {
    std::vector<float> send(4), recv(7);  // 7 != 2*4
    comm.all_gather(send, recv);
  }),
               Error);
}

TEST(AllGatherBytes, RoundTrips) {
  const int p = 3;
  ThreadGroup group(p);
  std::atomic<int> failures{0};
  group.Run([&](Communicator& comm) {
    std::vector<std::byte> mine(5, static_cast<std::byte>(comm.rank() + 65));
    std::vector<std::byte> all(15);
    comm.all_gather_bytes(mine, all);
    for (int r = 0; r < p; ++r)
      for (int i = 0; i < 5; ++i)
        if (all[static_cast<size_t>(r * 5 + i)] !=
            static_cast<std::byte>(r + 65))
          ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(AllGatherV, VariableSizes) {
  const int p = 4;
  ThreadGroup group(p);
  std::atomic<int> failures{0};
  group.Run([&](Communicator& comm) {
    // Worker r contributes r+1 bytes of value (r+1).
    std::vector<std::byte> mine(static_cast<size_t>(comm.rank() + 1),
                                static_cast<std::byte>(comm.rank() + 1));
    std::vector<std::byte> recv;
    std::vector<size_t> offsets;
    comm.all_gather_v(mine, recv, offsets);
    if (recv.size() != 1 + 2 + 3 + 4) ++failures;
    for (int r = 0; r < p; ++r) {
      if (offsets[static_cast<size_t>(r + 1)] -
              offsets[static_cast<size_t>(r)] !=
          static_cast<size_t>(r + 1))
        ++failures;
      for (size_t i = offsets[static_cast<size_t>(r)];
           i < offsets[static_cast<size_t>(r + 1)]; ++i)
        if (recv[i] != static_cast<std::byte>(r + 1)) ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(ReduceScatter, EachWorkerOwnsItsChunk) {
  const int p = 4;
  const size_t n = 21;  // deliberately not divisible by p
  ThreadGroup group(p);
  std::atomic<int> failures{0};
  group.Run([&](Communicator& comm) {
    auto data = PatternFor(comm.rank(), n);
    comm.reduce_scatter(data);
    const auto expected = ExpectedSum(p, n);
    const ChunkRange c = GetChunkRange(static_cast<int64_t>(n), p, comm.rank());
    for (int64_t i = c.begin; i < c.end; ++i) {
      if (std::abs(data[static_cast<size_t>(i)] -
                   expected[static_cast<size_t>(i)]) > 1e-2f)
        ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Broadcast, FromEachRoot) {
  const int p = 4;
  for (int root = 0; root < p; ++root) {
    ThreadGroup group(p);
    std::atomic<int> failures{0};
    group.Run([&](Communicator& comm) {
      std::vector<float> v(8, comm.rank() == root ? 42.0f : -1.0f);
      comm.broadcast(v, root);
      for (float x : v)
        if (x != 42.0f) ++failures;
    });
    EXPECT_EQ(failures.load(), 0) << "root=" << root;
  }
}

TEST(Broadcast, BadRootThrows) {
  ThreadGroup group(2);
  EXPECT_THROW(group.Run([&](Communicator& comm) {
    std::vector<float> v(1);
    comm.broadcast(v, 5);
  }),
               Error);
}

// Communication-volume properties from Table II: ring all-reduce moves
// 2(p-1)/p * N elements per worker; ring all-gather (p-1) * N_send.
TEST(TrafficStats, RingAllReduceVolumeMatchesTableII) {
  const int p = 4;
  const size_t n = 64;  // divisible by p so chunking is exact
  ThreadGroup group(p);
  group.Run([&](Communicator& comm) {
    auto data = PatternFor(comm.rank(), n);
    comm.all_reduce(data);
    const uint64_t expect_bytes =
        2ull * (p - 1) * (n / p) * sizeof(float);
    EXPECT_EQ(comm.stats().bytes_sent, expect_bytes);
    EXPECT_EQ(comm.stats().messages_sent, 2ull * (p - 1));
    EXPECT_EQ(comm.stats().collectives, 1u);
  });
}

TEST(TrafficStats, AllGatherVolumeMatchesTableII) {
  const int p = 4;
  const size_t n = 32;
  ThreadGroup group(p);
  group.Run([&](Communicator& comm) {
    const auto mine = PatternFor(comm.rank(), n);
    std::vector<float> all(n * p);
    comm.all_gather(mine, all);
    EXPECT_EQ(comm.stats().bytes_sent, (p - 1) * n * sizeof(float));
    EXPECT_EQ(comm.stats().messages_sent, static_cast<uint64_t>(p - 1));
  });
}

TEST(TrafficStats, NaiveAllReduceIsLinearInP) {
  const int p = 4;
  const size_t n = 16;
  ThreadGroup group(p);
  group.Run([&](Communicator& comm) {
    auto data = PatternFor(comm.rank(), n);
    comm.all_reduce(data, ReduceOp::kSum, AllReduceAlgo::kNaive);
  });
  // Total traffic: p workers send N floats + root broadcasts N.
  const TrafficStats total = group.total_stats();
  EXPECT_EQ(total.bytes_sent, (p + 1) * n * sizeof(float));
}

TEST(ThreadGroup, WorkerExceptionPropagates) {
  ThreadGroup group(3);
  EXPECT_THROW(group.Run([&](Communicator& comm) {
    if (comm.rank() == 1) throw Error("boom");
    // Other workers block on a barrier; the abort must release them.
    comm.barrier();
    comm.barrier();
  }),
               Error);
  // The group is reusable after an aborted run.
  std::atomic<int> ok{0};
  group.Run([&](Communicator& comm) {
    comm.barrier();
    ++ok;
  });
  EXPECT_EQ(ok.load(), 3);
}

TEST(ThreadGroup, SequentialCollectivesStayConsistent) {
  // A chain of different collectives: any rendezvous skew would corrupt
  // results or deadlock.
  ThreadGroup group(4);
  std::atomic<int> failures{0};
  group.Run([&](Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      auto v = PatternFor(comm.rank() + round, 33);
      comm.all_reduce(v);
      comm.barrier();
      std::vector<float> g(33 * 4);
      comm.all_gather(std::span<const float>(v).subspan(0, 33), g);
      std::vector<float> b(5, comm.rank() == round % 4 ? 1.0f : 0.0f);
      comm.broadcast(b, round % 4);
      if (b[0] != 1.0f) ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadGroup, WorldSizeOne) {
  ThreadGroup group(1);
  group.Run([&](Communicator& comm) {
    auto v = PatternFor(0, 7);
    const auto before = v;
    comm.all_reduce(v);
    EXPECT_EQ(v, before);  // no-op with p=1
    std::vector<float> g(7);
    comm.all_gather(v, g);
    EXPECT_EQ(g, before);
  });
}

TEST(ThreadGroup, RejectsBadWorldSize) {
  EXPECT_THROW(ThreadGroup(0), Error);
}


TEST(ThreadGroup, BarrierTimeoutDetectsMismatchedCollectives) {
  // Worker 1 skips the collective entirely: without the watchdog the
  // others would deadlock; with it the group aborts with an error.
  ThreadGroup group(3, /*barrier_timeout_ms=*/200);
  EXPECT_THROW(group.Run([&](Communicator& comm) {
    if (comm.rank() == 1) return;  // never reaches the barrier
    std::vector<float> v(8, 1.0f);
    comm.all_reduce(v);
  }),
               Error);
}

TEST(ThreadGroup, TimeoutDoesNotFireOnHealthyRuns) {
  ThreadGroup group(4, /*barrier_timeout_ms=*/5000);
  std::atomic<int> ok{0};
  group.Run([&](Communicator& comm) {
    std::vector<float> v(128, static_cast<float>(comm.rank()));
    for (int i = 0; i < 10; ++i) comm.all_reduce(v);
    ++ok;
  });
  EXPECT_EQ(ok.load(), 4);
}

// --- Session path (the non-deprecated API) ---------------------------------
// The same collectives exercised through Transport + Session directly, so
// both entry points stay covered while ThreadGroup remains a shim.

TEST(Session, RingAllReduceSumsAcrossWorkers) {
  constexpr int kWorld = 4;
  constexpr size_t kN = 64;
  Transport transport;
  Session session(transport, "comm-test", kWorld);
  const auto expected = ExpectedSum(kWorld, kN);
  session.Run([&](Communicator& comm) {
    auto v = PatternFor(comm.rank(), kN);
    comm.all_reduce(v);
    for (size_t i = 0; i < kN; ++i) EXPECT_FLOAT_EQ(v[i], expected[i]);
  });
}

TEST(Session, SequentialCollectivesStayConsistent) {
  Transport transport;
  Session session(transport, "comm-test", 3);
  session.Run([&](Communicator& comm) {
    for (int iter = 0; iter < 5; ++iter) {
      auto v = PatternFor(comm.rank(), 32);
      comm.all_reduce(v);
      const auto expected = ExpectedSum(3, 32);
      for (size_t i = 0; i < v.size(); ++i) EXPECT_FLOAT_EQ(v[i], expected[i]);

      std::vector<float> b(16, comm.rank() == 1 ? 7.5f : 0.0f);
      comm.broadcast(b, /*root=*/1);
      for (const float x : b) EXPECT_FLOAT_EQ(x, 7.5f);
    }
  });
}

TEST(Session, ReusableAcrossRuns) {
  Transport transport;
  Session session(transport, "comm-test", 2);
  for (int run = 0; run < 3; ++run) {
    session.Run([&](Communicator& comm) {
      std::vector<float> v(8, static_cast<float>(comm.rank() + run));
      comm.all_reduce(v);
      for (const float x : v)
        EXPECT_FLOAT_EQ(x, static_cast<float>(2 * run + 1));
    });
    // Traffic is per-Run, not cumulative across Runs: ring all-reduce of 8
    // floats at p=2 costs each worker 2*(p-1)*(n/p) = 8 floats on the wire.
    EXPECT_EQ(session.total_stats().bytes_sent, 2u * 8u * sizeof(float));
  }
}

TEST(Session, ConcurrentSessionsShareOneTransport) {
  // Two independent jobs on one transport, driven from two plain threads
  // (what TrainingService does with runner threads). Each must see only its
  // own ranks' contributions.
  Transport transport;
  Session a(transport, "job-a", 2);
  Session b(transport, "job-b", 3);
  EXPECT_EQ(transport.active_sessions(), 2);
  EXPECT_EQ(transport.active_ranks(), 5);

  std::atomic<int> ok{0};
  std::thread ta([&] {
    a.Run([&](Communicator& comm) {
      for (int i = 0; i < 20; ++i) {
        std::vector<float> v(64, 1.0f);
        comm.all_reduce(v);
        for (const float x : v) ASSERT_FLOAT_EQ(x, 2.0f);
      }
      ++ok;
    });
  });
  std::thread tb([&] {
    b.Run([&](Communicator& comm) {
      for (int i = 0; i < 20; ++i) {
        std::vector<float> v(64, 1.0f);
        comm.all_reduce(v);
        for (const float x : v) ASSERT_FLOAT_EQ(x, 3.0f);
      }
      ++ok;
    });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(ok.load(), 5);
}

TEST(Session, ThreadGroupIsAThinShimOverSession) {
  // The deprecated ThreadGroup exposes its backing Session: an anonymous
  // tenant (salt 0, no metric prefix) with the ring default.
  ThreadGroup group(2);
  EXPECT_EQ(group.session().job_id(), "");
  EXPECT_EQ(group.session().envelope_salt(), 0u);
  EXPECT_EQ(group.session().world_size(), 2);
  group.Run([](Communicator& comm) {
    std::vector<float> v(8, 1.0f);
    comm.all_reduce(v);
  });
  EXPECT_EQ(group.total_stats().bytes_sent,
            group.session().total_stats().bytes_sent);
}

}  // namespace
}  // namespace acps::comm

#pragma GCC diagnostic pop
