// Model-checker suite (label: modelcheck).
//
// Covers the acps::check subsystem end to end: permutation math, the
// schedule controller's perturbed and order-enforced modes over every
// collective kind, bounded-exhaustive enumeration for small groups, the
// fault-injection mutation test (the checker must catch a deliberately
// mis-ordered hand-off and the violating seed must replay), and the four
// compressor invariant oracles for every registry spec.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "check/oracles.h"
#include "check/schedule.h"
#include "check/sched_point.h"
#include "comm/communicator.h"
#include "compress/registry.h"

namespace acps::check {
namespace {

// Sanitizer builds run every schedule 10-20x slower; scale counts so the
// tsan/asan-ubsan presets still sweep every workload in reasonable time.
// The release modelcheck leg keeps the full >= 200 schedules per kind.
#ifdef ACPS_SANITIZE_BUILD
constexpr int kRunsPerKind = 25;
constexpr int kOraclePerturbedRuns = 3;
#else
constexpr int kRunsPerKind = 200;
constexpr int kOraclePerturbedRuns = 10;
#endif

TEST(PermutationTest, FactorialSmallValues) {
  EXPECT_EQ(Factorial(0), 1);
  EXPECT_EQ(Factorial(1), 1);
  EXPECT_EQ(Factorial(2), 2);
  EXPECT_EQ(Factorial(3), 6);
  EXPECT_EQ(Factorial(4), 24);
}

TEST(PermutationTest, NthPermutationEnumeratesAllOrders) {
  const int p = 3;
  std::set<std::vector<int>> seen;
  for (int d = 0; d < Factorial(p); ++d) {
    std::vector<int> perm = NthPermutation(p, d);
    ASSERT_EQ(perm.size(), static_cast<size_t>(p));
    std::vector<int> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
    seen.insert(perm);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(Factorial(p)));
  EXPECT_EQ(NthPermutation(p, 0), (std::vector<int>{0, 1, 2}));  // identity
}

TEST(SchedPointTest, HookIsInertWithoutListener) {
  // Must be safe to hit from any code path with no listener installed.
  SchedPoint(PointKind::kBarrierEnter, -1);
  SchedPoint(PointKind::kHandoffSend, 0);
}

TEST(SchedPointTest, ScopedInstallRestoresPrevious) {
  ScheduleConfig cfg;
  cfg.world_size = 2;
  ScheduleController outer(cfg);
  ScheduleController inner(cfg);
  ScopedSchedListener a(&outer);
  {
    ScopedSchedListener b(&inner);
    SchedPoint(PointKind::kBarrierEnter, -1);
    EXPECT_EQ(inner.stats().points, 1);
    EXPECT_EQ(outer.stats().points, 0);
  }
  SchedPoint(PointKind::kBarrierEnter, -1);
  EXPECT_EQ(outer.stats().points, 1);
}

// --- Random perturbation sweep over every collective kind. -----------------

class PerturbedCollectives : public ::testing::TestWithParam<Workload> {};

TEST_P(PerturbedCollectives, NoViolationsAcrossSchedules) {
  ExploreOptions opt;
  opt.world_size = 3;
  opt.runs = kRunsPerKind;
  const ExploreReport report = ExplorePerturbed(GetParam(), opt);
  EXPECT_EQ(report.schedules_run, kRunsPerKind);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // Uniform-hand-off workloads must show windows; broadcast publishes from
  // the root only, so its window count is legitimately zero.
  if (GetParam() != Workload::kBroadcast)
    EXPECT_GT(report.windows, 0) << report.Summary();
  else
    EXPECT_EQ(report.windows, 0) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PerturbedCollectives,
    ::testing::ValuesIn(AllCollectiveWorkloads()),
    [](const ::testing::TestParamInfo<Workload>& info) {
      std::string name = ToString(info.param);
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(ExplorerTest, WfbpStepSurvivesPerturbation) {
  // The GradReducer WFBP pipeline (hooks -> buckets -> fused all-reduce,
  // low-rank and dense paths) under the same schedule sweep.
  ExploreOptions opt;
  opt.world_size = 3;
  opt.runs = std::max(kRunsPerKind / 4, 10);
  const ExploreReport report = ExplorePerturbed(Workload::kWfbpStep, opt);
  EXPECT_EQ(report.schedules_run, opt.runs);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.windows, 0);
}

TEST(ExplorerTest, HierarchicalAllReduceSurvivesPerturbation) {
  // The two-level all-reduce's phase boundaries (kHierPhase) are schedule
  // points; p = 4 exercises the full three-phase shape (2 nodes x 2 GPUs)
  // including the cross-node leader ring.
  ExploreOptions opt;
  opt.world_size = 4;
  opt.runs = std::max(kRunsPerKind / 8, 5);
  const ExploreReport report = ExplorePerturbed(Workload::kHierarchical, opt);
  EXPECT_EQ(report.schedules_run, opt.runs);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ExplorerTest, OptimizerStepSurvivesPerturbation) {
  // Two full DistributedOptimizer steps (kOptStep boundary + WFBP hooks +
  // bucketed all-reduces + SGD) under the schedule sweep: params must stay
  // bitwise rank-invariant whatever the interleaving.
  ExploreOptions opt;
  opt.world_size = 3;
  opt.runs = std::max(kRunsPerKind / 16, 5);
  const ExploreReport report =
      ExplorePerturbed(Workload::kOptimizerStep, opt);
  EXPECT_EQ(report.schedules_run, opt.runs);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// --- Bounded exhaustive exploration. ---------------------------------------

TEST(ExplorerTest, ExhaustiveTwoRankAllReduceCompletes) {
  ExploreOptions opt;
  opt.world_size = 2;
  const ExploreReport report = ExploreExhaustive(Workload::kAllReduceRing, opt);
  // p = 2: one reduce-scatter step + one all-gather step = 2 hand-off
  // windows, 2! orders each -> 4 schedules enumerate the whole space.
  EXPECT_EQ(report.windows, 2) << report.Summary();
  EXPECT_EQ(report.schedules_run, 4) << report.Summary();
  EXPECT_TRUE(report.exhaustive_complete) << report.Summary();
  EXPECT_EQ(report.enforcement_misses, 0) << report.Summary();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ExplorerTest, ExhaustiveThreeRankReduceScatterCompletes) {
  ExploreOptions opt;
  opt.world_size = 3;
  const ExploreReport report =
      ExploreExhaustive(Workload::kReduceScatter, opt);
  // p = 3: 2 windows, 3! orders each -> 36 schedules.
  EXPECT_EQ(report.windows, 2) << report.Summary();
  EXPECT_EQ(report.schedules_run, 36) << report.Summary();
  EXPECT_TRUE(report.exhaustive_complete) << report.Summary();
  EXPECT_EQ(report.enforcement_misses, 0) << report.Summary();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ExplorerTest, ExhaustiveRespectsScheduleBudget) {
  ExploreOptions opt;
  opt.world_size = 3;
  // Ring all-reduce at p = 3 has 4 windows -> 6^4 = 1296 total orders;
  // a budget of 50 must stop early and say so.
  const ExploreReport report =
      ExploreExhaustive(Workload::kAllReduceRing, opt, /*max_schedules=*/50);
  EXPECT_EQ(report.schedules_run, 50) << report.Summary();
  EXPECT_FALSE(report.exhaustive_complete);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// --- Fault injection: the mutation test for the checker itself. ------------

TEST(FaultInjectionTest, MisorderedHandoffIsDetectedAndReplayable) {
  ExploreOptions opt;
  opt.world_size = 3;
  opt.runs = 3;
  opt.fault = FaultSpec{.window = 0, .rank = 0};
  const ExploreReport report = ExplorePerturbed(Workload::kAllReduceRing, opt);
  ASSERT_FALSE(report.ok())
      << "fault-injected hand-off was NOT detected — the checker is blind";
  const Violation& v = report.violations.front();
  EXPECT_EQ(v.seed, opt.base_seed);
  EXPECT_NE(v.schedule.find("FAULT"), std::string::npos)
      << "violation trace should pinpoint the injected fault:\n" << v.schedule;
  EXPECT_NE(report.Summary().find("seed="), std::string::npos);

  // Replay from the reported seed: same seed + same fault spec must
  // reproduce a violation with the identical divergence description.
  const ExploreReport replay =
      ReplaySeed(Workload::kAllReduceRing, opt, v.seed);
  ASSERT_FALSE(replay.ok()) << "seed replay lost the violation";
  EXPECT_EQ(replay.violations.front().what, v.what);
}

TEST(FaultInjectionTest, DetectedUnderEnforcedOrdersToo) {
  ExploreOptions opt;
  opt.world_size = 2;
  opt.fault = FaultSpec{.window = 0, .rank = 1};
  const ExploreReport report =
      ExploreExhaustive(Workload::kAllReduceRing, opt);
  EXPECT_FALSE(report.ok())
      << "fault-injected hand-off survived exhaustive mode undetected";
}

TEST(FaultInjectionTest, CleanRunStaysClean) {
  // Sanity inverse: without a fault the same tiny configuration passes.
  ExploreOptions opt;
  opt.world_size = 3;
  opt.runs = 3;
  const ExploreReport report = ExplorePerturbed(Workload::kAllReduceRing, opt);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(FaultInjectionTest, ReusedControllerInjectsIdenticallyAcrossRuns) {
  // Regression: window_ kept counting up across Session runs, so a
  // FaultSpec aimed at window 0 only ever fired on the FIRST run through a
  // reused controller — later runs silently stopped injecting.
  // ResetRunState() (called by the explorer before every run) rearms it.
  ScheduleConfig cfg;
  cfg.world_size = 3;
  cfg.seed = 21;
  cfg.perturb_prob = 0.0;
  cfg.fault = FaultSpec{.window = 0, .rank = 0};
  ScheduleController controller(cfg);

  const auto run_once = [&controller] {
    std::vector<std::vector<float>> out(3);
    comm::Transport group_transport;
    comm::Session group(group_transport, "", 3);
    ScopedSchedListener install(&controller);
    controller.ResetRunState();
    group.Run([&out](comm::Communicator& comm) {
      std::vector<float> data(12, static_cast<float>(comm.rank() + 1));
      comm.all_reduce(data);
      out[static_cast<size_t>(comm.rank())] = data;
    });
    return out;
  };
  const auto first = run_once();
  ASSERT_EQ(controller.stats().faults_injected, 1);
  const auto second = run_once();
  EXPECT_EQ(controller.stats().faults_injected, 2)
      << "reused controller stopped injecting — run state was not rearmed";
  EXPECT_EQ(first, second)
      << "same seed + same fault spec must corrupt identically on replay";
}

TEST(FaultInjectionTest, ConsecutiveExploreCallsWithSameSeedAgree) {
  // Two back-to-back Explore calls over the same seeded fault must report
  // the identical violation (same divergence text), proving the injection
  // state carries nothing over from the previous exploration.
  ExploreOptions opt;
  opt.world_size = 3;
  opt.runs = 2;
  opt.fault = FaultSpec{.window = 0, .rank = 0};
  const ExploreReport a = ExplorePerturbed(Workload::kAllReduceRing, opt);
  const ExploreReport b = ExplorePerturbed(Workload::kAllReduceRing, opt);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  ASSERT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.violations.front().seed, b.violations.front().seed);
  EXPECT_EQ(a.violations.front().what, b.violations.front().what);
}

// --- Compressor invariant oracles. -----------------------------------------

TEST(OracleTest, RegistryCoversThePaperCompressors) {
  const auto known = compress::KnownCompressors();
  const auto has = [&](const std::string& prefix) {
    return std::any_of(known.begin(), known.end(), [&](const std::string& s) {
      return s.starts_with(prefix);
    });
  };
  EXPECT_TRUE(has("fp16"));
  EXPECT_TRUE(has("qsgd"));
  EXPECT_TRUE(has("terngrad"));
  EXPECT_TRUE(has("randomk"));
}

TEST(OracleTest, AllRegisteredCompressorsSatisfyInvariants) {
  OracleOptions opt;
  opt.perturbed_runs = kOraclePerturbedRuns;
  const OracleReport report = CheckAllRegisteredCompressors(opt);
  EXPECT_GT(report.checks_run, 0);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(OracleTest, KernelsAreThreadCountInvariant) {
  // DESIGN.md §6e: the acps::par kernels produce bitwise identical results
  // at 1/2/4/8 threads and match their naive references at 1 thread.
  const OracleReport report = CheckKernelThreadInvariance(OracleOptions{});
  EXPECT_GT(report.checks_run, 0);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(OracleTest, SparsifiersConserveExactlyQuantizersToRounding) {
  EXPECT_EQ(EfTolerance("topk:0.001"), 0.0);
  EXPECT_EQ(EfTolerance("randomk:0.01"), 0.0);
  EXPECT_EQ(EfTolerance("fp16"), 0.0);
  EXPECT_GT(EfTolerance("qsgd:16"), 0.0);
  EXPECT_GT(EfTolerance("sign"), 0.0);
}

TEST(OracleTest, FailureReportNamesCompressorShapeSeedAndProperty) {
  const OracleFailure f{.compressor = "qsgd:16",
                        .property = "ef-conservation",
                        .numel = 1000,
                        .seed = 0xBEEF,
                        .detail = "example"};
  const std::string msg = f.Describe();
  EXPECT_NE(msg.find("qsgd:16"), std::string::npos);
  EXPECT_NE(msg.find("ef-conservation"), std::string::npos);
  EXPECT_NE(msg.find("[1000]"), std::string::npos);
  EXPECT_NE(msg.find("48879"), std::string::npos);  // 0xBEEF in decimal
}

}  // namespace
}  // namespace acps::check
