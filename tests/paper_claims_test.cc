// The paper-claims ledger: one test per quantitative claim the paper makes
// in its abstract/intro/conclusion, each checked against this
// reproduction. Where the claim is about their testbed's absolute numbers
// we check the shape (ordering / ratio band) instead — see EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "sim/pipeline.h"

namespace acps {
namespace {

double PaperIterMs(const char* model_name, sim::Method method) {
  const auto model = models::ByName(model_name);
  int batch = 0;
  int64_t rank = 4;
  for (const auto& em : models::PaperEvalSet()) {
    if (em.name == model_name) {
      batch = em.batch_size;
      rank = em.powersgd_rank;
    }
  }
  sim::SimConfig cfg;
  cfg.method = method;
  cfg.batch_size = batch;
  cfg.rank = rank;
  return sim::SimulateIterationAvg(model, cfg).total_ms();
}

// "ACP-SGD achieves an average of 4.06x and 1.43x speedups over S-SGD and
// Power-SGD, respectively" (abstract). We require >3x and >1.25x.
TEST(PaperClaims, AverageSpeedups) {
  double vs_ssgd = 0.0, vs_power = 0.0;
  for (const auto& em : models::PaperEvalSet()) {
    const double acp = PaperIterMs(em.name.c_str(), sim::Method::kACPSGD);
    vs_ssgd += PaperIterMs(em.name.c_str(), sim::Method::kSSGD) / acp;
    // Abstract's "Power-SGD" baseline: the better of the two variants
    // (the paper averages across both comparisons; we take the stricter).
    const double power =
        std::min(PaperIterMs(em.name.c_str(), sim::Method::kPowerSGD),
                 PaperIterMs(em.name.c_str(), sim::Method::kPowerSGDStar));
    vs_power += power / acp;
  }
  EXPECT_GT(vs_ssgd / 4.0, 3.0);
  EXPECT_GT(vs_power / 4.0, 1.25);
}

// "up to 9.42x ... over S-SGD" (on BERT-Large). We require > 6x.
TEST(PaperClaims, MaxSpeedupOnBertLarge) {
  const double ratio = PaperIterMs("bert-large", sim::Method::kSSGD) /
                       PaperIterMs("bert-large", sim::Method::kACPSGD);
  EXPECT_GT(ratio, 6.0);
}

// "it consistently outperforms other baselines across different setups"
// (abstract) — ACP-SGD is the fastest method for every eval model.
TEST(PaperClaims, AcpWinsEverywhere) {
  for (const auto& em : models::PaperEvalSet()) {
    const double acp = PaperIterMs(em.name.c_str(), sim::Method::kACPSGD);
    for (sim::Method m :
         {sim::Method::kSSGD, sim::Method::kSignSGD, sim::Method::kTopkSGD,
          sim::Method::kPowerSGD, sim::Method::kPowerSGDStar}) {
      EXPECT_LE(acp, PaperIterMs(em.name.c_str(), m) + 1e-9)
          << em.name << " vs " << sim::MethodName(m);
    }
  }
}

// "S-SGD runs 21%-70% faster than compression counterparts in training
// ResNet-50" (§I, about Sign/Top-k). We require >= 20% on both.
TEST(PaperClaims, SsgdBeatsSignAndTopkOnResNet50) {
  const double ssgd = PaperIterMs("resnet50", sim::Method::kSSGD);
  EXPECT_GT(PaperIterMs("resnet50", sim::Method::kSignSGD) / ssgd, 1.2);
  EXPECT_GT(PaperIterMs("resnet50", sim::Method::kTopkSGD) / ssgd, 1.2);
}

// "the optimized S-SGD (with WFBP and tensor fusion) can achieve almost
// 73% performance improvement over the naive implementation when training
// ResNet-152" (§I / Fig 9). We require >= 50% (i.e., naive/opt >= 1.5).
TEST(PaperClaims, SysOptsGiveSsgdLargeGainOnResNet152) {
  const auto model = models::ResNet152();
  sim::SimConfig naive;
  naive.method = sim::Method::kSSGD;
  naive.sysopt = sim::SysOptLevel::kNaive;
  sim::SimConfig opt = naive;
  opt.sysopt = sim::SysOptLevel::kWfbpTf;
  const double gain = sim::SimulateIterationAvg(model, naive).total_s /
                      sim::SimulateIterationAvg(model, opt).total_s;
  EXPECT_GT(gain, 1.5);
}

// "system optimization techniques integrated in ACP-SGD help achieve
// 2.14x performance improvement over the naive implementation" (§I).
// We require >= 1.7x on BERT-Large.
TEST(PaperClaims, SysOptsGiveAcpLargeGain) {
  const auto model = models::BertLarge();
  sim::SimConfig naive;
  naive.method = sim::Method::kACPSGD;
  naive.rank = 32;
  naive.sysopt = sim::SysOptLevel::kNaive;
  sim::SimConfig opt = naive;
  opt.sysopt = sim::SysOptLevel::kWfbpTf;
  const double gain = sim::SimulateIterationAvg(model, naive).total_s /
                      sim::SimulateIterationAvg(model, opt).total_s;
  EXPECT_GT(gain, 1.7);
}

// "Power-SGD with WFBP causes an overall of 13% slowdown than Power-SGD
// without WFBP" (§III-C): WFBP alone must hurt Power-SGD.
TEST(PaperClaims, WfbpAloneHurtsPowerSgd) {
  for (const char* name : {"resnet152", "bert-large"}) {
    const auto model = models::ByName(name);
    sim::SimConfig naive;
    naive.method = sim::Method::kPowerSGDStar;
    naive.rank = name == std::string("resnet152") ? 4 : 32;
    naive.sysopt = sim::SysOptLevel::kNaive;
    sim::SimConfig wfbp = naive;
    wfbp.sysopt = sim::SysOptLevel::kWfbp;
    EXPECT_GT(sim::SimulateIterationAvg(model, wfbp).total_s,
              sim::SimulateIterationAvg(model, naive).total_s)
        << name;
  }
}

// "ACP-SGD ... halve the gradient compression and communication costs
// compared to Power-SGD" (§IV-A): per-step communicated elements of ACP
// are exactly half of Power-SGD's r(n+m) on average.
TEST(PaperClaims, AcpHalvesCommunication) {
  for (const auto& em : models::PaperEvalSet()) {
    const auto model = models::ByName(em.name);
    const double power_ratio =
        model.LowRankCompressionRatio(em.powersgd_rank);
    const double acp_ratio = model.AcpCompressionRatio(em.powersgd_rank);
    // Dense (vector) tensors dilute the exact factor of 2 slightly.
    EXPECT_GT(acp_ratio / power_ratio, 1.6) << em.name;
    EXPECT_LE(acp_ratio / power_ratio, 2.0 + 1e-9) << em.name;
  }
}

// Fig 13 / §V-F: "Power-SGD and ACP-SGD achieve 5.7x and 7.1x speedups
// over S-SGD [ResNet-50, 1GbE] ... up to 11.2x and 23.9x in BERT-Base".
TEST(PaperClaims, OneGbESpeedups) {
  auto at_1gbe = [](const char* name, sim::Method m, int64_t rank) {
    const auto model = models::ByName(name);
    sim::SimConfig cfg;
    cfg.method = m;
    cfg.rank = rank;
    cfg.net = comm::NetworkSpec::Ethernet1G();
    return sim::SimulateIterationAvg(model, cfg).total_ms();
  };
  const double r50 = at_1gbe("resnet50", sim::Method::kSSGD, 4) /
                     at_1gbe("resnet50", sim::Method::kACPSGD, 4);
  EXPECT_GT(r50, 4.0);   // paper 7.1x; ours 6.8x
  EXPECT_LT(r50, 12.0);
  const double bb = at_1gbe("bert-base", sim::Method::kSSGD, 32) /
                    at_1gbe("bert-base", sim::Method::kACPSGD, 32);
  EXPECT_GT(bb, 15.0);  // paper 23.9x; ours 22.2x
  EXPECT_LT(bb, 35.0);
}

}  // namespace
}  // namespace acps
