// Gradient checks and semantics tests for BatchNorm1d / LayerNorm.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/norm.h"
#include "tensor/rng.h"

namespace acps::dnn {
namespace {

float Objective(const Tensor& y) { return 0.5f * y.dot(y); }

// Finite-difference check of param and input gradients for a norm layer.
template <typename LayerT>
void NormGradCheck(LayerT& layer, Tensor& x, float tol = 3e-2f) {
  for (Param* p : layer.params()) p->grad.zero();
  const Tensor y = layer.Forward(x);
  const Tensor gx = layer.Backward(y.clone());

  const float eps = 1e-2f;
  for (Param* p : layer.params()) {
    for (int64_t i = 0; i < p->value.numel();
         i += std::max<int64_t>(1, p->value.numel() / 5)) {
      const float orig = p->value.at(i);
      p->value.at(i) = orig + eps;
      const float fp = Objective(layer.Forward(x));
      p->value.at(i) = orig - eps;
      const float fm = Objective(layer.Forward(x));
      p->value.at(i) = orig;
      const float numeric = (fp - fm) / (2.0f * eps);
      EXPECT_NEAR(p->grad.at(i), numeric, tol * (std::abs(numeric) + 1.0f))
          << p->name << "[" << i << "]";
    }
  }
  (void)layer.Forward(x);
  for (int64_t i = 0; i < x.numel(); i += std::max<int64_t>(1, x.numel() / 6)) {
    const float orig = x.at(i);
    x.at(i) = orig + eps;
    const float fp = Objective(layer.Forward(x));
    x.at(i) = orig - eps;
    const float fm = Objective(layer.Forward(x));
    x.at(i) = orig;
    const float numeric = (fp - fm) / (2.0f * eps);
    EXPECT_NEAR(gx.at(i), numeric, tol * (std::abs(numeric) + 1.0f)) << i;
  }
}

Tensor RandomInput(int64_t batch, int64_t features, uint64_t seed) {
  Rng rng(seed);
  Tensor x({batch, features});
  rng.fill_uniform(x, -2.0f, 2.0f);
  return x;
}

TEST(BatchNorm, GradCheckTraining) {
  BatchNorm1d bn("bn", 5);
  Rng rng(1);
  bn.Init(rng);
  // Nudge gamma/beta off their identity init so gradients are generic.
  rng.fill_uniform(bn.params()[0]->value, 0.5f, 1.5f);
  rng.fill_uniform(bn.params()[1]->value, -0.5f, 0.5f);
  Tensor x = RandomInput(6, 5, 2);
  NormGradCheck(bn, x);
}

TEST(BatchNorm, NormalizesBatch) {
  BatchNorm1d bn("bn", 3);
  Rng rng(3);
  bn.Init(rng);
  Tensor x = RandomInput(64, 3, 4);
  x.scale_(3.0f);
  const Tensor y = bn.Forward(x);
  for (int64_t j = 0; j < 3; ++j) {
    double m = 0.0, v = 0.0;
    for (int64_t b = 0; b < 64; ++b) m += y.at(b, j);
    m /= 64;
    for (int64_t b = 0; b < 64; ++b) {
      const double d = y.at(b, j) - m;
      v += d * d;
    }
    v /= 64;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeAndDriveEval) {
  BatchNorm1d bn("bn", 2, /*momentum=*/0.5f);
  Rng rng(5);
  bn.Init(rng);
  // Feed batches with mean ~ (10, -10).
  Tensor x({32, 2});
  for (int step = 0; step < 30; ++step) {
    for (int64_t b = 0; b < 32; ++b) {
      x.at(b, 0) = 10.0f + rng.normal();
      x.at(b, 1) = -10.0f + rng.normal();
    }
    (void)bn.Forward(x);
  }
  EXPECT_NEAR(bn.running_mean().at(0), 10.0f, 0.5f);
  EXPECT_NEAR(bn.running_mean().at(1), -10.0f, 0.5f);
  // Eval mode uses them: a sample at the running mean normalizes to ~beta.
  bn.set_training(false);
  Tensor probe({2, 2});
  probe.at(0, 0) = 10.0f;
  probe.at(0, 1) = -10.0f;
  probe.at(1, 0) = 10.0f;
  probe.at(1, 1) = -10.0f;
  const Tensor y = bn.Forward(probe);
  EXPECT_NEAR(y.at(0, 0), 0.0f, 0.3f);
  EXPECT_NEAR(y.at(0, 1), 0.0f, 0.3f);
}

TEST(BatchNorm, TrainingNeedsBatchOfTwo) {
  BatchNorm1d bn("bn", 2);
  Tensor x({1, 2});
  EXPECT_THROW((void)bn.Forward(x), Error);
  bn.set_training(false);
  EXPECT_NO_THROW((void)bn.Forward(x));
}

TEST(LayerNorm, GradCheck) {
  LayerNorm ln("ln", 7);
  Rng rng(6);
  ln.Init(rng);
  rng.fill_uniform(ln.params()[0]->value, 0.5f, 1.5f);
  rng.fill_uniform(ln.params()[1]->value, -0.5f, 0.5f);
  Tensor x = RandomInput(4, 7, 7);
  NormGradCheck(ln, x);
}

TEST(LayerNorm, NormalizesEachRow) {
  LayerNorm ln("ln", 16);
  Rng rng(8);
  ln.Init(rng);
  Tensor x = RandomInput(5, 16, 9);
  x.scale_(4.0f);
  const Tensor y = ln.Forward(x);
  for (int64_t b = 0; b < 5; ++b) {
    double m = 0.0, v = 0.0;
    for (int64_t j = 0; j < 16; ++j) m += y.at(b, j);
    m /= 16;
    for (int64_t j = 0; j < 16; ++j) {
      const double d = y.at(b, j) - m;
      v += d * d;
    }
    v /= 16;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-2);
  }
}

TEST(LayerNorm, ScaleInvariance) {
  // LayerNorm(c·x) == LayerNorm(x) for c > 0 (a property tests can rely
  // on for BERT-style stability).
  LayerNorm ln("ln", 8);
  Rng rng(10);
  ln.Init(rng);
  Tensor x = RandomInput(3, 8, 11);
  const Tensor y1 = ln.Forward(x);
  Tensor scaled = x.clone();
  scaled.scale_(7.5f);
  const Tensor y2 = ln.Forward(scaled);
  EXPECT_TRUE(y1.all_close(y2, 1e-3f));
}

}  // namespace
}  // namespace acps::dnn
