#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace acps {
namespace {

TEST(Shape, NumElements) {
  EXPECT_EQ(NumElements({}), 1);  // scalar
  EXPECT_EQ(NumElements({0}), 0);
  EXPECT_EQ(NumElements({3}), 3);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW((void)NumElements({2, -1}), Error);
}

TEST(Shape, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FromValuesChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, CloneIsDeep) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b = a.clone();
  b.at(0) = 99.0f;
  EXPECT_EQ(a.at(0), 1.0f);
  EXPECT_EQ(b.at(0), 99.0f);
}

TEST(Tensor, FullAndFromSpan) {
  Tensor f = Tensor::Full({3}, 2.5f);
  EXPECT_EQ(f.at(2), 2.5f);
  const std::vector<float> v{1, 2, 3, 4};
  Tensor s = Tensor::FromSpan({2, 2}, v);
  EXPECT_EQ(s.at(1, 1), 4.0f);
}

TEST(Tensor, MatrixAccessors) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.at(0, 2), 3.0f);
  EXPECT_EQ(m.at(1, 0), 4.0f);
  m.at(1, 2) = 7.0f;
  EXPECT_EQ(m.at(5), 7.0f);
}

TEST(Tensor, AccessorBoundsChecked) {
  Tensor m({2, 2});
  EXPECT_THROW((void)m.at(4), Error);
  EXPECT_THROW((void)m.at(-1), Error);
  EXPECT_THROW((void)m.at(2, 0), Error);
  EXPECT_THROW((void)m.at(0, 2), Error);
  Tensor v({4});
  EXPECT_THROW((void)v.rows(), Error);  // not a matrix
}

TEST(Tensor, Reshape) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0f);  // row-major preserved
  EXPECT_THROW(t.reshape({4, 2}), Error);
  const Tensor r = t.reshaped({6});
  EXPECT_EQ(r.ndim(), 1);
  EXPECT_EQ(t.ndim(), 2);  // original untouched
}

TEST(Tensor, Arithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a.at(2), 33.0f);
  a.sub_(b);
  EXPECT_EQ(a.at(2), 3.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a.at(0), 6.0f);
  a.scale_(2.0f);
  EXPECT_EQ(a.at(0), 12.0f);
  a.fill(7.0f);
  EXPECT_EQ(a.at(1), 7.0f);
  a.zero();
  EXPECT_EQ(a.sum(), 0.0f);
}

TEST(Tensor, ArithmeticShapeMismatch) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a.add_(b), Error);
  EXPECT_THROW(a.copy_from(b), Error);
  EXPECT_THROW((void)a.dot(b), Error);
}

TEST(Tensor, Reductions) {
  Tensor a({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(a.sum(), -2.0f);
  EXPECT_FLOAT_EQ(a.abs_max(), 4.0f);
  EXPECT_FLOAT_EQ(a.norm2(), std::sqrt(30.0f));
  Tensor b({4}, {1, 1, 1, 1});
  EXPECT_FLOAT_EQ(a.dot(b), -2.0f);
}

TEST(Tensor, CopyFrom) {
  Tensor a({2, 2});
  Tensor b({4}, {1, 2, 3, 4});  // same numel, different shape is allowed
  a.copy_from(b);
  EXPECT_EQ(a.at(1, 1), 4.0f);
}

TEST(Tensor, AllClose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f + 5e-6f, 2.0f});
  EXPECT_TRUE(a.all_close(b));
  EXPECT_FALSE(a.all_close(b, 1e-7f));
  Tensor c({1, 2}, {1.0f, 2.0f});
  EXPECT_FALSE(a.all_close(c));  // shape matters
}

class TensorSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(TensorSizeTest, SumMatchesLoop) {
  const int64_t n = GetParam();
  Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t.at(i) = static_cast<float>(i % 7) - 3.0f;
  double expect = 0.0;
  for (int64_t i = 0; i < n; ++i) expect += static_cast<float>(i % 7) - 3.0f;
  EXPECT_NEAR(t.sum(), expect, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TensorSizeTest,
                         ::testing::Values(0, 1, 2, 7, 64, 1000, 4097));

}  // namespace
}  // namespace acps
