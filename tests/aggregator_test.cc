// Integration tests: gradient aggregators against the real thread cluster.
#include <gtest/gtest.h>

#include <atomic>

#include "core/aggregators.h"
#include "dnn/layers.h"
#include "tensor/rng.h"

namespace acps::core {
namespace {

// Builds a small parameter set (2 matrices + 1 vector) with per-worker
// deterministic gradients.
struct TestParams {
  dnn::Param w1, w2, bias;

  explicit TestParams(int rank) {
    w1.name = "w1";
    w1.value = Tensor({16, 24});
    w1.grad = Tensor({16, 24});
    w1.matrix_rows = 16;
    w1.matrix_cols = 24;
    w2.name = "w2";
    w2.value = Tensor({8, 40});
    w2.grad = Tensor({8, 40});
    w2.matrix_rows = 8;
    w2.matrix_cols = 40;
    bias.name = "bias";
    bias.value = Tensor({24});
    bias.grad = Tensor({24});
    Rng rng(1000 + static_cast<uint64_t>(rank));
    rng.fill_normal(w1.grad);
    rng.fill_normal(w2.grad);
    rng.fill_normal(bias.grad);
  }

  std::vector<dnn::Param*> list() { return {&w1, &w2, &bias}; }
};

// The exact mean gradients across `p` workers.
TestParams MeanOf(int p) {
  TestParams mean(0);
  for (int r = 1; r < p; ++r) {
    TestParams other(r);
    mean.w1.grad.add_(other.w1.grad);
    mean.w2.grad.add_(other.w2.grad);
    mean.bias.grad.add_(other.bias.grad);
  }
  const float inv = 1.0f / static_cast<float>(p);
  mean.w1.grad.scale_(inv);
  mean.w2.grad.scale_(inv);
  mean.bias.grad.scale_(inv);
  return mean;
}

TEST(AllReduceAggregator, ComputesExactMean) {
  const int p = 4;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  const TestParams expect = MeanOf(p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    TestParams tp(comm.rank());
    AllReduceAggregator agg;
    auto params = tp.list();
    agg.Aggregate(params, comm);
    if (!tp.w1.grad.all_close(expect.w1.grad, 1e-4f)) ++failures;
    if (!tp.w2.grad.all_close(expect.w2.grad, 1e-4f)) ++failures;
    if (!tp.bias.grad.all_close(expect.bias.grad, 1e-4f)) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(AllReduceAggregator, SmallBucketsStillExact) {
  const int p = 3;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  const TestParams expect = MeanOf(p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    TestParams tp(comm.rank());
    AllReduceAggregator agg(/*buffer_bytes=*/256);  // force many buckets
    auto params = tp.list();
    agg.Aggregate(params, comm);
    if (!tp.w1.grad.all_close(expect.w1.grad, 1e-4f)) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

// All workers must hold identical gradients after any aggregator runs —
// otherwise replicas diverge.
template <typename MakeAgg>
void CheckWorkersIdentical(int p, MakeAgg make) {
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::vector<Tensor> w1(static_cast<size_t>(p)), w2(static_cast<size_t>(p)),
      bias(static_cast<size_t>(p));
  group.Run([&](comm::Communicator& comm) {
    TestParams tp(comm.rank());
    auto agg = make(comm.rank(), p);
    auto params = tp.list();
    // Two rounds so stateful aggregators exercise both parities.
    for (int round = 0; round < 2; ++round) agg->Aggregate(params, comm);
    w1[static_cast<size_t>(comm.rank())] = tp.w1.grad.clone();
    w2[static_cast<size_t>(comm.rank())] = tp.w2.grad.clone();
    bias[static_cast<size_t>(comm.rank())] = tp.bias.grad.clone();
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_TRUE(w1[static_cast<size_t>(r)].all_close(w1[0], 1e-5f)) << r;
    EXPECT_TRUE(w2[static_cast<size_t>(r)].all_close(w2[0], 1e-5f)) << r;
    EXPECT_TRUE(bias[static_cast<size_t>(r)].all_close(bias[0], 1e-5f)) << r;
  }
}

TEST(Aggregators, AllWorkersEndIdentical) {
  CheckWorkersIdentical(4, [](int r, int w) {
    return MakeSsgdFactory()(r, w);
  });
  CheckWorkersIdentical(4, [](int r, int w) {
    return MakePowerSgdFactory(2)(r, w);
  });
  CheckWorkersIdentical(4, [](int r, int w) {
    return MakeAcpSgdFactory(2)(r, w);
  });
  CheckWorkersIdentical(3, [](int r, int w) {
    return MakeAcpSgdFactory(2, /*error_feedback=*/false, /*reuse=*/false)(r, w);
  });
  CheckWorkersIdentical(4, [](int, int) {
    return std::make_unique<SignAggregator>();
  });
  CheckWorkersIdentical(4, [](int, int) {
    return std::make_unique<TopkAggregator>(0.1);
  });
}

TEST(SignAggregator, MatchesMajorityVoteReference) {
  const int p = 3;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::vector<Tensor> results(static_cast<size_t>(p));
  group.Run([&](comm::Communicator& comm) {
    TestParams tp(comm.rank());
    SignAggregator agg(/*error_feedback=*/false);
    auto params = tp.list();
    agg.Aggregate(params, comm);
    results[static_cast<size_t>(comm.rank())] = tp.bias.grad.clone();
  });
  // Reference: majority vote of the bias signs (the bias is packed last in
  // reverse order => first in the flat layout).
  std::vector<TestParams> workers;
  for (int r = 0; r < p; ++r) workers.emplace_back(r);
  for (int64_t i = 0; i < 24; ++i) {
    int vote = 0;
    for (auto& w : workers) vote += w.bias.grad.at(i) < 0 ? -1 : 1;
    const float got = results[0].at(i);
    EXPECT_EQ(got > 0, vote >= 0) << i;
  }
}

TEST(TopkAggregator, KeepsOnlyUnionOfTopkCoordinates) {
  const int p = 2;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  std::vector<Tensor> results(static_cast<size_t>(p));
  group.Run([&](comm::Communicator& comm) {
    TestParams tp(comm.rank());
    TopkAggregator agg(0.05, /*error_feedback=*/false,
                       compress::TopkSelection::kExact);
    auto params = tp.list();
    agg.Aggregate(params, comm);
    results[static_cast<size_t>(comm.rank())] = tp.w1.grad.clone();
  });
  // With ratio 0.05 over 1448 elements total, most coordinates are zero.
  int64_t nonzero = 0;
  for (float v : results[0].data())
    if (v != 0.0f) ++nonzero;
  EXPECT_GT(nonzero, 0);
  EXPECT_LT(nonzero, results[0].numel() / 4);
}

TEST(PowerSgdAggregator, VectorParamsExact) {
  // Vector params bypass compression and must be exactly averaged.
  const int p = 4;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  const TestParams expect = MeanOf(p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    TestParams tp(comm.rank());
    PowerSgdAggregator agg(compress::PowerSgdConfig{});
    auto params = tp.list();
    agg.Aggregate(params, comm);
    if (!tp.bias.grad.all_close(expect.bias.grad, 1e-4f)) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(AcpSgdAggregator, ApproximatesMeanOverSteps) {
  // Averaged over many steps with error feedback, the ACP aggregate
  // converges to the true mean gradient (each worker keeps the same local
  // gradient across steps).
  const int p = 4;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  const TestParams expect = MeanOf(p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    compress::AcpSgdConfig cfg;
    cfg.rank = 4;
    AcpSgdAggregator agg(cfg);
    Tensor sum({16, 24});
    const int steps = 40;
    for (int t = 0; t < steps; ++t) {
      TestParams tp(comm.rank());  // fresh copy of the same gradients
      auto params = tp.list();
      agg.Aggregate(params, comm);
      sum.add_(tp.w1.grad);
    }
    sum.scale_(1.0f / steps);
    Tensor diff = sum.clone();
    diff.sub_(expect.w1.grad);
    if (diff.norm2() / expect.w1.grad.norm2() > 0.25f) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(AcpSgdAggregator, VectorParamsExact) {
  const int p = 4;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", p);
  const TestParams expect = MeanOf(p);
  std::atomic<int> failures{0};
  group.Run([&](comm::Communicator& comm) {
    compress::AcpSgdConfig cfg;
    cfg.rank = 2;
    AcpSgdAggregator agg(cfg);
    TestParams tp(comm.rank());
    auto params = tp.list();
    agg.Aggregate(params, comm);
    if (!tp.bias.grad.all_close(expect.bias.grad, 1e-4f)) ++failures;
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace acps::core
