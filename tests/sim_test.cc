// Invariants of the performance simulator — each mirrors a qualitative
// claim of the paper that the benches then quantify.
#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "sim/pipeline.h"

namespace acps::sim {
namespace {

SimConfig Base(Method m) {
  SimConfig cfg;
  cfg.method = m;
  return cfg;
}

double TotalMs(const models::ModelSpec& model, const SimConfig& cfg) {
  return SimulateIterationAvg(model, cfg).total_ms();
}

TEST(Sim, BreakdownSumsToTotal) {
  const auto model = models::ResNet50();
  for (Method m : {Method::kSSGD, Method::kSignSGD, Method::kTopkSGD,
                   Method::kPowerSGD, Method::kPowerSGDStar, Method::kACPSGD}) {
    const Breakdown b = SimulateIterationAvg(model, Base(m));
    EXPECT_GT(b.total_s, 0.0) << MethodName(m);
    EXPECT_GE(b.comm_exposed_s, 0.0) << MethodName(m);
    EXPECT_NEAR(b.total_s, b.fwdbwd_s + b.compress_s + b.comm_exposed_s,
                b.total_s * 0.35)
        << MethodName(m);
  }
}

TEST(Sim, WfbpNeverSlowerThanNaiveForSSGD) {
  for (const char* name : {"resnet50", "resnet152", "bert-base"}) {
    const auto model = models::ByName(name);
    SimConfig naive = Base(Method::kSSGD);
    naive.sysopt = SysOptLevel::kNaive;
    SimConfig wfbp = Base(Method::kSSGD);
    wfbp.sysopt = SysOptLevel::kWfbp;
    EXPECT_LE(TotalMs(model, wfbp), TotalMs(model, naive) + 1e-6) << name;
  }
}

TEST(Sim, TensorFusionHelpsOnTopOfWfbp) {
  // Per-tensor all-reduce pays the startup cost hundreds of times.
  for (const char* name : {"resnet152", "bert-large"}) {
    const auto model = models::ByName(name);
    SimConfig wfbp = Base(Method::kSSGD);
    wfbp.sysopt = SysOptLevel::kWfbp;
    SimConfig tf = Base(Method::kSSGD);
    tf.sysopt = SysOptLevel::kWfbpTf;
    EXPECT_LT(TotalMs(model, tf), TotalMs(model, wfbp)) << name;
  }
}

TEST(Sim, SysOptsGiveAcpLargeGains) {
  // Paper: WFBP+TF gives ACP-SGD up to 2.14x over its naive version.
  const auto model = models::BertLarge();
  SimConfig naive = Base(Method::kACPSGD);
  naive.rank = 32;
  naive.sysopt = SysOptLevel::kNaive;
  SimConfig opt = naive;
  opt.sysopt = SysOptLevel::kWfbpTf;
  const double speedup = TotalMs(model, naive) / TotalMs(model, opt);
  EXPECT_GT(speedup, 1.3);
}

TEST(Sim, WfbpHurtsPowerSgdStar) {
  // Paper §III-C: overlapping compression with BP causes interference;
  // Power-SGD* with WFBP (no TF) is slower than running it naively.
  const auto model = models::ResNet50();
  SimConfig naive = Base(Method::kPowerSGDStar);
  naive.sysopt = SysOptLevel::kNaive;
  SimConfig wfbp = Base(Method::kPowerSGDStar);
  wfbp.sysopt = SysOptLevel::kWfbp;
  EXPECT_GT(SimulateIteration(model, wfbp).compress_s,
            SimulateIteration(model, naive).compress_s);
}

TEST(Sim, TableIIIOrderings) {
  // The per-model method orderings of Table III.
  auto t = [&](const char* name, Method m, int64_t rank) {
    auto model = models::ByName(name);
    SimConfig cfg = Base(m);
    cfg.rank = rank;
    return TotalMs(model, cfg);
  };
  // ResNet-50: ACP < S-SGD < Power-SGD* < Power-SGD.
  EXPECT_LT(t("resnet50", Method::kACPSGD, 4), t("resnet50", Method::kSSGD, 4));
  EXPECT_LT(t("resnet50", Method::kSSGD, 4),
            t("resnet50", Method::kPowerSGDStar, 4));
  EXPECT_LT(t("resnet50", Method::kPowerSGDStar, 4),
            t("resnet50", Method::kPowerSGD, 4));
  // ResNet-152: ACP < Power-SGD* < Power-SGD < S-SGD.
  EXPECT_LT(t("resnet152", Method::kACPSGD, 4),
            t("resnet152", Method::kPowerSGDStar, 4));
  EXPECT_LT(t("resnet152", Method::kPowerSGDStar, 4),
            t("resnet152", Method::kPowerSGD, 4));
  EXPECT_LT(t("resnet152", Method::kPowerSGD, 4),
            t("resnet152", Method::kSSGD, 4));
  // BERTs: ACP < Power-SGD < Power-SGD* < S-SGD.
  for (const char* name : {"bert-base", "bert-large"}) {
    EXPECT_LT(t(name, Method::kACPSGD, 32), t(name, Method::kPowerSGD, 32))
        << name;
    EXPECT_LT(t(name, Method::kPowerSGD, 32),
              t(name, Method::kPowerSGDStar, 32))
        << name;
    EXPECT_LT(t(name, Method::kPowerSGDStar, 32), t(name, Method::kSSGD, 32))
        << name;
  }
}

TEST(Sim, SignAndTopkLoseOnResNet50) {
  // Fig 2: on ResNet-50 at 10GbE, Sign-SGD and Top-k SGD are slower than
  // well-optimized S-SGD despite 32x/1000x compression.
  const auto model = models::ResNet50();
  const double ssgd = TotalMs(model, Base(Method::kSSGD));
  EXPECT_GT(TotalMs(model, Base(Method::kSignSGD)), 1.2 * ssgd);
  EXPECT_GT(TotalMs(model, Base(Method::kTopkSGD)), 1.1 * ssgd);
}

TEST(Sim, TopkBeatsSsgdOnBertLarge) {
  // Fig 2: on BERT-Large, Top-k SGD runs faster than S-SGD.
  const auto model = models::BertLarge();
  EXPECT_LT(TotalMs(model, Base(Method::kTopkSGD)),
            TotalMs(model, Base(Method::kSSGD)));
}

TEST(Sim, SignCommExceedsSsgdCommOnBertBase) {
  // §III-C: Sign-SGD's all-gather communication is *more* expensive than
  // S-SGD's overlapped all-reduce despite 32x compression.
  const auto model = models::BertBase();
  const Breakdown sign = SimulateIteration(model, Base(Method::kSignSGD));
  const Breakdown ssgd = SimulateIteration(model, Base(Method::kSSGD));
  EXPECT_GT(sign.comm_exposed_s, ssgd.comm_exposed_s);
}

TEST(Sim, AcpScalesAcrossWorkerCounts) {
  // Fig 12: 8 -> 64 GPUs costs ring-based methods only a small increase.
  const auto model = models::ResNet152();
  for (Method m : {Method::kSSGD, Method::kACPSGD}) {
    SimConfig c8 = Base(m);
    c8.world_size = 8;
    SimConfig c64 = Base(m);
    c64.world_size = 64;
    const double inc = TotalMs(model, c64) / TotalMs(model, c8);
    EXPECT_LT(inc, 1.5) << MethodName(m);
    EXPECT_GE(inc, 1.0) << MethodName(m);
  }
}

TEST(Sim, SignScalesWorseThanAcp) {
  const auto model = models::BertBase();
  auto growth = [&](Method m) {
    SimConfig c8 = Base(m);
    c8.world_size = 8;
    SimConfig c64 = Base(m);
    c64.world_size = 64;
    return TotalMs(model, c64) / TotalMs(model, c8);
  };
  EXPECT_GT(growth(Method::kSignSGD), growth(Method::kACPSGD));
}

TEST(Sim, BandwidthSweepMonotone) {
  // Fig 13: faster networks, faster iterations — and the compression
  // advantage shrinks as bandwidth grows.
  const auto model = models::BertBase();
  double prev_ssgd = 1e18, prev_ratio = 1e18;
  for (const auto& net :
       {comm::NetworkSpec::Ethernet1G(), comm::NetworkSpec::Ethernet10G(),
        comm::NetworkSpec::Infiniband100G()}) {
    SimConfig ssgd = Base(Method::kSSGD);
    ssgd.net = net;
    SimConfig acp = Base(Method::kACPSGD);
    acp.net = net;
    acp.rank = 32;
    const double ts = TotalMs(model, ssgd);
    const double ratio = ts / TotalMs(model, acp);
    EXPECT_LT(ts, prev_ssgd) << net.name;
    EXPECT_LT(ratio, prev_ratio) << net.name;
    // ACP wins clearly on slow networks; at 100Gb our model overlaps
    // S-SGD's communication more aggressively than the paper's testbed
    // (which reported ACP still 1.4x ahead), so we only require parity.
    EXPECT_GE(ratio, 0.95) << net.name;
    prev_ssgd = ts;
    prev_ratio = ratio;
  }
}

TEST(Sim, AcpBeatsSsgdByLargeFactorOn1GbE) {
  // Fig 13: BERT-Base on 1GbE, ACP-SGD >> S-SGD (paper: 23.9x).
  const auto model = models::BertBase();
  SimConfig ssgd = Base(Method::kSSGD);
  ssgd.net = comm::NetworkSpec::Ethernet1G();
  SimConfig acp = Base(Method::kACPSGD);
  acp.net = comm::NetworkSpec::Ethernet1G();
  acp.rank = 32;
  EXPECT_GT(TotalMs(model, ssgd) / TotalMs(model, acp), 8.0);
}

TEST(Sim, BufferSizeUShapeForAcpAtRank256) {
  // Fig 10: at rank 256 the default 25MB budget beats both extremes
  // (0 => no fusion, 1500MB => no overlap).
  const auto model = models::BertLarge();
  auto run = [&](int64_t buffer) {
    SimConfig cfg = Base(Method::kACPSGD);
    cfg.rank = 256;
    cfg.buffer_bytes = buffer;
    return TotalMs(model, cfg);
  };
  const double none = run(0);
  const double mid = run(25LL << 20);
  const double full = run(1500LL << 20);
  EXPECT_LT(mid, none);
  EXPECT_LT(mid, full);
}

TEST(Sim, AcpRobustToBufferSizePowerSgdIsNot) {
  // Fig 10: ACP-SGD stays flat across buffer sizes thanks to the scaled
  // compressed budget; Power-SGD* varies much more.
  const auto model = models::BertLarge();
  auto spread = [&](Method m) {
    double lo = 1e18, hi = 0.0;
    for (int64_t mb : {1, 25, 100, 400}) {
      SimConfig cfg = Base(m);
      cfg.rank = 32;
      cfg.buffer_bytes = mb << 20;
      const double t = TotalMs(model, cfg);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    return hi / lo;
  };
  EXPECT_LT(spread(Method::kACPSGD), spread(Method::kPowerSGDStar));
}

TEST(Sim, LargerBatchImprovesThroughput) {
  // Fig 11a: throughput (samples/s) grows with batch size for all methods.
  const auto model = models::ResNet152();
  for (Method m : {Method::kSSGD, Method::kPowerSGDStar, Method::kACPSGD}) {
    SimConfig b16 = Base(m);
    b16.batch_size = 16;
    SimConfig b32 = Base(m);
    b32.batch_size = 32;
    const double tput16 = 16.0 / TotalMs(model, b16);
    const double tput32 = 32.0 / TotalMs(model, b32);
    EXPECT_GT(tput32, tput16) << MethodName(m);
  }
}

TEST(Sim, HigherRankCostsMore) {
  // Fig 11b: rank 32 -> 256 increases iteration time for both low-rank
  // methods, and ACP keeps a large (>1.5x) advantage at every rank. (The
  // paper additionally reports the advantage *growing* with rank — 1.9x at
  // 32 to 2.7x at 256; our model keeps it roughly flat around 2x.)
  const auto model = models::BertLarge();
  double prev_acp = 0.0, prev_power = 0.0;
  for (int64_t rank : {32, 64, 128, 256}) {
    SimConfig acp = Base(Method::kACPSGD);
    acp.rank = rank;
    SimConfig power = Base(Method::kPowerSGDStar);
    power.rank = rank;
    const double ta = TotalMs(model, acp);
    const double tp = TotalMs(model, power);
    EXPECT_GT(ta, prev_acp);
    EXPECT_GT(tp, prev_power);
    EXPECT_GT(tp / ta, 1.5) << rank;
    prev_acp = ta;
    prev_power = tp;
  }
}

TEST(Sim, AcpExposesLessCommThanPowerSgdAtHighRank) {
  // Paper §V-E reports a 7.3x non-overlapped-communication reduction at
  // rank 256 on BERT-Large; with pure α-β arithmetic the rank-256 factors
  // (244MB/step) cannot hide behind ~200ms of compute, so our model shows
  // a smaller but still directional gap (EXPERIMENTS.md, Fig 11b note).
  const auto model = models::BertLarge();
  SimConfig acp = Base(Method::kACPSGD);
  acp.rank = 256;
  SimConfig power = Base(Method::kPowerSGDStar);
  power.rank = 256;
  const double acp_exposed =
      SimulateIterationAvg(model, acp).comm_exposed_s;
  const double power_exposed =
      SimulateIterationAvg(model, power).comm_exposed_s;
  EXPECT_LT(acp_exposed * 1.2, power_exposed + 1e-6);
}

TEST(Sim, AcpParityAveraging) {
  const auto model = models::BertBase();
  SimConfig odd = Base(Method::kACPSGD);
  odd.rank = 32;
  odd.acp_parity = 1;
  SimConfig even = odd;
  even.acp_parity = 0;
  const double to = SimulateIteration(model, odd).total_s;
  const double te = SimulateIteration(model, even).total_s;
  const double avg = SimulateIterationAvg(model, odd).total_s;
  EXPECT_NEAR(avg, 0.5 * (to + te), 1e-9);
}

TEST(Sim, TraceRecordsSchedule) {
  const auto model = models::ResNet18();
  std::vector<TraceEvent> trace;
  SimConfig cfg = Base(Method::kACPSGD);
  cfg.trace = &trace;
  (void)SimulateIteration(model, cfg);
  EXPECT_GT(trace.size(), 10u);
  bool has_compute = false, has_comm = false;
  for (const auto& e : trace) {
    EXPECT_LE(e.start_s, e.end_s);
    if (e.resource == "compute") has_compute = true;
    if (e.resource == "comm") has_comm = true;
  }
  EXPECT_TRUE(has_compute);
  EXPECT_TRUE(has_comm);
}

TEST(Sim, NamesRender) {
  EXPECT_EQ(MethodName(Method::kACPSGD), "ACP-SGD");
  EXPECT_EQ(SysOptName(SysOptLevel::kWfbpTf), "WFBP+TF");
}

TEST(Sim, RejectsBadWorldSize) {
  SimConfig cfg;
  cfg.world_size = 0;
  EXPECT_THROW((void)SimulateIteration(models::ResNet18(), cfg), Error);
}

}  // namespace
}  // namespace acps::sim
