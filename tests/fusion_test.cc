#include <gtest/gtest.h>

#include "fusion/bucket_assigner.h"
#include "fusion/fusion_buffer.h"
#include "tensor/check.h"

namespace acps::fusion {
namespace {

TEST(AssignBuckets, GreedyInOrder) {
  const std::vector<int64_t> sizes{10, 10, 10, 10, 10};
  const auto buckets = AssignBuckets(sizes, 25);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(buckets[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(buckets[2], (std::vector<int>{4}));
}

TEST(AssignBuckets, ZeroBudgetDisablesFusion) {
  const std::vector<int64_t> sizes{5, 5, 5};
  const auto buckets = AssignBuckets(sizes, 0);
  ASSERT_EQ(buckets.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_EQ(buckets[i], std::vector<int>{static_cast<int>(i)});
}

TEST(AssignBuckets, HugeBudgetSingleBucket) {
  const std::vector<int64_t> sizes{100, 200, 300};
  const auto buckets = AssignBuckets(sizes, 1 << 30);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].size(), 3u);
}

TEST(AssignBuckets, OversizedTensorGetsOwnBucket) {
  const std::vector<int64_t> sizes{5, 100, 5};
  const auto buckets = AssignBuckets(sizes, 20);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[1], std::vector<int>{1});
}

TEST(AssignBuckets, EveryTensorExactlyOnce) {
  const std::vector<int64_t> sizes{3, 9, 27, 81, 1, 1, 1, 243, 9};
  const auto buckets = AssignBuckets(sizes, 50);
  std::vector<int> seen(sizes.size(), 0);
  int prev_last = -1;
  for (const auto& b : buckets) {
    for (int i : b) {
      ++seen[static_cast<size_t>(i)];
      EXPECT_GT(i, prev_last);  // order preserved
      prev_last = i;
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(AssignBuckets, EmptyInput) {
  EXPECT_TRUE(AssignBuckets({}, 100).empty());
}

TEST(AssignBuckets, NegativeSizeThrows) {
  EXPECT_THROW((void)AssignBuckets({-1}, 10), Error);
}

TEST(ScaledBufferBytes, PaperExample) {
  // ResNet-50 with rank 4: P compresses ~0.64% of the gradient bytes,
  // 25MB * 0.0064 ≈ 0.16MB (§IV-B).
  const int64_t grad_bytes = 97LL * 1024 * 1024;  // ~97.5MB
  const int64_t p_bytes = static_cast<int64_t>(0.0064 * grad_bytes);
  const int64_t scaled =
      ScaledBufferBytes(kDefaultBufferBytes, p_bytes, grad_bytes);
  EXPECT_NEAR(static_cast<double>(scaled), 0.0064 * kDefaultBufferBytes,
              2048.0);
}

TEST(ScaledBufferBytes, EdgeCases) {
  EXPECT_EQ(ScaledBufferBytes(0, 10, 100), 0);          // fusion disabled
  EXPECT_GE(ScaledBufferBytes(100, 0, 100), 1);         // floor at 1 byte
  EXPECT_EQ(ScaledBufferBytes(100, 100, 100), 100);     // rate 1
  EXPECT_EQ(ScaledBufferBytes(1000, 0, 0), 1000);       // no gradients
  EXPECT_THROW((void)ScaledBufferBytes(-1, 0, 0), Error);
}

TEST(ScaledBufferBytes, KeepsBucketCountComparable) {
  // The paper's rationale: scaling the budget by the compression rate keeps
  // the number of buckets roughly equal before/after compression.
  const std::vector<int64_t> grad_sizes(100, 1 << 20);  // 100 x 1MB
  const std::vector<int64_t> factor_sizes(100, 1 << 12);  // 100 x 4KB
  int64_t grads = 0, factors = 0;
  for (size_t i = 0; i < 100; ++i) {
    grads += grad_sizes[i];
    factors += factor_sizes[i];
  }
  const auto grad_buckets = AssignBuckets(grad_sizes, kDefaultBufferBytes);
  const auto factor_buckets = AssignBuckets(
      factor_sizes, ScaledBufferBytes(kDefaultBufferBytes, factors, grads));
  EXPECT_EQ(grad_buckets.size(), factor_buckets.size());
}

TEST(BucketBytes, Sums) {
  const std::vector<int64_t> sizes{1, 2, 4, 8};
  EXPECT_EQ(BucketBytes({0, 2}, sizes), 5);
  EXPECT_EQ(BucketBytes({}, sizes), 0);
}

TEST(FusionBuffer, PackUnpackRoundTrip) {
  FusionBuffer buf;
  const int s0 = buf.AddSlot(3);
  const int s1 = buf.AddSlot(2);
  EXPECT_EQ(buf.total_elements(), 5);
  const std::vector<float> a{1, 2, 3}, b{4, 5};
  buf.Pack(s0, a);
  buf.Pack(s1, b);
  const auto flat = buf.flat();
  EXPECT_EQ(flat[0], 1.0f);
  EXPECT_EQ(flat[4], 5.0f);
  std::vector<float> out(3);
  buf.Unpack(s0, out);
  EXPECT_EQ(out, a);
}

TEST(FusionBuffer, CollectiveInPlace) {
  // Mutating flat() is visible on Unpack — the all-reduce use case.
  FusionBuffer buf;
  const int s = buf.AddSlot(2);
  buf.Pack(s, std::vector<float>{1, 2});
  for (float& v : buf.flat()) v *= 10.0f;
  std::vector<float> out(2);
  buf.Unpack(s, out);
  EXPECT_EQ(out, (std::vector<float>{10, 20}));
}

TEST(FusionBuffer, Errors) {
  FusionBuffer buf;
  const int s = buf.AddSlot(2);
  EXPECT_THROW(buf.Pack(s, std::vector<float>{1.0f}), Error);  // wrong size
  EXPECT_THROW(buf.Pack(7, std::vector<float>{1, 2}), Error);  // bad slot
  buf.Pack(s, std::vector<float>{1, 2});
  EXPECT_THROW((void)buf.AddSlot(1), Error);  // AddSlot after Pack
  EXPECT_THROW((void)buf.AddSlot(-1), Error);
}

TEST(FusionBuffer, ResetAllowsReuse) {
  FusionBuffer buf;
  (void)buf.AddSlot(4);
  buf.Pack(0, std::vector<float>(4, 1.0f));
  buf.Reset();
  EXPECT_EQ(buf.total_elements(), 0);
  const int s = buf.AddSlot(2);
  buf.Pack(s, std::vector<float>{7, 8});
  std::vector<float> out(2);
  buf.Unpack(s, out);
  EXPECT_EQ(out[1], 8.0f);
}

}  // namespace
}  // namespace acps::fusion
