// Tests for checkpointing, the compressor registry, and the per-tensor
// compression policy (ByteComp-lite).
#include <gtest/gtest.h>

#include <cstdio>

#include "compress/registry.h"
#include "core/policy.h"
#include "dnn/checkpoint.h"
#include "dnn/mini_models.h"
#include "models/model_zoo.h"
#include "tensor/rng.h"

namespace acps {
namespace {

// ------------------------------------------------------------- policy -----

sim::GpuModel PaperGpu() { return sim::GpuModel(sim::GpuSpec{}, 32); }

TEST(Policy, SlowNetworkCompressesEverythingEligible) {
  const auto model = models::BertBase();
  comm::CostModel net(comm::NetworkSpec::Ethernet1G(), 32);
  core::PolicyConfig cfg;
  cfg.rank = 32;
  cfg.exposure = 1.0;
  const auto policy = core::DecidePolicy(model, net, PaperGpu(), cfg);
  const auto all = core::AllLowRank(model, 32);
  EXPECT_EQ(policy.num_lowrank(), all.num_lowrank());
  EXPECT_GT(policy.num_lowrank(), 50u);
}

TEST(Policy, FastHiddenNetworkStaysDense) {
  const auto model = models::ResNet50();
  comm::CostModel net(comm::NetworkSpec::Infiniband100G(), 32);
  core::PolicyConfig cfg;
  cfg.rank = 4;
  cfg.exposure = 0.05;  // WFBP hides almost everything on 100Gb
  const auto policy = core::DecidePolicy(model, net, PaperGpu(), cfg);
  EXPECT_EQ(policy.num_lowrank(), 0u);
}

TEST(Policy, LowRankFractionMonotoneInBandwidth) {
  const auto model = models::BertLarge();
  core::PolicyConfig cfg;
  cfg.rank = 32;
  size_t prev = SIZE_MAX;
  for (const auto& spec :
       {comm::NetworkSpec::Ethernet1G(), comm::NetworkSpec::Ethernet10G(),
        comm::NetworkSpec::Infiniband100G()}) {
    comm::CostModel net(spec, 32);
    const auto policy = core::DecidePolicy(model, net, PaperGpu(), cfg);
    EXPECT_LE(policy.num_lowrank(), prev) << spec.name;
    prev = policy.num_lowrank();
  }
}

TEST(Policy, DecisionNeverWorseThanUniformPolicies) {
  core::PolicyConfig cfg;
  cfg.rank = 32;
  for (const auto& spec :
       {comm::NetworkSpec::Ethernet1G(), comm::NetworkSpec::Ethernet10G(),
        comm::NetworkSpec::Infiniband100G()}) {
    for (double exposure : {0.05, 0.5, 1.0}) {
      cfg.exposure = exposure;
      const auto model = models::BertBase();
      comm::CostModel net(spec, 32);
      const auto gpu = PaperGpu();
      const auto decided = core::DecidePolicy(model, net, gpu, cfg);
      const double d =
          core::EvaluatePolicy(model, decided, net, gpu, cfg).exposed_s;
      const double dense = core::EvaluatePolicy(
          model, core::AllDense(model, 32), net, gpu, cfg).exposed_s;
      const double lowrank = core::EvaluatePolicy(
          model, core::AllLowRank(model, 32), net, gpu, cfg).exposed_s;
      EXPECT_LE(d, dense + 1e-9) << spec.name << " e=" << exposure;
      EXPECT_LE(d, lowrank + 1e-9) << spec.name << " e=" << exposure;
    }
  }
}

TEST(Policy, EvaluateRejectsIllegalAssignments) {
  const auto model = models::ResNet18();
  comm::CostModel net(comm::NetworkSpec::Ethernet10G(), 32);
  core::PolicyConfig cfg;
  auto bad = core::AllDense(model, 4);
  // Mark a bias (vector param) low-rank: must throw.
  for (size_t i = 0; i < model.layers.size(); ++i) {
    if (!model.layers[i].compressible) {
      bad.per_tensor[i] = core::TensorMethod::kLowRank;
      break;
    }
  }
  EXPECT_THROW(
      (void)core::EvaluatePolicy(model, bad, net, PaperGpu(), cfg), Error);
  auto wrong_size = core::AllDense(model, 4);
  wrong_size.per_tensor.pop_back();
  EXPECT_THROW(
      (void)core::EvaluatePolicy(model, wrong_size, net, PaperGpu(), cfg),
      Error);
}

// --------------------------------------------------------- checkpoints ----

TEST(Checkpoint, RoundTripsExactWeights) {
  dnn::Network a = dnn::VggMini();
  a.Init(123);
  const std::string path = ::testing::TempDir() + "/acps_ckpt_test.bin";
  ASSERT_TRUE(dnn::SaveCheckpoint(a, path));

  dnn::Network b = dnn::VggMini();
  b.Init(456);  // different weights
  ASSERT_TRUE(dnn::LoadCheckpoint(b, path));
  const auto pa = a.params();
  const auto pb = b.params();
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(pa[i]->value.all_close(pb[i]->value, 0.0f)) << pa[i]->name;
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsStructureMismatch) {
  dnn::Network vgg = dnn::VggMini();
  vgg.Init(1);
  const std::string path = ::testing::TempDir() + "/acps_ckpt_mismatch.bin";
  ASSERT_TRUE(dnn::SaveCheckpoint(vgg, path));
  dnn::Network res = dnn::ResMini();
  res.Init(1);
  EXPECT_THROW((void)dnn::LoadCheckpoint(res, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruption) {
  dnn::Network net = dnn::ResMini();
  net.Init(9);
  const std::string path = ::testing::TempDir() + "/acps_ckpt_corrupt.bin";
  ASSERT_TRUE(dnn::SaveCheckpoint(net, path));
  // Truncate the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  EXPECT_THROW((void)dnn::LoadCheckpoint(net, path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileReturnsFalse) {
  dnn::Network net = dnn::VggMini();
  net.Init(1);
  EXPECT_FALSE(dnn::LoadCheckpoint(net, "/nonexistent/ckpt.bin"));
  EXPECT_FALSE(dnn::SaveCheckpoint(net, "/nonexistent/ckpt.bin"));
}

// ------------------------------------------------------------ registry ----

TEST(Registry, BuildsEveryKnownSpec) {
  Rng rng(1);
  std::vector<float> g(200);
  for (auto& v : g) v = rng.normal();
  for (const std::string& spec : compress::KnownCompressors()) {
    auto c = compress::MakeCompressor(spec);
    ASSERT_NE(c, nullptr) << spec;
    const auto blob = c->Encode(g);
    EXPECT_EQ(blob.size(), c->EncodedBytes(g.size())) << spec;
    std::vector<float> out(g.size());
    c->Decode(blob, out);
  }
}

TEST(Registry, ParsesParameters) {
  auto topk = compress::MakeCompressor("topk:0.5");
  // ratio 0.5 on 10 elements keeps 5 records.
  std::vector<float> g(10, 1.0f);
  EXPECT_EQ(topk->EncodedBytes(10), 16u + 5u * 8u);
  auto block = compress::MakeCompressor("blockwise-sign:2");
  EXPECT_EQ(block->name(), "blockwise-sign");
}

TEST(Registry, RejectsBadSpecs) {
  EXPECT_THROW((void)compress::MakeCompressor("unknown"), Error);
  EXPECT_THROW((void)compress::MakeCompressor("topk:abc"), Error);
  EXPECT_THROW((void)compress::MakeCompressor("sign:3"), Error);
  EXPECT_THROW((void)compress::MakeCompressor("topk:0"), Error);
}

}  // namespace
}  // namespace acps
