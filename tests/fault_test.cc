// Chaos matrix (DESIGN.md §6f): every injectable fault kind crossed with
// every collective and every compression method must end RECOVERED (bitwise
// identical to the fault-free run, or consistently degraded after a crash)
// or DETECTED (structured, seed-replayable fault::DetectedError). Any silent
// corruption — a run that "succeeds" with different bits — fails the test,
// and so does a plan that never fired (it proves nothing).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <span>

#include "check/explorer.h"
#include "check/schedule.h"
#include "comm/communicator.h"
#include "fault/chaos.h"
#include "fault/churn.h"
#include "fault/clock.h"
#include "fault/plan.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace acps {
namespace {

// Sanitizer builds run a reduced matrix (one method instead of four) —
// the transport paths under test are method-independent; the full matrix
// re-runs the same code 4x, which dominates tsan wall-clock.
std::vector<fault::ChaosMethod> MatrixMethods() {
#ifdef ACPS_SANITIZE_BUILD
  return {fault::ChaosMethod::kSign};
#else
  return fault::AllChaosMethods();
#endif
}

bool IsWireFault(fault::FaultKind kind) {
  return kind == fault::FaultKind::kDrop ||
         kind == fault::FaultKind::kDuplicate ||
         kind == fault::FaultKind::kStaleRead ||
         kind == fault::FaultKind::kCorrupt ||
         kind == fault::FaultKind::kStraggler;
}

TEST(ChaosMatrixTest, EveryFaultByCollectiveByMethodRecoversOrDetects) {
  fault::ChaosOptions opt;
  for (const fault::FaultKind kind : fault::AllInjectableFaultKinds()) {
    for (const fault::ChaosCollective c : fault::AllChaosCollectives()) {
      for (const fault::ChaosMethod m : MatrixMethods()) {
        const fault::ChaosCaseResult res =
            fault::RunCollectiveChaos(kind, c, m, opt);
        ASSERT_TRUE(res.ok()) << res.Summary();
        EXPECT_GT(res.injected, 0) << res.Summary();
        if (IsWireFault(kind)) {
          // Recoverable kinds must be absorbed bitwise, not merely detected.
          EXPECT_EQ(res.outcome, fault::ChaosOutcome::kRecovered)
              << res.Summary();
        }
      }
    }
  }
}

TEST(ChaosMatrixTest, TrainingRunsAbsorbWireFaultsBitwise) {
  fault::ChaosOptions opt;
  opt.steps = 4;
  for (const fault::ChaosMethod m : MatrixMethods()) {
    for (const fault::FaultKind kind :
         {fault::FaultKind::kDrop, fault::FaultKind::kDuplicate,
          fault::FaultKind::kStaleRead, fault::FaultKind::kCorrupt,
          fault::FaultKind::kStraggler}) {
      const fault::ChaosCaseResult res =
          fault::RunTrainingChaos(kind, m, opt);
      EXPECT_EQ(res.outcome, fault::ChaosOutcome::kRecovered)
          << res.Summary();
      EXPECT_GT(res.injected, 0) << res.Summary();
    }
  }
}

TEST(ChaosMatrixTest, TrainingSurvivesRankCrashWithConservedErrorFeedback) {
  fault::ChaosOptions opt;
  opt.steps = 4;
  for (const fault::ChaosMethod m : fault::AllChaosMethods()) {
    const fault::ChaosCaseResult res =
        fault::RunTrainingChaos(fault::FaultKind::kCrash, m, opt);
    // kRecovered here certifies: the run completed with p-1 ranks, the
    // survivors' final models are mutually bitwise identical, and (for the
    // harness-EF methods) the telescoping EF-mass invariant held.
    EXPECT_EQ(res.outcome, fault::ChaosOutcome::kRecovered) << res.Summary();
    EXPECT_EQ(res.injected, 1) << res.Summary();
  }
}

TEST(ChaosDetectionTest, BroadcastFromDeadRootRaisesStructuredReport) {
  fault::ChaosOptions opt;
  const fault::ChaosCaseResult res = fault::RunDeadRootBroadcast(opt);
  EXPECT_EQ(res.outcome, fault::ChaosOutcome::kDetected) << res.Summary();
  EXPECT_NE(res.detail.find("fault detected"), std::string::npos)
      << res.detail;
  EXPECT_NE(res.detail.find("root rank 0"), std::string::npos) << res.detail;
  // The report carries the replay handle (the installed plan's identity).
  EXPECT_NE(res.detail.find("FaultPlan{"), std::string::npos) << res.detail;
}

TEST(ChaosDetectionTest, ExhaustedRetryBudgetRaisesStructuredReport) {
  fault::ChaosOptions opt;
  const fault::ChaosCaseResult res = fault::RunRetryExhaustion(opt);
  EXPECT_EQ(res.outcome, fault::ChaosOutcome::kDetected) << res.Summary();
  EXPECT_GT(res.injected, 0);
  EXPECT_NE(res.detail.find("attempts"), std::string::npos) << res.detail;
  EXPECT_NE(res.detail.find("always-drop"), std::string::npos) << res.detail;
}

// The silent-corruption canary: a mutation the envelope CANNOT catch (the
// schedule controller's hand-off fault rotates the payload before the
// checksum is sealed) must show up as divergent bits against the fault-free
// baseline — proving the chaos oracle actually bites. If this test fails,
// the matrix above is vacuously green.
TEST(ChaosOracleTest, PreSealCorruptionDivergesFromBaseline) {
  fault::ChaosOptions opt;
  const fault::ChaosRun baseline = fault::RunCollectiveWorkload(
      fault::ChaosCollective::kAllReduceRing, fault::ChaosMethod::kSign, opt);
  ASSERT_TRUE(baseline.error.empty()) << baseline.error;

  check::ScheduleConfig cfg;
  cfg.seed = 11;
  cfg.world_size = opt.world_size;
  cfg.perturb_prob = 0.0;
  cfg.fault = check::FaultSpec{/*window=*/0, /*rank=*/1};
  check::ScheduleController controller(cfg);
  check::ScopedSchedListener install(&controller);
  const fault::ChaosRun mutated = fault::RunCollectiveWorkload(
      fault::ChaosCollective::kAllReduceRing, fault::ChaosMethod::kSign, opt);

  ASSERT_EQ(controller.stats().faults_injected, 1);
  ASSERT_TRUE(mutated.error.empty()) << mutated.error;
  EXPECT_NE(mutated.outputs, baseline.outputs)
      << "pre-seal payload mutation was not visible in the result bits — "
         "the bitwise oracle is not actually comparing anything";
}

TEST(ChaosReplayTest, SameOptionsReproduceTheSameClassification) {
  fault::ChaosOptions opt;
  const fault::ChaosCaseResult a = fault::RunCollectiveChaos(
      fault::FaultKind::kDrop, fault::ChaosCollective::kAllReduceRing,
      fault::ChaosMethod::kTopk, opt);
  const fault::ChaosCaseResult b = fault::RunCollectiveChaos(
      fault::FaultKind::kDrop, fault::ChaosCollective::kAllReduceRing,
      fault::ChaosMethod::kTopk, opt);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.seed_used, b.seed_used) << "seed-bump path is nondeterministic";
  EXPECT_EQ(a.injected, b.injected)
      << "the plan fired a different fault sequence on replay";
}

TEST(FaultPlanTest, DecisionsArePureFunctionsOfSeedAndCoordinates) {
  fault::FaultPlanConfig cfg;
  cfg.seed = 99;
  cfg.kind = fault::FaultKind::kDrop;
  cfg.rate = 0.5;
  fault::FaultPlan a(cfg);
  fault::FaultPlan b(cfg);
  for (uint64_t seq = 0; seq < 64; ++seq) {
    for (int rank = 0; rank < 4; ++rank) {
      EXPECT_EQ(a.OnPublish(rank, seq, 0), b.OnPublish(rank, seq, 0));
      // Never fires on retries, whatever the seed says.
      EXPECT_EQ(a.OnPublish(rank, seq, 1), fault::FaultKind::kNone);
    }
  }
  EXPECT_EQ(a.injected(), b.injected());
}

TEST(FaultClockTest, BackoffIsVirtualNotWallClock) {
  fault::VirtualClock::Reset();
  const int64_t before = fault::VirtualClock::Now();
  fault::ConsumeBackoff(0);
  fault::ConsumeBackoff(3);
  EXPECT_EQ(fault::VirtualClock::Now() - before,
            fault::BackoffTicks(0) + fault::BackoffTicks(3));
}

// Injected faults must be visible to the observability layer: the
// transport records fault.* counters and kCatFault spans so a production
// trace shows exactly where retries/stragglers/crashes happened.
TEST(FaultObservabilityTest, InjectedFaultsEmitCountersAndSpans) {
  constexpr int kWorld = 3;
  obs::Tracer tracer;
  tracer.Enable();
  obs::MetricsRegistry metrics;
  metrics.Enable();
  comm::Transport group_transport;
  comm::Session group(group_transport, "", kWorld);
  group_transport.set_tracer(&tracer);
  group_transport.set_metrics(&metrics);

  const auto run_collectives = [](comm::Communicator& comm) {
    std::vector<float> data(6, 1.0f);
    comm.all_reduce(data);
    comm.all_reduce(data);
  };

  {  // Straggler on every entry decision: events + virtual ticks counted.
    fault::FaultPlanConfig cfg;
    cfg.seed = 21;
    cfg.kind = fault::FaultKind::kStraggler;
    cfg.rate = 1.0;
    fault::FaultPlan plan(cfg);
    fault::ScopedFaultInjector install(&plan);
    group.Run(run_collectives);
    EXPECT_GT(plan.injected(), 0);
  }
  {  // Dropped chunks force retries.
    fault::FaultPlanConfig cfg;
    cfg.seed = 22;
    cfg.kind = fault::FaultKind::kDrop;
    cfg.rate = 1.0;
    fault::FaultPlan plan(cfg);
    fault::ScopedFaultInjector install(&plan);
    group.Run(run_collectives);
    EXPECT_GT(plan.injected(), 0);
  }
  {  // Fail-stop crash of rank 1.
    fault::FaultPlanConfig cfg;
    cfg.seed = 23;
    cfg.crash_rank = 1;
    cfg.crash_at_collective = 2;
    fault::FaultPlan plan(cfg);
    fault::ScopedFaultInjector install(&plan);
    group.Run(run_collectives);
    EXPECT_EQ(group.crashed_ranks(), std::vector<int>{1});
  }

  EXPECT_GT(metrics.counter("fault.straggler.events").value(), 0u);
  EXPECT_GT(metrics.counter("fault.straggler.ticks").value(), 0u);
  EXPECT_GT(metrics.counter("fault.retry.attempts").value(), 0u);
  EXPECT_EQ(metrics.counter("fault.crash.ranks").value(), 1u);

  std::set<std::string> span_names;
  for (const obs::SpanEvent& ev : tracer.Snapshot())
    if (ev.category == obs::kCatFault) span_names.insert(ev.name);
  EXPECT_TRUE(span_names.count("fault_straggler")) << span_names.size();
  EXPECT_TRUE(span_names.count("fault_retry")) << span_names.size();
  EXPECT_TRUE(span_names.count("fault_crash")) << span_names.size();
}

// The contract checker's rendezvous (fingerprint agreement per collective)
// must coexist with the retry envelope: with contract checking forced ON,
// every collective kind still absorbs dropped chunks bitwise. This is the
// straggler-watchdog path the chaos matrix relies on, exercised explicitly.
TEST(FaultObservabilityTest, ContractCheckingCoexistsWithRetries) {
  constexpr int kWorld = 3;
  const auto workload = [](comm::Communicator& comm,
                           std::vector<std::byte>& out) {
    std::vector<float> data(6, static_cast<float>(comm.rank() + 1));
    comm.all_reduce(data);
    comm.reduce_scatter(data);
    comm.broadcast(data, /*root=*/0);
    std::vector<float> gathered(6 * static_cast<size_t>(comm.world_size()));
    comm.all_gather(std::span<const float>(data), gathered);

    std::vector<std::byte> packed(8, std::byte{static_cast<uint8_t>(comm.rank())});
    std::vector<std::byte> packed_all(packed.size() *
                                      static_cast<size_t>(comm.world_size()));
    comm.all_gather_bytes(packed, packed_all);
    std::vector<std::byte> var(static_cast<size_t>(comm.rank() + 1),
                               std::byte{7});
    std::vector<std::byte> var_all;
    std::vector<size_t> offsets;
    comm.all_gather_v(var, var_all, offsets);

    out.clear();
    const auto append = [&out](std::span<const std::byte> b) {
      out.insert(out.end(), b.begin(), b.end());
    };
    append(std::as_bytes(std::span<const float>(gathered)));
    append(packed_all);
    append(var_all);
  };

  const auto run_once = [&](bool inject) {
    std::vector<std::vector<std::byte>> outs(kWorld);
    comm::Transport group_transport;
    comm::Session group(group_transport, "", kWorld);
    group.set_contract_checking(true);
    fault::FaultPlanConfig cfg;
    cfg.seed = 31;
    cfg.kind = fault::FaultKind::kDrop;
    cfg.rate = 0.5;
    fault::FaultPlan plan(cfg);
    std::optional<fault::ScopedFaultInjector> install;
    if (inject) install.emplace(&plan);
    group.Run([&](comm::Communicator& comm) {
      workload(comm, outs[static_cast<size_t>(comm.rank())]);
    });
    if (inject) {
      EXPECT_GT(plan.injected(), 0);
    }
    return outs;
  };

  const auto baseline = run_once(/*inject=*/false);
  const auto faulted = run_once(/*inject=*/true);
  EXPECT_EQ(baseline, faulted)
      << "drops under contract checking changed the result bits";
}

// A publisher whose chunks are persistently undeliverable must not strand
// the OTHER ranks: peers that read fine still observe the retry flags and
// throw the same DetectedError in lockstep, reporting the failure as
// peer-originated.
TEST(ChaosDetectionTest, HealthyRanksReportPeerDeliveryFailure) {
  // Drops every publish from rank 0, on every attempt — hostile, so the
  // retry budget must exhaust. Ranks 1 and 2 read each other fine.
  class DropRankZeroPublishes final : public fault::FaultInjector {
   public:
    fault::FaultKind OnPublish(int rank, uint64_t, int) override {
      return rank == 0 ? fault::FaultKind::kDrop : fault::FaultKind::kNone;
    }
    fault::FaultKind OnRead(int, uint64_t, int) override {
      return fault::FaultKind::kNone;
    }
    fault::EntryDecision OnCollectiveEntry(int, uint64_t) override {
      return {};
    }
    [[nodiscard]] std::string Describe() const override {
      return "drop-rank-0-publishes (hostile, fires on every attempt)";
    }
  };
  DropRankZeroPublishes injector;
  fault::ScopedFaultInjector install(&injector);

  std::vector<std::string> errors(3);
  comm::Transport group_transport;
  comm::Session group(group_transport, "", 3);
  group.Run([&](comm::Communicator& comm) {
    std::vector<float> data(6, 1.0f);
    try {
      comm.all_reduce(data);
    } catch (const fault::DetectedError& e) {
      errors[static_cast<size_t>(comm.rank())] = e.what();
    }
  });
  for (int r = 0; r < 3; ++r) {
    ASSERT_NE(errors[static_cast<size_t>(r)].find("fault detected"),
              std::string::npos)
        << "rank " << r << " did not detect: " << errors[static_cast<size_t>(r)];
  }
  // Rank 2 reads from rank 0 on the 3-ring and names it; rank 0's own reads
  // all succeeded, so its report is the peer-originated form.
  EXPECT_NE(errors[0].find("a peer reported undeliverable chunks"),
            std::string::npos)
      << errors[0];
}

// Degradation floor: with every other rank fail-stopped, the variable-size
// all-gather degenerates to a local copy and the run still completes.
TEST(CrashRecoveryTest, SoleSurvivorAllGatherV) {
  fault::FaultPlanConfig cfg;
  cfg.seed = 41;
  cfg.crash_rank = 1;
  cfg.crash_at_collective = 1;
  fault::FaultPlan plan(cfg);
  fault::ScopedFaultInjector install(&plan);

  std::vector<std::byte> out;
  std::vector<size_t> offsets;
  comm::Transport group_transport;
  comm::Session group(group_transport, "", 2);
  group.Run([&](comm::Communicator& comm) {
    std::vector<std::byte> send(4, std::byte{static_cast<uint8_t>(9)});
    std::vector<std::byte> recv;
    std::vector<size_t> offs;
    comm.all_gather_v(send, recv, offs);
    if (comm.rank() == 0) {
      out = recv;
      offsets = offs;
    }
  });
  ASSERT_EQ(group.crashed_ranks(), std::vector<int>{1});
  // Rank 1 contributes a zero-length block; rank 0's bytes survive intact.
  ASSERT_EQ(out.size(), 4u);
  for (const std::byte b : out) EXPECT_EQ(b, std::byte{9});
}

// Crash recovery at the transport level: after a rank fail-stops, later
// collectives in the SAME run keep working over the survivors, and the
// membership view agrees on every rank.
TEST(CrashRecoveryTest, LaterCollectivesRunOverSurvivors) {
  constexpr int kWorld = 4;
  fault::FaultPlanConfig cfg;
  cfg.seed = 5;
  cfg.crash_rank = 2;
  cfg.crash_at_collective = 2;
  fault::FaultPlan plan(cfg);
  fault::ScopedFaultInjector install(&plan);

  std::vector<std::vector<float>> results(kWorld);
  std::vector<int> alive_seen(kWorld, -1);
  comm::Transport group_transport;
  comm::Session group(group_transport, "", kWorld);
  group.Run([&](comm::Communicator& comm) {
    std::vector<float> data(8, static_cast<float>(comm.rank() + 1));
    comm.all_reduce(data);  // collective #1: all four ranks participate
    comm.all_reduce(data);  // collective #2: rank 2 dies at entry
    results[static_cast<size_t>(comm.rank())] = data;
    alive_seen[static_cast<size_t>(comm.rank())] = comm.alive_world_size();
  });
  ASSERT_EQ(group.crashed_ranks(), std::vector<int>{2});
  // First all-reduce: 1+2+3+4 = 10 on every rank. Second: rank 2's copy of
  // 10 is lost with it, survivors sum 10+10+10 = 30.
  for (int r = 0; r < kWorld; ++r) {
    if (r == 2) continue;
    EXPECT_EQ(alive_seen[static_cast<size_t>(r)], kWorld - 1);
    for (float v : results[static_cast<size_t>(r)]) EXPECT_EQ(v, 30.0f);
  }
}

// ---------------------------------------------------------------------------
// Elastic membership: churn chaos gates (DESIGN.md "Elastic membership").
// ---------------------------------------------------------------------------

// Sanitizer builds run the protocol-shape subset; the remaining scenarios
// re-drive the same commit/resync machinery with longer horizons, which
// dominates tsan wall-clock without adding interleaving coverage.
std::vector<fault::ChurnScenario> ChurnMatrixScenarios() {
#ifdef ACPS_SANITIZE_BUILD
  return {fault::ChurnScenario::kCrashRejoin, fault::ChurnScenario::kFreshJoin,
          fault::ChurnScenario::kGracefulLeave};
#else
  return fault::AllChurnScenarios();
#endif
}

TEST(ChurnMatrixTest, EveryScenarioRecoversOrDetects) {
  fault::ChurnOptions opt;
  for (const fault::ChurnScenario s : ChurnMatrixScenarios()) {
    const fault::ChurnCaseResult res = fault::RunChurnScenario(s, opt);
    EXPECT_TRUE(res.ok()) << res.Summary();
    EXPECT_NE(res.outcome, fault::ChaosOutcome::kNoInjection) << res.Summary();
  }
}

// ISSUE acceptance: a seeded crash→rejoin run is bitwise-deterministic
// under replay. (RunChurnScenario re-checks this internally for every cell;
// this test pins the raw-run contract directly.)
TEST(ChurnReplayTest, SeededCrashRejoinRunsAreByteIdentical) {
  fault::ChurnOptions opt;
  const fault::ChurnRun a =
      fault::RunChurnWorkload(fault::ChurnScenario::kCrashRejoin, opt);
  const fault::ChurnRun b =
      fault::RunChurnWorkload(fault::ChurnScenario::kCrashRejoin, opt);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.departed, b.departed);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.error, b.error);
}

// ISSUE acceptance: total EF mass is conserved across the crash→rejoin
// handoff — each finishing rank's telescoping ledger gap
// |sum(grad) - (sum(reconstruction) + residual)| stays at rounding noise,
// with the victim's escrowed residual rolled back to its last commit.
TEST(ChurnLedgerTest, ErrorFeedbackMassConservedAcrossRejoin) {
  fault::ChurnOptions opt;
  const fault::ChurnRun run =
      fault::RunChurnWorkload(fault::ChurnScenario::kCrashRejoin, opt);
  ASSERT_TRUE(run.error.empty()) << run.error;
  const int victim = opt.world_size - 1;
  ASSERT_EQ(run.crashed, std::vector<int>{victim});
  for (size_t r = 0; r < run.finished.size(); ++r) {
    if (run.finished[r] == 0) continue;
    EXPECT_LT(run.ef_gap[r], 1e-3)
        << "rank " << r << " telescoping ledger gap " << run.ef_gap[r];
  }
  // The victim resumed as generation 1 and one commit ran per step.
  EXPECT_EQ(run.generation[static_cast<size_t>(victim)], 1);
  EXPECT_EQ(run.epoch, static_cast<uint64_t>(opt.steps));
}

TEST(FaultPlanTest, MembershipScheduleDrivesCrashRejoinAndLeave) {
  fault::FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.membership = {
      {fault::MembershipEvent::Kind::kCrash, /*rank=*/2, /*at=*/4},
      {fault::MembershipEvent::Kind::kRejoin, /*rank=*/2, /*at=*/1},
      {fault::MembershipEvent::Kind::kLeave, /*rank=*/1, /*at=*/3},
  };
  ASSERT_TRUE(fault::HasAdmissions(cfg));
  fault::FaultPlan plan(cfg);
  // The crash fires exactly at the victim's 4th collective entry.
  EXPECT_EQ(plan.OnCollectiveEntry(2, 3).kind, fault::FaultKind::kNone);
  EXPECT_EQ(plan.OnCollectiveEntry(2, 4).kind, fault::FaultKind::kCrash);
  EXPECT_EQ(plan.OnCollectiveEntry(0, 4).kind, fault::FaultKind::kNone);
  // The graceful leave targets its commit index and no other.
  EXPECT_FALSE(plan.LeavesAtCommit(1, 2));
  EXPECT_TRUE(plan.LeavesAtCommit(1, 3));
  EXPECT_FALSE(plan.LeavesAtCommit(0, 3));
  // The admission schedule carries exactly the rejoin intent.
  const std::vector<fault::AdmissionIntent> intents = plan.AdmissionSchedule();
  ASSERT_EQ(intents.size(), 1u);
  EXPECT_EQ(intents[0].rank, 2);
  EXPECT_EQ(intents[0].at_commit, 1u);
}

TEST(FaultPlanTest, LegacyCrashConfigFoldsIntoMembershipSchedule) {
  fault::FaultPlanConfig cfg;
  cfg.seed = 8;
  cfg.crash_rank = 1;
  cfg.crash_at_collective = 2;
  fault::FaultPlan plan(cfg);
  EXPECT_EQ(plan.OnCollectiveEntry(1, 2).kind, fault::FaultKind::kCrash);
  ASSERT_EQ(plan.config().membership.size(), 1u);
  EXPECT_EQ(plan.config().membership[0].kind,
            fault::MembershipEvent::Kind::kCrash);
  EXPECT_FALSE(fault::HasAdmissions(plan.config()));
}

// The elastic rejoin path is observable: the admitting commit emits the
// fault.rejoin.admitted counter and the comm.epoch gauge, and the session
// records the membership epoch and the victim's crash.
TEST(ElasticSessionTest, RejoinEmitsAdmissionMetricsAndEpochGauge) {
  obs::MetricsRegistry metrics;
  metrics.Enable();
  fault::FaultPlanConfig cfg;
  cfg.seed = 51;
  cfg.membership = {{fault::MembershipEvent::Kind::kCrash, /*rank=*/2,
                     /*at=*/3},
                    {fault::MembershipEvent::Kind::kRejoin, /*rank=*/2,
                     /*at=*/1}};
  fault::FaultPlan plan(cfg);
  fault::ScopedFaultInjector install(&plan);

  comm::Transport transport;
  transport.set_metrics(&metrics);
  comm::Session session(transport, "", 3);
  session.Run([](comm::Communicator& comm) {
    std::vector<float> data(6, static_cast<float>(comm.rank() + 1));
    int step = 0;
    const auto resync = [&](const comm::detail::ViewTransition& t) {
      if (t.joined.empty()) return;
      int donor = -1;
      for (const int a : comm.alive_ranks()) {
        if (std::find(t.joined.begin(), t.joined.end(), a) == t.joined.end()) {
          donor = a;
          break;
        }
      }
      std::vector<float> wire(data.size() + 1);
      wire[0] = static_cast<float>(step);
      std::copy(data.begin(), data.end(), wire.begin() + 1);
      comm.broadcast(wire, donor);
      step = static_cast<int>(wire[0]);
      std::copy(wire.begin() + 1, wire.end(), data.begin());
    };
    if (comm.join_generation() > 0) resync(comm.last_transition());
    while (step < 3) {
      comm.all_reduce(data);
      ++step;
      resync(comm.commit_view());
    }
  });

  EXPECT_EQ(session.crashed_ranks(), std::vector<int>{2});
  EXPECT_TRUE(session.departed_ranks().empty());
  EXPECT_EQ(session.membership_epoch(), 3u);
  EXPECT_EQ(metrics.counter("fault.rejoin.admitted").value(), 1u);
  EXPECT_EQ(metrics.counter("fault.join.ranks").value(), 0u);
  EXPECT_EQ(metrics.gauge("comm.epoch").value(), 3.0);
}

// A parked victim whose admission is never serviced (the workload stops
// committing) must abandon when the survivors drain — never hang the Run.
TEST(ElasticSessionTest, UnservicedAdmissionAbandonsWhenWorkersDrain) {
  obs::MetricsRegistry metrics;
  metrics.Enable();
  fault::FaultPlanConfig cfg;
  cfg.seed = 52;
  cfg.membership = {{fault::MembershipEvent::Kind::kCrash, /*rank=*/1,
                     /*at=*/2},
                    {fault::MembershipEvent::Kind::kRejoin, /*rank=*/1,
                     /*at=*/1}};
  fault::FaultPlan plan(cfg);
  fault::ScopedFaultInjector install(&plan);

  comm::Transport transport;
  transport.set_metrics(&metrics);
  comm::Session session(transport, "", 2);
  session.Run([](comm::Communicator& comm) {
    std::vector<float> data(4, 1.0f);
    comm.all_reduce(data);
    comm.all_reduce(data);  // rank 1 dies here; no commit_view ever runs
  });
  EXPECT_EQ(session.crashed_ranks(), std::vector<int>{1});
  EXPECT_EQ(session.membership_epoch(), 0u);
  EXPECT_EQ(metrics.counter("fault.rejoin.abandoned").value(), 1u);
}

// ISSUE acceptance: the model checker explores the rejoin handshake —
// crash at a collective entry, admission at the next commit, donor resync —
// under random perturbation and exhaustively at p=3, with zero oracle
// violations (completion, baseline bits, rank invariance).
TEST(RejoinModelCheckTest, PerturbedSchedulesHoldOracles) {
  check::ExploreOptions opt;
  opt.world_size = 3;
  opt.numel = 8;
#ifdef ACPS_SANITIZE_BUILD
  opt.runs = 12;
#else
  opt.runs = 60;
#endif
  const check::ExploreReport rep =
      check::ExplorePerturbed(check::Workload::kRejoin, opt);
  EXPECT_TRUE(rep.ok()) << rep.Summary();
  EXPECT_EQ(rep.schedules_run, opt.runs);
}

TEST(RejoinModelCheckTest, ExhaustiveHandoffOrdersAtP3AreClean) {
  check::ExploreOptions opt;
  opt.world_size = 3;
  opt.numel = 8;
  const check::ExploreReport rep =
      check::ExploreExhaustive(check::Workload::kRejoin, opt, 4096);
  EXPECT_TRUE(rep.ok()) << rep.Summary();
  EXPECT_TRUE(rep.exhaustive_complete) << rep.Summary();
  EXPECT_EQ(rep.enforcement_misses, 0) << rep.Summary();
  // One hand-off window per naive all-reduce step; membership-aware window
  // accounting keeps the count at 3 even though the middle window has only
  // two live publishers. 3 windows x 3! orders each = 216 schedules.
  EXPECT_EQ(rep.windows, 3) << rep.Summary();
  EXPECT_EQ(rep.schedules_run, 216) << rep.Summary();
}

}  // namespace
}  // namespace acps
